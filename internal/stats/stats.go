// Package stats provides the counters, histograms, and the per-register
// lifetime ledger used to produce the paper's analysis figures (Figs 4, 6,
// 12, 14).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a dense integer-bucketed histogram with an overflow bucket.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	total    uint64
	sum      float64
}

// NewHistogram creates a histogram for values in [0, maxValue]; larger values
// land in the overflow bucket.
func NewHistogram(maxValue int) *Histogram {
	return &Histogram{buckets: make([]uint64, maxValue+1)}
}

// Add records one observation of v (negative values clamp to 0).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.total++
	h.sum += float64(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average observed value (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bucket returns the count for value v; out-of-range values return the
// overflow bucket.
func (h *Histogram) Bucket(v int) uint64 {
	if v >= 0 && v < len(h.buckets) {
		return h.buckets[v]
	}
	return h.overflow
}

// Fraction returns the fraction of observations equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bucket(v)) / float64(h.total)
}

// Percentile returns the smallest value whose cumulative fraction is >= p
// (p in [0,1]). Overflowed observations report len(buckets).
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.buckets)
}

// Merge folds other into h bucket-wise in O(buckets). In-range values of
// other that exceed h's maximum land in h's overflow bucket; the running
// sum is carried over exactly, so Mean is preserved.
func (h *Histogram) Merge(other *Histogram) {
	for v, n := range other.buckets {
		if n == 0 {
			continue
		}
		if v < len(h.buckets) {
			h.buckets[v] += n
		} else {
			h.overflow += n
		}
	}
	h.overflow += other.overflow
	h.total += other.total
	h.sum += other.sum
}

// Handle is a dense index into a Counters set, interned once per name.
// Incrementing through a handle is a slice index — no string hashing and no
// allocation — which is what the simulation hot path uses.
type Handle int32

// Counters is a named counter set with deterministic iteration order.
// Names are interned into Handle indices backed by a flat value array; the
// string-keyed Inc/Get survive as thin compatibility wrappers over the same
// storage, so both views always agree.
type Counters struct {
	vals  []uint64
	names []string          // handle -> name
	index map[string]Handle // name -> handle
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{index: make(map[string]Handle)} }

// Handle interns name and returns its dense index. Callers on a hot path
// resolve their handles once at construction and then use Add/Value.
func (c *Counters) Handle(name string) Handle {
	if h, ok := c.index[name]; ok {
		return h
	}
	h := Handle(len(c.vals))
	c.index[name] = h
	c.names = append(c.names, name)
	c.vals = append(c.vals, 0)
	return h
}

// Add adds delta to the counter identified by h (the hot path).
func (c *Counters) Add(h Handle, delta uint64) { c.vals[h] += delta }

// Value returns the value of the counter identified by h.
func (c *Counters) Value(h Handle) uint64 { return c.vals[h] }

// Inc adds delta to the named counter (compatibility wrapper).
func (c *Counters) Inc(name string, delta uint64) { c.vals[c.Handle(name)] += delta }

// Get returns the value of the named counter (0 if never interned).
func (c *Counters) Get(name string) uint64 {
	if h, ok := c.index[name]; ok {
		return c.vals[h]
	}
	return 0
}

// Names returns the names of all counters with a non-zero value, sorted.
// Interned-but-never-incremented counters are omitted, so pre-resolving
// handles at construction does not change the rendered counter set.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.names))
	for h, n := range c.names {
		if c.vals[h] != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the non-zero counters as a name->value map (for
// manifests). The map is freshly allocated and independent of c.
func (c *Counters) Snapshot() map[string]uint64 {
	m := make(map[string]uint64, len(c.names))
	for h, n := range c.names {
		if c.vals[h] != 0 {
			m[n] = c.vals[h]
		}
	}
	return m
}

// String renders the counters one per line in sorted name order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%-40s %d\n", n, c.vals[c.index[n]])
	}
	return b.String()
}

// RegionKind classifies the code between a register's allocation and its
// redefinition (Figure 6's three region types plus non-region).
type RegionKind int

const (
	// RegionNone: the register was redefined across at least one
	// conditional branch or indirect jump AND at least one
	// exception-causing instruction, or never redefined in-window.
	RegionNone RegionKind = iota
	// RegionNonBranch: no conditional branches or indirect jumps between
	// rename and redefine (but possibly exception-causing instructions).
	RegionNonBranch
	// RegionNonExcept: no exception-causing instructions between rename
	// and redefine (but possibly branches).
	RegionNonExcept
	// RegionAtomic: neither branches nor exception-causing instructions —
	// the paper's atomic commit region.
	RegionAtomic
)

func (k RegionKind) String() string {
	switch k {
	case RegionNonBranch:
		return "non-branch"
	case RegionNonExcept:
		return "non-except"
	case RegionAtomic:
		return "atomic"
	default:
		return "none"
	}
}

// RegLifetime records the event cycles of one physical-register allocation,
// following the §3.1 life-of-a-register model. A zero cycle means the event
// never happened during the simulation window.
type RegLifetime struct {
	Renamed      uint64 // I1 renamed: allocation cycle
	LastConsumed uint64 // I2 consumed: last consumer executes
	Redefined    uint64 // I3 redefined: next producer renames
	Precommitted uint64 // I3 precommitted
	Committed    uint64 // I3 committed: baseline release point
	Consumers    int    // number of consumers renamed
	Region       RegionKind
	WrongPath    bool // allocation was on a flushed path
}

// Complete reports whether the full event chain was observed (the allocation
// was redefined and the redefiner committed inside the window).
func (l *RegLifetime) Complete() bool {
	return !l.WrongPath && l.Redefined > 0 && l.Committed > 0
}

// endOfUse returns the cycle at which the register became dead: the later of
// last consumption and redefinition (§3.1: In-use ends when no pending
// consumers remain and the mapping has been redefined).
func (l *RegLifetime) endOfUse() uint64 {
	if l.LastConsumed > l.Redefined {
		return l.LastConsumed
	}
	return l.Redefined
}

// LifetimeLedger accumulates register lifetimes and computes the Figure 4
// state split and the Figure 14 event gaps.
type LifetimeLedger struct {
	// Totals of cycles spent in each lifecycle state, over completed
	// allocations.
	InUse          uint64
	Unused         uint64
	VerifiedUnused uint64

	// Figure 14 accumulators, restricted to atomic-region allocations.
	atomicRenameToRedefine uint64
	atomicRenameToConsume  uint64
	atomicRenameToCommit   uint64
	atomicCount            uint64

	// Region classification tallies over all completed allocations
	// (Figure 6).
	regionCounts [4]uint64

	// Consumer count histogram over atomic-region allocations (Figure 12).
	ConsumerHist *Histogram

	completed uint64
}

// NewLifetimeLedger returns an empty ledger.
func NewLifetimeLedger() *LifetimeLedger {
	return &LifetimeLedger{ConsumerHist: NewHistogram(16)}
}

// Record folds one finished allocation into the ledger. Allocations that
// never completed their event chain (wrong-path or still live at end of
// simulation) only contribute to region tallies if redefined.
func (g *LifetimeLedger) Record(l *RegLifetime) {
	if l.Redefined > 0 && !l.WrongPath {
		g.regionCounts[l.Region]++
	}
	if !l.Complete() {
		return
	}
	g.completed++

	end := l.endOfUse()
	if end < l.Renamed {
		end = l.Renamed
	}
	pre := l.Precommitted
	if pre < end {
		pre = end // precommit can only matter after end-of-use
	}
	commit := l.Committed
	if commit < pre {
		commit = pre
	}
	g.InUse += end - l.Renamed
	g.Unused += pre - end
	g.VerifiedUnused += commit - pre

	if l.Region == RegionAtomic {
		g.atomicCount++
		g.atomicRenameToRedefine += l.Redefined - l.Renamed
		if l.LastConsumed >= l.Renamed {
			g.atomicRenameToConsume += l.LastConsumed - l.Renamed
		}
		g.atomicRenameToCommit += l.Committed - l.Renamed
		g.ConsumerHist.Add(l.Consumers)
	}
}

// Completed returns the number of fully observed allocations.
func (g *LifetimeLedger) Completed() uint64 { return g.completed }

// StateFractions returns the Figure 4 split: fraction of total allocated
// register cycles spent in-use, unused, and verified-unused.
func (g *LifetimeLedger) StateFractions() (inUse, unused, verified float64) {
	total := float64(g.InUse + g.Unused + g.VerifiedUnused)
	if total == 0 {
		return 0, 0, 0
	}
	return float64(g.InUse) / total, float64(g.Unused) / total, float64(g.VerifiedUnused) / total
}

// RegionFractions returns the Figure 6 ratios: the fraction of completed
// allocations whose rename→redefine window is non-branch, non-except, and
// atomic. Note atomic regions are counted in all three (an atomic region is
// by definition also non-branch and non-except), matching the paper's
// cumulative presentation.
func (g *LifetimeLedger) RegionFractions() (nonBranch, nonExcept, atomic float64) {
	var total uint64
	for _, c := range g.regionCounts {
		total += c
	}
	if total == 0 {
		return 0, 0, 0
	}
	a := float64(g.regionCounts[RegionAtomic])
	nb := float64(g.regionCounts[RegionNonBranch]) + a
	ne := float64(g.regionCounts[RegionNonExcept]) + a
	return nb / float64(total), ne / float64(total), a / float64(total)
}

// EventGaps returns the Figure 14 averages over atomic-region allocations:
// mean cycles from rename to redefine, to last consume, and to redefiner
// commit.
func (g *LifetimeLedger) EventGaps() (toRedefine, toConsume, toCommit float64) {
	if g.atomicCount == 0 {
		return 0, 0, 0
	}
	n := float64(g.atomicCount)
	return float64(g.atomicRenameToRedefine) / n,
		float64(g.atomicRenameToConsume) / n,
		float64(g.atomicRenameToCommit) / n
}

// Merge folds other into g.
func (g *LifetimeLedger) Merge(other *LifetimeLedger) {
	g.InUse += other.InUse
	g.Unused += other.Unused
	g.VerifiedUnused += other.VerifiedUnused
	g.atomicRenameToRedefine += other.atomicRenameToRedefine
	g.atomicRenameToConsume += other.atomicRenameToConsume
	g.atomicRenameToCommit += other.atomicRenameToCommit
	g.atomicCount += other.atomicCount
	g.completed += other.completed
	for i := range g.regionCounts {
		g.regionCounts[i] += other.regionCounts[i]
	}
	g.ConsumerHist.Merge(other.ConsumerHist)
}
