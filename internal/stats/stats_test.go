package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 7, -3} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("Bucket(1) = %d, want 2", h.Bucket(1))
	}
	if h.Bucket(0) != 2 { // includes the clamped -3
		t.Errorf("Bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(99) != 1 { // the overflowed 7
		t.Errorf("overflow = %d, want 1", h.Bucket(99))
	}
	if got := h.Fraction(1); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Errorf("Fraction(1) = %v", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	empty := NewHistogram(10)
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.Percentile(0.5); got != 50 {
		t.Errorf("P50 = %d, want 50", got)
	}
	if got := h.Percentile(0.99); got != 99 {
		t.Errorf("P99 = %d, want 99", got)
	}
	if got := h.Percentile(1.0); got != 100 {
		t.Errorf("P100 = %d, want 100", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("commits", 10)
	c.Inc("commits", 5)
	c.Inc("flushes", 1)
	if c.Get("commits") != 15 {
		t.Errorf("commits = %d", c.Get("commits"))
	}
	if c.Get("absent") != 0 {
		t.Error("absent counter should read 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "commits" || names[1] != "flushes" {
		t.Errorf("Names = %v", names)
	}
	if c.String() == "" {
		t.Error("String should be non-empty")
	}
}

// TestCountersHandleStringInterop pins the compat contract: handle-based
// and string-based access observe the same underlying counter.
func TestCountersHandleStringInterop(t *testing.T) {
	c := NewCounters()
	h := c.Handle("release.atr")
	if h != c.Handle("release.atr") {
		t.Error("re-interning the same name returned a different handle")
	}
	c.Add(h, 7)
	c.Inc("release.atr", 3)
	if c.Get("release.atr") != 10 {
		t.Errorf("Get = %d, want 10", c.Get("release.atr"))
	}
	if c.Value(h) != 10 {
		t.Errorf("Value = %d, want 10", c.Value(h))
	}
	// Interned-but-never-incremented counters must stay invisible in the
	// rendered set, so pre-resolving handles at engine construction cannot
	// change manifests or -v output.
	c.Handle("never.touched")
	for _, n := range c.Names() {
		if n == "never.touched" {
			t.Error("zero-valued interned counter leaked into Names()")
		}
	}
	if _, ok := c.Snapshot()["never.touched"]; ok {
		t.Error("zero-valued interned counter leaked into Snapshot()")
	}
}

// TestCountersMatchesMapReference drives Counters and a plain
// map[string]uint64 (the original representation) with the same random
// mixed stream of handle adds and string incs, then asserts every
// observable — Get, sorted Names, Snapshot, the String rendering — matches
// the map.
func TestCountersMatchesMapReference(t *testing.T) {
	names := []string{"a", "bb", "release.atr", "release.er", "rename.alloc",
		"lsq.forwards", "x.y.z", "q"}
	f := func(ops []uint16) bool {
		c := NewCounters()
		ref := make(map[string]uint64)
		for _, op := range ops {
			name := names[int(op)%len(names)]
			delta := uint64(op >> 8)
			if op&0x80 != 0 {
				c.Add(c.Handle(name), delta)
			} else {
				c.Inc(name, delta)
			}
			ref[name] += delta
		}
		for n, v := range ref {
			if c.Get(n) != v {
				return false
			}
		}
		snap := c.Snapshot()
		for n, v := range ref {
			if v == 0 {
				continue
			}
			if snap[n] != v {
				return false
			}
		}
		for n := range snap {
			if snap[n] != ref[n] {
				return false
			}
		}
		nonzero := 0
		for _, v := range ref {
			if v > 0 {
				nonzero++
			}
		}
		return len(c.Names()) == nonzero && len(snap) == nonzero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCountersSnapshotDeterministic asserts the rendered counter set is a
// pure function of the counter values: interning order, increment order,
// and access pattern must not leak into Names(), Snapshot(), or String().
func TestCountersSnapshotDeterministic(t *testing.T) {
	names := []string{"zeta", "alpha", "mid.point", "release.atr", "beta"}
	build := func(order []int, viaHandle bool) *Counters {
		c := NewCounters()
		for _, i := range order {
			if viaHandle {
				c.Add(c.Handle(names[i]), uint64(10+i))
			} else {
				c.Inc(names[i], uint64(10+i))
			}
		}
		return c
	}
	a := build([]int{0, 1, 2, 3, 4}, true)
	b := build([]int{4, 3, 2, 1, 0}, false)
	if a.String() != b.String() {
		t.Errorf("String depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		t.Fatalf("Names lengths differ: %v vs %v", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Errorf("Names[%d]: %q vs %q", i, an[i], bn[i])
		}
		if i > 0 && an[i-1] >= an[i] {
			t.Errorf("Names not sorted: %q before %q", an[i-1], an[i])
		}
	}
	snap := a.Snapshot()
	snap["alpha"] = 999 // Snapshot must be a copy, not a view
	if a.Get("alpha") == 999 {
		t.Error("mutating a Snapshot changed the live counters")
	}
}

func TestLedgerStateFractions(t *testing.T) {
	g := NewLifetimeLedger()
	// Renamed at 100, last consumed 110, redefined 105, precommit 120,
	// commit 130: in-use 10, unused 10, verified-unused 10.
	g.Record(&RegLifetime{
		Renamed: 100, LastConsumed: 110, Redefined: 105,
		Precommitted: 120, Committed: 130, Consumers: 2, Region: RegionAtomic,
	})
	inUse, unused, verified := g.StateFractions()
	for name, got := range map[string]float64{"inUse": inUse, "unused": unused, "verified": verified} {
		if math.Abs(got-1.0/3.0) > 1e-12 {
			t.Errorf("%s = %v, want 1/3", name, got)
		}
	}
	if g.Completed() != 1 {
		t.Errorf("Completed = %d", g.Completed())
	}
}

func TestLedgerRedefineBeforeConsume(t *testing.T) {
	// The paper notes redefinition may precede last consumption; end-of-use
	// is the max of the two.
	g := NewLifetimeLedger()
	g.Record(&RegLifetime{
		Renamed: 10, Redefined: 12, LastConsumed: 20,
		Precommitted: 22, Committed: 30, Region: RegionAtomic, Consumers: 1,
	})
	if g.InUse != 10 { // 20-10
		t.Errorf("InUse = %d, want 10", g.InUse)
	}
	if g.Unused != 2 { // 22-20
		t.Errorf("Unused = %d, want 2", g.Unused)
	}
	if g.VerifiedUnused != 8 { // 30-22
		t.Errorf("VerifiedUnused = %d, want 8", g.VerifiedUnused)
	}
}

func TestLedgerSkipsIncomplete(t *testing.T) {
	g := NewLifetimeLedger()
	g.Record(&RegLifetime{Renamed: 5}) // never redefined
	g.Record(&RegLifetime{Renamed: 5, Redefined: 9, Committed: 12, WrongPath: true})
	if g.Completed() != 0 {
		t.Errorf("Completed = %d, want 0", g.Completed())
	}
	nb, ne, a := g.RegionFractions()
	if nb != 0 || ne != 0 || a != 0 {
		t.Error("incomplete allocations should not contribute to region fractions")
	}
}

func TestLedgerRegionFractionsCumulative(t *testing.T) {
	g := NewLifetimeLedger()
	add := func(k RegionKind) {
		g.Record(&RegLifetime{Renamed: 1, Redefined: 2, LastConsumed: 2,
			Precommitted: 3, Committed: 4, Region: k})
	}
	add(RegionAtomic)
	add(RegionNonBranch)
	add(RegionNonExcept)
	add(RegionNone)
	nb, ne, a := g.RegionFractions()
	if a != 0.25 {
		t.Errorf("atomic = %v, want 0.25", a)
	}
	if nb != 0.5 { // atomic + non-branch
		t.Errorf("non-branch = %v, want 0.5", nb)
	}
	if ne != 0.5 { // atomic + non-except
		t.Errorf("non-except = %v, want 0.5", ne)
	}
}

func TestLedgerEventGaps(t *testing.T) {
	g := NewLifetimeLedger()
	g.Record(&RegLifetime{Renamed: 100, Redefined: 104, LastConsumed: 110,
		Precommitted: 112, Committed: 120, Region: RegionAtomic, Consumers: 3})
	g.Record(&RegLifetime{Renamed: 200, Redefined: 202, LastConsumed: 204,
		Precommitted: 205, Committed: 210, Region: RegionAtomic, Consumers: 1})
	re, co, cm := g.EventGaps()
	if re != 3 { // (4+2)/2
		t.Errorf("toRedefine = %v, want 3", re)
	}
	if co != 7 { // (10+4)/2
		t.Errorf("toConsume = %v, want 7", co)
	}
	if cm != 15 { // (20+10)/2
		t.Errorf("toCommit = %v, want 15", cm)
	}
	if g.ConsumerHist.Bucket(3) != 1 || g.ConsumerHist.Bucket(1) != 1 {
		t.Error("consumer histogram not populated")
	}
}

func TestLedgerMerge(t *testing.T) {
	a := NewLifetimeLedger()
	b := NewLifetimeLedger()
	l := &RegLifetime{Renamed: 1, Redefined: 3, LastConsumed: 5,
		Precommitted: 6, Committed: 9, Region: RegionAtomic, Consumers: 2}
	a.Record(l)
	b.Record(l)
	a.Merge(b)
	if a.Completed() != 2 {
		t.Errorf("merged Completed = %d, want 2", a.Completed())
	}
	if a.InUse != 8 {
		t.Errorf("merged InUse = %d, want 8", a.InUse)
	}
	if a.ConsumerHist.Bucket(2) != 2 {
		t.Errorf("merged hist = %d, want 2", a.ConsumerHist.Bucket(2))
	}
}

// Property: state fractions always sum to 1 for any valid event ordering.
func TestStateFractionsSumToOne(t *testing.T) {
	f := func(rn, d1, d2, d3, d4 uint16) bool {
		g := NewLifetimeLedger()
		renamed := uint64(rn) + 1
		redefined := renamed + uint64(d1)%100 + 1
		consumed := renamed + uint64(d2)%100
		pre := redefined + uint64(d3)%100
		commit := pre + uint64(d4)%100 + 1
		g.Record(&RegLifetime{Renamed: renamed, Redefined: redefined,
			LastConsumed: consumed, Precommitted: pre, Committed: commit,
			Region: RegionAtomic, Consumers: 1})
		iu, un, vu := g.StateFractions()
		sum := iu + un + vu
		// Degenerate zero-length lifetimes yield 0,0,0.
		return (sum == 0 && g.InUse+g.Unused+g.VerifiedUnused == 0) ||
			math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram count equals the number of Adds and percentile is
// monotonic in p.
func TestHistogramProperties(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(64)
		for _, v := range vals {
			h.Add(int(v))
		}
		if h.Count() != uint64(len(vals)) {
			return false
		}
		last := 0
		for _, p := range []float64{0.1, 0.5, 0.9, 1.0} {
			q := h.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionKindString(t *testing.T) {
	want := map[RegionKind]string{
		RegionNone: "none", RegionNonBranch: "non-branch",
		RegionNonExcept: "non-except", RegionAtomic: "atomic",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestHistogramPercentileEdges(t *testing.T) {
	h := NewHistogram(4)
	if got := h.Percentile(0); got != 0 {
		t.Errorf("empty histogram p0 = %d, want 0", got)
	}
	if got := h.Percentile(1); got != 0 {
		t.Errorf("empty histogram p1 = %d, want 0", got)
	}
	h.Add(2)
	h.Add(3)
	// p=0 clamps to the first observation.
	if got := h.Percentile(0); got != 2 {
		t.Errorf("p0 = %d, want 2", got)
	}
	if got := h.Percentile(1); got != 3 {
		t.Errorf("p1 = %d, want 3", got)
	}

	// All observations in the overflow bucket report len(buckets).
	ov := NewHistogram(2)
	ov.Add(10)
	ov.Add(99)
	for _, p := range []float64{0, 0.5, 1} {
		if got := ov.Percentile(p); got != 3 {
			t.Errorf("all-overflow p%.1f = %d, want 3", p, got)
		}
	}
}

// TestHistogramMergeMatchesReplay checks bucket-wise Merge against the
// replay-based reference (one Add per observation) for same-shaped
// histograms, where the two must agree exactly.
func TestHistogramMergeMatchesReplay(t *testing.T) {
	a := NewHistogram(8)
	b := NewHistogram(8)
	ref := NewHistogram(8)
	for v := 0; v < 12; v++ { // values 9..11 overflow
		for n := 0; n <= v; n++ {
			b.Add(v)
			ref.Add(v)
		}
	}
	a.Add(1)
	ref.Add(1)
	a.Merge(b)
	if a.Count() != ref.Count() {
		t.Fatalf("count %d, want %d", a.Count(), ref.Count())
	}
	if a.Mean() != ref.Mean() {
		t.Errorf("mean %v, want %v", a.Mean(), ref.Mean())
	}
	for v := 0; v <= 9; v++ {
		if a.Bucket(v) != ref.Bucket(v) {
			t.Errorf("bucket %d: %d, want %d", v, a.Bucket(v), ref.Bucket(v))
		}
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if a.Percentile(p) != ref.Percentile(p) {
			t.Errorf("p%v: %d, want %d", p, a.Percentile(p), ref.Percentile(p))
		}
	}
}

// TestHistogramMergeDifferentMax merges a wider histogram into a narrower
// one: in-range values beyond the target's max must land in overflow, and
// the exact sum must be preserved (the old replay-based ledger merge
// re-bucketed these through Add with the wrong value).
func TestHistogramMergeDifferentMax(t *testing.T) {
	narrow := NewHistogram(2)
	wide := NewHistogram(16)
	wide.Add(1)
	wide.Add(5)  // in range for wide, overflow for narrow
	wide.Add(40) // overflow for both
	narrow.Merge(wide)
	if narrow.Count() != 3 {
		t.Fatalf("count %d, want 3", narrow.Count())
	}
	if got := narrow.Bucket(1); got != 1 {
		t.Errorf("bucket 1 = %d, want 1", got)
	}
	if got := narrow.Bucket(99); got != 2 { // overflow bucket
		t.Errorf("overflow = %d, want 2", got)
	}
	if want := float64(1+5+40) / 3; narrow.Mean() != want {
		t.Errorf("mean %v, want %v", narrow.Mean(), want)
	}
}

// TestLedgerMergeConsumerHist exercises the ledger merge path over the
// consumer histogram, including overflow observations.
func TestLedgerMergeConsumerHist(t *testing.T) {
	mk := func(consumers ...int) *LifetimeLedger {
		g := NewLifetimeLedger()
		for i, n := range consumers {
			g.Record(&RegLifetime{
				Renamed: 1, LastConsumed: 2, Redefined: 3,
				Precommitted: 4, Committed: uint64(5 + i),
				Consumers: n, Region: RegionAtomic,
			})
		}
		return g
	}
	a := mk(1, 2)
	b := mk(3, 99) // 99 overflows the 16-bucket consumer histogram
	ref := mk(1, 2, 3, 99)
	a.Merge(b)
	if a.ConsumerHist.Count() != ref.ConsumerHist.Count() {
		t.Fatalf("count %d, want %d", a.ConsumerHist.Count(), ref.ConsumerHist.Count())
	}
	if a.ConsumerHist.Mean() != ref.ConsumerHist.Mean() {
		t.Errorf("mean %v, want %v", a.ConsumerHist.Mean(), ref.ConsumerHist.Mean())
	}
	for v := 0; v <= 17; v++ {
		if a.ConsumerHist.Bucket(v) != ref.ConsumerHist.Bucket(v) {
			t.Errorf("bucket %d: %d, want %d", v, a.ConsumerHist.Bucket(v), ref.ConsumerHist.Bucket(v))
		}
	}
	if a.Completed() != 4 {
		t.Errorf("completed %d, want 4", a.Completed())
	}
}
