package program

import (
	"testing"
	"testing/quick"

	"atr/internal/isa"
)

func TestMixDeterministicAndSpread(t *testing.T) {
	if Mix(42) != Mix(42) {
		t.Fatal("Mix not deterministic")
	}
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[Mix(i)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("Mix collisions in first 1000 values: %d unique", len(seen))
	}
}

func TestCmpFlags(t *testing.T) {
	tests := []struct {
		a, b uint64
		want uint64
	}{
		{5, 5, FlagZero},
		{3, 5, FlagCarry | FlagSign | func() uint64 {
			a, b := uint64(3), uint64(5)
			d := a - b // wraps to ...11111110
			n := 0
			for x := d; x != 0; x &= x - 1 {
				n++
			}
			if n%2 == 1 {
				return FlagOdd
			}
			return 0
		}()},
	}
	for _, tt := range tests {
		if got := cmpFlags(tt.a, tt.b); got != tt.want {
			t.Errorf("cmpFlags(%d,%d) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
	if cmpFlags(7, 5)&FlagCarry != 0 {
		t.Error("7 >= 5 should not set carry")
	}
}

func TestPredTaken(t *testing.T) {
	if !predTaken(PredZero, FlagZero) || predTaken(PredZero, 0) {
		t.Error("PredZero wrong")
	}
	if predTaken(PredNotZero, FlagZero) || !predTaken(PredNotZero, 0) {
		t.Error("PredNotZero wrong")
	}
	if !predTaken(PredCarry, FlagCarry) || predTaken(PredNoCarry, FlagCarry) {
		t.Error("carry predicates wrong")
	}
	// Every predicate and its complement disagree on every flag word.
	for f := uint64(0); f < 16; f++ {
		for p := int64(0); p < numPreds; p += 2 {
			if predTaken(p, f) == predTaken(p|1, f) {
				t.Errorf("pred %d and %d agree on flags %#x", p, p|1, f)
			}
		}
	}
}

func TestEffAddr(t *testing.T) {
	in := &isa.Inst{Op: isa.OpLoad, Target: 0x1000, Span: 64, Imm: 8}
	if got := EffAddr(in, 0); got != 0x1008 {
		t.Errorf("EffAddr = %#x, want 0x1008", got)
	}
	// Wraps within span.
	if got := EffAddr(in, 100); got < 0x1000 || got >= 0x1000+64 {
		t.Errorf("EffAddr = %#x outside region", got)
	}
	if got := EffAddr(in, 3); got%8 != 0 {
		t.Errorf("EffAddr = %#x not aligned", got)
	}
	// Zero span pins to base.
	in2 := &isa.Inst{Op: isa.OpLoad, Target: 0x2000}
	if got := EffAddr(in2, 12345); got != 0x2000 {
		t.Errorf("zero-span EffAddr = %#x, want 0x2000", got)
	}
}

func TestMemoryDefaultAndWrite(t *testing.T) {
	m1 := NewMemory(7)
	m2 := NewMemory(7)
	if m1.Read(0x100) != m2.Read(0x100) {
		t.Error("same-seed memories disagree on default contents")
	}
	m3 := NewMemory(8)
	if m1.Read(0x100) == m3.Read(0x100) {
		t.Error("different seeds should give different defaults (overwhelmingly)")
	}
	m1.Write(0x104, 99) // unaligned: lands in word 0x100
	if m1.Read(0x100) != 99 {
		t.Error("write not visible at aligned address")
	}
	if m1.Written() != 1 {
		t.Errorf("Written = %d", m1.Written())
	}
}

func buildLoop(t *testing.T, iters int64) *Program {
	t.Helper()
	// r0 = iters; loop: r1 = r1 + r0; r0 = r0 - 1; cmp r0, 0; jne loop
	b := NewBuilder(1, 2)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, iters) // r0 = iters
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 0)     // r1 = 0
	b.Label("loop")
	b.ALU(isa.R1, isa.R1, isa.R0, 0)
	b.ALU(isa.R0, isa.R0, isa.RegInvalid, -1)
	b.Cmp(isa.R0, isa.RegInvalid, 0)
	b.Branch(PredNotZero, "loop")
	return b.MustBuild()
}

func TestEmulatorLoop(t *testing.T) {
	p := buildLoop(t, 5)
	e := NewEmulator(p)
	recs := e.Run(1000)
	if !e.Done {
		t.Fatal("emulator did not halt")
	}
	// 2 setup + 5 iterations * 4 instructions.
	if len(recs) != 2+5*4 {
		t.Fatalf("executed %d instructions, want 22", len(recs))
	}
	// r1 = 5+4+3+2+1 = 15.
	if e.Regs[isa.R1] != 15 {
		t.Errorf("r1 = %d, want 15", e.Regs[isa.R1])
	}
	if e.Regs[isa.R0] != 0 {
		t.Errorf("r0 = %d, want 0", e.Regs[isa.R0])
	}
	// The final branch must be not-taken.
	last := recs[len(recs)-1]
	if last.Op != isa.OpBranch || last.Taken {
		t.Errorf("last record = %+v, want not-taken branch", last)
	}
}

func TestEmulatorLoadStore(t *testing.T) {
	b := NewBuilder(3, 4)
	const base, span = 0x1000, 256
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 16) // r0 = 16
	b.ALU(isa.R2, isa.RegInvalid, isa.RegInvalid, 7)  // r2 = 7
	b.Store(isa.R0, isa.R2, base, span, 0)            // mem[base+16] = 7
	b.Load(isa.R3, isa.R0, base, span, 0)             // r3 = mem[base+16]
	p := b.MustBuild()
	e := NewEmulator(p)
	e.Run(10)
	if e.Regs[isa.R3] != 7 {
		t.Errorf("r3 = %d, want 7 (store-to-load)", e.Regs[isa.R3])
	}
	if e.Mem.Read(base+16) != 7 {
		t.Error("store not in memory")
	}
}

func TestEmulatorCallRet(t *testing.T) {
	b := NewBuilder(5, 6)
	b.Call(isa.R14, "fn")
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 111) // after return
	b.Jump("end")
	b.Label("fn")
	b.ALU(isa.R2, isa.RegInvalid, isa.RegInvalid, 222)
	b.Ret(isa.R14)
	b.Label("end")
	b.Nop()
	p := b.MustBuild()
	e := NewEmulator(p)
	e.Run(100)
	if e.Regs[isa.R1] != 111 || e.Regs[isa.R2] != 222 {
		t.Errorf("r1=%d r2=%d, want 111/222", e.Regs[isa.R1], e.Regs[isa.R2])
	}
	if !e.Done {
		t.Error("program should halt")
	}
}

func TestEmulatorIndirectJump(t *testing.T) {
	b := NewBuilder(9, 9)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 1) // selector = 1
	b.JumpInd(isa.R0, "a", "b", "c")
	b.Label("a")
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 10)
	b.Jump("end")
	b.Label("b")
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 20)
	b.Jump("end")
	b.Label("c")
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 30)
	b.Jump("end")
	b.Label("end")
	b.Nop()
	e := NewEmulator(b.MustBuild())
	e.Run(100)
	if e.Regs[isa.R1] != 20 {
		t.Errorf("r1 = %d, want 20 (selector 1 -> label b)", e.Regs[isa.R1])
	}
}

func TestEmulatorFusedBranch(t *testing.T) {
	b := NewBuilder(11, 12)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 3)
	b.FusedBranch(isa.R0, isa.RegInvalid, PredNotZero, 3, "neq") // flags(3 vs 3) -> zero -> not taken
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 1)
	b.Label("neq")
	b.Nop()
	e := NewEmulator(b.MustBuild())
	recs := e.Run(100)
	if e.Regs[isa.R1] != 1 {
		t.Errorf("fused branch taken, should fall through; r1 = %d", e.Regs[isa.R1])
	}
	// The fused branch must have written flags with FlagZero.
	if e.Regs[isa.Flags]&FlagZero == 0 {
		t.Error("fused branch did not write flags")
	}
	found := false
	for _, r := range recs {
		if r.Op == isa.OpBranch {
			found = true
			if r.DstVals[0]&FlagZero == 0 {
				t.Error("branch record missing flag value")
			}
		}
	}
	if !found {
		t.Error("no branch executed")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(0, 0)
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label should error")
	}
	b2 := NewBuilder(0, 0)
	b2.Label("x").Nop().Label("x")
	if _, err := b2.Build(); err == nil {
		t.Error("duplicate label should error")
	}
}

func TestBuilderMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	b := NewBuilder(0, 0)
	b.Jump("missing")
	b.MustBuild()
}

func TestInitialRegsDeterministic(t *testing.T) {
	p1 := &Program{RegSeed: 5}
	p2 := &Program{RegSeed: 5}
	p3 := &Program{RegSeed: 6}
	if p1.InitialRegs() != p2.InitialRegs() {
		t.Error("same seed, different initial regs")
	}
	if p1.InitialRegs() == p3.InitialRegs() {
		t.Error("different seeds should differ")
	}
}

func TestHaltPC(t *testing.T) {
	p := &Program{Code: make([]isa.Inst, 4)}
	if p.HaltPC() != 4 {
		t.Errorf("HaltPC = %d", p.HaltPC())
	}
	if p.ValidPC(4) || !p.ValidPC(3) {
		t.Error("ValidPC wrong at boundary")
	}
}

// Property: Eval is a pure function — same inputs, same outputs.
func TestEvalPure(t *testing.T) {
	f := func(opByte uint8, a, b uint64, imm int64) bool {
		op := isa.Op(opByte % uint8(isa.NumOps))
		in := isa.NewInst(op, nil, []isa.Reg{isa.R1, isa.R2})
		if op != isa.OpStore && op != isa.OpBranch && op != isa.OpJump &&
			op != isa.OpJumpInd && op != isa.OpRet && op != isa.OpNop {
			in = isa.NewInst(op, []isa.Reg{isa.R0}, []isa.Reg{isa.R1, isa.R2})
		}
		in.Imm = imm
		in.Target = 1
		in.Span = 128
		load := func(addr uint64) uint64 { return Mix(addr) }
		o1 := Eval(&in, 10, []uint64{a, b}, load)
		o2 := Eval(&in, 10, []uint64{a, b}, load)
		return o1 == o2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conditional branch NextPC is either fallthrough or the target.
func TestBranchNextPC(t *testing.T) {
	f := func(flags uint64, pred uint8) bool {
		in := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
		in.Imm = int64(pred % numPreds)
		in.Target = 77
		out := Eval(&in, 5, []uint64{flags}, nil)
		if out.Taken {
			return out.NextPC == 77
		}
		return out.NextPC == 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmulatorHaltsAtInvalidPC(t *testing.T) {
	p := NewBuilder(0, 0).Nop().MustBuild()
	e := NewEmulator(p)
	if _, ok := e.Step(); !ok {
		t.Fatal("first step should succeed")
	}
	if _, ok := e.Step(); ok {
		t.Error("second step should report halt")
	}
	if !e.Done {
		t.Error("Done not set")
	}
}

// TestBuilderFullOpCoverage exercises every builder method and checks the
// emulator's semantics for each op family against hand-computed values.
func TestBuilderFullOpCoverage(t *testing.T) {
	b := NewBuilder(21, 22)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 10) // r0 = 10
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 3)  // r1 = 3
	b.LEA(isa.R2, isa.R0, isa.R1, 4)                  // r2 = 10 + 3<<3 + 4 = 38
	b.Move(isa.R3, isa.R2)                            // r3 = 38
	b.Mul(isa.R4, isa.R0, isa.R1, 5)                  // r4 = mix(...)
	b.Div(isa.R5, isa.R2, isa.R1, 1)                  // r5 = 38/3 + 1 = 13
	b.Cvt(isa.R6, isa.R0, 0)                          // r6 = rotl(10, 32)
	b.FPMove(isa.F1, isa.F0)
	b.FPAdd(isa.F2, isa.F0, isa.F1, 7)
	b.FPMul(isa.F3, isa.F1, isa.F2, 9)
	b.FPDiv(isa.F4, isa.F2, isa.F3, 1)
	b.BranchReg(isa.R1, PredNotZero, "target") // r1=3: flags view 3 has bit0 -> "zero set" -> jne not taken
	b.Nop()
	b.Label("target")
	b.CallInd(isa.R14, isa.R1, "fa", "fb") // selector 3 % 2 = 1 -> fb
	b.Jump("end")
	b.Label("fa")
	b.ALU(isa.R7, isa.RegInvalid, isa.RegInvalid, 70)
	b.Ret(isa.R14)
	b.Label("fb")
	b.ALU(isa.R7, isa.RegInvalid, isa.RegInvalid, 71)
	b.Ret(isa.R14)
	b.Label("end")
	b.Raw(isa.NewInst(isa.OpNop, nil, nil))
	p := b.MustBuild()
	if p.Len() != 20 {
		t.Fatalf("program length = %d", p.Len())
	}
	e := NewEmulator(p)
	e.Run(100)
	if e.Steps() == 0 || !e.Done {
		t.Fatal("did not run to completion")
	}
	if e.Regs[isa.R2] != 38 {
		t.Errorf("lea: r2 = %d, want 38", e.Regs[isa.R2])
	}
	if e.Regs[isa.R3] != 38 {
		t.Errorf("move: r3 = %d", e.Regs[isa.R3])
	}
	if e.Regs[isa.R5] != 13 {
		t.Errorf("div: r5 = %d, want 13", e.Regs[isa.R5])
	}
	if e.Regs[isa.R7] != 71 {
		t.Errorf("callind selected wrong target: r7 = %d, want 71", e.Regs[isa.R7])
	}
	if e.Regs[isa.F2] != e.Regs[isa.F0]+e.Regs[isa.F1]+7 {
		t.Error("fpadd wrong")
	}
}
