// Package program defines the static program image executed by the
// simulator, the functional semantics of every micro-op, and an in-order
// architectural emulator that serves as the oracle against which the
// out-of-order core's committed stream is validated.
//
// A Program is a flat array of micro-instructions; the PC is the array
// index. Control flow is resolved from real register values at execute
// time — conditional branches test flag bits, indirect jumps select from a
// static target table, returns jump to a link value produced by a call — so
// the out-of-order core can fetch down mispredicted paths and discover the
// truth the same way real hardware does.
package program

import (
	"fmt"
	"math/bits"

	"atr/internal/isa"
)

// Program is an immutable static code image.
type Program struct {
	Code []isa.Inst
	// MemSeed parameterizes the default contents of uninitialized memory.
	MemSeed uint64
	// RegSeed parameterizes the initial architectural register values.
	RegSeed uint64
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// ValidPC reports whether pc indexes a real instruction. The PC one past the
// end is the halt address (valid as a stopping point, not fetchable).
func (p *Program) ValidPC(pc uint64) bool { return pc < uint64(len(p.Code)) }

// HaltPC is the address reached when the program falls off the end.
func (p *Program) HaltPC() uint64 { return uint64(len(p.Code)) }

// At returns the instruction at pc. It panics on an invalid pc; callers must
// gate on ValidPC (the frontend treats invalid PCs as fetch stalls).
func (p *Program) At(pc uint64) *isa.Inst { return &p.Code[pc] }

// InitialRegs returns the seeded initial architectural register file.
func (p *Program) InitialRegs() [isa.NumRegs]uint64 {
	var regs [isa.NumRegs]uint64
	for i := range regs {
		regs[i] = Mix(p.RegSeed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return regs
}

// Mix is the 64-bit finalizer used wherever the semantics need a
// pseudo-random but deterministic value (splitmix64 finalizer).
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Flag bits produced by compares (and fused compare-branches).
const (
	FlagZero  = 1 << 0 // operands equal
	FlagCarry = 1 << 1 // a < b (unsigned)
	FlagSign  = 1 << 2 // high bit of a-b
	FlagOdd   = 1 << 3 // parity of a-b
)

// cmpFlags computes the flag word for a compare of a against b.
func cmpFlags(a, b uint64) uint64 {
	d := a - b
	var f uint64
	if d == 0 {
		f |= FlagZero
	}
	if a < b {
		f |= FlagCarry
	}
	if d>>63 != 0 {
		f |= FlagSign
	}
	if bits.OnesCount64(d)%2 == 1 {
		f |= FlagOdd
	}
	return f
}

// Branch predicates, selected by the low bits of a branch's Imm.
const (
	PredZero    = 0 // taken iff FlagZero set (je)
	PredNotZero = 1 // taken iff FlagZero clear (jne)
	PredCarry   = 2 // taken iff FlagCarry set (jb)
	PredNoCarry = 3 // taken iff FlagCarry clear (jae)
	PredSign    = 4 // taken iff FlagSign set (js)
	PredNotSign = 5 // taken iff FlagSign clear (jns)
	PredOdd     = 6 // taken iff FlagOdd set
	PredEven    = 7 // taken iff FlagOdd clear
	numPreds    = 8
)

// predTaken evaluates predicate p against a flag word.
func predTaken(p int64, flags uint64) bool {
	bit := uint64(1) << uint(p>>1)
	set := flags&bit != 0
	if p&1 == 0 {
		return set
	}
	return !set
}

// EffAddr computes the effective address of a memory op: base (Target) plus
// (src0+Imm) mod Span, aligned to 8 bytes.
func EffAddr(in *isa.Inst, src0 uint64) uint64 {
	off := src0 + uint64(in.Imm)
	if in.Span > 8 {
		off %= in.Span
	} else {
		off = 0
	}
	return in.Target + (off &^ 7)
}

// Outcome is the result of functionally executing one instruction.
type Outcome struct {
	DstVals  [isa.MaxDsts]uint64
	EA       uint64 // effective address (memory ops)
	StoreVal uint64 // value written (stores)
	Taken    bool   // conditional branch direction
	NextPC   uint64 // architectural next PC
}

// Eval executes in at pc with the given source values, using load to read
// memory (loads only). It is the single definition of the ISA's semantics,
// shared by the in-order emulator and the out-of-order execute stage; src
// values are looked up positionally (srcs[i] corresponds to in.Srcs[i], and
// must be present for every valid source).
func Eval(in *isa.Inst, pc uint64, srcs []uint64, load func(addr uint64) uint64) Outcome {
	out := Outcome{NextPC: pc + 1}
	s := func(i int) uint64 {
		if i < len(srcs) && in.Srcs[i].Valid() {
			return srcs[i]
		}
		return 0
	}
	switch in.Op {
	case isa.OpNop:
	case isa.OpALU:
		out.DstVals[0] = s(0) + s(1) + uint64(in.Imm)
		if in.Dsts[1].Valid() {
			// x86-style dual destination: the ALU also produces a
			// flag word derived from its result.
			out.DstVals[1] = cmpFlags(out.DstVals[0], 0)
		}
	case isa.OpLEA:
		out.DstVals[0] = s(0) + s(1)<<3 + uint64(in.Imm)
	case isa.OpMove, isa.OpFPMove:
		out.DstVals[0] = s(0)
	case isa.OpMul:
		out.DstVals[0] = Mix(s(0) ^ bits.RotateLeft64(s(1), 17) ^ uint64(in.Imm))
	case isa.OpDiv:
		out.DstVals[0] = s(0)/(s(1)|1) + uint64(in.Imm)
	case isa.OpCmp:
		out.DstVals[0] = cmpFlags(s(0), s(1)+uint64(in.Imm))
	case isa.OpLoad:
		out.EA = EffAddr(in, s(0))
		out.DstVals[0] = load(out.EA)
	case isa.OpStore:
		out.EA = EffAddr(in, s(0))
		out.StoreVal = s(1)
	case isa.OpBranch:
		flags := s(0)
		if in.Dsts[0].Valid() {
			// Fused compare-and-branch (TEST+JNZ style): computes
			// flags from its operands and branches on them.
			flags = cmpFlags(s(0), s(1)+uint64(in.Imm>>3))
			out.DstVals[0] = flags
		}
		out.Taken = predTaken(in.Imm&7, flags)
		if out.Taken {
			out.NextPC = in.Target
		}
	case isa.OpJump:
		out.Taken = true
		out.NextPC = in.Target
	case isa.OpCall:
		out.Taken = true
		out.DstVals[0] = pc + 1 // link value
		out.NextPC = in.Target
	case isa.OpJumpInd:
		out.Taken = true
		out.NextPC = indirectTarget(in, s(0))
	case isa.OpCallInd:
		out.Taken = true
		out.DstVals[0] = pc + 1
		out.NextPC = indirectTarget(in, s(0))
	case isa.OpRet:
		out.Taken = true
		out.NextPC = s(0) // link value is the return address
	case isa.OpFPAdd:
		out.DstVals[0] = s(0) + s(1) + uint64(in.Imm)
	case isa.OpFPMul:
		out.DstVals[0] = Mix(s(0) ^ s(1) ^ uint64(in.Imm))
	case isa.OpFPDiv:
		out.DstVals[0] = bits.RotateLeft64(s(0), 9) ^ s(1) + uint64(in.Imm)
	case isa.OpCvt:
		out.DstVals[0] = bits.RotateLeft64(s(0), 32) ^ uint64(in.Imm)
	default:
		panic(fmt.Sprintf("program: Eval of unknown op %v", in.Op))
	}
	return out
}

func indirectTarget(in *isa.Inst, sel uint64) uint64 {
	if len(in.Targets) == 0 {
		return in.Target
	}
	return in.Targets[sel%uint64(len(in.Targets))]
}

// Memory is a sparse 64-bit-word memory whose uninitialized contents are a
// deterministic function of the address and a seed, so that two Memory
// instances built with the same seed observe identical values.
//
// The written-word image is an open-addressed hash table with linear
// probing rather than a Go map: Read/Write sit on the emulator's
// per-instruction path (and the pipeline's execute stage), where the
// flat table is ~2x faster, and checkpoint restore can clone it with two
// memmoves instead of a rehash. Written addresses are 8-aligned, so keys
// are stored with bit 0 set and 0 marks an empty slot.
type Memory struct {
	seed uint64
	keys []uint64 // addr|1, 0 = empty
	vals []uint64
	n    int // occupied slots

	// base, when non-nil, makes this a copy-on-write overlay: reads that
	// miss the local table fall through to base, writes stay local. A
	// sampled-simulation driver hands each detail window an overlay over
	// the warmer's memory so per-window setup is O(1) instead of
	// O(working set). The base must not be mutated while the overlay is
	// live.
	base *Memory
}

// memoryMinSlots is the initial table size on first write (power of two).
const memoryMinSlots = 1024

// memSlot maps an (aligned) address to its preferred table slot: the 64-byte
// line is hashed and the word's offset within the line is kept, so spatially
// adjacent words occupy adjacent slots. Program memory access has strong
// spatial locality, and preserving it in the table layout is worth several
// DRAM misses per instruction once the working set outgrows the LLC.
func memSlot(addr uint64) uint64 {
	return Mix(addr>>6)*8 + (addr>>3)&7
}

// NewMemory creates a memory with the given content seed.
func NewMemory(seed uint64) *Memory {
	return &Memory{seed: seed}
}

// Read returns the 8-byte word at addr (aligned down).
func (m *Memory) Read(addr uint64) uint64 {
	addr &^= 7
	if m.n > 0 {
		mask := uint64(len(m.keys) - 1)
		key := addr | 1
		for i := memSlot(addr) & mask; ; i = (i + 1) & mask {
			k := m.keys[i]
			if k == key {
				return m.vals[i]
			}
			if k == 0 {
				break
			}
		}
	}
	if m.base != nil {
		return m.base.Read(addr)
	}
	return Mix(addr ^ m.seed)
}

// Write stores an 8-byte word at addr (aligned down).
func (m *Memory) Write(addr, val uint64) {
	addr &^= 7
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	key := addr | 1
	for i := memSlot(addr) & mask; ; i = (i + 1) & mask {
		k := m.keys[i]
		if k == key {
			m.vals[i] = val
			return
		}
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		}
	}
}

// grow doubles the table (or allocates the initial one) and rehashes.
func (m *Memory) grow() {
	newLen := memoryMinSlots
	if len(m.keys) > 0 {
		newLen = 2 * len(m.keys)
	}
	keys, vals := m.keys, m.vals
	m.keys = make([]uint64, newLen)
	m.vals = make([]uint64, newLen)
	mask := uint64(newLen - 1)
	for i, k := range keys {
		if k == 0 {
			continue
		}
		for j := memSlot(k&^7) & mask; ; j = (j + 1) & mask {
			if m.keys[j] == 0 {
				m.keys[j] = k
				m.vals[j] = vals[i]
				break
			}
		}
	}
}

// Written returns the number of distinct words ever written.
func (m *Memory) Written() int { return m.n }

// Clone returns an independent copy of the memory image in O(table size)
// with no rehashing — the checkpoint-restore fast path. Cloning an overlay
// shares the (immutable-by-contract) base.
func (m *Memory) Clone() *Memory {
	return &Memory{
		seed: m.seed,
		keys: append([]uint64(nil), m.keys...),
		vals: append([]uint64(nil), m.vals...),
		n:    m.n,
		base: m.base,
	}
}

// NewOverlay returns a copy-on-write view of base: reads see base's current
// contents, writes land only in the overlay. The base must not be written
// while the overlay is in use.
func NewOverlay(base *Memory) *Memory {
	return &Memory{seed: base.seed, base: base}
}

// Record is one architecturally committed instruction, used to compare the
// out-of-order core's committed stream against the in-order emulator.
type Record struct {
	PC       uint64
	Op       isa.Op
	DstVals  [isa.MaxDsts]uint64
	EA       uint64
	StoreVal uint64
	Taken    bool
	NextPC   uint64
}

// Emulator executes a Program in order, one instruction per Step. It is the
// architectural oracle.
type Emulator struct {
	Prog *Program
	Regs [isa.NumRegs]uint64
	Mem  *Memory
	PC   uint64
	Done bool

	steps uint64
}

// NewEmulator creates an emulator positioned at PC 0 with seeded state.
func NewEmulator(p *Program) *Emulator {
	return &Emulator{
		Prog: p,
		Regs: p.InitialRegs(),
		Mem:  NewMemory(p.MemSeed),
	}
}

// Steps returns the number of instructions executed so far.
func (e *Emulator) Steps() uint64 { return e.steps }

// Step executes one instruction and returns its record. ok is false once the
// program has halted (PC ran past the end).
func (e *Emulator) Step() (rec Record, ok bool) {
	ok = e.StepInto(&rec)
	return rec, ok
}

// StepInto executes one instruction, writing its record into *rec — the
// copy-free core of Step for fast-forward loops that execute millions of
// instructions and only inspect a field or two per record. When it returns
// false (program halted) *rec is left zeroed.
func (e *Emulator) StepInto(rec *Record) bool {
	if e.Done || !e.Prog.ValidPC(e.PC) {
		e.Done = true
		*rec = Record{}
		return false
	}
	in := e.Prog.At(e.PC)
	var srcs [isa.MaxSrcs]uint64
	for i, r := range in.Srcs {
		if r.Valid() {
			srcs[i] = e.Regs[r]
		}
	}
	out := Eval(in, e.PC, srcs[:], e.Mem.Read)
	for i, r := range in.Dsts {
		if r.Valid() {
			e.Regs[r] = out.DstVals[i]
		}
	}
	if in.Op == isa.OpStore {
		e.Mem.Write(out.EA, out.StoreVal)
	}
	rec.PC, rec.Op, rec.DstVals = e.PC, in.Op, out.DstVals
	rec.EA, rec.StoreVal, rec.Taken, rec.NextPC = out.EA, out.StoreVal, out.Taken, out.NextPC
	e.PC = out.NextPC
	e.steps++
	if !e.Prog.ValidPC(e.PC) {
		e.Done = true
	}
	return true
}

// Run executes up to n instructions and returns their records.
func (e *Emulator) Run(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec, ok := e.Step()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs
}
