package program

import (
	"fmt"

	"atr/internal/isa"
)

// Builder assembles a Program with symbolic labels. Methods append one
// instruction each and return the builder for chaining. Branch and jump
// targets may reference labels defined later; Build resolves them.
type Builder struct {
	code    []isa.Inst
	labels  map[string]uint64
	fixups  []fixup
	memSeed uint64
	regSeed uint64
	err     error
}

type fixup struct {
	pc    int
	label string
	slot  int // -1 for Target field, else index into Targets
}

// NewBuilder returns an empty builder with the given value seeds.
func NewBuilder(regSeed, memSeed uint64) *Builder {
	return &Builder{labels: make(map[string]uint64), memSeed: memSeed, regSeed: regSeed}
}

// PC returns the address of the next instruction to be appended.
func (b *Builder) PC() uint64 { return uint64(len(b.code)) }

// Label defines name at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("program: duplicate label %q", name)
	}
	b.labels[name] = b.PC()
	return b
}

func (b *Builder) emit(in isa.Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.NewInst(isa.OpNop, nil, nil)) }

// ALU appends dst = a + b + imm.
func (b *Builder) ALU(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpALU, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// LEA appends dst = a + b<<3 + imm.
func (b *Builder) LEA(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpLEA, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// Move appends dst = src.
func (b *Builder) Move(dst, src isa.Reg) *Builder {
	return b.emit(isa.NewInst(isa.OpMove, []isa.Reg{dst}, []isa.Reg{src}))
}

// Mul appends dst = mix(a, b, imm) — a value-randomizing multiply.
func (b *Builder) Mul(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpMul, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// Div appends dst = a / (b|1) + imm (a faultable long-latency op).
func (b *Builder) Div(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpDiv, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// Cmp appends flagsDst = flags(a ? b+imm).
func (b *Builder) Cmp(a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpCmp, []isa.Reg{isa.Flags}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// Load appends dst = mem[base + ((a+disp) mod span)] over the region at
// base.
func (b *Builder) Load(dst, a isa.Reg, base, span uint64, disp int64) *Builder {
	in := isa.NewInst(isa.OpLoad, []isa.Reg{dst}, []isa.Reg{a})
	in.Target, in.Span, in.Imm = base, span, disp
	return b.emit(in)
}

// Store appends mem[base + ((a+disp) mod span)] = val.
func (b *Builder) Store(a, val isa.Reg, base, span uint64, disp int64) *Builder {
	in := isa.NewInst(isa.OpStore, nil, []isa.Reg{a, val})
	in.Target, in.Span, in.Imm = base, span, disp
	return b.emit(in)
}

// Branch appends a conditional branch on the flags register with predicate
// pred, targeting label.
func (b *Builder) Branch(pred int64, label string) *Builder {
	in := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
	in.Imm = pred & 7
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label, slot: -1})
	return b.emit(in)
}

// BranchReg appends a conditional branch testing register src directly
// (treating its value as a flag word).
func (b *Builder) BranchReg(src isa.Reg, pred int64, label string) *Builder {
	in := isa.NewInst(isa.OpBranch, nil, []isa.Reg{src})
	in.Imm = pred & 7
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label, slot: -1})
	return b.emit(in)
}

// FusedBranch appends a fused compare-and-branch: computes flags from (a,b),
// writes them to flagsDst, and branches on pred.
func (b *Builder) FusedBranch(a, bsrc isa.Reg, pred, cmpImm int64, label string) *Builder {
	in := isa.NewInst(isa.OpBranch, []isa.Reg{isa.Flags}, srcList(a, bsrc))
	in.Imm = pred&7 | cmpImm<<3
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label, slot: -1})
	return b.emit(in)
}

// Jump appends an unconditional direct jump to label.
func (b *Builder) Jump(label string) *Builder {
	in := isa.NewInst(isa.OpJump, nil, nil)
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label, slot: -1})
	return b.emit(in)
}

// Call appends a direct call to label, writing the return address into link.
func (b *Builder) Call(link isa.Reg, label string) *Builder {
	in := isa.NewInst(isa.OpCall, []isa.Reg{link}, nil)
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label, slot: -1})
	return b.emit(in)
}

// Ret appends a return through the link register.
func (b *Builder) Ret(link isa.Reg) *Builder {
	return b.emit(isa.NewInst(isa.OpRet, nil, []isa.Reg{link}))
}

// JumpInd appends an indirect jump selecting among the labeled targets by
// sel's value.
func (b *Builder) JumpInd(sel isa.Reg, labels ...string) *Builder {
	in := isa.NewInst(isa.OpJumpInd, nil, []isa.Reg{sel})
	in.Targets = make([]uint64, len(labels))
	for i, l := range labels {
		b.fixups = append(b.fixups, fixup{pc: len(b.code), label: l, slot: i})
	}
	return b.emit(in)
}

// CallInd appends an indirect call selecting among the labeled targets.
func (b *Builder) CallInd(link, sel isa.Reg, labels ...string) *Builder {
	in := isa.NewInst(isa.OpCallInd, []isa.Reg{link}, []isa.Reg{sel})
	in.Targets = make([]uint64, len(labels))
	for i, l := range labels {
		b.fixups = append(b.fixups, fixup{pc: len(b.code), label: l, slot: i})
	}
	return b.emit(in)
}

// FPAdd appends dst = a + b + imm on the FP pipes.
func (b *Builder) FPAdd(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpFPAdd, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// FPMul appends dst = mix(a, b, imm) on the FP pipes.
func (b *Builder) FPMul(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpFPMul, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// FPDiv appends a long-latency faultable FP divide.
func (b *Builder) FPDiv(dst, a, bsrc isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpFPDiv, []isa.Reg{dst}, srcList(a, bsrc))
	in.Imm = imm
	return b.emit(in)
}

// FPMove appends dst = src on the FP pipes.
func (b *Builder) FPMove(dst, src isa.Reg) *Builder {
	return b.emit(isa.NewInst(isa.OpFPMove, []isa.Reg{dst}, []isa.Reg{src}))
}

// Cvt appends an int<->fp conversion dst = cvt(src).
func (b *Builder) Cvt(dst, src isa.Reg, imm int64) *Builder {
	in := isa.NewInst(isa.OpCvt, []isa.Reg{dst}, []isa.Reg{src})
	in.Imm = imm
	return b.emit(in)
}

// Raw appends a pre-built instruction unchanged.
func (b *Builder) Raw(in isa.Inst) *Builder { return b.emit(in) }

func srcList(a, bsrc isa.Reg) []isa.Reg {
	if bsrc == isa.RegInvalid {
		return []isa.Reg{a}
	}
	return []isa.Reg{a, bsrc}
}

// Build resolves labels and returns the program. It fails on undefined
// labels or duplicate label definitions.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program: undefined label %q referenced at pc %d", f.label, f.pc)
		}
		if f.slot < 0 {
			b.code[f.pc].Target = pc
		} else {
			b.code[f.pc].Targets[f.slot] = pc
		}
	}
	code := make([]isa.Inst, len(b.code))
	copy(code, b.code)
	return &Program{Code: code, MemSeed: b.memSeed, RegSeed: b.regSeed}, nil
}

// MustBuild is Build but panics on error; for tests and examples.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
