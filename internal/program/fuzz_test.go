package program_test

import (
	"testing"

	"atr/internal/isa"
	"atr/internal/program"
	"atr/internal/workload"
)

// FuzzEmulator drives the in-order architectural oracle across generated
// programs: for any profile the emulator must halt within its step bound or
// keep executing valid PCs, thread a consistent PC chain through its commit
// records, keep every memory access inside the instruction's declared
// window, touch no more memory words than it executed stores, and replay
// bit-identically from a fresh emulator. The target shares FuzzProgramBuild's
// signature, so its seed corpus files are interchangeable.
func FuzzEmulator(f *testing.F) {
	for _, p := range workload.Profiles() {
		seed, ws, a := workload.FuzzArgs(p)
		f.Add(seed, ws,
			a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8], a[9],
			a[10], a[11], a[12], a[13], a[14], a[15], a[16], a[17], a[18])
	}
	f.Fuzz(func(t *testing.T, seed uint64, ws uint32,
		load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
		branchEvery, regWindow, loops, trip, blockLen, funcs, flags uint16) {

		p := workload.FuzzProfile(seed, ws,
			load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
			branchEvery, regWindow, loops, trip, blockLen, funcs, flags)
		prog := p.Generate()
		bound := 2000 + int(seed%6000)

		e := program.NewEmulator(prog)
		recs := e.Run(bound)

		if len(recs) > bound {
			t.Fatalf("emulator returned %d records for a bound of %d", len(recs), bound)
		}
		if got := e.Steps(); got != uint64(len(recs)) {
			t.Fatalf("Steps() = %d, but %d records returned", got, len(recs))
		}
		if len(recs) < bound && !e.Done {
			t.Fatalf("emulator stopped after %d < %d steps without halting", len(recs), bound)
		}
		if e.Done && prog.ValidPC(e.PC) {
			t.Fatalf("emulator done but PC %d is still inside the program", e.PC)
		}

		stores := 0
		for i, rec := range recs {
			if !prog.ValidPC(rec.PC) {
				t.Fatalf("record %d committed PC %d outside program of %d instructions",
					i, rec.PC, prog.Len())
			}
			if i == 0 && rec.PC != 0 {
				t.Fatalf("first committed PC = %d, want 0", rec.PC)
			}
			if i+1 < len(recs) && recs[i+1].PC != rec.NextPC {
				t.Fatalf("record %d: NextPC %d but record %d committed at PC %d",
					i, rec.NextPC, i+1, recs[i+1].PC)
			}
			in := prog.At(rec.PC)
			if in.Op.IsMem() && in.Span > 8 {
				if rec.EA < in.Target || rec.EA >= in.Target+in.Span {
					t.Fatalf("record %d: %v EA %#x outside [%#x, %#x)",
						i, in.Op, rec.EA, in.Target, in.Target+in.Span)
				}
				if rec.EA%8 != 0 {
					t.Fatalf("record %d: unaligned EA %#x", i, rec.EA)
				}
			}
			if in.Op == isa.OpStore {
				stores++
			}
		}
		if w := e.Mem.Written(); w > stores {
			t.Fatalf("memory holds %d written words after only %d stores", w, stores)
		}

		// The oracle must be deterministic: a fresh emulator over the same
		// program replays the exact record stream.
		again := program.NewEmulator(prog).Run(bound)
		if len(again) != len(recs) {
			t.Fatalf("replay committed %d records, first run %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("replay diverged at record %d:\n first %+v\nreplay %+v",
					i, recs[i], again[i])
			}
		}
	})
}
