package program

import (
	"sort"

	"atr/internal/isa"
)

// This file is the architectural half of checkpoint/restore: a serializable
// snapshot of the in-order machine state (registers, PC, and the sparse
// written-word memory image) that a restored emulator — or a detailed
// pipeline primed via pipeline.Restore — resumes from bit-exactly.
// Unwritten memory needs no snapshotting at all: its contents are a pure
// function of (address, seed), so the image is only the written words.

// MemWord is one written 8-byte word of the sparse memory image.
type MemWord struct {
	Addr uint64 `json:"addr"`
	Val  uint64 `json:"val"`
}

// ArchState is the complete architectural state of a program at one
// instruction boundary. Two emulators with equal ArchState produce
// identical instruction streams forever after.
type ArchState struct {
	PC      uint64              `json:"pc"`
	Regs    [isa.NumRegs]uint64 `json:"regs"`
	MemSeed uint64              `json:"mem_seed"`
	Mem     []MemWord           `json:"mem,omitempty"` // sorted by Addr
	Steps   uint64              `json:"steps"`
	Done    bool                `json:"done,omitempty"`
}

// Seed returns the memory's uninitialized-content seed.
func (m *Memory) Seed() uint64 { return m.seed }

// Snapshot returns the written words sorted by address — the deterministic
// serialization of the memory image (table layout never leaks out). An
// unwritten memory snapshots to nil, so the JSON form (whose omitempty drops
// the field) decodes back to an equal value.
func (m *Memory) Snapshot() []MemWord {
	if m.n == 0 {
		return nil
	}
	words := make([]MemWord, 0, m.n)
	for i, k := range m.keys {
		if k != 0 {
			words = append(words, MemWord{Addr: k &^ 7, Val: m.vals[i]})
		}
	}
	sort.Slice(words, func(i, j int) bool { return words[i].Addr < words[j].Addr })
	return words
}

// RestoreMemory builds a memory whose observable contents equal the one a
// Snapshot was taken from.
func RestoreMemory(seed uint64, words []MemWord) *Memory {
	m := NewMemory(seed)
	for _, w := range words {
		m.Write(w.Addr, w.Val)
	}
	return m
}

// Checkpoint captures the emulator's architectural state.
func (e *Emulator) Checkpoint() ArchState {
	return ArchState{
		PC:      e.PC,
		Regs:    e.Regs,
		MemSeed: e.Mem.Seed(),
		Mem:     e.Mem.Snapshot(),
		Steps:   e.steps,
		Done:    e.Done,
	}
}

// NewMemory materializes the snapshot's memory image.
func (st *ArchState) NewMemory() *Memory {
	return RestoreMemory(st.MemSeed, st.Mem)
}

// RestoreEmulator builds an emulator for p positioned exactly at st: its
// subsequent Step stream is bit-identical to the emulator the checkpoint
// was captured from.
func RestoreEmulator(p *Program, st *ArchState) *Emulator {
	return &Emulator{
		Prog:  p,
		Regs:  st.Regs,
		Mem:   st.NewMemory(),
		PC:    st.PC,
		Done:  st.Done,
		steps: st.Steps,
	}
}
