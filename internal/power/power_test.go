package power

import (
	"testing"

	"atr/internal/config"
)

func TestAreaMonotonicInRegisters(t *testing.T) {
	cfg := config.GoldenCove()
	small := CoreArea(cfg.WithPhysRegs(64))
	large := CoreArea(cfg.WithPhysRegs(280))
	if small.RegisterFile >= large.RegisterFile {
		t.Errorf("RF area not monotonic: %v vs %v", small.RegisterFile, large.RegisterFile)
	}
	if small.Total() >= large.Total() {
		t.Errorf("total area not monotonic: %v vs %v", small.Total(), large.Total())
	}
	// Non-RF components are unaffected.
	if small.ROB != large.ROB || small.Caches != large.Caches {
		t.Error("non-RF area should not depend on PhysRegs")
	}
}

func TestAreaComponentsPositive(t *testing.T) {
	a := CoreArea(config.GoldenCove())
	for name, v := range map[string]float64{
		"rf": a.RegisterFile, "rob": a.ROB, "rs": a.RS, "lsq": a.LSQ,
		"caches": a.Caches, "alus": a.ALUs, "bpred": a.Bpred,
		"frontend": a.Frontend, "other": a.Other,
	} {
		if v <= 0 {
			t.Errorf("%s area = %v, want > 0", name, v)
		}
	}
	total := a.Total()
	if total < 3 || total > 50 {
		t.Errorf("total core area %.2f mm² implausible", total)
	}
}

func TestRFAreaReductionBand(t *testing.T) {
	// The paper's Fig 15 reports a 2.7% core-area reduction for a 27%
	// register-file shrink (280 -> 204). Our model should land in the
	// same order of magnitude.
	cfg := config.GoldenCove()
	full := CoreArea(cfg.WithPhysRegs(280)).Total()
	shrunk := CoreArea(cfg.WithPhysRegs(204)).Total()
	red := 1 - shrunk/full
	if red < 0.005 || red > 0.10 {
		t.Errorf("area reduction %.3f outside the plausible 0.5%%..10%% band", red)
	}
}

func testActivity() Activity {
	return Activity{
		Cycles: 1_000_000, Committed: 1_500_000, Renamed: 1_200_000,
		SrcReads: 2_500_000, CacheAcc: 2_000_000, Flushed: 150_000,
		BranchOps: 250_000, ALUOps: 900_000, MemOps: 500_000,
	}
}

func TestRuntimePowerPlausible(t *testing.T) {
	p := RuntimePower(config.GoldenCove(), testActivity())
	if p.Dynamic <= 0 || p.Static <= 0 {
		t.Fatalf("power components must be positive: %+v", p)
	}
	if p.Total() < 0.5 || p.Total() > 50 {
		t.Errorf("core power %.2f W implausible", p.Total())
	}
}

func TestPowerScalesWithRegisters(t *testing.T) {
	act := testActivity()
	small := RuntimePower(config.GoldenCove().WithPhysRegs(64), act)
	large := RuntimePower(config.GoldenCove().WithPhysRegs(280), act)
	if small.Total() >= large.Total() {
		t.Errorf("same activity on a smaller RF must use less power: %v vs %v",
			small.Total(), large.Total())
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	cfg := config.GoldenCove()
	lo := RuntimePower(cfg, testActivity())
	hi := testActivity()
	hi.SrcReads *= 2
	hi.ALUOps *= 2
	hiP := RuntimePower(cfg, hi)
	if hiP.Dynamic <= lo.Dynamic {
		t.Error("dynamic power must grow with activity")
	}
	if hiP.Static != lo.Static {
		t.Error("static power must not depend on activity")
	}
}

func TestZeroCycles(t *testing.T) {
	p := RuntimePower(config.GoldenCove(), Activity{})
	if p.Dynamic != 0 || p.Static <= 0 {
		t.Errorf("zero-cycle run: %+v", p)
	}
}
