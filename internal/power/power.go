// Package power is an analytic McPAT-style power and area model for the
// simulated core, used to reproduce the paper's Fig 15 efficiency numbers
// (runtime power and core area deltas between register-release schemes).
//
// The model follows McPAT's structure-level decomposition: each major block
// contributes area and energy-per-access terms that scale with its geometry
// (entries, ports, width). Absolute values are calibrated to a Golden
// Cove-like core at a nominal process; the experiments report ratios, which
// are insensitive to the calibration constants.
package power

import (
	"math"

	"atr/internal/config"
)

// Technology/calibration constants (nominal 7nm-class, arbitrary but
// self-consistent units: mm² for area, pJ for energy, W for static power).
const (
	regCellArea   = 0.00035 // mm² per 64-bit register cell incl. decode
	portAreaFac   = 0.18    // area growth per additional RF port (relative)
	regReadPJ     = 0.9     // pJ per 64-bit register read at base porting
	regWritePJ    = 1.3     // pJ per 64-bit register write
	robEntryArea  = 0.00060
	robAccessPJ   = 1.1
	rsEntryArea   = 0.00110 // CAM-heavy
	rsAccessPJ    = 2.4
	lsqEntryArea  = 0.00095
	lsqAccessPJ   = 1.9
	cacheMM2PerKB = 0.018
	cacheReadPJ   = 2.2 // per access at L1 geometry, grows with size
	aluArea       = 0.055
	aluPJ         = 3.1
	bpredArea     = 0.30
	bpredPJ       = 1.4
	frontendArea  = 1.9 // decode/fetch fixed blocks
	staticWPerMM2 = 0.045
	clockGHz      = 3.0
	baseCoreArea  = 2.2 // wires, TLBs, misc
)

// rfPorts returns the read/write port count implied by the machine width.
func rfPorts(cfg config.Config) (reads, writes int) {
	return 2 * cfg.RenameWidth, cfg.RenameWidth
}

// Area is the static area breakdown in mm².
type Area struct {
	RegisterFile float64
	ROB          float64
	RS           float64
	LSQ          float64
	Caches       float64
	ALUs         float64
	Bpred        float64
	Frontend     float64
	Other        float64
}

// Total returns the summed core area.
func (a Area) Total() float64 {
	return a.RegisterFile + a.ROB + a.RS + a.LSQ + a.Caches + a.ALUs +
		a.Bpred + a.Frontend + a.Other
}

// CoreArea computes the area model for cfg. Only core-private structures are
// counted (the shared LLC is excluded, as in per-core comparisons).
func CoreArea(cfg config.Config) Area {
	regs := cfg.PhysRegs
	if regs == 0 {
		regs = 512 // "infinite" configurations modelled as ROB-sized
	}
	r, w := rfPorts(cfg)
	portFactor := 1 + portAreaFac*float64(r+w-3)
	// Both the scalar and the FP file; the FP file's wider cells are
	// folded into a 2.5x cell factor.
	rfArea := float64(regs) * regCellArea * portFactor * (1 + 2.5)

	cacheKB := float64(cfg.L1I.SizeBytes+cfg.L1D.SizeBytes+cfg.L2.SizeBytes) / 1024
	return Area{
		RegisterFile: rfArea,
		ROB:          float64(cfg.ROBSize) * robEntryArea,
		RS:           float64(cfg.RSSize) * rsEntryArea,
		LSQ:          float64(cfg.LoadQueue+cfg.StoreQueue) * lsqEntryArea,
		Caches:       cacheKB * cacheMM2PerKB,
		ALUs:         float64(cfg.NumALU+cfg.NumLoadPorts+cfg.NumStorePorts) * aluArea,
		Bpred:        bpredArea,
		Frontend:     frontendArea,
		Other:        baseCoreArea,
	}
}

// Activity summarizes one simulation run's event counts for dynamic power.
type Activity struct {
	Cycles    uint64
	Committed uint64
	Renamed   uint64 // register allocations (RF writes at rename+writeback)
	SrcReads  uint64 // operand reads
	CacheAcc  uint64 // L1 accesses (I+D)
	Flushed   uint64 // squashed instructions (wasted work)
	BranchOps uint64
	ALUOps    uint64
	MemOps    uint64
}

// Power is the runtime power breakdown in watts.
type Power struct {
	Dynamic float64
	Static  float64
}

// Total returns dynamic plus static power.
func (p Power) Total() float64 { return p.Dynamic + p.Static }

// RuntimePower evaluates the power model for a run: dynamic energy from the
// activity counts divided by runtime, plus leakage proportional to area.
func RuntimePower(cfg config.Config, act Activity) Power {
	area := CoreArea(cfg)
	if act.Cycles == 0 {
		return Power{Static: area.Total() * staticWPerMM2}
	}
	regs := cfg.PhysRegs
	if regs == 0 {
		regs = 512
	}
	// Per-access energies grow weakly with structure size (wordline/
	// bitline length ~ sqrt of entries).
	rfScale := math.Sqrt(float64(regs) / 128.0)
	cacheScale := math.Sqrt(float64(cfg.L1D.SizeBytes) / float64(48<<10))

	pj := float64(act.SrcReads)*regReadPJ*rfScale +
		float64(act.Renamed)*2*regWritePJ*rfScale + // allocate + writeback
		float64(act.Committed+act.Flushed)*(robAccessPJ+rsAccessPJ) +
		float64(act.MemOps)*lsqAccessPJ +
		float64(act.CacheAcc)*cacheReadPJ*cacheScale +
		float64(act.ALUOps)*aluPJ +
		float64(act.BranchOps)*bpredPJ
	seconds := float64(act.Cycles) / (clockGHz * 1e9)
	dynamic := pj * 1e-12 / seconds
	return Power{
		Dynamic: dynamic,
		Static:  area.Total() * staticWPerMM2,
	}
}
