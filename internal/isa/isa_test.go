package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClass(t *testing.T) {
	tests := []struct {
		r     Reg
		class RegClass
		idx   int
	}{
		{R0, ClassGPR, 0},
		{R15, ClassGPR, 15},
		{Flags, ClassGPR, 16},
		{F0, ClassFPR, 0},
		{F15, ClassFPR, 15},
	}
	for _, tt := range tests {
		if got := tt.r.Class(); got != tt.class {
			t.Errorf("%v.Class() = %v, want %v", tt.r, got, tt.class)
		}
		if got := tt.r.ClassIndex(); got != tt.idx {
			t.Errorf("%v.ClassIndex() = %d, want %d", tt.r, got, tt.idx)
		}
	}
}

func TestRegCounts(t *testing.T) {
	if NumGPR != 17 {
		t.Errorf("NumGPR = %d, want 17 (r0..r15 + flags)", NumGPR)
	}
	if NumFPR != 16 {
		t.Errorf("NumFPR = %d, want 16", NumFPR)
	}
	if int(NumRegs) != NumGPR+NumFPR {
		t.Errorf("NumRegs = %d, want %d", NumRegs, NumGPR+NumFPR)
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("%v should be valid", r)
		}
	}
	if NumRegs.Valid() {
		t.Error("NumRegs should not be valid")
	}
	if RegInvalid.Valid() {
		t.Error("RegInvalid should not be valid")
	}
}

func TestRegString(t *testing.T) {
	tests := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R15, "r15"}, {Flags, "flags"}, {F0, "f0"}, {F15, "f15"}, {RegInvalid, "-"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Reg(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	tests := []struct {
		op                        Op
		cond, indirect, fault, fl bool
	}{
		{OpNop, false, false, false, false},
		{OpALU, false, false, false, false},
		{OpMul, false, false, false, false},
		{OpDiv, false, false, true, true},
		{OpLoad, false, false, true, true},
		{OpStore, false, false, true, true},
		{OpBranch, true, false, false, true},
		{OpJump, false, false, false, false},
		{OpJumpInd, false, true, false, true},
		{OpCall, false, false, false, false},
		{OpCallInd, false, true, false, true},
		{OpRet, false, true, false, true},
		{OpFPDiv, false, false, true, true},
		{OpFPAdd, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsCondBranch(); got != tt.cond {
			t.Errorf("%v.IsCondBranch() = %v, want %v", tt.op, got, tt.cond)
		}
		if got := tt.op.IsIndirect(); got != tt.indirect {
			t.Errorf("%v.IsIndirect() = %v, want %v", tt.op, got, tt.indirect)
		}
		if got := tt.op.CanFault(); got != tt.fault {
			t.Errorf("%v.CanFault() = %v, want %v", tt.op, got, tt.fault)
		}
		if got := tt.op.IsFlusher(); got != tt.fl {
			t.Errorf("%v.IsFlusher() = %v, want %v", tt.op, got, tt.fl)
		}
	}
}

func TestBranchClassFlusherCommitsOnFlush(t *testing.T) {
	// A branch-class flusher (mispredicted branch/indirect) commits while
	// flushing younger instructions; a fault-class flusher flushes itself.
	// The distinction drives whether the op's own destination is bulk-marked.
	for op := Op(0); op < NumOps; op++ {
		bc := op.IsBranchClassFlusher()
		want := op.IsCondBranch() || op.IsIndirect()
		if bc != want {
			t.Errorf("%v.IsBranchClassFlusher() = %v, want %v", op, bc, want)
		}
		if bc && op.CanFault() {
			t.Errorf("%v is both branch-class and fault-class", op)
		}
	}
}

func TestOpString(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && len(s) > 2 && s[:3] == "op?" {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestNewInst(t *testing.T) {
	in := NewInst(OpALU, []Reg{R1}, []Reg{R2, R3})
	if in.Op != OpALU {
		t.Fatalf("op = %v", in.Op)
	}
	if got := in.DstRegs(); len(got) != 1 || got[0] != R1 {
		t.Errorf("DstRegs = %v", got)
	}
	if got := in.SrcRegs(); len(got) != 2 || got[0] != R2 || got[1] != R3 {
		t.Errorf("SrcRegs = %v", got)
	}
	if in.Dsts[1] != RegInvalid || in.Srcs[2] != RegInvalid {
		t.Error("unused slots not RegInvalid")
	}
}

func TestNewInstNoOperands(t *testing.T) {
	in := NewInst(OpNop, nil, nil)
	if len(in.DstRegs()) != 0 || len(in.SrcRegs()) != 0 {
		t.Errorf("nop has operands: %v %v", in.DstRegs(), in.SrcRegs())
	}
}

func TestNewInstPanicsOnTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many dsts")
		}
	}()
	NewInst(OpALU, []Reg{R1, R2, R3}, nil)
}

func TestLatencyPositive(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.Latency() <= 0 {
			t.Errorf("%v.Latency() = %d, want > 0", op, op.Latency())
		}
	}
	if OpDiv.Latency() <= OpMul.Latency() {
		t.Error("div should be slower than mul")
	}
	if OpFPDiv.Latency() <= OpFPAdd.Latency() {
		t.Error("fpdiv should be slower than fpadd")
	}
}

func TestFUAssignment(t *testing.T) {
	if OpLoad.FU() != FULoad {
		t.Error("load must use load unit")
	}
	if OpStore.FU() != FUStore {
		t.Error("store must use store unit")
	}
	if OpALU.FU() != FUALU || OpFPMul.FU() != FUALU {
		t.Error("compute ops must use ALU ports")
	}
}

func TestInstString(t *testing.T) {
	in := NewInst(OpALU, []Reg{R1}, []Reg{R2, R3})
	if got := in.String(); got != "alu r1 <- r2,r3" {
		t.Errorf("String() = %q", got)
	}
}

// Property: Class and ClassIndex are a bijection over valid registers.
func TestRegClassIndexBijection(t *testing.T) {
	f := func(b uint8) bool {
		r := Reg(b % uint8(NumRegs))
		switch r.Class() {
		case ClassGPR:
			return Reg(r.ClassIndex()) == r
		case ClassFPR:
			return Reg(r.ClassIndex()+NumGPR) == r
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flusher classification is the union of branch-class and
// fault-class, and the two classes are disjoint.
func TestFlusherPartition(t *testing.T) {
	f := func(b uint8) bool {
		op := Op(b % uint8(NumOps))
		return op.IsFlusher() == (op.IsBranchClassFlusher() || op.CanFault())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
