// Package isa defines the micro-instruction set architecture used by the
// simulator. It is an x86-64-flavoured abstraction: 16 general-purpose
// integer registers plus a renamed flags register, 16 floating-point/vector
// registers, and a small set of operation classes whose only properties that
// matter to register-release schemes are (a) whether they can redirect
// control flow, (b) whether they can raise an exception, and (c) their
// operand registers and execution latency.
package isa

import "fmt"

// Reg identifies an architectural register. Integer registers and the flags
// register live in the GPR class; FP registers live in the FP class.
type Reg uint8

// Architectural register name space. R0..R15 are the integer registers,
// Flags is the renamed x86-style condition-code register, F0..F15 are the
// floating-point/vector registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	Flags // condition codes, renamed like any other register
	F0
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	NumRegs // total architectural registers across both classes

	// RegInvalid marks an unused operand slot.
	RegInvalid Reg = 0xFF
)

// NumGPR is the number of integer-class architectural registers (R0..R15
// plus Flags).
const NumGPR = int(Flags) + 1

// NumFPR is the number of floating-point-class architectural registers.
const NumFPR = int(NumRegs) - NumGPR

// RegClass distinguishes the two physical register files.
type RegClass uint8

// Register classes. Modern cores split scalar and vector register files; the
// paper applies ATR identically to both.
const (
	ClassGPR RegClass = iota
	ClassFPR
	NumClasses
)

// Class reports which register file r belongs to.
func (r Reg) Class() RegClass {
	if r <= Flags {
		return ClassGPR
	}
	return ClassFPR
}

// ClassIndex returns r's index within its class's alias table.
func (r Reg) ClassIndex() int {
	if r <= Flags {
		return int(r)
	}
	return int(r) - NumGPR
}

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string {
	switch {
	case r < Flags:
		return fmt.Sprintf("r%d", int(r))
	case r == Flags:
		return "flags"
	case r < NumRegs:
		return fmt.Sprintf("f%d", int(r)-NumGPR)
	case r == RegInvalid:
		return "-"
	default:
		return fmt.Sprintf("reg?%d", int(r))
	}
}

// Op is a micro-operation class.
type Op uint8

// Operation classes. The release schemes only care about three predicates of
// an op (IsCondBranch/IsIndirect for control, CanFault for exceptions), but
// the execution model assigns each class distinct latencies and functional
// units, and the functional semantics in package program give each class a
// concrete value computation.
const (
	OpNop     Op = iota
	OpALU        // integer add/sub/logic, 1 cycle
	OpLEA        // address computation, 1 cycle
	OpMove       // register move, 1 cycle (eligible for move elimination studies)
	OpMul        // integer multiply, 3 cycles
	OpDiv        // integer divide, 18 cycles, can fault (divide by zero)
	OpCmp        // compare, writes Flags, 1 cycle
	OpLoad       // memory load, cache-dependent latency, can fault
	OpStore      // memory store, can fault
	OpBranch     // conditional branch (possibly fused cmp+branch), can mispredict
	OpJump       // unconditional direct jump
	OpJumpInd    // indirect jump, can mispredict target
	OpCall       // direct call, writes link register semantics via stack
	OpCallInd    // indirect call
	OpRet        // return, indirect via RAS
	OpFPAdd      // FP add/sub, 3 cycles
	OpFPMul      // FP multiply, 4 cycles
	OpFPDiv      // FP divide, 14 cycles, can fault
	OpFPMove     // FP register move
	OpCvt        // int<->fp conversion, 4 cycles
	NumOps
)

var opNames = [NumOps]string{
	"nop", "alu", "lea", "move", "mul", "div", "cmp", "load", "store",
	"branch", "jump", "jumpind", "call", "callind", "ret",
	"fpadd", "fpmul", "fpdiv", "fpmove", "cvt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", int(o))
}

// IsCondBranch reports whether o is a conditional branch (direction can be
// mispredicted). A mispredicted conditional branch still commits; only its
// younger instructions flush.
func (o Op) IsCondBranch() bool { return o == OpBranch }

// IsIndirect reports whether o transfers control to a dynamically computed
// target (target can be mispredicted).
func (o Op) IsIndirect() bool {
	return o == OpJumpInd || o == OpCallInd || o == OpRet
}

// IsBranchClassFlusher reports whether o can flush younger instructions while
// itself committing (mispredicted direction or target). Such an instruction's
// own destination register must be bulk-marked no-early-release, because its
// destination does not flush together with its consumers.
func (o Op) IsBranchClassFlusher() bool { return o.IsCondBranch() || o.IsIndirect() }

// CanFault reports whether o can raise a synchronous exception (page fault,
// divide by zero). A faulting instruction flushes *itself* and everything
// younger, so its own destination dies with its consumers.
func (o Op) CanFault() bool {
	switch o {
	case OpLoad, OpStore, OpDiv, OpFPDiv:
		return true
	}
	return false
}

// IsFlusher reports whether o terminates an atomic commit region: any
// instruction that may change control flow or raise an exception.
func (o Op) IsFlusher() bool { return o.IsBranchClassFlusher() || o.CanFault() }

// IsMem reports whether o accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsControl reports whether o is any control-flow instruction (including
// never-mispredicting direct jumps/calls, which end fetch blocks but do not
// terminate atomic regions by themselves... direct jumps cannot mispredict
// and cannot fault, so they are region-transparent).
func (o Op) IsControl() bool {
	switch o {
	case OpBranch, OpJump, OpJumpInd, OpCall, OpCallInd, OpRet:
		return true
	}
	return false
}

// IsFP reports whether o executes on the FP pipes.
func (o Op) IsFP() bool {
	switch o {
	case OpFPAdd, OpFPMul, OpFPDiv, OpFPMove, OpCvt:
		return true
	}
	return false
}

// MaxSrcs is the maximum number of register sources per micro-op.
const MaxSrcs = 3

// MaxDsts is the maximum number of register destinations per micro-op. x86's
// CPUID writes four registers; we model up to two (value + flags), but the
// renaming machinery is written against this constant.
const MaxDsts = 2

// Inst is a static micro-instruction. The zero value is a nop with no
// operands (all operand slots RegInvalid must be set explicitly via NewInst
// or the program builder; a zero Reg is R0, so code must not rely on zero
// values for operands).
type Inst struct {
	Op   Op
	Dsts [MaxDsts]Reg
	Srcs [MaxSrcs]Reg

	// Imm is an immediate operand. For memory ops it is the displacement;
	// for ALU ops an immediate value; for branches the predicate selector.
	Imm int64

	// Target is the static branch/jump/call target PC (index into the
	// program's instruction array). For memory ops it is reused as the
	// base address of the region the op accesses.
	Target uint64

	// Span is the working-set span in bytes for memory ops: the effective
	// address is Target + ((src0+Imm) mod Span), 8-byte aligned. Zero
	// means a single 8-byte slot at Target.
	Span uint64

	// Targets is the set of possible destinations for indirect jumps and
	// calls; the actual target is Targets[src0 % len(Targets)]. Returns
	// (OpRet) instead jump to the raw source value.
	Targets []uint64
}

// NewInst builds an instruction with the given operands; unused slots are
// filled with RegInvalid.
func NewInst(op Op, dsts []Reg, srcs []Reg) Inst {
	in := Inst{Op: op}
	for i := range in.Dsts {
		in.Dsts[i] = RegInvalid
	}
	for i := range in.Srcs {
		in.Srcs[i] = RegInvalid
	}
	if len(dsts) > MaxDsts {
		panic(fmt.Sprintf("isa: too many destinations (%d > %d)", len(dsts), MaxDsts))
	}
	if len(srcs) > MaxSrcs {
		panic(fmt.Sprintf("isa: too many sources (%d > %d)", len(srcs), MaxSrcs))
	}
	copy(in.Dsts[:], dsts)
	copy(in.Srcs[:], srcs)
	return in
}

// DstRegs returns the valid destination registers.
func (in *Inst) DstRegs() []Reg {
	n := 0
	for _, d := range in.Dsts {
		if d.Valid() {
			n++
		}
	}
	out := make([]Reg, 0, n)
	for _, d := range in.Dsts {
		if d.Valid() {
			out = append(out, d)
		}
	}
	return out
}

// SrcRegs returns the valid source registers.
func (in *Inst) SrcRegs() []Reg {
	out := make([]Reg, 0, MaxSrcs)
	for _, s := range in.Srcs {
		if s.Valid() {
			out = append(out, s)
		}
	}
	return out
}

func (in *Inst) String() string {
	s := in.Op.String()
	sep := " "
	for _, d := range in.Dsts {
		if d.Valid() {
			s += sep + d.String()
			sep = ","
		}
	}
	if len(in.SrcRegs()) > 0 {
		s += " <-"
		sep = " "
		for _, r := range in.Srcs {
			if r.Valid() {
				s += sep + r.String()
				sep = ","
			}
		}
	}
	return s
}

// Latency returns the fixed execution latency of o in cycles. Loads take
// this latency only on an L1 hit; the memory hierarchy adds miss penalties.
func (o Op) Latency() int {
	switch o {
	case OpALU, OpLEA, OpMove, OpCmp, OpNop, OpJump, OpCall, OpRet,
		OpBranch, OpJumpInd, OpCallInd, OpFPMove:
		return 1
	case OpMul:
		return 3
	case OpDiv:
		return 18
	case OpLoad:
		return 1 // address generation; data latency comes from the hierarchy
	case OpStore:
		return 1
	case OpFPAdd:
		return 3
	case OpFPMul, OpCvt:
		return 4
	case OpFPDiv:
		return 14
	}
	return 1
}

// FUKind identifies a functional-unit type for issue-port modeling.
type FUKind uint8

// Functional unit kinds, matching the Table 1 port budget (5 ALU, 3 load,
// 2 store). FP ops share the ALU ports as in Golden Cove's unified scheduler.
const (
	FUALU FUKind = iota
	FULoad
	FUStore
	NumFUKinds
)

// FU returns the functional-unit kind that executes o.
func (o Op) FU() FUKind {
	switch o {
	case OpLoad:
		return FULoad
	case OpStore:
		return FUStore
	default:
		return FUALU
	}
}
