package batch

import (
	"reflect"
	"testing"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/workload"
)

// TestBatchMatchesSolo is the lockstep bit-identity oracle: every lane of a
// batched run must produce exactly the Result a solo pipeline.Run produces
// for the same configuration — across schemes, register-file sizes, both
// scheduler implementations, and odd slice sizes that chop runs at
// arbitrary cycle boundaries.
func TestBatchMatchesSolo(t *testing.T) {
	p := workload.Micro(7)
	prog := p.Generate()
	const instr = 3000

	var cfgs []config.Config
	for _, n := range []int{64, 96} {
		for _, s := range config.Schemes() {
			cfgs = append(cfgs, config.GoldenCove().WithPhysRegs(n).WithScheme(s))
		}
	}

	for _, sched := range []struct {
		name string
		kind pipeline.SchedulerKind
	}{
		{"event", pipeline.SchedulerEvent},
		{"scan", pipeline.SchedulerScan},
	} {
		for _, slice := range []uint64{0, 1, 37, 100_000} {
			lanes, perf := Run(prog, cfgs, instr, Options{Kind: sched.kind, Slice: slice})
			if perf.Lanes != len(cfgs) {
				t.Fatalf("%s slice=%d: perf.Lanes = %d, want %d", sched.name, slice, perf.Lanes, len(cfgs))
			}
			for i, cfg := range cfgs {
				want := pipeline.NewWithScheduler(cfg, prog, sched.kind).Run(instr)
				if !reflect.DeepEqual(lanes[i].Result, want) {
					t.Errorf("%s slice=%d lane %d (%s regs=%d): batched result diverges from solo\n got %+v\nwant %+v",
						sched.name, slice, i, cfg.Scheme, cfg.PhysRegs, lanes[i].Result, want)
				}
			}
		}
	}
}

// TestBatchLedgerMatchesSolo checks that lane-private observer state — the
// register-lifetime ledger the figures are computed from — is also
// bit-identical to a solo run, not just the headline Result.
func TestBatchLedgerMatchesSolo(t *testing.T) {
	p := workload.Micro(11)
	prog := p.Generate()
	const instr = 2000
	cfgs := []config.Config{
		config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeATR),
		config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeCombined),
		config.GoldenCove().WithPhysRegs(224).WithScheme(config.SchemeATR),
	}
	lanes, _ := Run(prog, cfgs, instr, Options{Kind: pipeline.SchedulerEvent})
	for i, cfg := range cfgs {
		solo := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent)
		solo.Run(instr)
		got := lanes[i].CPU.Engine.Ledger
		want := solo.Engine.Ledger
		if got.Completed() != want.Completed() {
			t.Fatalf("lane %d: ledger completed %d, solo %d", i, got.Completed(), want.Completed())
		}
		gi, gu, gv := got.StateFractions()
		wi, wu, wv := want.StateFractions()
		if gi != wi || gu != wu || gv != wv {
			t.Errorf("lane %d: state fractions (%v,%v,%v) != solo (%v,%v,%v)", i, gi, gu, gv, wi, wu, wv)
		}
	}
}

// TestBatchSingleLane checks the degenerate K=1 batch.
func TestBatchSingleLane(t *testing.T) {
	p := workload.Micro(3)
	prog := p.Generate()
	cfg := config.GoldenCove().WithPhysRegs(96).WithScheme(config.SchemeNonSpecER)
	lanes, perf := Run(prog, []config.Config{cfg}, 1500, Options{})
	want := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(1500)
	if !reflect.DeepEqual(lanes[0].Result, want) {
		t.Fatalf("single-lane batch diverges from solo:\n got %+v\nwant %+v", lanes[0].Result, want)
	}
	if perf.Lanes != 1 {
		t.Fatalf("perf.Lanes = %d, want 1", perf.Lanes)
	}
}
