// Package batch runs K simulator configurations in lockstep over one shared
// immutable program image. The ATR evaluation is sweep-shaped — the Fig 10
// grid runs every benchmark profile under 2 register-file sizes × 4 release
// schemes — so consecutive sweep units differ only in backend configuration
// while the frontend inputs (the decoded program, its memory image, its
// branch structure) are byte-for-byte identical. Lanes share exactly that
// read-only image; everything a lane mutates (rename state, ROB, caches,
// memory values, statistics) is privately owned. Execution interleaves
// lanes in cycle slices, so the shared image and the simulator's own code
// stay hot across lanes while each lane's state enjoys a full slice of
// temporal locality.
//
// Bit-identity is by construction: lanes never communicate, and
// pipeline.RunFor produces the same cycle-for-cycle state sequence no
// matter how the budget slices a run, so a lane's Result is byte-identical
// to running its configuration alone with pipeline.Run. TestBatchMatchesSolo
// enforces this across schemes, register-file sizes, and schedulers.
package batch

import (
	"time"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/program"
)

// DefaultSlice is the lockstep granularity in cycles. Large enough that a
// lane amortizes its working-set warmup over many simulated cycles, small
// enough that the shared program image is revisited while still cached.
const DefaultSlice = 4096

// DefaultLanes is the auto lane count used when a caller enables batching
// without choosing K. The Fig 10 scheme axis is 4 wide, so profile-major
// grids split per profile into whole scheme groups.
const DefaultLanes = 4

// Options configures a lockstep batch.
type Options struct {
	// Kind selects the scheduler implementation for every lane.
	Kind pipeline.SchedulerKind

	// Slice is the per-lane cycle budget of one lockstep round; 0 selects
	// DefaultSlice.
	Slice uint64
}

// Lane is one finished configuration: its result plus the CPU that
// produced it, so callers can extract ledger/activity statistics exactly
// as they would after a solo pipeline.Run.
type Lane struct {
	CPU    *pipeline.CPU
	Result pipeline.Result
}

// Perf attributes the batch's wall clock to phases: constructing lane
// machines (Setup) and lockstep simulation (Exec).
type Perf struct {
	SetupSeconds float64
	ExecSeconds  float64
	Lanes        int
}

// Run simulates every configuration for instr instructions over the shared
// program, in lockstep cycle slices, and returns the lanes in input order.
func Run(prog *program.Program, cfgs []config.Config, instr uint64, opt Options) ([]Lane, Perf) {
	slice := opt.Slice
	if slice == 0 {
		slice = DefaultSlice
	}
	perf := Perf{Lanes: len(cfgs)}

	t0 := time.Now()
	lanes := make([]Lane, len(cfgs))
	for i, cfg := range cfgs {
		lanes[i].CPU = pipeline.NewWithScheduler(cfg, prog, opt.Kind)
	}
	t1 := time.Now()
	perf.SetupSeconds = t1.Sub(t0).Seconds()

	done := make([]bool, len(lanes))
	remaining := len(lanes)
	for remaining > 0 {
		for i := range lanes {
			if done[i] {
				continue
			}
			if lanes[i].CPU.RunFor(instr, slice) {
				lanes[i].Result = lanes[i].CPU.Finish()
				done[i] = true
				remaining--
			}
		}
	}
	perf.ExecSeconds = time.Since(t1).Seconds()
	return lanes, perf
}
