package bpred

// This file completes the Table 1 predictor ("TAGE-SC-L"): the L is a loop
// predictor that captures branches with long regular trip counts beyond the
// TAGE history reach, and the SC is a small statistical corrector that
// vetoes the TAGE output when its own perceptron-style sum disagrees
// strongly. Both follow Seznec's championship designs in miniature.

// loopEntry tracks one candidate loop branch.
type loopEntry struct {
	tag       uint16
	tripCount uint16 // learned iterations between not-taken outcomes
	current   uint16 // taken streak so far
	conf      uint8  // confidence: prediction used once >= loopConfMin
	valid     bool
}

// loopConfMin is the confidence threshold before the loop predictor
// overrides TAGE.
const loopConfMin = 3

// LoopPredictor learns fixed trip counts: a branch taken exactly N times
// then not-taken once, repeatedly.
type LoopPredictor struct {
	entries []loopEntry
	mask    uint64

	overrides uint64
	correct   uint64
}

// NewLoopPredictor creates a predictor with entries rounded down to a power
// of two (minimum 16).
func NewLoopPredictor(entries int) *LoopPredictor {
	n := 16
	for n*2 <= entries {
		n *= 2
	}
	return &LoopPredictor{entries: make([]loopEntry, n), mask: uint64(n - 1)}
}

func (l *LoopPredictor) entry(pc uint64) *loopEntry {
	return &l.entries[(pc^pc>>7)&l.mask]
}

func tagOf(pc uint64) uint16 { return uint16(pc>>3&0x3FF) | 1 }

// Predict returns (taken, override): override is set only when the entry is
// confident, in which case taken should replace the TAGE direction.
func (l *LoopPredictor) Predict(pc uint64) (taken, override bool) {
	e := l.entry(pc)
	if !e.valid || e.tag != tagOf(pc) || e.conf < loopConfMin {
		return false, false
	}
	// Predict not-taken exactly at the learned trip count.
	return e.current < e.tripCount, true
}

// Update trains the entry with the actual outcome.
func (l *LoopPredictor) Update(pc uint64, taken, usedOverride, overridePred bool) {
	e := l.entry(pc)
	if usedOverride {
		l.overrides++
		if overridePred == taken {
			l.correct++
		}
	}
	if !e.valid || e.tag != tagOf(pc) {
		// Allocate on a not-taken outcome (potential loop exit).
		if !taken {
			*e = loopEntry{tag: tagOf(pc), valid: true}
		}
		return
	}
	if taken {
		if e.current < ^uint16(0) {
			e.current++
		}
		// A streak beyond the learned trip count refutes the entry.
		if e.conf > 0 && e.tripCount > 0 && e.current > e.tripCount {
			e.conf = 0
		}
		return
	}
	// Loop exit: does the streak match the learned trip count?
	switch {
	case e.tripCount == e.current && e.tripCount > 0:
		if e.conf < 7 {
			e.conf++
		}
	default:
		e.tripCount = e.current
		e.conf = 0
	}
	e.current = 0
}

// OverrideAccuracy reports how often confident loop overrides were right.
func (l *LoopPredictor) OverrideAccuracy() float64 {
	if l.overrides == 0 {
		return 1
	}
	return float64(l.correct) / float64(l.overrides)
}

// Corrector is a miniature statistical corrector: per-PC signed weights over
// a few folded-history features, vetoing TAGE when the sum opposes its
// prediction with margin.
type Corrector struct {
	weights [][]int8 // [feature][index]
	mask    uint64
}

// correctorFeatures is the number of history folds consulted.
const correctorFeatures = 3

// scThreshold is the veto margin.
const scThreshold = 4

// NewCorrector builds a corrector with the given table size per feature.
func NewCorrector(entries int) *Corrector {
	n := 64
	for n*2 <= entries {
		n *= 2
	}
	w := make([][]int8, correctorFeatures)
	for i := range w {
		w[i] = make([]int8, n)
	}
	return &Corrector{weights: w, mask: uint64(n - 1)}
}

func (c *Corrector) indices(pc uint64, hist *GlobalHistory) [correctorFeatures]uint64 {
	var out [correctorFeatures]uint64
	lens := [correctorFeatures]int{6, 14, 28}
	for i := range out {
		out[i] = (pc ^ hist.fold(lens[i], 12) ^ uint64(i)<<9) & c.mask
	}
	return out
}

// Sum returns the corrector's signed agreement with "taken".
func (c *Corrector) Sum(pc uint64, hist *GlobalHistory) int {
	s := 0
	for i, idx := range c.indices(pc, hist) {
		s += int(c.weights[i][idx])
	}
	return s
}

// Veto reports whether the corrector overturns the TAGE direction.
func (c *Corrector) Veto(pc uint64, hist *GlobalHistory, tageTaken bool) bool {
	s := c.Sum(pc, hist)
	if tageTaken {
		return s <= -scThreshold
	}
	return s >= scThreshold
}

// Update trains the weights toward the actual outcome.
func (c *Corrector) Update(pc uint64, hist *GlobalHistory, taken bool) {
	for i, idx := range c.indices(pc, hist) {
		w := c.weights[i][idx]
		if taken && w < 31 {
			c.weights[i][idx] = w + 1
		} else if !taken && w > -32 {
			c.weights[i][idx] = w - 1
		}
	}
}
