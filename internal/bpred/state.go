package bpred

import (
	"fmt"

	"atr/internal/isa"
)

// This file adds the warm-state half of checkpoint/restore: a serializable
// deep copy of every prediction structure (TAGE tables, loop predictor,
// statistical corrector, indirect tables, BTB, RAS, accuracy counters) and a
// functional warming entry point (Warm) that applies the exact net training
// effect of an in-order predict→resolve→recover sequence without building
// per-branch checkpoints. Together they let a sampled-simulation driver
// fast-forward millions of instructions while keeping the predictor state
// bit-equal to what a detailed frontend would have accumulated in order.

// TAGEEntry mirrors one tagged-table entry for serialization.
type TAGEEntry struct {
	Tag    uint16 `json:"t"`
	Ctr    int8   `json:"c"`
	Useful uint8  `json:"u"`
}

// TAGEState is a deep copy of the TAGE predictor's mutable state.
type TAGEState struct {
	Base   []int8        `json:"base"`
	Tables [][]TAGEEntry `json:"tables"`
	Hist   uint64        `json:"hist"`
}

// LoopEntry mirrors one loop-predictor entry for serialization.
type LoopEntry struct {
	Tag       uint16 `json:"t"`
	TripCount uint16 `json:"n"`
	Current   uint16 `json:"i"`
	Conf      uint8  `json:"c"`
	Valid     bool   `json:"v"`
}

// LoopState is a deep copy of the loop predictor's mutable state.
type LoopState struct {
	Entries   []LoopEntry `json:"entries"`
	Overrides uint64      `json:"overrides"`
	Correct   uint64      `json:"correct"`
}

// BTBState is a deep copy of a BTB's mutable state.
type BTBState struct {
	Tags    []uint64 `json:"tags"`
	Targets []uint64 `json:"targets"`
	Hits    uint64   `json:"hits"`
	Misses  uint64   `json:"misses"`
}

// IndirectState is a deep copy of the indirect predictor's mutable state.
type IndirectState struct {
	HistTags    []uint64 `json:"hist_tags"`
	HistTargets []uint64 `json:"hist_targets"`
	Last        BTBState `json:"last"`
}

// State is the complete serializable warm state of a Predictor. Restoring it
// into a predictor built from the same config reproduces future predictions
// bit-exactly.
type State struct {
	Tage        TAGEState     `json:"tage"`
	Loop        LoopState     `json:"loop"`
	SC          [][]int8      `json:"sc"`
	Ind         IndirectState `json:"ind"`
	RAS         []uint64      `json:"ras"`
	CondLookups uint64        `json:"cond_lookups"`
	CondWrong   uint64        `json:"cond_wrong"`
	IndLookups  uint64        `json:"ind_lookups"`
	IndWrong    uint64        `json:"ind_wrong"`
}

// State deep-copies the predictor's mutable state.
func (p *Predictor) State() *State {
	s := &State{
		Tage: TAGEState{
			Base:   append([]int8(nil), p.Tage.base...),
			Tables: make([][]TAGEEntry, len(p.Tage.tables)),
			Hist:   p.Tage.hist.bits,
		},
		Loop: LoopState{
			Entries:   make([]LoopEntry, len(p.Loop.entries)),
			Overrides: p.Loop.overrides,
			Correct:   p.Loop.correct,
		},
		SC: make([][]int8, len(p.SC.weights)),
		Ind: IndirectState{
			HistTags:    append([]uint64(nil), p.Indirect.histTags...),
			HistTargets: append([]uint64(nil), p.Indirect.histTargets...),
			Last: BTBState{
				Tags:    append([]uint64(nil), p.Indirect.last.tags...),
				Targets: append([]uint64(nil), p.Indirect.last.targets...),
				Hits:    p.Indirect.last.hits,
				Misses:  p.Indirect.last.misses,
			},
		},
		RAS:         p.RAS.Snapshot(),
		CondLookups: p.condLookups,
		CondWrong:   p.condWrong,
		IndLookups:  p.indLookups,
		IndWrong:    p.indWrong,
	}
	for i, tbl := range p.Tage.tables {
		out := make([]TAGEEntry, len(tbl))
		for j, e := range tbl {
			out[j] = TAGEEntry{Tag: e.tag, Ctr: e.ctr, Useful: e.useful}
		}
		s.Tage.Tables[i] = out
	}
	for i, e := range p.Loop.entries {
		s.Loop.Entries[i] = LoopEntry{Tag: e.tag, TripCount: e.tripCount, Current: e.current, Conf: e.conf, Valid: e.valid}
	}
	for i, w := range p.SC.weights {
		s.SC[i] = append([]int8(nil), w...)
	}
	return s
}

// Restore overwrites the predictor's mutable state from a snapshot taken on
// a predictor with the same configuration. Shape mismatches (snapshot from a
// differently sized predictor) are programmer errors and panic.
func (p *Predictor) Restore(s *State) {
	if len(s.Tage.Base) != len(p.Tage.base) || len(s.Tage.Tables) != len(p.Tage.tables) {
		panic(fmt.Sprintf("bpred: Restore TAGE shape mismatch: %d/%d base, %d/%d tables",
			len(s.Tage.Base), len(p.Tage.base), len(s.Tage.Tables), len(p.Tage.tables)))
	}
	copy(p.Tage.base, s.Tage.Base)
	for i, tbl := range s.Tage.Tables {
		if len(tbl) != len(p.Tage.tables[i]) {
			panic("bpred: Restore TAGE table size mismatch")
		}
		for j, e := range tbl {
			p.Tage.tables[i][j] = tageEntry{tag: e.Tag, ctr: e.Ctr, useful: e.Useful}
		}
	}
	p.Tage.hist.bits = s.Tage.Hist
	if len(s.Loop.Entries) != len(p.Loop.entries) {
		panic("bpred: Restore loop table size mismatch")
	}
	for i, e := range s.Loop.Entries {
		p.Loop.entries[i] = loopEntry{tag: e.Tag, tripCount: e.TripCount, current: e.Current, conf: e.Conf, valid: e.Valid}
	}
	p.Loop.overrides, p.Loop.correct = s.Loop.Overrides, s.Loop.Correct
	if len(s.SC) != len(p.SC.weights) {
		panic("bpred: Restore corrector shape mismatch")
	}
	for i, w := range s.SC {
		if len(w) != len(p.SC.weights[i]) {
			panic("bpred: Restore corrector table size mismatch")
		}
		copy(p.SC.weights[i], w)
	}
	if len(s.Ind.HistTags) != len(p.Indirect.histTags) ||
		len(s.Ind.Last.Tags) != len(p.Indirect.last.tags) {
		panic("bpred: Restore indirect table size mismatch")
	}
	copy(p.Indirect.histTags, s.Ind.HistTags)
	copy(p.Indirect.histTargets, s.Ind.HistTargets)
	copy(p.Indirect.last.tags, s.Ind.Last.Tags)
	copy(p.Indirect.last.targets, s.Ind.Last.Targets)
	p.Indirect.last.hits, p.Indirect.last.misses = s.Ind.Last.Hits, s.Ind.Last.Misses
	if len(s.RAS) > cap(p.RAS.stack) {
		panic("bpred: Restore RAS deeper than capacity")
	}
	p.RAS.Restore(s.RAS)
	p.condLookups, p.condWrong = s.CondLookups, s.CondWrong
	p.indLookups, p.indWrong = s.IndLookups, s.IndWrong
}

// CopyFrom overwrites p's mutable state with src's. Both predictors must be
// built from the same configuration (it is the caller's contract, as with
// Restore-after-State, but without materializing the serializable form — the
// per-region fast path for a sampling driver that primes a fresh pipeline
// from a live warmer many times per run).
func (p *Predictor) CopyFrom(src *Predictor) {
	copy(p.Tage.base, src.Tage.base)
	for i := range src.Tage.tables {
		copy(p.Tage.tables[i], src.Tage.tables[i])
	}
	p.Tage.hist = src.Tage.hist
	copy(p.Loop.entries, src.Loop.entries)
	p.Loop.overrides, p.Loop.correct = src.Loop.overrides, src.Loop.correct
	for i := range src.SC.weights {
		copy(p.SC.weights[i], src.SC.weights[i])
	}
	copy(p.Indirect.histTags, src.Indirect.histTags)
	copy(p.Indirect.histTargets, src.Indirect.histTargets)
	copy(p.Indirect.last.tags, src.Indirect.last.tags)
	copy(p.Indirect.last.targets, src.Indirect.last.targets)
	p.Indirect.last.hits, p.Indirect.last.misses = src.Indirect.last.hits, src.Indirect.last.misses
	p.RAS.Restore(src.RAS.stack)
	p.condLookups, p.condWrong = src.condLookups, src.condWrong
	p.indLookups, p.indWrong = src.indLookups, src.indWrong
}

// Warm trains the predictor with the in-order outcome of one control
// instruction during functional fast-forward. It is the net effect of
// PredictInto → Resolve → (Recover on mispredict) for a branch that resolves
// before any younger branch is fetched, without the checkpoint bookkeeping:
// the speculative and architectural histories coincide in an in-order walk,
// so the pre-branch history is simply the current one.
func (p *Predictor) Warm(in *isa.Inst, pc uint64, taken bool, target uint64) {
	switch in.Op {
	case isa.OpBranch:
		pred := p.Tage.Predict(pc)
		dir := pred.Taken
		usedLoop := false
		if lt, override := p.Loop.Predict(pc); override {
			dir, usedLoop = lt, true
		} else if p.SC.Veto(pc, p.Tage.History(), pred.Taken) {
			dir = !dir
		}
		p.condLookups++
		if dir != taken {
			p.condWrong++
		}
		p.Loop.Update(pc, taken, usedLoop, dir)
		// SC and TAGE both train against the pre-branch history; TAGE's
		// Update shifts the actual outcome in afterwards, which is exactly
		// the history a correct in-order frontend would carry forward.
		p.SC.Update(pc, p.Tage.History(), taken)
		p.Tage.Update(pc, pred, taken)
	case isa.OpCall:
		p.RAS.Push(pc + 1)
	case isa.OpJumpInd, isa.OpCallInd:
		p.indLookups++
		tgt, ok := p.Indirect.Predict(pc, p.Tage.History())
		if !ok || tgt != target {
			p.indWrong++
		}
		p.Indirect.Update(pc, p.Tage.History(), target)
		if in.Op == isa.OpCallInd {
			p.RAS.Push(pc + 1)
		}
	case isa.OpRet:
		p.indLookups++
		tgt, ok := p.RAS.Pop()
		if !ok || tgt != target {
			p.indWrong++
		}
	case isa.OpJump:
		// Direct unconditional: no mutable state involved.
	}
}

// CondCounts returns the cumulative conditional lookup/mispredict counters.
func (p *Predictor) CondCounts() (lookups, wrong uint64) { return p.condLookups, p.condWrong }

// IndCounts returns the cumulative indirect lookup/mispredict counters.
func (p *Predictor) IndCounts() (lookups, wrong uint64) { return p.indLookups, p.indWrong }
