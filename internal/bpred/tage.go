// Package bpred implements the frontend's prediction structures: a
// TAGE-style conditional branch predictor, a branch target buffer, an
// ITTAGE-lite indirect target predictor, and a return address stack. The
// paper's Table 1 configures "TAGE-SC-L + BPU enhancements"; this package
// implements the TAGE core with a bimodal base table and geometric history
// lengths, which is the component that determines misprediction behaviour at
// simulation fidelity.
package bpred

import "math"

// historyBits is the size of the folded global history register.
const historyBits = 64

// GlobalHistory is a shift register of recent conditional branch outcomes.
type GlobalHistory struct {
	bits uint64
}

// Update shifts one outcome into the history.
func (h *GlobalHistory) Update(taken bool) {
	h.bits <<= 1
	if taken {
		h.bits |= 1
	}
}

// Snapshot returns a copy for checkpoint/restore on speculative updates.
func (h *GlobalHistory) Snapshot() GlobalHistory { return *h }

// Restore rewinds the history to a snapshot (misprediction recovery).
func (h *GlobalHistory) Restore(s GlobalHistory) { *h = s }

// fold compresses the low histLen bits of the history into width bits.
func (h *GlobalHistory) fold(histLen, width int) uint64 {
	if histLen > historyBits {
		histLen = historyBits
	}
	var masked uint64
	if histLen == 64 {
		masked = h.bits
	} else {
		masked = h.bits & (1<<uint(histLen) - 1)
	}
	var folded uint64
	for masked != 0 {
		folded ^= masked & (1<<uint(width) - 1)
		masked >>= uint(width)
	}
	return folded
}

// tageEntry is one tagged-table entry.
type tageEntry struct {
	tag    uint16
	ctr    int8  // signed counter: >=0 predicts taken
	useful uint8 // usefulness for replacement
}

// TAGE is a tagged geometric-history-length conditional branch predictor
// with a bimodal base table.
type TAGE struct {
	base     []int8 // bimodal base predictor (2-bit counters)
	baseBits int
	tables   [][]tageEntry
	tblBits  int
	histLens []int
	hist     GlobalHistory
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	BaseBits  int // log2 bimodal entries
	TableBits int // log2 entries per tagged table
	NumTables int
	MaxHist   int // longest history length; lengths follow a geometric series
}

// NewTAGE builds a predictor from cfg, applying sane defaults for zero
// fields.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if cfg.BaseBits == 0 {
		cfg.BaseBits = 12
	}
	if cfg.TableBits == 0 {
		cfg.TableBits = 10
	}
	if cfg.NumTables == 0 {
		cfg.NumTables = 6
	}
	if cfg.MaxHist == 0 {
		cfg.MaxHist = 256
	}
	t := &TAGE{
		base:     make([]int8, 1<<cfg.BaseBits),
		baseBits: cfg.BaseBits,
		tblBits:  cfg.TableBits,
	}
	// Geometric history lengths from 4 up to MaxHist.
	minHist := 4.0
	ratio := 1.0
	if cfg.NumTables > 1 {
		ratio = math.Pow(float64(cfg.MaxHist)/minHist, 1.0/float64(cfg.NumTables-1))
	}
	l := minHist
	for i := 0; i < cfg.NumTables; i++ {
		t.histLens = append(t.histLens, int(l+0.5))
		t.tables = append(t.tables, make([]tageEntry, 1<<cfg.TableBits))
		l *= ratio
	}
	return t
}

func (t *TAGE) baseIndex(pc uint64) uint64 {
	return (pc ^ pc>>t.baseBits) & (1<<uint(t.baseBits) - 1)
}

func (t *TAGE) tableIndex(pc uint64, tbl int) uint64 {
	h := t.hist.fold(t.histLens[tbl], t.tblBits)
	return (pc ^ pc>>uint(t.tblBits) ^ h ^ uint64(tbl)*0x9e37) & (1<<uint(t.tblBits) - 1)
}

func (t *TAGE) tableTag(pc uint64, tbl int) uint16 {
	h := t.hist.fold(t.histLens[tbl], 12)
	return uint16((pc>>2 ^ h ^ uint64(tbl)<<7) & 0xFFF)
}

// Prediction carries the provider metadata needed for the update.
type Prediction struct {
	Taken bool
	// Confident is set when the providing counter is well away from the
	// decision boundary; low-confidence branches are the ones worth an
	// SRT checkpoint (§4.2.1 checkpoints low-confidence branches only).
	Confident bool
	provider  int // -1 = base table
	altTaken  bool
	idx       uint64
	tag       uint16
	baseIdx   uint64
}

// Predict returns the direction prediction for the conditional branch at pc.
func (t *TAGE) Predict(pc uint64) Prediction {
	p := Prediction{provider: -1}
	p.baseIdx = t.baseIndex(pc)
	baseCtr := t.base[p.baseIdx]
	basePred := baseCtr >= 0
	p.Taken, p.altTaken = basePred, basePred
	p.Confident = baseCtr >= 1 || baseCtr <= -2
	for i := len(t.tables) - 1; i >= 0; i-- {
		idx := t.tableIndex(pc, i)
		e := &t.tables[i][idx]
		if e.tag != t.tableTag(pc, i) {
			continue
		}
		if p.provider == -1 {
			// Longest matching table provides the prediction.
			p.provider = i
			p.idx = idx
			p.tag = e.tag
			p.Taken = e.ctr >= 0
			p.Confident = e.ctr >= 1 || e.ctr <= -2
			p.altTaken = basePred
		} else {
			// Next-longest match supplies the alternate prediction.
			p.altTaken = e.ctr >= 0
			break
		}
	}
	return p
}

// Update trains the predictor with the actual outcome of the branch at pc,
// using the metadata captured at prediction time, and shifts the outcome
// into the global history.
func (t *TAGE) Update(pc uint64, pred Prediction, taken bool) {
	// Train the provider (or base).
	if pred.provider >= 0 {
		e := &t.tables[pred.provider][pred.idx]
		if e.tag == pred.tag {
			e.ctr = saturate(e.ctr, taken, 3)
			if pred.Taken != pred.altTaken {
				if pred.Taken == taken && e.useful < 3 {
					e.useful++
				} else if pred.Taken != taken && e.useful > 0 {
					e.useful--
				}
			}
		}
	} else {
		t.base[pred.baseIdx] = saturate(t.base[pred.baseIdx], taken, 1)
	}
	// On a misprediction, allocate in a longer-history table.
	if pred.Taken != taken {
		start := pred.provider + 1
		allocated := false
		for i := start; i < len(t.tables); i++ {
			idx := t.tableIndex(pc, i)
			e := &t.tables[i][idx]
			if e.useful == 0 {
				e.tag = t.tableTag(pc, i)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Age usefulness to guarantee eventual allocation.
			for i := start; i < len(t.tables); i++ {
				idx := t.tableIndex(pc, i)
				if e := &t.tables[i][idx]; e.useful > 0 {
					e.useful--
				}
			}
		}
	}
	t.hist.Update(taken)
}

// History exposes the global history for checkpointing.
func (t *TAGE) History() *GlobalHistory { return &t.hist }

// saturate moves a signed counter toward taken/not-taken within [-lim-1, lim].
func saturate(c int8, taken bool, lim int8) int8 {
	if taken {
		if c < lim {
			return c + 1
		}
		return c
	}
	if c > -lim-1 {
		return c - 1
	}
	return c
}
