package bpred

import (
	"atr/internal/config"
	"atr/internal/isa"
)

// Checkpoint captures the speculative predictor state in effect before one
// control-flow instruction was predicted, so the frontend can rewind on a
// misprediction at that instruction.
type Checkpoint struct {
	Hist GlobalHistory
	RAS  []uint64
}

// BranchPrediction is the frontend's decision for one control instruction.
type BranchPrediction struct {
	Taken      bool   // predicted direction (always true for unconditional)
	Target     uint64 // predicted next PC when taken
	Tage       Prediction
	Checkpoint Checkpoint
	HasTarget  bool // false when an indirect target was unknown
	// UsedLoop/UsedSC record which component decided the direction, for
	// training.
	UsedLoop bool
	UsedSC   bool
}

// Predictor bundles the frontend prediction structures (the full Table 1
// "TAGE-SC-L": TAGE, statistical corrector, loop predictor) and applies the
// speculative-update / resolve-time-train protocol the pipeline relies on.
type Predictor struct {
	Tage     *TAGE
	Loop     *LoopPredictor
	SC       *Corrector
	Indirect *Indirect
	RAS      *RAS

	condLookups uint64
	condWrong   uint64
	indLookups  uint64
	indWrong    uint64
}

// New creates a predictor sized from the machine configuration.
func New(cfg config.Config) *Predictor {
	return &Predictor{
		Tage: NewTAGE(TAGEConfig{
			TableBits: cfg.TageTableBits,
			NumTables: cfg.TageTables,
			MaxHist:   cfg.TageHistLen,
		}),
		Loop:     NewLoopPredictor(64),
		SC:       NewCorrector(1024),
		Indirect: NewIndirect(cfg.IBTBEntries, cfg.BTBEntries),
		RAS:      NewRAS(cfg.RASEntries),
	}
}

// Predict produces the prediction for the control instruction in at pc and
// speculatively updates history and RAS. Non-control instructions must not
// be passed here.
func (p *Predictor) Predict(in *isa.Inst, pc uint64) BranchPrediction {
	var bp BranchPrediction
	p.PredictInto(in, pc, &bp)
	return bp
}

// PredictInto is Predict with caller-owned checkpoint storage: the RAS
// snapshot reuses bp's existing Checkpoint.RAS backing array (grown only
// when the stack outgrew it), so callers that pool their prediction records
// allocate nothing in steady state. bp is fully overwritten.
func (p *Predictor) PredictInto(in *isa.Inst, pc uint64, bp *BranchPrediction) {
	ras := p.RAS.AppendSnapshot(bp.Checkpoint.RAS[:0])
	*bp = BranchPrediction{
		Checkpoint: Checkpoint{Hist: p.Tage.History().Snapshot(), RAS: ras},
		HasTarget:  true,
	}
	switch in.Op {
	case isa.OpBranch:
		bp.Tage = p.Tage.Predict(pc)
		bp.Taken = bp.Tage.Taken
		// Component hierarchy: a confident loop entry overrides TAGE;
		// otherwise the statistical corrector may veto it.
		if lt, override := p.Loop.Predict(pc); override {
			bp.Taken = lt
			bp.UsedLoop = true
		} else if p.SC.Veto(pc, &bp.Checkpoint.Hist, bp.Taken) {
			bp.Taken = !bp.Taken
			bp.UsedSC = true
		}
		bp.Target = in.Target
		p.Tage.History().Update(bp.Taken)
		p.condLookups++
	case isa.OpJump:
		bp.Taken = true
		bp.Target = in.Target
	case isa.OpCall:
		bp.Taken = true
		bp.Target = in.Target
		p.RAS.Push(pc + 1)
	case isa.OpJumpInd, isa.OpCallInd:
		bp.Taken = true
		tgt, ok := p.Indirect.Predict(pc, &bp.Checkpoint.Hist)
		bp.Target, bp.HasTarget = tgt, ok
		if !ok {
			bp.Target = pc + 1 // fall-through guess; will mispredict
		}
		if in.Op == isa.OpCallInd {
			p.RAS.Push(pc + 1)
		}
		p.indLookups++
	case isa.OpRet:
		bp.Taken = true
		tgt, ok := p.RAS.Pop()
		bp.Target, bp.HasTarget = tgt, ok
		if !ok {
			bp.Target = pc + 1
		}
		p.indLookups++
	default:
		panic("bpred: Predict called on non-control op " + in.Op.String())
	}
}

// Resolve trains the predictor with the actual outcome of a previously
// predicted control instruction. mispredicted reports whether the frontend
// must be redirected; if so the caller must also call Recover with the
// prediction's checkpoint.
func (p *Predictor) Resolve(in *isa.Inst, pc uint64, bp *BranchPrediction, taken bool, target uint64) (mispredicted bool) {
	switch in.Op {
	case isa.OpBranch:
		mispredicted = taken != bp.Taken
		if mispredicted {
			p.condWrong++
		}
		p.Loop.Update(pc, taken, bp.UsedLoop, bp.Taken)
		p.SC.Update(pc, &bp.Checkpoint.Hist, taken)
		// Train with the history in effect at prediction time.
		cur := p.Tage.History().Snapshot()
		p.Tage.History().Restore(bp.Checkpoint.Hist)
		p.Tage.Update(pc, bp.Tage, taken)
		if !mispredicted {
			// Keep the (correct) speculative history, which may
			// already include younger branches. On a mispredict the
			// caller recovers via Recover, which rewrites history.
			p.Tage.History().Restore(cur)
		}
	case isa.OpJumpInd, isa.OpCallInd, isa.OpRet:
		mispredicted = target != bp.Target || !bp.HasTarget
		if mispredicted {
			p.indWrong++
		}
		if in.Op != isa.OpRet {
			p.Indirect.Update(pc, &bp.Checkpoint.Hist, target)
		}
	case isa.OpJump, isa.OpCall:
		// Direct unconditional: never mispredicts.
	}
	return mispredicted
}

// Recover rewinds the speculative structures to the state right after the
// mispredicted instruction at pc executed with its actual outcome. Call it
// after Resolve, before redirecting fetch.
func (p *Predictor) Recover(in *isa.Inst, pc uint64, bp *BranchPrediction, taken bool) {
	p.RAS.Restore(bp.Checkpoint.RAS)
	h := bp.Checkpoint.Hist
	switch in.Op {
	case isa.OpBranch:
		h.Update(taken)
	case isa.OpCall, isa.OpCallInd:
		p.RAS.Push(pc + 1)
	case isa.OpRet:
		p.RAS.Pop()
	}
	p.Tage.History().Restore(h)
}

// CondAccuracy returns the conditional branch prediction accuracy so far.
func (p *Predictor) CondAccuracy() float64 {
	if p.condLookups == 0 {
		return 1
	}
	return 1 - float64(p.condWrong)/float64(p.condLookups)
}

// IndirectAccuracy returns the indirect target prediction accuracy so far.
func (p *Predictor) IndirectAccuracy() float64 {
	if p.indLookups == 0 {
		return 1
	}
	return 1 - float64(p.indWrong)/float64(p.indLookups)
}
