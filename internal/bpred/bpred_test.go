package bpred

import (
	"testing"
	"testing/quick"

	"atr/internal/config"
	"atr/internal/isa"
)

func TestGlobalHistoryFold(t *testing.T) {
	var h GlobalHistory
	h.Update(true)
	h.Update(false)
	h.Update(true) // bits = 0b101
	if h.bits != 0b101 {
		t.Fatalf("bits = %b", h.bits)
	}
	if got := h.fold(3, 8); got != 0b101 {
		t.Errorf("fold(3,8) = %b, want 101", got)
	}
	// Folding a wide history XORs chunks.
	h2 := GlobalHistory{bits: 0xFF00}
	if got := h2.fold(16, 8); got != 0xFF {
		t.Errorf("fold(16,8) = %x, want ff", got)
	}
}

func TestHistorySnapshotRestore(t *testing.T) {
	var h GlobalHistory
	h.Update(true)
	s := h.Snapshot()
	h.Update(false)
	h.Update(false)
	h.Restore(s)
	if h.bits != 1 {
		t.Errorf("restored bits = %b, want 1", h.bits)
	}
}

func TestTAGEHistLengthsGeometric(t *testing.T) {
	tg := NewTAGE(TAGEConfig{NumTables: 6, MaxHist: 256})
	if len(tg.histLens) != 6 {
		t.Fatalf("tables = %d", len(tg.histLens))
	}
	if tg.histLens[0] != 4 {
		t.Errorf("shortest = %d, want 4", tg.histLens[0])
	}
	if tg.histLens[5] != 256 {
		t.Errorf("longest = %d, want 256", tg.histLens[5])
	}
	for i := 1; i < 6; i++ {
		if tg.histLens[i] <= tg.histLens[i-1] {
			t.Errorf("lengths not increasing: %v", tg.histLens)
		}
	}
}

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	tg := NewTAGE(TAGEConfig{})
	pc := uint64(100)
	wrong := 0
	for i := 0; i < 100; i++ {
		p := tg.Predict(pc)
		if !p.Taken {
			wrong++
		}
		tg.Update(pc, p, true)
	}
	if wrong > 3 {
		t.Errorf("always-taken branch mispredicted %d/100 times", wrong)
	}
}

func TestTAGELearnsAlternating(t *testing.T) {
	// T,N,T,N... requires history; bimodal alone cannot learn it.
	tg := NewTAGE(TAGEConfig{})
	pc := uint64(200)
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		p := tg.Predict(pc)
		if p.Taken != taken {
			wrong++
		}
		tg.Update(pc, p, taken)
	}
	// After warmup the tagged tables should capture the pattern.
	if wrong > 400 {
		t.Errorf("alternating branch mispredicted %d/2000 times", wrong)
	}
}

func TestTAGELearnsLoopExit(t *testing.T) {
	// 7 taken then 1 not-taken, repeated: classic loop branch.
	tg := NewTAGE(TAGEConfig{})
	pc := uint64(300)
	wrong := 0
	total := 0
	for iter := 0; iter < 300; iter++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			p := tg.Predict(pc)
			if iter >= 100 { // measure after warmup
				total++
				if p.Taken != taken {
					wrong++
				}
			}
			tg.Update(pc, p, taken)
		}
	}
	if frac := float64(wrong) / float64(total); frac > 0.10 {
		t.Errorf("loop branch mispredict rate %.2f after warmup, want <= 0.10", frac)
	}
}

func TestSaturate(t *testing.T) {
	c := int8(0)
	for i := 0; i < 10; i++ {
		c = saturate(c, true, 3)
	}
	if c != 3 {
		t.Errorf("saturated up to %d, want 3", c)
	}
	for i := 0; i < 20; i++ {
		c = saturate(c, false, 3)
	}
	if c != -4 {
		t.Errorf("saturated down to %d, want -4", c)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(64)
	if _, ok := b.Lookup(10); ok {
		t.Error("empty BTB should miss")
	}
	b.Insert(10, 99)
	if tgt, ok := b.Lookup(10); !ok || tgt != 99 {
		t.Errorf("Lookup = %d,%v", tgt, ok)
	}
	// Conflicting entry evicts.
	b.Insert(10+64, 111)
	if _, ok := b.Lookup(10); ok {
		t.Error("conflicting insert should evict")
	}
	if b.HitRate() <= 0 || b.HitRate() >= 1 {
		t.Errorf("hit rate = %v", b.HitRate())
	}
}

func TestIndirectPredictorLearnsPerHistory(t *testing.T) {
	ind := NewIndirect(1024, 512)
	var h1, h2 GlobalHistory
	h1.bits = 0xAAAA
	h2.bits = 0x5555
	pc := uint64(50)
	ind.Update(pc, &h1, 111)
	ind.Update(pc, &h2, 222)
	if tgt, ok := ind.Predict(pc, &h1); !ok || tgt != 111 {
		t.Errorf("h1 predict = %d,%v want 111", tgt, ok)
	}
	if tgt, ok := ind.Predict(pc, &h2); !ok || tgt != 222 {
		t.Errorf("h2 predict = %d,%v want 222", tgt, ok)
	}
	// Unseen history falls back to last target (IBTB).
	var h3 GlobalHistory
	h3.bits = 0x1234
	if tgt, ok := ind.Predict(pc, &h3); !ok || (tgt != 111 && tgt != 222) {
		t.Errorf("fallback predict = %d,%v", tgt, ok)
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should report !ok")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // drops 1
	if got, _ := r.Pop(); got != 3 {
		t.Errorf("top = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("next = %d, want 2", got)
	}
	if _, ok := r.Pop(); ok {
		t.Error("oldest entry should have been dropped")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	s := r.Snapshot()
	r.Pop()
	r.Push(9)
	r.Push(10)
	r.Restore(s)
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("restored top = %d, want 2", got)
	}
}

func newTestPredictor() *Predictor {
	return New(config.GoldenCove())
}

func TestPredictorBranchFlow(t *testing.T) {
	p := newTestPredictor()
	in := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
	in.Target = 40
	pc := uint64(10)
	// Train always-taken.
	for i := 0; i < 50; i++ {
		bp := p.Predict(&in, pc)
		mis := p.Resolve(&in, pc, &bp, true, 40)
		if mis {
			p.Recover(&in, pc, &bp, true)
		}
	}
	bp := p.Predict(&in, pc)
	if !bp.Taken || bp.Target != 40 {
		t.Errorf("after training: taken=%v target=%d", bp.Taken, bp.Target)
	}
	if acc := p.CondAccuracy(); acc < 0.9 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestPredictorCallRetFlow(t *testing.T) {
	p := newTestPredictor()
	call := isa.NewInst(isa.OpCall, []isa.Reg{isa.R14}, nil)
	call.Target = 100
	ret := isa.NewInst(isa.OpRet, nil, []isa.Reg{isa.R14})

	bp := p.Predict(&call, 5)
	if !bp.Taken || bp.Target != 100 {
		t.Fatalf("call prediction: %+v", bp)
	}
	rbp := p.Predict(&ret, 120)
	if rbp.Target != 6 {
		t.Errorf("ret predicted %d, want 6 (return address)", rbp.Target)
	}
	if mis := p.Resolve(&ret, 120, &rbp, true, 6); mis {
		t.Error("correct RAS prediction flagged as mispredict")
	}
}

func TestPredictorRetMispredictRecovery(t *testing.T) {
	p := newTestPredictor()
	ret := isa.NewInst(isa.OpRet, nil, []isa.Reg{isa.R14})
	// Empty RAS: prediction is a guess and must mispredict.
	bp := p.Predict(&ret, 50)
	if bp.HasTarget {
		t.Error("empty RAS should have no target")
	}
	if mis := p.Resolve(&ret, 50, &bp, true, 7); !mis {
		t.Error("wrong ret target must mispredict")
	}
	p.Recover(&ret, 50, &bp, true)
	if p.RAS.Depth() != 0 {
		t.Errorf("RAS depth after recovery = %d", p.RAS.Depth())
	}
}

func TestPredictorRecoveryRewindsWrongPathPushes(t *testing.T) {
	p := newTestPredictor()
	br := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
	br.Target = 90
	call := isa.NewInst(isa.OpCall, []isa.Reg{isa.R14}, nil)
	call.Target = 200

	bp := p.Predict(&br, 10)
	// Wrong path: fetch a call that pushes the RAS.
	p.Predict(&call, 11)
	if p.RAS.Depth() != 1 {
		t.Fatalf("RAS depth = %d", p.RAS.Depth())
	}
	// The branch resolves mispredicted; recovery must pop wrong-path push.
	p.Resolve(&br, 10, &bp, !bp.Taken, 90)
	p.Recover(&br, 10, &bp, !bp.Taken)
	if p.RAS.Depth() != 0 {
		t.Errorf("wrong-path RAS push survived recovery: depth = %d", p.RAS.Depth())
	}
}

func TestPredictorIndirect(t *testing.T) {
	p := newTestPredictor()
	ji := isa.NewInst(isa.OpJumpInd, nil, []isa.Reg{isa.R0})
	ji.Targets = []uint64{70, 80}
	pc := uint64(33)
	// First encounter must mispredict (no target known).
	bp := p.Predict(&ji, pc)
	if bp.HasTarget {
		t.Error("first indirect lookup should have no target")
	}
	mis := p.Resolve(&ji, pc, &bp, true, 70)
	if !mis {
		t.Error("first indirect must mispredict")
	}
	p.Recover(&ji, pc, &bp, true)
	// Second encounter with same history: should hit.
	bp2 := p.Predict(&ji, pc)
	if !bp2.HasTarget || bp2.Target != 70 {
		t.Errorf("second lookup: %+v", bp2)
	}
}

func TestPredictPanicsOnNonControl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := newTestPredictor()
	in := isa.NewInst(isa.OpALU, []isa.Reg{isa.R0}, []isa.Reg{isa.R1})
	p.Predict(&in, 0)
}

// Property: fold output always fits in width bits.
func TestFoldWidthProperty(t *testing.T) {
	f := func(bits uint64, histLen, width uint8) bool {
		h := GlobalHistory{bits: bits}
		hl := int(histLen%64) + 1
		w := int(width%16) + 1
		return h.fold(hl, w) < 1<<uint(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RAS restore is exact regardless of interleaved operations.
func TestRASRestoreProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRAS(8)
		r.Push(11)
		r.Push(22)
		snap := r.Snapshot()
		for _, op := range ops {
			if op%2 == 0 {
				r.Push(uint64(op))
			} else {
				r.Pop()
			}
		}
		r.Restore(snap)
		if r.Depth() != 2 {
			return false
		}
		a, _ := r.Pop()
		b, _ := r.Pop()
		return a == 22 && b == 11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
