package bpred

// BTB is a direct-mapped branch target buffer. In this simulator direct
// targets are statically known (as in trace-driven Scarab), so the BTB's
// modeled role is target storage for indirect transfers and hit/miss
// accounting.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
	hits    uint64
	misses  uint64
}

// NewBTB creates a BTB with the given number of entries (rounded down to a
// power of two, minimum 16).
func NewBTB(entries int) *BTB {
	n := 16
	for n*2 <= entries {
		n *= 2
	}
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		mask:    uint64(n - 1),
	}
}

// Lookup returns the stored target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	i := pc & b.mask
	if b.tags[i] == pc|1 { // |1 marks valid (PCs here are word indices)
		b.hits++
		return b.targets[i], true
	}
	b.misses++
	return 0, false
}

// Insert records pc -> target.
func (b *BTB) Insert(pc, target uint64) {
	i := pc & b.mask
	b.tags[i] = pc | 1
	b.targets[i] = target
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// Indirect is an ITTAGE-lite indirect target predictor: a history-hashed
// table backed by a per-PC last-target table (the IBTB).
type Indirect struct {
	histTags    []uint64
	histTargets []uint64
	last        *BTB
	mask        uint64
}

// NewIndirect creates an indirect predictor with the given history-table and
// IBTB entry counts.
func NewIndirect(histEntries, ibtbEntries int) *Indirect {
	n := 16
	for n*2 <= histEntries {
		n *= 2
	}
	return &Indirect{
		histTags:    make([]uint64, n),
		histTargets: make([]uint64, n),
		last:        NewBTB(ibtbEntries),
		mask:        uint64(n - 1),
	}
}

func (p *Indirect) index(pc uint64, hist *GlobalHistory) uint64 {
	return (pc ^ hist.fold(18, 16)*0x9e37 ^ pc>>7) & p.mask
}

// Predict returns the predicted target for the indirect branch at pc under
// the current global history; ok is false when the predictor has never seen
// this branch.
func (p *Indirect) Predict(pc uint64, hist *GlobalHistory) (target uint64, ok bool) {
	i := p.index(pc, hist)
	if p.histTags[i] == pc|1 {
		return p.histTargets[i], true
	}
	return p.last.Lookup(pc)
}

// Update trains the predictor with the actual target, using the history in
// effect at prediction time.
func (p *Indirect) Update(pc uint64, hist *GlobalHistory, target uint64) {
	i := p.index(pc, hist)
	p.histTags[i] = pc | 1
	p.histTargets[i] = target
	p.last.Insert(pc, target)
}

// RAS is the return address stack. It is speculatively updated at fetch and
// snapshot/restored on misprediction recovery.
type RAS struct {
	stack []uint64
	top   int // number of valid entries; pushes wrap when full
}

// NewRAS creates a RAS with n entries.
func NewRAS(n int) *RAS {
	if n < 1 {
		n = 1
	}
	return &RAS{stack: make([]uint64, 0, n)}
}

// Push records a return address at fetch of a call.
func (r *RAS) Push(addr uint64) {
	if len(r.stack) == cap(r.stack) {
		// Overflow: drop the oldest entry.
		copy(r.stack, r.stack[1:])
		r.stack[len(r.stack)-1] = addr
		return
	}
	r.stack = append(r.stack, addr)
}

// Pop predicts the target of a return. ok is false when empty (the frontend
// then has no prediction and must guess fall-through, which will mispredict).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	addr = r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return addr, true
}

// Depth returns the number of valid entries.
func (r *RAS) Depth() int { return len(r.stack) }

// Snapshot copies the RAS state for misprediction recovery.
func (r *RAS) Snapshot() []uint64 {
	s := make([]uint64, len(r.stack))
	copy(s, r.stack)
	return s
}

// AppendSnapshot appends the RAS state to buf (reusing its capacity) and
// returns it — the allocation-free Snapshot for pooled callers.
func (r *RAS) AppendSnapshot(buf []uint64) []uint64 {
	return append(buf, r.stack...)
}

// Restore rewinds to a snapshot.
func (r *RAS) Restore(s []uint64) {
	r.stack = r.stack[:0]
	r.stack = append(r.stack, s...)
}
