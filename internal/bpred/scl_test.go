package bpred

import (
	"testing"

	"atr/internal/config"
	"atr/internal/isa"
)

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	l := NewLoopPredictor(64)
	pc := uint64(40)
	// 9 taken, 1 not-taken, repeated. After a few iterations the
	// predictor becomes confident and predicts the exit exactly.
	wrong := 0
	total := 0
	for iter := 0; iter < 40; iter++ {
		for i := 0; i < 10; i++ {
			taken := i < 9
			pred, override := l.Predict(pc)
			if iter >= 10 {
				total++
				if !override {
					wrong++ // expect confidence by now
				} else if pred != taken {
					wrong++
				}
			}
			l.Update(pc, taken, override, pred)
		}
	}
	if wrong != 0 {
		t.Errorf("confident loop predictor wrong %d/%d after warmup", wrong, total)
	}
	if acc := l.OverrideAccuracy(); acc < 0.99 {
		t.Errorf("override accuracy = %v", acc)
	}
}

func TestLoopPredictorRefusesIrregular(t *testing.T) {
	l := NewLoopPredictor(64)
	pc := uint64(80)
	// Irregular trip counts: 3, 7, 2, 9, ... confidence must not build.
	trips := []int{3, 7, 2, 9, 5, 4, 8, 6}
	for _, n := range trips {
		for i := 0; i <= n; i++ {
			taken := i < n
			_, override := l.Predict(pc)
			if override {
				t.Fatal("confident override on an irregular loop")
			}
			l.Update(pc, taken, false, false)
		}
	}
}

func TestLoopPredictorInvalidatesOnLongerStreak(t *testing.T) {
	l := NewLoopPredictor(64)
	pc := uint64(120)
	train := func(n int) {
		for i := 0; i <= n; i++ {
			pred, override := l.Predict(pc)
			l.Update(pc, i < n, override, pred)
		}
	}
	for i := 0; i < 8; i++ {
		train(5)
	}
	if _, override := l.Predict(pc); !override {
		t.Fatal("setup: predictor should be confident")
	}
	// The loop suddenly runs longer: the entry must lose confidence
	// rather than keep predicting the stale exit.
	train(12)
	if _, override := l.Predict(pc); override {
		t.Error("stale trip count kept confidence after a longer streak")
	}
}

func TestCorrectorLearnsHistoryCorrelation(t *testing.T) {
	c := NewCorrector(1024)
	pc := uint64(7)
	// Outcome equals the most recent history bit: TAGE's folded view may
	// miss it, but the corrector's short feature can learn it.
	var h GlobalHistory
	for i := 0; i < 2000; i++ {
		taken := h.bits&1 == 1
		c.Update(pc, &h, taken)
		h.Update(i%3 == 0) // drive the history independently
	}
	// After training, the corrector sum should follow the history bit.
	agree := 0
	total := 0
	for i := 0; i < 200; i++ {
		want := h.bits&1 == 1
		s := c.Sum(pc, &h)
		if s != 0 {
			total++
			if (s > 0) == want {
				agree++
			}
		}
		c.Update(pc, &h, want)
		h.Update(i%3 == 0)
	}
	if total == 0 || float64(agree)/float64(total) < 0.7 {
		t.Errorf("corrector agreement %d/%d", agree, total)
	}
}

func TestCorrectorVetoMargin(t *testing.T) {
	c := NewCorrector(256)
	var h GlobalHistory
	pc := uint64(3)
	// Untrained: no veto either way.
	if c.Veto(pc, &h, true) || c.Veto(pc, &h, false) {
		t.Error("untrained corrector should not veto")
	}
	for i := 0; i < 10; i++ {
		c.Update(pc, &h, false) // strongly not-taken
	}
	if !c.Veto(pc, &h, true) {
		t.Error("trained corrector should veto a taken prediction")
	}
	if c.Veto(pc, &h, false) {
		t.Error("corrector agrees with not-taken; no veto")
	}
}

func TestPredictorLoopOverrideEndToEnd(t *testing.T) {
	p := New(config.GoldenCove())
	in := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
	in.Target = 5
	pc := uint64(90)
	// A 30-iteration loop: beyond the bimodal's reach for the single
	// not-taken exit; the loop predictor should capture it.
	wrongLate := 0
	for iter := 0; iter < 30; iter++ {
		for i := 0; i < 31; i++ {
			taken := i < 30
			bp := p.Predict(&in, pc)
			if iter >= 20 && bp.Taken != taken {
				wrongLate++
			}
			mis := p.Resolve(&in, pc, &bp, taken, 5)
			if mis {
				p.Recover(&in, pc, &bp, taken)
			}
		}
	}
	// 10 trained iterations x 31 branches; allow a few residual misses.
	if wrongLate > 12 {
		t.Errorf("long-loop exit mispredicted %d times after warmup", wrongLate)
	}
}

func TestPredictorConfidenceExposed(t *testing.T) {
	p := New(config.GoldenCove())
	in := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
	pc := uint64(200)
	bp := p.Predict(&in, pc)
	if bp.Tage.Confident {
		t.Error("cold prediction should be low-confidence")
	}
	for i := 0; i < 30; i++ {
		b := p.Predict(&in, pc)
		p.Resolve(&in, pc, &b, true, 0)
	}
	bp = p.Predict(&in, pc)
	if !bp.Tage.Confident {
		t.Error("well-trained always-taken branch should be confident")
	}
}
