package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one timed stage of a job's lifecycle, written as a JSONL line to
// the job's state directory. Spans are correlated with the sweep engine's
// artifacts by the same SHA-256 run keys the journal and result cache use:
// a "run" span's RunKey equals the journal record's key for that unit.
//
// Spans live strictly off the result path: they are appended to their own
// file beside the journal and never touch the manifest encoder, so tracing
// cannot perturb served bytes (TestServedManifestMatchesOffline holds with
// spans enabled — there is no way to disable them).
type Span struct {
	Job    string `json:"job"`
	Name   string `json:"span"` // submit | queue-wait | run | merge | serve
	RunKey string `json:"run_key,omitempty"`
	Seq    int    `json:"seq,omitempty"`    // grid-order index, run spans
	Worker int    `json:"worker,omitempty"` // pool worker, run spans
	Bench  string `json:"bench,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	Start  string `json:"start"` // RFC3339Nano UTC
	DurNS  int64  `json:"dur_ns"`
	Detail string `json:"detail,omitempty"`
	Err    string `json:"err,omitempty"`
}

// StartTime parses the span's start timestamp.
func (s Span) StartTime() (time.Time, error) {
	return time.Parse(time.RFC3339Nano, s.Start)
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return time.Duration(s.DurNS) }

// SpanLog appends spans as JSONL, one Write call per line (line-atomic on
// an os.File opened O_APPEND, the same discipline the sweep journal uses,
// so a kill can corrupt at most the final line). A nil *SpanLog is a valid
// no-op sink, mirroring the obs package's nil-hook convention.
type SpanLog struct {
	mu  sync.Mutex
	w   io.Writer
	job string
}

// NewSpanLog returns a span log writing to w, stamping every span with job.
func NewSpanLog(w io.Writer, job string) *SpanLog {
	return &SpanLog{w: w, job: job}
}

// Emit writes one span, filling Job, formatting Start from start, and
// computing DurNS from dur. Safe for concurrent use.
func (l *SpanLog) Emit(s Span, start time.Time, dur time.Duration) {
	if l == nil {
		return
	}
	s.Job = l.job
	s.Start = start.UTC().Format(time.RFC3339Nano)
	s.DurNS = int64(dur)
	b, err := json.Marshal(s)
	if err != nil {
		return
	}
	l.mu.Lock()
	_, _ = l.w.Write(append(b, '\n'))
	l.mu.Unlock()
}

// ReadSpans parses a span log. Like the sweep journal loader it tolerates a
// torn final line (the expected artifact of a kill mid-write) but rejects
// damage anywhere else; dropped reports how many lines were discarded.
func ReadSpans(r io.Reader) (spans []Span, dropped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, 0, pendingErr
		}
		var s Span
		if e := json.Unmarshal(line, &s); e != nil {
			// Only acceptable as the final line (torn tail).
			pendingErr = fmt.Errorf("telemetry: span log line %d: %w", lineNo, e)
			dropped++
			continue
		}
		if s.Name == "" {
			return nil, 0, fmt.Errorf("telemetry: span log line %d: missing span name", lineNo)
		}
		spans = append(spans, s)
	}
	if e := sc.Err(); e != nil {
		return nil, 0, e
	}
	return spans, dropped, nil
}
