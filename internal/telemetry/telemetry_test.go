package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryExpositionRoundTrip pins the core contract: what WriteText
// produces, ParseText+Lint accept, with families in registration order and
// values intact.
func TestRegistryExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("atr_requests_total", "Requests served.", Label{"route", "submit"})
	c2 := r.Counter("atr_requests_total", "Requests served.", Label{"route", "list"})
	g := r.Gauge("atr_queue_depth", "Jobs queued.")
	h := r.Histogram("atr_latency_seconds", "Handler latency.", []float64{0.001, 0.01, 0.1})
	r.GaugeFunc("atr_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.CounterFunc("atr_evictions_total", "Evictions.", func() uint64 { return 7 })

	c.Add(3)
	c2.Inc()
	g.Set(4)
	g.Dec()
	h.Observe(500 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()

	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText of our own output: %v\n%s", err, text)
	}
	if err := Lint(fams); err != nil {
		t.Fatalf("Lint of our own output: %v\n%s", err, text)
	}

	wantOrder := []string{"atr_requests_total", "atr_queue_depth", "atr_latency_seconds", "atr_uptime_seconds", "atr_evictions_total"}
	if len(fams) != len(wantOrder) {
		t.Fatalf("got %d families, want %d", len(fams), len(wantOrder))
	}
	for i, want := range wantOrder {
		if fams[i].Name != want {
			t.Errorf("family %d = %s, want %s (registration order must be preserved)", i, fams[i].Name, want)
		}
	}

	find := func(name, labelKey, labelVal string) float64 {
		t.Helper()
		for _, f := range fams {
			for _, s := range f.Samples {
				if s.Name == name && (labelKey == "" || s.Labels[labelKey] == labelVal) {
					return s.Value
				}
			}
		}
		t.Fatalf("sample %s{%s=%q} not found in:\n%s", name, labelKey, labelVal, text)
		return 0
	}
	if v := find("atr_requests_total", "route", "submit"); v != 3 {
		t.Errorf("submit counter = %v, want 3", v)
	}
	if v := find("atr_requests_total", "route", "list"); v != 1 {
		t.Errorf("list counter = %v, want 1", v)
	}
	if v := find("atr_queue_depth", "", ""); v != 3 {
		t.Errorf("gauge = %v, want 3", v)
	}
	if v := find("atr_uptime_seconds", "", ""); v != 12.5 {
		t.Errorf("gauge func = %v, want 12.5", v)
	}
	if v := find("atr_evictions_total", "", ""); v != 7 {
		t.Errorf("counter func = %v, want 7", v)
	}
	if v := find("atr_latency_seconds_count", "", ""); v != 3 {
		t.Errorf("histogram count = %v, want 3", v)
	}
	if v := find("atr_latency_seconds_bucket", "le", "0.001"); v != 1 {
		t.Errorf("le=0.001 bucket = %v, want 1 (cumulative)", v)
	}
	if v := find("atr_latency_seconds_bucket", "le", "+Inf"); v != 3 {
		t.Errorf("+Inf bucket = %v, want 3", v)
	}
	sum := find("atr_latency_seconds_sum", "", "")
	if want := 0.0005 + 0.05 + 2.0; math.Abs(sum-want) > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", sum, want)
	}
}

// TestRegistryRejectsConflicts pins the registration-time panics that make
// misuse a startup failure instead of a silent aliasing bug.
func TestRegistryRejectsConflicts(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind conflict", func(r *Registry) { r.Counter("m_total", "x"); r.Gauge("m_total", "x") }},
		{"duplicate labels", func(r *Registry) {
			r.Counter("m_total", "x", Label{"a", "1"})
			r.Counter("m_total", "x", Label{"a", "1"})
		}},
		{"bad name", func(r *Registry) { r.Counter("9bad", "x") }},
		{"reserved le label", func(r *Registry) { r.Histogram("h", "x", nil, Label{"le", "1"}) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", "x", []float64{1, 0.5}) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		}()
	}
	// Same name + same kind + distinct labels is legal (a family).
	r := NewRegistry()
	r.Counter("ok_total", "x", Label{"a", "1"})
	r.Counter("ok_total", "x", Label{"a", "2"})
}

// TestLintCatchesBrokenExposition feeds the linter hand-broken scrapes.
func TestLintCatchesBrokenExposition(t *testing.T) {
	parse := func(s string) ([]Family, error) { return ParseText(strings.NewReader(s)) }

	if _, err := parse("# TYPE a counter\n# TYPE a counter\na 1\n"); err == nil {
		t.Error("duplicate TYPE accepted")
	}
	if _, err := parse("a_total 1\n"); err == nil {
		t.Error("sample without TYPE accepted")
	}
	if _, err := parse("# TYPE a wibble\na 1\n"); err == nil {
		t.Error("unknown type accepted")
	}

	fams, err := parse("# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 6\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Lint(fams); err == nil {
		t.Error("decreasing cumulative buckets passed lint")
	}

	fams, err = parse("# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_count 5\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Lint(fams); err == nil {
		t.Error("missing +Inf bucket passed lint")
	}

	fams, err = parse("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 9\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Lint(fams); err == nil {
		t.Error("+Inf != count passed lint")
	}

	fams, err = parse("# TYPE c_total counter\nc_total{a=\"x\"} 1\nc_total{a=\"x\"} 2\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Lint(fams); err == nil {
		t.Error("duplicate sample passed lint")
	}
}

// TestQuantile pins the interpolation used by atrtop.
func TestQuantile(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	cum := []uint64{10, 20, 30, 30} // 10 in each finite bucket, none above 10
	if got := Quantile(bounds, cum, 0.5); math.Abs(got-0.55) > 1e-9 {
		// rank 15 lands mid-second-bucket: 0.1 + 0.9*(15-10)/10
		t.Errorf("p50 = %v, want 0.55", got)
	}
	if got := Quantile(bounds, cum, 1); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if got := Quantile(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and checks nothing is lost (the count equals the observes).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefBuckets)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	_, _, _, count := h.Snapshot()
	if count != workers*per {
		t.Fatalf("count = %d, want %d", count, workers*per)
	}
}

// TestHotPathZeroAlloc is the in-test twin of BenchmarkTelemetryHotPath:
// the record paths must not allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "x")
	g := r.Gauge("g", "x")
	h := r.Histogram("h_seconds", "x", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Inc()
		g.Dec()
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates: %v allocs/op", allocs)
	}
}

// TestSpanLogRoundTrip writes spans (concurrently, as the server does from
// pool workers) and reads them back, including torn-tail tolerance.
func TestSpanLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewSpanLog(&buf, "j000042")
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.Emit(Span{Name: "submit"}, start, 2*time.Millisecond)
	l.Emit(Span{Name: "queue-wait"}, start.Add(2*time.Millisecond), 30*time.Millisecond)
	l.Emit(Span{Name: "run", RunKey: "abc123", Seq: 4, Worker: 2, Bench: "gcc", Scheme: "atomic"},
		start.Add(32*time.Millisecond), 200*time.Millisecond)

	var nilLog *SpanLog
	nilLog.Emit(Span{Name: "ignored"}, start, 0) // must not panic

	spans, dropped, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil || dropped != 0 {
		t.Fatalf("ReadSpans: %v (dropped %d)", err, dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Job != "j000042" {
			t.Errorf("span %s job = %q, want j000042", s.Name, s.Job)
		}
	}
	run := spans[2]
	if run.RunKey != "abc123" || run.Worker != 2 || run.Dur() != 200*time.Millisecond {
		t.Errorf("run span mangled: %+v", run)
	}
	if ts, err := run.StartTime(); err != nil || !ts.Equal(start.Add(32*time.Millisecond)) {
		t.Errorf("run start = %v (%v)", ts, err)
	}

	// Torn tail: acceptable, dropped, counted.
	torn := append(append([]byte(nil), buf.Bytes()...), []byte(`{"job":"j0000`)...)
	spans, dropped, err = ReadSpans(bytes.NewReader(torn))
	if err != nil || dropped != 1 || len(spans) != 3 {
		t.Fatalf("torn tail: spans=%d dropped=%d err=%v", len(spans), dropped, err)
	}

	// Damage mid-file: rejected.
	mid := []byte("{\"bogus\n" + buf.String())
	if _, _, err := ReadSpans(bytes.NewReader(mid)); err == nil {
		t.Error("mid-file damage accepted")
	}
}

// TestCounterConcurrent checks no increments are lost across goroutines.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	const workers, per = 8, 100000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}
