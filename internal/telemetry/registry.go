package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to an instrument. Labels are
// fixed at registration: the registry has no dynamic label lookup, so the
// record path stays a bare atomic op.
type Label struct {
	Key, Value string
}

// metric kinds, in the vocabulary of the Prometheus exposition format.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one labelled instrument inside a family.
type child struct {
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *LatencyHistogram

	// counterFn/gaugeFn are collect-time callbacks for values that already
	// live behind someone else's synchronization (cache sizes, map
	// lengths). They trade the lock-free record path for zero double
	// accounting, and are only invoked during exposition.
	counterFn func() uint64
	gaugeFn   func() float64
}

// family is all children sharing one metric name, help string, and type.
type family struct {
	name     string
	help     string
	kind     string
	children []*child
}

// Registry holds instruments in deterministic (registration) order.
// Registration takes a lock and may allocate; record paths (Counter.Inc and
// friends) never touch the registry again. Register everything up front.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates and inserts one child, creating its family on first
// use. Invalid names, type conflicts, and duplicate label sets panic:
// every call site is package-level wiring that runs at daemon startup, so
// a panic is a build-time bug, not a runtime hazard.
func (r *Registry) register(name, help, kind string, labels []Label, c *child) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l.Key))
		}
	}
	c.labels = append([]Label(nil), labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, f.kind, kind))
		}
		for _, prev := range f.children {
			if labelsEqual(prev.labels, c.labels) {
				panic(fmt.Sprintf("telemetry: metric %s: duplicate label set %s", name, renderLabels(c.labels)))
			}
		}
	}
	f.children = append(f.children, c)
}

// Counter registers and returns a counter. Counter names should end in
// _total by Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &child{counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &child{gauge: g})
	return g
}

// Histogram registers and returns a latency histogram with the given
// bucket upper bounds in seconds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, boundsSec []float64, labels ...Label) *LatencyHistogram {
	if len(boundsSec) == 0 {
		boundsSec = DefBuckets
	}
	for i := 1; i < len(boundsSec); i++ {
		if boundsSec[i] <= boundsSec[i-1] {
			panic(fmt.Sprintf("telemetry: metric %s: bucket bounds not ascending", name))
		}
	}
	h := newHistogram(boundsSec)
	r.register(name, help, kindHistogram, labels, &child{hist: h})
	return h
}

// CounterFunc registers a counter whose value is produced by fn at
// exposition time. fn must be monotonic and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounter, labels, &child{counterFn: fn})
}

// GaugeFunc registers a gauge whose value is produced by fn at exposition
// time. fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, &child{gaugeFn: fn})
}

// WriteText writes the registry in Prometheus text exposition format
// (version 0.0.4), families in registration order, children in
// registration order within a family. The output is deterministic for a
// fixed sequence of recorded values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.children {
			switch {
			case c.counter != nil:
				writeSample(&b, f.name, c.labels, "", formatUint(c.counter.Value()))
			case c.counterFn != nil:
				writeSample(&b, f.name, c.labels, "", formatUint(c.counterFn()))
			case c.gauge != nil:
				writeSample(&b, f.name, c.labels, "", strconv.FormatInt(c.gauge.Value(), 10))
			case c.gaugeFn != nil:
				writeSample(&b, f.name, c.labels, "", formatFloat(c.gaugeFn()))
			case c.hist != nil:
				bounds, counts, sum, count := c.hist.Snapshot()
				var cum uint64
				for i, bc := range counts {
					cum += bc
					le := "+Inf"
					if i < len(bounds) {
						le = formatFloat(bounds[i])
					}
					writeSample(&b, f.name+"_bucket", append(c.labels, Label{"le", le}), "", formatUint(cum))
				}
				writeSample(&b, f.name+"_sum", c.labels, "", formatFloat(sum))
				writeSample(&b, f.name+"_count", c.labels, "", formatUint(count))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(b *strings.Builder, name string, labels []Label, _ string, value string) {
	b.WriteString(name)
	b.WriteString(renderLabels(labels))
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Label(nil), a...)
	bs := append([]Label(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Key < as[j].Key })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Key < bs[j].Key })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // "le" is reserved for histogram buckets
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
