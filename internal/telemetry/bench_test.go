package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTelemetryHotPath is CI's telemetry allocation gate: every record
// path the server hits per request or per run — counter increment, gauge
// set, histogram observe — must report 0 allocs/op and single-digit
// nanoseconds. The sub-benchmarks are gated the same way the counter gate
// is: any nonzero allocs/op fails the bench job.
func BenchmarkTelemetryHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "x")
	g := r.Gauge("bench_gauge", "x")
	h := r.Histogram("bench_seconds", "x", nil)

	b.Run("counter-inc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge-set", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	})
	b.Run("counter-inc-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram-observe-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(50 * time.Microsecond)
			}
		})
	})
}
