package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string // full sample name (may carry _bucket/_sum/_count suffix)
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: the samples grouped under a # TYPE
// declaration.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText parses Prometheus text exposition format (the subset the
// registry writes: HELP/TYPE comments and plain sample lines). It enforces
// the structural rules a scraper relies on: a TYPE line precedes every
// sample of its family, no family is declared twice, and every sample
// belongs to a declared family. It is the in-repo exposition linter — CI
// scrapes /metrics through it — and atrtop's wire format.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var fams []*Family
	byName := make(map[string]*Family)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			switch kind {
			case "HELP":
				if f := byName[name]; f != nil {
					if f.Help != "" {
						return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
					}
					f.Help = rest
				} else {
					f = &Family{Name: name, Help: rest}
					fams = append(fams, f)
					byName[name] = f
				}
			case "TYPE":
				f := byName[name]
				if f == nil {
					f = &Family{Name: name}
					fams = append(fams, f)
					byName[name] = f
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = rest
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, rest, name)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := byName[familyOf(s.Name, byName)]
		if f == nil || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, len(fams))
	for i, f := range fams {
		out[i] = *f
	}
	return out, nil
}

// familyOf maps a sample name to its declaring family, stripping histogram
// suffixes when the base name is a declared histogram.
func familyOf(sample string, byName map[string]*Family) string {
	if _, ok := byName[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base != sample {
			if f, ok := byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return sample
}

func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(strings.TrimSpace(strings.TrimPrefix(line, "#")), " ", 3)
	if len(fields) < 2 || (fields[0] != "HELP" && fields[0] != "TYPE") {
		return "", "", "", false
	}
	kind, name = fields[0], fields[1]
	if len(fields) == 3 {
		rest = fields[2]
	}
	return kind, name, rest, true
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return s, fmt.Errorf("sample %s has no value", s.Name)
	}
	v, err := strconv.ParseFloat(valStr[0], 64)
	if err != nil {
		if valStr[0] == "+Inf" {
			v = math.Inf(1)
		} else {
			return s, fmt.Errorf("sample %s: bad value %q", s.Name, valStr[0])
		}
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("label %s: unquoted value", key)
		}
		var val strings.Builder
		j := 1
		for ; j < len(body); j++ {
			c := body[j]
			if c == '\\' && j+1 < len(body) {
				j++
				switch body[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[j])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(body) {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %s", key)
		}
		out[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(body[j+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// Lint applies the semantic checks a Prometheus scrape relies on beyond
// syntax: counter and histogram values must be non-negative finite numbers,
// histogram buckets cumulative and non-decreasing with a +Inf bucket equal
// to _count, and no two samples in a family may share a label set.
func Lint(fams []Family) error {
	for _, f := range fams {
		seen := make(map[string]bool)
		for _, s := range f.Samples {
			key := s.Name + labelKey(s.Labels)
			if seen[key] {
				return fmt.Errorf("family %s: duplicate sample %s", f.Name, key)
			}
			seen[key] = true
			if (f.Type == "counter" || f.Type == "histogram") && (s.Value < 0 || math.IsNaN(s.Value)) {
				return fmt.Errorf("family %s: %s value %v not a valid count", f.Name, s.Name, s.Value)
			}
		}
		if f.Type == "histogram" {
			if err := lintHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// lintHistogram checks each label-set's bucket series for cumulative
// monotonicity and +Inf == count agreement.
func lintHistogram(f Family) error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	bySet := make(map[string]*series)
	order := []string{}
	get := func(labels map[string]string) *series {
		key := labelKeyExcept(labels, "le")
		s, ok := bySet[key]
		if !ok {
			s = &series{}
			bySet[key] = s
			order = append(order, key)
		}
		return s
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, err := parseLe(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("family %s: %v", f.Name, err)
			}
			ser := get(s.Labels)
			ser.les = append(ser.les, le)
			ser.counts = append(ser.counts, s.Value)
		case f.Name + "_count":
			ser := get(s.Labels)
			ser.count = s.Value
			ser.hasCnt = true
		}
	}
	for _, key := range order {
		ser := bySet[key]
		if len(ser.les) == 0 {
			return fmt.Errorf("family %s%s: no buckets", f.Name, key)
		}
		for i := 1; i < len(ser.les); i++ {
			if ser.les[i] <= ser.les[i-1] {
				return fmt.Errorf("family %s%s: bucket bounds not ascending", f.Name, key)
			}
			if ser.counts[i] < ser.counts[i-1] {
				return fmt.Errorf("family %s%s: cumulative bucket counts decrease at le=%v", f.Name, key, ser.les[i])
			}
		}
		if !math.IsInf(ser.les[len(ser.les)-1], 1) {
			return fmt.Errorf("family %s%s: missing +Inf bucket", f.Name, key)
		}
		if ser.hasCnt && ser.counts[len(ser.counts)-1] != ser.count {
			return fmt.Errorf("family %s%s: +Inf bucket %v != count %v", f.Name, key, ser.counts[len(ser.counts)-1], ser.count)
		}
	}
	return nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le label %q", s)
	}
	return v, nil
}

func labelKey(labels map[string]string) string { return labelKeyExcept(labels, "") }

func labelKeyExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// MergedHistogram sums a histogram family's bucket series across all label
// sets into one (bounds, cumulative, sum, count) view. Children must share
// a bucket layout — true by construction for registry-produced families.
func MergedHistogram(f Family) (bounds []float64, cumulative []uint64, sum float64, count uint64, err error) {
	type acc map[float64]float64
	bySet := make(map[string]acc)
	var sums float64
	var counts float64
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, e := parseLe(s.Labels["le"])
			if e != nil {
				return nil, nil, 0, 0, e
			}
			key := labelKeyExcept(s.Labels, "le")
			if bySet[key] == nil {
				bySet[key] = acc{}
			}
			bySet[key][le] = s.Value
		case f.Name + "_sum":
			sums += s.Value
		case f.Name + "_count":
			counts += s.Value
		}
	}
	merged := acc{}
	for _, a := range bySet {
		for le, v := range a {
			merged[le] += v
		}
	}
	les := make([]float64, 0, len(merged))
	for le := range merged {
		les = append(les, le)
	}
	sort.Float64s(les)
	for _, le := range les {
		if !math.IsInf(le, 1) {
			bounds = append(bounds, le)
		}
		cumulative = append(cumulative, uint64(merged[le]))
	}
	return bounds, cumulative, sums, uint64(counts), nil
}
