// Package telemetry is the service stack's production metrics core: a
// lock-free registry of atomic counters, gauges, and fixed-bucket latency
// histograms with deterministic-order Prometheus text exposition, plus a
// JSONL span log for job-lifecycle tracing.
//
// The package exists because the serving hot paths (HTTP admission, queue
// hand-off, per-run accounting) must be observable without ever taking a
// lock or allocating on a record path. Every instrument is a plain atomic
// word (or a fixed array of them), padded to its own cache line so two
// instruments incremented by different cores never share a line. Reads for
// exposition are relaxed snapshots: each value read is a real value the
// instrument held at some point, which is all monitoring needs (DESIGN
// §3.1e) — the synchronizes-with edges that guard *results* never run
// through this package.
package telemetry

import (
	"sync/atomic"
	"time"
)

// pad fills an instrument out to a 64-byte cache line. Instruments embed
// their atomic word first and the pad after; since each instrument is
// allocated separately by the registry, this keeps concurrently-written
// words from sharing a line in the common case.
type pad [56]byte

// Counter is a monotonically increasing counter. The zero value is ready to
// use; obtain counters from a Registry when they should appear in exposition.
type Counter struct {
	v atomic.Uint64
	_ pad
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count (relaxed read).
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
	_ pad
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value (relaxed read).
func (g *Gauge) Value() int64 { return g.v.Load() }

// padUint64 is one histogram bucket on its own cache line.
type padUint64 struct {
	v atomic.Uint64
	_ pad
}

// LatencyHistogram counts durations into fixed cumulative-exposition
// buckets. Bounds are set at registration and never change, so Observe is
// a linear scan over a handful of int64 compares plus two atomic adds —
// no locks, no allocation. Snapshots taken for exposition may tear across
// buckets (a concurrent Observe can be visible in sum but not yet in its
// bucket, or vice versa); each individual word is still a real past value,
// which is sufficient for monitoring.
type LatencyHistogram struct {
	boundsNs  []int64   // upper bounds in nanoseconds, ascending
	boundsSec []float64 // same bounds in seconds, for exposition
	sumNs     atomic.Uint64
	_         pad
	buckets   []padUint64 // len(boundsNs)+1; last is +Inf
}

// DefBuckets is the default latency bucket layout: 100µs to 10s, roughly
// logarithmic — wide enough for HTTP handlers and multi-second grid runs.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(boundsSec []float64) *LatencyHistogram {
	h := &LatencyHistogram{
		boundsSec: append([]float64(nil), boundsSec...),
		boundsNs:  make([]int64, len(boundsSec)),
		buckets:   make([]padUint64, len(boundsSec)+1),
	}
	for i, b := range boundsSec {
		h.boundsNs[i] = int64(b * float64(time.Second))
	}
	return h
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for ; i < len(h.boundsNs); i++ {
		if ns <= h.boundsNs[i] {
			break
		}
	}
	h.buckets[i].v.Add(1)
	h.sumNs.Add(uint64(ns))
}

// ObserveSince records the time elapsed since t0.
func (h *LatencyHistogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Snapshot returns the bucket upper bounds (seconds), the per-bucket counts
// (non-cumulative, last bucket is +Inf), the sum of observations in
// seconds, and the total count.
func (h *LatencyHistogram) Snapshot() (bounds []float64, counts []uint64, sum float64, count uint64) {
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].v.Load()
		count += counts[i]
	}
	return h.boundsSec, counts, float64(h.sumNs.Load()) / float64(time.Second), count
}

// Quantile estimates the q-th quantile (0 < q <= 1) of a histogram from
// cumulative bucket counts, interpolating linearly inside the bucket the
// quantile lands in. bounds are the finite upper bounds; cumulative must
// have len(bounds)+1 entries with the +Inf bucket last. Values in the +Inf
// bucket clamp to the largest finite bound. Returns 0 for an empty
// histogram.
func Quantile(bounds []float64, cumulative []uint64, q float64) float64 {
	if len(cumulative) == 0 || len(bounds)+1 != len(cumulative) {
		return 0
	}
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, c := range cumulative {
		if float64(c) >= rank {
			if i >= len(bounds) { // +Inf bucket
				return bounds[len(bounds)-1]
			}
			lo, loCount := 0.0, uint64(0)
			if i > 0 {
				lo, loCount = bounds[i-1], cumulative[i-1]
			}
			width := float64(cumulative[i] - loCount)
			if width == 0 {
				return bounds[i]
			}
			return lo + (bounds[i]-lo)*(rank-float64(loCount))/width
		}
	}
	return bounds[len(bounds)-1]
}
