// Package trace provides a compact binary format for committed-instruction
// traces (the analog of Scarab's trace-based frontend), plus an in-order
// trace analyzer that classifies register allocations into the paper's
// region kinds (Fig 6) and counts consumers (Fig 12) without running the
// timing model. The analyzer is an independent implementation of the region
// semantics, used to cross-validate the renaming engine's statistics.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"atr/internal/isa"
	"atr/internal/program"
	"atr/internal/stats"
)

// magic identifies the trace format; the byte after it is the version.
var magic = [4]byte{'A', 'T', 'R', 'T'}

const version = 1

// Record is one traced committed instruction.
type Record struct {
	PC    uint64
	Op    isa.Op
	Taken bool
	EA    uint64 // memory ops only
}

// FromProgram converts an emulator/pipeline record.
func FromProgram(r program.Record) Record {
	return Record{PC: r.PC, Op: r.Op, Taken: r.Taken, EA: r.EA}
}

// Writer streams records to an underlying writer.
type Writer struct {
	w     *bufio.Writer
	buf   [2 * binary.MaxVarintLen64]byte
	count uint64
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	op := byte(r.Op)
	if r.Taken {
		op |= 0x80
	}
	if err := t.w.WriteByte(op); err != nil {
		return err
	}
	n := binary.PutUvarint(t.buf[:], r.PC)
	if r.Op.IsMem() {
		n += binary.PutUvarint(t.buf[n:], r.EA)
	}
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader streams records back.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte{m[0], m[1], m[2], m[3]} != magic {
		return nil, errors.New("trace: bad magic")
	}
	if m[4] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", m[4])
	}
	return &Reader{r: br}, nil
}

// Read returns the next record; io.EOF at end of trace.
func (t *Reader) Read() (Record, error) {
	op, err := t.r.ReadByte()
	if err != nil {
		return Record{}, err
	}
	rec := Record{Op: isa.Op(op & 0x7F), Taken: op&0x80 != 0}
	if rec.PC, err = binary.ReadUvarint(t.r); err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	if rec.Op.IsMem() {
		if rec.EA, err = binary.ReadUvarint(t.r); err != nil {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
	}
	return rec, nil
}

// Analysis is the outcome of an in-order region analysis over a trace or
// program: the Fig 6 region ratios and the Fig 12 consumer histogram, for a
// chosen register class.
type Analysis struct {
	Allocations uint64
	NonBranch   float64
	NonExcept   float64
	Atomic      float64
	Consumers   *stats.Histogram
}

// regState tracks one live architectural mapping during analysis.
type regState struct {
	sawBranch bool
	sawExcept bool
	consumers int
	valid     bool
}

// Analyzer performs the in-order region classification: it maintains, per
// architectural register, whether a flusher was encountered since the last
// redefinition, mirroring the bulk-marking semantics (§4.2.2) without any
// microarchitectural state.
type Analyzer struct {
	class isa.RegClass
	regs  [isa.NumRegs]regState
	total uint64
	kinds [4]uint64
	hist  *stats.Histogram
	prog  *program.Program
}

// NewAnalyzer analyzes allocations of the given register class against the
// static program (needed to recover register operands from PCs). The initial
// architectural mappings count as live allocations, matching the engine.
func NewAnalyzer(p *program.Program, class isa.RegClass) *Analyzer {
	a := &Analyzer{class: class, hist: stats.NewHistogram(16), prog: p}
	for r := range a.regs {
		a.regs[r].valid = true
	}
	return a
}

// Step feeds one committed instruction.
func (a *Analyzer) Step(rec Record) {
	in := a.prog.At(rec.PC)
	// Consumers first (an instruction reads its sources before writing).
	for _, s := range in.Srcs {
		if s.Valid() && s.Class() == a.class {
			a.regs[s].consumers++
		}
	}
	// Bulk marking: a flusher poisons every live mapping before its own
	// destinations redefine.
	if in.Op.IsFlusher() {
		branch := in.Op.IsBranchClassFlusher()
		for r := range a.regs {
			if branch {
				a.regs[r].sawBranch = true
			} else {
				a.regs[r].sawExcept = true
			}
		}
	}
	for _, d := range in.Dsts {
		if !d.Valid() || d.Class() != a.class {
			continue
		}
		st := &a.regs[d]
		if st.valid {
			a.total++
			switch {
			case !st.sawBranch && !st.sawExcept:
				a.kinds[stats.RegionAtomic]++
				a.hist.Add(st.consumers)
			case !st.sawBranch:
				a.kinds[stats.RegionNonBranch]++
			case !st.sawExcept:
				a.kinds[stats.RegionNonExcept]++
			default:
				a.kinds[stats.RegionNone]++
			}
		}
		*st = regState{valid: true}
	}
	if in.Op.IsBranchClassFlusher() {
		// Branch-class flushers poison their own destinations too.
		for _, d := range in.Dsts {
			if d.Valid() && d.Class() == a.class {
				a.regs[d].sawBranch = true
			}
		}
	}
}

// Result summarizes the analysis so far.
func (a *Analyzer) Result() Analysis {
	res := Analysis{Allocations: a.total, Consumers: a.hist}
	if a.total == 0 {
		return res
	}
	atomic := float64(a.kinds[stats.RegionAtomic])
	res.Atomic = atomic / float64(a.total)
	res.NonBranch = (float64(a.kinds[stats.RegionNonBranch]) + atomic) / float64(a.total)
	res.NonExcept = (float64(a.kinds[stats.RegionNonExcept]) + atomic) / float64(a.total)
	return res
}

// AnalyzeProgram runs the functional emulator for n instructions and
// classifies all allocations of the given class.
func AnalyzeProgram(p *program.Program, class isa.RegClass, n int) Analysis {
	a := NewAnalyzer(p, class)
	e := program.NewEmulator(p)
	for i := 0; i < n; i++ {
		rec, ok := e.Step()
		if !ok {
			break
		}
		a.Step(FromProgram(rec))
	}
	return a.Result()
}
