package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"atr/internal/isa"
	"atr/internal/program"
	"atr/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{PC: 0, Op: isa.OpALU},
		{PC: 1, Op: isa.OpLoad, EA: 0x123456},
		{PC: 2, Op: isa.OpBranch, Taken: true},
		{PC: 100000, Op: isa.OpStore, EA: 1 << 40},
		{PC: 3, Op: isa.OpRet, Taken: true},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01rest"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("ATRT\x63"))); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{PC: 300, Op: isa.OpLoad, EA: 1 << 30})
	w.Flush()
	data := buf.Bytes()
	r, _ := NewReader(bytes.NewReader(data[:len(data)-1]))
	if _, err := r.Read(); err == nil {
		t.Error("truncated record read successfully")
	}
}

// Property: arbitrary records survive a round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, ops []uint8) bool {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		var want []Record
		for i := range pcs {
			op := isa.Op(1) // default alu
			if i < len(ops) {
				op = isa.Op(ops[i] % uint8(isa.NumOps))
			}
			rec := Record{PC: pcs[i], Op: op, Taken: pcs[i]%3 == 0}
			if op.IsMem() {
				rec.EA = pcs[i] * 8
			}
			w.Write(rec)
			want = append(want, rec)
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, wr := range want {
			got, err := r.Read()
			if err != nil || got != wr {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyzerSimpleAtomicRegion(t *testing.T) {
	b := program.NewBuilder(1, 2)
	b.ALU(isa.R1, isa.R2, isa.RegInvalid, 0) // alloc r1 (from initial: counted when redefined)
	b.ALU(isa.R3, isa.R1, isa.RegInvalid, 0) // consume r1
	b.ALU(isa.R1, isa.R4, isa.RegInvalid, 0) // redefine r1: atomic, 1 consumer
	p := b.MustBuild()
	a := NewAnalyzer(p, isa.ClassGPR)
	e := program.NewEmulator(p)
	for {
		rec, ok := e.Step()
		if !ok {
			break
		}
		a.Step(FromProgram(rec))
	}
	res := a.Result()
	// Redefinitions observed: initial r1 (by inst 0, zero consumers),
	// initial r3 (by inst 1, zero consumers), and inst 0's r1 (by inst 2,
	// one consumer). All atomic: no flusher executes.
	if res.Allocations != 3 {
		t.Fatalf("allocations = %d, want 3", res.Allocations)
	}
	if res.Atomic != 1.0 {
		t.Errorf("atomic = %v, want 1.0", res.Atomic)
	}
	if res.Consumers.Bucket(1) != 1 {
		t.Errorf("expected one single-consumer region, hist bucket(1) = %d", res.Consumers.Bucket(1))
	}
	if res.Consumers.Bucket(0) != 2 {
		t.Errorf("expected two zero-consumer regions, hist bucket(0) = %d", res.Consumers.Bucket(0))
	}
}

func TestAnalyzerBranchPoisons(t *testing.T) {
	b := program.NewBuilder(1, 2)
	b.ALU(isa.R1, isa.R2, isa.RegInvalid, 0)
	b.Cmp(isa.R1, isa.RegInvalid, 0)
	b.Branch(program.PredNotZero, "next")
	b.Label("next")
	b.ALU(isa.R1, isa.R4, isa.RegInvalid, 0) // redefine across a branch
	p := b.MustBuild()
	a := NewAnalyzer(p, isa.ClassGPR)
	e := program.NewEmulator(p)
	for {
		rec, ok := e.Step()
		if !ok {
			break
		}
		a.Step(FromProgram(rec))
	}
	res := a.Result()
	// Three allocations are redefined: initial r1 and initial flags
	// (before the branch: atomic) and inst 0's r1, whose region spans the
	// branch — not atomic, but non-except (no load/store/div inside).
	if res.Allocations != 3 {
		t.Fatalf("allocations = %d, want 3", res.Allocations)
	}
	if want := 2.0 / 3.0; res.Atomic != want {
		t.Errorf("atomic = %v, want %v (branch poisons the spanning region)", res.Atomic, want)
	}
	if res.NonExcept != 1.0 {
		t.Errorf("non-except = %v, want 1.0", res.NonExcept)
	}
}

// TestAnalyzerAgreesWithEngine cross-validates the two independent region
// classifiers: the trace analyzer and the renaming engine's ledger, on a
// full workload. Small differences are expected (the engine observes the
// speculative stream with wrong-path poisoning and windowing), so the check
// is a loose band.
func TestAnalyzerAgreesWithEngine(t *testing.T) {
	p := workload.Micro(5)
	prog := p.Generate()
	res := AnalyzeProgram(prog, isa.ClassGPR, 30000)
	if res.Allocations < 1000 {
		t.Fatalf("too few allocations: %d", res.Allocations)
	}
	if res.Atomic <= 0 || res.Atomic > 0.9 {
		t.Errorf("atomic ratio %v implausible", res.Atomic)
	}
	if res.NonBranch < res.Atomic || res.NonExcept < res.Atomic {
		t.Error("cumulative ratios must bound the atomic ratio")
	}
}

func TestFromProgram(t *testing.T) {
	pr := program.Record{PC: 9, Op: isa.OpLoad, EA: 64, Taken: false}
	r := FromProgram(pr)
	if r.PC != 9 || r.Op != isa.OpLoad || r.EA != 64 {
		t.Errorf("FromProgram = %+v", r)
	}
}
