package checkpoint

import (
	"os"
	"testing"
	"time"

	"atr/internal/pipeline"
	"atr/internal/workload"
)

// TestPlanShape is a diagnostic, not a gate: it sweeps sampling-plan shapes
// against the full-detail oracle to pick the default schedule. Run with
// ATR_SAMPLE_DIAG=1.
func TestPlanShape(t *testing.T) {
	if os.Getenv("ATR_SAMPLE_DIAG") == "" {
		t.Skip("set ATR_SAMPLE_DIAG=1 to run")
	}
	cfg := testConfig()
	const instr = 2000000
	plans := []Plan{
		{Period: 100000, Window: 2000, Warmup: 500},
		{Period: 100000, Window: 5000, Warmup: 1000},
		{Period: 50000, Window: 2000, Warmup: 500},
		{Period: 50000, Window: 5000, Warmup: 1000},
		{Period: 25000, Window: 2000, Warmup: 500},
		{Period: 20000, Window: 1000, Warmup: 250},
	}
	for _, name := range []string{"gcc", "exchange2", "lbm"} {
		p, _ := workload.ByName(name)
		prog := p.Generate()
		t0 := time.Now()
		exact := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(instr)
		exactWall := time.Since(t0)
		for _, plan := range plans {
			t1 := time.Now()
			est := Run(cfg, prog, pipeline.SchedulerEvent, instr, plan)
			wall := time.Since(t1)
			err := (est.Result.IPC - exact.IPC) / exact.IPC
			t.Logf("%-10s %-26s err %+5.2f%% ci ±%5.2f%% windows %3d speedup %5.1fx (%.2fs vs %.2fs)",
				name, plan, 100*err, 100*est.RelErr.IPC, est.Windows,
				exactWall.Seconds()/wall.Seconds(), wall.Seconds(), exactWall.Seconds())
		}
	}
}

// TestWindowSpread is a diagnostic: dump the per-window IPC distribution.
// Run with ATR_SAMPLE_DIAG=1.
func TestWindowSpread(t *testing.T) {
	if os.Getenv("ATR_SAMPLE_DIAG") == "" {
		t.Skip("set ATR_SAMPLE_DIAG=1 to run")
	}
	cfg := testConfig()
	p, _ := workload.ByName("exchange2")
	prog := p.Generate()
	est := Run(cfg, prog, pipeline.SchedulerEvent, 2000000, Plan{Period: 100000, Window: 2000, Warmup: 500})
	t.Logf("window IPCs: %v", est.WindowIPC)
}

// BenchmarkWarmAdvance measures the functional-warming fast-forward rate.
func BenchmarkWarmAdvance(b *testing.B) {
	cfg := testConfig()
	p, _ := workload.ByName("gcc")
	prog := p.Generate()
	w := newWarmer(prog, cfg)
	b.ResetTimer()
	n := w.advance(uint64(b.N))
	b.ReportMetric(float64(n), "instr")
}

// TestShortPlanPick is a diagnostic for choosing the tier-1 short-test plan.
// Run with ATR_SAMPLE_DIAG=1.
func TestShortPlanPick(t *testing.T) {
	if os.Getenv("ATR_SAMPLE_DIAG") == "" {
		t.Skip("set ATR_SAMPLE_DIAG=1 to run")
	}
	cfg := testConfig()
	for _, instr := range []uint64{200000, 400000} {
		for _, plan := range []Plan{
			{Period: 10000, Window: 2000, Warmup: 500},
			{Period: 10000, Window: 1000, Warmup: 250},
			{Period: 5000, Window: 1000, Warmup: 250},
		} {
			for _, name := range []string{"gcc", "exchange2", "omnetpp"} {
				p, _ := workload.ByName(name)
				prog := p.Generate()
				exact := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(instr)
				est := Run(cfg, prog, pipeline.SchedulerEvent, instr, plan)
				err := (est.Result.IPC - exact.IPC) / exact.IPC
				t.Logf("n=%d %-24s %-10s err %+5.2f%%", instr, plan, name, 100*err)
			}
		}
	}
}
