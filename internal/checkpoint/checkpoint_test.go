package checkpoint

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"testing"
	"time"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/program"
	"atr/internal/workload"
)

func testConfig() config.Config {
	return config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64)
}

func TestParseMode(t *testing.T) {
	p, err := ParseMode("systematic:100000/2000/500")
	if err != nil {
		t.Fatalf("ParseMode: %v", err)
	}
	if p != (Plan{Period: 100000, Window: 2000, Warmup: 500}) {
		t.Fatalf("ParseMode = %+v", p)
	}
	if p.String() != "systematic:100000/2000/500" {
		t.Fatalf("String = %q", p.String())
	}
	for _, bad := range []string{
		"",
		"systematic",
		"systematic:1000",
		"systematic:1000/2000/500", // window+warmup > period
		"systematic:1000/0/0",      // empty window
		"random:1000/100/10",
		"systematic:a/b/c",
	} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q): expected error", bad)
		}
	}
}

// TestEmulatorCheckpointRoundTrip proves the architectural snapshot is
// bit-exact: an emulator restored from a mid-run checkpoint produces the
// identical record stream to the emulator that never checkpointed.
func TestEmulatorCheckpointRoundTrip(t *testing.T) {
	prog := workload.Micro(7).Generate()
	ref := program.NewEmulator(prog)
	ref.Run(5000)

	em := program.NewEmulator(prog)
	em.Run(5000)
	st := em.Checkpoint()
	if st.Steps != 5000 {
		t.Fatalf("checkpoint at %d steps", st.Steps)
	}
	restored := program.RestoreEmulator(prog, &st)

	for i := 0; i < 5000; i++ {
		want, okW := ref.Step()
		got, okG := restored.Step()
		if okW != okG || want != got {
			t.Fatalf("step %d diverged: restored %+v (ok=%v), reference %+v (ok=%v)", i, got, okG, want, okW)
		}
		if !okW {
			break
		}
	}
	if ref.Regs != restored.Regs || ref.PC != restored.PC {
		t.Fatalf("final state diverged")
	}
}

// TestPredictorStateRoundTrip proves the predictor snapshot is bit-exact: a
// predictor restored mid-stream behaves identically to one that was never
// snapshotted, for the rest of the stream.
func TestPredictorStateRoundTrip(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(11).Generate()

	w1 := newWarmer(prog, cfg)
	w1.advance(8000)

	w2 := newWarmer(prog, cfg)
	w2.advance(4000)
	st := w2.pred.State()
	w3 := newWarmer(prog, cfg)
	w3.em = program.NewEmulator(prog)
	// Reposition w3 at the same instruction with restored warm state.
	arch := w2.em.Checkpoint()
	w3.em = program.RestoreEmulator(prog, &arch)
	w3.pred.Restore(st)
	w3.mem.Restore(w2.mem.State())
	w3.lastILine = w2.lastILine
	w2.advance(4000)
	w3.advance(4000)

	if !reflect.DeepEqual(w2.pred.State(), w3.pred.State()) {
		t.Fatalf("restored predictor diverged from original")
	}
	if !reflect.DeepEqual(w1.pred.State(), w2.pred.State()) {
		t.Fatalf("snapshotted-and-continued predictor diverged from never-snapshotted run")
	}
}

// TestCacheStateRoundTrip proves the hierarchy snapshot is bit-exact over
// the touch stream, including the untouched-chunk materialization pattern.
func TestCacheStateRoundTrip(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(13).Generate()

	w1 := newWarmer(prog, cfg)
	w1.advance(8000)

	w2 := newWarmer(prog, cfg)
	w2.advance(4000)
	st := w2.mem.State()
	w3 := newWarmer(prog, cfg)
	arch := w2.em.Checkpoint()
	w3.em = program.RestoreEmulator(prog, &arch)
	w3.pred.Restore(w2.pred.State())
	w3.mem.Restore(st)
	w3.lastILine = w2.lastILine
	w2.advance(4000)
	w3.advance(4000)

	if !reflect.DeepEqual(w2.mem.State(), w3.mem.State()) {
		t.Fatalf("restored hierarchy diverged from original")
	}
	if !reflect.DeepEqual(w1.mem.State(), w2.mem.State()) {
		t.Fatalf("snapshotted-and-continued hierarchy diverged from never-snapshotted run")
	}
}

// TestCheckpointEncodeDecode proves JSON serialization round-trips the full
// checkpoint.
func TestCheckpointEncodeDecode(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(17).Generate()
	w := newWarmer(prog, cfg)
	w.advance(3000)
	cp := Capture(w.em, w.pred, w.mem)

	data, err := cp.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatalf("decode(encode(cp)) != cp")
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatalf("encode not canonical across a round trip")
	}
}

// TestPipelineRestoreBitExact proves pipeline.Restore is exact: a CPU
// restored from the initial checkpoint (captured before any instruction
// executed, with cold warm-state snapshots) produces the byte-identical
// Result of a CPU that was never restored.
func TestPipelineRestoreBitExact(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(19).Generate()
	const instr = 20000

	plain := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(instr)

	w := newWarmer(prog, cfg)
	cp := Capture(w.em, w.pred, w.mem)
	cpu := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent)
	cpu.Restore(&cp.Arch, cp.Bpred, cp.Cache)
	restored := cpu.Run(instr)

	if !reflect.DeepEqual(plain, restored) {
		t.Fatalf("restored-at-0 run diverged:\nplain    %+v\nrestored %+v", plain, restored)
	}
}

// TestPrimeMatchesCapture proves the driver's in-process fast path (prime:
// memory Clone, no serialization) yields the byte-identical simulation to
// the serializable Capture→Encode→Decode→Restore path.
func TestPrimeMatchesCapture(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(31).Generate()
	w := newWarmer(prog, cfg)
	w.advance(6000)

	cp := Capture(w.em, w.pred, w.mem)
	data, err := cp.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cp2, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	slow := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent)
	slow.Restore(&cp2.Arch, cp2.Bpred, cp2.Cache)
	fast := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent)
	w.prime(fast)

	slowRes := slow.Run(10000)
	fastRes := fast.Run(10000)
	if !reflect.DeepEqual(slowRes, fastRes) {
		t.Fatalf("prime fast path diverged from serialized checkpoint:\nslow %+v\nfast %+v", slowRes, fastRes)
	}
}

// TestRestoreAfterRunPanics documents the fresh-CPU-only contract.
func TestRestoreAfterRunPanics(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(23).Generate()
	cpu := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent)
	cpu.RunFor(10, ^uint64(0))
	w := newWarmer(prog, cfg)
	cp := Capture(w.em, w.pred, w.mem)
	defer func() {
		if recover() == nil {
			t.Fatalf("Restore on a stepped CPU did not panic")
		}
	}()
	cpu.Restore(&cp.Arch, cp.Bpred, cp.Cache)
}

// TestSampledDeterminism: the estimate is a pure function of
// (config, program, plan, horizon).
func TestSampledDeterminism(t *testing.T) {
	cfg := testConfig()
	prog := workload.Micro(29).Generate()
	plan := Plan{Period: 5000, Window: 500, Warmup: 100}
	a := Run(cfg, prog, pipeline.SchedulerEvent, 40000, plan)
	b := Run(cfg, prog, pipeline.SchedulerEvent, 40000, plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled run not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestSampledAccuracyShort is the tier-1 accuracy check: on two real
// profiles at a short horizon, the sampled IPC estimate must land within 5%
// of the full-detail oracle.
func TestSampledAccuracyShort(t *testing.T) {
	cfg := testConfig()
	plan := Plan{Period: 10000, Window: 2000, Warmup: 500}
	const instr = 400000
	for _, name := range []string{"gcc", "exchange2"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("profile %q missing", name)
		}
		prog := p.Generate()
		exact := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(instr)
		est := Run(cfg, prog, pipeline.SchedulerEvent, instr, plan)
		err := math.Abs(est.Result.IPC-exact.IPC) / exact.IPC
		t.Logf("%s: exact IPC %.4f, sampled %.4f (err %.2f%%, ±%.2f%% CI, %d windows)",
			name, exact.IPC, est.Result.IPC, 100*err, 100*est.RelErr.IPC, est.Windows)
		if err > 0.05 {
			t.Errorf("%s: sampled IPC error %.2f%% > 5%%", name, 100*err)
		}
		// The exact pipeline overshoots the instruction budget by up to one
		// retire-width group; the sampled driver stops the emulator exactly
		// at the horizon. Allow that slack.
		if d := int64(exact.Committed) - int64(est.Result.Committed); d < 0 || d > 8 {
			t.Errorf("%s: sampled committed %d vs exact %d (outside retire-width slack)", name, est.Result.Committed, exact.Committed)
		}
	}
}

// TestSampledAccuracyBattery is the full validation battery from the issue:
// sampled vs. full-detail across all 23 profiles at a long horizon, under
// both shipped plans — the speed-first period-200k plan and the
// accuracy-first period-100k plan — reporting per-profile error and
// wall-clock speedup. Run it explicitly with ATR_SAMPLE_BATTERY=<instr>
// (e.g. 10000000); it is far too slow for tier-1. Set
// ATR_SAMPLE_BATTERY_JSON=<path> to also write the per-profile rows as JSON
// (the source of README's accuracy table and BENCH_8.json).
func TestSampledAccuracyBattery(t *testing.T) {
	horizon := os.Getenv("ATR_SAMPLE_BATTERY")
	if horizon == "" {
		t.Skip("set ATR_SAMPLE_BATTERY=<instr> to run the full battery")
	}
	var instr uint64
	if _, err := fmt.Sscanf(horizon, "%d", &instr); err != nil || instr == 0 {
		t.Fatalf("bad ATR_SAMPLE_BATTERY %q", horizon)
	}
	cfg := testConfig()
	plans := []Plan{
		{Period: 200000, Window: 2000, Warmup: 500},
		{Period: 100000, Window: 2000, Warmup: 500},
	}
	type row struct {
		Bench       string  `json:"bench"`
		Plan        string  `json:"plan"`
		ExactIPC    float64 `json:"exact_ipc"`
		SampledIPC  float64 `json:"sampled_ipc"`
		ErrPct      float64 `json:"err_pct"`
		CIPct       float64 `json:"ci_pct"`
		Windows     int     `json:"windows"`
		ExactSecs   float64 `json:"exact_secs"`
		SampledSecs float64 `json:"sampled_secs"`
		Speedup     float64 `json:"speedup"`
	}
	var rows []row
	worst := make(map[string]float64)
	for _, p := range workload.Profiles() {
		prog := p.Generate()
		t0 := time.Now()
		exact := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(instr)
		exactSecs := time.Since(t0).Seconds()
		for _, plan := range plans {
			t1 := time.Now()
			est := Run(cfg, prog, pipeline.SchedulerEvent, instr, plan)
			sampledSecs := time.Since(t1).Seconds()
			err := math.Abs(est.Result.IPC-exact.IPC) / exact.IPC
			if err > worst[plan.String()] {
				worst[plan.String()] = err
			}
			rows = append(rows, row{
				Bench: p.Name, Plan: plan.String(),
				ExactIPC: exact.IPC, SampledIPC: est.Result.IPC,
				ErrPct: 100 * err, CIPct: 100 * est.RelErr.IPC,
				Windows:   est.Windows,
				ExactSecs: exactSecs, SampledSecs: sampledSecs,
				Speedup: exactSecs / sampledSecs,
			})
			t.Logf("%-12s %-24s exact %.4f sampled %.4f err %5.2f%% ci ±%.2f%% speedup %5.1fx",
				p.Name, plan, exact.IPC, est.Result.IPC, 100*err, 100*est.RelErr.IPC,
				exactSecs/sampledSecs)
			// Regression backstop, deliberately looser than the 2% issue
			// target: phase-heavy synthetic profiles carry window-sampling
			// variance the plan cannot remove (BENCH_8.json records the
			// honest per-profile numbers; README discusses the tradeoff).
			if err > 0.08 {
				t.Errorf("%s @ %s: sampled IPC error %.2f%% > 8%% backstop", p.Name, plan, 100*err)
			}
		}
	}
	for plan, w := range worst {
		t.Logf("worst-case IPC error @ %s: %.2f%%", plan, 100*w)
	}
	if path := os.Getenv("ATR_SAMPLE_BATTERY_JSON"); path != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
