// Package checkpoint implements SMARTS-style sampled simulation: the
// functional emulator fast-forwards between systematically spaced detail
// windows while keeping branch predictor and cache state warm functionally,
// and the detailed pipeline runs only inside the windows (after a warm-up
// prefix whose statistics are discarded). Whole-run statistics are
// extrapolated from the window measurements with relative-error bars
// computed from the across-window variance.
//
// The package also defines the serializable Checkpoint — architectural
// state plus warm predictor/cache snapshots — that lets a detailed pipeline
// be dropped into the middle of a program bit-exactly.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"math"

	"atr/internal/bpred"
	"atr/internal/cache"
	"atr/internal/config"
	"atr/internal/isa"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/program"
)

// Plan is a systematic sampling schedule: every Period instructions, run
// Warmup+Window instructions in detail and measure only the trailing Window.
type Plan struct {
	Period uint64 // sampling period in instructions
	Window uint64 // measured detail window length
	Warmup uint64 // detailed warm-up prefix, statistics discarded
}

// ParseMode parses a -sample-mode string of the form
// "systematic:<period>/<window>/<warmup>".
func ParseMode(s string) (Plan, error) {
	var p Plan
	n, err := fmt.Sscanf(s, "systematic:%d/%d/%d", &p.Period, &p.Window, &p.Warmup)
	if err != nil || n != 3 {
		return Plan{}, fmt.Errorf("checkpoint: bad sample mode %q: want systematic:<period>/<window>/<warmup>", s)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// String renders the plan in -sample-mode syntax.
func (p Plan) String() string {
	return fmt.Sprintf("systematic:%d/%d/%d", p.Period, p.Window, p.Warmup)
}

// Validate checks the schedule is realizable.
func (p Plan) Validate() error {
	if p.Window < 1 {
		return fmt.Errorf("checkpoint: window must be >= 1 (got %d)", p.Window)
	}
	if p.Warmup+p.Window > p.Period {
		return fmt.Errorf("checkpoint: warmup+window (%d) must fit in the period (%d)",
			p.Warmup+p.Window, p.Period)
	}
	return nil
}

// Checkpoint is a complete restartable snapshot of a program mid-run:
// architectural state plus the warm microarchitectural state a detailed
// pipeline needs to behave as if it had executed the prefix itself.
type Checkpoint struct {
	Arch  program.ArchState `json:"arch"`
	Bpred *bpred.State      `json:"bpred,omitempty"`
	Cache *cache.HierState  `json:"cache,omitempty"`
}

// Capture snapshots the current state of an emulator and its warm
// structures.
func Capture(em *program.Emulator, pred *bpred.Predictor, mem *cache.Hierarchy) *Checkpoint {
	cp := &Checkpoint{Arch: em.Checkpoint()}
	if pred != nil {
		cp.Bpred = pred.State()
	}
	if mem != nil {
		cp.Cache = mem.State()
	}
	return cp
}

// Encode serializes the checkpoint to JSON.
func (c *Checkpoint) Encode() ([]byte, error) { return json.Marshal(c) }

// Decode deserializes a checkpoint produced by Encode.
func Decode(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &c, nil
}

// warmer fast-forwards a program with the functional emulator while keeping
// the predictor and cache hierarchy warm: every control instruction trains
// the predictor with its in-order outcome, every memory access touches the
// data hierarchy, and every I-cache line transition touches the instruction
// side. The I-side filter (one touch per line, not per instruction) is what
// makes warming an order of magnitude faster than detailed simulation while
// producing the same L1I content: consecutive instructions on one line are
// one line's worth of reuse either way.
type warmer struct {
	em        *program.Emulator
	pred      *bpred.Predictor
	mem       *cache.Hierarchy
	lastILine uint64
	iShift    uint // L1I line shift, hoisted out of the per-instruction loop
}

func newWarmer(prog *program.Program, cfg config.Config) *warmer {
	mem := cache.NewHierarchy(cfg)
	return &warmer{
		em:        program.NewEmulator(prog),
		pred:      bpred.New(cfg),
		mem:       mem,
		lastILine: ^uint64(0),
		iShift:    mem.L1I.LineShift(),
	}
}

// prime drops a freshly built CPU into the warmer's current position: warm
// predictor/cache state is cloned structure-to-structure (RestoreLive) and
// the memory image is a copy-on-write overlay over the warmer's memory —
// O(1) setup regardless of working-set size — instead of the serializable
// State/Snapshot forms, which would dominate the per-region cost. The
// overlay contract holds because the driver never advances the warmer while
// the window CPU is live. Capture/Encode remain the serializable path; prime
// is the in-process fast path and produces the identical simulation
// (TestPrimeMatchesCapture).
func (w *warmer) prime(cpu *pipeline.CPU) {
	arch := program.ArchState{
		PC:      w.em.PC,
		Regs:    w.em.Regs,
		MemSeed: w.em.Mem.Seed(),
		Steps:   w.em.Steps(),
		Done:    w.em.Done,
	}
	cpu.RestoreLive(&arch, w.pred, w.mem)
	cpu.Data = program.NewOverlay(w.em.Mem)
}

// advance executes up to n instructions with functional warming and returns
// how many actually executed (fewer only when the program halts).
func (w *warmer) advance(n uint64) uint64 {
	prog := w.em.Prog
	var rec program.Record
	for i := uint64(0); i < n; i++ {
		if !w.em.StepInto(&rec) {
			return i
		}
		if line := (rec.PC * pipeline.InstBytes) >> w.iShift; line != w.lastILine {
			w.mem.TouchInst(rec.PC * pipeline.InstBytes)
			w.lastILine = line
		}
		switch {
		case rec.Op.IsControl():
			w.pred.Warm(prog.At(rec.PC), rec.PC, rec.Taken, rec.NextPC)
		case rec.Op == isa.OpLoad:
			w.mem.TouchData(rec.EA, false)
		}
		// Stores deliberately do NOT touch the hierarchy: the detailed
		// pipeline retires them through the store queue straight into the
		// memory image without a cache access, so warming store lines
		// would hand the windows a hierarchy warmer than the machine they
		// stand in for (store-heavy profiles measured ~20% fast: loads
		// hit in L2/LLC where the continuous run paid DRAM latency).
	}
	return n
}

// RelErr carries 95%-confidence relative error bars for the extrapolated
// statistics, computed from the across-window variance
// (1.96·sd/(√n·mean); 0 when fewer than two windows contribute).
type RelErr struct {
	IPC            float64
	MispredictRate float64
	BranchAcc      float64
	L1DHitRate     float64
}

// Estimate is the result of one sampled run: an extrapolated whole-run
// Result plus the sampling provenance needed to judge it.
type Estimate struct {
	Result      pipeline.Result
	Plan        Plan
	TotalInstr  uint64    // instructions the functional emulator executed
	Windows     int       // measured detail windows
	DetailInstr uint64    // instructions simulated in detail (incl. warm-up)
	FFInstr     uint64    // instructions only fast-forwarded
	WindowIPC   []float64 // per-window IPC samples
	RelErr      RelErr
}

// Info renders the estimate's provenance as a manifest sample block.
func (e *Estimate) Info() *obs.SampleInfo {
	return &obs.SampleInfo{
		Mode:             e.Plan.String(),
		Period:           e.Plan.Period,
		Window:           e.Plan.Window,
		Warmup:           e.Plan.Warmup,
		Windows:          e.Windows,
		DetailInstr:      e.DetailInstr,
		FFInstr:          e.FFInstr,
		IPCRelErr:        e.RelErr.IPC,
		MispredictRelErr: e.RelErr.MispredictRate,
		BranchAccRelErr:  e.RelErr.BranchAcc,
		L1DHitRelErr:     e.RelErr.L1DHitRate,
	}
}

// Run executes prog under cfg in sampled mode: detailed simulation inside
// the plan's windows, functional fast-forward with warm-state maintenance
// everywhere else, stopping after maxInstr instructions or program halt.
// The returned estimate extrapolates every Result statistic from the window
// measurements.
func Run(cfg config.Config, prog *program.Program, kind pipeline.SchedulerKind, maxInstr uint64, plan Plan) Estimate {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	w := newWarmer(prog, cfg)

	var (
		deltas  []pipeline.WindowStats
		exact   pipeline.WindowStats // region 0, measured in full detail
		detail  uint64
		ff      uint64
		pos     uint64
		windows int
		first   = true
	)
	for pos < maxInstr && !w.em.Done {
		remaining := maxInstr - pos
		warm, win := plan.Warmup, plan.Window
		if first {
			// The run's cold-start ramp (empty caches, untrained
			// predictor) is a one-off transient, not a recurring phase:
			// a sampled window that lands in it would carry a full
			// period's weight while the real ramp lasts a fraction of
			// one, dragging the whole estimate toward the cold IPC.
			// Region 0 is therefore simulated in detail end to end and
			// its statistics are counted exactly; sampling starts at
			// the second period, by which point functional warming has
			// a full period of history behind it.
			warm, win = 0, min64(plan.Period, remaining)
		} else if warm+win > remaining {
			if remaining > warm {
				win = remaining - warm
			} else {
				warm, win = 0, remaining
			}
		}

		cpu := pipeline.NewWithScheduler(cfg, prog, kind)
		w.prime(cpu)
		if warm > 0 {
			cpu.RunFor(warm, ^uint64(0))
		}
		s0 := cpu.WindowStats()
		cpu.RunFor(warm+win, ^uint64(0))
		s1 := cpu.WindowStats()
		if s1.Committed > s0.Committed {
			if first {
				exact = diff(s0, s1)
			} else {
				deltas = append(deltas, diff(s0, s1))
				windows++
			}
		}
		first = false
		// The pipeline may overshoot the commit target by up to the retire
		// width; advance the emulator by what actually committed so the
		// warm state stays in lockstep with the detailed run.
		detailDone := w.advance(s1.Committed)
		detail += detailDone

		ffTarget := uint64(0)
		if span := min64(plan.Period, remaining); span > detailDone {
			ffTarget = span - detailDone
		}
		ffDone := w.advance(ffTarget)
		ff += ffDone
		pos += detailDone + ffDone
		if detailDone < s1.Committed || ffDone < ffTarget {
			break // program halted mid-region
		}
	}

	est := Estimate{Plan: plan, TotalInstr: pos, Windows: windows, DetailInstr: detail, FFInstr: ff}
	if pos == 0 {
		return est
	}

	// Per-window samples for the error bars.
	cpi := make([]float64, 0, windows)
	mispredRate := make([]float64, 0, windows)
	var branchAcc, l1dRate []float64
	var sum pipeline.WindowStats
	for _, d := range deltas {
		cpi = append(cpi, float64(d.Cycles)/float64(d.Committed))
		mispredRate = append(mispredRate, float64(d.Mispredicts)/float64(d.Committed))
		if d.CondLookups > 0 {
			branchAcc = append(branchAcc, 1-float64(d.CondWrong)/float64(d.CondLookups))
		}
		if d.L1DHits+d.L1DMisses > 0 {
			l1dRate = append(l1dRate, float64(d.L1DHits)/float64(d.L1DHits+d.L1DMisses))
		}
		sum = add(sum, d)
	}
	est.WindowIPC = make([]float64, len(cpi))
	for i, c := range cpi {
		est.WindowIPC[i] = 1 / c
	}
	est.RelErr = RelErr{
		IPC:            relErr(cpi),
		MispredictRate: relErr(mispredRate),
		BranchAcc:      relErr(branchAcc),
		L1DHitRate:     relErr(l1dRate),
	}

	// Whole-run statistic = exact region-0 count + window rate extrapolated
	// over the tail the windows sampled. The exact prefix never passes
	// through the extrapolation, so the cold-start transient it contains is
	// weighted by its true share of the run, not by a full period.
	total := float64(pos)
	tail := total - float64(exact.Committed)
	if tail < 0 {
		tail = 0
	}
	var scale float64 // tail instructions per sampled-window instruction
	if windows > 0 && sum.Committed > 0 {
		scale = tail / float64(sum.Committed)
	}
	comb := func(sampled, exactCnt uint64) float64 {
		return float64(exactCnt) + float64(sampled)*scale
	}
	perInstr := func(sampled, exactCnt uint64) uint64 {
		return uint64(math.Round(comb(sampled, exactCnt)))
	}
	cycles := exact.Cycles
	if windows > 0 {
		cycles += uint64(math.Round(mean(cpi) * tail))
	}
	if cycles == 0 {
		cycles = 1
	}
	res := pipeline.Result{
		Cycles:       cycles,
		Committed:    pos,
		IPC:          total / float64(cycles),
		Mispredicts:  perInstr(sum.Mispredicts, exact.Mispredicts),
		Flushes:      perInstr(sum.Flushes, exact.Flushes),
		Exceptions:   perInstr(sum.Exceptions, exact.Exceptions),
		Interrupts:   perInstr(sum.Interrupts, exact.Interrupts),
		RenameStalls: perInstr(sum.RenameStalls, exact.RenameStalls),
		Halted:       w.em.Done,
	}
	res.BranchAccuracy, res.IndirectAccuracy, res.L1DHitRate = 1, 1, 0
	if d := comb(sum.CondLookups, exact.CondLookups); d > 0 {
		res.BranchAccuracy = 1 - comb(sum.CondWrong, exact.CondWrong)/d
	}
	if d := comb(sum.IndLookups, exact.IndLookups); d > 0 {
		res.IndirectAccuracy = 1 - comb(sum.IndWrong, exact.IndWrong)/d
	}
	if d := comb(sum.L1DHits+sum.L1DMisses, exact.L1DHits+exact.L1DMisses); d > 0 {
		res.L1DHitRate = comb(sum.L1DHits, exact.L1DHits) / d
	}
	if d := comb(sum.Cycles, exact.Cycles); d > 0 {
		res.AvgRegsLive = comb(sum.OccupancySum, exact.OccupancySum) / d
	}
	est.Result = res
	return est
}

// diff returns b-a field-wise.
func diff(a, b pipeline.WindowStats) pipeline.WindowStats {
	return pipeline.WindowStats{
		Cycles:       b.Cycles - a.Cycles,
		Committed:    b.Committed - a.Committed,
		Mispredicts:  b.Mispredicts - a.Mispredicts,
		Flushes:      b.Flushes - a.Flushes,
		Exceptions:   b.Exceptions - a.Exceptions,
		Interrupts:   b.Interrupts - a.Interrupts,
		RenameStalls: b.RenameStalls - a.RenameStalls,
		OccupancySum: b.OccupancySum - a.OccupancySum,
		CondLookups:  b.CondLookups - a.CondLookups,
		CondWrong:    b.CondWrong - a.CondWrong,
		IndLookups:   b.IndLookups - a.IndLookups,
		IndWrong:     b.IndWrong - a.IndWrong,
		L1DHits:      b.L1DHits - a.L1DHits,
		L1DMisses:    b.L1DMisses - a.L1DMisses,
	}
}

// add returns a+b field-wise.
func add(a, b pipeline.WindowStats) pipeline.WindowStats {
	return pipeline.WindowStats{
		Cycles:       a.Cycles + b.Cycles,
		Committed:    a.Committed + b.Committed,
		Mispredicts:  a.Mispredicts + b.Mispredicts,
		Flushes:      a.Flushes + b.Flushes,
		Exceptions:   a.Exceptions + b.Exceptions,
		Interrupts:   a.Interrupts + b.Interrupts,
		RenameStalls: a.RenameStalls + b.RenameStalls,
		OccupancySum: a.OccupancySum + b.OccupancySum,
		CondLookups:  a.CondLookups + b.CondLookups,
		CondWrong:    a.CondWrong + b.CondWrong,
		IndLookups:   a.IndLookups + b.IndLookups,
		IndWrong:     a.IndWrong + b.IndWrong,
		L1DHits:      a.L1DHits + b.L1DHits,
		L1DMisses:    a.L1DMisses + b.L1DMisses,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// relErr returns the 95% CI half-width relative to the mean over window
// samples: 1.96·sd/(√n·mean).
func relErr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := mean(xs)
	if m == 0 {
		return 0
	}
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	sd := math.Sqrt(v / float64(n-1))
	return 1.96 * sd / (math.Sqrt(float64(n)) * m)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
