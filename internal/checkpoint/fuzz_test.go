package checkpoint

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"atr/internal/program"
	"atr/internal/workload"
)

// fuzzProgs caches one generated program per profile: programs are immutable
// code images, and regenerating them per fuzz iteration would drown the
// round-trip logic under test.
var fuzzProgs struct {
	once  sync.Once
	names []string
	progs []*program.Program
}

func fuzzCorpus() ([]string, []*program.Program) {
	fuzzProgs.once.Do(func() {
		for _, p := range workload.Profiles() {
			fuzzProgs.names = append(fuzzProgs.names, p.Name)
			fuzzProgs.progs = append(fuzzProgs.progs, p.Generate())
		}
	})
	return fuzzProgs.names, fuzzProgs.progs
}

// FuzzCheckpointRoundTrip fuzzes the full checkpoint pipeline over the
// benchmark-profile corpus: warm an emulator to an arbitrary depth, Capture,
// and require (a) Encode/Decode is lossless and canonical (re-encoding the
// decoded checkpoint is byte-identical), and (b) a warmer rebuilt from the
// decoded checkpoint continues bit-exactly — the property the whole sampled
// simulator rests on.
func FuzzCheckpointRoundTrip(f *testing.F) {
	names, _ := fuzzCorpus()
	for i := range names {
		f.Add(uint8(i), uint32(1000*(i+1)))
	}
	f.Add(uint8(0), uint32(0))       // checkpoint before any instruction
	f.Add(uint8(3), uint32(1))       // single-step prefix
	f.Add(uint8(7), uint32(1<<31-1)) // step count clamped below

	cfg := testConfig()
	f.Fuzz(func(t *testing.T, profIdx uint8, steps uint32) {
		names, progs := fuzzCorpus()
		prog := progs[int(profIdx)%len(progs)]
		name := names[int(profIdx)%len(names)]

		w := newWarmer(prog, cfg)
		w.advance(uint64(steps) % 30000)
		cp := Capture(w.em, w.pred, w.mem)

		data, err := cp.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if !reflect.DeepEqual(cp, got) {
			t.Fatalf("%s: decode(encode(cp)) != cp", name)
		}
		data2, err := got.Encode()
		if err != nil {
			t.Fatalf("%s: re-Encode: %v", name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("%s: encoding not canonical across a round trip", name)
		}

		// Continuation bit-exactness: a warmer rebuilt from the decoded
		// checkpoint must track the original for the rest of the stream.
		r := newWarmer(prog, cfg)
		r.em = program.RestoreEmulator(prog, &got.Arch)
		r.pred.Restore(got.Bpred)
		r.mem.Restore(got.Cache)
		r.lastILine = w.lastILine
		w.advance(2000)
		r.advance(2000)
		if w.em.PC != r.em.PC || w.em.Regs != r.em.Regs || w.em.Done != r.em.Done {
			t.Fatalf("%s: restored emulator diverged: PC %d != %d", name, r.em.PC, w.em.PC)
		}
		if !reflect.DeepEqual(w.pred.State(), r.pred.State()) {
			t.Fatalf("%s: restored predictor diverged after continuation", name)
		}
		if !reflect.DeepEqual(w.mem.State(), r.mem.State()) {
			t.Fatalf("%s: restored hierarchy diverged after continuation", name)
		}
	})
}
