package checkpoint

import (
	"os"
	"testing"
	"time"

	"atr/internal/pipeline"
	"atr/internal/workload"
)

func TestLongSpeedup(t *testing.T) {
	if os.Getenv("ATR_SAMPLE_DIAG") == "" {
		t.Skip("diag")
	}
	cfg := testConfig()
	const instr = 10000000
	for _, name := range []string{"gcc", "exchange2"} {
		p, _ := workload.ByName(name)
		prog := p.Generate()
		t0 := time.Now()
		exact := pipeline.NewWithScheduler(cfg, prog, pipeline.SchedulerEvent).Run(instr)
		ew := time.Since(t0)
		for _, plan := range []Plan{
			{Period: 100000, Window: 2000, Warmup: 500},
			{Period: 150000, Window: 2000, Warmup: 500},
			{Period: 200000, Window: 2000, Warmup: 500},
		} {
			t1 := time.Now()
			est := Run(cfg, prog, pipeline.SchedulerEvent, instr, plan)
			w := time.Since(t1)
			err := (est.Result.IPC - exact.IPC) / exact.IPC
			t.Logf("%-10s %-26s err %+5.2f%% ci ±%5.2f%% windows %3d speedup %5.1fx (%.2fs vs %.2fs)",
				name, plan, 100*err, 100*est.RelErr.IPC, est.Windows, ew.Seconds()/w.Seconds(), w.Seconds(), ew.Seconds())
		}
	}
}

func BenchmarkSampledRun(b *testing.B) {
	cfg := testConfig()
	p, _ := workload.ByName("gcc")
	prog := p.Generate()
	plan := Plan{Period: 100000, Window: 2000, Warmup: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg, prog, pipeline.SchedulerEvent, 10000000, plan)
	}
}
