package cache

import (
	"testing"
	"testing/quick"

	"atr/internal/config"
)

func smallCacheConfig() config.CacheConfig {
	return config.CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 3}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := New(smallCacheConfig())
	if c.Lookup(0x100, false) {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x100, false)
	if !c.Lookup(0x100, false) {
		t.Error("filled line should hit")
	}
	if !c.Lookup(0x13F, false) {
		t.Error("same line (different offset) should hit")
	}
	if c.Lookup(0x140, false) {
		t.Error("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(smallCacheConfig()) // 8 sets, 2 ways
	// Three lines mapping to the same set: line size 64, sets 8 -> set
	// stride 512.
	a, b, d := uint64(0x0), uint64(0x200), uint64(0x400)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a, false) // refresh a: b is now LRU
	ev, _ := c.Fill(d, false)
	if ev != b {
		t.Errorf("evicted %#x, want %#x (LRU)", ev, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("wrong residency after eviction")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := New(smallCacheConfig())
	c.Fill(0x0, true) // dirty fill
	c.Fill(0x200, false)
	ev, dirty := c.Fill(0x400, false)
	if ev != 0x0 || !dirty {
		t.Errorf("evicted %#x dirty=%v, want 0x0 dirty", ev, dirty)
	}
}

func TestCacheWriteMarksDirtyOnHit(t *testing.T) {
	c := New(smallCacheConfig())
	c.Fill(0x0, false)
	c.Lookup(0x0, true) // write hit marks dirty
	c.Fill(0x200, false)
	_, dirty := c.Fill(0x400, false)
	if !dirty {
		t.Error("write-hit line should evict dirty")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := config.GoldenCove()
	h := NewHierarchy(cfg)
	// Cold access: full miss path.
	done := h.AccessData(0x1000, false, 100)
	wantCold := uint64(100 + cfg.L1D.Latency + cfg.L2.Latency + cfg.LLC.Latency + cfg.MemLatency)
	if done != wantCold {
		t.Errorf("cold access done = %d, want %d", done, wantCold)
	}
	// Hot access: L1 hit.
	done = h.AccessData(0x1000, false, 1000)
	if done != 1000+uint64(cfg.L1D.Latency) {
		t.Errorf("hot access done = %d, want %d", done, 1000+uint64(cfg.L1D.Latency))
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := config.GoldenCove()
	cfg.StreamPrefetch = false
	h := NewHierarchy(cfg)
	h.AccessData(0x1000, false, 0) // install everywhere
	// Evict from tiny L1 by filling its set; L1D is 48KiB/12-way ->
	// 64 sets, set stride = 64 sets * 64B = 4096.
	for i := 1; i <= 12; i++ {
		h.AccessData(0x1000+uint64(i)*4096, false, uint64(i*1000))
	}
	done := h.AccessData(0x1000, false, 100000)
	want := uint64(100000 + cfg.L1D.Latency + cfg.L2.Latency)
	if done != want {
		t.Errorf("L2 hit done = %d, want %d", done, want)
	}
}

func TestHierarchyInstAccess(t *testing.T) {
	cfg := config.GoldenCove()
	h := NewHierarchy(cfg)
	d1 := h.AccessInst(0x40, 0)
	if d1 <= uint64(cfg.L1I.Latency) {
		t.Errorf("cold inst fetch too fast: %d", d1)
	}
	d2 := h.AccessInst(0x40, 500)
	if d2 != 500+uint64(cfg.L1I.Latency) {
		t.Errorf("warm inst fetch = %d", d2)
	}
	// Next-line prefetch: the following line should now be warm.
	d3 := h.AccessInst(0x80, 600)
	if d3 != 600+uint64(cfg.L1I.Latency) {
		t.Errorf("next-line prefetched fetch = %d, want L1 hit", d3)
	}
}

func TestMSHRMerging(t *testing.T) {
	cfg := config.GoldenCove()
	cfg.StreamPrefetch = false
	h := NewHierarchy(cfg)
	d1 := h.AccessData(0x5000, false, 100)
	// Second access to the same line while the miss is outstanding
	// merges: it completes when the first fill arrives (plus L1 latency),
	// not after a second full memory trip.
	d2 := h.AccessData(0x5040-0x40, false, 110) // same line
	if d2 > d1+uint64(cfg.L1D.Latency) {
		t.Errorf("merged access done = %d, first = %d", d2, d1)
	}
}

func TestMSHRBackpressure(t *testing.T) {
	cfg := config.GoldenCove()
	cfg.StreamPrefetch = false
	cfg.MSHRs = 1
	h := NewHierarchy(cfg)
	d1 := h.AccessData(0x10000, false, 0)
	d2 := h.AccessData(0x20000, false, 0) // different line, MSHR occupied
	if d2 <= d1 {
		t.Errorf("second miss with 1 MSHR should serialize: d1=%d d2=%d", d1, d2)
	}
}

func TestStreamPrefetcherAscending(t *testing.T) {
	p := NewStreamPrefetcher(4, 2)
	if got := p.Train(0x1000, 64); got != nil {
		t.Errorf("first touch should not prefetch: %v", got)
	}
	if got := p.Train(0x1040, 64); len(got) != 2 || got[0] != 0x1080 || got[1] != 0x10C0 {
		t.Errorf("ascending stream prefetch = %#v", got)
	}
}

func TestStreamPrefetcherDescending(t *testing.T) {
	p := NewStreamPrefetcher(4, 1)
	p.Train(0x2100, 64)
	p.Train(0x20C0, 64)
	got := p.Train(0x2080, 64)
	if len(got) != 1 || got[0] != 0x2040 {
		t.Errorf("descending prefetch = %#v", got)
	}
}

func TestStreamPrefetcherSeparatePages(t *testing.T) {
	p := NewStreamPrefetcher(4, 1)
	p.Train(0x1000, 64)
	p.Train(0x99000, 64) // different page: separate stream
	if got := p.Train(0x1040, 64); got == nil {
		t.Error("stream in first page should survive an unrelated page touch")
	}
}

func TestHierarchyPrefetchImprovesStride(t *testing.T) {
	cfg := config.GoldenCove()
	h1 := NewHierarchy(cfg)
	cfg2 := cfg
	cfg2.StreamPrefetch = false
	h2 := NewHierarchy(cfg2)
	var with, without uint64
	now := uint64(0)
	for i := uint64(0); i < 64; i++ {
		addr := 0x100000 + i*64
		with += h1.AccessData(addr, false, now) - now
		without += h2.AccessData(addr, false, now) - now
		now += 500
	}
	if with >= without {
		t.Errorf("prefetching did not help stride: with=%d without=%d", with, without)
	}
}

// Property: Fill then Lookup always hits; an address never filled never hits
// in a fresh cache.
func TestCacheFillLookupProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(smallCacheConfig())
		for _, a := range addrs {
			c.Fill(uint64(a), false)
			if !c.Lookup(uint64(a), false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cache never holds more lines than its capacity.
func TestCacheCapacityProperty(t *testing.T) {
	cfg := smallCacheConfig() // 16 lines
	f := func(addrs []uint16) bool {
		c := New(cfg)
		filled := make(map[uint64]bool)
		for _, a := range addrs {
			c.Fill(uint64(a), false)
			filled[c.LineAddr(uint64(a))] = true
		}
		resident := 0
		for l := range filled {
			if c.Contains(l) {
				resident++
			}
		}
		return resident <= cfg.SizeBytes/cfg.LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// stampCache is the original timestamp-based LRU formulation, retained as a
// reference model: every line carries a last-use stamp, hits scan all ways,
// and the victim is the lowest-index invalid way or else the minimum-stamp
// way. The production Cache replaces this with a per-set recency order and
// an MRU fast path; TestCacheMatchesStampReference proves the two produce
// identical hit/miss streams, evictions, and writeback flags.
type stampCache struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64
	lru       []uint64
	dirty     []bool
	stamp     uint64

	hits   uint64
	misses uint64
}

func newStampCache(cfg config.CacheConfig) *stampCache {
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := cfg.Sets()
	return &stampCache{
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		tags:      make([]uint64, sets*cfg.Ways),
		lru:       make([]uint64, sets*cfg.Ways),
		dirty:     make([]bool, sets*cfg.Ways),
	}
}

func (c *stampCache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *stampCache) setOf(line uint64) int {
	return int((line >> c.lineShift) % uint64(c.sets))
}

func (c *stampCache) lookup(addr uint64, write bool) bool {
	line := c.lineAddr(addr)
	base := c.setOf(line) * c.ways
	c.stamp++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			c.lru[base+w] = c.stamp
			if write {
				c.dirty[base+w] = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

func (c *stampCache) fill(addr uint64, write bool) (evicted uint64, wasDirty bool) {
	line := c.lineAddr(addr)
	base := c.setOf(line) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	if c.tags[victim] != 0 {
		evicted = c.tags[victim] - 1
		wasDirty = c.dirty[victim]
	}
	c.stamp++
	c.tags[victim] = line + 1
	c.lru[victim] = c.stamp
	c.dirty[victim] = write
	return evicted, wasDirty
}

func (c *stampCache) contains(addr uint64) bool {
	line := c.lineAddr(addr)
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// Property: the recency-order cache is observably identical to the
// timestamp reference across a random mixed stream of lookups, miss-driven
// fills, and read-only probes — on every op, not just at the end.
func TestCacheMatchesStampReference(t *testing.T) {
	for _, cfg := range []config.CacheConfig{
		smallCacheConfig(), // 8 sets, 2 ways
		{SizeBytes: 2048, Ways: 4, LineBytes: 64, Latency: 3},
		{SizeBytes: 4096, Ways: 8, LineBytes: 32, Latency: 3},
		{SizeBytes: 512, Ways: 1, LineBytes: 64, Latency: 1}, // direct-mapped
	} {
		f := func(ops []uint16) bool {
			c := New(cfg)
			ref := newStampCache(cfg)
			for _, op := range ops {
				// Low bits pick the address (a handful of sets' worth so
				// conflicts are common), top bits pick the operation.
				addr := uint64(op & 0x3FF)
				write := op&0x400 != 0
				switch {
				case op&0x8000 != 0: // read-only probe
					if c.Contains(addr) != ref.contains(addr) {
						return false
					}
				default: // demand access: lookup, fill on miss
					hit := c.Lookup(addr, write)
					if hit != ref.lookup(addr, write) {
						return false
					}
					if !hit {
						ev, d := c.Fill(addr, write)
						rev, rd := ref.fill(addr, write)
						if ev != rev || d != rd {
							return false
						}
					}
				}
			}
			return c.Hits == ref.hits && c.Misses == ref.misses
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("ways=%d: %v", cfg.Ways, err)
		}
	}
}

func TestHitRate(t *testing.T) {
	c := New(smallCacheConfig())
	c.Lookup(0, false) // miss
	c.Fill(0, false)
	c.Lookup(0, false) // hit
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}
