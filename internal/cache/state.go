package cache

import "fmt"

// This file adds the warm-state half of checkpoint/restore for the memory
// hierarchy: serializable deep copies of every cache level's tag/dirty/
// recency state plus the stream prefetcher, and functional touch entry
// points (TouchData, TouchInst) that apply the content side-effects of an
// access — lookup, miss-path fills down the hierarchy, prefetch training —
// without any timing. MSHR state is deliberately NOT snapshotted: its
// contents are absolute completion cycles, which are meaningless to a
// restored pipeline that restarts at cycle 0, so Restore hands the new owner
// a fresh (empty) MSHR pool.

// ChunkState mirrors one lazily-allocated chunk. Nil Tags marks an untouched
// chunk, preserved as such so a restored cache has an identical
// materialization pattern (and identical future behaviour) to the original.
type ChunkState struct {
	Tags  []uint64 `json:"tags,omitempty"`
	Dirty []bool   `json:"dirty,omitempty"`
	Order []uint8  `json:"order,omitempty"`
}

// CacheState is a deep copy of one cache level's mutable state.
type CacheState struct {
	Chunks []ChunkState `json:"chunks"`
	Hits   uint64       `json:"hits"`
	Misses uint64       `json:"misses"`
}

// State deep-copies the cache's mutable state.
func (c *Cache) State() CacheState {
	s := CacheState{Chunks: make([]ChunkState, len(c.chunks)), Hits: c.Hits, Misses: c.Misses}
	for i, ch := range c.chunks {
		if ch.tags == nil {
			continue
		}
		s.Chunks[i] = ChunkState{
			Tags:  append([]uint64(nil), ch.tags...),
			Dirty: append([]bool(nil), ch.dirty...),
			Order: append([]uint8(nil), ch.order...),
		}
	}
	return s
}

// Restore overwrites the cache's mutable state from a snapshot taken on a
// cache with the same geometry. Shape mismatches panic.
func (c *Cache) Restore(s CacheState) {
	if len(s.Chunks) != len(c.chunks) {
		panic(fmt.Sprintf("cache: Restore chunk count mismatch: %d != %d", len(s.Chunks), len(c.chunks)))
	}
	for i, ch := range s.Chunks {
		if ch.Tags == nil {
			c.chunks[i] = cacheChunk{}
			continue
		}
		if len(ch.Tags) != chunkSets*c.ways {
			panic("cache: Restore chunk geometry mismatch")
		}
		c.chunks[i] = cacheChunk{
			tags:  append([]uint64(nil), ch.Tags...),
			dirty: append([]bool(nil), ch.Dirty...),
			order: append([]uint8(nil), ch.Order...),
		}
	}
	c.Hits, c.Misses = s.Hits, s.Misses
}

// StreamEntry mirrors one prefetcher stream for serialization.
type StreamEntry struct {
	Page     uint64 `json:"page"`
	LastLine uint64 `json:"last_line"`
	Dir      int64  `json:"dir"`
	Count    int    `json:"count"`
	Valid    bool   `json:"valid"`
}

// HierState is the complete serializable warm state of a Hierarchy (minus
// MSHRs, which carry only absolute-cycle timing — see the file comment).
type HierState struct {
	L1I CacheState `json:"l1i"`
	L1D CacheState `json:"l1d"`
	L2  CacheState `json:"l2"`
	LLC CacheState `json:"llc"`

	Pref []StreamEntry `json:"pref,omitempty"` // nil when prefetch disabled

	DemandMisses  uint64 `json:"demand_misses"`
	PrefetchFills uint64 `json:"prefetch_fills"`
}

// State deep-copies the hierarchy's warm state.
func (h *Hierarchy) State() *HierState {
	s := &HierState{
		L1I:           h.L1I.State(),
		L1D:           h.L1D.State(),
		L2:            h.L2.State(),
		LLC:           h.LLC.State(),
		DemandMisses:  h.DemandMisses,
		PrefetchFills: h.PrefetchFills,
	}
	if h.pref != nil {
		s.Pref = make([]StreamEntry, len(h.pref.entries))
		for i, e := range h.pref.entries {
			s.Pref[i] = StreamEntry{Page: e.page, LastLine: e.lastLine, Dir: e.dir, Count: e.count, Valid: e.valid}
		}
	}
	return s
}

// Restore overwrites the hierarchy's warm state from a snapshot taken on a
// hierarchy built from the same config. MSHRs are reset to empty.
func (h *Hierarchy) Restore(s *HierState) {
	h.L1I.Restore(s.L1I)
	h.L1D.Restore(s.L1D)
	h.L2.Restore(s.L2)
	h.LLC.Restore(s.LLC)
	if h.pref != nil {
		if len(s.Pref) != len(h.pref.entries) {
			panic("cache: Restore prefetcher stream count mismatch")
		}
		for i, e := range s.Pref {
			h.pref.entries[i] = streamEntry{page: e.Page, lastLine: e.LastLine, dir: e.Dir, count: e.Count, valid: e.Valid}
		}
	} else if len(s.Pref) != 0 {
		panic("cache: Restore snapshot has prefetcher state but prefetch is disabled")
	}
	h.DemandMisses, h.PrefetchFills = s.DemandMisses, s.PrefetchFills
	h.mshrs = newMSHRSet(h.cfg.MSHRs)
}

// copyFrom overwrites c's mutable state with src's, which must share the
// same geometry. Already-materialized destination chunks are reused.
func (c *Cache) copyFrom(src *Cache) {
	for i := range src.chunks {
		sch := &src.chunks[i]
		dch := &c.chunks[i]
		if sch.tags == nil {
			*dch = cacheChunk{}
			continue
		}
		if dch.tags == nil {
			dch.tags = make([]uint64, len(sch.tags))
			dch.dirty = make([]bool, len(sch.dirty))
			dch.order = make([]uint8, len(sch.order))
		}
		copy(dch.tags, sch.tags)
		copy(dch.dirty, sch.dirty)
		copy(dch.order, sch.order)
	}
	c.Hits, c.Misses = src.Hits, src.Misses
}

// CopyFrom overwrites h's warm state with src's. Both hierarchies must be
// built from the same config — the in-process fast path equivalent to
// h.Restore(src.State()) without materializing the serializable snapshot.
// MSHRs are reset to empty, exactly as Restore does.
func (h *Hierarchy) CopyFrom(src *Hierarchy) {
	h.L1I.copyFrom(src.L1I)
	h.L1D.copyFrom(src.L1D)
	h.L2.copyFrom(src.L2)
	h.LLC.copyFrom(src.LLC)
	if h.pref != nil {
		copy(h.pref.entries, src.pref.entries)
	}
	h.DemandMisses, h.PrefetchFills = src.DemandMisses, src.PrefetchFills
	h.mshrs = newMSHRSet(h.cfg.MSHRs)
}

// TouchData applies the content side-effects of a data access during
// functional fast-forward: lookup, and on a miss the fill walk down the
// hierarchy plus prefetcher training — everything AccessData does except
// MSHR booking and latency accounting.
func (h *Hierarchy) TouchData(addr uint64, write bool) {
	if h.L1D.Lookup(addr, write) {
		return
	}
	h.DemandMisses++
	h.missLatency(addr, write, 0)
	h.L1D.Fill(addr, write)
	if h.pref != nil {
		h.runPrefetch(addr, 0)
	}
}

// TouchInst applies the content side-effects of an instruction fetch during
// functional fast-forward, including the next-line I-prefetch.
func (h *Hierarchy) TouchInst(addr uint64) {
	if h.L1I.Lookup(addr, false) {
		return
	}
	h.missLatency(addr, false, 0)
	h.L1I.Fill(addr, false)
	next := h.L1I.LineAddr(addr) + uint64(1)<<h.L1I.lineShift
	if !h.L1I.Contains(next) {
		h.L1I.Fill(next, false)
		if !h.L2.Contains(next) {
			h.L2.Fill(next, false)
		}
	}
}

// InstLineAddr returns the I-cache line address containing addr — exported
// for the fast-forward driver's same-line touch filter.
func (h *Hierarchy) InstLineAddr(addr uint64) uint64 { return h.L1I.LineAddr(addr) }
