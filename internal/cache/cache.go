// Package cache models the memory hierarchy of Table 1: set-associative
// write-back caches with LRU replacement (L1I, L1D, unified L2, shared LLC),
// a fixed-latency DRAM backend, MSHRs that merge outstanding misses per
// line, and a stream prefetcher.
package cache

import "atr/internal/config"

// Cache is one set-associative cache level with LRU replacement. Recency is
// tracked as a compact per-set way order (order[set*ways] is the MRU way,
// the tail is the LRU victim) instead of per-line timestamps: the common hit
// costs a single tag compare against the MRU way, and victim selection reads
// the tail instead of scanning for a minimum stamp. The hit/miss stream and
// eviction choices are identical to the timestamp formulation
// (TestCacheMatchesStampReference proves it against a retained reference).
//
// Backing storage is allocated lazily in chunks of 64 sets on the first
// fill that touches a chunk. Short simulations touch a small fraction of a
// large LLC's sets, and sweeps construct one hierarchy per grid unit, so
// eager allocation dominated sweep heap traffic (~45% of allocated bytes)
// for arrays that were mostly never read. An untouched chunk behaves
// exactly like all-invalid ways: Lookup and Contains miss without
// materializing it.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	chunks    []cacheChunk // lazily materialized, chunkSets sets each

	Hits   uint64
	Misses uint64
}

// chunkSetsShift sizes a lazily-allocated chunk: 64 sets balances
// allocation granularity (a 16-way chunk is ~10 KB) against how much of a
// cold LLC a short run actually touches.
const (
	chunkSetsShift = 6
	chunkSets      = 1 << chunkSetsShift
)

// cacheChunk holds chunkSets sets' worth of tag/dirty/recency state; nil
// slices until the first Fill into the chunk.
type cacheChunk struct {
	tags  []uint64 // 0 = invalid (tags stored with +1 bias)
	dirty []bool
	order []uint8 // per-set permutation of ways, MRU first
}

// materialize allocates the chunk's arrays with every way invalid and the
// identity recency order — byte-for-byte the state eager allocation gave
// every set at construction.
func (ch *cacheChunk) materialize(ways int) {
	n := chunkSets * ways
	ch.tags = make([]uint64, n)
	ch.dirty = make([]bool, n)
	ch.order = make([]uint8, n)
	for s := 0; s < chunkSets; s++ {
		for w := 0; w < ways; w++ {
			ch.order[s*ways+w] = uint8(w)
		}
	}
}

// New builds a cache from a level configuration.
func New(cfg config.CacheConfig) *Cache {
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := cfg.Sets()
	return &Cache{
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		chunks:    make([]cacheChunk, (sets+chunkSets-1)/chunkSets),
	}
}

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// LineShift exposes the line-offset bit count so hot external loops can
// compare line numbers without a method call per access.
func (c *Cache) LineShift() uint { return c.lineShift }

func (c *Cache) setOf(line uint64) int {
	return int((line >> c.lineShift) % uint64(c.sets))
}

// Lookup probes for addr's line. A hit refreshes the recency order and sets
// the dirty bit when write is true.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	line := c.LineAddr(addr)
	set := c.setOf(line)
	ch := &c.chunks[set>>chunkSetsShift]
	if ch.tags == nil {
		// Untouched chunk: every way invalid, unconditional miss.
		c.Misses++
		return false
	}
	base := (set & (chunkSets - 1)) * c.ways
	ord := ch.order[base : base+c.ways]
	t := line + 1
	// MRU fast path: locality makes the most-recently-used way the common
	// case, so it costs one compare and no reordering.
	if w := int(ord[0]); ch.tags[base+w] == t {
		if write {
			ch.dirty[base+w] = true
		}
		c.Hits++
		return true
	}
	for k := 1; k < c.ways; k++ {
		w := ord[k]
		if ch.tags[base+int(w)] == t {
			// Move the hit way to the front of the recency order.
			copy(ord[1:k+1], ord[:k])
			ord[0] = w
			if write {
				ch.dirty[base+int(w)] = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Fill installs addr's line, evicting the LRU way. It returns the evicted
// line address and whether it was dirty (for writeback accounting); evicted
// is 0 when the victim way was invalid.
func (c *Cache) Fill(addr uint64, write bool) (evicted uint64, wasDirty bool) {
	line := c.LineAddr(addr)
	set := c.setOf(line)
	ch := &c.chunks[set>>chunkSetsShift]
	if ch.tags == nil {
		ch.materialize(c.ways)
	}
	base := (set & (chunkSets - 1)) * c.ways
	ord := ch.order[base : base+c.ways]
	// Victim: the lowest-index invalid way if one exists, else the LRU way
	// at the tail of the recency order — the same choice the stamp-scan
	// formulation made (invalid ways are exactly the never-filled ones).
	victim := -1
	for w := 0; w < c.ways; w++ {
		if ch.tags[base+w] == 0 {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = int(ord[c.ways-1])
		evicted = ch.tags[base+victim] - 1
		wasDirty = ch.dirty[base+victim]
	}
	ch.tags[base+victim] = line + 1
	ch.dirty[base+victim] = write
	// Move the filled way to the front of the recency order.
	k := 0
	for int(ord[k]) != victim {
		k++
	}
	copy(ord[1:k+1], ord[:k])
	ord[0] = uint8(victim)
	return evicted, wasDirty
}

// Contains probes without updating any state (for tests and prefetch
// filtering).
func (c *Cache) Contains(addr uint64) bool {
	line := c.LineAddr(addr)
	set := c.setOf(line)
	ch := &c.chunks[set>>chunkSetsShift]
	if ch.tags == nil {
		return false
	}
	base := (set & (chunkSets - 1)) * c.ways
	for w := 0; w < c.ways; w++ {
		if ch.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// HitRate returns hits/(hits+misses).
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}

// mshrSet models a finite pool of miss-status holding registers. Each
// in-flight line has a completion time; accesses to an in-flight line merge.
type mshrSet struct {
	inflight map[uint64]uint64 // line -> ready cycle
	slots    []uint64          // busy-until per MSHR
}

func newMSHRSet(n int) *mshrSet {
	return &mshrSet{inflight: make(map[uint64]uint64), slots: make([]uint64, n)}
}

// reserve finds when a new miss to line can start given MSHR availability,
// records it as in flight until ready, and returns the adjusted start time.
func (m *mshrSet) reserve(line, now, ready uint64) (start uint64, merged bool, mergedReady uint64) {
	if r, ok := m.inflight[line]; ok && r > now {
		return now, true, r
	}
	// Find the MSHR that frees earliest.
	best := 0
	for i, busy := range m.slots {
		if busy < m.slots[best] {
			best = i
		}
	}
	start = now
	if m.slots[best] > now {
		start = m.slots[best]
	}
	delta := start - now
	m.slots[best] = ready + delta
	m.inflight[line] = ready + delta
	// Opportunistically clean finished entries to bound the map.
	if len(m.inflight) > 4*len(m.slots) {
		for l, r := range m.inflight {
			if r <= now {
				delete(m.inflight, l)
			}
		}
	}
	return start, false, 0
}

// Hierarchy is the full memory system. All latencies are cycle counts; an
// access at cycle `now` completes at the returned cycle.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	LLC *Cache

	cfg   config.Config
	mshrs *mshrSet
	pref  *StreamPrefetcher

	DemandMisses  uint64
	PrefetchFills uint64
}

// NewHierarchy builds the Table 1 memory system.
func NewHierarchy(cfg config.Config) *Hierarchy {
	h := &Hierarchy{
		L1I:   New(cfg.L1I),
		L1D:   New(cfg.L1D),
		L2:    New(cfg.L2),
		LLC:   New(cfg.LLC),
		cfg:   cfg,
		mshrs: newMSHRSet(cfg.MSHRs),
	}
	if cfg.StreamPrefetch {
		h.pref = NewStreamPrefetcher(8, 4)
	}
	return h
}

// AccessData performs a data access and returns its completion cycle.
func (h *Hierarchy) AccessData(addr uint64, write bool, now uint64) uint64 {
	lat := uint64(h.cfg.L1D.Latency)
	if h.L1D.Lookup(addr, write) {
		return now + lat
	}
	h.DemandMisses++
	line := h.L1D.LineAddr(addr)
	ready := now + h.missLatency(addr, write, now)
	start, merged, mr := h.mshrs.reserve(line, now, ready)
	if merged {
		if p := h.pref; p != nil {
			h.runPrefetch(addr, now)
		}
		return mr + lat
	}
	ready += start - now
	h.L1D.Fill(addr, write)
	if h.pref != nil {
		h.runPrefetch(addr, now)
	}
	return ready + lat
}

// missLatency walks the lower levels, filling on the way back, and returns
// the added latency beyond the L1 access.
func (h *Hierarchy) missLatency(addr uint64, write bool, now uint64) uint64 {
	if h.L2.Lookup(addr, false) {
		return uint64(h.cfg.L2.Latency)
	}
	h.L2.Fill(addr, false)
	if h.LLC.Lookup(addr, false) {
		return uint64(h.cfg.L2.Latency + h.cfg.LLC.Latency)
	}
	h.LLC.Fill(addr, false)
	return uint64(h.cfg.L2.Latency + h.cfg.LLC.Latency + h.cfg.MemLatency)
}

// runPrefetch trains the stream prefetcher on a demand miss and issues its
// prefetches into L2 (and L1D), modeling timely fills.
func (h *Hierarchy) runPrefetch(addr uint64, now uint64) {
	lines := h.pref.Train(h.L1D.LineAddr(addr), 1<<h.L1D.lineShift)
	for _, l := range lines {
		if !h.L2.Contains(l) {
			h.L2.Fill(l, false)
			if !h.LLC.Contains(l) {
				h.LLC.Fill(l, false)
			}
			h.PrefetchFills++
		}
		if !h.L1D.Contains(l) {
			h.L1D.Fill(l, false)
		}
	}
}

// AccessInst performs an instruction fetch access for the line containing
// addr and returns its completion cycle. The FDIP-style fetch-directed
// prefetcher is approximated by next-line prefetch on I-cache misses.
func (h *Hierarchy) AccessInst(addr uint64, now uint64) uint64 {
	lat := uint64(h.cfg.L1I.Latency)
	if h.L1I.Lookup(addr, false) {
		return now + lat
	}
	extra := h.missLatency(addr, false, now)
	h.L1I.Fill(addr, false)
	// Next-line instruction prefetch (FDIP approximation).
	next := h.L1I.LineAddr(addr) + uint64(1)<<h.L1I.lineShift
	if !h.L1I.Contains(next) {
		h.L1I.Fill(next, false)
		if !h.L2.Contains(next) {
			h.L2.Fill(next, false)
		}
	}
	return now + lat + extra
}

// StreamPrefetcher detects ascending or descending line streams within 4 KiB
// regions and prefetches `degree` lines ahead after `threshold` hits in the
// same direction.
type StreamPrefetcher struct {
	entries   []streamEntry
	degree    int
	threshold int
	scratch   []uint64 // reused Train output; valid until the next Train call
}

type streamEntry struct {
	page     uint64
	lastLine uint64
	dir      int64
	count    int
	valid    bool
}

// NewStreamPrefetcher creates a prefetcher tracking `streams` concurrent
// streams with the given prefetch degree.
func NewStreamPrefetcher(streams, degree int) *StreamPrefetcher {
	return &StreamPrefetcher{
		entries:   make([]streamEntry, streams),
		degree:    degree,
		threshold: 2,
	}
}

// Train observes a demand-missed line address and returns the line addresses
// to prefetch (possibly none). The returned slice is scratch storage owned by
// the prefetcher and is overwritten by the next Train call.
func (p *StreamPrefetcher) Train(line uint64, lineBytes uint64) []uint64 {
	page := line >> 12
	var victim *streamEntry
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.page == page {
			dir := int64(1)
			if line < e.lastLine {
				dir = -1
			}
			if line == e.lastLine {
				return nil
			}
			if dir == e.dir {
				e.count++
			} else {
				e.dir = dir
				e.count = 1
			}
			e.lastLine = line
			if e.count < p.threshold {
				return nil
			}
			out := p.scratch[:0]
			cur := line
			for i := 0; i < p.degree; i++ {
				cur = uint64(int64(cur) + e.dir*int64(lineBytes))
				out = append(out, cur)
			}
			p.scratch = out
			return out
		}
		if victim == nil || !e.valid {
			victim = e
		}
	}
	if victim == nil {
		victim = &p.entries[0]
	}
	*victim = streamEntry{page: page, lastLine: line, dir: 1, count: 1, valid: true}
	return nil
}
