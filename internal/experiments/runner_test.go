package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/program"
	"atr/internal/workload"
)

// runDigest simulates prog under cfg and returns the run summary, both
// counter dumps, and a digest of the full JSONL event trace — the same
// three observables the scheduler equivalence oracle compares.
func runDigest(cfg config.Config, prog *program.Program, n uint64) (pipeline.Result, string, string) {
	h := sha256.New()
	cpu := pipeline.New(cfg, prog)
	cpu.Observe(&obs.Observer{Tracer: obs.NewTracer(h, nil)})
	res := cpu.Run(n)
	return res, cpu.Engine.Stats.String() + cpu.Stats.String(), hex.EncodeToString(h.Sum(nil))
}

// TestSharedProgramEquivalence proves the runner's shared program cache is
// observationally invisible: a run on the cached program — including a
// second run on the very same Program value — is bit-identical (Result,
// every counter, full event trace) to a run on a freshly generated one.
func TestSharedProgramEquivalence(t *testing.T) {
	const instrs = 4000
	p, _ := workload.ByName("xalancbmk")
	r := testRunner()
	shared := r.Program(p)
	if shared != r.Program(p) {
		t.Fatal("Program not cached: second call returned a different pointer")
	}
	cfg := config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64)

	fresRes, freshCtr, freshDig := runDigest(cfg, p.Generate(), instrs)
	for i := 0; i < 2; i++ {
		res, ctr, dig := runDigest(cfg, shared, instrs)
		if res != fresRes {
			t.Errorf("run %d on shared program: Result diverged\n shared: %+v\n fresh:  %+v", i, res, fresRes)
		}
		if ctr != freshCtr {
			t.Errorf("run %d on shared program: counters diverged\n shared: %s\n fresh:  %s", i, ctr, freshCtr)
		}
		if dig != freshDig {
			t.Errorf("run %d on shared program: trace digest diverged (%s != %s)", i, dig, freshDig)
		}
	}
}

// TestRunnerProgramCacheConcurrent hammers the program cache and the
// memoized Run path from many goroutines (run under -race in CI): every
// caller must observe the same Program pointer and identical results.
func TestRunnerProgramCacheConcurrent(t *testing.T) {
	r := NewRunner(2000)
	ps := workload.Profiles()[:4]
	cfgs := []config.Config{
		config.GoldenCove().WithPhysRegs(64),
		config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeATR),
	}
	var wg sync.WaitGroup
	progs := make([]*program.Program, 8*len(ps))
	for g := 0; g < 8; g++ {
		for pi, p := range ps {
			wg.Add(1)
			go func(g, pi int, p workload.Profile) {
				defer wg.Done()
				progs[g*len(ps)+pi] = r.Program(p)
				for _, cfg := range cfgs {
					r.Run(p, cfg)
				}
			}(g, pi, p)
		}
	}
	wg.Wait()
	for pi, p := range ps {
		want := r.Program(p)
		for g := 0; g < 8; g++ {
			if progs[g*len(ps)+pi] != want {
				t.Errorf("%s: goroutine %d saw a different Program pointer", p.Name, g)
			}
		}
	}
	if runs, instr, cycles := r.Totals(); runs != len(ps)*len(cfgs) || instr == 0 || cycles == 0 {
		t.Errorf("Totals = (%d, %d, %d), want %d unique runs with nonzero work",
			runs, instr, cycles, len(ps)*len(cfgs))
	}
}

// perturb mutates the addressable leaf value v to something different, so
// tests can prove the field is observable through key().
func perturb(v reflect.Value) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		panic(fmt.Sprintf("perturb: unsupported kind %v", v.Kind()))
	}
}

// leafFields appends the paths of every settable leaf field of struct type
// t, recursing into embedded struct fields (e.g. the per-level CacheConfig
// blocks inside Config).
func leafFields(t reflect.Type, prefix []int, out *[][]int) {
	for i := 0; i < t.NumField(); i++ {
		path := append(append([]int{}, prefix...), i)
		if f := t.Field(i); f.Type.Kind() == reflect.Struct {
			leafFields(f.Type, path, out)
		} else {
			*out = append(*out, path)
		}
	}
}

// TestKeyCoversEveryConfigField walks config.Config by reflection,
// perturbs each leaf field in turn, and asserts the memoization key
// changes. This pins the key() contract: no present or future Config field
// may silently alias two different simulations onto one cached result.
func TestKeyCoversEveryConfigField(t *testing.T) {
	p, _ := workload.ByName("exchange2")
	base := config.GoldenCove()
	baseKey := key(p, base)

	var paths [][]int
	leafFields(reflect.TypeOf(base), nil, &paths)
	if len(paths) < 20 {
		t.Fatalf("only %d leaf fields found; reflection walk broken?", len(paths))
	}
	for _, path := range paths {
		cfg := base
		v := reflect.ValueOf(&cfg).Elem()
		name := ""
		tt := reflect.TypeOf(base)
		for _, i := range path {
			name += "." + tt.Field(i).Name
			tt = tt.Field(i).Type
			v = v.Field(i)
		}
		perturb(v)
		if key(p, cfg) == baseKey {
			t.Errorf("perturbing Config%s does not change the memoization key", name)
		}
	}

	// The profile identity must participate too.
	q, _ := workload.ByName("omnetpp")
	if key(q, base) == baseKey {
		t.Error("profile name does not change the memoization key")
	}
}

// TestGeomeanExtremes pins the log-domain formulation: a running product
// over these inputs would overflow (or underflow) float64 and return +Inf
// or 0, but the mean of logs stays in range.
func TestGeomeanExtremes(t *testing.T) {
	big := make([]float64, 50)
	tiny := make([]float64, 50)
	for i := range big {
		big[i] = 1e300 // product overflows after 2 elements
		tiny[i] = 1e-300
	}
	if g := geomean(big); math.IsInf(g, 0) || math.Abs(g-1e300)/1e300 > 1e-9 {
		t.Errorf("geomean of 1e300s = %v, want 1e300", g)
	}
	if g := geomean(tiny); g == 0 || math.Abs(g-1e-300)/1e-300 > 1e-9 {
		t.Errorf("geomean of 1e-300s = %v, want 1e-300", g)
	}
	mixed := append(append([]float64{}, big...), tiny...)
	if g := geomean(mixed); math.Abs(g-1) > 1e-9 {
		t.Errorf("geomean of balanced extremes = %v, want 1", g)
	}
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
}
