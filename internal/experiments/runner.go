// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figs 1, 4, 6, 10–15 and the §4.4 synthesis numbers) on
// the synthetic SPEC2017-like workloads. Each experiment prints the same
// rows/series the paper reports, side by side with the paper's published
// values where the paper gives a number.
package experiments

import (
	"container/list"
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/power"
	"atr/internal/program"
	"atr/internal/sweep"
	"atr/internal/workload"
)

// RunStats is everything an experiment needs from one simulation.
type RunStats struct {
	pipeline.Result

	// Fig 4 state split.
	InUse, Unused, Verified float64
	// Fig 6 region ratios (GPR class, cumulative as in the paper).
	NonBranch, NonExcept, Atomic float64
	// Fig 14 event gaps (cycles, atomic regions).
	GapRedefine, GapConsume, GapCommit float64
	// Fig 12 consumer-count fractions for atomic regions; index 7 holds
	// seven-or-more.
	ConsumerFrac [8]float64

	// Scheme accounting.
	ATRReleases, ERReleases, CommitReleases uint64

	Activity power.Activity
	Power    power.Power

	// Samples is the interval time series, populated when the runner's
	// SampleInterval is non-zero.
	Samples []obs.Sample
}

// DefaultCacheCap bounds the runner's memoized-result and program caches
// when CacheCap is unset. It is deliberately generous — an uncapped
// interactive sweep never notices it — while keeping a long-lived daemon
// that sees many distinct configs from growing without bound.
const DefaultCacheCap = 4096

// Runner executes simulations in parallel with memoization: experiments
// share identical (profile, config) runs.
type Runner struct {
	// Instr is the per-run instruction budget.
	Instr uint64

	// SampleInterval, when non-zero, attaches an interval sampler (one per
	// simulation, so parallel runs never share observer state) and returns
	// the series in RunStats.Samples. Set it before the first Run.
	SampleInterval uint64

	// Workers bounds Prefetch's concurrency (<= 0 selects GOMAXPROCS).
	// Set it before the first Prefetch.
	Workers int

	// CacheCap bounds the memoized-result and generated-program caches
	// (entries, LRU eviction; <= 0 selects DefaultCacheCap). Eviction is
	// invisible to callers beyond re-execution cost: simulations are
	// deterministic, so a re-run of an evicted key returns identical
	// stats. Set it before the first Run.
	CacheCap int

	// Prefetch concurrency accounting: inFlight is the number of runs
	// currently executing on the pool, maxInFlight its high-water mark.
	// TestPrefetchWorkerBound pins Prefetch to the worker bound with it.
	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	mu        sync.Mutex
	res       map[string]*resEntry
	lru       *list.List // of string keys; front = most recently used
	hits      uint64
	evictions uint64
	sem       chan struct{}

	// Shared immutable program cache: p.Generate() runs once per profile
	// (not once per profile×config). Programs are static code images the
	// pipeline never mutates, so concurrent runs share them freely. Like
	// res it is LRU-bounded by CacheCap; an evicted program still held by
	// a running simulation stays valid (immutability), the next request
	// just regenerates it.
	progMu   sync.Mutex
	progs    map[string]*progEntry
	progLRU  *list.List
	progHits uint64

	// Aggregate totals over unique (non-memoized) simulations, for sweep
	// throughput accounting; guarded by mu.
	nRuns       int
	totalInstr  uint64
	totalCycles uint64
}

// resEntry is one memoized run. Callers hold the entry pointer across the
// once, so evicting the key from the maps cannot yank a result out from
// under a waiter — eviction only forgets, it never invalidates.
type resEntry struct {
	once  sync.Once
	stats RunStats
	elem  *list.Element
}

type progEntry struct {
	once sync.Once
	prog *program.Program
	elem *list.Element
}

// NewRunner creates a runner with the given per-run instruction budget.
func NewRunner(instr uint64) *Runner {
	if instr == 0 {
		instr = 40_000
	}
	return &Runner{
		Instr:   instr,
		res:     make(map[string]*resEntry),
		lru:     list.New(),
		sem:     make(chan struct{}, runtime.GOMAXPROCS(0)),
		progs:   make(map[string]*progEntry),
		progLRU: list.New(),
	}
}

// cap returns the effective cache bound.
func (r *Runner) cap() int {
	if r.CacheCap > 0 {
		return r.CacheCap
	}
	return DefaultCacheCap
}

// key identifies one memoized run. It is the sweep engine's canonical
// memoization key (profile name plus the %+v rendering of the config), so
// every Config field — including ones added in the future — participates
// and cannot silently alias two different runs, and so sweep journals are
// keyed identically to the runner's cache
// (TestKeyCoversEveryConfigField enforces the coverage by reflection).
func key(p workload.Profile, cfg config.Config) string {
	return sweep.MemoKey(p, cfg)
}

// Program returns p's generated program, shared across every run of the
// same profile. The program is generated at most once per cache residency;
// callers must treat it as read-only (program.Program is an immutable code
// image), which is also what makes LRU eviction safe — a caller still
// holding an evicted program keeps a valid image.
func (r *Runner) Program(p workload.Profile) *program.Program {
	r.progMu.Lock()
	e, ok := r.progs[p.Name]
	if ok {
		r.progHits++
		r.progLRU.MoveToFront(e.elem)
	} else {
		e = &progEntry{}
		e.elem = r.progLRU.PushFront(p.Name)
		r.progs[p.Name] = e
		for r.progLRU.Len() > r.cap() {
			back := r.progLRU.Back()
			if back == e.elem {
				break // never evict the entry being inserted
			}
			delete(r.progs, back.Value.(string))
			r.progLRU.Remove(back)
		}
	}
	r.progMu.Unlock()
	e.once.Do(func() { e.prog = p.Generate() })
	return e.prog
}

// Run simulates profile p under cfg (memoized, LRU-bounded by CacheCap).
func (r *Runner) Run(p workload.Profile, cfg config.Config) RunStats {
	k := key(p, cfg)
	r.mu.Lock()
	e, ok := r.res[k]
	if ok {
		r.hits++
		if e.elem != nil {
			r.lru.MoveToFront(e.elem)
		}
	} else {
		e = &resEntry{}
		e.elem = r.lru.PushFront(k)
		r.res[k] = e
		r.evictLocked(e)
	}
	r.mu.Unlock()

	e.once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		e.stats = simulate(r.Program(p), cfg, r.Instr, r.SampleInterval)
		r.mu.Lock()
		r.nRuns++
		r.totalInstr += e.stats.Committed
		r.totalCycles += e.stats.Cycles
		r.mu.Unlock()
	})
	return e.stats
}

// evictLocked trims the result cache to CacheCap, sparing keep (the entry
// being inserted). Caller holds r.mu.
func (r *Runner) evictLocked(keep *resEntry) {
	for r.lru.Len() > r.cap() {
		back := r.lru.Back()
		k := back.Value.(string)
		victim := r.res[k]
		if victim == keep {
			break
		}
		r.lru.Remove(back)
		victim.elem = nil
		delete(r.res, k)
		r.evictions++
	}
}

// CacheStats reports memo-cache effectiveness: cumulative hits and
// evictions, and the current number of resident results.
func (r *Runner) CacheStats() (hits, evictions uint64, size int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.evictions, len(r.res)
}

// ProgramCacheStats reports shared-program-cache effectiveness: cumulative
// hits (a profile's image reused instead of regenerated) and the current
// number of resident programs. It exists for the daemon's telemetry
// registry; like CacheStats the read is a monitoring snapshot, not a
// synchronization point.
func (r *Runner) ProgramCacheStats() (hits uint64, size int) {
	r.progMu.Lock()
	defer r.progMu.Unlock()
	return r.progHits, len(r.progs)
}

// Totals returns the number of unique simulations executed and the summed
// committed instructions and simulated cycles across them (memoized reruns
// count once). Together with a caller-side wall clock this yields sweep
// throughput in cycles/sec.
func (r *Runner) Totals() (runs int, instr, cycles uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nRuns, r.totalInstr, r.totalCycles
}

// Prefetch executes the (profile × config) cross product in parallel on a
// bounded work-stealing pool (Workers wide) and waits for completion.
// Unlike the old per-run goroutine fan-out, at most Workers runs are in
// flight at any instant regardless of grid size.
func (r *Runner) Prefetch(ps []workload.Profile, cfgs []config.Config) {
	type unit struct {
		p   workload.Profile
		cfg config.Config
	}
	units := make([]unit, 0, len(ps)*len(cfgs))
	for _, p := range ps {
		for _, cfg := range cfgs {
			units = append(units, unit{p, cfg})
		}
	}
	pool := sweep.NewPool(r.Workers)
	pool.ForEach(context.Background(), len(units), func(_, i int) {
		n := r.inFlight.Add(1)
		for {
			h := r.maxInFlight.Load()
			if n <= h || r.maxInFlight.CompareAndSwap(h, n) {
				break
			}
		}
		r.Run(units[i].p, units[i].cfg)
		r.inFlight.Add(-1)
	})
}

func simulate(prog *program.Program, cfg config.Config, instr, sampleInterval uint64) RunStats {
	cpu := pipeline.New(cfg, prog)
	var sampler *obs.Sampler
	if sampleInterval > 0 {
		sampler = obs.NewSampler(sampleInterval)
		cpu.Observe(&obs.Observer{Sampler: sampler})
	}
	res := cpu.Run(instr)
	led := cpu.Engine.Ledger

	out := RunStats{Result: res}
	out.InUse, out.Unused, out.Verified = led.StateFractions()
	out.NonBranch, out.NonExcept, out.Atomic = led.RegionFractions()
	out.GapRedefine, out.GapConsume, out.GapCommit = led.EventGaps()
	if n := led.ConsumerHist.Count(); n > 0 {
		for v := 0; v <= 6; v++ {
			out.ConsumerFrac[v] = led.ConsumerHist.Fraction(v)
		}
		var tail float64
		for v := 0; v <= 6; v++ {
			tail += out.ConsumerFrac[v]
		}
		if tail < 1 {
			out.ConsumerFrac[7] = 1 - tail
		}
	}
	out.ATRReleases = cpu.Engine.Stats.Get("release.atr")
	out.ERReleases = cpu.Engine.Stats.Get("release.er")
	out.CommitReleases = cpu.Engine.Stats.Get("release.commit")
	out.Activity = cpu.Activity()
	out.Power = power.RuntimePower(cfg, out.Activity)
	if sampler != nil {
		out.Samples = sampler.Samples()
	}
	return out
}

// geomean returns the geometric mean of xs (which must be positive). It is
// computed in the log domain (mean of logs) so long lists of large or tiny
// values cannot overflow or underflow the running product; a zero input
// yields 0 (log 0 = -Inf, exp -Inf = 0), matching the product formulation.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
