// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figs 1, 4, 6, 10–15 and the §4.4 synthesis numbers) on
// the synthetic SPEC2017-like workloads. Each experiment prints the same
// rows/series the paper reports, side by side with the paper's published
// values where the paper gives a number.
package experiments

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/power"
	"atr/internal/program"
	"atr/internal/sweep"
	"atr/internal/workload"
)

// RunStats is everything an experiment needs from one simulation.
type RunStats struct {
	pipeline.Result

	// Fig 4 state split.
	InUse, Unused, Verified float64
	// Fig 6 region ratios (GPR class, cumulative as in the paper).
	NonBranch, NonExcept, Atomic float64
	// Fig 14 event gaps (cycles, atomic regions).
	GapRedefine, GapConsume, GapCommit float64
	// Fig 12 consumer-count fractions for atomic regions; index 7 holds
	// seven-or-more.
	ConsumerFrac [8]float64

	// Scheme accounting.
	ATRReleases, ERReleases, CommitReleases uint64

	Activity power.Activity
	Power    power.Power

	// Samples is the interval time series, populated when the runner's
	// SampleInterval is non-zero.
	Samples []obs.Sample
}

// Runner executes simulations in parallel with memoization: experiments
// share identical (profile, config) runs.
type Runner struct {
	// Instr is the per-run instruction budget.
	Instr uint64

	// SampleInterval, when non-zero, attaches an interval sampler (one per
	// simulation, so parallel runs never share observer state) and returns
	// the series in RunStats.Samples. Set it before the first Run.
	SampleInterval uint64

	// Workers bounds Prefetch's concurrency (<= 0 selects GOMAXPROCS).
	// Set it before the first Prefetch.
	Workers int

	// Prefetch concurrency accounting: inFlight is the number of runs
	// currently executing on the pool, maxInFlight its high-water mark.
	// TestPrefetchWorkerBound pins Prefetch to the worker bound with it.
	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	mu    sync.Mutex
	cache map[string]*sync.Once
	res   map[string]RunStats
	sem   chan struct{}

	// Shared immutable program cache: p.Generate() runs once per profile
	// (not once per profile×config). Programs are static code images the
	// pipeline never mutates, so concurrent runs share them freely.
	progMu sync.Mutex
	progs  map[string]*progEntry

	// Aggregate totals over unique (non-memoized) simulations, for sweep
	// throughput accounting; guarded by mu.
	nRuns       int
	totalInstr  uint64
	totalCycles uint64
}

type progEntry struct {
	once sync.Once
	prog *program.Program
}

// NewRunner creates a runner with the given per-run instruction budget.
func NewRunner(instr uint64) *Runner {
	if instr == 0 {
		instr = 40_000
	}
	return &Runner{
		Instr: instr,
		cache: make(map[string]*sync.Once),
		res:   make(map[string]RunStats),
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
		progs: make(map[string]*progEntry),
	}
}

// key identifies one memoized run. It is the sweep engine's canonical
// memoization key (profile name plus the %+v rendering of the config), so
// every Config field — including ones added in the future — participates
// and cannot silently alias two different runs, and so sweep journals are
// keyed identically to the runner's cache
// (TestKeyCoversEveryConfigField enforces the coverage by reflection).
func key(p workload.Profile, cfg config.Config) string {
	return sweep.MemoKey(p, cfg)
}

// Program returns p's generated program, shared across every run of the
// same profile. The program is generated at most once per runner; callers
// must treat it as read-only (program.Program is an immutable code image).
func (r *Runner) Program(p workload.Profile) *program.Program {
	r.progMu.Lock()
	e, ok := r.progs[p.Name]
	if !ok {
		e = &progEntry{}
		r.progs[p.Name] = e
	}
	r.progMu.Unlock()
	e.once.Do(func() { e.prog = p.Generate() })
	return e.prog
}

// Run simulates profile p under cfg (memoized).
func (r *Runner) Run(p workload.Profile, cfg config.Config) RunStats {
	k := key(p, cfg)
	r.mu.Lock()
	once, ok := r.cache[k]
	if !ok {
		once = &sync.Once{}
		r.cache[k] = once
	}
	r.mu.Unlock()

	once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		stats := simulate(r.Program(p), cfg, r.Instr, r.SampleInterval)
		r.mu.Lock()
		r.res[k] = stats
		r.nRuns++
		r.totalInstr += stats.Committed
		r.totalCycles += stats.Cycles
		r.mu.Unlock()
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res[k]
}

// Totals returns the number of unique simulations executed and the summed
// committed instructions and simulated cycles across them (memoized reruns
// count once). Together with a caller-side wall clock this yields sweep
// throughput in cycles/sec.
func (r *Runner) Totals() (runs int, instr, cycles uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nRuns, r.totalInstr, r.totalCycles
}

// Prefetch executes the (profile × config) cross product in parallel on a
// bounded work-stealing pool (Workers wide) and waits for completion.
// Unlike the old per-run goroutine fan-out, at most Workers runs are in
// flight at any instant regardless of grid size.
func (r *Runner) Prefetch(ps []workload.Profile, cfgs []config.Config) {
	type unit struct {
		p   workload.Profile
		cfg config.Config
	}
	units := make([]unit, 0, len(ps)*len(cfgs))
	for _, p := range ps {
		for _, cfg := range cfgs {
			units = append(units, unit{p, cfg})
		}
	}
	pool := sweep.NewPool(r.Workers)
	pool.ForEach(context.Background(), len(units), func(_, i int) {
		n := r.inFlight.Add(1)
		for {
			h := r.maxInFlight.Load()
			if n <= h || r.maxInFlight.CompareAndSwap(h, n) {
				break
			}
		}
		r.Run(units[i].p, units[i].cfg)
		r.inFlight.Add(-1)
	})
}

func simulate(prog *program.Program, cfg config.Config, instr, sampleInterval uint64) RunStats {
	cpu := pipeline.New(cfg, prog)
	var sampler *obs.Sampler
	if sampleInterval > 0 {
		sampler = obs.NewSampler(sampleInterval)
		cpu.Observe(&obs.Observer{Sampler: sampler})
	}
	res := cpu.Run(instr)
	led := cpu.Engine.Ledger

	out := RunStats{Result: res}
	out.InUse, out.Unused, out.Verified = led.StateFractions()
	out.NonBranch, out.NonExcept, out.Atomic = led.RegionFractions()
	out.GapRedefine, out.GapConsume, out.GapCommit = led.EventGaps()
	if n := led.ConsumerHist.Count(); n > 0 {
		for v := 0; v <= 6; v++ {
			out.ConsumerFrac[v] = led.ConsumerHist.Fraction(v)
		}
		var tail float64
		for v := 0; v <= 6; v++ {
			tail += out.ConsumerFrac[v]
		}
		if tail < 1 {
			out.ConsumerFrac[7] = 1 - tail
		}
	}
	out.ATRReleases = cpu.Engine.Stats.Get("release.atr")
	out.ERReleases = cpu.Engine.Stats.Get("release.er")
	out.CommitReleases = cpu.Engine.Stats.Get("release.commit")
	out.Activity = cpu.Activity()
	out.Power = power.RuntimePower(cfg, out.Activity)
	if sampler != nil {
		out.Samples = sampler.Samples()
	}
	return out
}

// geomean returns the geometric mean of xs (which must be positive). It is
// computed in the log domain (mean of logs) so long lists of large or tiny
// values cannot overflow or underflow the running product; a zero input
// yields 0 (log 0 = -Inf, exp -Inf = 0), matching the product formulation.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
