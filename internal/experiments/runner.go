// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figs 1, 4, 6, 10–15 and the §4.4 synthesis numbers) on
// the synthetic SPEC2017-like workloads. Each experiment prints the same
// rows/series the paper reports, side by side with the paper's published
// values where the paper gives a number.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/power"
	"atr/internal/workload"
)

// RunStats is everything an experiment needs from one simulation.
type RunStats struct {
	pipeline.Result

	// Fig 4 state split.
	InUse, Unused, Verified float64
	// Fig 6 region ratios (GPR class, cumulative as in the paper).
	NonBranch, NonExcept, Atomic float64
	// Fig 14 event gaps (cycles, atomic regions).
	GapRedefine, GapConsume, GapCommit float64
	// Fig 12 consumer-count fractions for atomic regions; index 7 holds
	// seven-or-more.
	ConsumerFrac [8]float64

	// Scheme accounting.
	ATRReleases, ERReleases, CommitReleases uint64

	Activity power.Activity
	Power    power.Power

	// Samples is the interval time series, populated when the runner's
	// SampleInterval is non-zero.
	Samples []obs.Sample
}

// Runner executes simulations in parallel with memoization: experiments
// share identical (profile, config) runs.
type Runner struct {
	// Instr is the per-run instruction budget.
	Instr uint64

	// SampleInterval, when non-zero, attaches an interval sampler (one per
	// simulation, so parallel runs never share observer state) and returns
	// the series in RunStats.Samples. Set it before the first Run.
	SampleInterval uint64

	mu    sync.Mutex
	cache map[string]*sync.Once
	res   map[string]RunStats
	sem   chan struct{}
}

// NewRunner creates a runner with the given per-run instruction budget.
func NewRunner(instr uint64) *Runner {
	if instr == 0 {
		instr = 40_000
	}
	return &Runner{
		Instr: instr,
		cache: make(map[string]*sync.Once),
		res:   make(map[string]RunStats),
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

func key(p workload.Profile, cfg config.Config) string {
	return fmt.Sprintf("%s|%v|%d|%d|%d|%v|%v|%d|%d|%v|%v|%d",
		p.Name, cfg.Scheme, cfg.PhysRegs, cfg.RedefineDelay,
		cfg.ConsumerCounterBits, cfg.WalkRecovery, cfg.MemPrecommitAtExec,
		cfg.InterruptInterval, int(cfg.InterruptMode), cfg.FaultRate,
		cfg.MoveElimination, cfg.CheckpointBudget)
}

// Run simulates profile p under cfg (memoized).
func (r *Runner) Run(p workload.Profile, cfg config.Config) RunStats {
	k := key(p, cfg)
	r.mu.Lock()
	once, ok := r.cache[k]
	if !ok {
		once = &sync.Once{}
		r.cache[k] = once
	}
	r.mu.Unlock()

	once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		stats := simulate(p, cfg, r.Instr, r.SampleInterval)
		r.mu.Lock()
		r.res[k] = stats
		r.mu.Unlock()
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res[k]
}

// Prefetch launches the given runs in parallel and waits for completion.
func (r *Runner) Prefetch(ps []workload.Profile, cfgs []config.Config) {
	var wg sync.WaitGroup
	for _, p := range ps {
		for _, cfg := range cfgs {
			wg.Add(1)
			go func(p workload.Profile, cfg config.Config) {
				defer wg.Done()
				r.Run(p, cfg)
			}(p, cfg)
		}
	}
	wg.Wait()
}

func simulate(p workload.Profile, cfg config.Config, instr, sampleInterval uint64) RunStats {
	prog := p.Generate()
	cpu := pipeline.New(cfg, prog)
	var sampler *obs.Sampler
	if sampleInterval > 0 {
		sampler = obs.NewSampler(sampleInterval)
		cpu.Observe(&obs.Observer{Sampler: sampler})
	}
	res := cpu.Run(instr)
	led := cpu.Engine.Ledger

	out := RunStats{Result: res}
	out.InUse, out.Unused, out.Verified = led.StateFractions()
	out.NonBranch, out.NonExcept, out.Atomic = led.RegionFractions()
	out.GapRedefine, out.GapConsume, out.GapCommit = led.EventGaps()
	if n := led.ConsumerHist.Count(); n > 0 {
		for v := 0; v <= 6; v++ {
			out.ConsumerFrac[v] = led.ConsumerHist.Fraction(v)
		}
		var tail float64
		for v := 0; v <= 6; v++ {
			tail += out.ConsumerFrac[v]
		}
		if tail < 1 {
			out.ConsumerFrac[7] = 1 - tail
		}
	}
	out.ATRReleases = cpu.Engine.Stats.Get("release.atr")
	out.ERReleases = cpu.Engine.Stats.Get("release.er")
	out.CommitReleases = cpu.Engine.Stats.Get("release.commit")
	out.Activity = cpu.Activity()
	out.Power = power.RuntimePower(cfg, out.Activity)
	if sampler != nil {
		out.Samples = sampler.Samples()
	}
	return out
}

// geomean returns the geometric mean of xs (which must be positive).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		prod *= x
	}
	return math.Pow(prod, 1/float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
