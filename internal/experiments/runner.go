// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figs 1, 4, 6, 10–15 and the §4.4 synthesis numbers) on
// the synthetic SPEC2017-like workloads. Each experiment prints the same
// rows/series the paper reports, side by side with the paper's published
// values where the paper gives a number.
package experiments

import (
	"container/list"
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"atr/internal/batch"
	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/power"
	"atr/internal/program"
	"atr/internal/sweep"
	"atr/internal/workload"
)

// RunStats is everything an experiment needs from one simulation.
type RunStats struct {
	pipeline.Result

	// Fig 4 state split.
	InUse, Unused, Verified float64
	// Fig 6 region ratios (GPR class, cumulative as in the paper).
	NonBranch, NonExcept, Atomic float64
	// Fig 14 event gaps (cycles, atomic regions).
	GapRedefine, GapConsume, GapCommit float64
	// Fig 12 consumer-count fractions for atomic regions; index 7 holds
	// seven-or-more.
	ConsumerFrac [8]float64

	// Scheme accounting.
	ATRReleases, ERReleases, CommitReleases uint64

	Activity power.Activity
	Power    power.Power

	// Samples is the interval time series, populated when the runner's
	// SampleInterval is non-zero.
	Samples []obs.Sample
}

// DefaultCacheCap bounds the runner's memoized-result and program caches
// when CacheCap is unset. It is deliberately generous — an uncapped
// interactive sweep never notices it — while keeping a long-lived daemon
// that sees many distinct configs from growing without bound.
const DefaultCacheCap = 4096

// Runner executes simulations in parallel with memoization: experiments
// share identical (profile, config) runs.
type Runner struct {
	// Instr is the per-run instruction budget.
	Instr uint64

	// SampleInterval, when non-zero, attaches an interval sampler (one per
	// simulation, so parallel runs never share observer state) and returns
	// the series in RunStats.Samples. Set it before the first Run.
	SampleInterval uint64

	// Workers bounds Prefetch's concurrency (<= 0 selects GOMAXPROCS).
	// Set it before the first Prefetch.
	Workers int

	// CacheCap bounds the memoized-result and generated-program caches
	// (entries, LRU eviction; <= 0 selects DefaultCacheCap). Eviction is
	// invisible to callers beyond re-execution cost: simulations are
	// deterministic, so a re-run of an evicted key returns identical
	// stats. Set it before the first Run.
	CacheCap int

	// Prefetch concurrency accounting: inFlight is the number of pool
	// tasks (lockstep lane groups) currently executing, maxInFlight its
	// high-water mark. TestPrefetchWorkerBound pins Prefetch to the
	// worker bound with it.
	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	mu        sync.Mutex
	res       map[string]*resEntry
	lru       *list.List // of string keys; front = most recently used
	hits      uint64
	evictions uint64
	sem       chan struct{}

	// Shared immutable program cache: p.Generate() runs once per profile
	// (not once per profile×config). Programs are static code images the
	// pipeline never mutates, so concurrent runs share them freely. Like
	// res it is LRU-bounded by CacheCap; an evicted program still held by
	// a running simulation stays valid (immutability), the next request
	// just regenerates it.
	progMu   sync.Mutex
	progs    map[string]*progEntry
	progLRU  *list.List
	progHits uint64

	// Aggregate totals over unique (non-memoized) simulations, for sweep
	// throughput accounting; guarded by mu.
	nRuns       int
	totalInstr  uint64
	totalCycles uint64
}

// resEntry is one memoized run. Callers hold the entry pointer across the
// once, so evicting the key from the maps cannot yank a result out from
// under a waiter — eviction only forgets, it never invalidates.
type resEntry struct {
	once  sync.Once
	stats RunStats
	elem  *list.Element
}

type progEntry struct {
	once sync.Once
	prog *program.Program
	elem *list.Element
}

// NewRunner creates a runner with the given per-run instruction budget.
func NewRunner(instr uint64) *Runner {
	if instr == 0 {
		instr = 40_000
	}
	return &Runner{
		Instr:   instr,
		res:     make(map[string]*resEntry),
		lru:     list.New(),
		sem:     make(chan struct{}, runtime.GOMAXPROCS(0)),
		progs:   make(map[string]*progEntry),
		progLRU: list.New(),
	}
}

// cap returns the effective cache bound.
func (r *Runner) cap() int {
	if r.CacheCap > 0 {
		return r.CacheCap
	}
	return DefaultCacheCap
}

// key identifies one memoized run. It is the sweep engine's canonical
// memoization key (profile name plus the %+v rendering of the config), so
// every Config field — including ones added in the future — participates
// and cannot silently alias two different runs, and so sweep journals are
// keyed identically to the runner's cache
// (TestKeyCoversEveryConfigField enforces the coverage by reflection).
func key(p workload.Profile, cfg config.Config) string {
	return sweep.MemoKey(p, cfg)
}

// Program returns p's generated program, shared across every run of the
// same profile. The program is generated at most once per cache residency;
// callers must treat it as read-only (program.Program is an immutable code
// image), which is also what makes LRU eviction safe — a caller still
// holding an evicted program keeps a valid image.
func (r *Runner) Program(p workload.Profile) *program.Program {
	r.progMu.Lock()
	e, ok := r.progs[p.Name]
	if ok {
		r.progHits++
		r.progLRU.MoveToFront(e.elem)
	} else {
		e = &progEntry{}
		e.elem = r.progLRU.PushFront(p.Name)
		r.progs[p.Name] = e
		for r.progLRU.Len() > r.cap() {
			back := r.progLRU.Back()
			if back == e.elem {
				break // never evict the entry being inserted
			}
			delete(r.progs, back.Value.(string))
			r.progLRU.Remove(back)
		}
	}
	r.progMu.Unlock()
	e.once.Do(func() { e.prog = p.Generate() })
	return e.prog
}

// Run simulates profile p under cfg (memoized, LRU-bounded by CacheCap).
func (r *Runner) Run(p workload.Profile, cfg config.Config) RunStats {
	k := key(p, cfg)
	r.mu.Lock()
	e, ok := r.res[k]
	if ok {
		r.hits++
		if e.elem != nil {
			r.lru.MoveToFront(e.elem)
		}
	} else {
		e = &resEntry{}
		e.elem = r.lru.PushFront(k)
		r.res[k] = e
		r.evictLocked(e)
	}
	r.mu.Unlock()

	e.once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		e.stats = simulate(r.Program(p), cfg, r.Instr, r.SampleInterval)
		r.account(&e.stats)
	})
	return e.stats
}

// account folds one unique (non-memoized) simulation into the sweep
// throughput totals.
func (r *Runner) account(st *RunStats) {
	r.mu.Lock()
	r.nRuns++
	r.totalInstr += st.Committed
	r.totalCycles += st.Cycles
	r.mu.Unlock()
}

// RunBatch simulates profile p under every config in cfgs on lockstep
// batch lanes sharing p's immutable program image (memoized identically
// to Run — batching is invisible in the cache: lane results are
// bit-identical to solo runs, so a key filled by RunBatch returns the
// same stats a later Run would have computed, and vice versa). Configs
// already resident are served from the memo; only the misses occupy
// lanes. With a SampleInterval set it falls back to per-config Run,
// since samplers are per-CPU observers the batch executor does not
// attach.
func (r *Runner) RunBatch(p workload.Profile, cfgs []config.Config) []RunStats {
	out := make([]RunStats, len(cfgs))
	if r.SampleInterval > 0 {
		for i, cfg := range cfgs {
			out[i] = r.Run(p, cfg)
		}
		return out
	}

	entries := make([]*resEntry, len(cfgs))
	var miss []int
	r.mu.Lock()
	for i, cfg := range cfgs {
		k := key(p, cfg)
		e, ok := r.res[k]
		if ok {
			r.hits++
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
			}
		} else {
			e = &resEntry{}
			e.elem = r.lru.PushFront(k)
			r.res[k] = e
			r.evictLocked(e)
			miss = append(miss, i)
		}
		entries[i] = e
	}
	r.mu.Unlock()

	if len(miss) > 0 {
		prog := r.Program(p)
		bcfgs := make([]config.Config, len(miss))
		for j, i := range miss {
			bcfgs[j] = cfgs[i]
		}
		r.sem <- struct{}{}
		lanes, _ := batch.Run(prog, bcfgs, r.Instr, batch.Options{})
		<-r.sem
		for j, i := range miss {
			e, lane := entries[i], lanes[j]
			cfg := bcfgs[j]
			e.once.Do(func() {
				e.stats = collect(lane.CPU, cfg, lane.Result, nil)
				r.account(&e.stats)
			})
		}
	}

	for i, e := range entries {
		// A pre-existing entry may still be mid-flight on its creator:
		// Do either waits for it or (if the creator has not claimed the
		// once yet) computes solo — both produce identical bits.
		cfg := cfgs[i]
		e.once.Do(func() {
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			e.stats = simulate(r.Program(p), cfg, r.Instr, r.SampleInterval)
			r.account(&e.stats)
		})
		out[i] = e.stats
	}
	return out
}

// evictLocked trims the result cache to CacheCap, sparing keep (the entry
// being inserted). Caller holds r.mu.
func (r *Runner) evictLocked(keep *resEntry) {
	for r.lru.Len() > r.cap() {
		back := r.lru.Back()
		k := back.Value.(string)
		victim := r.res[k]
		if victim == keep {
			break
		}
		r.lru.Remove(back)
		victim.elem = nil
		delete(r.res, k)
		r.evictions++
	}
}

// CacheStats reports memo-cache effectiveness: cumulative hits and
// evictions, and the current number of resident results.
func (r *Runner) CacheStats() (hits, evictions uint64, size int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.evictions, len(r.res)
}

// ProgramCacheStats reports shared-program-cache effectiveness: cumulative
// hits (a profile's image reused instead of regenerated) and the current
// number of resident programs. It exists for the daemon's telemetry
// registry; like CacheStats the read is a monitoring snapshot, not a
// synchronization point.
func (r *Runner) ProgramCacheStats() (hits uint64, size int) {
	r.progMu.Lock()
	defer r.progMu.Unlock()
	return r.progHits, len(r.progs)
}

// Totals returns the number of unique simulations executed and the summed
// committed instructions and simulated cycles across them (memoized reruns
// count once). Together with a caller-side wall clock this yields sweep
// throughput in cycles/sec.
func (r *Runner) Totals() (runs int, instr, cycles uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nRuns, r.totalInstr, r.totalCycles
}

// Prefetch executes the (profile × config) cross product in parallel on a
// bounded work-stealing pool (Workers wide) and waits for completion.
// Consecutive configs of one profile are grouped into lockstep lane
// batches (RunBatch), so each pool task simulates up to
// batch.DefaultLanes configs over one shared program image. Unlike the
// old per-run goroutine fan-out, at most Workers tasks are in flight at
// any instant regardless of grid size — lanes within a task share its
// goroutine.
func (r *Runner) Prefetch(ps []workload.Profile, cfgs []config.Config) {
	type group struct {
		p    workload.Profile
		cfgs []config.Config
	}
	groups := make([]group, 0, len(ps)*(len(cfgs)/batch.DefaultLanes+1))
	for _, p := range ps {
		for lo := 0; lo < len(cfgs); lo += batch.DefaultLanes {
			groups = append(groups, group{p, cfgs[lo:min(lo+batch.DefaultLanes, len(cfgs))]})
		}
	}
	pool := sweep.NewPool(r.Workers)
	pool.ForEach(context.Background(), len(groups), func(_, i int) {
		n := r.inFlight.Add(1)
		for {
			h := r.maxInFlight.Load()
			if n <= h || r.maxInFlight.CompareAndSwap(h, n) {
				break
			}
		}
		r.RunBatch(groups[i].p, groups[i].cfgs)
		r.inFlight.Add(-1)
	})
}

func simulate(prog *program.Program, cfg config.Config, instr, sampleInterval uint64) RunStats {
	cpu := pipeline.New(cfg, prog)
	var sampler *obs.Sampler
	if sampleInterval > 0 {
		sampler = obs.NewSampler(sampleInterval)
		cpu.Observe(&obs.Observer{Sampler: sampler})
	}
	res := cpu.Run(instr)
	return collect(cpu, cfg, res, sampler)
}

// collect extracts RunStats from a finished CPU. Shared by solo runs and
// batched lanes — a single extraction path is what makes RunBatch's memo
// entries bit-identical to Run's.
func collect(cpu *pipeline.CPU, cfg config.Config, res pipeline.Result, sampler *obs.Sampler) RunStats {
	led := cpu.Engine.Ledger

	out := RunStats{Result: res}
	out.InUse, out.Unused, out.Verified = led.StateFractions()
	out.NonBranch, out.NonExcept, out.Atomic = led.RegionFractions()
	out.GapRedefine, out.GapConsume, out.GapCommit = led.EventGaps()
	if n := led.ConsumerHist.Count(); n > 0 {
		for v := 0; v <= 6; v++ {
			out.ConsumerFrac[v] = led.ConsumerHist.Fraction(v)
		}
		var tail float64
		for v := 0; v <= 6; v++ {
			tail += out.ConsumerFrac[v]
		}
		if tail < 1 {
			out.ConsumerFrac[7] = 1 - tail
		}
	}
	out.ATRReleases = cpu.Engine.Stats.Get("release.atr")
	out.ERReleases = cpu.Engine.Stats.Get("release.er")
	out.CommitReleases = cpu.Engine.Stats.Get("release.commit")
	out.Activity = cpu.Activity()
	out.Power = power.RuntimePower(cfg, out.Activity)
	if sampler != nil {
		out.Samples = sampler.Samples()
	}
	return out
}

// geomean returns the geometric mean of xs (which must be positive). It is
// computed in the log domain (mean of logs) so long lists of large or tiny
// values cannot overflow or underflow the running product; a zero input
// yields 0 (log 0 = -Inf, exp -Inf = 0), matching the product formulation.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
