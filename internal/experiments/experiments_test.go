package experiments

import (
	"io"
	"strings"
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// testRunner keeps experiment tests fast: small instruction budget.
func testRunner() *Runner { return NewRunner(8000) }

func TestRunnerMemoizes(t *testing.T) {
	r := testRunner()
	p, _ := workload.ByName("exchange2")
	cfg := config.GoldenCove().WithPhysRegs(64)
	a := r.Run(p, cfg)
	b := r.Run(p, cfg)
	if a.Result != b.Result || a.Activity != b.Activity {
		t.Error("memoized runs differ")
	}
	if a.Committed == 0 || a.IPC <= 0 {
		t.Errorf("empty run stats: %+v", a.Result)
	}
}

func TestRunnerKeyDistinguishesConfigs(t *testing.T) {
	p, _ := workload.ByName("exchange2")
	a := key(p, config.GoldenCove().WithPhysRegs(64))
	b := key(p, config.GoldenCove().WithPhysRegs(96))
	c := key(p, config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeATR))
	if a == b || a == c {
		t.Error("keys collide across configs")
	}
}

func TestRunStatsPopulated(t *testing.T) {
	r := testRunner()
	p, _ := workload.ByName("omnetpp")
	s := r.Run(p, config.GoldenCove().WithScheme(config.SchemeATR).WithPhysRegs(64))
	if s.Atomic <= 0 {
		t.Error("atomic ratio missing")
	}
	if s.InUse+s.Unused+s.Verified < 0.99 {
		t.Errorf("state split incomplete: %v+%v+%v", s.InUse, s.Unused, s.Verified)
	}
	if s.ATRReleases == 0 {
		t.Error("no ATR releases recorded")
	}
	if s.Power.Total() <= 0 {
		t.Error("power model not evaluated")
	}
	if s.GapCommit < s.GapRedefine {
		t.Error("commit gap must not precede redefine gap")
	}
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := testRunner()
	res := Fig1(r, io.Discard)
	if len(res.Average) != len(RFSizes) {
		t.Fatal("missing sizes")
	}
	// Normalized IPC must be (weakly) increasing in RF size and below ~1.
	if res.Average[0] >= res.Average[len(res.Average)-1] {
		t.Errorf("no register sensitivity: %v", res.Average)
	}
	if res.Avg64Ratio <= 0.1 || res.Avg64Ratio >= 1.0 {
		t.Errorf("64-reg ratio %.3f implausible (paper 0.377)", res.Avg64Ratio)
	}
	for _, v := range res.Average {
		if v > 1.05 {
			t.Errorf("normalized IPC %v exceeds ideal", v)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	r := testRunner()
	res := Fig4(r, io.Discard)
	sum := res.IntInUse + res.IntUnused + res.IntVerified
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("int fractions sum to %v", sum)
	}
	if res.IntInUse <= 0 || res.IntUnused <= 0 {
		t.Error("degenerate state split")
	}
}

func TestFig6Shape(t *testing.T) {
	r := testRunner()
	res := Fig6(r, io.Discard)
	// The paper's headline analysis: a sizeable fraction of allocations is
	// atomic (17% int / 13% fp). Accept a generous band.
	if res.IntAtomic < 0.08 || res.IntAtomic > 0.35 {
		t.Errorf("int atomic ratio %.3f outside band around the paper's 0.17", res.IntAtomic)
	}
	if res.FPAtomic < 0.05 || res.FPAtomic > 0.30 {
		t.Errorf("fp atomic ratio %.3f outside band around the paper's 0.13", res.FPAtomic)
	}
	for name, v := range res.PerBench {
		if v[0] < v[2]-1e-9 || v[1] < v[2]-1e-9 {
			t.Errorf("%s: atomic ratio exceeds its supersets: %v", name, v)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := testRunner()
	res := Fig10(r, io.Discard)
	for _, class := range []string{"int", "fp"} {
		atr64 := res.Avg[64][config.SchemeATR][class]
		er64 := res.Avg[64][config.SchemeNonSpecER][class]
		comb64 := res.Avg[64][config.SchemeCombined][class]
		atr224 := res.Avg[224][config.SchemeATR][class]
		if atr64 <= 0 {
			t.Errorf("%s: ATR speedup at 64 regs = %.2f, want positive", class, atr64)
		}
		if er64 <= atr64 {
			t.Errorf("%s: paper ordering ER(%.2f) > ATR(%.2f) violated", class, er64, atr64)
		}
		if comb64 < er64-1.0 {
			t.Errorf("%s: combined (%.2f) should not trail ER (%.2f)", class, comb64, er64)
		}
		if atr224 >= atr64 {
			t.Errorf("%s: ATR gain must shrink with RF size: %.2f@64 vs %.2f@224", class, atr64, atr224)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := testRunner()
	res := Fig13(r, io.Discard)
	// The paper: a 1-2 cycle delay has negligible effect. Allow 2 points.
	if diff := res.IntAvg[0] - res.IntAvg[2]; diff > 2.5 {
		t.Errorf("delay-2 costs %.2f points, paper says negligible (%v)", diff, res.IntAvg)
	}
}

func TestLogicOutput(t *testing.T) {
	var sb strings.Builder
	res := Logic(&sb)
	if res.Naive.Gates <= res.Balanced.Gates {
		t.Error("naive synthesis should use more gates")
	}
	if !strings.Contains(sb.String(), "2,960 gates") {
		t.Error("missing paper reference in output")
	}
}

func TestGeomeanMean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g != 2 {
		t.Errorf("geomean = %v", g)
	}
	if m := mean([]float64{1, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if geomean(nil) != 0 || mean(nil) != 0 {
		t.Error("empty slices")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := testRunner()
	res := Fig11(r, io.Discard)
	if len(res.IntAvg) != len(RFSizes) || len(res.FPAvg) != len(RFSizes) {
		t.Fatal("missing points")
	}
	// Fig 11's claim: the highest gains are at the smallest file, and the
	// gain at 280 is a small fraction of the gain at 64.
	if res.IntAvg[0] <= res.IntAvg[len(res.IntAvg)-1] {
		t.Errorf("int ATR gain should decay with RF size: %v", res.IntAvg)
	}
}

func TestFig12Shape(t *testing.T) {
	r := testRunner()
	res := Fig12(r, io.Discard)
	if res.AvgMeanConsumed < 0.5 || res.AvgMeanConsumed > 4 {
		t.Errorf("mean consumers over consumed regions = %.2f, paper says 1-2", res.AvgMeanConsumed)
	}
	for name, fr := range res.PerBench {
		sum := 0.0
		for _, v := range fr {
			if v < 0 {
				t.Errorf("%s: negative fraction %v", name, v)
			}
			sum += v
		}
		if sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", name, sum)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	r := testRunner()
	res := Fig14(r, io.Discard)
	for name, g := range res.PerBench {
		redef, consume, commit := g[0], g[1], g[2]
		if commit < redef {
			t.Errorf("%s: commit gap %v before redefine gap %v", name, commit, redef)
		}
		// The paper's Fig 14 headline: redefinition happens quickly;
		// commit of the redefiner is far later.
		if commit < 5*redef && commit > 0 {
			t.Errorf("%s: commit gap %v not much later than redefine %v", name, commit, redef)
		}
		_ = consume
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := testRunner()
	res := Fig15(r, io.Discard)
	for _, s := range config.Schemes() {
		if res.MinRegs[s] < 64 || res.MinRegs[s] > 280 {
			t.Errorf("%v: min regs %d out of range", s, res.MinRegs[s])
		}
	}
	// Early-release schemes must not need more registers than baseline.
	baseMin := res.MinRegs[config.SchemeBaseline]
	for _, s := range []config.ReleaseScheme{config.SchemeNonSpecER, config.SchemeATR, config.SchemeCombined} {
		if res.MinRegs[s] > baseMin {
			t.Errorf("%v needs %d regs, more than baseline's %d", s, res.MinRegs[s], baseMin)
		}
	}
	if res.MinRegs[config.SchemeCombined] > res.MinRegs[config.SchemeATR] {
		t.Error("combined should not need more registers than ATR alone")
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := testRunner()
	res := Ablations(r, io.Discard)
	// §5.4: 3-bit counter within noise of unbounded.
	if d := res.CounterWidth[0] - res.CounterWidth[3]; d > 1.5 {
		t.Errorf("3-bit counter loses %.2f points vs unbounded; paper says negligible", d)
	}
	if res.CounterWidth[2] > res.CounterWidth[3]+1.0 {
		t.Error("2-bit counter should not beat 3-bit")
	}
	// The translate-time precommit rule is what gives nonspec-ER teeth.
	if res.PrecommitConservative > res.PrecommitAggressive {
		t.Error("conservative precommit should not beat aggressive")
	}
	// Recovery styles are cycle-identical.
	if res.WalkRecovery != res.CheckpointRecovery {
		t.Errorf("recovery styles differ: %v vs %v", res.WalkRecovery, res.CheckpointRecovery)
	}
	// §6 composition: ME+ATR at least as good as each alone.
	if res.MoveElimATR < res.ATROnly-0.5 || res.MoveElimATR < res.MoveElimOnly-0.5 {
		t.Errorf("ME+ATR (%.2f) should not trail ATR (%.2f) or ME (%.2f)",
			res.MoveElimATR, res.ATROnly, res.MoveElimOnly)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("everything")
	}
	r := NewRunner(3000) // minimal budget: exercises every code path
	var sb strings.Builder
	All(r, &sb)
	out := sb.String()
	for _, want := range []string{"Figure 1", "Figure 4", "Figure 6", "Figure 10",
		"Figure 11", "Figure 12", "Figure 13", "Figure 14", "Figure 15",
		"Section 4.4", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("All output missing %q", want)
		}
	}
}
