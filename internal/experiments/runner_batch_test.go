package experiments

import (
	"reflect"
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// TestRunBatchMatchesRun is the runner-level batching oracle: RunBatch
// must fill the memo cache with exactly the stats Run computes solo —
// same Result, same ledger-derived figures, same power model — and the
// two entry points must interoperate on one cache in either order.
func TestRunBatchMatchesRun(t *testing.T) {
	p := workload.Profiles()[2]
	cfgs := []config.Config{
		config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeATR),
		config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeCombined),
		config.GoldenCove().WithPhysRegs(128).WithScheme(config.SchemeATR),
		config.GoldenCove().WithPhysRegs(224).WithScheme(config.SchemeBaseline),
	}

	solo := NewRunner(2000)
	want := make([]RunStats, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = solo.Run(p, cfg)
	}

	batched := NewRunner(2000)
	got := batched.RunBatch(p, cfgs)
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cfg %d: RunBatch stats diverge from Run\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if runs, _, _ := batched.Totals(); runs != len(cfgs) {
		t.Errorf("RunBatch accounted %d unique runs, want %d", runs, len(cfgs))
	}

	// Batched entries serve later solo lookups from the memo...
	for i, cfg := range cfgs {
		if again := batched.Run(p, cfg); !reflect.DeepEqual(again, want[i]) {
			t.Errorf("cfg %d: post-batch Run differs from solo", i)
		}
	}
	if runs, _, _ := batched.Totals(); runs != len(cfgs) {
		t.Errorf("post-batch Runs re-simulated: %d unique runs, want %d", runs, len(cfgs))
	}

	// ...and a batch over a partially-resident cache only occupies lanes
	// for the misses.
	mixed := NewRunner(2000)
	mixed.Run(p, cfgs[1])
	mixed.Run(p, cfgs[3])
	res := mixed.RunBatch(p, cfgs)
	for i := range cfgs {
		if !reflect.DeepEqual(res[i], want[i]) {
			t.Errorf("cfg %d: partial-cache RunBatch differs from solo", i)
		}
	}
	if runs, _, _ := mixed.Totals(); runs != len(cfgs) {
		t.Errorf("partial-cache path executed %d unique runs, want %d", runs, len(cfgs))
	}
	if hits, _, _ := mixed.CacheStats(); hits != 2 {
		t.Errorf("partial-cache RunBatch memo hits = %d, want 2", hits)
	}
}
