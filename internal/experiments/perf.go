package experiments

import (
	"time"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/workload"
)

// Throughput summarizes the wall-clock performance of a serial simulation
// sweep: how fast the simulator itself runs, as opposed to what it models.
type Throughput struct {
	Runs   int     // simulations executed
	Instr  uint64  // instructions committed, summed over runs
	Cycles uint64  // cycles simulated, summed over runs
	Wall   float64 // wall-clock seconds for the whole sweep
}

// CyclesPerSec returns simulated cycles per wall-clock second.
func (t Throughput) CyclesPerSec() float64 {
	if t.Wall == 0 {
		return 0
	}
	return float64(t.Cycles) / t.Wall
}

// InstrPerSec returns committed instructions per wall-clock second.
func (t Throughput) InstrPerSec() float64 {
	if t.Wall == 0 {
		return 0
	}
	return float64(t.Instr) / t.Wall
}

// SchedulerSweep executes the Figure 10 sweep grid — every benchmark profile
// at both RF sizes under every release scheme, on the ROB-512 Golden Cove
// configuration — serially with the given scheduler implementation, and
// returns the aggregate simulator throughput. Serial execution keeps the
// comparison between scheduler implementations free of parallel-scheduling
// noise; instr is the per-run instruction budget.
func SchedulerSweep(kind pipeline.SchedulerKind, instr uint64) Throughput {
	var t Throughput
	start := time.Now()
	for _, p := range workload.Profiles() {
		prog := p.Generate()
		for _, n := range []int{64, 224} {
			for _, s := range config.Schemes() {
				cfg := base().WithPhysRegs(n).WithScheme(s)
				res := pipeline.NewWithScheduler(cfg, prog, kind).Run(instr)
				t.Runs++
				t.Instr += res.Committed
				t.Cycles += res.Cycles
			}
		}
	}
	t.Wall = time.Since(start).Seconds()
	return t
}
