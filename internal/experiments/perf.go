package experiments

import (
	"context"
	"time"

	"atr/internal/pipeline"
	"atr/internal/sweep"
)

// Throughput summarizes the wall-clock performance of a serial simulation
// sweep: how fast the simulator itself runs, as opposed to what it models.
type Throughput struct {
	Runs   int     // simulations executed
	Instr  uint64  // instructions committed, summed over runs
	Cycles uint64  // cycles simulated, summed over runs
	Wall   float64 // wall-clock seconds for the whole sweep
}

// CyclesPerSec returns simulated cycles per wall-clock second.
func (t Throughput) CyclesPerSec() float64 {
	if t.Wall == 0 {
		return 0
	}
	return float64(t.Cycles) / t.Wall
}

// InstrPerSec returns committed instructions per wall-clock second.
func (t Throughput) InstrPerSec() float64 {
	if t.Wall == 0 {
		return 0
	}
	return float64(t.Instr) / t.Wall
}

// SchedulerSweep executes the Figure 10 sweep grid — every benchmark profile
// at both RF sizes under every release scheme, on the ROB-512 Golden Cove
// configuration — through the sweep engine pinned to one worker with the
// given scheduler implementation, and returns the aggregate simulator
// throughput. Serial execution keeps the comparison between scheduler
// implementations free of parallel-scheduling noise; instr is the per-run
// instruction budget. Lockstep batching is left at its default (auto), so
// this measures the engine's production configuration: units sharing a
// profile run as lanes over one program image.
func SchedulerSweep(kind pipeline.SchedulerKind, instr uint64) Throughput {
	return SchedulerSweepBatch(kind, instr, 0)
}

// SchedulerSweepBatch is SchedulerSweep with an explicit lockstep lane cap
// (0 auto, 1 off) — the K axis of BenchmarkBatchedSweep.
func SchedulerSweepBatch(kind pipeline.SchedulerKind, instr uint64, batchK int) Throughput {
	g := sweep.Fig10Grid(instr)
	run, runBatch := sweep.SimPairScheduler(kind, g.Instr)
	eng := sweep.New(sweep.Options{Workers: 1, Batch: batchK, BatchRun: runBatch})
	start := time.Now()
	m, err := eng.Execute(context.Background(), g, run)
	if err != nil {
		return Throughput{}
	}
	return Throughput{
		Runs:   m.Totals.Done + m.Totals.Failed,
		Instr:  m.Totals.Committed,
		Cycles: m.Totals.Cycles,
		Wall:   time.Since(start).Seconds(),
	}
}
