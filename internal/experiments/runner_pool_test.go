package experiments

import (
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// TestPrefetchWorkerBound is the regression test for the old unbounded
// goroutine fan-out: a full 23-profile × 8-config prefetch (the Fig 1/11
// grid shape) must never have more than Workers tasks in flight at once
// (a task is one lockstep lane group since the batched executor landed).
// The high-water mark is tracked atomically inside Prefetch itself.
func TestPrefetchWorkerBound(t *testing.T) {
	const workers = 4
	r := NewRunner(300)
	r.Workers = workers

	profiles := workload.Profiles()
	if len(profiles) != 23 {
		t.Fatalf("profile set has %d entries, want 23", len(profiles))
	}
	cfgs := make([]config.Config, len(RFSizes))
	for i, s := range RFSizes {
		cfgs[i] = config.GoldenCove().WithPhysRegs(s)
	}

	r.Prefetch(profiles, cfgs)

	runs, _, _ := r.Totals()
	if want := len(profiles) * len(cfgs); runs != want {
		t.Errorf("prefetch executed %d unique runs, want %d", runs, want)
	}
	high := r.maxInFlight.Load()
	if high < 1 || high > workers {
		t.Errorf("in-flight high-water mark = %d, want in [1, %d]", high, workers)
	}
	if left := r.inFlight.Load(); left != 0 {
		t.Errorf("%d runs still counted in flight after Prefetch returned", left)
	}
}
