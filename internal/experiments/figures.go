package experiments

import (
	"fmt"
	"io"

	"atr/internal/config"
	"atr/internal/logicsim"
	"atr/internal/power"
	"atr/internal/workload"
)

// RFSizes is the register-file sweep axis used by Figs 1 and 11.
var RFSizes = []int{64, 96, 128, 160, 192, 224, 256, 280}

func base() config.Config { return config.GoldenCove() }

// ---------------------------------------------------------------- Figure 1

// Fig1Result holds the normalized-IPC-vs-RF-size curve.
type Fig1Result struct {
	Sizes      []int
	PerBench   map[string][]float64 // normalized IPC per size
	Average    []float64
	IdealIPC   map[string]float64
	Avg64Ratio float64 // paper: 0.377 at 64 registers
}

// Fig1 reproduces Figure 1: baseline IPC across register file sizes on the
// integer suite, normalized to an infinite register file.
func Fig1(r *Runner, w io.Writer) Fig1Result {
	profiles := workload.IntProfiles()
	cfgs := []config.Config{base().WithPhysRegs(0)}
	for _, s := range RFSizes {
		cfgs = append(cfgs, base().WithPhysRegs(s))
	}
	r.Prefetch(profiles, cfgs)

	res := Fig1Result{Sizes: RFSizes, PerBench: map[string][]float64{}, IdealIPC: map[string]float64{}}
	fmt.Fprintf(w, "Figure 1: normalized IPC vs register file size (baseline, SPECint-like)\n")
	fmt.Fprintf(w, "%-11s", "bench")
	for _, s := range RFSizes {
		fmt.Fprintf(w, "%8d", s)
	}
	fmt.Fprintf(w, "%8s\n", "inf-IPC")
	for _, p := range profiles {
		ideal := r.Run(p, base().WithPhysRegs(0)).IPC
		res.IdealIPC[p.Name] = ideal
		row := make([]float64, len(RFSizes))
		fmt.Fprintf(w, "%-11s", p.Name)
		for i, s := range RFSizes {
			ipc := r.Run(p, base().WithPhysRegs(s)).IPC
			row[i] = ipc / ideal
			fmt.Fprintf(w, "%8.3f", row[i])
		}
		fmt.Fprintf(w, "%8.3f\n", ideal)
		res.PerBench[p.Name] = row
	}
	res.Average = make([]float64, len(RFSizes))
	fmt.Fprintf(w, "%-11s", "average")
	for i := range RFSizes {
		var col []float64
		for _, p := range profiles {
			col = append(col, res.PerBench[p.Name][i])
		}
		res.Average[i] = mean(col)
		fmt.Fprintf(w, "%8.3f", res.Average[i])
	}
	fmt.Fprintln(w)
	res.Avg64Ratio = res.Average[0]
	fmt.Fprintf(w, "average at 64 regs: %.3f of ideal (paper: 0.377)\n\n", res.Avg64Ratio)
	return res
}

// ---------------------------------------------------------------- Figure 4

// Fig4Result is the register lifecycle split per suite.
type Fig4Result struct {
	IntInUse, IntUnused, IntVerified float64
	FPInUse, FPUnused, FPVerified    float64
}

// Fig4 reproduces Figure 4: the cycle-count distribution across register
// lifecycle states, averaged over each suite (baseline configuration).
func Fig4(r *Runner, w io.Writer) Fig4Result {
	cfg := base()
	r.Prefetch(workload.Profiles(), []config.Config{cfg})
	agg := func(ps []workload.Profile) (iu, un, vu float64) {
		var a, b, c []float64
		for _, p := range ps {
			s := r.Run(p, cfg)
			a = append(a, s.InUse)
			b = append(b, s.Unused)
			c = append(c, s.Verified)
		}
		return mean(a), mean(b), mean(c)
	}
	var res Fig4Result
	res.IntInUse, res.IntUnused, res.IntVerified = agg(workload.IntProfiles())
	res.FPInUse, res.FPUnused, res.FPVerified = agg(workload.FPProfiles())
	fmt.Fprintf(w, "Figure 4: register lifecycle state split (baseline, %d regs)\n", cfg.PhysRegs)
	fmt.Fprintf(w, "%-10s %-10s %-10s %-16s\n", "suite", "in-use", "unused", "verified-unused")
	fmt.Fprintf(w, "%-10s %-10.1f %-10.1f %-16.1f  (paper: 53.5 / 41.0 / 5.1)\n",
		"int", 100*res.IntInUse, 100*res.IntUnused, 100*res.IntVerified)
	fmt.Fprintf(w, "%-10s %-10.1f %-10.1f %-16.1f  (paper: 78.3 / 18.9 / 2.8)\n\n",
		"fp", 100*res.FPInUse, 100*res.FPUnused, 100*res.FPVerified)
	return res
}

// ---------------------------------------------------------------- Figure 6

// Fig6Result is the per-benchmark atomic register ratio.
type Fig6Result struct {
	PerBench  map[string][3]float64 // non-branch, non-except, atomic
	IntAtomic float64
	FPAtomic  float64
}

// Fig6 reproduces Figure 6: the fraction of allocated registers whose
// rename-to-redefine window is non-branch, non-except, and atomic.
func Fig6(r *Runner, w io.Writer) Fig6Result {
	cfg := base()
	r.Prefetch(workload.Profiles(), []config.Config{cfg})
	res := Fig6Result{PerBench: map[string][3]float64{}}
	fmt.Fprintf(w, "Figure 6: atomic register ratio\n")
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "bench", "non-branch", "non-except", "atomic")
	var intA, fpA []float64
	for _, p := range workload.Profiles() {
		s := r.Run(p, cfg)
		res.PerBench[p.Name] = [3]float64{s.NonBranch, s.NonExcept, s.Atomic}
		fmt.Fprintf(w, "%-12s %10.1f %10.1f %10.1f\n", p.Name, 100*s.NonBranch, 100*s.NonExcept, 100*s.Atomic)
		if p.Class == "int" {
			intA = append(intA, s.Atomic)
		} else {
			fpA = append(fpA, s.Atomic)
		}
	}
	res.IntAtomic = mean(intA)
	res.FPAtomic = mean(fpA)
	fmt.Fprintf(w, "%-12s %32.1f  (paper: 17.0)\n", "int average", 100*res.IntAtomic)
	fmt.Fprintf(w, "%-12s %32.1f  (paper: 13.1)\n\n", "fp average", 100*res.FPAtomic)
	return res
}

// --------------------------------------------------------------- Figure 10

// Fig10Result holds the per-benchmark speedups at the two RF sizes.
type Fig10Result struct {
	// Speedups[regs][scheme][bench] as IPC ratio over baseline.
	Speedups map[int]map[config.ReleaseScheme]map[string]float64
	// Suite averages: Avg[regs][scheme][class].
	Avg map[int]map[config.ReleaseScheme]map[string]float64
}

// Fig10 reproduces Figure 10: IPC speedup of nonspec-ER, ATR, and the
// combined scheme over the baseline with 64 and 224 physical registers.
func Fig10(r *Runner, w io.Writer) Fig10Result {
	regs := []int{64, 224}
	var cfgs []config.Config
	for _, n := range regs {
		for _, s := range config.Schemes() {
			cfgs = append(cfgs, base().WithPhysRegs(n).WithScheme(s))
		}
	}
	r.Prefetch(workload.Profiles(), cfgs)

	res := Fig10Result{
		Speedups: map[int]map[config.ReleaseScheme]map[string]float64{},
		Avg:      map[int]map[config.ReleaseScheme]map[string]float64{},
	}
	paperAvg := map[int]map[config.ReleaseScheme]map[string]float64{
		64:  {config.SchemeNonSpecER: {"int": 13.91, "fp": 14.43}, config.SchemeATR: {"int": 5.70, "fp": 4.69}},
		224: {config.SchemeATR: {"int": 1.48, "fp": 1.11}},
	}
	for _, n := range regs {
		res.Speedups[n] = map[config.ReleaseScheme]map[string]float64{}
		res.Avg[n] = map[config.ReleaseScheme]map[string]float64{}
		fmt.Fprintf(w, "Figure 10: IPC speedup over baseline, %d physical registers (%%)\n", n)
		fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "bench", "nonspec-er", "atomic", "combined")
		schemes := []config.ReleaseScheme{config.SchemeNonSpecER, config.SchemeATR, config.SchemeCombined}
		for _, s := range schemes {
			res.Speedups[n][s] = map[string]float64{}
			res.Avg[n][s] = map[string]float64{}
		}
		for _, p := range workload.Profiles() {
			baseIPC := r.Run(p, base().WithPhysRegs(n)).IPC
			fmt.Fprintf(w, "%-12s", p.Name)
			for _, s := range schemes {
				sp := r.Run(p, base().WithPhysRegs(n).WithScheme(s)).IPC / baseIPC
				res.Speedups[n][s][p.Name] = sp
				fmt.Fprintf(w, "%10.2f", 100*(sp-1))
			}
			fmt.Fprintln(w)
		}
		for _, class := range []string{"int", "fp"} {
			fmt.Fprintf(w, "%-12s", class+" avg")
			for _, s := range schemes {
				var xs []float64
				for _, p := range workload.Profiles() {
					if p.Class == class {
						xs = append(xs, res.Speedups[n][s][p.Name])
					}
				}
				avg := geomean(xs)
				res.Avg[n][s][class] = 100 * (avg - 1)
				note := ""
				if pv, ok := paperAvg[n][s][class]; ok {
					note = fmt.Sprintf(" (paper %.2f)", pv)
				}
				fmt.Fprintf(w, "%10.2f%s", 100*(avg-1), note)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return res
}

// --------------------------------------------------------------- Figure 11

// Fig11Result is the ATR speedup across RF sizes.
type Fig11Result struct {
	Sizes  []int
	IntAvg []float64 // percent speedup
	FPAvg  []float64
}

// Fig11 reproduces Figure 11: the atomic scheme's speedup over baseline as
// the register file grows from 64 to 280 entries.
func Fig11(r *Runner, w io.Writer) Fig11Result {
	var cfgs []config.Config
	for _, n := range RFSizes {
		cfgs = append(cfgs,
			base().WithPhysRegs(n),
			base().WithPhysRegs(n).WithScheme(config.SchemeATR))
	}
	r.Prefetch(workload.Profiles(), cfgs)
	res := Fig11Result{Sizes: RFSizes}
	fmt.Fprintf(w, "Figure 11: ATR speedup over baseline vs RF size (%%)\n%-8s", "size")
	for _, n := range RFSizes {
		fmt.Fprintf(w, "%8d", n)
	}
	fmt.Fprintln(w)
	for _, class := range []string{"int", "fp"} {
		fmt.Fprintf(w, "%-8s", class)
		for _, n := range RFSizes {
			var xs []float64
			for _, p := range workload.Profiles() {
				if p.Class != class {
					continue
				}
				b := r.Run(p, base().WithPhysRegs(n)).IPC
				a := r.Run(p, base().WithPhysRegs(n).WithScheme(config.SchemeATR)).IPC
				xs = append(xs, a/b)
			}
			v := 100 * (geomean(xs) - 1)
			if class == "int" {
				res.IntAvg = append(res.IntAvg, v)
			} else {
				res.FPAvg = append(res.FPAvg, v)
			}
			fmt.Fprintf(w, "%8.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(paper: int 5.70%%@64 decaying to 0.93%%@280; fp 4.69%%@64 to 0.53%%@280)\n\n")
	return res
}

// --------------------------------------------------------------- Figure 12

// Fig12Result is the consumer-count distribution per benchmark.
type Fig12Result struct {
	PerBench map[string][8]float64
	AvgMean  float64
	// AvgMeanConsumed averages only over regions with at least one
	// consumer (never-read flag definitions dominate the zero bucket in
	// x86-style code and are uninteresting for counter sizing).
	AvgMeanConsumed float64
}

// Fig12 reproduces Figure 12: the distribution of consumers per atomic
// region under ATR.
func Fig12(r *Runner, w io.Writer) Fig12Result {
	cfg := base().WithScheme(config.SchemeATR)
	r.Prefetch(workload.Profiles(), []config.Config{cfg})
	res := Fig12Result{PerBench: map[string][8]float64{}}
	fmt.Fprintf(w, "Figure 12: consumers per atomic region (%% of regions)\n")
	fmt.Fprintf(w, "%-12s %6s %6s %6s %6s %6s %6s %6s %6s %6s %7s\n",
		"bench", "0", "1", "2", "3", "4", "5", "6", "7+", "mean", "mean>0")
	var means, meansNZ []float64
	for _, p := range workload.Profiles() {
		s := r.Run(p, cfg)
		res.PerBench[p.Name] = s.ConsumerFrac
		m := 0.0
		for v := 0; v <= 6; v++ {
			m += float64(v) * s.ConsumerFrac[v]
		}
		mnz := m
		if nz := 1 - s.ConsumerFrac[0]; nz > 1e-9 {
			mnz = m / nz
		}
		means = append(means, m)
		meansNZ = append(meansNZ, mnz)
		fmt.Fprintf(w, "%-12s", p.Name)
		for v := 0; v < 8; v++ {
			fmt.Fprintf(w, "%6.1f", 100*s.ConsumerFrac[v])
		}
		fmt.Fprintf(w, "%6.2f %7.2f\n", m, mnz)
	}
	res.AvgMean = mean(means)
	res.AvgMeanConsumed = mean(meansNZ)
	fmt.Fprintf(w, "average consumers per region: %.2f all, %.2f over consumed regions\n", res.AvgMean, res.AvgMeanConsumed)
	fmt.Fprintf(w, "(paper: mostly 1-2 consumers; namd up to 5; zero bucket is never-read flag writes)\n\n")
	return res
}

// --------------------------------------------------------------- Figure 13

// Fig13Result is the redefine-pipeline-delay sensitivity.
type Fig13Result struct {
	Delays []int
	IntAvg []float64 // ATR speedup (%) at 64 regs per delay
}

// Fig13 reproduces Figure 13: the effect of pipelining the register
// redefinition logic by 0, 1, or 2 cycles on the atomic scheme.
func Fig13(r *Runner, w io.Writer) Fig13Result {
	delays := []int{0, 1, 2}
	var cfgs []config.Config
	for _, d := range delays {
		cfg := base().WithPhysRegs(64).WithScheme(config.SchemeATR)
		cfg.RedefineDelay = d
		cfgs = append(cfgs, cfg)
	}
	cfgs = append(cfgs, base().WithPhysRegs(64))
	r.Prefetch(workload.IntProfiles(), cfgs)

	res := Fig13Result{Delays: delays}
	fmt.Fprintf(w, "Figure 13: ATR speedup at 64 regs with pipelined redefinition (%%)\n")
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "", "delay 0", "delay 1", "delay 2")
	fmt.Fprintf(w, "%-8s", "int")
	for _, d := range delays {
		var xs []float64
		for _, p := range workload.IntProfiles() {
			b := r.Run(p, base().WithPhysRegs(64)).IPC
			cfg := base().WithPhysRegs(64).WithScheme(config.SchemeATR)
			cfg.RedefineDelay = d
			xs = append(xs, r.Run(p, cfg).IPC/b)
		}
		v := 100 * (geomean(xs) - 1)
		res.IntAvg = append(res.IntAvg, v)
		fmt.Fprintf(w, "%8.2f", v)
	}
	fmt.Fprintf(w, "\n(paper: delay of 1-2 cycles has negligible effect)\n\n")
	return res
}

// --------------------------------------------------------------- Figure 14

// Fig14Result is the average event gaps within atomic regions.
type Fig14Result struct {
	PerBench map[string][3]float64 // redefine, consume, commit
}

// Fig14 reproduces Figure 14: average cycles between a register's rename and
// its redefinition, last consumption, and the redefiner's commit, within
// atomic regions.
func Fig14(r *Runner, w io.Writer) Fig14Result {
	cfg := base().WithScheme(config.SchemeATR)
	r.Prefetch(workload.IntProfiles(), []config.Config{cfg})
	res := Fig14Result{PerBench: map[string][3]float64{}}
	fmt.Fprintf(w, "Figure 14: cycles from rename to {redefine, last consume, redefiner commit}\n")
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "bench", "redefine", "consume", "commit")
	for _, p := range workload.IntProfiles() {
		s := r.Run(p, cfg)
		res.PerBench[p.Name] = [3]float64{s.GapRedefine, s.GapConsume, s.GapCommit}
		fmt.Fprintf(w, "%-12s %10.1f %10.1f %10.1f\n", p.Name, s.GapRedefine, s.GapConsume, s.GapCommit)
	}
	fmt.Fprintf(w, "(paper: redefinition happens well before consumption; commit much later)\n\n")
	return res
}

// --------------------------------------------------------------- Figure 15

// Fig15Result is the overhead-optimization study.
type Fig15Result struct {
	// MinRegs[scheme] is the smallest swept RF size keeping average IPC
	// within 3%% of the 280-register baseline.
	MinRegs map[config.ReleaseScheme]int
	// Reduction[scheme] is the relative RF size reduction vs 280.
	Reduction map[config.ReleaseScheme]float64
	// PowerSave/AreaSave vs the 280-register baseline, for the ATR and
	// combined schemes at their minimal sizes.
	PowerSave map[config.ReleaseScheme]float64
	AreaSave  map[config.ReleaseScheme]float64
}

// Fig15 reproduces Figure 15: the smallest register file each scheme needs
// to stay within 3% of the 280-register baseline, and the McPAT-style power
// and area savings that shrink affords.
func Fig15(r *Runner, w io.Writer) Fig15Result {
	sweep := []int{140, 156, 172, 188, 204, 220, 236, 252, 264, 280}
	profiles := workload.Profiles()
	var cfgs []config.Config
	for _, s := range config.Schemes() {
		for _, n := range sweep {
			cfgs = append(cfgs, base().WithPhysRegs(n).WithScheme(s))
		}
	}
	r.Prefetch(profiles, cfgs)

	// Reference: baseline at 280.
	refIPC := map[string]float64{}
	for _, p := range profiles {
		refIPC[p.Name] = r.Run(p, base().WithPhysRegs(280)).IPC
	}
	avgRatio := func(s config.ReleaseScheme, n int) float64 {
		var xs []float64
		for _, p := range profiles {
			xs = append(xs, r.Run(p, base().WithPhysRegs(n).WithScheme(s)).IPC/refIPC[p.Name])
		}
		return geomean(xs)
	}
	res := Fig15Result{
		MinRegs:   map[config.ReleaseScheme]int{},
		Reduction: map[config.ReleaseScheme]float64{},
		PowerSave: map[config.ReleaseScheme]float64{},
		AreaSave:  map[config.ReleaseScheme]float64{},
	}
	fmt.Fprintf(w, "Figure 15: smallest RF within 3%% of the 280-reg baseline\n")
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s\n", "scheme", "regs", "reduction", "power-save", "area-save")
	paper := map[config.ReleaseScheme][2]float64{
		config.SchemeATR:       {204, 27.1},
		config.SchemeNonSpecER: {212, 24.3},
		config.SchemeCombined:  {196, 30.0},
	}
	for _, s := range config.Schemes() {
		minRegs := 280
		for _, n := range sweep {
			if avgRatio(s, n) >= 0.97 {
				minRegs = n
				break
			}
		}
		res.MinRegs[s] = minRegs
		res.Reduction[s] = 1 - float64(minRegs)/280

		// Power/area at the minimal configuration vs the reference.
		var refPow, minPow float64
		for _, p := range profiles {
			refPow += r.Run(p, base().WithPhysRegs(280)).Power.Total()
			minPow += r.Run(p, base().WithPhysRegs(minRegs).WithScheme(s)).Power.Total()
		}
		res.PowerSave[s] = 1 - minPow/refPow
		refArea := areaTotal(base().WithPhysRegs(280))
		minArea := areaTotal(base().WithPhysRegs(minRegs))
		res.AreaSave[s] = 1 - minArea/refArea

		note := ""
		if pv, ok := paper[s]; ok {
			note = fmt.Sprintf("  (paper: %d regs, %.1f%%)", int(pv[0]), pv[1])
		}
		fmt.Fprintf(w, "%-12s %8d %9.1f%% %9.1f%% %9.1f%%%s\n", s, minRegs,
			100*res.Reduction[s], 100*res.PowerSave[s], 100*res.AreaSave[s], note)
	}
	fmt.Fprintf(w, "(paper: atomic saves 5.5%% power / 2.7%% area; combined 5.5%% / 2.9%%)\n\n")
	return res
}

// ------------------------------------------------------------- §4.4 logic

// LogicResult is the §4.4 synthesis comparison.
type LogicResult struct {
	Naive    logicsim.Synthesis
	Balanced logicsim.Synthesis
}

// Logic reproduces the §4.4 hardware-cost analysis of the bulk
// no-early-release marking logic for an 8-wide x86-like design.
func Logic(w io.Writer) LogicResult {
	res := LogicResult{
		Naive:    logicsim.BuildBulkMarkNaive(8, 16).Synthesize(3),
		Balanced: logicsim.BuildBulkMark(8, 16).Synthesize(3),
	}
	fmt.Fprintf(w, "Section 4.4: bulk no-early-release logic synthesis (8-wide, 16 arch regs)\n")
	fmt.Fprintf(w, "naive (synthesis-like): %v\n", res.Naive)
	fmt.Fprintf(w, "balanced trees:         %v\n", res.Balanced)
	fmt.Fprintf(w, "(paper: 2,960 gates, 42 levels, 2.6 GHz; pipelined beyond 4 GHz)\n\n")
	return res
}

// All runs every experiment in figure order, then the ablation studies.
func All(r *Runner, w io.Writer) {
	Fig1(r, w)
	Fig4(r, w)
	Fig6(r, w)
	Fig10(r, w)
	Fig11(r, w)
	Fig12(r, w)
	Fig13(r, w)
	Fig14(r, w)
	Fig15(r, w)
	Logic(w)
	Ablations(r, w)
}

// areaTotal is a helper over the power model.
func areaTotal(cfg config.Config) float64 {
	return power.CoreArea(cfg).Total()
}
