package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// lruConfigs returns n distinct configs (distinct register-file sizes).
func lruConfigs(n int) []config.Config {
	cfgs := make([]config.Config, n)
	for i := range cfgs {
		cfgs[i] = config.GoldenCove().WithPhysRegs(64 + 8*i)
	}
	return cfgs
}

// TestRunnerCacheHitEvict pins the LRU contract: repeats hit, the resident
// set never exceeds the cap, and the least-recently-used entry is the one
// that gets evicted (its re-run is a miss that re-executes).
func TestRunnerCacheHitEvict(t *testing.T) {
	p := workload.Micro(7)
	cfgs := lruConfigs(3)
	r := NewRunner(1200)
	r.CacheCap = 2

	a, b, c := cfgs[0], cfgs[1], cfgs[2]
	r.Run(p, a) // miss: {a}
	r.Run(p, b) // miss: {b, a}
	if hits, ev, size := r.CacheStats(); hits != 0 || ev != 0 || size != 2 {
		t.Fatalf("after 2 misses: hits=%d evictions=%d size=%d, want 0/0/2", hits, ev, size)
	}
	r.Run(p, a) // hit, refreshes a: {a, b}
	if hits, _, _ := r.CacheStats(); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	r.Run(p, c) // miss, evicts b (LRU): {c, a}
	if hits, ev, size := r.CacheStats(); hits != 1 || ev != 1 || size != 2 {
		t.Fatalf("after eviction: hits=%d evictions=%d size=%d, want 1/1/2", hits, ev, size)
	}
	r.Run(p, a) // still resident: hit
	if hits, _, _ := r.CacheStats(); hits != 2 {
		t.Fatalf("hits = %d, want 2 (a must have survived)", hits)
	}
	r.Run(p, b) // b was evicted: miss that re-executes, evicting c
	runs, _, _ := r.Totals()
	if runs != 4 {
		t.Fatalf("unique executions = %d, want 4 (a, b, c, and b again)", runs)
	}
	if _, ev, size := r.CacheStats(); ev != 2 || size != 2 {
		t.Fatalf("final evictions=%d size=%d, want 2/2", ev, size)
	}
}

// TestRunnerCappedMatchesUncapped is the correctness half of the satellite:
// a cap small enough to thrash (1 entry for 5 configs revisited twice)
// changes how often simulations execute, never what they return.
func TestRunnerCappedMatchesUncapped(t *testing.T) {
	p := workload.Micro(11)
	cfgs := lruConfigs(5)

	uncapped := NewRunner(1500)
	capped := NewRunner(1500)
	capped.CacheCap = 1

	for pass := 0; pass < 2; pass++ {
		for i, cfg := range cfgs {
			want := uncapped.Run(p, cfg)
			got := capped.Run(p, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d cfg %d: capped result differs from uncapped", pass, i)
			}
		}
	}
	uruns, _, _ := uncapped.Totals()
	cruns, _, _ := capped.Totals()
	if uruns != len(cfgs) {
		t.Errorf("uncapped executed %d runs, want %d (second pass all hits)", uruns, len(cfgs))
	}
	if cruns != 2*len(cfgs) {
		t.Errorf("capped executed %d runs, want %d (cap 1 thrashes every revisit)", cruns, 2*len(cfgs))
	}
	if _, _, size := capped.CacheStats(); size != 1 {
		t.Errorf("capped resident size = %d, want 1", size)
	}
}

// TestRunnerProgramCacheBounded proves the program cache obeys the same cap
// and that regenerated programs are identical images (generation is a pure
// function of the profile).
func TestRunnerProgramCacheBounded(t *testing.T) {
	r := NewRunner(1000)
	r.CacheCap = 2
	var ps []workload.Profile
	for i := 0; i < 4; i++ {
		p := workload.Micro(uint64(20 + i))
		p.Name = fmt.Sprintf("lru-prog-%d", i)
		ps = append(ps, p)
	}
	first := r.Program(ps[0])
	for _, p := range ps {
		r.Program(p)
	}
	// ps[0] was evicted by ps[2]; a fresh request regenerates, yielding a
	// distinct pointer but an identical image.
	again := r.Program(ps[0])
	if first == again {
		t.Fatalf("program for %s not evicted under cap 2", ps[0].Name)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("regenerated program for %s differs from original", ps[0].Name)
	}
	// A profile still under the cap keeps its pointer identity.
	p3 := r.Program(ps[3])
	if r.Program(ps[3]) != p3 {
		t.Fatalf("resident program lost pointer identity")
	}
}
