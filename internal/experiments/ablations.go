package experiments

import (
	"fmt"
	"io"

	"atr/internal/config"
	"atr/internal/workload"
)

// AblationResult holds the design-choice sensitivity studies that back the
// paper's §5.4 discussion and this reproduction's own modeling decisions.
type AblationResult struct {
	// CounterWidth[bits] is the int-average ATR speedup (%) at 64
	// registers for the given consumer counter width (0 = unbounded).
	CounterWidth map[int]float64
	// PrecommitConservative is the int-average nonspec-ER speedup (%) at
	// 64 registers when loads/stores block precommit until completion
	// (vs the paper's translate-time rule reported in Fig 10).
	PrecommitConservative float64
	PrecommitAggressive   float64
	// WalkRecovery is the int-average combined-scheme speedup (%) at 64
	// registers under walk-based SRT recovery (vs checkpoints).
	WalkRecovery       float64
	CheckpointRecovery float64
	// Move elimination (§6): alone, and composed with ATR.
	MoveElimOnly float64
	MoveElimATR  float64
	ATROnly      float64
}

// Ablations runs the design-choice studies on the integer suite.
func Ablations(r *Runner, w io.Writer) AblationResult {
	profiles := workload.IntProfiles()
	res := AblationResult{CounterWidth: map[int]float64{}}

	speedup := func(mut func(*config.Config)) float64 {
		var xs []float64
		for _, p := range profiles {
			b := r.Run(p, base().WithPhysRegs(64)).IPC
			cfg := base().WithPhysRegs(64)
			mut(&cfg)
			xs = append(xs, r.Run(p, cfg).IPC/b)
		}
		return 100 * (geomean(xs) - 1)
	}

	fmt.Fprintf(w, "Ablation: consumer counter width (ATR speedup at 64 regs, int avg %%)\n")
	fmt.Fprintf(w, "%-10s", "bits")
	for _, bits := range []int{2, 3, 4, 0} {
		label := fmt.Sprintf("%d", bits)
		if bits == 0 {
			label = "inf"
		}
		fmt.Fprintf(w, "%8s", label)
	}
	fmt.Fprintf(w, "\n%-10s", "speedup")
	for _, bits := range []int{2, 3, 4, 0} {
		bits := bits
		v := speedup(func(c *config.Config) {
			c.Scheme = config.SchemeATR
			c.ConsumerCounterBits = bits
		})
		res.CounterWidth[bits] = v
		fmt.Fprintf(w, "%8.2f", v)
	}
	fmt.Fprintf(w, "\n(paper §5.4: a 3-bit counter is indistinguishable from an infinite one)\n\n")

	res.PrecommitAggressive = speedup(func(c *config.Config) {
		c.Scheme = config.SchemeNonSpecER
	})
	res.PrecommitConservative = speedup(func(c *config.Config) {
		c.Scheme = config.SchemeNonSpecER
		c.MemPrecommitAtExec = false
	})
	fmt.Fprintf(w, "Ablation: memory precommit point (nonspec-ER speedup at 64 regs, int avg %%)\n")
	fmt.Fprintf(w, "translate-time (paper, Fig 5): %6.2f\n", res.PrecommitAggressive)
	fmt.Fprintf(w, "wait-for-completion:           %6.2f\n", res.PrecommitConservative)
	fmt.Fprintf(w, "(the entire nonspec-ER benefit rides on precommitting past in-flight loads)\n\n")

	res.CheckpointRecovery = speedup(func(c *config.Config) {
		c.Scheme = config.SchemeCombined
	})
	res.WalkRecovery = speedup(func(c *config.Config) {
		c.Scheme = config.SchemeCombined
		c.WalkRecovery = true
	})
	fmt.Fprintf(w, "Ablation: SRT recovery style (combined speedup at 64 regs, int avg %%)\n")
	fmt.Fprintf(w, "checkpoint-based: %6.2f\nwalk-based:       %6.2f\n", res.CheckpointRecovery, res.WalkRecovery)
	fmt.Fprintf(w, "(identical cycle behaviour by construction; both restore the same SRT)\n\n")

	res.ATROnly = speedup(func(c *config.Config) { c.Scheme = config.SchemeATR })
	res.MoveElimOnly = speedup(func(c *config.Config) { c.MoveElimination = true })
	res.MoveElimATR = speedup(func(c *config.Config) {
		c.Scheme = config.SchemeATR
		c.MoveElimination = true
	})
	fmt.Fprintf(w, "Ablation: move elimination composition (speedup at 64 regs, int avg %%)\n")
	fmt.Fprintf(w, "move elimination alone: %6.2f\n", res.MoveElimOnly)
	fmt.Fprintf(w, "ATR alone:              %6.2f\n", res.ATROnly)
	fmt.Fprintf(w, "move elimination + ATR: %6.2f\n", res.MoveElimATR)
	fmt.Fprintf(w, "(paper §6: the two are orthogonal and combine synergistically)\n\n")
	return res
}
