package experiments

import (
	"sync"
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// TestRunnerSamplerParallel exercises the interval sampler under the
// parallel memoizing runner (each simulation owns its sampler, so this is
// race-free by construction; `go test -race` checks that claim).
func TestRunnerSamplerParallel(t *testing.T) {
	r := NewRunner(4000)
	r.SampleInterval = 250
	ps := workload.IntProfiles()[:3]
	cfgs := []config.Config{
		config.GoldenCove().WithPhysRegs(64),
		config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64),
	}
	r.Prefetch(ps, cfgs)

	// Hammer the memoized results from several goroutines as well.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range ps {
				for _, cfg := range cfgs {
					r.Run(p, cfg)
				}
			}
		}()
	}
	wg.Wait()

	for _, p := range ps {
		for _, cfg := range cfgs {
			st := r.Run(p, cfg)
			if len(st.Samples) == 0 {
				t.Fatalf("%s/%v: no samples", p.Name, cfg.Scheme)
			}
			var committed uint64
			for _, m := range st.Samples {
				committed += m.Committed
			}
			if committed != st.Committed {
				t.Errorf("%s/%v: samples sum to %d commits, result says %d",
					p.Name, cfg.Scheme, committed, st.Committed)
			}
		}
	}
}

// TestRunnerNoSamplerByDefault: the default runner pays no observation
// cost and returns no series.
func TestRunnerNoSamplerByDefault(t *testing.T) {
	r := NewRunner(2000)
	p, _ := workload.ByName("exchange2")
	if st := r.Run(p, config.GoldenCove().WithPhysRegs(64)); st.Samples != nil {
		t.Error("unexpected samples without SampleInterval")
	}
}
