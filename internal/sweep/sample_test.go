package sweep

import (
	"bytes"
	"context"
	"testing"
)

// sampleTestGrid is the engine test grid with a mixed sampled-execution
// axis: every unit runs once exact and once under a short systematic plan.
func sampleTestGrid() Grid {
	g := testGrid()
	g.SampleModes = []string{"", "systematic:300/100/50"}
	return g
}

// TestSampleAxisKeys proves the sampled-execution axis multiplies the grid
// without aliasing: every (profile, config, mode) triple gets a distinct
// key, and the exact-mode key is byte-identical to the pre-axis Key — so
// journals written before the axis existed still resume cleanly.
func TestSampleAxisKeys(t *testing.T) {
	g := sampleTestGrid()
	units := g.Units()
	base := testGrid().Units()
	if want := 2 * len(base); len(units) != want {
		t.Fatalf("axis of 2 modes expanded to %d units, want %d", len(units), want)
	}
	if got, want := len(units), g.info().Total; got != want {
		t.Errorf("%d units, GridInfo.Total says %d", got, want)
	}
	seen := make(map[string]bool)
	exactKeys := make(map[string]bool)
	for _, u := range base {
		exactKeys[u.Key] = true
	}
	for _, u := range units {
		if seen[u.Key] {
			t.Errorf("duplicate key %s (sample %q)", u.Key, u.Sample)
		}
		seen[u.Key] = true
		if (u.Sample == "") != exactKeys[u.Key] {
			t.Errorf("unit %d (sample %q) key %s: exact keys must match the pre-axis grid exactly",
				u.Seq, u.Sample, u.Key)
		}
	}
}

// TestSampleAxisSweep runs a mixed sampled/exact grid end to end: the
// manifest must be deterministic across worker counts, record the sampling
// plan on every sampled run, and report the mode split in the engine's
// telemetry.
func TestSampleAxisSweep(t *testing.T) {
	g := sampleTestGrid()
	var want []byte
	for _, workers := range []int{1, 4} {
		eng := New(Options{Workers: workers})
		m, err := eng.Execute(context.Background(), g, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.Totals.Failed != 0 || m.Totals.Done != m.Grid.Total {
			t.Fatalf("workers=%d: totals %+v, want all %d done", workers, m.Totals, m.Grid.Total)
		}
		sampled := 0
		for _, r := range m.Runs {
			if r.Sample != "" {
				sampled++
				if r.Sample != "systematic:300/100/50" {
					t.Errorf("run %d: sample %q, want the grid's plan", r.Seq, r.Sample)
				}
			}
		}
		if sampled != len(m.Runs)/2 {
			t.Errorf("workers=%d: %d of %d runs sampled, want half", workers, sampled, len(m.Runs))
		}
		info := eng.Info()
		if info.Sample == nil {
			t.Fatalf("workers=%d: SweepInfo.Sample missing on a sampled sweep", workers)
		}
		if info.Sample.SampledRuns != sampled || info.Sample.ExactRuns != len(m.Runs)-sampled {
			t.Errorf("workers=%d: telemetry says %d sampled / %d exact, manifest says %d / %d",
				workers, info.Sample.SampledRuns, info.Sample.ExactRuns, sampled, len(m.Runs)-sampled)
		}
		got := encode(t, m)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: manifest bytes differ from workers=1", workers)
		}
	}
}

// TestSampleAxisNeverBatched proves sampled units are excluded from
// lockstep batching at scheduling time: with batching wide open, every
// batched run is an exact unit, and the sweep still completes with the
// deterministic manifest.
func TestSampleAxisNeverBatched(t *testing.T) {
	g := sampleTestGrid()
	exactRuns := len(testGrid().Units())

	ref := New(Options{Workers: 1, Batch: 1})
	wantM, err := ref.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("unbatched sweep: %v", err)
	}

	eng := New(Options{Workers: 4, Batch: 64})
	m, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("batched sweep: %v", err)
	}
	info := eng.Info()
	if info.BatchedRuns == 0 {
		t.Fatalf("expected the exact half of the grid to batch (batch telemetry: %+v)", info)
	}
	if info.BatchedRuns > exactRuns {
		t.Errorf("%d batched runs exceeds the %d exact units — a sampled unit was batched",
			info.BatchedRuns, exactRuns)
	}
	if !bytes.Equal(encode(t, m), encode(t, wantM)) {
		t.Errorf("batched manifest differs from unbatched")
	}
}

// TestSampleAxisExactUnchanged pins the compatibility contract: a grid
// with no sampled-execution axis produces a manifest with no sample
// fields at all — byte-compatible with manifests written before the axis
// existed.
func TestSampleAxisExactUnchanged(t *testing.T) {
	eng := New(Options{Workers: 2})
	m, err := eng.Execute(context.Background(), testGrid(), nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	raw := encode(t, m)
	if bytes.Contains(raw, []byte(`"sample`)) {
		t.Errorf("exact-only manifest mentions sampling:\n%s", raw)
	}
	if eng.Info().Sample != nil {
		t.Errorf("exact-only sweep has SweepInfo.Sample = %+v, want nil", eng.Info().Sample)
	}
}
