package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"atr/internal/batch"
	"atr/internal/pipeline"
)

// TestSweepBatchDeterminism is the batching contract: lockstep batching is
// a pure scheduling decision, so the same grid run solo (Batch=1), at the
// default lane width, and at K=4 yields byte-identical manifests — with
// profile-major deterministic unit order and identical SHA-256 run keys —
// and the batched engine actually batched.
func TestSweepBatchDeterminism(t *testing.T) {
	g := testGrid()
	run, runBatch := SimPairScheduler(pipeline.SchedulerEvent, g.Instr)

	solo := New(Options{Workers: 2, Batch: 1})
	want, err := solo.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("solo sweep: %v", err)
	}
	if solo.Info().Batches != 0 || solo.Info().BatchedRuns != 0 {
		t.Errorf("Batch=1 engine batched anyway: %+v", solo.Info())
	}
	wantBytes := encode(t, want)

	// Keys and order are the grid's, independent of scheduling.
	units := g.Units()
	for i, r := range want.Runs {
		if r.Seq != i || r.Key != units[i].Key {
			t.Fatalf("run %d: seq=%d key=%s, want seq=%d key=%s", i, r.Seq, r.Key, i, units[i].Key)
		}
	}

	for _, k := range []int{0, 4} {
		eng := New(Options{Workers: 2, Batch: k})
		m, err := eng.Execute(context.Background(), g, nil)
		if err != nil {
			t.Fatalf("batch=%d sweep: %v", k, err)
		}
		if !bytes.Equal(encode(t, m), wantBytes) {
			t.Errorf("batch=%d manifest bytes differ from solo", k)
		}
		info := eng.Info()
		if info.Batches == 0 || info.BatchedRuns == 0 {
			t.Errorf("batch=%d engine never batched: %+v", k, info)
		}
		if info.BatchedRuns+(info.Done+info.Failed-info.BatchedRuns) != info.Total {
			t.Errorf("batch=%d accounting inconsistent: %+v", k, info)
		}
	}

	// An explicit RunFunc with its BatchRun counterpart behaves identically.
	eng := New(Options{Workers: 1, Batch: 4, BatchRun: runBatch})
	m, err := eng.Execute(context.Background(), g, run)
	if err != nil {
		t.Fatalf("explicit pair sweep: %v", err)
	}
	if !bytes.Equal(encode(t, m), wantBytes) {
		t.Error("explicit RunFunc+BatchRun manifest differs from solo")
	}
	if eng.Info().Batches == 0 {
		t.Errorf("explicit pair never batched: %+v", eng.Info())
	}

	// A custom RunFunc without a BatchRun counterpart must run unbatched —
	// the engine has no way to know the lockstep equivalent.
	eng2 := New(Options{Workers: 1, Batch: 4})
	m2, err := eng2.Execute(context.Background(), g, run)
	if err != nil {
		t.Fatalf("unpaired sweep: %v", err)
	}
	if !bytes.Equal(encode(t, m2), wantBytes) {
		t.Error("unpaired RunFunc manifest differs from solo")
	}
	if eng2.Info().Batches != 0 {
		t.Errorf("unpaired RunFunc was batched: %+v", eng2.Info())
	}
}

// TestSweepBatchResumeFromSoloJournal proves journals cross the batching
// boundary: a journal written by a pre-batch (solo) sweep resumes into a
// batched sweep byte-identically, and vice versa — records carry no trace
// of the schedule that produced them.
func TestSweepBatchResumeFromSoloJournal(t *testing.T) {
	g := testGrid()

	var soloJournal bytes.Buffer
	solo := New(Options{Workers: 2, Batch: 1, Journal: &soloJournal})
	want, err := solo.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("solo sweep: %v", err)
	}
	wantBytes := encode(t, want)

	// Truncate the solo journal to a partial sweep, then resume batched.
	lines := strings.Split(strings.TrimRight(soloJournal.String(), "\n"), "\n")
	const keep = 7
	partial := strings.Join(lines[:1+keep], "\n") + "\n"
	j, err := LoadJournal(strings.NewReader(partial))
	if err != nil {
		t.Fatalf("load partial solo journal: %v", err)
	}

	var batchedJournal bytes.Buffer
	batched := New(Options{Workers: 3, Batch: 4, Resume: j, Journal: &batchedJournal})
	m, err := batched.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("batched resume: %v", err)
	}
	if !bytes.Equal(encode(t, m), wantBytes) {
		t.Error("batched resume manifest differs from uninterrupted solo manifest")
	}
	if got := batched.Info().Resumed; got != keep {
		t.Errorf("Resumed = %d, want %d", got, keep)
	}
	if batched.Info().Batches == 0 {
		t.Errorf("resumed sweep never batched the remaining units: %+v", batched.Info())
	}

	// And back: the batched journal resumes into a solo sweep that executes
	// nothing and reproduces the manifest.
	j2, err := LoadJournal(bytes.NewReader(batchedJournal.Bytes()))
	if err != nil {
		t.Fatalf("load batched journal: %v", err)
	}
	eng := New(Options{Workers: 1, Batch: 1, Resume: j2})
	again, err := eng.Execute(context.Background(), g,
		func(ctx context.Context, u Unit) (pipeline.Result, error) {
			t.Errorf("run %s re-executed despite complete batched journal", u.Key)
			return pipeline.Result{}, nil
		})
	if err != nil {
		t.Fatalf("solo resume of batched journal: %v", err)
	}
	if !bytes.Equal(encode(t, again), wantBytes) {
		t.Error("solo resume of batched journal differs from solo manifest")
	}
}

// TestSweepBatchInjectPanicFallsBack proves fault semantics survive
// batching: a poisoned unit is excluded from lockstep groups, panics in
// the per-unit path on every attempt, and is recorded exactly as an
// unbatched sweep records it, while its profile-mates still batch.
func TestSweepBatchInjectPanicFallsBack(t *testing.T) {
	g := testGrid()
	const poisoned = 3
	eng := New(Options{Workers: 2, Batch: 4, Retries: 2, InjectPanic: poisoned})
	m, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("batched sweep with injected panic: %v", err)
	}
	if m.Totals.Failed != 1 || m.Totals.Done != m.Grid.Total-1 {
		t.Fatalf("totals %+v, want exactly one failure in %d runs", m.Totals, m.Grid.Total)
	}
	bad := m.Runs[poisoned-1]
	if bad.Err == "" || !strings.Contains(bad.Err, "injected fault") {
		t.Errorf("poisoned run error = %q, want injected fault panic", bad.Err)
	}
	if bad.Attempts != 3 {
		t.Errorf("poisoned run attempts = %d, want 1+2 retries", bad.Attempts)
	}
	info := eng.Info()
	if info.Retried != 2 {
		t.Errorf("Retried = %d, want 2", info.Retried)
	}
	if info.Batches == 0 {
		t.Errorf("healthy units never batched around the poisoned one: %+v", info)
	}
}

// TestSweepBatchRunFailureFallsBack proves a broken BatchRun degrades to
// per-unit execution instead of corrupting the sweep: every group call
// fails, yet the manifest is byte-identical to solo and nothing is lost.
func TestSweepBatchRunFailureFallsBack(t *testing.T) {
	g := testGrid()
	want, err := New(Options{Workers: 1, Batch: 1}).Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("solo sweep: %v", err)
	}

	run, _ := SimPairScheduler(pipeline.SchedulerEvent, g.Instr)
	broken := func(ctx context.Context, us []Unit) ([]pipeline.Result, batch.Perf, error) {
		panic("batch executor exploded")
	}
	eng := New(Options{Workers: 2, Batch: 4, BatchRun: broken})
	m, err := eng.Execute(context.Background(), g, run)
	if err != nil {
		t.Fatalf("sweep with broken BatchRun: %v", err)
	}
	if !bytes.Equal(encode(t, m), encode(t, want)) {
		t.Error("fallback manifest differs from solo manifest")
	}
	if eng.Info().Batches != 0 {
		t.Errorf("broken BatchRun recorded successful batches: %+v", eng.Info())
	}
	if eng.Info().Done != eng.Info().Total {
		t.Errorf("fallback lost runs: %+v", eng.Info())
	}
}
