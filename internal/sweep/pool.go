// Package sweep is the sharded, fault-tolerant sweep engine: it executes a
// declared grid of (profile × config × scheme) simulations on a bounded
// work-stealing worker pool with per-run panic isolation, bounded
// retry-with-backoff, context cancellation, a JSONL journal of completed
// runs for kill/resume, and a deterministic merge whose final manifest is
// bit-identical regardless of worker count or resume splits.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a bounded work-stealing worker pool over integer-indexed work
// items. All items are known up front, so each worker owns a deque seeded
// round-robin; a worker drains its own deque from the front and, when
// empty, steals the back half of a victim's deque. Once every deque is
// empty all remaining work is in flight and idle workers exit.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker bound; workers <= 0 selects
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// deque is a mutex-guarded work queue. The owner pops from the front;
// thieves take the back half.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	it := d.items[0]
	d.items = d.items[1:]
	return it, true
}

func (d *deque) pushBack(items []int) {
	d.mu.Lock()
	d.items = append(d.items, items...)
	d.mu.Unlock()
}

// stealBack removes and returns up to half of the items from the back.
func (d *deque) stealBack() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	k := (n + 1) / 2
	stolen := append([]int(nil), d.items[n-k:]...)
	d.items = d.items[:n-k]
	return stolen
}

// ForEach invokes fn(worker, item) for every item in [0, n), with at most
// Workers() invocations running concurrently. It blocks until every item
// has run or ctx is cancelled; on cancellation, items not yet started are
// skipped (in-flight items complete) and the context error is returned.
// fn must handle its own panics — an escaped panic kills the process.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(worker, item int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 0 {
		return ctx.Err()
	}
	qs := make([]*deque, w)
	for i := range qs {
		qs[i] = &deque{}
	}
	// Round-robin deal: adjacent items (often similar cost) spread across
	// workers, which keeps initial shards balanced before stealing kicks in.
	for i := 0; i < n; i++ {
		q := qs[i%w]
		q.items = append(q.items, i)
	}
	var wg sync.WaitGroup
	for wid := 0; wid < w; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			q := qs[wid]
			for {
				if ctx.Err() != nil {
					return
				}
				item, ok := q.popFront()
				if !ok {
					item, ok = p.steal(qs, wid)
					if !ok {
						return
					}
				}
				fn(wid, item)
			}
		}(wid)
	}
	wg.Wait()
	return ctx.Err()
}

// steal scans the other workers' deques for work, moves the stolen batch
// into the thief's own deque, and returns one item to run.
func (p *Pool) steal(qs []*deque, thief int) (int, bool) {
	for off := 1; off < len(qs); off++ {
		victim := qs[(thief+off)%len(qs)]
		if batch := victim.stealBack(); len(batch) > 0 {
			item := batch[0]
			if len(batch) > 1 {
				qs[thief].pushBack(batch[1:])
			}
			return item, true
		}
	}
	return 0, false
}
