package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"atr/internal/batch"
	"atr/internal/obs"
	"atr/internal/pipeline"
)

// Options configures a sweep engine.
type Options struct {
	// Workers bounds concurrent runs; <= 0 selects GOMAXPROCS.
	Workers int

	// Retries is the number of re-executions granted to a failing run
	// beyond its first attempt; a run is recorded as failed only after
	// 1+Retries attempts.
	Retries int

	// Backoff is the sleep before the first retry, doubling per retry.
	// Zero retries immediately.
	Backoff time.Duration

	// Journal, when non-nil, receives the JSONL journal: a header line
	// binding the journal to the grid, then one line per completed run
	// (resumed runs are re-journaled up front, so a journal is always a
	// complete account of sweep state and can itself be resumed from).
	Journal io.Writer

	// Resume, when non-nil, supplies completed runs from a previous
	// journal; successful records whose keys appear in the grid are not
	// re-executed. Failed records are re-executed. The journal must have
	// been written for the same grid name and instruction budget.
	Resume *Journal

	// OnProgress, when non-nil, is called after every completed run with
	// cumulative counts. It is called from worker goroutines, serialized
	// by the engine.
	OnProgress func(obs.SweepProgress)

	// OnRun, when non-nil, is called after each executed (non-resumed)
	// unit finishes — successfully or after exhausting its retries — with
	// the pool worker that ran it and its wall-clock execution window. It
	// is a telemetry seam (span tracing, latency histograms): it observes
	// scheduling facts and can never influence the record or the manifest.
	// Called from worker goroutines, so it must be safe for concurrent use.
	OnRun func(u Unit, worker int, start time.Time, dur time.Duration, errMsg string)

	// Batch selects lockstep lane batching of consecutive pending units
	// sharing a profile: 0 selects batch.DefaultLanes, 1 disables
	// batching, K > 1 caps groups at K lanes. Batching is a pure
	// scheduling decision — lanes are bit-identical to solo runs — so it
	// can never change a byte of the manifest or the journal records.
	Batch int

	// BatchRun, when non-nil, is the lockstep counterpart of the RunFunc
	// passed to Execute (see BatchRunFunc). When Execute's fn is nil the
	// engine derives both halves from the grid itself. A custom RunFunc
	// with no BatchRun counterpart runs unbatched.
	BatchRun BatchRunFunc

	// InjectPanic, when positive, poisons the grid's k-th run (1-based,
	// grid order): every attempt of that run panics inside the worker.
	// The panic is recovered, retried, and recorded as a failed run — the
	// fault-injection hook proving one poisoned run cannot kill a sweep.
	// A poisoned unit is never batched, so injection always lands in the
	// retrying per-unit path.
	InjectPanic int

	// JobID, when non-empty, names the server job this sweep executes on
	// behalf of. It is provenance only: it flows into SweepInfo, never the
	// deterministic manifest.
	JobID string
}

// Engine executes sweep grids. One engine may be reused; each Execute
// call's scheduling summary replaces Info.
type Engine struct {
	opts Options
	pool *Pool

	mu      sync.Mutex
	rec     []*Record
	shards  []obs.ShardStat
	info    obs.SweepInfo
	journal io.Writer
}

// New creates an engine.
func New(opts Options) *Engine {
	return &Engine{opts: opts, pool: NewPool(opts.Workers)}
}

// Info returns the scheduling summary of the most recent Execute call:
// outcome counts, journal flushes, wall clock, and per-shard throughput.
func (e *Engine) Info() obs.SweepInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.info
}

// Execute runs every unit of g that the resume journal does not already
// cover, using fn (nil selects Sim(g.Instr)), and returns the merged
// manifest with runs in grid order. The manifest is a pure function of
// (grid, injection settings): worker count, stealing schedule, and resume
// splits cannot change a byte of it. On cancellation Execute returns the
// context error and no manifest; completed runs are already journaled, so
// a later Execute with Resume picks up where this one stopped.
func (e *Engine) Execute(ctx context.Context, g Grid, fn RunFunc) (*Manifest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bf := e.opts.BatchRun
	if fn == nil {
		fn, bf = SimPairScheduler(pipeline.SchedulerEvent, g.Instr)
		if e.opts.BatchRun != nil {
			bf = e.opts.BatchRun
		}
	}
	lanes := e.opts.Batch
	if lanes == 0 {
		lanes = batch.DefaultLanes
	}
	if bf == nil || lanes < 1 {
		lanes = 1
	}
	units := g.Units()
	if len(units) == 0 {
		return nil, fmt.Errorf("sweep: grid %q is empty", g.Name)
	}
	seen := make(map[string]int, len(units))
	for _, u := range units {
		if prev, dup := seen[u.Key]; dup {
			return nil, fmt.Errorf("sweep: grid %q runs %d and %d share key %s (duplicate unit)",
				g.Name, prev, u.Seq, u.Key)
		}
		seen[u.Key] = u.Seq
	}
	if r := e.opts.Resume; r != nil {
		if r.Grid != g.Name || r.Instr != g.Instr {
			return nil, fmt.Errorf("sweep: resume journal is for grid %q instr %d, want %q instr %d",
				r.Grid, r.Instr, g.Name, g.Instr)
		}
	}

	e.mu.Lock()
	e.rec = make([]*Record, len(units))
	e.shards = make([]obs.ShardStat, e.pool.Workers())
	for i := range e.shards {
		e.shards[i].Worker = i
	}
	e.info = obs.SweepInfo{Workers: e.pool.Workers(), Total: len(units), Batch: lanes}
	if sampled := countSampled(units); sampled > 0 {
		e.info.Sample = &obs.SampleSweepInfo{
			Modes:       sampleModes(units),
			SampledRuns: sampled,
			ExactRuns:   len(units) - sampled,
		}
	}
	e.journal = e.opts.Journal
	e.mu.Unlock()

	if err := e.writeJournal(journalHeader{
		Schema: JournalSchema, Version: JournalVersion,
		Grid: g.Name, Instr: g.Instr, Total: len(units),
	}); err != nil {
		return nil, err
	}

	// Satisfy runs from the resume journal; re-journal them so the new
	// journal is self-contained.
	var pending []int
	for i, u := range units {
		if e.opts.Resume != nil {
			if r, ok := e.opts.Resume.Records[u.Key]; ok && r.Err == "" {
				r.Seq, r.Bench, r.Scheme, r.PhysRegs = u.Seq, u.Profile.Name, u.Config.Scheme.String(), u.Config.PhysRegs
				r.Sample = u.Sample
				e.finishRun(u, r, -1, true)
				continue
			}
		}
		pending = append(pending, i)
	}

	host, _ := os.Hostname()
	start := time.Now()
	e.mu.Lock()
	e.info.Host = host
	e.info.JobID = e.opts.JobID
	e.info.StartedAt = start.UTC().Format(time.RFC3339Nano)
	e.mu.Unlock()

	// Sampled units can never join a lockstep group. The sample axis is
	// innermost in grid order, so left in place the sampled units would
	// shred every same-profile run of exact units into singleton groups;
	// a stable partition (exact first, sampled after) restores the
	// adjacency batching needs without affecting the manifest, which is
	// merged in Seq order regardless of dispatch order.
	if lanes > 1 {
		exact := make([]int, 0, len(pending))
		var sampledUnits []int
		for _, i := range pending {
			if units[i].Sample == "" {
				exact = append(exact, i)
			} else {
				sampledUnits = append(sampledUnits, i)
			}
		}
		pending = append(exact, sampledUnits...)
	}

	// Group consecutive pending units sharing a profile into lockstep
	// batches. Grouping is greedy over pending order, which is grid
	// order, so the profile-major grids — 2 register-file sizes × 4
	// schemes per profile — split into whole lane groups sharing one
	// program image. A poisoned unit is never grouped: injection must
	// land in the retrying per-unit path.
	var groups [][]int
	for start := 0; start < len(pending); {
		end := start + 1
		if lanes > 1 && e.opts.InjectPanic != units[pending[start]].Seq+1 &&
			units[pending[start]].Sample == "" {
			name := units[pending[start]].Profile.Name
			for end-start < lanes && end < len(pending) &&
				units[pending[end]].Profile.Name == name &&
				units[pending[end]].Sample == "" &&
				e.opts.InjectPanic != units[pending[end]].Seq+1 {
				end++
			}
		}
		groups = append(groups, pending[start:end])
		start = end
	}

	poolErr := e.pool.ForEach(ctx, len(groups), func(worker, gi int) {
		grp := groups[gi]
		if len(grp) == 1 {
			e.runSolo(ctx, units[grp[0]], fn, worker)
			return
		}
		us := make([]Unit, len(grp))
		for i, j := range grp {
			us[i] = units[j]
		}
		if !e.runGroup(ctx, us, bf, worker) {
			for _, u := range us {
				e.runSolo(ctx, u, fn, worker)
			}
		}
	})
	end := time.Now()
	wall := end.Sub(start).Seconds()

	e.mu.Lock()
	e.info.FinishedAt = end.UTC().Format(time.RFC3339Nano)
	e.info.WallSeconds = wall
	e.info.Shards = append([]obs.ShardStat(nil), e.shards...)
	var execCycles uint64
	for _, s := range e.shards {
		execCycles += s.Cycles
	}
	if wall > 0 {
		e.info.CyclesPerSec = float64(execCycles) / wall
	}
	recs := e.rec
	e.mu.Unlock()

	if poolErr != nil {
		return nil, poolErr
	}

	mergeStart := time.Now()
	runs := make([]Record, len(recs))
	for i, r := range recs {
		if r == nil {
			return nil, fmt.Errorf("sweep: run %d never executed (engine bug)", i)
		}
		runs[i] = *r
	}
	m, err := FinalizeManifest(g, runs)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.info.MergeSeconds = time.Since(mergeStart).Seconds()
	e.mu.Unlock()
	return m, nil
}

// FinalizeManifest assembles the deterministic merged manifest from one
// record per grid unit, already in grid (Seq) order. It is the single
// merge path: the engine and the cluster coordinator both call it, so the
// byte-parity argument (DESIGN 3.1c/d, 3.1i) rests on one piece of code
// regardless of whether records were produced by goroutines in one
// process or by worker daemons across a fleet.
func FinalizeManifest(g Grid, runs []Record) (*Manifest, error) {
	m := &Manifest{Schema: ManifestSchema, Version: ManifestVersion, Grid: g.info()}
	if len(runs) != m.Grid.Total {
		return nil, fmt.Errorf("sweep: merge has %d runs, grid %q declares %d", len(runs), g.Name, m.Grid.Total)
	}
	m.Runs = runs
	for i := range runs {
		if runs[i].Seq != i {
			return nil, fmt.Errorf("sweep: merge run %d has seq %d (not in grid order)", i, runs[i].Seq)
		}
		if runs[i].Err == "" {
			m.Totals.Done++
			m.Totals.Committed += runs[i].Result.Committed
			m.Totals.Cycles += runs[i].Result.Cycles
		} else {
			m.Totals.Failed++
		}
	}
	return m, nil
}

// runSolo executes one unit through the retrying per-unit path and
// accounts it to the worker's shard.
func (e *Engine) runSolo(ctx context.Context, u Unit, fn RunFunc, worker int) {
	t0 := time.Now()
	rec := e.runOne(ctx, u, fn)
	busyDur := time.Since(t0)
	if cb := e.opts.OnRun; cb != nil {
		cb(u, worker, t0, busyDur, rec.Err)
	}
	e.accountShard(worker, busyDur.Seconds(), rec)
	e.finishRun(u, rec, worker, false)
}

// runGroup executes one profile-homogeneous group of units in lockstep.
// It reports false — recording nothing — when the batch call errors,
// panics, or returns the wrong shape; the caller then re-runs every unit
// through the per-unit path with its full retry budget, so batching only
// ever adds a fast path and never changes failure semantics.
func (e *Engine) runGroup(ctx context.Context, us []Unit, bf BatchRunFunc, worker int) bool {
	t0 := time.Now()
	res, perf, err := func() (res []pipeline.Result, perf batch.Perf, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		return bf(ctx, us)
	}()
	if err != nil || len(res) != len(us) {
		return false
	}
	busyDur := time.Since(t0)

	e.mu.Lock()
	e.info.Batches++
	e.info.BatchedRuns += len(us)
	e.info.SetupSeconds += perf.SetupSeconds
	e.info.ExecSeconds += perf.ExecSeconds
	e.mu.Unlock()

	share := busyDur / time.Duration(len(us))
	for i, u := range us {
		rec := Record{
			Key: u.Key, Seq: u.Seq, Bench: u.Profile.Name,
			Scheme: u.Config.Scheme.String(), PhysRegs: u.Config.PhysRegs,
			Sample: u.Sample, Attempts: 1, Result: res[i],
		}
		if cb := e.opts.OnRun; cb != nil {
			cb(u, worker, t0.Add(time.Duration(i)*share), share, "")
		}
		e.accountShard(worker, share.Seconds(), rec)
		e.finishRun(u, rec, worker, false)
	}
	return true
}

// accountShard adds one finished run to a worker's shard statistics.
func (e *Engine) accountShard(worker int, busy float64, rec Record) {
	e.mu.Lock()
	s := &e.shards[worker]
	s.Runs++
	s.BusySeconds += busy
	if rec.Err != "" {
		s.Failed++
	} else {
		s.Committed += rec.Result.Committed
		s.Cycles += rec.Result.Cycles
	}
	if s.BusySeconds > 0 {
		s.CyclesPerSec = float64(s.Cycles) / s.BusySeconds
	}
	e.mu.Unlock()
}

// runOne executes one unit with panic isolation and bounded
// retry-with-backoff, returning its deterministic record.
func (e *Engine) runOne(ctx context.Context, u Unit, fn RunFunc) Record {
	return ExecuteUnit(ctx, u, e.injected(fn), e.opts.Retries, e.opts.Backoff, func() {
		e.mu.Lock()
		e.info.Retried++
		e.mu.Unlock()
	})
}

// injected wraps fn with the engine's fault-injection hook: when the
// unit is the poisoned one, every attempt panics before fn runs.
func (e *Engine) injected(fn RunFunc) RunFunc {
	if e.opts.InjectPanic <= 0 {
		return fn
	}
	return InjectPanicRun(fn, e.opts.InjectPanic)
}

// InjectPanicRun wraps fn so that every attempt of the k-th grid run
// (1-based, grid order) panics before executing. It is the shared
// fault-injection hook: the engine and the cluster worker apply it
// identically, so a poisoned unit fails with the same recorded error no
// matter where it is scheduled.
func InjectPanicRun(fn RunFunc, k int) RunFunc {
	return func(ctx context.Context, u Unit) (pipeline.Result, error) {
		if k == u.Seq+1 {
			panic(fmt.Sprintf("injected fault (-inject-panic %d)", k))
		}
		return fn(ctx, u)
	}
}

// ExecuteUnit runs one grid unit with panic isolation and bounded
// retry-with-backoff (backoff doubles per retry), returning its
// deterministic record. It is the engine's per-unit execution path,
// exported so other executors — the cluster worker daemon — share the
// exact retry, panic-recovery, and failure-recording semantics that the
// parity argument depends on. onRetry, when non-nil, is called before
// each retry sleep.
func ExecuteUnit(ctx context.Context, u Unit, fn RunFunc, retries int, backoff time.Duration, onRetry func()) Record {
	rec := Record{
		Key: u.Key, Seq: u.Seq, Bench: u.Profile.Name,
		Scheme: u.Config.Scheme.String(), PhysRegs: u.Config.PhysRegs,
		Sample: u.Sample,
	}
	for attempt := 1; ; attempt++ {
		rec.Attempts = attempt
		res, err := runAttempt(ctx, u, fn)
		if err == nil {
			rec.Result, rec.Err = res, ""
			return rec
		}
		rec.Err = err.Error()
		if attempt > retries || ctx.Err() != nil {
			return rec
		}
		if onRetry != nil {
			onRetry()
		}
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return rec
			case <-t.C:
			}
			backoff *= 2
		}
	}
}

// runAttempt runs fn once, converting a panic into an error so a
// poisoned run degrades to a recorded failure instead of killing the
// sweep.
func runAttempt(ctx context.Context, u Unit, fn RunFunc) (res pipeline.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return fn(ctx, u)
}

// finishRun stores the record, journals it, updates counters, and emits a
// progress tick. worker is -1 for resumed runs.
func (e *Engine) finishRun(u Unit, rec Record, worker int, resumed bool) {
	e.mu.Lock()
	r := rec
	e.rec[u.Seq] = &r
	if resumed {
		e.info.Resumed++
	}
	if rec.Err == "" {
		e.info.Done++
	} else {
		e.info.Failed++
	}
	p := obs.SweepProgress{
		Done: e.info.Done, Failed: e.info.Failed, Retried: e.info.Retried,
		Resumed: e.info.Resumed, Total: e.info.Total,
		Bench: rec.Bench, Scheme: rec.Scheme, Worker: worker, Err: rec.Err,
	}
	cb := e.opts.OnProgress
	e.mu.Unlock()

	// Journal failures too: a resumed sweep re-executes them (LoadJournal
	// keeps them, Execute only skips Err=="" records).
	if err := e.writeJournal(journalEntry{Record: rec, Worker: worker}); err != nil && cb != nil {
		p.Err = "journal: " + err.Error()
	}
	if cb != nil {
		cb(p)
	}
}

// writeJournal appends one JSONL line. Each line is one Write call, so an
// os.File journal is line-atomic in practice and a kill can corrupt at
// most the final line — which LoadJournal tolerates.
func (e *Engine) writeJournal(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.journal == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: journal encode: %w", err)
	}
	if _, err := e.journal.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("sweep: journal write: %w", err)
	}
	e.info.JournalFlushes++
	return nil
}

// countSampled returns how many units run in sampled mode.
func countSampled(units []Unit) int {
	n := 0
	for _, u := range units {
		if u.Sample != "" {
			n++
		}
	}
	return n
}

// sampleModes returns the distinct non-empty sample modes in first-appearance
// order.
func sampleModes(units []Unit) []string {
	var modes []string
	seen := make(map[string]bool)
	for _, u := range units {
		if u.Sample != "" && !seen[u.Sample] {
			seen[u.Sample] = true
			modes = append(modes, u.Sample)
		}
	}
	return modes
}
