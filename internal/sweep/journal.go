package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"atr/internal/pipeline"
)

// Schema identification for the two sweep artifacts: the append-only JSONL
// journal written while the sweep runs, and the deterministic manifest
// produced by the final merge.
const (
	JournalSchema   = "atr-sweep-journal"
	JournalVersion  = 1
	ManifestSchema  = "atr-sweep-grid"
	ManifestVersion = 1
)

// Record is the deterministic outcome of one run: everything in it is a
// pure function of (grid, injection settings), never of scheduling — worker
// identity and wall-clock live only in the journal's entry wrapper. This is
// what makes the merged manifest bit-identical across worker counts and
// resume splits.
type Record struct {
	Key      string          `json:"key"`
	Seq      int             `json:"seq"`
	Bench    string          `json:"bench"`
	Scheme   string          `json:"scheme"`
	PhysRegs int             `json:"phys_regs"`
	Sample   string          `json:"sample,omitempty"` // sampling plan; "" = exact
	Attempts int             `json:"attempts"`
	Err      string          `json:"error,omitempty"`
	Result   pipeline.Result `json:"result"`
}

// journalHeader is the first line of a journal, binding it to one grid so a
// resume cannot silently mix results from a different sweep.
type journalHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Grid    string `json:"grid"`
	Instr   uint64 `json:"instr"`
	Total   int    `json:"total"`
}

// journalEntry wraps a Record with scheduling metadata that is allowed to
// vary between runs of the same grid. Node names the cluster worker that
// produced the record ("" outside a cluster, and omitted so single-node
// journals are byte-identical to pre-cluster ones); like Worker it is
// provenance only and never reaches the manifest.
type journalEntry struct {
	Record
	Worker int    `json:"worker"`
	Node   string `json:"node,omitempty"`
}

// AppendJournalHeader writes the binding header line of a new journal for
// grid g declaring total runs. Exported for the cluster coordinator, whose
// merged journal must be loadable by LoadJournal and resumable by the
// engine exactly like a single-node journal.
func AppendJournalHeader(w io.Writer, g Grid, total int) error {
	return appendJournalLine(w, journalHeader{
		Schema: JournalSchema, Version: JournalVersion,
		Grid: g.Name, Instr: g.Instr, Total: total,
	})
}

// AppendJournalRecord writes one completed-run line. worker is the pool
// worker index (-1 when not applicable, e.g. resumed or cluster-merged
// records); node names the cluster worker daemon that produced the record,
// "" outside a cluster.
func AppendJournalRecord(w io.Writer, rec Record, worker int, node string) error {
	return appendJournalLine(w, journalEntry{Record: rec, Worker: worker, Node: node})
}

// appendJournalLine appends one JSONL line in a single Write call, so an
// os.File journal is line-atomic in practice.
func appendJournalLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: journal encode: %w", err)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("sweep: journal write: %w", err)
	}
	return nil
}

// Journal is a parsed sweep journal: the grid identity it was written
// against and every completed run it records.
type Journal struct {
	Grid    string
	Instr   uint64
	Total   int
	Records map[string]Record // by Record.Key
	Dropped int               // unparsable lines skipped (e.g. truncated mid-write)
}

// LoadJournal parses a JSONL sweep journal. The header line must parse and
// identify the journal schema; subsequent lines that fail to parse — the
// expected shape of a journal killed mid-write — are counted in Dropped
// and skipped, so a truncated journal still resumes. Later entries for the
// same key win (a resumed sweep re-appends records it re-executed).
func LoadJournal(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sweep: journal is empty")
	}
	var h journalHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("sweep: journal header: %w", err)
	}
	if h.Schema != JournalSchema {
		return nil, fmt.Errorf("sweep: journal schema %q, want %q", h.Schema, JournalSchema)
	}
	if h.Version != JournalVersion {
		return nil, fmt.Errorf("sweep: journal version %d, want %d", h.Version, JournalVersion)
	}
	j := &Journal{Grid: h.Grid, Instr: h.Instr, Total: h.Total, Records: make(map[string]Record)}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			j.Dropped++
			continue
		}
		j.Records[e.Key] = e.Record
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: reading journal: %w", err)
	}
	return j, nil
}

// GridInfo is the manifest's record of the grid that was executed.
type GridInfo struct {
	Name     string   `json:"name"`
	Instr    uint64   `json:"instr"`
	Profiles []string `json:"profiles"`
	PhysRegs []int    `json:"phys_regs"`
	Schemes  []string `json:"schemes"`
	// SampleModes is the sampled-execution axis ("exact" plus sampling
	// plans); omitted for exact-only grids, whose manifests are
	// byte-identical to pre-axis ones.
	SampleModes []string `json:"sample_modes,omitempty"`
	Total       int      `json:"total"`
}

// Totals aggregates the deterministic outcome counts of a sweep.
type Totals struct {
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Committed uint64 `json:"committed"`
	Cycles    uint64 `json:"cycles"`
}

// Manifest is the deterministic merged result of one sweep: runs in grid
// order with scheduling metadata stripped. Two sweeps of the same grid —
// any worker count, any kill/resume split — serialize to identical bytes.
type Manifest struct {
	Schema  string   `json:"schema"`
	Version int      `json:"version"`
	Grid    GridInfo `json:"grid"`
	Totals  Totals   `json:"totals"`
	Runs    []Record `json:"runs"`
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeManifest parses and validates a sweep manifest.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("sweep: decode manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("sweep: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("sweep: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if len(m.Runs) != m.Grid.Total {
		return nil, fmt.Errorf("sweep: manifest has %d runs, grid declares %d", len(m.Runs), m.Grid.Total)
	}
	if m.Totals.Done+m.Totals.Failed != len(m.Runs) {
		return nil, fmt.Errorf("sweep: totals %d done + %d failed != %d runs",
			m.Totals.Done, m.Totals.Failed, len(m.Runs))
	}
	for i, r := range m.Runs {
		if r.Seq != i {
			return nil, fmt.Errorf("sweep: manifest run %d has seq %d (not in grid order)", i, r.Seq)
		}
	}
	return &m, nil
}
