package sweep

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atr/internal/obs"
	"atr/internal/pipeline"
)

// encode renders a manifest to its canonical bytes.
func encode(t *testing.T, m *Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("encode manifest: %v", err)
	}
	return buf.Bytes()
}

// testGrid is a small fast grid for engine tests.
func testGrid() Grid { return MicroGrid(600) }

func TestPoolExecutesEachItemOnceWithinBound(t *testing.T) {
	const workers, n = 4, 97
	p := NewPool(workers)
	var counts [n]atomic.Int64
	var inFlight, high atomic.Int64
	err := p.ForEach(context.Background(), n, func(_, i int) {
		cur := inFlight.Add(1)
		for {
			h := high.Load()
			if cur <= h || high.CompareAndSwap(h, cur) {
				break
			}
		}
		// Uneven work so stealing actually happens.
		if i%7 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		counts[i].Add(1)
		inFlight.Add(-1)
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("item %d executed %d times, want 1", i, got)
		}
	}
	if h := high.Load(); h > workers {
		t.Errorf("concurrency high-water %d exceeds worker bound %d", h, workers)
	}
}

func TestPoolZeroWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if w := NewPool(0).Workers(); w <= 0 {
		t.Fatalf("Workers() = %d, want positive", w)
	}
}

// TestSweepDeterminism is the tentpole contract: the same grid at worker
// counts 1, 4, and 16 yields byte-identical manifests.
func TestSweepDeterminism(t *testing.T) {
	g := testGrid()
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		eng := New(Options{Workers: workers})
		m, err := eng.Execute(context.Background(), g, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.Totals.Failed != 0 || m.Totals.Done != m.Grid.Total {
			t.Fatalf("workers=%d: totals %+v, want all %d done", workers, m.Totals, m.Grid.Total)
		}
		got := encode(t, m)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: manifest bytes differ from workers=1", workers)
		}
	}
	// The canonical bytes must round-trip through the validator.
	if _, err := DecodeManifest(bytes.NewReader(want)); err != nil {
		t.Fatalf("decode canonical manifest: %v", err)
	}
}

// TestSweepResume kills a journal mid-write (whole records dropped plus a
// torn final line) and proves the resumed sweep reconstructs the exact
// manifest of the uninterrupted run while re-executing only missing runs.
func TestSweepResume(t *testing.T) {
	g := testGrid()

	var journal bytes.Buffer
	eng := New(Options{Workers: 4, Journal: &journal})
	full, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}
	wantBytes := encode(t, full)

	// Truncate: keep the header plus 9 records, then a torn partial line —
	// the on-disk shape of a sweep killed mid-write.
	lines := strings.Split(strings.TrimRight(journal.String(), "\n"), "\n")
	if len(lines) != 1+len(g.Units()) {
		t.Fatalf("journal has %d lines, want header + %d records", len(lines), len(g.Units()))
	}
	const keep = 9
	truncated := strings.Join(lines[:1+keep], "\n") + "\n" + `{"key":"torn-mid-wr`

	j, err := LoadJournal(strings.NewReader(truncated))
	if err != nil {
		t.Fatalf("load truncated journal: %v", err)
	}
	if j.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (the torn line)", j.Dropped)
	}
	if len(j.Records) != keep {
		t.Fatalf("journal kept %d records, want %d", len(j.Records), keep)
	}

	var journal2 bytes.Buffer
	eng2 := New(Options{Workers: 7, Journal: &journal2, Resume: j})
	resumed, err := eng2.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if !bytes.Equal(encode(t, resumed), wantBytes) {
		t.Error("resumed manifest differs from uninterrupted manifest")
	}
	info := eng2.Info()
	if info.Resumed != keep {
		t.Errorf("Resumed = %d, want %d", info.Resumed, keep)
	}
	if info.JournalFlushes != 1+len(full.Runs) {
		t.Errorf("JournalFlushes = %d, want header + %d records", info.JournalFlushes, len(full.Runs))
	}

	// The resumed journal is self-contained: resuming from it executes
	// nothing at all and still reproduces the manifest.
	j2, err := LoadJournal(bytes.NewReader(journal2.Bytes()))
	if err != nil {
		t.Fatalf("load resumed journal: %v", err)
	}
	eng3 := New(Options{Workers: 2, Resume: j2})
	again, err := eng3.Execute(context.Background(), g,
		func(ctx context.Context, u Unit) (pipeline.Result, error) {
			t.Errorf("run %s re-executed despite complete journal", u.Key)
			return pipeline.Result{}, nil
		})
	if err != nil {
		t.Fatalf("journal-only sweep: %v", err)
	}
	if !bytes.Equal(encode(t, again), wantBytes) {
		t.Error("journal-only manifest differs from uninterrupted manifest")
	}
	if got := eng3.Info().Resumed; got != len(full.Runs) {
		t.Errorf("journal-only Resumed = %d, want %d", got, len(full.Runs))
	}
}

// TestSweepInjectPanic proves the fault-injection contract: the poisoned
// run panics on every attempt, is retried with backoff, and degrades to a
// recorded failure while the rest of the sweep completes normally.
func TestSweepInjectPanic(t *testing.T) {
	g := testGrid()
	const poisoned = 3 // 1-based: grid seq 2
	eng := New(Options{Workers: 4, Retries: 2, InjectPanic: poisoned})
	m, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("sweep with injected panic: %v", err)
	}
	if m.Totals.Failed != 1 || m.Totals.Done != m.Grid.Total-1 {
		t.Fatalf("totals %+v, want exactly one failure in %d runs", m.Totals, m.Grid.Total)
	}
	bad := m.Runs[poisoned-1]
	if bad.Err == "" || !strings.Contains(bad.Err, "injected fault") {
		t.Errorf("poisoned run error = %q, want injected fault panic", bad.Err)
	}
	if bad.Attempts != 3 {
		t.Errorf("poisoned run attempts = %d, want 1+2 retries", bad.Attempts)
	}
	if bad.Result.Cycles != 0 {
		t.Errorf("failed run carries a result: %+v", bad.Result)
	}
	info := eng.Info()
	if info.Retried != 2 {
		t.Errorf("Retried = %d, want 2", info.Retried)
	}
	for i, r := range m.Runs {
		if i != poisoned-1 && r.Err != "" {
			t.Errorf("run %d failed collaterally: %s", i, r.Err)
		}
	}
}

// TestSweepRetryRecovers proves a transiently failing run is retried and
// recorded as a success with its attempt count.
func TestSweepRetryRecovers(t *testing.T) {
	g := testGrid()
	flakySeq := 5
	var failed atomic.Bool
	sim := Sim(g.Instr)
	fn := func(ctx context.Context, u Unit) (pipeline.Result, error) {
		if u.Seq == flakySeq && !failed.Swap(true) {
			return pipeline.Result{}, fmt.Errorf("transient: connection reset by simulator")
		}
		return sim(ctx, u)
	}
	eng := New(Options{Workers: 4, Retries: 1, Backoff: time.Millisecond})
	m, err := eng.Execute(context.Background(), g, fn)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if m.Totals.Failed != 0 {
		t.Fatalf("totals %+v, want no failures", m.Totals)
	}
	if got := m.Runs[flakySeq].Attempts; got != 2 {
		t.Errorf("flaky run attempts = %d, want 2", got)
	}
	if eng.Info().Retried != 1 {
		t.Errorf("Retried = %d, want 1", eng.Info().Retried)
	}
	// Retries must not leak into the deterministic result: compare against
	// a clean run ignoring the attempt counts.
	clean, err := New(Options{Workers: 1}).Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
	for i := range m.Runs {
		a, b := m.Runs[i], clean.Runs[i]
		a.Attempts = b.Attempts
		if a != b {
			t.Errorf("run %d diverged after retry:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

// TestSweepCancel cancels mid-sweep and proves (a) Execute reports the
// cancellation, (b) the journal holds everything that completed, and (c) a
// resumed sweep converges to the uninterrupted manifest.
func TestSweepCancel(t *testing.T) {
	g := testGrid()
	want, err := New(Options{Workers: 2}).Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	wantBytes := encode(t, want)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var journal lockedBuffer
	eng := New(Options{Workers: 2, Journal: &journal, OnProgress: func(p obs.SweepProgress) {
		if p.Done >= 6 {
			cancel()
		}
	}})
	if _, err := eng.Execute(ctx, g, nil); err != context.Canceled {
		t.Fatalf("cancelled Execute error = %v, want context.Canceled", err)
	}

	j, err := LoadJournal(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatalf("load journal of cancelled sweep: %v", err)
	}
	if len(j.Records) < 6 {
		t.Fatalf("journal has %d records, want >= 6", len(j.Records))
	}
	resumed, err := New(Options{Workers: 4, Resume: j}).Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if !bytes.Equal(encode(t, resumed), wantBytes) {
		t.Error("post-cancel resumed manifest differs from uninterrupted manifest")
	}
}

// TestSweepCancelStopsInFlightPromptly pins the drain contract the serving
// layer depends on: once the context is cancelled, Execute returns as soon
// as the in-flight runs notice — it does not start queued work, and a
// RunFunc that honours ctx unblocks the whole sweep promptly.
func TestSweepCancelStopsInFlightPromptly(t *testing.T) {
	g := testGrid()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var started atomic.Int32
	release := make(chan struct{})
	fn := func(ctx context.Context, u Unit) (pipeline.Result, error) {
		if started.Add(1) == 1 {
			close(release) // first run is in flight: trigger the cancel
		}
		<-ctx.Done() // a ctx-honouring run blocks until cancellation
		return pipeline.Result{}, ctx.Err()
	}

	eng := New(Options{Workers: 2})
	done := make(chan error, 1)
	go func() {
		_, err := eng.Execute(ctx, g, fn)
		done <- err
	}()

	<-release
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Execute error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return within 5s of cancellation")
	}
	// Only the runs already in flight at cancel time may have started: the
	// pool must not pick up queued items afterwards.
	if n := started.Load(); n > 2 {
		t.Errorf("%d runs started, want <= 2 (the worker count)", n)
	}
}

// lockedBuffer makes bytes.Buffer safe for the engine's journal writes
// racing the test's final read.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestResumeJournalGridMismatch(t *testing.T) {
	g := testGrid()
	var journal bytes.Buffer
	if _, err := New(Options{Workers: 2, Journal: &journal}).Execute(context.Background(), g, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	j, err := LoadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	other := Fig10Grid(g.Instr)
	if _, err := New(Options{Resume: j}).Execute(context.Background(), other, nil); err == nil {
		t.Error("resuming a fig10 grid from a micro journal did not fail")
	}
	j.Instr++
	if _, err := New(Options{Resume: j}).Execute(context.Background(), g, nil); err == nil {
		t.Error("resuming with a different instruction budget did not fail")
	}
}

func TestLoadJournalRejectsGarbage(t *testing.T) {
	if _, err := LoadJournal(strings.NewReader("")); err == nil {
		t.Error("empty journal accepted")
	}
	if _, err := LoadJournal(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := LoadJournal(strings.NewReader(`{"schema":"atr-run-manifest","version":1}` + "\n")); err == nil {
		t.Error("wrong schema accepted")
	}
}

// TestGridKeysUnique pins that every preset grid has pairwise-distinct run
// keys — the property journals and the memo cache rely on.
func TestGridKeysUnique(t *testing.T) {
	for _, g := range []Grid{MicroGrid(0), Fig10Grid(0), FullGrid(0), LitmusGrid(0)} {
		seen := make(map[string]int)
		for _, u := range g.Units() {
			if prev, dup := seen[u.Key]; dup {
				t.Errorf("grid %s: units %d and %d share key %s", g.Name, prev, u.Seq, u.Key)
			}
			seen[u.Key] = u.Seq
		}
		if len(seen) != g.info().Total {
			t.Errorf("grid %s: %d unique keys, GridInfo.Total says %d", g.Name, len(seen), g.info().Total)
		}
	}
}

// TestLitmusGridRuns executes a slice of the litmus grid end to end through
// the standard RunFunc: every litmus unit must simulate cleanly (short
// programs halt well before the budget) and resolve via GridByName.
func TestLitmusGridRuns(t *testing.T) {
	g, err := GridByName("litmus", 0)
	if err != nil {
		t.Fatal(err)
	}
	units := g.Units()
	if len(units) == 0 {
		t.Fatal("litmus grid is empty")
	}
	run := Sim(g.Instr)
	for _, u := range units[:8] {
		res, err := run(context.Background(), u)
		if err != nil {
			t.Fatalf("unit %s (%s): %v", u.Key, u.Profile.Name, err)
		}
		if !res.Halted || res.Committed == 0 {
			t.Errorf("unit %s (%s): halted=%v committed=%d", u.Key, u.Profile.Name, res.Halted, res.Committed)
		}
	}
	if _, err := GridByName("nonesuch", 0); err == nil || !strings.Contains(err.Error(), "litmus") {
		t.Errorf("GridByName error should list the litmus preset: %v", err)
	}
}
