package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"atr/internal/batch"
	"atr/internal/checkpoint"
	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/program"
	"atr/internal/workload"
)

// MemoKey returns the canonical identity string of one (profile, config)
// run — the same string experiments.Runner uses as its memoization key.
// The config is rendered with %+v so every field, including ones added in
// the future, participates and cannot silently alias two different runs.
func MemoKey(p workload.Profile, cfg config.Config) string {
	return fmt.Sprintf("%s|%+v", p.Name, cfg)
}

// Key returns the compact run key used in journals and manifests: a
// 128-bit hex prefix of SHA-256 over MemoKey. It inherits MemoKey's
// every-field coverage while keeping journal lines short.
func Key(p workload.Profile, cfg config.Config) string {
	return KeyWithSample(p, cfg, "")
}

// KeyWithSample is Key extended with the sampled-execution axis. The sample
// mode is appended to the identity string only when non-empty, so exact-mode
// keys are byte-identical to what Key always produced, and a sampled unit
// can never alias the exact unit for the same (profile, config).
func KeyWithSample(p workload.Profile, cfg config.Config, sample string) string {
	mk := MemoKey(p, cfg)
	if sample != "" {
		mk += "|sample=" + sample
	}
	sum := sha256.Sum256([]byte(mk))
	return hex.EncodeToString(sum[:16])
}

// Unit is one run of a sweep grid.
type Unit struct {
	Seq     int // position in the grid's deterministic order
	Profile workload.Profile
	Config  config.Config
	Key     string
	// Sample selects sampled execution for this unit: a checkpoint plan in
	// -sample-mode syntax ("systematic:<period>/<window>/<warmup>"), or ""
	// for exact full-detail simulation.
	Sample string
}

// Grid declares a sweep: the cross product of profiles × register-file
// sizes × release schemes over a base configuration, each run simulating
// Instr instructions. Units are ordered profile-major, then register-file
// size, then scheme — the deterministic order the final manifest reports
// regardless of execution schedule.
type Grid struct {
	Name     string
	Instr    uint64
	Base     config.Config
	Profiles []workload.Profile
	PhysRegs []int                  // empty: use Base.PhysRegs unchanged
	Schemes  []config.ReleaseScheme // empty: use Base.Scheme unchanged
	// SampleModes is the sampled-execution axis: each entry is a
	// checkpoint plan in -sample-mode syntax, or "" for exact
	// full-detail simulation. Empty means every unit runs exact — the
	// grid identity (and every unit key) is then byte-identical to a
	// grid that predates the axis.
	SampleModes []string
}

// Units expands the grid into its runs in deterministic order.
func (g Grid) Units() []Unit {
	regs := g.PhysRegs
	if len(regs) == 0 {
		regs = []int{g.Base.PhysRegs}
	}
	schemes := g.Schemes
	if len(schemes) == 0 {
		schemes = []config.ReleaseScheme{g.Base.Scheme}
	}
	modes := g.SampleModes
	if len(modes) == 0 {
		modes = []string{""}
	}
	units := make([]Unit, 0, len(g.Profiles)*len(regs)*len(schemes)*len(modes))
	for _, p := range g.Profiles {
		for _, n := range regs {
			for _, s := range schemes {
				cfg := g.Base.WithPhysRegs(n).WithScheme(s)
				for _, sm := range modes {
					units = append(units, Unit{
						Seq:     len(units),
						Profile: p,
						Config:  cfg,
						Key:     KeyWithSample(p, cfg, sm),
						Sample:  sm,
					})
				}
			}
		}
	}
	return units
}

// info renders the grid's identity for the manifest header.
func (g Grid) info() GridInfo {
	gi := GridInfo{Name: g.Name, Instr: g.Instr, PhysRegs: g.PhysRegs}
	for _, p := range g.Profiles {
		gi.Profiles = append(gi.Profiles, p.Name)
	}
	for _, s := range g.Schemes {
		gi.Schemes = append(gi.Schemes, s.String())
	}
	if len(gi.PhysRegs) == 0 {
		gi.PhysRegs = []int{g.Base.PhysRegs}
	}
	if len(gi.Schemes) == 0 {
		gi.Schemes = []string{g.Base.Scheme.String()}
	}
	for _, m := range g.SampleModes {
		if m == "" {
			m = "exact"
		}
		gi.SampleModes = append(gi.SampleModes, m)
	}
	gi.Total = len(gi.Profiles) * len(gi.PhysRegs) * len(gi.Schemes)
	if len(gi.SampleModes) > 0 {
		gi.Total *= len(gi.SampleModes)
	}
	return gi
}

const defaultInstr = 40_000

// Fig10Grid is the paper's Figure 10 sweep: every benchmark profile at
// both evaluated register-file sizes under all four release schemes, on
// the Golden Cove base configuration. instr 0 selects the default budget.
func Fig10Grid(instr uint64) Grid {
	if instr == 0 {
		instr = defaultInstr
	}
	return Grid{
		Name:     "fig10",
		Instr:    instr,
		Base:     config.GoldenCove(),
		Profiles: workload.Profiles(),
		PhysRegs: []int{64, 224},
		Schemes:  config.Schemes(),
	}
}

// FullGrid is the full replication sweep: every profile across the whole
// register-file axis under every scheme (the superset later figure
// replications draw from).
func FullGrid(instr uint64) Grid {
	if instr == 0 {
		instr = defaultInstr
	}
	return Grid{
		Name:     "full",
		Instr:    instr,
		Base:     config.GoldenCove(),
		Profiles: workload.Profiles(),
		PhysRegs: []int{64, 96, 128, 160, 192, 224, 256, 280},
		Schemes:  config.Schemes(),
	}
}

// MicroGrid is a small fast grid for smoke tests and CI: three seeds of
// the micro profile (renamed so their run keys stay distinct) at two
// register-file sizes under every scheme — 24 runs.
func MicroGrid(instr uint64) Grid {
	if instr == 0 {
		instr = 2000
	}
	var ps []workload.Profile
	for _, seed := range []uint64{1, 2, 3} {
		p := workload.Micro(seed)
		p.Name = fmt.Sprintf("micro%d", seed)
		ps = append(ps, p)
	}
	return Grid{
		Name:     "micro",
		Instr:    instr,
		Base:     config.GoldenCove(),
		Profiles: ps,
		PhysRegs: []int{64, 96},
		Schemes:  config.Schemes(),
	}
}

// LitmusGrid is the memory-ordering stress grid: every litmus profile
// (selected interleavings of each shape) at two register-file sizes under
// every release scheme. Litmus programs are short straight-line probes, so
// the instruction budget is small and the grid never carries a sampled axis
// (atrsim and the CLI reject that combination).
func LitmusGrid(instr uint64) Grid {
	if instr == 0 {
		instr = 1000
	}
	return Grid{
		Name:     "litmus",
		Instr:    instr,
		Base:     config.GoldenCove(),
		Profiles: workload.LitmusProfiles(),
		PhysRegs: []int{64, 96},
		Schemes:  config.Schemes(),
	}
}

// GridByName resolves a named grid preset.
func GridByName(name string, instr uint64) (Grid, error) {
	switch name {
	case "fig10":
		return Fig10Grid(instr), nil
	case "full":
		return FullGrid(instr), nil
	case "micro":
		return MicroGrid(instr), nil
	case "litmus":
		return LitmusGrid(instr), nil
	}
	return Grid{}, fmt.Errorf("sweep: unknown grid %q (have fig10, full, micro, litmus)", name)
}

// RunFunc executes one unit and returns its simulation result. A RunFunc
// must be safe for concurrent calls and deterministic in (Profile, Config)
// for the engine's manifest-determinism guarantee to hold.
type RunFunc func(ctx context.Context, u Unit) (pipeline.Result, error)

// BatchRunFunc executes several units sharing one profile in lockstep and
// returns their results in unit order, plus the batch's phase timing. It
// must be the exact lockstep counterpart of a RunFunc: results[i] must be
// byte-identical to what the RunFunc would return for us[i] alone, so the
// engine can batch or not batch without changing a byte of the manifest.
// An error (or panic) fails the whole group; the engine then falls back to
// per-unit execution with the RunFunc, preserving retry and
// fault-isolation semantics.
type BatchRunFunc func(ctx context.Context, us []Unit) ([]pipeline.Result, batch.Perf, error)

type progOnce struct {
	once sync.Once
	prog *program.Program
}

// SimPairScheduler returns the standard run functions — solo and lockstep
// batched — sharing one program cache: simulate each unit's profile under
// its config for instr instructions with the given scheduler
// implementation, generating each profile's program at most once per sweep
// (programs are immutable code images, shared freely across workers and
// lanes).
func SimPairScheduler(kind pipeline.SchedulerKind, instr uint64) (RunFunc, BatchRunFunc) {
	var mu sync.Mutex
	progs := make(map[string]*progOnce)
	getProg := func(p workload.Profile) *program.Program {
		mu.Lock()
		e, ok := progs[p.Name]
		if !ok {
			e = &progOnce{}
			progs[p.Name] = e
		}
		mu.Unlock()
		e.once.Do(func() { e.prog = p.Generate() })
		return e.prog
	}
	run := func(ctx context.Context, u Unit) (pipeline.Result, error) {
		if err := u.Config.Validate(); err != nil {
			return pipeline.Result{}, err
		}
		prog := getProg(u.Profile)
		if u.Sample != "" {
			plan, err := checkpoint.ParseMode(u.Sample)
			if err != nil {
				return pipeline.Result{}, err
			}
			return checkpoint.Run(u.Config, prog, kind, instr, plan).Result, nil
		}
		return pipeline.NewWithScheduler(u.Config, prog, kind).Run(instr), nil
	}
	runBatch := func(ctx context.Context, us []Unit) ([]pipeline.Result, batch.Perf, error) {
		cfgs := make([]config.Config, len(us))
		for i, u := range us {
			if u.Sample != "" {
				// The engine never groups sampled units; reaching here is a
				// scheduling bug, and falling back to per-unit execution
				// (which this error triggers) keeps the sweep correct.
				return nil, batch.Perf{}, fmt.Errorf("sweep: sampled unit %s cannot run in a lockstep batch", u.Key)
			}
			if u.Profile.Name != us[0].Profile.Name {
				return nil, batch.Perf{}, fmt.Errorf("sweep: batch mixes profiles %q and %q", us[0].Profile.Name, u.Profile.Name)
			}
			if err := u.Config.Validate(); err != nil {
				return nil, batch.Perf{}, err
			}
			cfgs[i] = u.Config
		}
		prog := getProg(us[0].Profile)
		lanes, perf := batch.Run(prog, cfgs, instr, batch.Options{Kind: kind})
		res := make([]pipeline.Result, len(lanes))
		for i := range lanes {
			res[i] = lanes[i].Result
		}
		return res, perf, nil
	}
	return run, runBatch
}

// SimScheduler returns the standard solo RunFunc (see SimPairScheduler).
func SimScheduler(kind pipeline.SchedulerKind, instr uint64) RunFunc {
	run, _ := SimPairScheduler(kind, instr)
	return run
}

// Sim is SimScheduler on the default event-driven scheduler.
func Sim(instr uint64) RunFunc { return SimScheduler(pipeline.SchedulerEvent, instr) }
