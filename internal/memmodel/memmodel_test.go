package memmodel

import (
	"reflect"
	"testing"
)

func mustShape(t *testing.T, name string) Shape {
	t.Helper()
	sh, ok := ShapeByName(name)
	if !ok {
		t.Fatalf("shape %q not registered", name)
	}
	return sh
}

// outcome builds an Outcome from sparse register and memory assignments.
func outcome(regs map[int]uint64, mem map[int]uint64) Outcome {
	var o Outcome
	for r, v := range regs {
		o.Regs[r] = v
	}
	for a, v := range mem {
		o.Mem[a] = v
	}
	return o
}

// TestSCSubsetOfTSO: relaxing SC to TSO only ever adds outcomes.
func TestSCSubsetOfTSO(t *testing.T) {
	for _, sh := range Shapes() {
		sc, tso := sh.Prog.SCOutcomes(), sh.Prog.TSOOutcomes()
		if len(sc) == 0 {
			t.Errorf("%s: empty SC set", sh.Name)
		}
		if !sc.Subset(tso) {
			t.Errorf("%s: SC set not a subset of TSO set", sh.Name)
		}
	}
}

// TestClassicLitmusFacts pins the canonical allowed/forbidden outcomes.
func TestClassicLitmusFacts(t *testing.T) {
	regs := func(vals ...uint64) map[int]uint64 {
		m := map[int]uint64{}
		for i, v := range vals {
			m[i] = v
		}
		return m
	}
	tests := []struct {
		shape   string
		o       Outcome
		inSC    bool
		inTSO   bool
		comment string
	}{
		{"sb", outcome(regs(0, 0), map[int]uint64{0: 1, 1: 1}), false, true,
			"store buffering: both loads see 0 only with store buffers"},
		{"sb-fence", outcome(regs(0, 0), map[int]uint64{0: 1, 1: 1}), false, false,
			"fences drain the buffers: 0/0 forbidden even under TSO"},
		{"mp", outcome(map[int]uint64{0: 1, 1: 0}, map[int]uint64{0: 1, 1: 1}), false, false,
			"message passing: flag observed but payload stale is forbidden"},
		{"lb", outcome(regs(1, 1), map[int]uint64{0: 1, 1: 1}), false, false,
			"load buffering: out-of-thin-air values are forbidden"},
		{"corr", outcome(map[int]uint64{0: 1, 1: 0}, map[int]uint64{0: 1}), false, false,
			"coherence: reads of one location never go new-to-old"},
		{"corr", outcome(map[int]uint64{0: 0, 1: 1}, map[int]uint64{0: 1}), true, true,
			"old-to-new is the allowed direction"},
		{"coww", outcome(regs(2, 2), map[int]uint64{0: 2}), true, true,
			"final memory holds the program-order-younger store"},
		{"coww", outcome(regs(0, 0), map[int]uint64{0: 1}), false, false,
			"same-address stores may not commit out of order"},
		{"corw", outcome(regs(1), map[int]uint64{0: 1}), false, false,
			"a load may not observe its own thread's later store",
		},
	}
	for _, tc := range tests {
		sh := mustShape(t, tc.shape)
		sc, tso := sh.Prog.SCOutcomes(), sh.Prog.TSOOutcomes()
		if got := sc.Contains(tc.o); got != tc.inSC {
			t.Errorf("%s: SC contains %v = %v, want %v (%s)", tc.shape, tc.o, got, tc.inSC, tc.comment)
		}
		if got := tso.Contains(tc.o); got != tc.inTSO {
			t.Errorf("%s: TSO contains %v = %v, want %v (%s)", tc.shape, tc.o, got, tc.inTSO, tc.comment)
		}
	}
}

// TestSBSplitsTheModels: sb is the discriminating shape — its TSO set must be
// strictly larger than its SC set, and exactly by the 0/0 outcome.
func TestSBSplitsTheModels(t *testing.T) {
	sh := mustShape(t, "sb")
	sc, tso := sh.Prog.SCOutcomes(), sh.Prog.TSOOutcomes()
	if len(tso) != len(sc)+1 {
		t.Fatalf("sb: |TSO| = %d, |SC| = %d, want exactly one extra TSO outcome", len(tso), len(sc))
	}
}

// TestInterleavingEnumeration: the unranking is a bijection onto the distinct
// interleavings, and the union of their SC executions is exactly the SC set.
func TestInterleavingEnumeration(t *testing.T) {
	for _, sh := range Shapes() {
		p := sh.Prog
		cnt := p.InterleavingCount()
		if cnt <= 0 {
			t.Fatalf("%s: interleaving count %d", sh.Name, cnt)
		}
		seen := map[string]struct{}{}
		union := OutcomeSet{}
		for n := 0; n < cnt; n++ {
			seq := p.Interleaving(n)
			key := ""
			for _, x := range seq {
				key += string(rune('0' + x))
			}
			if _, dup := seen[key]; dup {
				t.Fatalf("%s: interleaving %d duplicates sequence %s", sh.Name, n, key)
			}
			seen[key] = struct{}{}
			union.Add(p.RunInterleaving(seq))
		}
		if sc := p.SCOutcomes(); !union.Equal(sc) {
			t.Errorf("%s: union over %d interleavings (%d outcomes) != SC set (%d outcomes)",
				sh.Name, cnt, len(union), len(sc))
		}
	}
}

func TestInterleavingCountKnownValues(t *testing.T) {
	// Two threads of 2 ops each: C(4,2) = 6.
	sb := mustShape(t, "sb").Prog
	if got := sb.InterleavingCount(); got != 6 {
		t.Errorf("sb interleavings = %d, want 6", got)
	}
	// Single thread: exactly one order.
	fy := mustShape(t, "fwd-youngest").Prog
	if got := fy.InterleavingCount(); got != 1 {
		t.Errorf("fwd-youngest interleavings = %d, want 1", got)
	}
}

func TestValidateBounds(t *testing.T) {
	bad := []Program{
		{}, // no threads
		{Threads: []Thread{{}, {}, {}, {}}},                            // too many threads
		{Threads: []Thread{{St(0, 1), St(0, 1), St(0, 1), St(0, 1), St(0, 1), St(0, 1), St(0, 1)}}}, // too many ops
		{Threads: []Thread{{St(MaxAddrs, 1)}}},                         // address out of range
		{Threads: []Thread{{Ld(0, MaxRegs)}}},                          // register out of range
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid program", i)
		}
	}
	for _, sh := range Shapes() {
		if err := sh.Prog.Validate(); err != nil {
			t.Errorf("%s: Validate rejected registry shape: %v", sh.Name, err)
		}
	}
}

// TestFuzzEncodingRoundTrip: every registry shape survives encode→decode
// unchanged, so the fuzz seed corpus reproduces the litmus family exactly.
func TestFuzzEncodingRoundTrip(t *testing.T) {
	for _, sh := range Shapes() {
		for ti, th := range sh.Prog.Threads {
			got := DecodeFuzzThread(EncodeFuzzThread(th))
			if !reflect.DeepEqual(got, th) {
				t.Errorf("%s thread %d: round trip %+v != original %+v", sh.Name, ti, got, th)
			}
		}
	}
}

func TestDecodeFuzzProgramAlwaysBounded(t *testing.T) {
	words := []uint64{0, ^uint64(0), 0x0123_4567_89ab_cdef, 1 << 56, 0xff<<56 | 0xffff}
	for _, a := range words {
		for _, b := range words {
			p := DecodeFuzzProgram(a, b)
			if len(p.Threads) == 0 {
				continue // empty programs are rejected by Validate at the call site
			}
			if err := p.Validate(); err != nil {
				t.Errorf("DecodeFuzzProgram(%#x, %#x) invalid: %v", a, b, err)
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	if name, n, err := ParseSpec("sb#3"); err != nil || name != "sb" || n != 3 {
		t.Errorf("ParseSpec(sb#3) = %q, %d, %v", name, n, err)
	}
	if name, n, err := ParseSpec("mp"); err != nil || name != "mp" || n != 0 {
		t.Errorf("ParseSpec(mp) = %q, %d, %v", name, n, err)
	}
	for _, bad := range []string{"sb#-1", "sb#x", "sb#"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestProgramForErrors(t *testing.T) {
	if _, err := ProgramFor("nonesuch"); err == nil {
		t.Error("ProgramFor accepted unknown shape")
	}
	if _, err := ProgramFor("sb#999"); err == nil {
		t.Error("ProgramFor accepted out-of-range interleaving")
	}
	if _, err := ProgramFor("sb#0"); err != nil {
		t.Errorf("ProgramFor(sb#0): %v", err)
	}
}
