package memmodel

// Shape is one named litmus family member: a litmus program plus lowering
// options and the canonical fact it probes.
type Shape struct {
	Name string
	// About documents the classical result (or LSQ property) the shape
	// encodes; surfaced by documentation and test failure messages.
	About string
	Prog  Program
	// Blocker selects lowering with a leading commit blocker, keeping body
	// stores queued while body loads execute (forwarding stress shapes).
	Blocker bool
}

// Shapes returns the litmus/stress family in registry order. The two-thread
// classics probe the oracle itself and the interleaving coverage; the
// single-thread fwd-* shapes aim specific LSQ mechanisms — each one is the
// designated kill vector for at least one mutation in the pipeline's
// mutation harness.
func Shapes() []Shape {
	return []Shape{
		{
			Name:  "mp",
			About: "message passing: r0=1,r1=0 forbidden under SC and TSO",
			Prog: Program{Threads: []Thread{
				{St(0, 1), St(1, 1)},
				{Ld(1, 0), Ld(0, 1)},
			}},
		},
		{
			Name:  "sb",
			About: "store buffering: r0=0,r1=0 allowed under TSO, forbidden under SC",
			Prog: Program{Threads: []Thread{
				{St(0, 1), Ld(1, 0)},
				{St(1, 1), Ld(0, 1)},
			}},
		},
		{
			Name:  "sb-fence",
			About: "store buffering with fences: r0=0,r1=0 forbidden even under TSO",
			Prog: Program{Threads: []Thread{
				{St(0, 1), Fence(), Ld(1, 0)},
				{St(1, 1), Fence(), Ld(0, 1)},
			}},
		},
		{
			Name:  "lb",
			About: "load buffering: r0=1,r1=1 forbidden under SC and TSO",
			Prog: Program{Threads: []Thread{
				{Ld(0, 0), St(1, 1)},
				{Ld(1, 1), St(0, 1)},
			}},
		},
		{
			Name:  "corr",
			About: "coherent read-read: r0=1,r1=0 forbidden (no new-to-old reads of one location)",
			Prog: Program{Threads: []Thread{
				{St(0, 1)},
				{Ld(0, 0), Ld(0, 1)},
			}},
		},
		{
			Name:  "coww",
			About: "coherent write-write: program-order same-address stores leave the younger value",
			Prog: Program{Threads: []Thread{
				{St(0, 1), St(0, 2)},
				{Ld(0, 0), Ld(0, 1)},
			}},
		},
		{
			Name:  "corw",
			About: "coherent read-write: a load never observes the same thread's later store",
			Prog: Program{Threads: []Thread{
				{Ld(0, 0), St(0, 1)},
				{St(0, 2)},
			}},
		},
		{
			Name:  "fwd-chain",
			About: "store-forward chain: each load forwards its nearest older same-address store",
			Prog: Program{Threads: []Thread{
				{St(0, 1), Ld(0, 0), stSlowData(1, 2), Ld(1, 1), St(0, 3), Ld(0, 2)},
			}},
			Blocker: true,
		},
		{
			Name:  "fwd-youngest",
			About: "two queued same-address stores: the load must forward the youngest older one",
			Prog: Program{Threads: []Thread{
				{St(0, 1), stSlowData(0, 2), Ld(0, 0)},
			}},
			Blocker: true,
		},
		{
			Name:  "fwd-slowaddr-store",
			About: "older store with a late address: the load must wait (ordering), then forward",
			Prog: Program{Threads: []Thread{
				{stSlowAddr(0, 3), Ld(0, 0)},
			}},
		},
		{
			Name:  "fwd-slowaddr-load",
			About: "late load between two same-address stores: age filtering must exclude the younger",
			Prog: Program{Threads: []Thread{
				{St(0, 1), ldSlowAddr(0, 0), St(0, 2), Ld(0, 1)},
			}},
			Blocker: true,
		},
		{
			Name:  "fwd-slowdata",
			About: "forwarding must deliver captured store data, never the pre-capture value",
			Prog: Program{Threads: []Thread{
				{stSlowData(0, 4), Ld(0, 0)},
			}},
			Blocker: true,
		},
		{
			Name:  "fwd-overlap",
			About: "adjacent words in one cache line: same-line stores must not forward across addresses",
			Prog: Program{Threads: []Thread{
				{stSlowData(0, 1), Ld(1, 0), St(1, 2), Ld(0, 1)},
			}},
			Blocker: true,
		},
	}
}

func stSlowData(addr int, val uint64) Op {
	op := St(addr, val)
	op.SlowData = true
	return op
}

func stSlowAddr(addr int, val uint64) Op {
	op := St(addr, val)
	op.SlowAddr = true
	return op
}

func ldSlowAddr(addr, reg int) Op {
	op := Ld(addr, reg)
	op.SlowAddr = true
	return op
}

// ShapeByName looks a shape up in the registry.
func ShapeByName(name string) (Shape, bool) {
	for _, s := range Shapes() {
		if s.Name == name {
			return s, true
		}
	}
	return Shape{}, false
}
