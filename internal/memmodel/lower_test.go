package memmodel

import (
	"testing"

	"atr/internal/program"
)

// TestLoweringMatchesOracle is the package-internal half of the differential
// argument: for every shape and every interleaving, the lowered straight-line
// program executed by the functional emulator reconstructs (via Checker)
// exactly the interleaving's SC outcome, and that outcome is in the SC set.
// The pipeline half (pipeline == emulator on these programs) lives in
// internal/pipeline's litmus battery.
func TestLoweringMatchesOracle(t *testing.T) {
	for _, sh := range Shapes() {
		sh := sh
		t.Run(sh.Name, func(t *testing.T) {
			sc := sh.Prog.SCOutcomes()
			union := OutcomeSet{}
			cnt := sh.Prog.InterleavingCount()
			for n := 0; n < cnt; n++ {
				l, err := LowerInterleaving(sh.Prog, sh.Prog.Interleaving(n), sh.Blocker)
				if err != nil {
					t.Fatalf("interleaving %d: %v", n, err)
				}
				ck := l.Checker()
				emu := program.NewEmulator(l.Prog)
				for i := 0; i < 10_000; i++ {
					rec, ok := emu.Step()
					if !ok {
						break
					}
					ck.Record(rec)
				}
				if err := ck.Err(); err != nil {
					t.Fatalf("interleaving %d: checker: %v", n, err)
				}
				got := ck.Outcome()
				if got != l.Expected {
					t.Fatalf("interleaving %d: emulated outcome %v, want %v", n, got, l.Expected)
				}
				if !sc.Contains(got) {
					t.Fatalf("interleaving %d: outcome %v not in SC set", n, got)
				}
				union.Add(got)
			}
			if !union.Equal(sc) {
				t.Errorf("union over %d lowered interleavings (%d outcomes) != SC set (%d outcomes)",
					cnt, len(union), len(sc))
			}
		})
	}
}

// TestLoweringRejectsBadInterleavings exercises the error paths.
func TestLoweringRejectsBadInterleavings(t *testing.T) {
	sb := Program{Threads: []Thread{
		{St(0, 1), Ld(1, 0)},
		{St(1, 1), Ld(0, 1)},
	}}
	for _, seq := range [][]int{
		{0, 0, 0, 0},    // overruns thread 0
		{0, 0, 1, 2},    // thread index out of range
		{0, 0, 1},       // does not cover thread 1
		{0, 0, 1, 1, 1}, // overruns thread 1
	} {
		if _, err := LowerInterleaving(sb, seq, false); err == nil {
			t.Errorf("LowerInterleaving accepted bad sequence %v", seq)
		}
	}
}
