package memmodel

// Fuzz wire format: one uint64 per thread, decoded byte-by-byte so that any
// fuzzer-mutated value is a valid thread (total functions — no rejection means
// no wasted executions). Byte layout, little-end first:
//
//	bits 56..63  op count, taken mod (MaxOpsPerThread+1)
//	byte i (i < count) encodes op i:
//	  bits 0..1  kind: 0 load, 1/2 store, 3 fence
//	  bits 2..3  address index
//	  bits 4..5  q: low register bits (load) or value-1 (store)
//	  load:  bit 6 high register bit, bit 7 SlowAddr
//	  store: bit 6 SlowAddr, bit 7 SlowData
//
// All shapes in Shapes() stay inside this encoding (addrs <= 3, store values
// 1..4, registers 0..7, <= 6 ops), so every litmus shape has an exact seed.

// DecodeFuzzThread decodes one thread from its fuzz word.
func DecodeFuzzThread(x uint64) Thread {
	count := int(x>>56) % (MaxOpsPerThread + 1)
	th := make(Thread, 0, count)
	for i := 0; i < count; i++ {
		b := uint8(x >> (8 * i))
		addr := int(b>>2) & 3
		q := int(b>>4) & 3
		switch b & 3 {
		case 0:
			op := Ld(addr, q|int(b>>6&1)<<2)
			op.SlowAddr = b>>7 != 0
			th = append(th, op)
		case 1, 2:
			op := St(addr, uint64(q)+1)
			op.SlowAddr = b>>6&1 != 0
			op.SlowData = b>>7 != 0
			th = append(th, op)
		case 3:
			th = append(th, Fence())
		}
	}
	return th
}

// DecodeFuzzProgram decodes a two-thread fuzz input. A zero op count drops
// that thread; two empty threads yield a program that fails Validate.
func DecodeFuzzProgram(ops0, ops1 uint64) Program {
	var p Program
	for _, th := range []Thread{DecodeFuzzThread(ops0), DecodeFuzzThread(ops1)} {
		if len(th) > 0 {
			p.Threads = append(p.Threads, th)
		}
	}
	return p
}

// EncodeFuzzThread is the inverse of DecodeFuzzThread for threads that fit
// the wire format (used to derive the seed corpus from Shapes()). It panics
// on unencodable threads — seeds are built from the static registry, so a
// panic is a registry bug.
func EncodeFuzzThread(th Thread) uint64 {
	if len(th) > MaxOpsPerThread {
		panic("memmodel: thread too long to encode")
	}
	x := uint64(len(th)) << 56
	for i, op := range th {
		var b uint8
		switch op.Kind {
		case KindLoad:
			if op.Reg > 7 {
				panic("memmodel: register unencodable")
			}
			b = uint8(op.Reg&3) << 4
			b |= uint8(op.Reg>>2) << 6
			if op.SlowAddr {
				b |= 1 << 7
			}
		case KindStore:
			if op.Val < 1 || op.Val > 4 {
				panic("memmodel: store value unencodable")
			}
			b = 1
			b |= uint8(op.Val-1) << 4
			if op.SlowAddr {
				b |= 1 << 6
			}
			if op.SlowData {
				b |= 1 << 7
			}
		case KindFence:
			b = 3
		}
		if op.Kind != KindFence {
			if op.Addr > 3 {
				panic("memmodel: address unencodable")
			}
			b |= uint8(op.Addr) << 2
		}
		x |= uint64(b) << (8 * i)
	}
	return x
}
