// Package memmodel is an executable memory-consistency oracle for the
// pipeline's load-store queue. It defines bounded multi-threaded litmus
// programs (loads, stores, and fences over a few addresses) and enumerates
// their complete sets of legal final states under two operational models:
//
//   - SC: sequential consistency, modeled as instantaneous instruction
//     execution — a DFS over all interleavings of the threads' program
//     orders against a single memory.
//   - TSO: total store order, modeled as SC plus one FIFO store buffer per
//     thread with nondeterministic drain. Loads forward from the youngest
//     matching entry of their own buffer; fences execute only when the own
//     buffer is empty.
//
// The simulator under test is a single core, so a litmus program reaches it
// through a chosen interleaving: the thread-index sequence is lowered to a
// straight-line single-core program (lower.go) whose committed outcome must
// equal that interleaving's SC result exactly, and the union of outcomes
// over all interleavings must equal the SC set. Any LSQ defect — forwarding
// from the wrong store, reading a store's data before capture, ignoring an
// unresolved older address — breaks the per-interleaving exactness and is
// caught by comparing against this oracle.
package memmodel

import "fmt"

// Bounds on litmus programs. They keep enumeration state fixed-size (and
// therefore memoizable with comparable keys); ValidateProgram enforces them.
const (
	MaxThreads      = 3
	MaxOpsPerThread = 6
	MaxAddrs        = 4
	MaxRegs         = 8
)

// Kind discriminates litmus operations.
type Kind int

const (
	KindLoad  Kind = iota // read an address into an observation register
	KindStore             // write a constant value to an address
	KindFence             // full fence: drains the own store buffer (TSO)
)

// Op is one litmus operation. SlowAddr and SlowData are lowering hints only
// (they stretch the single-core timing via long-latency producers to open
// forwarding windows); the oracle ignores them — legality never depends on
// timing.
type Op struct {
	Kind Kind
	Addr int    // address index, 0..MaxAddrs-1
	Val  uint64 // stored value (stores)
	Reg  int    // observation register index, 0..MaxRegs-1 (loads)

	SlowAddr bool // delay the address register via a long-latency producer
	SlowData bool // delay the store data via a long-latency producer (stores)
}

// Ld returns a load of addr into observation register reg.
func Ld(addr, reg int) Op { return Op{Kind: KindLoad, Addr: addr, Reg: reg} }

// St returns a store of val to addr.
func St(addr int, val uint64) Op { return Op{Kind: KindStore, Addr: addr, Val: val} }

// Fence returns a full fence.
func Fence() Op { return Op{Kind: KindFence} }

// Thread is one thread's program order.
type Thread []Op

// Program is a bounded multi-threaded litmus program. Memory and observation
// registers start at zero (the lowering emits explicit zeroing stores so the
// single-core run observes the same initial state).
type Program struct {
	Threads []Thread
}

// Validate checks the program against the enumeration bounds.
func (p Program) Validate() error {
	if len(p.Threads) == 0 || len(p.Threads) > MaxThreads {
		return fmt.Errorf("memmodel: %d threads, want 1..%d", len(p.Threads), MaxThreads)
	}
	for t, th := range p.Threads {
		if len(th) > MaxOpsPerThread {
			return fmt.Errorf("memmodel: thread %d has %d ops, max %d", t, len(th), MaxOpsPerThread)
		}
		for i, op := range th {
			if op.Addr < 0 || op.Addr >= MaxAddrs {
				return fmt.Errorf("memmodel: thread %d op %d: addr %d out of range", t, i, op.Addr)
			}
			if op.Kind == KindLoad && (op.Reg < 0 || op.Reg >= MaxRegs) {
				return fmt.Errorf("memmodel: thread %d op %d: reg %d out of range", t, i, op.Reg)
			}
		}
	}
	return nil
}

// Outcome is one observable final state: the value each observation register
// ended with (zero if never loaded into) and the final memory contents.
// It is a comparable value, usable directly as a map key.
type Outcome struct {
	Regs [MaxRegs]uint64
	Mem  [MaxAddrs]uint64
}

func (o Outcome) String() string {
	return fmt.Sprintf("regs=%v mem=%v", o.Regs, o.Mem)
}

// OutcomeSet is a set of outcomes.
type OutcomeSet map[Outcome]struct{}

// Add inserts o.
func (s OutcomeSet) Add(o Outcome) { s[o] = struct{}{} }

// Contains reports whether o is in the set.
func (s OutcomeSet) Contains(o Outcome) bool {
	_, ok := s[o]
	return ok
}

// Subset reports whether every outcome in s is also in t.
func (s OutcomeSet) Subset(t OutcomeSet) bool {
	for o := range s {
		if !t.Contains(o) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t hold exactly the same outcomes.
func (s OutcomeSet) Equal(t OutcomeSet) bool {
	return len(s) == len(t) && s.Subset(t)
}

// applySC executes op instantly against out (the SC transition relation; a
// fence is a no-op because there is nothing buffered).
func applySC(out *Outcome, op Op) {
	switch op.Kind {
	case KindLoad:
		out.Regs[op.Reg] = out.Mem[op.Addr]
	case KindStore:
		out.Mem[op.Addr] = op.Val
	}
}

// scState is one node of the SC interleaving search.
type scState struct {
	pc  [MaxThreads]int8
	out Outcome
}

// SCOutcomes enumerates the complete set of final states legal under
// sequential consistency: every interleaving of the threads' program orders,
// each instruction executing instantaneously against the single memory.
func (p Program) SCOutcomes() OutcomeSet {
	set := OutcomeSet{}
	seen := map[scState]struct{}{}
	var rec func(st scState)
	rec = func(st scState) {
		if _, dup := seen[st]; dup {
			return
		}
		seen[st] = struct{}{}
		done := true
		for t := range p.Threads {
			i := int(st.pc[t])
			if i >= len(p.Threads[t]) {
				continue
			}
			done = false
			ns := st
			ns.pc[t]++
			applySC(&ns.out, p.Threads[t][i])
			rec(ns)
		}
		if done {
			set.Add(st.out)
		}
	}
	rec(scState{})
	return set
}

// sbEntry is one store-buffer slot.
type sbEntry struct {
	addr int8
	val  uint64
}

// tsoState is one node of the TSO search: per-thread program counters, one
// bounded FIFO store buffer per thread, and the observable state so far.
type tsoState struct {
	pc   [MaxThreads]int8
	blen [MaxThreads]int8
	buf  [MaxThreads][MaxOpsPerThread]sbEntry
	out  Outcome
}

// TSOOutcomes enumerates the complete set of final states legal under total
// store order: stores enter the issuing thread's FIFO buffer and drain to
// memory at nondeterministic times, loads forward from the youngest matching
// entry of their own buffer before reading memory, and fences execute only
// once the own buffer is empty. A final state requires all threads done and
// all buffers drained. The SC set is always a subset of this set.
func (p Program) TSOOutcomes() OutcomeSet {
	set := OutcomeSet{}
	seen := map[tsoState]struct{}{}
	var rec func(st tsoState)
	rec = func(st tsoState) {
		if _, dup := seen[st]; dup {
			return
		}
		seen[st] = struct{}{}
		done := true
		for t := range p.Threads {
			// Nondeterministic drain of the oldest buffered store.
			if st.blen[t] > 0 {
				done = false
				ns := st
				e := ns.buf[t][0]
				copy(ns.buf[t][:], ns.buf[t][1:ns.blen[t]])
				ns.blen[t]--
				ns.buf[t][ns.blen[t]] = sbEntry{}
				ns.out.Mem[e.addr] = e.val
				rec(ns)
			}
			i := int(st.pc[t])
			if i >= len(p.Threads[t]) {
				continue
			}
			done = false
			op := p.Threads[t][i]
			ns := st
			ns.pc[t]++
			switch op.Kind {
			case KindStore:
				ns.buf[t][ns.blen[t]] = sbEntry{addr: int8(op.Addr), val: op.Val}
				ns.blen[t]++
			case KindLoad:
				v, fwd := uint64(0), false
				for j := int(st.blen[t]) - 1; j >= 0; j-- {
					if int(st.buf[t][j].addr) == op.Addr {
						v, fwd = st.buf[t][j].val, true
						break
					}
				}
				if !fwd {
					v = st.out.Mem[op.Addr]
				}
				ns.out.Regs[op.Reg] = v
			case KindFence:
				if st.blen[t] > 0 {
					continue // not executable until the buffer drains
				}
			}
			rec(ns)
		}
		if done {
			set.Add(st.out)
		}
	}
	rec(tsoState{})
	return set
}

// InterleavingCount returns the number of distinct interleavings of the
// threads' program orders (the multinomial coefficient).
func (p Program) InterleavingCount() int {
	n, c := 0, 1
	for _, th := range p.Threads {
		for k := 1; k <= len(th); k++ {
			n++
			c = c * n / k // binomial(n, k) accumulated: always divides evenly
		}
	}
	return c
}

// Interleaving returns the nth interleaving (0-based, lexicographic by
// thread index) as a thread-index sequence of length equal to the total op
// count. It panics when n is out of range.
func (p Program) Interleaving(n int) []int {
	rem := make([]int, len(p.Threads))
	total := 0
	for t, th := range p.Threads {
		rem[t] = len(th)
		total += len(th)
	}
	if n < 0 || n >= p.InterleavingCount() {
		panic(fmt.Sprintf("memmodel: interleaving %d out of range [0,%d)", n, p.InterleavingCount()))
	}
	seq := make([]int, 0, total)
	for len(seq) < total {
		for t := range rem {
			if rem[t] == 0 {
				continue
			}
			rem[t]--
			c := interleavings(rem)
			if n < c {
				seq = append(seq, t)
				break
			}
			n -= c
			rem[t]++
		}
	}
	return seq
}

// interleavings counts the interleavings of the given remaining op counts.
func interleavings(rem []int) int {
	n, c := 0, 1
	for _, r := range rem {
		for k := 1; k <= r; k++ {
			n++
			c = c * n / k
		}
	}
	return c
}

// RunInterleaving executes the program's operations in the order given by
// the thread-index sequence under SC semantics and returns the final state.
// This is exactly the outcome a correct single core must produce for the
// lowering of seq, because a single core executing the lowered straight-line
// program in program order is sequentially consistent by construction.
func (p Program) RunInterleaving(seq []int) Outcome {
	var pc [MaxThreads]int
	var out Outcome
	for _, t := range seq {
		applySC(&out, p.Threads[t][pc[t]])
		pc[t]++
	}
	return out
}
