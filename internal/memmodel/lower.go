package memmodel

import (
	"fmt"
	"strconv"
	"strings"

	"atr/internal/isa"
	"atr/internal/program"
)

// Lowering: a chosen interleaving of a litmus program becomes a straight-line
// single-core program over the micro-ISA. Precise addressing is the load-
// bearing trick — a memory op with Span <= 8 has EA == Target no matter what
// the address register holds (program.EffAddr) — so every access targets its
// litmus address exactly, while the address *register* still gates issue:
// routing it through a long-latency Div (SlowAddr) delays the STA or the load
// without perturbing the address. Likewise Div(d, z, z, V) with z == 0
// produces exactly V after the divide latency (SlowData), so store values are
// architecturally deterministic but late. Fences lower to Nop: a single core
// is sequentially consistent over its own accesses, so the fence constrains
// only the oracle's TSO enumeration, not the lowered execution.
//
// Register conventions (disjoint from the observation registers):
//
//	R0..R7   observation registers (litmus Reg 0..7)
//	R8       store-value materialization
//	R9       architectural zero (set once, first instruction)
//	R10      slow store data (Div result)
//	R11      slow address (Div result, always zero)
//	R12      commit-blocker chain
const (
	regObsBase  = isa.R0
	regVal      = isa.R8
	regZero     = isa.R9
	regSlowData = isa.R10
	regSlowAddr = isa.R11
	regBlocker  = isa.R12
)

// Base is the litmus data region: MaxAddrs adjacent 8-byte words inside one
// 64-byte cache line, so "partial overlap" variants (adjacent words) share a
// line but never an address — the sharpest probe for over-wide forwarding
// matches.
const Base = 0x20_0000

// AddrOf returns the lowered effective address of litmus address index i.
func AddrOf(i int) uint64 { return Base + 8*uint64(i) }

// Lowered is a single-core program produced from one interleaving, plus the
// metadata to extract and judge its outcome.
type Lowered struct {
	Prog *program.Program
	// Expected is the SC outcome of exactly this interleaving — what a
	// correct pipeline must produce, not merely some legal outcome.
	Expected Outcome
	// Seq is the thread-index sequence this lowering realizes.
	Seq []int

	loadReg   map[uint64]int // lowered PC of a load  -> observation register
	storeAddr map[uint64]int // lowered PC of a store -> litmus address index
}

// LowerInterleaving lowers the interleaving seq of p. Every used address is
// first zeroed (memory defaults to seeded garbage), then the operations are
// emitted in seq order. withBlocker prepends a dependent long-latency chain
// that stalls in-order commit, keeping the body's stores in the store queue
// while its loads execute — the window where forwarding, not memory, must
// supply values.
func LowerInterleaving(p Program, seq []int, withBlocker bool) (*Lowered, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := program.NewBuilder(0x11, 0x22)
	l := &Lowered{
		Seq:       append([]int(nil), seq...),
		loadReg:   make(map[uint64]int),
		storeAddr: make(map[uint64]int),
	}
	b.ALU(regZero, isa.RegInvalid, isa.RegInvalid, 0)
	if withBlocker {
		// Two dependent divides at the ROB head: ~2 divide latencies during
		// which nothing younger can commit (commit is in-order), so every
		// body store stays queued while body loads issue around them.
		b.Div(regBlocker, regZero, regZero, 1)
		b.Div(regBlocker, regBlocker, regZero, 1)
	}
	addrs := 0
	for _, th := range p.Threads {
		for _, op := range th {
			if op.Addr >= addrs {
				addrs = op.Addr + 1
			}
		}
	}
	for i := 0; i < addrs; i++ {
		l.storeAddr[b.PC()] = i
		b.Store(regZero, regZero, AddrOf(i), 0, 0)
	}
	var pc [MaxThreads]int
	for _, t := range seq {
		if t < 0 || t >= len(p.Threads) || pc[t] >= len(p.Threads[t]) {
			return nil, fmt.Errorf("memmodel: invalid interleaving %v for %d-thread program", seq, len(p.Threads))
		}
		op := p.Threads[t][pc[t]]
		pc[t]++
		emitOp(b, l, op)
	}
	for t, th := range p.Threads {
		if pc[t] != len(th) {
			return nil, fmt.Errorf("memmodel: interleaving %v does not cover thread %d", seq, t)
		}
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	l.Prog = prog
	l.Expected = p.RunInterleaving(seq)
	return l, nil
}

func emitOp(b *program.Builder, l *Lowered, op Op) {
	addrReg := regZero
	if op.SlowAddr {
		// R11 = 0/(0|1) + 0 = 0, one divide latency late. The EA ignores
		// it; issue does not.
		b.Div(regSlowAddr, regZero, regZero, 0)
		addrReg = regSlowAddr
	}
	switch op.Kind {
	case KindLoad:
		l.loadReg[b.PC()] = op.Reg
		b.Load(regObsBase+isa.Reg(op.Reg), addrReg, AddrOf(op.Addr), 0, 0)
	case KindStore:
		valReg := regVal
		if op.SlowData {
			// R10 = 0/(0|1) + Val = Val, one divide latency late: the STA
			// half issues immediately, the data is captured late.
			b.Div(regSlowData, regZero, regZero, int64(op.Val))
			valReg = regSlowData
		} else {
			b.ALU(regVal, isa.RegInvalid, isa.RegInvalid, int64(op.Val))
		}
		l.storeAddr[b.PC()] = op.Addr
		b.Store(addrReg, valReg, AddrOf(op.Addr), 0, 0)
	case KindFence:
		b.Nop()
	}
}

// Checker incrementally reconstructs a Lowered run's outcome from its
// committed records (pipeline OnCommit or emulator Step). It is independent
// of the functional emulator: it keys on the lowered PCs and replays only
// the observable effects, so a pipeline that commits a wrong load value or
// store value produces a visibly wrong Outcome even if its stream is
// internally consistent.
type Checker struct {
	l   *Lowered
	out Outcome
	err error
}

// Checker returns a fresh outcome checker for this lowering.
func (l *Lowered) Checker() *Checker { return &Checker{l: l} }

// Record consumes one committed record.
func (c *Checker) Record(r program.Record) {
	if reg, ok := c.l.loadReg[r.PC]; ok {
		if r.Op != isa.OpLoad {
			c.fail("pc %d: expected a load, committed %v", r.PC, r.Op)
			return
		}
		if want := c.l.Prog.At(r.PC).Target; want != r.EA {
			c.fail("pc %d: load EA %#x, want %#x", r.PC, r.EA, want)
			return
		}
		c.out.Regs[reg] = r.DstVals[0]
		return
	}
	if ai, ok := c.l.storeAddr[r.PC]; ok {
		if r.Op != isa.OpStore {
			c.fail("pc %d: expected a store, committed %v", r.PC, r.Op)
			return
		}
		if want := AddrOf(ai); want != r.EA {
			c.fail("pc %d: store EA %#x, want %#x", r.PC, r.EA, want)
			return
		}
		c.out.Mem[ai] = r.StoreVal
	}
}

func (c *Checker) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// Outcome returns the reconstructed final state.
func (c *Checker) Outcome() Outcome { return c.out }

// Err returns the first structural violation observed (wrong op kind or EA
// at a mapped PC), or nil.
func (c *Checker) Err() error { return c.err }

// ParseSpec splits a litmus spec "name" or "name#N" into the shape name and
// interleaving index.
func ParseSpec(spec string) (name string, n int, err error) {
	name, idx, found := strings.Cut(spec, "#")
	if !found {
		return name, 0, nil
	}
	n, err = strconv.Atoi(idx)
	if err != nil || n < 0 {
		return "", 0, fmt.Errorf("memmodel: bad interleaving index in spec %q", spec)
	}
	return name, n, nil
}

// ProgramFor resolves a litmus spec ("sb", "mp#3", ...) to its lowered
// single-core program: shape name plus optional interleaving index.
func ProgramFor(spec string) (*Lowered, error) {
	name, n, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	sh, ok := ShapeByName(name)
	if !ok {
		return nil, fmt.Errorf("memmodel: unknown litmus shape %q", name)
	}
	cnt := sh.Prog.InterleavingCount()
	if n >= cnt {
		return nil, fmt.Errorf("memmodel: shape %q has %d interleavings, index %d out of range", name, cnt, n)
	}
	return LowerInterleaving(sh.Prog, sh.Prog.Interleaving(n), sh.Blocker)
}
