package logicsim

import (
	"math/rand"
	"testing"
)

func TestNetlistBasics(t *testing.T) {
	n := New()
	a, b := n.Input(), n.Input()
	and := n.And(a, b)
	or := n.Or(a, b)
	not := n.Not(a)
	eval := n.Eval([]bool{true, false})
	if eval(and) != false || eval(or) != true || eval(not) != false {
		t.Error("gate evaluation wrong")
	}
	if n.GateCount() != 3 {
		t.Errorf("GateCount = %d, want 3", n.GateCount())
	}
	if n.Levels(and) != 1 {
		t.Errorf("Levels(and) = %d", n.Levels(and))
	}
}

func TestMux(t *testing.T) {
	n := New()
	s, a, b := n.Input(), n.Input(), n.Input()
	m := n.Mux(s, a, b)
	for _, tc := range []struct{ s, a, b, want bool }{
		{true, true, false, true},
		{true, false, true, false},
		{false, true, false, false},
		{false, false, true, true},
	} {
		if got := n.Eval([]bool{tc.s, tc.a, tc.b})(m); got != tc.want {
			t.Errorf("mux(%v,%v,%v) = %v", tc.s, tc.a, tc.b, got)
		}
	}
}

func TestEqualsConst(t *testing.T) {
	n := New()
	bits := []Wire{n.Input(), n.Input(), n.Input(), n.Input()}
	eq5 := n.EqualsConst(bits, 5)
	for v := uint64(0); v < 16; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0, v&8 != 0}
		if got := n.Eval(in)(eq5); got != (v == 5) {
			t.Errorf("EqualsConst(5) on %d = %v", v, got)
		}
	}
}

func TestReduceTrees(t *testing.T) {
	n := New()
	var ws []Wire
	for i := 0; i < 8; i++ {
		ws = append(ws, n.Input())
	}
	or := n.ReduceOr(ws)
	and := n.ReduceAnd(ws)
	if n.Levels(or) != 3 || n.Levels(and) != 3 {
		t.Errorf("balanced 8-input trees should be 3 levels, got %d/%d", n.Levels(or), n.Levels(and))
	}
	all := make([]bool, 8)
	if n.Eval(all)(or) != false {
		t.Error("OR of zeros")
	}
	all[3] = true
	if n.Eval(all)(or) != true {
		t.Error("OR with one set")
	}
}

// markRef is the behavioural model of the serial bulk-marking semantics: the
// same rules the core engine implements, restricted to one rename group.
func markRef(flusher, dstValid []bool, dstArch []int, archRegs int) (markSRT []bool, markWay []bool) {
	markSRT = make([]bool, archRegs)
	markWay = make([]bool, len(flusher))
	owner := make([]int, archRegs) // -1-offset: 0 = SRT, j+1 = way j
	for i := range flusher {
		if flusher[i] {
			for a := 0; a < archRegs; a++ {
				if owner[a] == 0 {
					markSRT[a] = true
				} else {
					markWay[owner[a]-1] = true
				}
			}
			if dstValid[i] {
				markWay[i] = true // branch-class self-mark
			}
		}
		if dstValid[i] {
			owner[dstArch[i]] = i + 1
		}
	}
	return markSRT, markWay
}

// TestBulkMarkMatchesBehaviouralModel cross-verifies the gate-level circuit
// against the behavioural marking semantics on random rename groups.
func TestBulkMarkMatchesBehaviouralModel(t *testing.T) {
	const ways, arch = 4, 8
	b := BuildBulkMark(ways, arch)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		flusher := make([]bool, ways)
		dstValid := make([]bool, ways)
		dstArch := make([]int, ways)
		var inputs []bool
		for i := 0; i < ways; i++ {
			flusher[i] = r.Intn(3) == 0
			dstValid[i] = r.Intn(4) != 0
			dstArch[i] = r.Intn(arch)
			inputs = append(inputs, flusher[i], dstValid[i])
			for k := 0; k < 3; k++ {
				inputs = append(inputs, dstArch[i]>>uint(k)&1 == 1)
			}
		}
		eval := b.Net.Eval(inputs)
		wantSRT, wantWay := markRef(flusher, dstValid, dstArch, arch)
		for a := 0; a < arch; a++ {
			if eval(b.MarkSRT[a]) != wantSRT[a] {
				t.Fatalf("trial %d: MarkSRT[%d] = %v, want %v (f=%v v=%v d=%v)",
					trial, a, eval(b.MarkSRT[a]), wantSRT[a], flusher, dstValid, dstArch)
			}
		}
		for j := 0; j < ways; j++ {
			if eval(b.MarkWay[j]) != wantWay[j] {
				t.Fatalf("trial %d: MarkWay[%d] = %v, want %v (f=%v v=%v d=%v)",
					trial, j, eval(b.MarkWay[j]), wantWay[j], flusher, dstValid, dstArch)
			}
		}
	}
}

// TestSynthesis8Wide checks the §4.4 claims: the paper reports 42 logic
// levels and 2,960 gates for the 8-wide x86 design, with a 2.6 GHz
// single-cycle clock and >4 GHz when pipelined two extra stages. The naive
// (synthesis-like) netlist should land in that regime; the balanced variant
// must be strictly shallower.
func TestSynthesis8Wide(t *testing.T) {
	naive := BuildBulkMarkNaive(8, 16).Synthesize(1)
	t.Logf("8-wide naive:    %v", naive)
	if naive.Levels < 15 || naive.Levels > 70 {
		t.Errorf("naive levels = %d, want within 15..70 of the paper's 42", naive.Levels)
	}
	if naive.Gates < 1500 || naive.Gates > 6000 {
		t.Errorf("naive gates = %d, want within 1500..6000 of the paper's 2960", naive.Gates)
	}
	if naive.ClockGHz < 1.0 || naive.ClockGHz > 8.0 {
		t.Errorf("naive single-cycle clock %.2f GHz out of band (paper: 2.6)", naive.ClockGHz)
	}
	opt := BuildBulkMark(8, 16).Synthesize(1)
	t.Logf("8-wide balanced: %v", opt)
	if opt.Levels >= naive.Levels {
		t.Errorf("balanced (%d levels) should beat naive (%d)", opt.Levels, naive.Levels)
	}
	p := BuildBulkMarkNaive(8, 16).Synthesize(3)
	if p.PipeGHz <= naive.ClockGHz {
		t.Error("pipelining must raise the achievable clock")
	}
	if p.PipeGHz < 4.0 {
		t.Errorf("3-stage clock %.2f GHz; paper claims pipelining reaches beyond 4 GHz", p.PipeGHz)
	}
}

// TestNaiveMatchesBehaviouralModel verifies the naive construction computes
// the same function as the optimized one.
func TestNaiveMatchesBehaviouralModel(t *testing.T) {
	const ways, arch = 4, 8
	b := BuildBulkMarkNaive(ways, arch)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		flusher := make([]bool, ways)
		dstValid := make([]bool, ways)
		dstArch := make([]int, ways)
		var inputs []bool
		for i := 0; i < ways; i++ {
			flusher[i] = r.Intn(3) == 0
			dstValid[i] = r.Intn(4) != 0
			dstArch[i] = r.Intn(arch)
			inputs = append(inputs, flusher[i], dstValid[i])
			for k := 0; k < 3; k++ {
				inputs = append(inputs, dstArch[i]>>uint(k)&1 == 1)
			}
		}
		eval := b.Net.Eval(inputs)
		wantSRT, wantWay := markRef(flusher, dstValid, dstArch, arch)
		for a := 0; a < arch; a++ {
			if eval(b.MarkSRT[a]) != wantSRT[a] {
				t.Fatalf("trial %d: MarkSRT[%d] wrong", trial, a)
			}
		}
		for j := 0; j < ways; j++ {
			if eval(b.MarkWay[j]) != wantWay[j] {
				t.Fatalf("trial %d: MarkWay[%d] wrong", trial, j)
			}
		}
	}
}

func TestDepthGrowsWithWays(t *testing.T) {
	l4 := BuildBulkMark(4, 16).Synthesize(1)
	l8 := BuildBulkMark(8, 16).Synthesize(1)
	if l8.Levels <= l4.Levels {
		t.Errorf("serial chain depth must grow with ways: %d vs %d", l4.Levels, l8.Levels)
	}
	if l8.Gates <= l4.Gates {
		t.Error("gate count must grow with ways")
	}
}

func TestEvalPanicsOnMissingInputs(t *testing.T) {
	n := New()
	n.Input()
	n.Input()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.Eval([]bool{true})
}
