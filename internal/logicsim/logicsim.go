// Package logicsim builds a structural gate-level netlist of the bulk
// no-early-release marking logic of §4.2.2 / Fig 9 and evaluates the §4.4
// hardware-cost claims: logic levels on the worst-case path, gate count, and
// the achievable clock frequency with and without pipelining.
//
// The modeled circuit is the unpipelined serial-semantics design: for each
// of the N rename ways, the logic must observe the SRT as updated by all
// older ways in the same group (a flusher marks the mappings current *at its
// own position*). Each way stage therefore contains, per architectural
// register, a destination comparator and a validity-propagation mux, chained
// across ways — which is what makes the combinational depth proportional to
// N and motivates the paper's N-stage pipelined variant.
package logicsim

import "fmt"

// GateKind enumerates the primitive cells.
type GateKind uint8

// Primitive gate kinds (two-input unless noted).
const (
	GateInput GateKind = iota
	GateConst
	GateNOT
	GateAND
	GateOR
	GateXOR
	GateXNOR
)

func (k GateKind) String() string {
	switch k {
	case GateInput:
		return "input"
	case GateConst:
		return "const"
	case GateNOT:
		return "not"
	case GateAND:
		return "and"
	case GateOR:
		return "or"
	case GateXOR:
		return "xor"
	case GateXNOR:
		return "xnor"
	}
	return "?"
}

// Wire identifies a gate output within a netlist.
type Wire int32

// Netlist is a combinational circuit under construction.
type Netlist struct {
	kinds  []GateKind
	in0    []Wire
	in1    []Wire
	levels []int32
	consts []bool
}

// New returns an empty netlist.
func New() *Netlist { return &Netlist{} }

func (n *Netlist) add(k GateKind, a, b Wire) Wire {
	lvl := int32(0)
	switch k {
	case GateInput, GateConst:
	case GateNOT:
		lvl = n.levels[a] + 1
	default:
		la, lb := n.levels[a], n.levels[b]
		if lb > la {
			la = lb
		}
		lvl = la + 1
	}
	n.kinds = append(n.kinds, k)
	n.in0 = append(n.in0, a)
	n.in1 = append(n.in1, b)
	n.levels = append(n.levels, lvl)
	n.consts = append(n.consts, false)
	return Wire(len(n.kinds) - 1)
}

// Input creates a primary input.
func (n *Netlist) Input() Wire { return n.add(GateInput, -1, -1) }

// Const creates a constant wire.
func (n *Netlist) Const(v bool) Wire {
	w := n.add(GateConst, -1, -1)
	n.consts[w] = v
	return w
}

// Not returns ¬a.
func (n *Netlist) Not(a Wire) Wire { return n.add(GateNOT, a, -1) }

// And returns a∧b.
func (n *Netlist) And(a, b Wire) Wire { return n.add(GateAND, a, b) }

// Or returns a∨b.
func (n *Netlist) Or(a, b Wire) Wire { return n.add(GateOR, a, b) }

// Xnor returns ¬(a⊕b).
func (n *Netlist) Xnor(a, b Wire) Wire { return n.add(GateXNOR, a, b) }

// Mux returns sel ? a : b (2 levels, 3 gates plus the inverter).
func (n *Netlist) Mux(sel, a, b Wire) Wire {
	return n.Or(n.And(sel, a), n.And(n.Not(sel), b))
}

// ReduceOr builds a balanced OR tree.
func (n *Netlist) ReduceOr(ws []Wire) Wire {
	switch len(ws) {
	case 0:
		return n.Const(false)
	case 1:
		return ws[0]
	}
	mid := len(ws) / 2
	return n.Or(n.ReduceOr(ws[:mid]), n.ReduceOr(ws[mid:]))
}

// ReduceAnd builds a balanced AND tree.
func (n *Netlist) ReduceAnd(ws []Wire) Wire {
	switch len(ws) {
	case 0:
		return n.Const(true)
	case 1:
		return ws[0]
	}
	mid := len(ws) / 2
	return n.And(n.ReduceAnd(ws[:mid]), n.ReduceAnd(ws[mid:]))
}

// EqualsConst builds a comparator of a bit vector against a constant.
func (n *Netlist) EqualsConst(bits []Wire, v uint64) Wire {
	terms := make([]Wire, len(bits))
	for i, b := range bits {
		if v>>uint(i)&1 == 1 {
			terms[i] = b
		} else {
			terms[i] = n.Not(b)
		}
	}
	return n.ReduceAnd(terms)
}

// GateCount returns the number of logic gates (excluding inputs/constants).
func (n *Netlist) GateCount() int {
	c := 0
	for _, k := range n.kinds {
		if k != GateInput && k != GateConst {
			c++
		}
	}
	return c
}

// Levels returns the worst-case combinational depth over the given outputs
// (or the whole netlist when outs is empty).
func (n *Netlist) Levels(outs ...Wire) int {
	max := int32(0)
	if len(outs) == 0 {
		for _, l := range n.levels {
			if l > max {
				max = l
			}
		}
	} else {
		for _, w := range outs {
			if n.levels[w] > max {
				max = n.levels[w]
			}
		}
	}
	return int(max)
}

// Eval computes all wires for the given input assignment (inputs in creation
// order) and returns a lookup function. Used by tests to verify the circuit
// against the behavioural model.
func (n *Netlist) Eval(inputs []bool) func(Wire) bool {
	vals := make([]bool, len(n.kinds))
	ii := 0
	for w, k := range n.kinds {
		switch k {
		case GateInput:
			if ii >= len(inputs) {
				panic("logicsim: not enough input values")
			}
			vals[w] = inputs[ii]
			ii++
		case GateConst:
			vals[w] = n.consts[w]
		case GateNOT:
			vals[w] = !vals[n.in0[w]]
		case GateAND:
			vals[w] = vals[n.in0[w]] && vals[n.in1[w]]
		case GateOR:
			vals[w] = vals[n.in0[w]] || vals[n.in1[w]]
		case GateXOR:
			vals[w] = vals[n.in0[w]] != vals[n.in1[w]]
		case GateXNOR:
			vals[w] = vals[n.in0[w]] == vals[n.in1[w]]
		}
	}
	return func(w Wire) bool { return vals[w] }
}

// NumInputs returns the number of primary inputs.
func (n *Netlist) NumInputs() int {
	c := 0
	for _, k := range n.kinds {
		if k == GateInput {
			c++
		}
	}
	return c
}

// reduceOrSerial builds a linear OR chain (what a naive synthesis of
// sequential RTL produces; depth grows linearly instead of logarithmically).
func (n *Netlist) reduceOrSerial(ws []Wire) Wire {
	if len(ws) == 0 {
		return n.Const(false)
	}
	acc := ws[0]
	for _, w := range ws[1:] {
		acc = n.Or(acc, w)
	}
	return acc
}

// reduceAndSerial builds a linear AND chain.
func (n *Netlist) reduceAndSerial(ws []Wire) Wire {
	if len(ws) == 0 {
		return n.Const(true)
	}
	acc := ws[0]
	for _, w := range ws[1:] {
		acc = n.And(acc, w)
	}
	return acc
}

// BulkMark is the constructed marking circuit with its interface wires.
type BulkMark struct {
	Net *Netlist

	Ways     int
	ArchRegs int
	archBits int

	// Inputs, per way: flusher flag, destination-valid flag, destination
	// architectural register id bits.
	Flusher  []Wire
	DstValid []Wire
	DstArch  [][]Wire

	// Outputs: MarkSRT[a] — mark the ptag currently mapped by SRT entry a
	// (as of the start of the group, unless an older way redefined a, in
	// which case that way's ptag is marked through MarkWay instead);
	// MarkWay[j] — mark way j's newly allocated ptag.
	MarkSRT []Wire
	MarkWay []Wire
}

// BuildBulkMark constructs the serial-semantics bulk marking circuit for an
// N-way rename group over archRegs architectural registers, using balanced
// reduction trees (the optimized implementation).
func BuildBulkMark(ways, archRegs int) *BulkMark {
	return buildBulkMark(ways, archRegs, false)
}

// BuildBulkMarkNaive constructs the same circuit with linear gate chains and
// mux-based state propagation, mirroring what straightforward synthesis of
// the serial RTL produces; its depth and gate count correspond to the
// paper's reported Yosys results (§4.4: 42 levels, 2,960 gates at 8-wide).
func BuildBulkMarkNaive(ways, archRegs int) *BulkMark {
	return buildBulkMark(ways, archRegs, true)
}

func buildBulkMark(ways, archRegs int, naive bool) *BulkMark {
	bits := 0
	for 1<<bits < archRegs {
		bits++
	}
	n := New()
	reduceOr := n.ReduceOr
	reduceAnd := n.ReduceAnd
	if naive {
		reduceOr = n.reduceOrSerial
		reduceAnd = n.reduceAndSerial
	}
	b := &BulkMark{Net: n, Ways: ways, ArchRegs: archRegs, archBits: bits}
	for i := 0; i < ways; i++ {
		b.Flusher = append(b.Flusher, n.Input())
		b.DstValid = append(b.DstValid, n.Input())
		dst := make([]Wire, bits)
		for j := range dst {
			dst[j] = n.Input()
		}
		b.DstArch = append(b.DstArch, dst)
	}

	// ownsSRT[a] tracks, per way position, whether SRT entry a is still
	// the live mapping for a (no older way in the group redefined it).
	// This chain is what serializes the ways.
	ownsSRT := make([]Wire, archRegs)
	for a := range ownsSRT {
		ownsSRT[a] = n.Const(true)
	}
	// wayLive[j][later stages] tracks whether way j's destination is still
	// the live mapping at the current position.
	wayLive := make([][]Wire, ways)

	markSRT := make([][]Wire, archRegs) // per arch: terms to OR
	markWay := make([][]Wire, ways)

	eqConst := func(bits []Wire, v uint64) Wire {
		terms := make([]Wire, len(bits))
		for i, w := range bits {
			if v>>uint(i)&1 == 1 {
				terms[i] = w
			} else {
				terms[i] = n.Not(w)
			}
		}
		return reduceAnd(terms)
	}

	for i := 0; i < ways; i++ {
		// eq[a]: way i redefines architectural register a.
		eq := make([]Wire, archRegs)
		for a := 0; a < archRegs; a++ {
			eq[a] = n.And(b.DstValid[i], eqConst(b.DstArch[i], uint64(a)))
		}
		// A flusher at way i marks every mapping live at its position.
		for a := 0; a < archRegs; a++ {
			markSRT[a] = append(markSRT[a], n.And(b.Flusher[i], ownsSRT[a]))
		}
		for j := 0; j < i; j++ {
			live := wayLive[j][len(wayLive[j])-1]
			markWay[j] = append(markWay[j], n.And(b.Flusher[i], live))
		}
		// A branch-class flusher also marks its own destination; the
		// flag input is shared here (fault-class gating happens in the
		// decoder before this block), so own-marking uses the same
		// flusher wire ANDed with dst validity.
		markWay[i] = append(markWay[i], n.And(b.Flusher[i], b.DstValid[i]))

		// Update liveness chains past way i. The naive variant models
		// synthesized priority-mux structures; the optimized one uses
		// AND-NOT kills.
		for a := 0; a < archRegs; a++ {
			if naive {
				ownsSRT[a] = n.Mux(eq[a], n.Const(false), ownsSRT[a])
			} else {
				ownsSRT[a] = n.And(ownsSRT[a], n.Not(eq[a]))
			}
		}
		for j := 0; j < i; j++ {
			prev := wayLive[j][len(wayLive[j])-1]
			// way j's dst stops being live if way i redefines the
			// same architectural register.
			sameArch := make([]Wire, 0, b.archBits)
			for k := 0; k < b.archBits; k++ {
				sameArch = append(sameArch, n.Xnor(b.DstArch[j][k], b.DstArch[i][k]))
			}
			redef := n.And(b.DstValid[i], reduceAnd(sameArch))
			if naive {
				wayLive[j] = append(wayLive[j], n.Mux(redef, n.Const(false), prev))
			} else {
				wayLive[j] = append(wayLive[j], n.And(prev, n.Not(redef)))
			}
		}
		wayLive[i] = []Wire{b.DstValid[i]}
	}

	for a := 0; a < archRegs; a++ {
		b.MarkSRT = append(b.MarkSRT, reduceOr(markSRT[a]))
	}
	for j := 0; j < ways; j++ {
		b.MarkWay = append(b.MarkWay, reduceOr(markWay[j]))
	}
	return b
}

// Outputs returns all output wires.
func (b *BulkMark) Outputs() []Wire {
	out := append([]Wire(nil), b.MarkSRT...)
	return append(out, b.MarkWay...)
}

// Synthesis reports the §4.4 cost metrics for a built circuit.
type Synthesis struct {
	Gates      int
	Levels     int
	DelayPS    float64 // FO4 delay with 100% wire/fan-in margin, as in §4.4
	ClockGHz   float64
	PipeStages int
	PipeGHz    float64 // frequency with the circuit cut into PipeStages
}

// FO4ps is the assumed fanout-of-4 inverter delay at 5nm (§4.4 cites 4.5ps).
const FO4ps = 4.5

// Synthesize computes the metrics for b, optionally pipelined into stages.
func (b *BulkMark) Synthesize(stages int) Synthesis {
	levels := b.Net.Levels(b.Outputs()...)
	delay := float64(levels) * FO4ps * 2 // 100% margin per the paper
	s := Synthesis{
		Gates:      b.Net.GateCount(),
		Levels:     levels,
		DelayPS:    delay,
		ClockGHz:   1000.0 / delay,
		PipeStages: stages,
	}
	if stages > 1 {
		per := (levels + stages - 1) / stages
		s.PipeGHz = 1000.0 / (float64(per) * FO4ps * 2)
	} else {
		s.PipeGHz = s.ClockGHz
	}
	return s
}

func (s Synthesis) String() string {
	return fmt.Sprintf("%d gates, %d levels, %.0f ps (%.2f GHz; %d-stage: %.2f GHz)",
		s.Gates, s.Levels, s.DelayPS, s.ClockGHz, s.PipeStages, s.PipeGHz)
}
