package core

import (
	"testing"

	"atr/internal/config"
	"atr/internal/isa"
)

func meCfg(s config.ReleaseScheme) config.Config {
	c := testCfg(s)
	c.MoveElimination = true
	return c
}

func move(dst, src isa.Reg) isa.Inst {
	return isa.NewInst(isa.OpMove, []isa.Reg{dst}, []isa.Reg{src})
}

func TestMoveEliminationShares(t *testing.T) {
	e := NewEngine(meCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	free := e.FreeCount(isa.ClassGPR)
	mv := move(isa.R3, isa.R1)
	outM := e.Rename(&mv, 2)
	if !outM.Dsts[0].Eliminated {
		t.Fatal("move not eliminated")
	}
	if outM.Dsts[0].New != out1.Dsts[0].New {
		t.Fatalf("destination %v does not alias source %v", outM.Dsts[0].New, out1.Dsts[0].New)
	}
	if e.FreeCount(isa.ClassGPR) != free {
		t.Error("elimination must not allocate")
	}
	if e.Lookup(isa.R3) != out1.Dsts[0].New {
		t.Error("SRT not aliased")
	}
	if e.Stats.Get("rename.moveelim") != 1 {
		t.Error("elimination not counted")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMoveEliminationRefCountRelease(t *testing.T) {
	e := NewEngine(meCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	p := out1.Dsts[0].New
	mv := move(isa.R3, isa.R1)
	e.Rename(&mv, 2)

	// Redefine r1: its mapping releases one reference; the register stays
	// live for r3.
	re1 := alu(isa.R1, isa.R4)
	o1 := e.Rename(&re1, 3)
	e.RedefinerCommitted(o1.Dsts[0], 5)
	if e.banks[p.Class].pregs[p.Tag].free {
		t.Fatal("shared register freed while a mapping survives")
	}
	if e.banks[p.Class].pregs[p.Tag].refs != 1 {
		t.Fatalf("refs = %d, want 1", e.banks[p.Class].pregs[p.Tag].refs)
	}
	// Redefine r3: the last reference goes, the register frees.
	re3 := alu(isa.R3, isa.R4)
	o3 := e.Rename(&re3, 6)
	e.RedefinerCommitted(o3.Dsts[0], 8)
	if !e.banks[p.Class].pregs[p.Tag].free {
		t.Error("last release did not free the shared register")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMoveEliminationWithATRClaim(t *testing.T) {
	// The paper's §6 composition: an atomic redefinition of a shared
	// register's mapping releases one reference early.
	e := NewEngine(meCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	p := out1.Dsts[0].New
	mv := move(isa.R3, isa.R1)
	outM := e.Rename(&mv, 2)
	if e.banks[p.Class].pregs[p.Tag].refs != 2 {
		t.Fatal("setup: expected sharing")
	}
	// The move reads its source (it is a consumer of p like any other).
	e.ConsumerIssued(outM.Srcs[0], 2)
	// Atomic redefinition of r1: claim + early decrement.
	re1 := alu(isa.R1, isa.R4)
	o1 := e.Rename(&re1, 3)
	if o1.Dsts[0].PrevValid {
		t.Fatal("atomic redefinition of a shared mapping should claim")
	}
	if e.Stats.Get("release.atr") != 1 {
		t.Fatalf("release.atr = %d, want 1 (early reference drop)", e.Stats.Get("release.atr"))
	}
	if e.banks[p.Class].pregs[p.Tag].free {
		t.Fatal("register freed while r3's mapping lives")
	}
	if e.banks[p.Class].pregs[p.Tag].refs != 1 {
		t.Errorf("refs = %d, want 1 after early decrement", e.banks[p.Class].pregs[p.Tag].refs)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMoveEliminationFlushDecrements(t *testing.T) {
	e := NewEngine(meCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	p := out1.Dsts[0].New
	cp := e.TakeCheckpoint()
	mv := move(isa.R3, isa.R1)
	outM := e.Rename(&mv, 2)
	if e.banks[p.Class].pregs[p.Tag].refs != 2 {
		t.Fatal("setup: expected refs 2")
	}
	// The move is flushed: its reference drops, the original survives.
	e.FlushInstr(&outM, 4)
	e.RestoreCheckpoint(cp)
	if e.banks[p.Class].pregs[p.Tag].refs != 1 {
		t.Errorf("refs = %d after move flush, want 1", e.banks[p.Class].pregs[p.Tag].refs)
	}
	if e.banks[p.Class].pregs[p.Tag].free {
		t.Error("original allocation freed by the move's flush")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMoveEliminationDisabledByDefault(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	mv := move(isa.R3, isa.R1)
	outM := e.Rename(&mv, 2)
	if outM.Dsts[0].Eliminated {
		t.Error("elimination fired with MoveElimination off")
	}
	if outM.Dsts[0].New == out1.Dsts[0].New {
		t.Error("move must allocate when elimination is off")
	}
}
