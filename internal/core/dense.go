package core

import (
	"fmt"

	"atr/internal/isa"
	"atr/internal/stats"
)

// This file holds the dense, allocation-keyed side tables that replaced the
// engine's three hot maps (lives, claims, earlyReleased). Profiling showed
// the maps — keyed by Alloc / (Alloc, arch reg) structs and touched several
// times per simulated instruction — cost ~30% of sweep runtime in hashing
// alone. Each table is now a structure-of-arrays store indexed by physical
// register tag: a per-tag chain head plus one contiguous node arena with an
// index free list, so the common lookup is one slice index and one
// generation compare on adjacent memory. Chains exist because a record can
// outlive its allocation (an early-released tag is re-allocated while the
// old allocation's lifetime record waits for its redefiner to commit), but
// they are almost always one node long. Nodes recycle through the free
// list, so steady state performs no allocation; generation tags make stale
// lookups miss exactly as the map's composite keys did.

// lifeNode is one spilled register lifetime, chained per tag.
type lifeNode struct {
	gen  uint32
	next int32
	rec  stats.RegLifetime
}

// lifeTab stores the live RegLifetime records of one register class, keyed
// by (tag, generation). The current generation of each tag — the one the
// rename/consume/complete hot path touches — lives in a fixed inline lane
// (inGen/inRec, indexed directly by tag); only displaced records (an
// early-released tag re-allocated while the old allocation's record still
// waits for its redefiner to commit) spill to the chain arena. Generation 0
// is never allocated (bank.alloc pre-increments), so inGen[tag] == 0 marks
// an empty inline slot.
type lifeTab struct {
	inGen []uint32            // per tag; 0 = empty
	inRec []stats.RegLifetime // per tag, valid when inGen[tag] != 0
	head  []int32             // spill chains per tag; -1 terminates
	nodes []lifeNode
	free  []int32
	n     int
}

func newLifeTab(npregs int) lifeTab {
	head := make([]int32, npregs)
	for i := range head {
		head[i] = -1
	}
	return lifeTab{
		inGen: make([]uint32, npregs),
		inRec: make([]stats.RegLifetime, npregs),
		head:  head,
	}
}

// get returns the record for (tag, gen), or nil. The pointer is valid only
// until the next put (a spilled record moves, and the arena may grow);
// callers use it statement-locally.
func (t *lifeTab) get(tag PTag, gen uint32) *stats.RegLifetime {
	if t.inGen[tag] == gen {
		return &t.inRec[tag]
	}
	for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].gen == gen {
			return &t.nodes[i].rec
		}
	}
	return nil
}

// spill pushes a record onto tag's overflow chain (count unchanged).
func (t *lifeTab) spill(tag PTag, gen uint32, rec stats.RegLifetime) {
	var i int32
	if n := len(t.free) - 1; n >= 0 {
		i = t.free[n]
		t.free = t.free[:n]
	} else {
		t.nodes = append(t.nodes, lifeNode{})
		i = int32(len(t.nodes) - 1)
	}
	t.nodes[i] = lifeNode{gen: gen, next: t.head[tag], rec: rec}
	t.head[tag] = i
}

// put inserts a fresh record for (tag, gen), gen >= 1. The caller
// guarantees the key is absent (each allocation's record is created exactly
// once, at rename). A new allocation is always the tag's current
// generation, so it takes the inline slot, displacing any older record —
// which by definition is just waiting for its redefiner to commit — to the
// spill chain.
func (t *lifeTab) put(tag PTag, gen uint32, rec stats.RegLifetime) {
	if g := t.inGen[tag]; g != 0 {
		t.spill(tag, g, t.inRec[tag])
	}
	t.inGen[tag] = gen
	t.inRec[tag] = rec
	t.n++
}

// take removes the record for (tag, gen), returning it by value.
func (t *lifeTab) take(tag PTag, gen uint32) (stats.RegLifetime, bool) {
	if t.inGen[tag] == gen {
		rec := t.inRec[tag]
		t.inGen[tag] = 0
		t.inRec[tag] = stats.RegLifetime{}
		t.n--
		return rec, true
	}
	prev := int32(-1)
	for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].gen == gen {
			if prev < 0 {
				t.head[tag] = t.nodes[i].next
			} else {
				t.nodes[prev].next = t.nodes[i].next
			}
			rec := t.nodes[i].rec
			t.nodes[i] = lifeNode{next: -1}
			t.free = append(t.free, i)
			t.n--
			return rec, true
		}
		prev = i
	}
	return stats.RegLifetime{}, false
}

// drain removes every record, calling fn for each. Record order across tags
// is ascending tag, inline before spills; the ledger's accumulation is
// order-insensitive sums, so this cannot perturb results relative to the
// old map iteration.
func (t *lifeTab) drain(fn func(*stats.RegLifetime)) {
	for tag := range t.head {
		if t.inGen[tag] != 0 {
			fn(&t.inRec[tag])
			t.inGen[tag] = 0
			t.inRec[tag] = stats.RegLifetime{}
			t.n--
		}
		for i := t.head[tag]; i >= 0; {
			next := t.nodes[i].next
			fn(&t.nodes[i].rec)
			t.nodes[i] = lifeNode{next: -1}
			t.free = append(t.free, i)
			t.n--
			i = next
		}
		t.head[tag] = -1
	}
}

// claimNode is one open ATR claim record, keyed per mapping: the claimed
// previous allocation's generation plus the redefiner's architectural
// register (move elimination lets several arch regs share one tag).
type claimNode struct {
	gen  uint32
	reg  isa.Reg
	next int32
	cs   claimState
}

// claimTab stores claimState per mapping for one register class.
type claimTab struct {
	head  []int32
	nodes []claimNode
	free  []int32
	n     int
}

func newClaimTab(npregs int) claimTab {
	head := make([]int32, npregs)
	for i := range head {
		head[i] = -1
	}
	return claimTab{head: head}
}

func (t *claimTab) find(tag PTag, gen uint32, reg isa.Reg) int32 {
	for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].gen == gen && t.nodes[i].reg == reg {
			return i
		}
	}
	return -1
}

// ref returns a mutable pointer to one mapping's claim state, or nil. The
// pointer is valid only until the next set (the arena may grow); callers
// use it statement-locally.
func (t *claimTab) ref(tag PTag, gen uint32, reg isa.Reg) *claimState {
	if i := t.find(tag, gen, reg); i >= 0 {
		return &t.nodes[i].cs
	}
	return nil
}

// set upserts the claim state of one mapping (map-assignment semantics).
func (t *claimTab) set(tag PTag, gen uint32, reg isa.Reg, cs claimState) {
	if i := t.find(tag, gen, reg); i >= 0 {
		t.nodes[i].cs = cs
		return
	}
	var i int32
	if n := len(t.free) - 1; n >= 0 {
		i = t.free[n]
		t.free = t.free[:n]
	} else {
		t.nodes = append(t.nodes, claimNode{})
		i = int32(len(t.nodes) - 1)
	}
	t.nodes[i] = claimNode{gen: gen, reg: reg, next: t.head[tag], cs: cs}
	t.head[tag] = i
	t.n++
}

// take removes one mapping's claim record, returning it by value (the
// map's load-and-delete idiom).
func (t *claimTab) take(tag PTag, gen uint32, reg isa.Reg) (claimState, bool) {
	prev := int32(-1)
	for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].gen == gen && t.nodes[i].reg == reg {
			if prev < 0 {
				t.head[tag] = t.nodes[i].next
			} else {
				t.nodes[prev].next = t.nodes[i].next
			}
			cs := t.nodes[i].cs
			t.nodes[i] = claimNode{next: -1}
			t.free = append(t.free, i)
			t.n--
			return cs, true
		}
		prev = i
	}
	return claimState{}, false
}

// markNode is one early-release marker (set membership only).
type markNode struct {
	gen  uint32
	reg  isa.Reg
	next int32
}

// markTab is the dense replacement of the earlyReleased set: mappings whose
// physical-register reference was already dropped by ATR or nonspec-ER, so
// commit and flush reclamation must skip them exactly once each.
type markTab struct {
	head  []int32
	nodes []markNode
	free  []int32
	n     int
}

func newMarkTab(npregs int) markTab {
	head := make([]int32, npregs)
	for i := range head {
		head[i] = -1
	}
	return markTab{head: head}
}

// add inserts the mapping if absent (map-set semantics: no duplicates).
func (t *markTab) add(tag PTag, gen uint32, reg isa.Reg) {
	for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].gen == gen && t.nodes[i].reg == reg {
			return
		}
	}
	var i int32
	if n := len(t.free) - 1; n >= 0 {
		i = t.free[n]
		t.free = t.free[:n]
	} else {
		t.nodes = append(t.nodes, markNode{})
		i = int32(len(t.nodes) - 1)
	}
	t.nodes[i] = markNode{gen: gen, reg: reg, next: t.head[tag]}
	t.head[tag] = i
	t.n++
}

// takeOne removes the mapping if present, reporting whether it was (the
// map's test-and-delete idiom).
func (t *markTab) takeOne(tag PTag, gen uint32, reg isa.Reg) bool {
	prev := int32(-1)
	for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].gen == gen && t.nodes[i].reg == reg {
			if prev < 0 {
				t.head[tag] = t.nodes[i].next
			} else {
				t.nodes[prev].next = t.nodes[i].next
			}
			t.nodes[i] = markNode{next: -1}
			t.free = append(t.free, i)
			t.n--
			return true
		}
		prev = i
	}
	return false
}

// checkTab validates one chain store's arena accounting: every arena slot
// is reachable from exactly one chain or the free list, chains contain no
// duplicate keys, and the live count matches. The churn tests run it after
// heavy recycling to prove slot reuse never aliases live state.
func checkTab(name string, nNodes int, heads []int32, free []int32, n int,
	next func(int32) int32, sameKey func(a, b int32) bool) error {
	seen := make([]bool, nNodes)
	live := 0
	for tag, h := range heads {
		var chain []int32
		for i := h; i >= 0; i = next(i) {
			if int(i) >= nNodes {
				return fmt.Errorf("core: %s tag %d chain index %d out of range", name, tag, i)
			}
			if seen[i] {
				return fmt.Errorf("core: %s node %d reachable twice", name, i)
			}
			seen[i] = true
			for _, j := range chain {
				if sameKey(i, j) {
					return fmt.Errorf("core: %s tag %d has duplicate key in chain", name, tag)
				}
			}
			chain = append(chain, i)
			live++
		}
	}
	if live != n {
		return fmt.Errorf("core: %s live count %d, counter says %d", name, live, n)
	}
	for _, i := range free {
		if int(i) >= nNodes {
			return fmt.Errorf("core: %s free index %d out of range", name, i)
		}
		if seen[i] {
			return fmt.Errorf("core: %s node %d both live and free", name, i)
		}
		seen[i] = true
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("core: %s node %d leaked (neither live nor free)", name, i)
		}
	}
	return nil
}

func (t *lifeTab) check() error {
	inline := 0
	for tag := range t.inGen {
		if t.inGen[tag] == 0 {
			continue
		}
		inline++
		for i := t.head[tag]; i >= 0; i = t.nodes[i].next {
			if t.nodes[i].gen == t.inGen[tag] {
				return fmt.Errorf("core: lifeTab tag %d generation %d both inline and spilled", tag, t.inGen[tag])
			}
		}
	}
	return checkTab("lifeTab", len(t.nodes), t.head, t.free, t.n-inline,
		func(i int32) int32 { return t.nodes[i].next },
		func(a, b int32) bool { return t.nodes[a].gen == t.nodes[b].gen })
}

func (t *claimTab) check() error {
	return checkTab("claimTab", len(t.nodes), t.head, t.free, t.n,
		func(i int32) int32 { return t.nodes[i].next },
		func(a, b int32) bool {
			return t.nodes[a].gen == t.nodes[b].gen && t.nodes[a].reg == t.nodes[b].reg
		})
}

func (t *markTab) check() error {
	return checkTab("markTab", len(t.nodes), t.head, t.free, t.n,
		func(i int32) int32 { return t.nodes[i].next },
		func(a, b int32) bool {
			return t.nodes[a].gen == t.nodes[b].gen && t.nodes[a].reg == t.nodes[b].reg
		})
}
