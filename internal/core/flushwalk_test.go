package core

import (
	"math/rand"
	"testing"

	"atr/internal/config"
	"atr/internal/isa"
)

func TestFlushWalkerSkipsReleased(t *testing.T) {
	// Figure 8 scenario, then a flush of the whole region: the walker
	// must reclaim everything except the already-released register.
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R2, isa.R1)
	out2 := e.Rename(&i2, 2)
	i3 := alu(isa.R1, isa.R3)
	out3 := e.Rename(&i3, 3)
	if out3.Dsts[0].PrevValid {
		t.Fatal("setup: expected claim")
	}
	e.ConsumerIssued(out2.Srcs[0], 4) // releases out1's register

	w := NewFlushWalker()
	recs := []FlushRecord{
		{Out: &out3, Srcs: []isa.Reg{isa.R3}, Issued: false},
		{Out: &out2, Srcs: []isa.Reg{isa.R1}, Issued: true},
		{Out: &out1, Srcs: []isa.Reg{isa.R2}, Issued: true},
	}
	reclaim, err := w.Walk(recs)
	if err != nil {
		t.Fatal(err)
	}
	// out1's register was ATR-released: must NOT be reclaimed. out2's and
	// out3's must be.
	want := map[Alloc]bool{out2.Dsts[0].New: true, out3.Dsts[0].New: true}
	if len(reclaim) != 2 {
		t.Fatalf("reclaim = %v, want exactly out2+out3 allocations", reclaim)
	}
	for _, a := range reclaim {
		if !want[a] {
			t.Errorf("unexpected reclaim of %v", a)
		}
	}
}

func TestFlushWalkerUnissuedConsumerPins(t *testing.T) {
	// Same region, but the consumer never issued: the register was not
	// released, so the walker must reclaim it via the consumed-bit clear.
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R2, isa.R1)
	out2 := e.Rename(&i2, 2)
	i3 := alu(isa.R1, isa.R3)
	out3 := e.Rename(&i3, 3)
	// No ConsumerIssued: p1 still allocated.
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("setup: p1 must still be live")
	}
	w := NewFlushWalker()
	reclaim, err := w.Walk([]FlushRecord{
		{Out: &out3, Srcs: []isa.Reg{isa.R3}, Issued: false},
		{Out: &out2, Srcs: []isa.Reg{isa.R1}, Issued: false}, // unissued consumer
		{Out: &out1, Srcs: []isa.Reg{isa.R2}, Issued: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaim) != 3 {
		t.Fatalf("reclaim = %v, want all three allocations", reclaim)
	}
}

func TestFlushWalkerChainedRegions(t *testing.T) {
	// Nested claims on the same architectural register: r1 redefined
	// three times, each redefinition claiming its predecessor; all
	// consumed. The walker's flag ping-pong must skip both released
	// registers and reclaim only the youngest.
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R1, isa.R3)
	out2 := e.Rename(&i2, 2)
	complete(e, &out2, 2)
	i3 := alu(isa.R1, isa.R4)
	out3 := e.Rename(&i3, 3)
	if out2.Dsts[0].PrevValid || out3.Dsts[0].PrevValid {
		t.Fatal("setup: both redefinitions should claim")
	}
	if e.Stats.Get("release.atr") != 2 {
		t.Fatalf("setup: expected two early releases, got %d", e.Stats.Get("release.atr"))
	}
	w := NewFlushWalker()
	reclaim, err := w.Walk([]FlushRecord{
		{Out: &out3, Srcs: []isa.Reg{isa.R4}, Issued: false},
		{Out: &out2, Srcs: []isa.Reg{isa.R3}, Issued: false},
		{Out: &out1, Srcs: []isa.Reg{isa.R2}, Issued: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaim) != 1 || reclaim[0] != out3.Dsts[0].New {
		t.Errorf("reclaim = %v, want only the youngest allocation", reclaim)
	}
}

// TestFlushWalkerMatchesOracle drives random rename/consume sequences and
// compares the paper's 2-bit walk algorithm against the generation-tagged
// oracle (the engine's own free-state tracking): the set of ptags the walker
// reclaims must equal the set the engine still considers live among the
// flushed allocations.
func TestFlushWalkerMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	dataRegs := []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5}
	for trial := 0; trial < 300; trial++ {
		e := NewEngine(testCfg(config.SchemeATR).WithPhysRegs(96))
		poison(e)
		type instRec struct {
			out  RenameOut
			srcs []isa.Reg
			// pending source allocs not yet issued
			pend []Alloc
			iss  bool
		}
		var hist []instRec
		cycle := uint64(1)
		// Random straight-line block (no flushers inside, so everything
		// after the leading branch can be flushed as one unit).
		n := 4 + r.Intn(20)
		for i := 0; i < n; i++ {
			dst := dataRegs[r.Intn(len(dataRegs))]
			s1 := dataRegs[r.Intn(len(dataRegs))]
			s2 := dataRegs[r.Intn(len(dataRegs))]
			in := alu(dst, s1, s2)
			out := e.Rename(&in, cycle)
			rec := instRec{out: out, srcs: []isa.Reg{s1, s2}}
			for j := 0; j < out.NumSrcs; j++ {
				rec.pend = append(rec.pend, out.Srcs[j])
			}
			hist = append(hist, rec)
			cycle++
			// Randomly issue some older instructions (reads + completion).
			for k := range hist {
				if !hist[k].iss && r.Intn(3) == 0 {
					for _, a := range hist[k].pend {
						e.ConsumerIssued(a, cycle)
					}
					if hist[k].out.NumDsts > 0 {
						e.ProducerCompleted(hist[k].out.Dsts[0].New, cycle)
					}
					hist[k].iss = true
				}
			}
		}
		// Record which flushed allocations the oracle still holds live.
		// A claimed, redefined, fully-consumed register whose only
		// outstanding release condition is its (flushed) producer's
		// pending write belongs to ATR: the squash clears the write and
		// the deferred release fires, so the walker rightly skips it.
		oracle := make(map[Alloc]bool)
		for _, rec := range hist {
			for i := 0; i < rec.out.NumDsts; i++ {
				d := rec.out.Dsts[i]
				p := &e.banks[d.New.Class].pregs[d.New.Tag]
				if p.gen != d.New.Gen || p.free {
					continue
				}
				if p.claimed && p.redefined && p.count == 0 {
					continue // deferred ATR release
				}
				oracle[d.New] = true
			}
		}
		// Run the paper's walk over the whole block, youngest first.
		w := NewFlushWalker()
		var recs []FlushRecord
		for i := len(hist) - 1; i >= 0; i-- {
			recs = append(recs, FlushRecord{
				Out:    &hist[i].out,
				Srcs:   hist[i].srcs,
				Issued: hist[i].iss,
			})
		}
		reclaim, err := w.Walk(recs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make(map[Alloc]bool, len(reclaim))
		for _, a := range reclaim {
			if got[a] {
				t.Fatalf("trial %d: walker reclaimed %v twice", trial, a)
			}
			got[a] = true
		}
		for a := range oracle {
			if !got[a] {
				t.Fatalf("trial %d: walker missed live allocation %v (leak)", trial, a)
			}
		}
		for a := range got {
			if !oracle[a] {
				t.Fatalf("trial %d: walker reclaimed released allocation %v (double free)", trial, a)
			}
		}
	}
}
