// Package core implements the register renaming and release machinery that
// is the subject of the paper: the speculative renaming table (SRT), the
// physical register free list, per-register consumer counters, atomic commit
// region detection with bulk no-early-release marking (§4.2.2), early atomic
// release (§4.2.3), double-free avoidance (§4.2.4), non-speculative early
// release (§2.3), and the combined scheme (§4.3).
//
// The Engine is driven by the pipeline through a small event protocol:
//
//	Rename            — allocate destinations, count consumers, detect
//	                    atomic regions, claim ATR-releasable ptags
//	ConsumerIssued    — a consumer read its sources (counter decrement)
//	Tick              — advance the pipelined redefine-signal delay queue
//	RedefinerPrecommitted / RedefinerCommitted — release points for
//	                    nonspec-ER and the baseline
//	AllocFlushed / PrevRedefineUndone — flush-walk notifications
//
// Every allocation is generation-tagged so that stale references (a ptag
// that was early-released and re-allocated) are detected exactly; this is
// the oracle against which the paper's 2-bit flush-walk algorithm
// (FlushWalker) is property-tested.
package core

import (
	"fmt"

	"atr/internal/isa"
)

// PTag names a physical register within its class's register file.
type PTag int32

// PTagInvalid marks an absent physical register reference (the paper's
// "invalid previous ptag").
const PTagInvalid PTag = -1

// Alloc identifies one allocation of a physical register: the tag plus a
// generation number that increments each time the tag is re-allocated.
// Comparing generations detects stale references exactly.
type Alloc struct {
	Class isa.RegClass
	Tag   PTag
	Gen   uint32
}

// Valid reports whether a references a real allocation.
func (a Alloc) Valid() bool { return a.Tag != PTagInvalid }

func (a Alloc) String() string {
	if !a.Valid() {
		return "p-"
	}
	c := "p"
	if a.Class == isa.ClassFPR {
		c = "fp"
	}
	return fmt.Sprintf("%s%d.%d", c, a.Tag, a.Gen)
}

// DstAlloc is the rename outcome for one destination register: the new
// mapping plus the previous mapping that must eventually be released.
type DstAlloc struct {
	Reg isa.Reg
	New Alloc
	// Prev is the mapping replaced by this rename. When PrevValid is
	// false the previous-ptag field was invalidated at rename because ATR
	// claimed the release (§4.2.4); commit must then not free it.
	Prev      Alloc
	PrevValid bool

	// Eliminated marks a move-eliminated destination: New aliases the
	// move's source register (no allocation happened), so the pipeline
	// must not reset its readiness or write it back.
	Eliminated bool
}

// RenameOut is the result of renaming one instruction.
type RenameOut struct {
	Srcs [isa.MaxSrcs]Alloc
	Dsts [isa.MaxDsts]DstAlloc
	// NumDsts and NumSrcs give the count of valid entries.
	NumDsts, NumSrcs int
}
