package core

import (
	"math/rand"
	"sync"
	"testing"

	"atr/internal/stats"
)

// TestLifeTabChurnNoAliasing hammers the dense lifetime store's free-list
// recycling against a shadow map: tens of thousands of put/get/take cycles
// over a handful of tags, with generations recycling fast enough that
// every arena node is reused many times and the inline lane spills and
// refills constantly. A recycled slot must never alias live state — a
// stale (tag, generation) lookup must miss exactly as the old map's
// composite keys did, and a live lookup must return the exact record that
// was stored, not a neighbor's. The structural invariants (free list
// disjoint from chains, no duplicate keys, count consistency) are checked
// throughout via the same check() the engine's CheckInvariants calls.
func TestLifeTabChurnNoAliasing(t *testing.T) {
	const (
		npregs = 8
		steps  = 50_000
	)
	rng := rand.New(rand.NewSource(0xA17))
	tab := newLifeTab(npregs)

	type key struct {
		tag PTag
		gen uint32
	}
	shadow := make(map[key]stats.RegLifetime)
	nextGen := make([]uint32, npregs) // per-tag generation counter, as bank.alloc keeps
	liveGens := make([][]uint32, npregs)
	retired := make([]key, 0, steps) // removed keys: must stay misses

	// unique builds a distinguishable record so aliasing (returning a
	// neighbor slot's record) is caught by value comparison, not just by
	// the ok flag.
	unique := func(tag PTag, gen uint32) stats.RegLifetime {
		return stats.RegLifetime{
			Renamed:   uint64(tag)<<32 | uint64(gen),
			Consumers: int(gen),
		}
	}

	for step := 0; step < steps; step++ {
		tag := PTag(rng.Intn(npregs))
		switch op := rng.Intn(10); {
		case op < 4: // put a fresh generation (the tag's new current allocation)
			nextGen[tag]++
			gen := nextGen[tag]
			tab.put(tag, gen, unique(tag, gen))
			shadow[key{tag, gen}] = unique(tag, gen)
			liveGens[tag] = append(liveGens[tag], gen)
		case op < 7: // take a random live generation of this tag
			if len(liveGens[tag]) == 0 {
				continue
			}
			i := rng.Intn(len(liveGens[tag]))
			gen := liveGens[tag][i]
			liveGens[tag] = append(liveGens[tag][:i], liveGens[tag][i+1:]...)
			k := key{tag, gen}
			got, ok := tab.take(tag, gen)
			if !ok {
				t.Fatalf("step %d: take(%d,%d) missed a live record", step, tag, gen)
			}
			if want := shadow[k]; got != want {
				t.Fatalf("step %d: take(%d,%d) = %+v, want %+v (slot aliased)", step, tag, gen, got, want)
			}
			delete(shadow, k)
			retired = append(retired, k)
		default: // probe: live gens must hit with their exact record, stale must miss
			for _, gen := range liveGens[tag] {
				p := tab.get(tag, gen)
				if p == nil {
					t.Fatalf("step %d: get(%d,%d) lost a live record", step, tag, gen)
				}
				if want := shadow[key{tag, gen}]; *p != want {
					t.Fatalf("step %d: get(%d,%d) = %+v, want %+v (slot aliased)", step, tag, gen, *p, want)
				}
			}
			if len(retired) > 0 {
				k := retired[rng.Intn(len(retired))]
				if p := tab.get(k.tag, k.gen); p != nil {
					t.Fatalf("step %d: stale get(%d,%d) hit %+v after removal", step, k.tag, k.gen, *p)
				}
			}
		}
		if step%4096 == 0 {
			if err := tab.check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}

	if err := tab.check(); err != nil {
		t.Fatal(err)
	}
	drained := 0
	tab.drain(func(*stats.RegLifetime) { drained++ })
	if drained != len(shadow) {
		t.Fatalf("drain visited %d records, shadow holds %d", drained, len(shadow))
	}
	if tab.n != 0 {
		t.Fatalf("count %d after drain, want 0", tab.n)
	}
	if err := tab.check(); err != nil {
		t.Fatalf("post-drain: %v", err)
	}
}

// TestDenseTabsChurnParallel runs independent engines' worth of dense-tab
// churn on concurrent goroutines. The tables are engine-private by design;
// under -race this proves the arenas share no hidden package state, which
// is what lets the sweep engine and the lockstep batch executor run lanes
// on plain goroutines without synchronization.
func TestDenseTabsChurnParallel(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tab := newLifeTab(4)
			gen := make([]uint32, 4)
			live := make([][]uint32, 4)
			for step := 0; step < 20_000; step++ {
				tag := PTag(rng.Intn(4))
				if rng.Intn(2) == 0 {
					gen[tag]++
					tab.put(tag, gen[tag], stats.RegLifetime{Renamed: uint64(gen[tag])})
					live[tag] = append(live[tag], gen[tag])
				} else if n := len(live[tag]); n > 0 {
					i := rng.Intn(n)
					g := live[tag][i]
					live[tag] = append(live[tag][:i], live[tag][i+1:]...)
					if _, ok := tab.take(tag, g); !ok {
						t.Errorf("seed %d: take(%d,%d) missed", seed, tag, g)
						return
					}
				}
			}
			if err := tab.check(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
