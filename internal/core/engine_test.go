package core

import (
	"testing"
	"testing/quick"

	"atr/internal/config"
	"atr/internal/isa"
)

func testCfg(s config.ReleaseScheme) config.Config {
	c := config.GoldenCove().WithScheme(s).WithPhysRegs(64)
	return c
}

func alu(dst isa.Reg, srcs ...isa.Reg) isa.Inst {
	return isa.NewInst(isa.OpALU, []isa.Reg{dst}, srcs)
}

func load(dst isa.Reg, srcs ...isa.Reg) isa.Inst {
	return isa.NewInst(isa.OpLoad, []isa.Reg{dst}, srcs)
}

func branch() isa.Inst {
	return isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
}

func fusedBranch(a, b isa.Reg) isa.Inst {
	return isa.NewInst(isa.OpBranch, []isa.Reg{isa.Flags}, []isa.Reg{a, b})
}

func TestRenameBasics(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	before := e.Lookup(isa.R1)
	in := alu(isa.R1, isa.R2, isa.R3)
	out := e.Rename(&in, 10)
	if out.NumDsts != 1 || out.NumSrcs != 2 {
		t.Fatalf("counts: %d dsts %d srcs", out.NumDsts, out.NumSrcs)
	}
	d := out.Dsts[0]
	if d.Prev != before {
		t.Errorf("prev = %v, want %v", d.Prev, before)
	}
	if !d.PrevValid {
		t.Error("baseline must keep prev valid")
	}
	if e.Lookup(isa.R1) != d.New {
		t.Error("SRT not updated")
	}
	if d.New == before {
		t.Error("new allocation must differ from previous")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRenameSrcLookup(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	in1 := alu(isa.R5, isa.R6)
	out1 := e.Rename(&in1, 1)
	in2 := alu(isa.R7, isa.R5)
	out2 := e.Rename(&in2, 2)
	if out2.Srcs[0] != out1.Dsts[0].New {
		t.Errorf("consumer src %v, want producer dst %v", out2.Srcs[0], out1.Dsts[0].New)
	}
}

func TestConsumerCountSaturation(t *testing.T) {
	cfg := testCfg(config.SchemeATR)
	cfg.ConsumerCounterBits = 2 // sentinel at 3
	e := NewEngine(cfg)
	in1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&in1, 1)
	p := &e.banks[isa.ClassGPR].pregs[out1.Dsts[0].New.Tag]
	for i := 0; i < 5; i++ {
		c := alu(isa.R8, isa.R1)
		e.Rename(&c, 2)
	}
	if p.count != 3 {
		t.Errorf("count = %d, want saturated 3", p.count)
	}
	// Saturated: redefinition must not claim.
	re := alu(isa.R1, isa.R3)
	outR := e.Rename(&re, 3)
	if !outR.Dsts[0].PrevValid {
		t.Error("saturated counter must prevent ATR claim")
	}
}

// poison renames a leading branch, marking all initial mappings
// no-early-release. Real flushes always have such an older flusher, so tests
// that flush (or that want clean release accounting) start this way.
func poison(e *Engine) {
	br := branch()
	e.Rename(&br, 0)
}

// complete marks every destination of a rename as written back (producer
// execution), which is a release precondition: registers are never freed
// with a write in flight.
func complete(e *Engine, out *RenameOut, cycle uint64) {
	for i := range out.Dsts {
		if out.Dsts[i].New.Valid() {
			e.ProducerCompleted(out.Dsts[i].New, cycle)
		}
	}
}

func TestATRClaimAtomicRegion(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	// I1: r1 <- r2,r3 ; I2: r2 <- r1 ; I3: r1 <- r4 (redefine, atomic)
	i1 := alu(isa.R1, isa.R2, isa.R3)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R2, isa.R1)
	out2 := e.Rename(&i2, 2)
	complete(e, &out2, 2)
	i3 := alu(isa.R1, isa.R4)
	out3 := e.Rename(&i3, 3)
	if out3.Dsts[0].PrevValid {
		t.Fatal("atomic redefinition should claim (invalidate prev)")
	}
	if out3.Dsts[0].Prev != out1.Dsts[0].New {
		t.Fatal("claim target mismatch")
	}
	// Not yet released: one consumer (I2) pending.
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("released before consumer issued")
	}
	// Consumer issues -> release fires (redefined && count==0).
	e.ConsumerIssued(out2.Srcs[0], 5)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("ATR release did not fire")
	}
	if e.Stats.Get("release.atr") != 1 {
		t.Errorf("release.atr = %d", e.Stats.Get("release.atr"))
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
	_ = out3
}

func TestATRReleaseConsumeThenRedefine(t *testing.T) {
	// The release must also fire when consumption completes before
	// redefinition (the two orders of Fig 3).
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R2, isa.R1)
	out2 := e.Rename(&i2, 2)
	complete(e, &out2, 2)
	e.ConsumerIssued(out2.Srcs[0], 3) // consume first
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("released before redefinition")
	}
	i3 := alu(isa.R1, isa.R4) // now redefine
	e.Rename(&i3, 4)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("ATR release did not fire on redefine after consume")
	}
}

func TestBranchPoisonsRegion(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	i1 := alu(isa.R1, isa.R2)
	e.Rename(&i1, 1)
	br := branch()
	e.Rename(&br, 2)
	i3 := alu(isa.R1, isa.R4)
	out3 := e.Rename(&i3, 3)
	if !out3.Dsts[0].PrevValid {
		t.Error("branch inside region must prevent claim")
	}
}

func TestLoadPoisonsRegion(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	i1 := alu(isa.R1, isa.R2)
	e.Rename(&i1, 1)
	ld := load(isa.R9, isa.R10)
	e.Rename(&ld, 2)
	i3 := alu(isa.R1, isa.R4)
	out3 := e.Rename(&i3, 3)
	if !out3.Dsts[0].PrevValid {
		t.Error("load inside region must prevent claim (precise exceptions)")
	}
}

func TestFaultingRedefinerPoisonsItsOwnPrev(t *testing.T) {
	// A load that itself redefines r1 must mark r1's current mapping
	// before the eligibility check: if the load faults, r1's previous
	// value is live architectural state.
	e := NewEngine(testCfg(config.SchemeATR))
	i1 := alu(isa.R1, isa.R2)
	e.Rename(&i1, 1)
	ld := load(isa.R1, isa.R3) // redefines r1, can fault
	out := e.Rename(&ld, 2)
	if !out.Dsts[0].PrevValid {
		t.Error("a faultable redefiner must not claim its own previous mapping")
	}
}

func TestFaultClassDoesNotPoisonOwnDst(t *testing.T) {
	// The load's own destination starts a fresh region: a later atomic
	// redefinition of it may claim (if the load faults, its destination
	// and all its consumers flush together).
	e := NewEngine(testCfg(config.SchemeATR))
	ld := load(isa.R1, isa.R3)
	e.Rename(&ld, 1)
	i2 := alu(isa.R1, isa.R4)
	out := e.Rename(&i2, 2)
	if out.Dsts[0].PrevValid {
		t.Error("load's own destination should be claimable by a following atomic redefiner")
	}
}

func TestBranchClassPoisonsOwnDst(t *testing.T) {
	// A fused compare-and-branch commits even when mispredicted, so its
	// flag output must not be claimable by a younger redefiner.
	e := NewEngine(testCfg(config.SchemeATR))
	fb := fusedBranch(isa.R1, isa.R2)
	e.Rename(&fb, 1)
	cmp := isa.NewInst(isa.OpCmp, []isa.Reg{isa.Flags}, []isa.Reg{isa.R3})
	out := e.Rename(&cmp, 2)
	if !out.Dsts[0].PrevValid {
		t.Error("branch-class flusher's own destination must be no-early-release")
	}
}

func TestRedefineDelayDefersRelease(t *testing.T) {
	cfg := testCfg(config.SchemeATR)
	cfg.RedefineDelay = 2
	e := NewEngine(cfg)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 10)
	complete(e, &out1, 10)
	i3 := alu(isa.R1, isa.R4) // immediate redefine, zero consumers
	out3 := e.Rename(&i3, 10)
	if out3.Dsts[0].PrevValid {
		t.Fatal("claim should still happen with delay")
	}
	p1 := out1.Dsts[0].New
	e.Tick(10)
	e.Tick(11)
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("released before delay elapsed")
	}
	e.Tick(12)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("delayed redefine signal did not release")
	}
}

func TestBaselineCommitRelease(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	i2 := alu(isa.R1, isa.R3)
	out2 := e.Rename(&i2, 2)
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("baseline must not release early")
	}
	e.RedefinerPrecommitted(out2.Dsts[0], 5)
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("baseline must not release at precommit")
	}
	e.RedefinerCommitted(out2.Dsts[0], 8)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("baseline commit release missing")
	}
	if e.Stats.Get("release.commit") != 1 {
		t.Errorf("release.commit = %d", e.Stats.Get("release.commit"))
	}
}

func TestNonSpecERReleasesAtPrecommit(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeNonSpecER))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	c := alu(isa.R5, isa.R1)
	outC := e.Rename(&c, 2)
	re := alu(isa.R1, isa.R3)
	outR := e.Rename(&re, 3)
	if !outR.Dsts[0].PrevValid {
		t.Fatal("nonspec-ER never invalidates prev")
	}
	p1 := out1.Dsts[0].New
	e.ConsumerIssued(outC.Srcs[0], 4)
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("ER must wait for precommit")
	}
	e.RedefinerPrecommitted(outR.Dsts[0], 6)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("ER release at precommit missing")
	}
	// Commit must not double free.
	e.RedefinerCommitted(outR.Dsts[0], 9)
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if e.Stats.Get("release.er") != 1 || e.Stats.Get("release.commit") != 0 {
		t.Errorf("releases: er=%d commit=%d", e.Stats.Get("release.er"), e.Stats.Get("release.commit"))
	}
}

func TestNonSpecERPrecommitBeforeConsume(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeNonSpecER))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	c := alu(isa.R5, isa.R1)
	outC := e.Rename(&c, 2)
	re := alu(isa.R1, isa.R3)
	outR := e.Rename(&re, 3)
	e.RedefinerPrecommitted(outR.Dsts[0], 4) // precommit first
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("consumer still pending")
	}
	e.ConsumerIssued(outC.Srcs[0], 5)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("ER release on last consume after precommit missing")
	}
}

func TestATRDoesNotFireUnderBaselineOrER(t *testing.T) {
	for _, s := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeNonSpecER} {
		e := NewEngine(testCfg(s))
		i1 := alu(isa.R1, isa.R2)
		e.Rename(&i1, 1)
		i3 := alu(isa.R1, isa.R4)
		out := e.Rename(&i3, 2)
		if !out.Dsts[0].PrevValid {
			t.Errorf("%v: prev invalidated without ATR", s)
		}
		if e.Stats.Get("atr.claims") != 0 {
			t.Errorf("%v: claims registered", s)
		}
	}
}

func TestCombinedUsesBothMechanisms(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeCombined))
	poison(e)
	// Atomic region -> ATR claim.
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R1, isa.R3)
	out2 := e.Rename(&i2, 2)
	if out2.Dsts[0].PrevValid {
		t.Error("combined should claim atomic region")
	}
	p1 := out1.Dsts[0].New
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("combined ATR release missing")
	}
	// Non-atomic (branch-poisoned) region -> ER release at precommit.
	i3 := alu(isa.R4, isa.R2)
	out3 := e.Rename(&i3, 3)
	complete(e, &out3, 3)
	e.ConsumerIssued(out3.Srcs[0], 3)
	br := branch()
	e.Rename(&br, 4)
	i4 := alu(isa.R4, isa.R3)
	out4 := e.Rename(&i4, 5)
	if !out4.Dsts[0].PrevValid {
		t.Fatal("poisoned region must not claim")
	}
	e.RedefinerPrecommitted(out4.Dsts[0], 7)
	p3 := out3.Dsts[0].New
	if !e.banks[p3.Class].pregs[p3.Tag].free {
		t.Error("combined ER release missing")
	}
	if e.Stats.Get("release.atr") != 1 || e.Stats.Get("release.er") != 1 {
		t.Errorf("atr=%d er=%d", e.Stats.Get("release.atr"), e.Stats.Get("release.er"))
	}
}

func TestCommitAfterATRReleaseDoesNotDoubleFree(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R1, isa.R3)
	out2 := e.Rename(&i2, 2)
	// ATR released at rename (no consumers, producer written). Now the
	// redefiner commits.
	e.RedefinerPrecommitted(out2.Dsts[0], 5)
	e.RedefinerCommitted(out2.Dsts[0], 6)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Get("release.atr") != 1 || e.Stats.Get("release.commit") != 0 {
		t.Errorf("atr=%d commit=%d", e.Stats.Get("release.atr"), e.Stats.Get("release.commit"))
	}
}

func TestCommitAfterReallocationDoesNotFreeStranger(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R1, isa.R3)
	out2 := e.Rename(&i2, 2)
	p1 := out1.Dsts[0].New
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("setup: p1 should be ATR-released")
	}
	// Re-allocate p1 to an unrelated instruction by renaming until the
	// free list hands it back.
	var got Alloc
	for i := 0; i < e.PhysRegsPerClass(); i++ {
		in := alu(isa.R6, isa.R7)
		o := e.Rename(&in, 10)
		complete(e, &o, 10)
		if o.Dsts[0].New.Tag == p1.Tag {
			got = o.Dsts[0].New
			break
		}
	}
	if !got.Valid() {
		t.Fatal("setup: p1 never re-allocated")
	}
	if got.Gen == p1.Gen {
		t.Fatal("generation must bump on re-allocation")
	}
	// Redefiner of the original region commits: must not free p1 again.
	e.RedefinerCommitted(out2.Dsts[0], 20)
	if e.banks[got.Class].pregs[got.Tag].free {
		t.Error("commit freed a re-allocated register")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFlushReclaimsAllocations(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	cp := e.TakeCheckpoint()
	freeBefore := e.FreeCount(isa.ClassGPR)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	i2 := alu(isa.R2, isa.R1)
	out2 := e.Rename(&i2, 2)
	// Flush both (walked youngest first is irrelevant for FlushInstr).
	e.FlushInstr(&out2, 5)
	e.FlushInstr(&out1, 5)
	e.RestoreCheckpoint(cp)
	if got := e.FreeCount(isa.ClassGPR); got != freeBefore {
		t.Errorf("free count %d after flush, want %d", got, freeBefore)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFlushAfterATRReleaseNoDoubleFree(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	cp := e.TakeCheckpoint()
	freeBefore := e.FreeCount(isa.ClassGPR)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	i2 := alu(isa.R2, isa.R1)
	out2 := e.Rename(&i2, 2)
	complete(e, &out2, 2)
	i3 := alu(isa.R1, isa.R3) // redefines r1, claims
	out3 := e.Rename(&i3, 3)
	e.ConsumerIssued(out2.Srcs[0], 4) // releases p1 early
	if e.Stats.Get("release.atr") != 1 {
		t.Fatal("setup: expected ATR release")
	}
	// Entire region flushed (older branch mispredicted).
	e.FlushInstr(&out3, 6)
	e.FlushInstr(&out2, 6)
	e.FlushInstr(&out1, 6)
	e.RestoreCheckpoint(cp)
	if got := e.FreeCount(isa.ClassGPR); got != freeBefore {
		t.Errorf("free count %d, want %d", got, freeBefore)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFlushUndoesRedefineForSurvivingPrev(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeNonSpecER))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	br := branch()
	e.Rename(&br, 2)
	cp := e.TakeCheckpoint()
	i2 := alu(isa.R1, isa.R3) // non-atomic redefiner (branch poisoned)
	out2 := e.Rename(&i2, 3)
	// Redefiner flushed; p1 survives and its redefine state must clear.
	e.FlushInstr(&out2, 5)
	e.RestoreCheckpoint(cp)
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("surviving register freed by flush")
	}
	if e.banks[p1.Class].pregs[p1.Tag].redefPre {
		t.Error("redefPre not cleared on redefiner flush")
	}
	// A new redefiner on the recovered path releases p1 normally.
	i2b := alu(isa.R1, isa.R4)
	out2b := e.Rename(&i2b, 6)
	if out2b.Dsts[0].Prev != p1 {
		t.Fatalf("recovered SRT wrong: prev = %v, want %v", out2b.Dsts[0].Prev, p1)
	}
	e.RedefinerPrecommitted(out2b.Dsts[0], 8)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("ER release after recovery missing")
	}
}

func TestWalkRestoreSkipsInvalidPrev(t *testing.T) {
	// A flushed atomic region's redefiner has an invalidated prev: the
	// backward walk skips it, and the (also flushed) in-region allocator's
	// own restore supersedes, yielding the correct final SRT.
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	p0 := e.Lookup(isa.R1)
	i1 := alu(isa.R1, isa.R2) // r1 -> p1 (prev = poisoned initial: valid)
	out1 := e.Rename(&i1, 1)
	i2 := alu(isa.R1, isa.R3) // r1 -> p2 (claims p1: prev invalid)
	out2 := e.Rename(&i2, 2)
	if !out1.Dsts[0].PrevValid {
		t.Fatal("initial mapping is poisoned; i1 must keep prev valid")
	}
	if out2.Dsts[0].PrevValid {
		t.Fatal("i2 should claim p1")
	}
	// Flush both, walking youngest to oldest.
	e.WalkRestoreDst(out2.Dsts[0]) // skipped: invalid prev
	e.WalkRestoreDst(out1.Dsts[0]) // restores r1 -> p0
	if got := e.Lookup(isa.R1); got.Tag != p0.Tag {
		t.Errorf("walk restore: r1 -> %v, want %v", got, p0)
	}
	e.FlushInstr(&out2, 5)
	e.FlushInstr(&out1, 5)
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWalkRestoreValidChain(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	q0 := e.Lookup(isa.R1)
	j1 := alu(isa.R1, isa.R2)
	o1 := e.Rename(&j1, 1)
	j2 := alu(isa.R1, isa.R3)
	o2 := e.Rename(&j2, 2)
	e.WalkRestoreDst(o2.Dsts[0])
	e.WalkRestoreDst(o1.Dsts[0])
	if e.Lookup(isa.R1).Tag != q0.Tag {
		t.Errorf("walk restore: r1 -> %v, want %v", e.Lookup(isa.R1), q0)
	}
}

func TestCanRenameStallRule(t *testing.T) {
	cfg := testCfg(config.SchemeBaseline)
	e := NewEngine(cfg)
	need := isa.MaxDsts * cfg.RenameWidth
	for e.FreeCount(isa.ClassGPR) >= need {
		if !e.CanRename() {
			t.Fatal("CanRename false while above threshold")
		}
		in := alu(isa.R1, isa.R2)
		e.Rename(&in, 1)
	}
	if e.CanRename() {
		t.Error("CanRename true below the MaxDests*Width threshold")
	}
}

func TestOpenRegionsCounter(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	c := alu(isa.R5, isa.R1)
	outC := e.Rename(&c, 2)
	i3 := alu(isa.R1, isa.R3)
	out3 := e.Rename(&i3, 3)
	if e.OpenRegions() != 0 {
		t.Fatal("region not hazardous before allocator commits")
	}
	// Allocator commits: the claimed region is now open/hazardous.
	e.AllocCommitted(out1.Dsts[0])
	if e.OpenRegions() != 1 {
		t.Fatalf("OpenRegions = %d, want 1", e.OpenRegions())
	}
	e.ConsumerIssued(outC.Srcs[0], 4)
	e.AllocCommitted(outC.Dsts[0])
	// Redefiner commits: region closes.
	e.RedefinerCommitted(out3.Dsts[0], 6)
	if e.OpenRegions() != 0 {
		t.Errorf("OpenRegions = %d after redefiner commit, want 0", e.OpenRegions())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOpenRegionsClaimAfterAllocCommit(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	e.AllocCommitted(out1.Dsts[0]) // allocator commits before redefine
	i3 := alu(isa.R1, isa.R3)
	out3 := e.Rename(&i3, 3)
	if e.OpenRegions() != 1 {
		t.Fatalf("OpenRegions = %d, want 1 (claim after allocator commit)", e.OpenRegions())
	}
	e.RedefinerCommitted(out3.Dsts[0], 5)
	if e.OpenRegions() != 0 {
		t.Errorf("OpenRegions = %d, want 0", e.OpenRegions())
	}
}

func TestLedgerPopulated(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 10)
	c := alu(isa.R5, isa.R1)
	outC := e.Rename(&c, 11)
	e.ConsumerIssued(outC.Srcs[0], 15)
	i3 := alu(isa.R1, isa.R3)
	out3 := e.Rename(&i3, 12)
	e.RedefinerPrecommitted(out3.Dsts[0], 20)
	e.RedefinerCommitted(out3.Dsts[0], 25)
	if e.Ledger.Completed() != 1 {
		t.Fatalf("ledger completed = %d", e.Ledger.Completed())
	}
	re, co, cm := e.Ledger.EventGaps()
	if re != 2 || co != 5 || cm != 15 {
		t.Errorf("gaps = %v %v %v, want 2 5 15", re, co, cm)
	}
	_ = out1
}

func TestInfiniteRegsNeverStall(t *testing.T) {
	cfg := testCfg(config.SchemeBaseline).WithPhysRegs(0)
	e := NewEngine(cfg)
	for i := 0; i < cfg.ROBSize; i++ {
		if !e.CanRename() {
			t.Fatalf("stalled at %d allocations with infinite registers", i)
		}
		in := alu(isa.R1, isa.R2)
		in2 := isa.NewInst(isa.OpFPAdd, []isa.Reg{isa.F1}, []isa.Reg{isa.F2})
		e.Rename(&in, 1)
		e.Rename(&in2, 1)
	}
}

func TestFinalizeRecordsLives(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	e.Rename(&i1, 1)
	e.Finalize()
	if n := e.trackedLives(); n != 0 {
		t.Errorf("%d lives left after Finalize", n)
	}
}

func TestConsumerFlushedRestoresCount(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeNonSpecER))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	c := alu(isa.R5, isa.R1) // consumer, never issues
	outC := e.Rename(&c, 2)
	re := alu(isa.R1, isa.R3)
	outR := e.Rename(&re, 3)
	e.RedefinerPrecommitted(outR.Dsts[0], 4)
	p1 := out1.Dsts[0].New
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("unissued consumer should block ER")
	}
	// The consumer is squashed before issuing: its count restores and the
	// pending ER release fires.
	e.ConsumerFlushed(outC.Srcs[0], 5)
	if !e.banks[p1.Class].pregs[p1.Tag].free {
		t.Error("count restoration did not unblock the release")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConsumerFlushedIgnoresStaleAndSaturated(t *testing.T) {
	cfg := testCfg(config.SchemeATR)
	cfg.ConsumerCounterBits = 2 // sentinel 3
	e := NewEngine(cfg)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	p1 := out1.Dsts[0].New
	for i := 0; i < 4; i++ { // saturate
		c := alu(isa.R8, isa.R1)
		e.Rename(&c, 2)
	}
	e.ConsumerFlushed(out1.Dsts[0].New, 3) // wrong use, but must be safe
	if got := e.banks[p1.Class].pregs[p1.Tag].count; got != 3 {
		t.Errorf("saturated count changed to %d", got)
	}
	stale := p1
	stale.Gen++
	e.ConsumerFlushed(stale, 4) // stale generation: ignored
	if got := e.banks[p1.Class].pregs[p1.Tag].count; got != 3 {
		t.Errorf("stale flush changed count to %d", got)
	}
}

func TestReplayDst(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeBaseline))
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	i2 := alu(isa.R1, isa.R3)
	e.Rename(&i2, 2)
	// Rewind the SRT wholesale, then replay i1's mapping forward.
	e.ReplayDst(out1.Dsts[0])
	if e.Lookup(isa.R1) != out1.Dsts[0].New {
		t.Errorf("replay: r1 -> %v, want %v", e.Lookup(isa.R1), out1.Dsts[0].New)
	}
	// Invalid entries are no-ops.
	e.ReplayDst(DstAlloc{Reg: isa.RegInvalid, New: Alloc{Tag: PTagInvalid}})
}

func TestOpenPrecommitRegions(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2)
	out1 := e.Rename(&i1, 1)
	i3 := alu(isa.R1, isa.R3)
	out3 := e.Rename(&i3, 2)
	if e.OpenPrecommitRegions() != 0 {
		t.Fatal("no region should straddle before allocator precommits")
	}
	e.AllocPrecommitted(out1.Dsts[0])
	if e.OpenPrecommitRegions() != 1 {
		t.Fatalf("OpenPrecommitRegions = %d, want 1", e.OpenPrecommitRegions())
	}
	e.RedefinerPrecommitted(out3.Dsts[0], 4)
	if e.OpenPrecommitRegions() != 0 {
		t.Errorf("OpenPrecommitRegions = %d after redefiner precommit, want 0", e.OpenPrecommitRegions())
	}
}

func TestAllocString(t *testing.T) {
	a := Alloc{Class: isa.ClassGPR, Tag: 5, Gen: 2}
	if a.String() != "p5.2" {
		t.Errorf("String = %q", a.String())
	}
	f := Alloc{Class: isa.ClassFPR, Tag: 3, Gen: 1}
	if f.String() != "fp3.1" {
		t.Errorf("String = %q", f.String())
	}
	inv := Alloc{Tag: PTagInvalid}
	if inv.String() != "p-" {
		t.Errorf("String = %q", inv.String())
	}
}

// TestRenameSequenceInvariants drives arbitrary rename/issue/precommit/
// commit interleavings derived from a random byte string through the engine
// and checks the free-list invariants after every event (testing/quick).
func TestRenameSequenceInvariants(t *testing.T) {
	f := func(script []byte, schemeByte uint8) bool {
		scheme := config.Schemes()[int(schemeByte)%len(config.Schemes())]
		e := NewEngine(testCfg(scheme).WithPhysRegs(96))
		poison(e)
		type entry struct {
			out    RenameOut
			issued bool
			pre    bool
		}
		var rob []entry
		head := 0
		cycle := uint64(1)
		for _, op := range script {
			cycle++
			switch op % 4 {
			case 0: // rename an ALU with pseudo-random operands
				if !e.CanRename() {
					break
				}
				dst := isa.Reg(op / 4 % 6)
				s1 := isa.Reg(op / 8 % 6)
				in := alu(dst, s1)
				rob = append(rob, entry{out: e.Rename(&in, cycle)})
			case 1: // issue the oldest unissued entry
				for i := head; i < len(rob); i++ {
					if !rob[i].issued {
						rob[i].issued = true
						o := &rob[i].out
						for j := 0; j < o.NumSrcs; j++ {
							e.ConsumerIssued(o.Srcs[j], cycle)
						}
						for j := 0; j < o.NumDsts; j++ {
							e.ProducerCompleted(o.Dsts[j].New, cycle)
						}
						break
					}
				}
			case 2: // precommit the oldest non-precommitted (if issued)
				if head < len(rob) && rob[head].issued && !rob[head].pre {
					rob[head].pre = true
					for j := 0; j < rob[head].out.NumDsts; j++ {
						e.AllocPrecommitted(rob[head].out.Dsts[j])
						e.RedefinerPrecommitted(rob[head].out.Dsts[j], cycle)
					}
				}
			case 3: // commit the head (if precommitted)
				if head < len(rob) && rob[head].pre {
					for j := 0; j < rob[head].out.NumDsts; j++ {
						e.AllocCommitted(rob[head].out.Dsts[j])
						e.RedefinerCommitted(rob[head].out.Dsts[j], cycle)
					}
					head++
				}
			}
			e.Tick(cycle)
			if err := e.CheckInvariants(); err != nil {
				t.Logf("scheme %v after op %d: %v", scheme, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFigure2UnsafeSpeculativeRelease replays the paper's Figure 2 scenario:
// I1 allocates p1 for r1; I2 consumes it; a branch follows; I5 redefines r1
// on the (to-be-flushed) wrong path. A speculative early-release scheme
// would free p1 here and the post-recovery consumer I6 would read a recycled
// register. ATR must refuse the claim because the branch poisoned p1.
func TestFigure2UnsafeSpeculativeRelease(t *testing.T) {
	e := NewEngine(testCfg(config.SchemeATR))
	poison(e)
	i1 := alu(isa.R1, isa.R2, isa.R3) // I1: alloc p1 for r1
	out1 := e.Rename(&i1, 1)
	complete(e, &out1, 1)
	p1 := out1.Dsts[0].New
	i2 := alu(isa.R2, isa.R1, isa.R3) // I2: consume p1
	out2 := e.Rename(&i2, 2)
	e.ConsumerIssued(out2.Srcs[0], 3)
	cmp := isa.NewInst(isa.OpCmp, []isa.Reg{isa.Flags}, []isa.Reg{isa.R2})
	e.Rename(&cmp, 3) // I3
	br := branch()    // I4: the branch that will mispredict
	e.Rename(&br, 4)
	cp := e.TakeCheckpoint()
	i5 := alu(isa.R1, isa.R3, isa.R4) // I5 (wrong path): redefine r1
	out5 := e.Rename(&i5, 5)
	if !out5.Dsts[0].PrevValid {
		t.Fatal("UNSAFE: the redefinition across a branch was claimed")
	}
	if e.banks[p1.Class].pregs[p1.Tag].free {
		t.Fatal("UNSAFE: p1 released while a misprediction can revive consumers")
	}
	// The branch mispredicts: I5 flushes, and the recovered-path consumer
	// I6 must still find p1 live.
	e.FlushInstr(&out5, 6)
	e.RestoreCheckpoint(cp)
	i6 := alu(isa.R5, isa.R1, isa.R3) // I6: consume r1 after recovery
	out6 := e.Rename(&i6, 7)
	if out6.Srcs[0] != p1 {
		t.Fatalf("recovered consumer reads %v, want %v", out6.Srcs[0], p1)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
