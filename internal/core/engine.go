package core

import (
	"fmt"

	"atr/internal/config"
	"atr/internal/isa"
	"atr/internal/obs"
	"atr/internal/stats"
)

// preg is the per-physical-register state. The consumer counter, the two
// region-poisoning flags, and the claimed/redefined bits are the hardware
// state the paper adds; gen and the lifetime bookkeeping are simulation-only.
type preg struct {
	gen  uint32
	free bool

	// refs is the sharing reference count (move elimination, §6): each
	// architectural mapping of this register holds one reference; every
	// release decrements, and the register returns to the free list at
	// zero. Without move elimination it is always 1 while allocated.
	refs int

	// count is the saturating consumer counter (§4.2.2). Once it reaches
	// the sentinel (all-ones) it is sticky: the register is
	// no-early-release regardless of the flags below.
	count int

	// sawBranch/sawExcept record that a branch-class or fault-class
	// flusher was renamed while this register was live in the SRT (the
	// bulk no-early-release marking). A register is atomic-eligible only
	// if neither is set when it is redefined.
	sawBranch bool
	sawExcept bool

	// claimed: the redefining instruction invalidated its previous-ptag
	// field, transferring release ownership to ATR (§4.2.4). At most one
	// mapping of a (possibly shared) register holds a claim at a time;
	// claimArch names it.
	claimed   bool
	claimArch isa.Reg
	// redefined: the (possibly pipelined) redefine signal has arrived.
	redefined bool
	// redefPre: the redefining instruction has precommitted (nonspec-ER).
	// Like claims, early-release arbitration is serialized per register;
	// erArch names the mapping whose redefiner precommitted.
	redefPre bool
	erArch   isa.Reg
	// allocCommitted: the instruction that allocated this register has
	// committed (interrupt region counter bookkeeping).
	allocCommitted bool
	// allocPrecommitted: the allocating instruction has precommitted and
	// can therefore never be flushed again.
	allocPrecommitted bool
	// writePending: the producing instruction has not yet written the
	// register. A register with a write in flight must not be freed —
	// the late write would corrupt a re-allocation. (This matters for
	// zero-consumer registers, whose counter is 0 from the start.)
	writePending bool

	// region is the classification assigned when this allocation was
	// redefined (observability only; release events report it).
	region stats.RegionKind
}

// bank is one register class's renaming state: SRT, physical registers, and
// free list, plus the class's dense allocation-keyed side tables (lifetime
// records, open ATR claims, early-release marks — see dense.go).
type bank struct {
	class isa.RegClass
	nArch int
	pregs []preg
	free  []PTag
	srt   []PTag

	lives  lifeTab
	claims claimTab
	early  markTab
}

func (b *bank) alloc() (PTag, uint32) {
	n := len(b.free)
	if n == 0 {
		panic("core: free list exhausted; caller must gate on CanRename")
	}
	t := b.free[n-1]
	b.free = b.free[:n-1]
	p := &b.pregs[t]
	p.gen++
	p.free = false
	p.refs = 1
	p.count = 0
	p.sawBranch = false
	p.sawExcept = false
	p.claimed = false
	p.redefined = false
	p.redefPre = false
	p.allocCommitted = false
	p.allocPrecommitted = false
	p.writePending = true
	p.region = stats.RegionNone
	return t, p.gen
}

// Checkpoint is a snapshot of both SRTs, taken at branches for misprediction
// recovery.
type Checkpoint struct {
	srt [isa.NumClasses][]PTag
}

type delayedRedefine struct {
	a   Alloc
	due uint64
}

// relKind names the mechanism that freed a register. It indexes the
// engine's pre-resolved counter handles and the tracer's scheme strings, so
// the release hot path never builds or hashes a counter name.
type relKind uint8

const (
	relATR relKind = iota
	relER
	relCommit
	relFlush
	numRelKinds
)

// relCounterNames are the release counters in relKind order; relSchemeNames
// are the corresponding tracer scheme labels (the old "release." prefix
// stripped once, here, instead of per event).
var (
	relCounterNames = [numRelKinds]string{"release.atr", "release.er", "release.commit", "release.flush"}
	relSchemeNames  = [numRelKinds]string{"atr", "er", "commit", "flush"}
)

// claimState tracks one open atomic region for the interrupt-flush counters
// (§4.1 option b). The paper's counter tracks commit-boundary straddles; the
// precommit-boundary variant (allocPre/redefPre) additionally guards the
// flush-only-unprecommitted-suffix interrupt policy that the combined scheme
// requires (non-speculative early release assumes precommitted instructions
// never flush).
type claimState struct {
	allocCommitted bool
	allocPre       bool
	redefPre       bool
}

// Engine is the renaming and release unit. It owns the SRTs, free lists,
// consumer counters, region detection, and all four release schemes.
type Engine struct {
	cfg    config.Config
	banks  [isa.NumClasses]bank
	Ledger *stats.LifetimeLedger
	Stats  *stats.Counters

	delayQ []delayedRedefine

	// trace, when non-nil, receives one ReleaseEvent per register release.
	// The hot path pays only this pointer compare when tracing is off.
	trace *obs.Tracer

	// openRegions counts claimed regions whose allocator has committed but
	// whose redefiner has not (the paper's §4.1 counter).
	openRegions int
	// openPre counts claimed regions straddling the precommit pointer:
	// allocator precommitted, redefiner not. Flushing the
	// non-precommitted ROB suffix is unsafe while it is non-zero.
	openPre int

	satCount int // consumer counter sentinel; <0 means unbounded

	// Counter handles, resolved once at construction so the rename and
	// release hot paths increment by slice index instead of map lookup.
	hRenameAlloc stats.Handle
	hMoveElim    stats.Handle
	hClaims      stats.Handle
	hBulkMarks   stats.Handle
	hRelease     [numRelKinds]stats.Handle

	// cpPool recycles SRT checkpoints, the engine's only remaining
	// steady-state heap objects (lifetime records live inside the banks'
	// dense lifeTab arenas).
	cpPool []*Checkpoint
}

// NewEngine builds the renaming state for cfg. The initial architectural
// mappings are pre-allocated (one physical register per architectural
// register in each class).
func NewEngine(cfg config.Config) *Engine {
	e := &Engine{
		cfg:      cfg,
		Ledger:   stats.NewLifetimeLedger(),
		Stats:    stats.NewCounters(),
		satCount: cfg.MaxConsumerCount(),
	}
	e.hRenameAlloc = e.Stats.Handle("rename.alloc")
	e.hMoveElim = e.Stats.Handle("rename.moveelim")
	e.hClaims = e.Stats.Handle("atr.claims")
	e.hBulkMarks = e.Stats.Handle("atr.bulkmarks")
	for k := relKind(0); k < numRelKinds; k++ {
		e.hRelease[k] = e.Stats.Handle(relCounterNames[k])
	}
	size := cfg.PhysRegs
	if size == 0 {
		// "Infinite" registers: enough that rename never stalls.
		size = isa.NumGPR + cfg.ROBSize*isa.MaxDsts + 64
	}
	for c := 0; c < int(isa.NumClasses); c++ {
		nArch := isa.NumGPR
		if isa.RegClass(c) == isa.ClassFPR {
			nArch = isa.NumFPR
		}
		b := &e.banks[c]
		b.class = isa.RegClass(c)
		b.nArch = nArch
		b.pregs = make([]preg, size)
		b.srt = make([]PTag, nArch)
		b.free = make([]PTag, 0, size)
		b.lives = newLifeTab(size)
		b.claims = newClaimTab(size)
		b.early = newMarkTab(size)
		for t := size - 1; t >= nArch; t-- {
			b.pregs[t].free = true
			b.free = append(b.free, PTag(t))
		}
		for a := 0; a < nArch; a++ {
			b.srt[a] = PTag(a)
			b.pregs[a].gen = 1
			b.pregs[a].refs = 1
			// The initial mappings' "allocator" is pre-existing
			// architectural state: committed and written by
			// definition.
			b.pregs[a].allocCommitted = true
			b.pregs[a].writePending = false
			b.lives.put(PTag(a), 1, stats.RegLifetime{})
		}
	}
	return e
}

// SetTracer attaches (or with nil detaches) a release-event tracer.
func (e *Engine) SetTracer(t *obs.Tracer) { e.trace = t }

// PhysRegsPerClass returns the size of each physical register file.
func (e *Engine) PhysRegsPerClass() int { return len(e.banks[0].pregs) }

// FreeCount returns the current free-list occupancy of the given class.
func (e *Engine) FreeCount(c isa.RegClass) int { return len(e.banks[c].free) }

// CanRename reports whether a full rename group may proceed: the paper's
// stall rule requires MaxDests × RenameWidth free entries in each class.
func (e *Engine) CanRename() bool {
	need := isa.MaxDsts * e.cfg.RenameWidth
	return len(e.banks[isa.ClassGPR].free) >= need && len(e.banks[isa.ClassFPR].free) >= need
}

// Lookup returns the current mapping of arch register r.
func (e *Engine) Lookup(r isa.Reg) Alloc {
	b := &e.banks[r.Class()]
	t := b.srt[r.ClassIndex()]
	return Alloc{Class: b.class, Tag: t, Gen: b.pregs[t].gen}
}

// life returns a's lifetime record, or nil. The pointer is valid only until
// the next lifeTab insert (the arena may grow); callers use it locally.
func (e *Engine) life(a Alloc) *stats.RegLifetime {
	return e.banks[a.Class].lives.get(a.Tag, a.Gen)
}

// trackedLives returns the number of in-flight lifetime records (tests).
func (e *Engine) trackedLives() int {
	n := 0
	for c := range e.banks {
		n += e.banks[c].lives.n
	}
	return n
}

// Rename processes one instruction through the rename stage at the given
// cycle: source lookup and consumer counting, bulk no-early-release marking
// for flushers, destination allocation, and the ATR claim decision for each
// redefined previous mapping. The caller must have checked CanRename for the
// group.
func (e *Engine) Rename(in *isa.Inst, cycle uint64) RenameOut {
	var out RenameOut
	e.RenameInto(in, cycle, &out)
	return out
}

// RenameInto is Rename writing into a caller-owned RenameOut (the pipeline
// renames straight into the uop's embedded struct, skipping a sizeable copy
// per instruction). *out is overwritten entirely.
func (e *Engine) RenameInto(in *isa.Inst, cycle uint64, out *RenameOut) {
	*out = RenameOut{}

	// 1. Source operands: look up and register consumers.
	for i, r := range in.Srcs {
		if !r.Valid() {
			continue
		}
		a := e.Lookup(r)
		out.Srcs[i] = a
		out.NumSrcs++
		e.registerConsumer(a, cycle)
	}

	// 2. Bulk no-early-release marking (§4.2.2): a flusher poisons every
	// ptag currently referenced by the SRT. This happens before the
	// flusher's own destinations rename, so a faulting redefiner marks
	// the mapping it is about to replace (making it ineligible), while
	// the flusher's own new destination starts a fresh region.
	if in.Op.IsFlusher() {
		e.bulkMark(in.Op)
	}

	// 3. Destinations: allocate (or alias, for eliminated moves), decide
	// claim, update SRT.
	elim := e.cfg.MoveElimination && (in.Op == isa.OpMove || in.Op == isa.OpFPMove) &&
		in.Dsts[0].Valid() && in.Srcs[0].Valid() &&
		in.Dsts[0].Class() == in.Srcs[0].Class()
	for i, r := range in.Dsts {
		if !r.Valid() {
			out.Dsts[i] = DstAlloc{Reg: isa.RegInvalid, New: Alloc{Tag: PTagInvalid}, Prev: Alloc{Tag: PTagInvalid}}
			continue
		}
		if elim && i == 0 {
			out.Dsts[i] = e.renameMove(r, out.Srcs[0], cycle)
		} else {
			out.Dsts[i] = e.renameDst(r, cycle)
		}
		out.NumDsts++
	}

	// 4. A branch-class flusher (mispredicted branches commit while their
	// younger consumers flush) must also poison its own destination: a
	// fused compare-and-branch's flag output survives a misprediction,
	// so consumers appearing on the corrected path may still read it.
	if in.Op.IsBranchClassFlusher() {
		for i := 0; i < out.NumDsts; i++ {
			d := out.Dsts[i].New
			if d.Valid() {
				e.banks[d.Class].pregs[d.Tag].sawBranch = true
			}
		}
	}
}

func (e *Engine) renameDst(r isa.Reg, cycle uint64) DstAlloc {
	b := &e.banks[r.Class()]
	idx := r.ClassIndex()
	prevTag := b.srt[idx]
	prev := Alloc{Class: b.class, Tag: prevTag, Gen: b.pregs[prevTag].gen}

	newTag, gen := b.alloc()
	b.srt[idx] = newTag
	na := Alloc{Class: b.class, Tag: newTag, Gen: gen}
	b.lives.put(newTag, gen, stats.RegLifetime{Renamed: cycle})
	e.Stats.Add(e.hRenameAlloc, 1)

	d := DstAlloc{Reg: r, New: na, Prev: prev, PrevValid: true}

	// Redefinition of prev: record the event and classify the region.
	pp := &b.pregs[prevTag]
	pp.region = classify(pp.sawBranch, pp.sawExcept)
	if life := e.life(prev); life != nil {
		life.Redefined = cycle
		life.Region = pp.region
	}

	e.maybeClaim(&d, prev, pp, cycle)
	return d
}

// maybeClaim applies the ATR claim decision (§4.2.4) to a redefinition of
// prev: eligible iff the region is atomic, the consumer counter did not
// saturate, and no other mapping of a shared register holds a claim already
// (move elimination shares the per-register claim state, so claims are
// serialized per register).
func (e *Engine) maybeClaim(d *DstAlloc, prev Alloc, pp *preg, cycle uint64) {
	if e.cfg.Scheme != config.SchemeATR && e.cfg.Scheme != config.SchemeCombined {
		return
	}
	saturated := e.satCount >= 0 && pp.count >= e.satCount
	if pp.sawBranch || pp.sawExcept || saturated || pp.free || pp.claimed {
		return
	}
	d.PrevValid = false
	pp.claimed = true
	pp.claimArch = d.Reg
	cs := claimState{allocCommitted: pp.allocCommitted, allocPre: pp.allocPrecommitted}
	if cs.allocCommitted {
		e.openRegions++
	}
	if cs.allocPre {
		e.openPre++
	}
	e.banks[prev.Class].claims.set(prev.Tag, prev.Gen, d.Reg, cs)
	e.Stats.Add(e.hClaims, 1)
	if e.cfg.RedefineDelay == 0 {
		pp.redefined = true
		e.tryATRRelease(prev, cycle)
	} else {
		e.delayQ = append(e.delayQ, delayedRedefine{a: prev, due: cycle + uint64(e.cfg.RedefineDelay)})
	}
}

// renameMove implements move elimination: the destination maps to the
// source's physical register, which gains a reference instead of a fresh
// allocation. The previous mapping of the destination is released exactly as
// for a normal rename (including an ATR claim when its region is atomic).
func (e *Engine) renameMove(r isa.Reg, src Alloc, cycle uint64) DstAlloc {
	b := &e.banks[r.Class()]
	idx := r.ClassIndex()
	prevTag := b.srt[idx]
	prev := Alloc{Class: b.class, Tag: prevTag, Gen: b.pregs[prevTag].gen}

	sp := &b.pregs[src.Tag]
	sp.refs++
	b.srt[idx] = src.Tag
	e.Stats.Add(e.hMoveElim, 1)

	d := DstAlloc{Reg: r, New: src, Prev: prev, PrevValid: true, Eliminated: true}

	pp := &b.pregs[prevTag]
	pp.region = classify(pp.sawBranch, pp.sawExcept)
	if life := e.life(prev); life != nil {
		life.Redefined = cycle
		life.Region = pp.region
	}
	e.maybeClaim(&d, prev, pp, cycle)
	return d
}

func classify(sawBranch, sawExcept bool) stats.RegionKind {
	switch {
	case !sawBranch && !sawExcept:
		return stats.RegionAtomic
	case !sawBranch:
		return stats.RegionNonBranch
	case !sawExcept:
		return stats.RegionNonExcept
	default:
		return stats.RegionNone
	}
}

// bulkMark poisons every ptag currently mapped by either SRT, per flusher
// class. This is the operation whose gate-level cost §4.4 analyzes.
func (e *Engine) bulkMark(op isa.Op) {
	branch := op.IsBranchClassFlusher()
	except := op.CanFault()
	for c := range e.banks {
		b := &e.banks[c]
		for _, t := range b.srt {
			p := &b.pregs[t]
			if branch {
				p.sawBranch = true
			}
			if except {
				p.sawExcept = true
			}
		}
	}
	e.Stats.Add(e.hBulkMarks, 1)
}

// registerConsumer increments the consumer counter of a at rename time,
// saturating into the sticky no-early-release sentinel.
func (e *Engine) registerConsumer(a Alloc, cycle uint64) {
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.gen == a.Gen && !p.free {
		if e.satCount < 0 || p.count < e.satCount {
			p.count++
		}
	}
	if life := e.life(a); life != nil {
		life.Consumers++
	}
}

// ConsumerIssued notifies that a consumer of a read its source operand (the
// issue-time counter decrement, §4.2.3). Stale references (the register was
// already released and re-allocated) are ignored via the generation check.
func (e *Engine) ConsumerIssued(a Alloc, cycle uint64) {
	if life := e.life(a); life != nil && cycle > life.LastConsumed {
		life.LastConsumed = cycle
	}
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.gen != a.Gen {
		return
	}
	if e.satCount >= 0 && p.count >= e.satCount {
		return // sticky no-early-release
	}
	if p.count > 0 {
		p.count--
	}
	if p.count == 0 {
		e.tryATRRelease(a, cycle)
		e.tryERRelease(a, cycle)
	}
}

// ConsumerFlushed notifies that a renamed-but-unissued consumer of a was
// squashed, undoing its rename-time counter increment. This models the
// counter-restoration hardware of the non-speculative early release prior
// work (Moudgill's per-branch FIFOs / Monreal's last-use table snapshots);
// ATR itself does not require it — an atomic region's consumers flush
// together with the region — but exact counters keep ER and the ATR claim
// eligibility check precise.
func (e *Engine) ConsumerFlushed(a Alloc, cycle uint64) {
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.gen != a.Gen || p.free {
		return
	}
	if e.satCount >= 0 && p.count >= e.satCount {
		return // sticky no-early-release
	}
	if p.count > 0 {
		p.count--
	}
	if p.count == 0 {
		e.tryATRRelease(a, cycle)
		e.tryERRelease(a, cycle)
	}
}

// ProducerCompleted notifies that the instruction that allocated a has
// written its result to the register file. Registers are never freed with a
// write in flight, so this can be the last release condition to clear.
func (e *Engine) ProducerCompleted(a Alloc, cycle uint64) {
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.gen != a.Gen || p.free {
		return
	}
	p.writePending = false
	e.tryATRRelease(a, cycle)
	e.tryERRelease(a, cycle)
}

// Tick advances the pipelined redefine-signal queue (Fig 13): claims made
// RedefineDelay cycles ago become visible now.
func (e *Engine) Tick(cycle uint64) {
	n := 0
	for _, d := range e.delayQ {
		if d.due > cycle {
			e.delayQ[n] = d
			n++
			continue
		}
		b := &e.banks[d.a.Class]
		p := &b.pregs[d.a.Tag]
		if p.gen == d.a.Gen && !p.free && p.claimed {
			p.redefined = true
			e.tryATRRelease(d.a, cycle)
		}
	}
	e.delayQ = e.delayQ[:n]
}

// tryATRRelease frees a claimed register once it is redefined and fully
// consumed.
func (e *Engine) tryATRRelease(a Alloc, cycle uint64) {
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.free || p.gen != a.Gen || !p.claimed || !p.redefined || p.count != 0 || p.writePending {
		return
	}
	b.early.add(a.Tag, a.Gen, p.claimArch)
	e.release(a, relATR, cycle)
}

// tryERRelease frees an unclaimed register once its redefiner has
// precommitted and it is fully consumed (non-speculative early release).
func (e *Engine) tryERRelease(a Alloc, cycle uint64) {
	if e.cfg.Scheme != config.SchemeNonSpecER && e.cfg.Scheme != config.SchemeCombined {
		return
	}
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.free || p.gen != a.Gen || p.claimed || !p.redefPre || p.count != 0 || p.writePending {
		return
	}
	b.early.add(a.Tag, a.Gen, p.erArch)
	e.release(a, relER, cycle)
}

// RedefinerPrecommitted notifies that the instruction whose rename produced
// d has precommitted (all older flushers resolved). This is both the
// nonspec-ER release trigger and the Figure 4 verified-unused boundary.
func (e *Engine) RedefinerPrecommitted(d DstAlloc, cycle uint64) {
	if !d.Prev.Valid() {
		return
	}
	if life := e.life(d.Prev); life != nil && life.Precommitted == 0 {
		life.Precommitted = cycle
	}
	b := &e.banks[d.Prev.Class]
	if !d.PrevValid {
		// Claimed: ATR owns the release; the region no longer
		// straddles the precommit boundary.
		if cs := b.claims.ref(d.Prev.Tag, d.Prev.Gen, d.Reg); cs != nil && !cs.redefPre {
			cs.redefPre = true
			if cs.allocPre {
				e.openPre--
			}
		}
		return
	}
	p := &b.pregs[d.Prev.Tag]
	if p.gen == d.Prev.Gen && !p.free && !p.redefPre {
		// Early-release arbitration is serialized per register: if
		// another mapping's redefiner already precommitted and is
		// awaiting consumption, this mapping falls back to commit
		// release (only possible under move elimination).
		p.redefPre = true
		p.erArch = d.Reg
		e.tryERRelease(d.Prev, cycle)
	}
}

// RedefinerCommitted notifies that the renaming instruction that produced d
// has committed. The previous mapping is conventionally released here unless
// an early-release mechanism already freed it (the generation and free-state
// checks make commit release exactly-once). It also finalizes the previous
// allocation's lifetime record and the interrupt region counter.
func (e *Engine) RedefinerCommitted(d DstAlloc, cycle uint64) {
	if !d.Prev.Valid() {
		return
	}
	b := &e.banks[d.Prev.Class]
	if rec, ok := b.lives.take(d.Prev.Tag, d.Prev.Gen); ok {
		rec.Committed = cycle
		if rec.Precommitted == 0 {
			rec.Precommitted = cycle
		}
		e.Ledger.Record(&rec)
	}
	if !d.PrevValid {
		// Claimed by ATR. Close the interrupt region if it was open.
		if cs, ok := b.claims.take(d.Prev.Tag, d.Prev.Gen, d.Reg); ok && cs.allocCommitted {
			e.openRegions--
		}
		if b.early.takeOne(d.Prev.Tag, d.Prev.Gen, d.Reg) {
			return
		}
		// ATR has not released this mapping yet (it is still awaiting
		// its delayed redefine signal); commit of the redefiner makes
		// it dead for certain, so force the release now.
		p := &b.pregs[d.Prev.Tag]
		if p.gen == d.Prev.Gen && !p.free {
			e.release(d.Prev, relATR, cycle)
		}
		return
	}
	if b.early.takeOne(d.Prev.Tag, d.Prev.Gen, d.Reg) {
		return // nonspec-ER already dropped this mapping
	}
	p := &b.pregs[d.Prev.Tag]
	if p.gen == d.Prev.Gen && !p.free {
		e.release(d.Prev, relCommit, cycle)
	}
}

// AllocCommitted notifies that the instruction whose rename produced d has
// committed; used by the interrupt-flush region counter. Either ordering of
// claim and allocator-commit is handled: the claim path reads the per-preg
// allocCommitted flag, and this path updates any claim already open.
func (e *Engine) AllocCommitted(d DstAlloc) {
	a := d.New
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.gen == a.Gen {
		p.allocCommitted = true
	}
	if cs := b.claims.ref(a.Tag, a.Gen, d.Reg); cs != nil && !cs.allocCommitted {
		cs.allocCommitted = true
		e.openRegions++
	}
}

// AllocPrecommitted notifies that the instruction whose rename produced d
// has precommitted; it can never be flushed again, so a claim on its mapping
// now straddles the precommit boundary until the redefiner precommits too.
func (e *Engine) AllocPrecommitted(d DstAlloc) {
	a := d.New
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.gen == a.Gen {
		p.allocPrecommitted = true
	}
	if cs := b.claims.ref(a.Tag, a.Gen, d.Reg); cs != nil && !cs.allocPre {
		cs.allocPre = true
		if !cs.redefPre {
			e.openPre++
		}
	}
}

// OpenRegions returns the paper's §4.1 counter: atomic regions whose
// allocator has committed while the redefiner is still in flight.
func (e *Engine) OpenRegions() int { return e.openRegions }

// OpenPrecommitRegions returns the number of atomic regions straddling the
// precommit pointer; flushing the non-precommitted ROB suffix (the interrupt
// flush policy) is unsafe while it is non-zero.
func (e *Engine) OpenPrecommitRegions() int { return e.openPre }

// FlushInstr processes the flush of one instruction during the recovery
// walk: its new allocations are reclaimed (unless ATR already released
// them), and redefine state recorded on its previous mappings is undone.
func (e *Engine) FlushInstr(out *RenameOut, cycle uint64) {
	for i := 0; i < isa.MaxDsts; i++ {
		d := out.Dsts[i]
		if !d.New.Valid() {
			continue
		}
		// Undo the redefinition of prev: the previous mapping is live
		// again (its redefiner is gone).
		if d.Prev.Valid() && d.PrevValid {
			if life := e.life(d.Prev); life != nil {
				life.Redefined = 0
				life.Precommitted = 0
			}
			b := &e.banks[d.Prev.Class]
			p := &b.pregs[d.Prev.Tag]
			if p.gen == d.Prev.Gen && p.erArch == d.Reg {
				p.redefPre = false
			}
		}
		// Reclaim the flushed instruction's own allocation. An
		// eliminated move holds only a reference to a register someone
		// else allocated: drop the reference but leave the original
		// allocation's lifetime and claim state alone.
		b := &e.banks[d.New.Class]
		if !d.Eliminated {
			if rec, ok := b.lives.take(d.New.Tag, d.New.Gen); ok {
				rec.WrongPath = true
				e.Ledger.Record(&rec)
			}
		}
		b.claims.take(d.New.Tag, d.New.Gen, d.Reg)
		if b.early.takeOne(d.New.Tag, d.New.Gen, d.Reg) {
			// This mapping's reference was already dropped early;
			// the flush must not drop it again.
			continue
		}
		p := &b.pregs[d.New.Tag]
		if p.gen == d.New.Gen && !p.free {
			e.release(d.New, relFlush, cycle)
		}
	}
}

// WalkRestoreDst restores the SRT mapping for one flushed destination during
// a backward (youngest-to-oldest) recovery walk. Invalid previous ptags are
// skipped: an atomic region flushes as a unit, so the in-region allocator's
// own restore supersedes (§4.2.4 discussion).
func (e *Engine) WalkRestoreDst(d DstAlloc) {
	if !d.New.Valid() || !d.PrevValid || !d.Prev.Valid() {
		return
	}
	b := &e.banks[d.Reg.Class()]
	b.srt[d.Reg.ClassIndex()] = d.Prev.Tag
}

// ReplayDst re-applies one surviving instruction's destination mapping
// during forward-replay recovery (§4.2.1: restore the most recent checkpoint,
// then walk from the checkpoint to the flush point re-applying mappings).
func (e *Engine) ReplayDst(d DstAlloc) {
	if !d.New.Valid() || !d.Reg.Valid() {
		return
	}
	b := &e.banks[d.Reg.Class()]
	b.srt[d.Reg.ClassIndex()] = d.New.Tag
}

// TakeCheckpoint snapshots both SRTs (taken at branches). Checkpoints come
// from a free list; callers hand them back via ReleaseCheckpoint when the
// owning instruction commits or squashes.
func (e *Engine) TakeCheckpoint() *Checkpoint {
	var cp *Checkpoint
	if n := len(e.cpPool) - 1; n >= 0 {
		cp = e.cpPool[n]
		e.cpPool[n] = nil
		e.cpPool = e.cpPool[:n]
	} else {
		cp = &Checkpoint{}
	}
	for c := range e.banks {
		cp.srt[c] = append(cp.srt[c][:0], e.banks[c].srt...)
	}
	return cp
}

// ReleaseCheckpoint recycles a checkpoint whose owning instruction no longer
// needs it. nil is ignored.
func (e *Engine) ReleaseCheckpoint(cp *Checkpoint) {
	if cp == nil {
		return
	}
	e.cpPool = append(e.cpPool, cp)
}

// RestoreCheckpoint rewinds both SRTs to cp.
func (e *Engine) RestoreCheckpoint(cp *Checkpoint) {
	for c := range e.banks {
		copy(e.banks[c].srt, cp.srt[c])
	}
}

// release drops one reference to a; the register returns to the free list
// when the last reference goes (move elimination shares registers across
// mappings, each released independently — the paper's "decrement instead of
// release" extension).
func (e *Engine) release(a Alloc, kind relKind, cycle uint64) {
	b := &e.banks[a.Class]
	p := &b.pregs[a.Tag]
	if p.free || p.refs <= 0 {
		panic(fmt.Sprintf("core: double free of %v", a))
	}
	p.refs--
	p.claimed = false
	p.redefined = false
	p.redefPre = false
	e.Stats.Add(e.hRelease[kind], 1)
	if e.trace != nil {
		e.trace.Release(obs.ReleaseEvent{
			Cycle:  cycle,
			Scheme: relSchemeNames[kind],
			Region: p.region.String(),
			Class:  int(a.Class),
			Tag:    int(a.Tag),
		})
	}
	if p.refs > 0 {
		return
	}
	p.free = true
	b.free = append(b.free, a.Tag)
}

// Finalize records all still-tracked lifetimes (end of simulation window).
// Drain order is ascending tag per class — deterministic, and harmless to
// results because the ledger accumulates order-insensitive sums.
func (e *Engine) Finalize() {
	for c := range e.banks {
		e.banks[c].lives.drain(func(l *stats.RegLifetime) { e.Ledger.Record(l) })
	}
}

// CheckInvariants verifies free-list/allocation consistency; it returns an
// error describing the first violation. Tests call it after every flush and
// at end of run.
func (e *Engine) CheckInvariants() error {
	for c := range e.banks {
		b := &e.banks[c]
		inFree := make(map[PTag]bool, len(b.free))
		for _, t := range b.free {
			if inFree[t] {
				return fmt.Errorf("core: ptag %d appears twice in class %d free list", t, c)
			}
			if !b.pregs[t].free {
				return fmt.Errorf("core: ptag %d in free list but not marked free", t)
			}
			inFree[t] = true
		}
		nFree := 0
		for t := range b.pregs {
			if b.pregs[t].free {
				nFree++
				if !inFree[PTag(t)] {
					return fmt.Errorf("core: ptag %d marked free but missing from free list", t)
				}
				if b.pregs[t].refs != 0 {
					return fmt.Errorf("core: free ptag %d has %d references", t, b.pregs[t].refs)
				}
			} else if b.pregs[t].refs < 1 {
				return fmt.Errorf("core: live ptag %d has %d references", t, b.pregs[t].refs)
			}
		}
		if nFree != len(b.free) {
			return fmt.Errorf("core: class %d free count mismatch: %d marked vs %d listed", c, nFree, len(b.free))
		}
		for a, t := range b.srt {
			if t < 0 || int(t) >= len(b.pregs) {
				return fmt.Errorf("core: class %d SRT[%d] out of range: %d", c, a, t)
			}
			if b.pregs[t].free {
				return fmt.Errorf("core: class %d SRT[%d] maps to free ptag %d", c, a, t)
			}
		}
		if err := b.lives.check(); err != nil {
			return err
		}
		if err := b.claims.check(); err != nil {
			return err
		}
		if err := b.early.check(); err != nil {
			return err
		}
	}
	if e.openRegions < 0 {
		return fmt.Errorf("core: negative open-region counter %d", e.openRegions)
	}
	if e.openPre < 0 {
		return fmt.Errorf("core: negative precommit open-region counter %d", e.openPre)
	}
	return nil
}
