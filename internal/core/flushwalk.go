package core

import (
	"fmt"

	"atr/internal/isa"
)

// FlushWalker implements the paper's double-free-avoidance algorithm for
// flush recovery (§4.2.4) exactly as specified in hardware terms: two bits
// of storage per architectural register ID (a redefined bit and a consumed
// bit) instead of the simulator's exact generation tags.
//
// The walk visits flushed instructions from the tail (youngest) to the flush
// point, the same direction as baseline ptag reclamation (§4.2.1). For each
// instruction, in order:
//
//  1. if its destination's architectural register has both the redefined and
//     consumed bits set, its own allocated ptag was already early released by
//     ATR and must be skipped; both bits are then cleared;
//  2. if the instruction's previous-ptag field is invalid (ATR claimed the
//     release), both bits are set for its destination's architectural
//     register;
//  3. for each source register whose redefined bit is set, if the
//     instruction has not yet issued its pending consumer-count decrement
//     never happened, so the claimed register cannot have been released:
//     the consumed bit is cleared.
//
// Steps 2 and 3 are deliberately swapped relative to the paper's §4.2.4
// prose ("second ... sources, third ... destination"): for a self-redefining
// instruction (r1 <- r1,r2) the pending source read references the region
// the instruction's own claim opens, so the source processing must observe
// the instruction's own redefined bit. The property test against the
// generation-tagged oracle (TestFlushWalkerMatchesOracle) fails under the
// paper's stated order and passes under this one.
//
// Because an atomic region flushes as a unit, every bit set at step 3 for a
// flushed redefiner is consumed at step 1 by the (also flushed, older)
// allocating instruction — the walk always ends with all bits clear, which
// Walk verifies.
type FlushWalker struct {
	redefined [isa.NumClasses][]bool
	consumed  [isa.NumClasses][]bool
}

// NewFlushWalker allocates the 2×(17+16)-bit flag state.
func NewFlushWalker() *FlushWalker {
	w := &FlushWalker{}
	w.redefined[isa.ClassGPR] = make([]bool, isa.NumGPR)
	w.consumed[isa.ClassGPR] = make([]bool, isa.NumGPR)
	w.redefined[isa.ClassFPR] = make([]bool, isa.NumFPR)
	w.consumed[isa.ClassFPR] = make([]bool, isa.NumFPR)
	return w
}

// FlushRecord is the walker's view of one flushed instruction.
type FlushRecord struct {
	Out    *RenameOut
	Srcs   []isa.Reg // architectural source registers
	Issued bool      // the instruction had read its sources before the flush
}

// Walk runs the algorithm over flushed instructions ordered youngest first
// and returns the ptags to reclaim (everything allocated by the flushed
// instructions except those ATR already released). It returns an error if
// any flag is still set at the end, which would indicate a broken atomicity
// invariant.
func (w *FlushWalker) Walk(recs []FlushRecord) ([]Alloc, error) {
	var reclaim []Alloc
	for _, rec := range recs {
		// Step 1: decide this instruction's own allocations.
		for i := 0; i < isa.MaxDsts; i++ {
			d := rec.Out.Dsts[i]
			if !d.New.Valid() || !d.Reg.Valid() {
				continue
			}
			c, a := d.Reg.Class(), d.Reg.ClassIndex()
			if w.redefined[c][a] && w.consumed[c][a] {
				// Already early released by ATR: skip.
			} else {
				reclaim = append(reclaim, d.New)
			}
			w.redefined[c][a] = false
			w.consumed[c][a] = false
		}
		// Record claims made by this instruction, then process its
		// pending source reads. NOTE: the paper states the opposite
		// order (sources before own-destination claims), but that is
		// incorrect for self-redefining instructions (r1 <- r1,r2):
		// the instruction's own pending read references its *previous*
		// mapping — the very region its own claim opens — so the
		// consumed-bit clear must observe this instruction's redefined
		// bit. For every other source, regions nest along the
		// definition chain and the order is immaterial.
		for i := 0; i < isa.MaxDsts; i++ {
			d := rec.Out.Dsts[i]
			if !d.New.Valid() || !d.Reg.Valid() || d.PrevValid {
				continue
			}
			c, a := d.Reg.Class(), d.Reg.ClassIndex()
			w.redefined[c][a] = true
			w.consumed[c][a] = true
		}
		// An unissued consumer pins its sources' claimed registers
		// (their counters never reached zero).
		if !rec.Issued {
			for _, s := range rec.Srcs {
				if !s.Valid() {
					continue
				}
				c, a := s.Class(), s.ClassIndex()
				if w.redefined[c][a] {
					w.consumed[c][a] = false
				}
			}
		}
	}
	for c := range w.redefined {
		for a := range w.redefined[c] {
			if w.redefined[c][a] || w.consumed[c][a] {
				return reclaim, fmt.Errorf("core: flush walk ended with flags set for class %d arch %d: atomic region not flushed as a unit", c, a)
			}
		}
	}
	return reclaim, nil
}
