package config

import "testing"

func TestGoldenCoveMatchesTable1(t *testing.T) {
	c := GoldenCove()
	if c.FetchWidth != 6 || c.DecodeWidth != 6 {
		t.Errorf("frontend width = %d/%d, want 6/6", c.FetchWidth, c.DecodeWidth)
	}
	if c.RetireWidth != 8 {
		t.Errorf("retire width = %d, want 8", c.RetireWidth)
	}
	if c.ROBSize != 512 {
		t.Errorf("ROB = %d, want 512", c.ROBSize)
	}
	if c.RSSize != 160 {
		t.Errorf("RS = %d, want 160", c.RSSize)
	}
	if c.NumALU != 5 || c.NumLoadPorts != 3 || c.NumStorePorts != 2 {
		t.Errorf("FUs = %d/%d/%d, want 5/3/2", c.NumALU, c.NumLoadPorts, c.NumStorePorts)
	}
	if c.LoadQueue != 96 || c.StoreQueue != 64 {
		t.Errorf("LQ/SQ = %d/%d, want 96/64", c.LoadQueue, c.StoreQueue)
	}
	if c.BTBEntries != 12*1024 || c.IBTBEntries != 3*1024 {
		t.Errorf("BTB/IBTB = %d/%d", c.BTBEntries, c.IBTBEntries)
	}
	if c.L1I.SizeBytes != 32<<10 || c.L1I.Ways != 8 || c.L1I.Latency != 3 {
		t.Errorf("L1I = %+v", c.L1I)
	}
	if c.L1D.SizeBytes != 48<<10 || c.L1D.Ways != 12 || c.L1D.Latency != 3 {
		t.Errorf("L1D = %+v", c.L1D)
	}
	if c.L2.SizeBytes != 1280<<10 || c.L2.Ways != 10 || c.L2.Latency != 14 {
		t.Errorf("L2 = %+v", c.L2)
	}
	if c.LLC.SizeBytes != 3<<20 || c.LLC.Ways != 12 || c.LLC.Latency != 40 {
		t.Errorf("LLC = %+v", c.LLC)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("GoldenCove config invalid: %v", err)
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if got := c.Sets(); got != 64 {
		t.Errorf("Sets() = %d, want 64", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero fetch", func(c *Config) { c.FetchWidth = 0 }},
		{"tiny ROB", func(c *Config) { c.ROBSize = 2 }},
		{"tiny PRF", func(c *Config) { c.PhysRegs = 10 }},
		{"bad L1D geometry", func(c *Config) { c.L1D.SizeBytes = 1000 }},
		{"negative delay", func(c *Config) { c.RedefineDelay = -1 }},
		{"huge counter", func(c *Config) { c.ConsumerCounterBits = 99 }},
		{"bad scheme", func(c *Config) { c.Scheme = ReleaseScheme(42) }},
	}
	for _, m := range mutations {
		c := GoldenCove()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid config", m.name)
		}
	}
}

func TestInfinitePRFIsValid(t *testing.T) {
	c := GoldenCove().WithPhysRegs(0)
	if err := c.Validate(); err != nil {
		t.Errorf("PhysRegs=0 (infinite) should validate: %v", err)
	}
}

func TestSchemeStringRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme accepted bogus name")
	}
}

func TestWithHelpers(t *testing.T) {
	c := GoldenCove()
	c2 := c.WithScheme(SchemeATR).WithPhysRegs(64)
	if c2.Scheme != SchemeATR || c2.PhysRegs != 64 {
		t.Errorf("With helpers: %v %d", c2.Scheme, c2.PhysRegs)
	}
	if c.Scheme != SchemeBaseline || c.PhysRegs != 280 {
		t.Error("With helpers mutated the receiver")
	}
}

func TestMaxConsumerCount(t *testing.T) {
	c := GoldenCove()
	if got := c.MaxConsumerCount(); got != 7 {
		t.Errorf("3-bit counter max = %d, want 7", got)
	}
	c.ConsumerCounterBits = 0
	if got := c.MaxConsumerCount(); got != -1 {
		t.Errorf("unbounded counter = %d, want -1", got)
	}
	c.ConsumerCounterBits = 4
	if got := c.MaxConsumerCount(); got != 15 {
		t.Errorf("4-bit counter max = %d, want 15", got)
	}
}
