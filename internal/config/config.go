// Package config describes the simulated machine. The default configuration
// reproduces Table 1 of the paper: an Intel Golden Cove-like core at 3 GHz
// with a 6-wide frontend, 8-wide retirement, a 512-entry ROB, and the listed
// cache hierarchy.
package config

import "fmt"

// ReleaseScheme selects the physical-register release policy under study.
type ReleaseScheme int

// The four schemes compared in Figure 10.
const (
	// SchemeBaseline releases a previous ptag when the redefining
	// instruction commits (conventional renaming).
	SchemeBaseline ReleaseScheme = iota
	// SchemeNonSpecER additionally releases a ptag early once it is fully
	// consumed and its redefining instruction has precommitted
	// (non-speculative early release, §2.3).
	SchemeNonSpecER
	// SchemeATR releases ptags allocated inside atomic commit regions as
	// soon as they are redefined and fully consumed, even while older
	// branches are unresolved (§4).
	SchemeATR
	// SchemeCombined applies both ATR and non-speculative early release
	// (§4.3).
	SchemeCombined
)

var schemeNames = map[ReleaseScheme]string{
	SchemeBaseline:  "baseline",
	SchemeNonSpecER: "nonspec-er",
	SchemeATR:       "atomic",
	SchemeCombined:  "combined",
}

func (s ReleaseScheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme?%d", int(s))
}

// ParseScheme converts a scheme name (as printed by String) back to a value.
func ParseScheme(name string) (ReleaseScheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("config: unknown release scheme %q", name)
}

// Schemes lists all release schemes in evaluation order.
func Schemes() []ReleaseScheme {
	return []ReleaseScheme{SchemeBaseline, SchemeNonSpecER, SchemeATR, SchemeCombined}
}

// InterruptMode selects how asynchronous interrupts are taken (§4.1).
type InterruptMode int

const (
	// InterruptDrain stops fetch and drains the ROB before vectoring; ATR
	// requires no changes in this mode.
	InterruptDrain InterruptMode = iota
	// InterruptFlush flushes the ROB, but with ATR it must first wait until
	// the active-atomic-region counter reaches zero.
	InterruptFlush
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
	Latency   int // access latency in cycles, inclusive of tag match
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Config is the full machine description.
type Config struct {
	// Frontend.
	FetchWidth    int // instructions fetched per cycle
	DecodeWidth   int
	RenameWidth   int
	FetchTargets  int // fetch targets (basic-block descriptors) per cycle
	FetchQueue    int // fetch-target queue entries
	DecodeQueue   int // decoded micro-op queue entries
	BTBEntries    int
	IBTBEntries   int // indirect branch target buffer
	RASEntries    int
	TageHistLen   int // longest TAGE history length
	TageTables    int // number of tagged tables
	TageTableBits int // log2 entries per tagged table

	// Backend.
	IssueWidth    int // max micro-ops issued to FUs per cycle
	RetireWidth   int
	ROBSize       int
	RSSize        int // reservation station entries
	LoadQueue     int
	StoreQueue    int
	NumALU        int
	NumLoadPorts  int
	NumStorePorts int

	// Register files. PhysRegs applies to both the scalar and the FP file,
	// matching the paper's single "register file size" sweep axis. A value
	// of 0 means effectively infinite (the Fig 1 ideal configuration).
	PhysRegs int

	// Release policy under study.
	Scheme ReleaseScheme

	// RedefineDelay pipelines ATR's redefinition signal by N cycles
	// (Fig 13 sensitivity; 0 = combinational).
	RedefineDelay int

	// ConsumerCounterBits is the width of the per-preg consumer counter;
	// the all-ones value is reserved as no-early-release (§4.2.2, Fig 12
	// studies this width). 0 means unbounded (infinite counter).
	ConsumerCounterBits int

	// WalkRecovery selects walk-based RAT recovery instead of per-branch
	// checkpoints (§4.2.1 describes both).
	WalkRecovery bool

	// CheckpointBudget bounds the number of outstanding SRT checkpoints.
	// 0 checkpoints every mispredictable control instruction; a positive
	// value checkpoints only low-confidence branches and indirect
	// transfers up to the budget (§4.2.1), with recovery at a
	// non-checkpointed branch restoring the nearest older checkpoint and
	// replaying surviving mappings forward (or falling back to the
	// backward walk when no checkpoint is older).
	CheckpointBudget int

	// MoveElimination enables register-move elimination (§6): moves rename
	// their destination to the source's physical register instead of
	// allocating, with per-register reference counts; every release
	// decrements and the register frees at zero. Composes with ATR as the
	// paper describes ("decrement ref counts on early-release").
	MoveElimination bool

	// MemPrecommitAtExec controls when loads and stores stop blocking
	// the precommit pointer: true (default, matching the paper — Fig 5
	// shows a load precommitting at its execute cycle, well before its
	// data returns) means at address translation; false is the
	// conservative wait-for-completion variant, kept as an ablation.
	MemPrecommitAtExec bool

	// Interrupts. InterruptInterval > 0 injects an asynchronous interrupt
	// every that many cycles; InterruptCost models handler latency.
	InterruptMode     InterruptMode
	InterruptInterval int
	InterruptCost     int

	// FaultRate injects a synchronous exception on roughly one in FaultRate
	// faultable instructions (0 disables). Used by precise-exception tests.
	FaultRate int

	// Memory hierarchy (Table 1).
	L1I            CacheConfig
	L1D            CacheConfig
	L2             CacheConfig
	LLC            CacheConfig
	MemLatency     int // DRAM access latency in cycles
	MSHRs          int // outstanding L1D misses
	StreamPrefetch bool
}

// GoldenCove returns the Table 1 configuration: 6-wide fetch/decode, 8-wide
// retirement, 512-entry ROB, 160-entry reservation station, 5 ALU / 3 load /
// 2 store ports, 96-entry load buffer, 64-entry store buffer, and the listed
// cache sizes and latencies. PhysRegs defaults to 280 (Golden Cove's integer
// file size quoted in the introduction).
func GoldenCove() Config {
	return Config{
		FetchWidth:    6,
		DecodeWidth:   6,
		RenameWidth:   6,
		FetchTargets:  2,
		FetchQueue:    24,
		DecodeQueue:   48,
		BTBEntries:    12 * 1024,
		IBTBEntries:   3 * 1024,
		RASEntries:    32,
		TageHistLen:   256,
		TageTables:    6,
		TageTableBits: 10,

		IssueWidth:    10,
		RetireWidth:   8,
		ROBSize:       512,
		RSSize:        160,
		LoadQueue:     96,
		StoreQueue:    64,
		NumALU:        5,
		NumLoadPorts:  3,
		NumStorePorts: 2,

		PhysRegs:            280,
		MemPrecommitAtExec:  true,
		Scheme:              SchemeBaseline,
		RedefineDelay:       0,
		ConsumerCounterBits: 3,

		L1I:            CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 3},
		L1D:            CacheConfig{SizeBytes: 48 << 10, Ways: 12, LineBytes: 64, Latency: 3},
		L2:             CacheConfig{SizeBytes: 1280 << 10, Ways: 10, LineBytes: 64, Latency: 14},
		LLC:            CacheConfig{SizeBytes: 3 << 20, Ways: 12, LineBytes: 64, Latency: 40},
		MemLatency:     200,
		MSHRs:          32,
		StreamPrefetch: true,
	}
}

// WithScheme returns a copy of c with the release scheme set.
func (c Config) WithScheme(s ReleaseScheme) Config {
	c.Scheme = s
	return c
}

// WithPhysRegs returns a copy of c with the physical register file size set.
func (c Config) WithPhysRegs(n int) Config {
	c.PhysRegs = n
	return c
}

// Validate checks structural consistency and returns a descriptive error for
// the first violated constraint.
func (c Config) Validate() error {
	check := func(cond bool, format string, args ...any) error {
		if !cond {
			return fmt.Errorf("config: "+format, args...)
		}
		return nil
	}
	checks := []error{
		check(c.FetchWidth > 0, "FetchWidth must be positive"),
		check(c.RenameWidth > 0, "RenameWidth must be positive"),
		check(c.RetireWidth > 0, "RetireWidth must be positive"),
		check(c.ROBSize >= c.RenameWidth, "ROBSize %d < RenameWidth %d", c.ROBSize, c.RenameWidth),
		check(c.RSSize > 0, "RSSize must be positive"),
		check(c.LoadQueue > 0 && c.StoreQueue > 0, "load/store queues must be positive"),
		check(c.NumALU > 0 && c.NumLoadPorts > 0 && c.NumStorePorts > 0, "functional unit counts must be positive"),
		check(c.PhysRegs == 0 || c.PhysRegs >= 40,
			"PhysRegs %d too small: need at least arch state (33) plus one rename group", c.PhysRegs),
		check(c.ConsumerCounterBits >= 0 && c.ConsumerCounterBits <= 16, "ConsumerCounterBits out of range"),
		check(c.RedefineDelay >= 0 && c.RedefineDelay <= 8, "RedefineDelay out of range"),
		check(c.Scheme >= SchemeBaseline && c.Scheme <= SchemeCombined, "unknown scheme %d", int(c.Scheme)),
	}
	for _, lvl := range []struct {
		name string
		c    CacheConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}, {"LLC", c.LLC}} {
		checks = append(checks,
			check(lvl.c.SizeBytes > 0 && lvl.c.Ways > 0 && lvl.c.LineBytes > 0,
				"%s cache has non-positive geometry", lvl.name),
			check(lvl.c.SizeBytes%(lvl.c.Ways*lvl.c.LineBytes) == 0,
				"%s cache size %d not divisible by way*line", lvl.name, lvl.c.SizeBytes),
			check(lvl.c.Latency > 0, "%s latency must be positive", lvl.name))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

// MaxConsumerCount returns the saturation value of the consumer counter; the
// value itself is reserved as no-early-release. Returns -1 for an unbounded
// counter.
func (c Config) MaxConsumerCount() int {
	if c.ConsumerCounterBits == 0 {
		return -1
	}
	return 1<<c.ConsumerCounterBits - 1
}
