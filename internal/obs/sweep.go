package obs

// SweepProgress is one live progress tick of a grid sweep, emitted after
// every completed (or finally failed) run. Counts are cumulative.
type SweepProgress struct {
	Done    int // runs completed successfully (including resumed)
	Failed  int // runs that exhausted their retries
	Retried int // retry attempts consumed so far
	Resumed int // runs satisfied from the resume journal
	Total   int // grid size
	Bench   string
	Scheme  string
	Worker  int
	Err     string // failure message of the run that just finished, if any
}

// ShardStat is one worker's contribution to a sweep: the per-shard
// throughput view of the engine.
type ShardStat struct {
	Worker       int     `json:"worker"`
	Runs         int     `json:"runs"`
	Failed       int     `json:"failed,omitempty"`
	Committed    uint64  `json:"committed"`
	Cycles       uint64  `json:"cycles"`
	BusySeconds  float64 `json:"busy_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// SweepInfo summarizes the scheduling side of one sweep execution: outcome
// counts, journal activity, and per-shard throughput. Unlike the sweep's
// deterministic result manifest, this is wall-clock data and varies run to
// run; it belongs in the observability manifest, not the results artifact.
type SweepInfo struct {
	Workers        int         `json:"workers"`
	Total          int         `json:"total"`
	Done           int         `json:"done"`
	Failed         int         `json:"failed"`
	Retried        int         `json:"retried"`
	Resumed        int         `json:"resumed"`
	JournalFlushes int         `json:"journal_flushes"`
	WallSeconds    float64     `json:"wall_seconds"`
	CyclesPerSec   float64     `json:"cycles_per_sec"` // executed (non-resumed) runs only
	Shards         []ShardStat `json:"shards,omitempty"`
}
