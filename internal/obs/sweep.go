package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// SweepProgress is one live progress tick of a grid sweep, emitted after
// every completed (or finally failed) run. Counts are cumulative.
type SweepProgress struct {
	Done    int // runs completed successfully (including resumed)
	Failed  int // runs that exhausted their retries
	Retried int // retry attempts consumed so far
	Resumed int // runs satisfied from the resume journal
	Total   int // grid size
	Bench   string
	Scheme  string
	Worker  int
	Err     string // failure message of the run that just finished, if any
}

// ShardStat is one worker's contribution to a sweep: the per-shard
// throughput view of the engine.
type ShardStat struct {
	Worker       int     `json:"worker"`
	Runs         int     `json:"runs"`
	Failed       int     `json:"failed,omitempty"`
	Committed    uint64  `json:"committed"`
	Cycles       uint64  `json:"cycles"`
	BusySeconds  float64 `json:"busy_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// SweepInfo summarizes the scheduling side of one sweep execution: outcome
// counts, journal activity, and per-shard throughput. Unlike the sweep's
// deterministic result manifest, this is wall-clock data and varies run to
// run; it belongs in the observability manifest, not the results artifact.
type SweepInfo struct {
	Workers        int         `json:"workers"`
	Total          int         `json:"total"`
	Done           int         `json:"done"`
	Failed         int         `json:"failed"`
	Retried        int         `json:"retried"`
	Resumed        int         `json:"resumed"`
	JournalFlushes int         `json:"journal_flushes"`
	WallSeconds    float64     `json:"wall_seconds"`
	CyclesPerSec   float64     `json:"cycles_per_sec"` // executed (non-resumed) runs only
	Shards         []ShardStat `json:"shards,omitempty"`

	// Lockstep batching telemetry (PR 7). Batch is the configured lane
	// cap (1 = batching off); Batches counts lockstep groups executed;
	// BatchedRuns counts units that ran inside multi-lane groups. The
	// phase seconds attribute batched wall clock to lane construction
	// (Setup), lockstep simulation (Exec), and — for the whole sweep —
	// manifest assembly (Merge). Like everything else here this is
	// scheduling telemetry: batching never changes the result manifest.
	Batch        int     `json:"batch,omitempty"`
	Batches      int     `json:"batches,omitempty"`
	BatchedRuns  int     `json:"batched_runs,omitempty"`
	SetupSeconds float64 `json:"setup_seconds,omitempty"`
	ExecSeconds  float64 `json:"exec_seconds,omitempty"`
	MergeSeconds float64 `json:"merge_seconds,omitempty"`

	// Provenance: where and when this sweep executed. Like the rest of
	// SweepInfo it varies run to run, which is exactly why it lives here
	// and never in the deterministic result manifest.
	Host       string `json:"host,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`  // RFC3339
	FinishedAt string `json:"finished_at,omitempty"` // RFC3339
	JobID      string `json:"job_id,omitempty"`      // server job, when one ran this sweep

	// Sample, when present, records that the grid carried a sampled-
	// execution axis and how many units ran sampled vs. exact. Grids
	// without the axis never emit this block.
	Sample *SampleSweepInfo `json:"sample,omitempty"`
}

// SampleSweepInfo is the sweep-level sampled-execution provenance block.
type SampleSweepInfo struct {
	Modes       []string `json:"modes"` // axis values; "exact" = full detail
	SampledRuns int      `json:"sampled_runs"`
	ExactRuns   int      `json:"exact_runs"`
}

// Perf-manifest schema identification: the scheduling-telemetry artifact
// written beside (never inside) a sweep's deterministic result manifest.
const (
	PerfManifestSchema  = "atr-sweep-perf"
	PerfManifestVersion = 1
)

// PerfManifest is grid mode's scheduling telemetry artifact: everything
// nondeterministic about a sweep execution — wall clock, shard throughput,
// provenance — kept out of the result manifest so the latter stays
// byte-comparable across worker counts, resume splits, and hosts.
type PerfManifest struct {
	Schema  string    `json:"schema"`
	Version int       `json:"version"`
	Build   BuildInfo `json:"build"`
	Sweep   SweepInfo `json:"sweep"`
}

// NewPerfManifest wraps a sweep's telemetry with schema identification and
// build provenance.
func NewPerfManifest(info SweepInfo) PerfManifest {
	return PerfManifest{Schema: PerfManifestSchema, Version: PerfManifestVersion, Build: Build(), Sweep: info}
}

// Encode writes the perf manifest as indented JSON.
func (m PerfManifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodePerfManifest parses and validates a perf manifest.
func DecodePerfManifest(r io.Reader) (PerfManifest, error) {
	var m PerfManifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return m, fmt.Errorf("obs: decode perf manifest: %w", err)
	}
	if m.Schema != PerfManifestSchema {
		return m, fmt.Errorf("obs: perf manifest schema %q, want %q", m.Schema, PerfManifestSchema)
	}
	if m.Version != PerfManifestVersion {
		return m, fmt.Errorf("obs: perf manifest version %d, want %d", m.Version, PerfManifestVersion)
	}
	return m, nil
}

// ServerInfo is the atrd daemon's /metrics snapshot: job and queue
// accounting, rate limiting, and result-cache effectiveness. All counts are
// cumulative since daemon start except the gauges (queue depth, running,
// cache size).
type ServerInfo struct {
	Build         BuildInfo `json:"build"`
	StartedAt     string    `json:"started_at"` // RFC3339
	UptimeSeconds float64   `json:"uptime_seconds"`

	JobsSubmitted int `json:"jobs_submitted"`
	JobsQueued    int `json:"jobs_queued"`  // gauge
	JobsRunning   int `json:"jobs_running"` // gauge
	JobsDone      int `json:"jobs_done"`
	JobsFailed    int `json:"jobs_failed"`
	JobsCancelled int `json:"jobs_cancelled"`
	JobsRecovered int `json:"jobs_recovered"` // re-enqueued from the state dir at startup

	QueueCap    int `json:"queue_cap"`
	RateLimited int `json:"rate_limited"` // submissions refused with 429

	RunsExecuted  int `json:"runs_executed"`   // simulations actually run
	RunsFromCache int `json:"runs_from_cache"` // units satisfied by the result cache
	CacheHits     int `json:"cache_hits"`
	CacheMisses   int `json:"cache_misses"`
	CacheSize     int `json:"cache_size"` // gauge
	CacheCap      int `json:"cache_cap"`

	// Telemetry-registry additions (PR 6). The JSON view is a snapshot of
	// the same lock-free instruments /metrics exposes in Prometheus format;
	// fields are additive so existing atrctl clients keep parsing.
	HTTPRequests   int `json:"http_requests"`          // all routes, all codes
	LimiterClients int `json:"limiter_clients"`        // gauge: token buckets tracked
	RunnerMemoHits int `json:"runner_memo_hits"`       // experiments.Runner memo cache
	RunnerPrograms int `json:"runner_programs_cached"` // gauge: resident program images
}
