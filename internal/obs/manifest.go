package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"atr/internal/config"
)

// Manifest schema identification. Bump ManifestVersion on any
// backwards-incompatible field change; DecodeManifest rejects mismatches.
const (
	ManifestSchema  = "atr-run-manifest"
	ManifestVersion = 1
)

// BuildInfo identifies the binary that produced a manifest.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"revision,omitempty"` // VCS revision (git describe analog)
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"` // dirty working tree
}

// Build returns the current binary's build identification, read from the
// Go build-info records embedded by the toolchain (no git invocation).
func Build() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// BenchmarkInfo names the simulated workload.
type BenchmarkInfo struct {
	Name         string `json:"name"`
	Class        string `json:"class"`
	Seed         uint64 `json:"seed"`
	StaticInstrs int    `json:"static_instrs,omitempty"`
}

// RunResult mirrors pipeline.Result (obs cannot import pipeline, which
// imports obs for its hooks).
type RunResult struct {
	Cycles           uint64  `json:"cycles"`
	Committed        uint64  `json:"committed"`
	IPC              float64 `json:"ipc"`
	Mispredicts      uint64  `json:"mispredicts"`
	Flushes          uint64  `json:"flushes"`
	Exceptions       uint64  `json:"exceptions"`
	Interrupts       uint64  `json:"interrupts"`
	RenameStalls     uint64  `json:"rename_stalls"`
	BranchAccuracy   float64 `json:"branch_accuracy"`
	IndirectAccuracy float64 `json:"indirect_accuracy"`
	L1DHitRate       float64 `json:"l1d_hit_rate"`
	AvgRegsLive      float64 `json:"avg_regs_live"`
	Halted           bool    `json:"halted"`
}

// LedgerSummary is the register-lifetime ledger's figure-level outputs.
type LedgerSummary struct {
	Completed      uint64  `json:"completed"`
	InUse          float64 `json:"in_use"`
	Unused         float64 `json:"unused"`
	VerifiedUnused float64 `json:"verified_unused"`
	NonBranch      float64 `json:"non_branch"`
	NonExcept      float64 `json:"non_except"`
	Atomic         float64 `json:"atomic"`
	GapRedefine    float64 `json:"gap_redefine"`
	GapConsume     float64 `json:"gap_consume"`
	GapCommit      float64 `json:"gap_commit"`
	ConsumerMean   float64 `json:"consumer_mean"`
}

// PerfInfo records host-side simulation speed.
type PerfInfo struct {
	WallSeconds float64 `json:"wall_seconds"`
	InstrPerSec float64 `json:"instr_per_sec"`
	// CyclesPerSec is simulated cycles per wall-clock second; together
	// with InstrPerSec it tracks scheduler-rework regressions.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// AllocsPerInstr is heap allocations per committed instruction over
	// the whole run, including warmup (steady state is zero).
	AllocsPerInstr float64 `json:"allocs_per_instr,omitempty"`
	// Lockstep lane accounting (PR 7): when the run executed as a lane
	// of a batched group, Lanes is the group width and the phase seconds
	// split the batch's wall clock into lane construction (Setup) and
	// lockstep simulation (Exec). All zero for solo runs.
	Lanes        int     `json:"lanes,omitempty"`
	SetupSeconds float64 `json:"setup_seconds,omitempty"`
	ExecSeconds  float64 `json:"exec_seconds,omitempty"`
}

// SampleInfo records sampled-simulation provenance: how the run's detail
// windows were scheduled, how much of the instruction stream was simulated
// in detail vs. only fast-forwarded, and the 95%-confidence relative error
// bars the window variance implies for the extrapolated statistics. Its
// presence marks every statistic in Result as an estimate.
type SampleInfo struct {
	Mode             string  `json:"mode"` // e.g. "systematic:100000/2000/500"
	Period           uint64  `json:"period"`
	Window           uint64  `json:"window"`
	Warmup           uint64  `json:"warmup"`
	Windows          int     `json:"windows"`
	DetailInstr      uint64  `json:"detail_instr"`
	FFInstr          uint64  `json:"ff_instr"`
	IPCRelErr        float64 `json:"ipc_rel_err"`
	MispredictRelErr float64 `json:"mispredict_rel_err,omitempty"`
	BranchAccRelErr  float64 `json:"branch_acc_rel_err,omitempty"`
	L1DHitRelErr     float64 `json:"l1d_hit_rel_err,omitempty"`
}

// TraceInfo summarizes an event trace emitted alongside a manifest.
type TraceInfo struct {
	JSONLPath string `json:"jsonl_path,omitempty"`
	O3Path    string `json:"o3_path,omitempty"`
	Uops      uint64 `json:"uops"`
	Commits   uint64 `json:"commits"`
	Releases  uint64 `json:"releases"`
}

// Manifest is the versioned machine-readable record of one simulation run:
// the full machine configuration, workload identity, build provenance,
// results, counters, and optional time series. Sweeps serialized this way
// are diffable artifacts.
type Manifest struct {
	Schema    string            `json:"schema"`
	Version   int               `json:"version"`
	CreatedAt string            `json:"created_at,omitempty"` // RFC3339
	Build     BuildInfo         `json:"build"`
	Benchmark BenchmarkInfo     `json:"benchmark"`
	Config    config.Config     `json:"config"`
	Result    RunResult         `json:"result"`
	Ledger    LedgerSummary     `json:"ledger"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
	Perf      PerfInfo          `json:"perf"`
	Samples   []Sample          `json:"samples,omitempty"`
	Trace     *TraceInfo        `json:"trace,omitempty"`
	// Sample, when present, marks the run as sampled: Result holds
	// extrapolated estimates rather than exact counts. Exact runs never
	// emit this block, so the two can never be confused.
	Sample *SampleInfo `json:"sample,omitempty"`
}

// NewManifest returns a manifest with schema identification and build
// provenance filled in.
func NewManifest() Manifest {
	return Manifest{Schema: ManifestSchema, Version: ManifestVersion, Build: Build()}
}

// Validate checks schema identification and structural consistency.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("obs: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Version != ManifestVersion {
		return fmt.Errorf("obs: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Benchmark.Name == "" {
		return fmt.Errorf("obs: manifest missing benchmark name")
	}
	if err := m.Config.Validate(); err != nil {
		return fmt.Errorf("obs: manifest config: %w", err)
	}
	if m.Result.Cycles == 0 && m.Result.Committed > 0 {
		return fmt.Errorf("obs: manifest result committed %d instructions in 0 cycles", m.Result.Committed)
	}
	var sampled uint64
	for _, s := range m.Samples {
		sampled += s.Committed
	}
	if len(m.Samples) > 0 && sampled != m.Result.Committed {
		return fmt.Errorf("obs: manifest samples sum to %d committed, result says %d", sampled, m.Result.Committed)
	}
	if m.Trace != nil && m.Trace.Commits != m.Result.Committed {
		return fmt.Errorf("obs: manifest trace has %d commit events, result says %d", m.Trace.Commits, m.Result.Committed)
	}
	return nil
}

// Encode writes the manifest as indented JSON.
func (m Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeManifest parses and validates a manifest.
func DecodeManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("obs: decode manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}
