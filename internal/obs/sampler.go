package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is the cumulative machine state the pipeline hands the sampler
// at an interval boundary; the sampler differences consecutive snapshots
// into per-interval samples. Occupancy fields are instantaneous.
type Snapshot struct {
	Cycle        uint64
	Committed    uint64
	Mispredicts  uint64
	Flushes      uint64
	RenameStalls uint64

	BranchAccuracy float64 // cumulative, not differenced

	ROB, RS, LQ, SQ  int // instantaneous occupancy
	FreeGPR, FreeFPR int // instantaneous free-list depth

	ReleaseATR, ReleaseER, ReleaseCommit, ReleaseFlush uint64
}

// Sample is one interval of the time series. Event counts are deltas over
// the interval; occupancy and accuracy are the values at the sample point.
type Sample struct {
	Cycle          uint64  `json:"cycle"`  // end-of-interval cycle
	Cycles         uint64  `json:"cycles"` // interval length
	Committed      uint64  `json:"committed"`
	IPC            float64 `json:"ipc"`
	Mispredicts    uint64  `json:"mispredicts"`
	Flushes        uint64  `json:"flushes"`
	RenameStalls   uint64  `json:"rename_stalls"`
	BranchAccuracy float64 `json:"branch_accuracy"`
	ROB            int     `json:"rob"`
	RS             int     `json:"rs"`
	LQ             int     `json:"lq"`
	SQ             int     `json:"sq"`
	FreeGPR        int     `json:"free_gpr"`
	FreeFPR        int     `json:"free_fpr"`
	ReleaseATR     uint64  `json:"release_atr"`
	ReleaseER      uint64  `json:"release_er"`
	ReleaseCommit  uint64  `json:"release_commit"`
	ReleaseFlush   uint64  `json:"release_flush"`
}

// Sampler accumulates an interval time series. It is not safe for
// concurrent use; attach one per CPU.
type Sampler struct {
	interval uint64
	prev     Snapshot
	samples  []Sample
}

// NewSampler creates a sampler firing every interval cycles (interval
// must be positive).
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		panic("obs: sampler interval must be positive")
	}
	return &Sampler{interval: interval}
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() uint64 { return s.interval }

// Due reports whether cycle is an interval boundary.
func (s *Sampler) Due(cycle uint64) bool {
	return cycle > 0 && cycle%s.interval == 0
}

// Record folds one snapshot into the series. Snapshots must arrive in
// cycle order; a snapshot not past the previous one is ignored.
func (s *Sampler) Record(snap Snapshot) {
	if snap.Cycle <= s.prev.Cycle {
		return
	}
	dc := snap.Cycle - s.prev.Cycle
	sm := Sample{
		Cycle:          snap.Cycle,
		Cycles:         dc,
		Committed:      snap.Committed - s.prev.Committed,
		Mispredicts:    snap.Mispredicts - s.prev.Mispredicts,
		Flushes:        snap.Flushes - s.prev.Flushes,
		RenameStalls:   snap.RenameStalls - s.prev.RenameStalls,
		BranchAccuracy: snap.BranchAccuracy,
		ROB:            snap.ROB,
		RS:             snap.RS,
		LQ:             snap.LQ,
		SQ:             snap.SQ,
		FreeGPR:        snap.FreeGPR,
		FreeFPR:        snap.FreeFPR,
		ReleaseATR:     snap.ReleaseATR - s.prev.ReleaseATR,
		ReleaseER:      snap.ReleaseER - s.prev.ReleaseER,
		ReleaseCommit:  snap.ReleaseCommit - s.prev.ReleaseCommit,
		ReleaseFlush:   snap.ReleaseFlush - s.prev.ReleaseFlush,
	}
	sm.IPC = float64(sm.Committed) / float64(dc)
	s.samples = append(s.samples, sm)
	s.prev = snap
}

// Finalize records the partial tail interval at the end of a run, if the
// run did not end exactly on an interval boundary. Safe to call more than
// once (subsequent calls with no progress are no-ops).
func (s *Sampler) Finalize(snap Snapshot) {
	s.Record(snap)
}

// Samples returns the series recorded so far.
func (s *Sampler) Samples() []Sample { return s.samples }

// WriteCSV renders the series as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,cycles,committed,ipc,mispredicts,flushes,rename_stalls,branch_accuracy,rob,rs,lq,sq,free_gpr,free_fpr,release_atr,release_er,release_commit,release_flush"); err != nil {
		return err
	}
	for _, m := range s.samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.4f,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			m.Cycle, m.Cycles, m.Committed, m.IPC, m.Mispredicts, m.Flushes,
			m.RenameStalls, m.BranchAccuracy, m.ROB, m.RS, m.LQ, m.SQ,
			m.FreeGPR, m.FreeFPR, m.ReleaseATR, m.ReleaseER, m.ReleaseCommit, m.ReleaseFlush); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the series as a JSON array.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if s.samples == nil {
		return enc.Encode([]Sample{})
	}
	return enc.Encode(s.samples)
}
