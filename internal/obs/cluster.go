package obs

// ClusterWorker is one registered worker daemon in the coordinator's
// fleet view (GET /cluster/v1/workers and `atrctl workers`).
type ClusterWorker struct {
	ID         string `json:"id"`
	Addr       string `json:"addr,omitempty"` // advertised metrics address, if any
	SimWorkers int    `json:"sim_workers,omitempty"`

	// AliveSeconds is time since registration; LastBeatSeconds is time
	// since the last heartbeat (a worker is evicted once this exceeds the
	// coordinator's heartbeat timeout).
	AliveSeconds    float64 `json:"alive_seconds"`
	LastBeatSeconds float64 `json:"last_beat_seconds"`

	// Leased counts units currently leased to this worker; Done and
	// Failed count records it has uploaded.
	Leased int    `json:"leased"`
	Done   uint64 `json:"done"`
	Failed uint64 `json:"failed"`
}

// ClusterInfo is the coordinator's fleet snapshot: the registered
// workers plus cluster-wide unit accounting. Like ServerInfo it is a
// monitoring view — nothing in it feeds back into scheduling or the
// deterministic manifests.
type ClusterInfo struct {
	Workers     []ClusterWorker `json:"workers"`
	JobsActive  int             `json:"jobs_active"`
	UnitsDone   int             `json:"units_done"`
	UnitsLeased int             `json:"units_leased"`
	// UnitsPending counts units of active jobs that are neither done nor
	// under a live lease (waiting for a worker to poll).
	UnitsPending int `json:"units_pending"`
}
