// Package obs is the simulator observability layer: a per-uop pipeline
// event tracer (compact JSONL plus gem5 O3PipeView output loadable in
// Konata), an interval time-series sampler, and versioned machine-readable
// run manifests. Every hook is nil-guarded so that with observation
// disabled the simulator hot path pays only a pointer compare.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TicksPerCycle scales cycles into O3PipeView ticks. gem5 emits picosecond
// ticks (500 per cycle at 2 GHz); Konata infers the cycle time from the
// smallest stage delta, so any consistent scale works.
const TicksPerCycle = 500

// UopEvent is the full stage-timestamp record of one dynamic micro-op,
// emitted when the uop leaves the machine (commit or squash). A zero
// timestamp means the uop never reached that stage. In this pipeline model
// rename and dispatch are fused, so Dispatch equals Rename.
type UopEvent struct {
	Seq       uint64 `json:"seq"`
	PC        uint64 `json:"pc"`
	Op        string `json:"op"`
	Fetch     uint64 `json:"fetch"`
	Rename    uint64 `json:"rename"`
	Dispatch  uint64 `json:"dispatch"`
	Issue     uint64 `json:"issue"`
	Complete  uint64 `json:"complete"`
	Precommit uint64 `json:"precommit,omitempty"`
	Commit    uint64 `json:"commit,omitempty"`
	Squashed  bool   `json:"squashed,omitempty"`
}

// ReleaseEvent records one physical-register release, tagged with the
// mechanism that performed it and the region classification of the
// released allocation.
type ReleaseEvent struct {
	Cycle  uint64 `json:"cycle"`
	Scheme string `json:"scheme"` // atr | er | commit | flush
	Region string `json:"region"` // atomic | non-branch | non-except | none
	Class  int    `json:"class"`
	Tag    int    `json:"tag"`
}

// Line is the union decode target for one JSONL trace line. Ev is "uop"
// for UopEvent lines and "release" for ReleaseEvent lines.
type Line struct {
	Ev string `json:"ev"`
	UopEvent
	Cycle  uint64 `json:"cycle"`
	Scheme string `json:"scheme"`
	Region string `json:"region"`
	Class  int    `json:"class"`
	Tag    int    `json:"tag"`
}

type uopLine struct {
	Ev string `json:"ev"`
	UopEvent
}

type releaseLine struct {
	Ev string `json:"ev"`
	ReleaseEvent
}

// Tracer serializes pipeline events. Either output may be nil: jsonl
// receives one JSON object per line, o3 receives gem5 O3PipeView records.
// The tracer is not safe for concurrent use; attach one per CPU.
type Tracer struct {
	jsonl *bufio.Writer
	o3    *bufio.Writer

	uops     uint64
	commits  uint64
	squashes uint64
	releases uint64
	err      error
}

// NewTracer wraps the given writers (either may be nil, not both).
func NewTracer(jsonl, o3view io.Writer) *Tracer {
	t := &Tracer{}
	if jsonl != nil {
		t.jsonl = bufio.NewWriterSize(jsonl, 1<<16)
	}
	if o3view != nil {
		t.o3 = bufio.NewWriterSize(o3view, 1<<16)
	}
	return t
}

// Uop records one retired or squashed micro-op.
func (t *Tracer) Uop(ev UopEvent) {
	t.uops++
	if ev.Squashed {
		t.squashes++
	} else {
		t.commits++
	}
	if t.jsonl != nil {
		t.writeJSON(uopLine{Ev: "uop", UopEvent: ev})
	}
	if t.o3 != nil {
		t.writeO3(ev)
	}
}

// Release records one physical-register release event.
func (t *Tracer) Release(ev ReleaseEvent) {
	t.releases++
	if t.jsonl != nil {
		t.writeJSON(releaseLine{Ev: "release", ReleaseEvent: ev})
	}
}

func (t *Tracer) writeJSON(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		t.setErr(err)
		return
	}
	if _, err := t.jsonl.Write(b); err != nil {
		t.setErr(err)
		return
	}
	t.setErr(t.jsonl.WriteByte('\n'))
}

// writeO3 emits one gem5 O3PipeView record group. The stage sequence is
// fetch/decode/rename/dispatch/issue/complete/retire; Konata treats a
// retire tick of 0 as a squashed (wrong-path) instruction.
func (t *Tracer) writeO3(ev UopEvent) {
	tick := func(c uint64) uint64 { return c * TicksPerCycle }
	// This model has no separate decode timestamp: approximate it as one
	// cycle after fetch, clamped to the rename cycle.
	decode := ev.Fetch + 1
	if ev.Rename > 0 && decode > ev.Rename {
		decode = ev.Rename
	}
	w := t.o3
	fmt.Fprintf(w, "O3PipeView:fetch:%d:0x%08x:0:%d:%s\n", tick(ev.Fetch), ev.PC, ev.Seq, ev.Op)
	fmt.Fprintf(w, "O3PipeView:decode:%d\n", tick(decode))
	fmt.Fprintf(w, "O3PipeView:rename:%d\n", tick(ev.Rename))
	fmt.Fprintf(w, "O3PipeView:dispatch:%d\n", tick(ev.Dispatch))
	fmt.Fprintf(w, "O3PipeView:issue:%d\n", tick(ev.Issue))
	fmt.Fprintf(w, "O3PipeView:complete:%d\n", tick(ev.Complete))
	if ev.Squashed {
		fmt.Fprintf(w, "O3PipeView:retire:0:store:0\n")
	} else {
		fmt.Fprintf(w, "O3PipeView:retire:%d:store:0\n", tick(ev.Commit))
	}
}

func (t *Tracer) setErr(err error) {
	if t.err == nil && err != nil {
		t.err = err
	}
}

// Counts returns the numbers of uop events (total and committed only) and
// release events recorded so far.
func (t *Tracer) Counts() (uops, commits, releases uint64) {
	return t.uops, t.commits, t.releases
}

// Flush drains buffered output and reports the first write error, if any.
func (t *Tracer) Flush() error {
	if t.jsonl != nil {
		t.setErr(t.jsonl.Flush())
	}
	if t.o3 != nil {
		t.setErr(t.o3.Flush())
	}
	return t.err
}

// ReadTrace decodes a JSONL event trace, invoking uop or release per line.
// Either callback may be nil to skip that event kind.
func ReadTrace(r io.Reader, uop func(UopEvent), release func(ReleaseEvent)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var l Line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		switch l.Ev {
		case "uop":
			if uop != nil {
				uop(l.UopEvent)
			}
		case "release":
			if release != nil {
				release(ReleaseEvent{Cycle: l.Cycle, Scheme: l.Scheme, Region: l.Region, Class: l.Class, Tag: l.Tag})
			}
		default:
			return fmt.Errorf("obs: trace line %d: unknown event kind %q", lineNo, l.Ev)
		}
	}
	return sc.Err()
}

// Observer bundles the optional per-run observation hooks handed to a CPU.
type Observer struct {
	Tracer  *Tracer
	Sampler *Sampler
}

// Enabled reports whether any hook is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Tracer != nil || o.Sampler != nil)
}
