package obs

import (
	"bytes"
	"strings"
	"testing"

	"atr/internal/config"
)

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, nil)
	u1 := UopEvent{Seq: 0, PC: 10, Op: "alu", Fetch: 1, Rename: 5, Dispatch: 5, Issue: 6, Complete: 7, Precommit: 8, Commit: 9}
	u2 := UopEvent{Seq: 1, PC: 11, Op: "branch", Fetch: 1, Rename: 5, Dispatch: 5, Issue: 6, Complete: 7, Squashed: true}
	r1 := ReleaseEvent{Cycle: 9, Scheme: "atr", Region: "atomic", Class: 0, Tag: 3}
	tr.Uop(u1)
	tr.Uop(u2)
	tr.Release(r1)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	uops, commits, releases := tr.Counts()
	if uops != 2 || commits != 1 || releases != 1 {
		t.Fatalf("counts = %d/%d/%d, want 2/1/1", uops, commits, releases)
	}

	var gotU []UopEvent
	var gotR []ReleaseEvent
	err := ReadTrace(&buf,
		func(ev UopEvent) { gotU = append(gotU, ev) },
		func(ev ReleaseEvent) { gotR = append(gotR, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(gotU) != 2 || gotU[0] != u1 || gotU[1] != u2 {
		t.Errorf("uop round-trip: got %+v", gotU)
	}
	if len(gotR) != 1 || gotR[0] != r1 {
		t.Errorf("release round-trip: got %+v", gotR)
	}
}

func TestTracerO3PipeViewFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(nil, &buf)
	tr.Uop(UopEvent{Seq: 7, PC: 0x40, Op: "load", Fetch: 2, Rename: 6, Dispatch: 6, Issue: 8, Complete: 12, Commit: 20})
	tr.Uop(UopEvent{Seq: 8, PC: 0x41, Op: "alu", Fetch: 2, Rename: 6, Dispatch: 6, Issue: 8, Complete: 9, Squashed: true})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 14 {
		t.Fatalf("got %d lines, want 14 (7 per uop)", len(lines))
	}
	wantPrefixes := []string{"O3PipeView:fetch:", "O3PipeView:decode:", "O3PipeView:rename:",
		"O3PipeView:dispatch:", "O3PipeView:issue:", "O3PipeView:complete:", "O3PipeView:retire:"}
	for i, l := range lines {
		if !strings.HasPrefix(l, wantPrefixes[i%7]) {
			t.Errorf("line %d = %q, want prefix %q", i, l, wantPrefixes[i%7])
		}
	}
	if want := "O3PipeView:fetch:1000:0x00000040:0:7:load"; lines[0] != want {
		t.Errorf("fetch line = %q, want %q", lines[0], want)
	}
	if want := "O3PipeView:retire:10000:store:0"; lines[6] != want {
		t.Errorf("retire line = %q, want %q", lines[6], want)
	}
	// A squashed uop retires at tick 0 (Konata's wrong-path marker).
	if want := "O3PipeView:retire:0:store:0"; lines[13] != want {
		t.Errorf("squashed retire line = %q, want %q", lines[13], want)
	}
}

func TestSamplerDeltasAndFinalize(t *testing.T) {
	s := NewSampler(100)
	if s.Due(0) || s.Due(50) || !s.Due(100) || !s.Due(200) {
		t.Fatal("Due boundaries wrong")
	}
	s.Record(Snapshot{Cycle: 100, Committed: 40, ReleaseATR: 5, ROB: 10})
	s.Record(Snapshot{Cycle: 200, Committed: 90, ReleaseATR: 12, ROB: 20})
	s.Finalize(Snapshot{Cycle: 230, Committed: 100, ReleaseATR: 12, ROB: 3})
	s.Finalize(Snapshot{Cycle: 230, Committed: 100, ReleaseATR: 12, ROB: 3}) // idempotent
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("got %d samples, want 3", len(got))
	}
	if got[0].Committed != 40 || got[1].Committed != 50 || got[2].Committed != 10 {
		t.Errorf("commit deltas = %d,%d,%d", got[0].Committed, got[1].Committed, got[2].Committed)
	}
	if got[1].ReleaseATR != 7 {
		t.Errorf("release delta = %d, want 7", got[1].ReleaseATR)
	}
	if got[2].Cycles != 30 {
		t.Errorf("tail interval = %d cycles, want 30", got[2].Cycles)
	}
	if got[1].IPC != 0.5 {
		t.Errorf("interval IPC = %v, want 0.5", got[1].IPC)
	}
	if got[2].ROB != 3 {
		t.Errorf("occupancy should be instantaneous, got %d", got[2].ROB)
	}
}

func TestSamplerCSVAndJSON(t *testing.T) {
	s := NewSampler(10)
	s.Record(Snapshot{Cycle: 10, Committed: 5})
	var csv, js bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "cycle,cycles,committed,ipc") {
		t.Errorf("csv = %q", csv.String())
	}
	if !strings.HasPrefix(lines[1], "10,10,5,0.5000") {
		t.Errorf("csv row = %q", lines[1])
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"committed": 5`) {
		t.Errorf("json = %q", js.String())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest()
	m.Benchmark = BenchmarkInfo{Name: "gcc", Class: "int", Seed: 502, StaticInstrs: 230}
	m.Config = config.GoldenCove()
	m.Result = RunResult{Cycles: 1000, Committed: 500, IPC: 0.5, BranchAccuracy: 0.97}
	m.Ledger = LedgerSummary{Completed: 400, Atomic: 0.25}
	m.Counters = map[string]uint64{"release.atr": 10}
	m.Perf = PerfInfo{WallSeconds: 0.5, InstrPerSec: 1000}
	m.Samples = []Sample{{Cycle: 500, Cycles: 500, Committed: 300}, {Cycle: 1000, Cycles: 500, Committed: 200}}
	m.Trace = &TraceInfo{Uops: 600, Commits: 500, Releases: 20}

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != m.Benchmark || got.Result != m.Result || got.Ledger != m.Ledger {
		t.Error("manifest fields did not round-trip")
	}
	if got.Config != m.Config {
		t.Error("config did not round-trip")
	}
	if len(got.Samples) != 2 || got.Samples[0] != m.Samples[0] {
		t.Error("samples did not round-trip")
	}
	if got.Counters["release.atr"] != 10 {
		t.Error("counters did not round-trip")
	}
}

func TestManifestValidation(t *testing.T) {
	base := func() Manifest {
		m := NewManifest()
		m.Benchmark = BenchmarkInfo{Name: "gcc", Class: "int"}
		m.Config = config.GoldenCove()
		m.Result = RunResult{Cycles: 100, Committed: 50}
		return m
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Fatalf("base manifest invalid: %v", err)
	}
	cases := map[string]func(*Manifest){
		"wrong schema":       func(m *Manifest) { m.Schema = "bogus" },
		"wrong version":      func(m *Manifest) { m.Version = 99 },
		"missing bench":      func(m *Manifest) { m.Benchmark.Name = "" },
		"invalid config":     func(m *Manifest) { m.Config.FetchWidth = 0 },
		"zero cycles":        func(m *Manifest) { m.Result.Cycles = 0 },
		"sample sum":         func(m *Manifest) { m.Samples = []Sample{{Cycle: 100, Committed: 7}} },
		"trace commit count": func(m *Manifest) { m.Trace = &TraceInfo{Commits: 49} },
	}
	for name, mutate := range cases {
		m := base()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken manifest", name)
		}
	}
}

func TestObserverEnabled(t *testing.T) {
	var nilObs *Observer
	if nilObs.Enabled() {
		t.Error("nil observer reports enabled")
	}
	if (&Observer{}).Enabled() {
		t.Error("empty observer reports enabled")
	}
	if !(&Observer{Sampler: NewSampler(10)}).Enabled() {
		t.Error("sampler-only observer reports disabled")
	}
}

func TestBuildInfoPopulated(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Error("missing Go version")
	}
}
