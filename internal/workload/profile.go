// Package workload generates the synthetic SPEC CPU 2017-like programs used
// in place of the paper's proprietary traces. Each benchmark is described by
// a Profile whose parameters control the properties the ATR mechanism is
// sensitive to: flusher density (branches, memory ops, divides), destination
// reuse distance (atomic region length), branch predictability, consumer
// counts, working-set size, and memory access patterns. Programs are real
// executable control-flow graphs over the micro-ISA — loops, calls,
// indirect switches, data-dependent branches — generated deterministically
// from a seed.
package workload

import (
	"fmt"
	"strings"

	"atr/internal/memmodel"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Class string // "int" or "fp"
	Seed  uint64

	// Instruction mix (fractions of body instructions; the remainder is
	// plain ALU). Loop-control and call/return overhead is added on top.
	LoadFrac  float64
	StoreFrac float64
	MulFrac   float64
	DivFrac   float64
	FPFrac    float64 // FP compute fraction (fp benchmarks)
	MoveFrac  float64

	// BranchEvery is the average number of body instructions between
	// intra-block conditional branches (0 disables extra branches; loop
	// back-edges always exist).
	BranchEvery int
	// BranchBias is the probability an extra branch is taken; 0.5 is
	// unpredictable, values near 0 or 1 are highly predictable.
	BranchBias float64
	// BranchOnLoad is the probability a data branch tests the most recent
	// load result directly, pinning branch resolution (and the precommit
	// pointer) to memory latency.
	BranchOnLoad float64

	// FlagWriteFrac is the fraction of ALU instructions that also write
	// the flags register (x86-style dual destination) — a major source of
	// short atomic regions.
	FlagWriteFrac float64

	// RegWindow is the number of architectural data registers cycled
	// through for destinations: smaller windows mean shorter redefine
	// distances and more atomic regions.
	RegWindow int

	// FanOut is the average number of consumers per produced value
	// (approximate; drives the Fig 12 consumer-count distribution).
	FanOut float64

	// Memory behaviour.
	WorkingSet   uint64  // bytes
	StrideFrac   float64 // fraction of memory ops that stream sequentially
	PointerChase bool    // serialize loads into a dependent chain (mcf-like)

	// Structure.
	Loops     int // inner loops per outer iteration
	TripCount int // average inner-loop trip count
	BlockLen  int // average body length per loop iteration
	Funcs     int // callable leaf functions
	CallFrac  float64
	Indirect  bool // include an indirect switch

	// Litmus, when non-empty, overrides synthetic generation entirely: the
	// profile's program is the memmodel lowering of the named litmus spec
	// ("sb", "mp#3", ...). Litmus programs are short straight-line probes
	// with exhaustively known legal outcomes, not statistical workloads, so
	// sampled (checkpoint/fast-forward) execution rejects them.
	Litmus string
}

func (p Profile) String() string { return fmt.Sprintf("%s(%s)", p.Name, p.Class) }

// IntProfiles returns the ten SPEC2017int-like profiles (Table 2).
func IntProfiles() []Profile {
	return []Profile{
		{
			Name: "perlbench", Class: "int", Seed: 500,
			LoadFrac: 0.24, StoreFrac: 0.11, MulFrac: 0.03, DivFrac: 0.002, MoveFrac: 0.12,
			BranchEvery: 4, BranchBias: 0.97, BranchOnLoad: 0.15, FlagWriteFrac: 0.45, RegWindow: 8, FanOut: 1.4,
			WorkingSet: 1 << 20, StrideFrac: 0.4,
			Loops: 6, TripCount: 12, BlockLen: 14, Funcs: 4, CallFrac: 0.08, Indirect: true,
		},
		{
			Name: "gcc", Class: "int", Seed: 502,
			LoadFrac: 0.26, StoreFrac: 0.12, MulFrac: 0.02, DivFrac: 0.001, MoveFrac: 0.14,
			BranchEvery: 4, BranchBias: 0.96, BranchOnLoad: 0.15, FlagWriteFrac: 0.5, RegWindow: 8, FanOut: 1.3,
			WorkingSet: 4 << 20, StrideFrac: 0.3,
			Loops: 8, TripCount: 8, BlockLen: 12, Funcs: 5, CallFrac: 0.1, Indirect: true,
		},
		{
			Name: "mcf", Class: "int", Seed: 505,
			LoadFrac: 0.32, StoreFrac: 0.09, MulFrac: 0.02, DivFrac: 0.001, MoveFrac: 0.08,
			BranchEvery: 5, BranchBias: 0.95, BranchOnLoad: 0.15, FlagWriteFrac: 0.45, RegWindow: 5, FanOut: 1.2,
			WorkingSet: 24 << 20, StrideFrac: 0.1, PointerChase: true,
			Loops: 4, TripCount: 20, BlockLen: 12, Funcs: 2, CallFrac: 0.04,
		},
		{
			Name: "omnetpp", Class: "int", Seed: 520,
			LoadFrac: 0.28, StoreFrac: 0.14, MulFrac: 0.02, DivFrac: 0.001, MoveFrac: 0.12,
			BranchEvery: 4, BranchBias: 0.965, BranchOnLoad: 0.15, FlagWriteFrac: 0.45, RegWindow: 8, FanOut: 1.3,
			WorkingSet: 8 << 20, StrideFrac: 0.15, PointerChase: true,
			Loops: 6, TripCount: 10, BlockLen: 12, Funcs: 5, CallFrac: 0.12, Indirect: true,
		},
		{
			Name: "xalancbmk", Class: "int", Seed: 523,
			LoadFrac: 0.3, StoreFrac: 0.1, MulFrac: 0.02, DivFrac: 0.001, MoveFrac: 0.13,
			BranchEvery: 4, BranchBias: 0.97, BranchOnLoad: 0.15, FlagWriteFrac: 0.5, RegWindow: 8, FanOut: 1.4,
			WorkingSet: 2 << 20, StrideFrac: 0.35,
			Loops: 7, TripCount: 14, BlockLen: 11, Funcs: 6, CallFrac: 0.14, Indirect: true,
		},
		{
			Name: "x264", Class: "int", Seed: 525,
			LoadFrac: 0.27, StoreFrac: 0.1, MulFrac: 0.08, DivFrac: 0.001, MoveFrac: 0.08,
			BranchEvery: 7, BranchBias: 0.975, BranchOnLoad: 0.15, FlagWriteFrac: 0.4, RegWindow: 10, FanOut: 1.8,
			WorkingSet: 2 << 20, StrideFrac: 0.85,
			Loops: 5, TripCount: 32, BlockLen: 24, Funcs: 3, CallFrac: 0.05,
		},
		{
			Name: "deepsjeng", Class: "int", Seed: 531,
			LoadFrac: 0.22, StoreFrac: 0.09, MulFrac: 0.04, DivFrac: 0.002, MoveFrac: 0.1,
			BranchEvery: 3, BranchBias: 0.94, BranchOnLoad: 0.15, FlagWriteFrac: 0.5, RegWindow: 7, FanOut: 1.3,
			WorkingSet: 6 << 20, StrideFrac: 0.2,
			Loops: 6, TripCount: 9, BlockLen: 10, Funcs: 4, CallFrac: 0.1,
		},
		{
			Name: "leela", Class: "int", Seed: 541,
			LoadFrac: 0.23, StoreFrac: 0.1, MulFrac: 0.05, DivFrac: 0.004, MoveFrac: 0.1,
			BranchEvery: 4, BranchBias: 0.94, BranchOnLoad: 0.15, FlagWriteFrac: 0.45, RegWindow: 7, FanOut: 1.4,
			WorkingSet: 1 << 20, StrideFrac: 0.3,
			Loops: 5, TripCount: 11, BlockLen: 12, Funcs: 4, CallFrac: 0.1,
		},
		{
			Name: "exchange2", Class: "int", Seed: 548,
			LoadFrac: 0.14, StoreFrac: 0.08, MulFrac: 0.03, DivFrac: 0.001, MoveFrac: 0.09,
			BranchEvery: 3, BranchBias: 0.97, BranchOnLoad: 0.15, FlagWriteFrac: 0.55, RegWindow: 6, FanOut: 1.2,
			WorkingSet: 256 << 10, StrideFrac: 0.6,
			Loops: 8, TripCount: 7, BlockLen: 9, Funcs: 3, CallFrac: 0.12,
		},
		{
			Name: "xz", Class: "int", Seed: 557,
			LoadFrac: 0.25, StoreFrac: 0.12, MulFrac: 0.04, DivFrac: 0.001, MoveFrac: 0.09,
			BranchEvery: 4, BranchBias: 0.95, BranchOnLoad: 0.15, FlagWriteFrac: 0.45, RegWindow: 8, FanOut: 1.3,
			WorkingSet: 16 << 20, StrideFrac: 0.5,
			Loops: 5, TripCount: 16, BlockLen: 13, Funcs: 2, CallFrac: 0.04,
		},
	}
}

// FPProfiles returns the thirteen SPEC2017fp-like profiles (Table 2).
func FPProfiles() []Profile {
	mk := func(name string, seed uint64, mut func(*Profile)) Profile {
		p := Profile{
			Name: name, Class: "fp", Seed: seed,
			LoadFrac: 0.26, StoreFrac: 0.09, MulFrac: 0.02, DivFrac: 0.001,
			FPFrac: 0.42, MoveFrac: 0.06,
			BranchEvery: 6, BranchBias: 0.93, BranchOnLoad: 0.6, FlagWriteFrac: 0.2,
			RegWindow: 7, FanOut: 2.2,
			WorkingSet: 8 << 20, StrideFrac: 0.85,
			Loops: 4, TripCount: 48, BlockLen: 36, Funcs: 2, CallFrac: 0.02,
		}
		if mut != nil {
			mut(&p)
		}
		return p
	}
	return []Profile{
		mk("bwaves", 503, func(p *Profile) { p.WorkingSet = 48 << 20; p.TripCount = 96; p.BlockLen = 48 }),
		mk("cactuBSSN", 507, func(p *Profile) { p.BlockLen = 56; p.RegWindow = 9; p.FanOut = 2.6 }),
		mk("namd", 508, func(p *Profile) { p.FanOut = 3.6; p.RegWindow = 8; p.WorkingSet = 2 << 20 }),
		mk("parest", 510, func(p *Profile) { p.BranchEvery = 7; p.BranchBias = 0.88; p.CallFrac = 0.06; p.Funcs = 4 }),
		mk("povray", 511, func(p *Profile) {
			p.BranchEvery = 5
			p.BranchBias = 0.8
			p.FPFrac = 0.3
			p.FlagWriteFrac = 0.35
			p.CallFrac = 0.1
			p.Funcs = 5
			p.BlockLen = 16
			p.TripCount = 12
			p.WorkingSet = 512 << 10
		}),
		mk("lbm", 519, func(p *Profile) { p.WorkingSet = 64 << 20; p.StrideFrac = 0.95; p.BlockLen = 52; p.TripCount = 128 }),
		mk("wrf", 521, func(p *Profile) { p.Loops = 6; p.BlockLen = 32; p.DivFrac = 0.004 }),
		mk("blender", 526, func(p *Profile) {
			p.FPFrac = 0.34
			p.BranchEvery = 6
			p.BranchBias = 0.82
			p.CallFrac = 0.08
			p.Funcs = 4
			p.BlockLen = 20
		}),
		mk("cam4", 527, func(p *Profile) { p.Loops = 6; p.BranchEvery = 8; p.DivFrac = 0.003 }),
		mk("imagick", 538, func(p *Profile) { p.StrideFrac = 0.9; p.MulFrac = 0.05; p.TripCount = 64; p.WorkingSet = 1 << 20 }),
		mk("nab", 544, func(p *Profile) { p.DivFrac = 0.006; p.FanOut = 2.0; p.WorkingSet = 1 << 20 }),
		mk("fotonik3d", 549, func(p *Profile) { p.WorkingSet = 48 << 20; p.StrideFrac = 0.92; p.BlockLen = 44 }),
		mk("roms", 554, func(p *Profile) { p.WorkingSet = 32 << 20; p.BlockLen = 40; p.TripCount = 80 }),
	}
}

// Profiles returns all benchmark profiles, integer suite first.
func Profiles() []Profile { return append(IntProfiles(), FPProfiles()...) }

// LitmusProfiles returns the memory-model litmus family as profiles: for
// each registered shape, the first, a middle, and the last interleaving
// (deduplicated — single-thread shapes have exactly one). Names follow
// "litmus-<shape>#<n>"; ByName additionally resolves any valid spec
// dynamically, so grids can reference interleavings beyond this default set.
func LitmusProfiles() []Profile {
	var out []Profile
	for _, sh := range memmodel.Shapes() {
		cnt := sh.Prog.InterleavingCount()
		picks := []int{0, cnt / 2, cnt - 1}
		seen := map[int]bool{}
		for _, n := range picks {
			if seen[n] {
				continue
			}
			seen[n] = true
			spec := fmt.Sprintf("%s#%d", sh.Name, n)
			out = append(out, Profile{
				Name:   "litmus-" + spec,
				Class:  "litmus",
				Litmus: spec,
				// Structural fields are unused by litmus generation but
				// kept sane for code that inspects profiles generically.
				RegWindow: 4, BlockLen: 8, Loops: 1, TripCount: 1,
			})
		}
	}
	return out
}

// ByName looks a profile up by benchmark name. Names with the "litmus-"
// prefix resolve dynamically against the memmodel shape registry, so every
// interleaving of every shape is addressable, not just the LitmusProfiles
// defaults.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	if spec, ok := strings.CutPrefix(name, "litmus-"); ok {
		if _, err := memmodel.ProgramFor(spec); err == nil {
			return Profile{
				Name: name, Class: "litmus", Litmus: spec,
				RegWindow: 4, BlockLen: 8, Loops: 1, TripCount: 1,
			}, true
		}
	}
	return Profile{}, false
}

// Micro returns a small fast profile for tests: int-like with every feature
// (branches, calls, indirect jumps, loads, stores, divides) enabled.
func Micro(seed uint64) Profile {
	return Profile{
		Name: "micro", Class: "int", Seed: seed,
		LoadFrac: 0.2, StoreFrac: 0.1, MulFrac: 0.05, DivFrac: 0.01, MoveFrac: 0.1,
		BranchEvery: 5, BranchBias: 0.7, BranchOnLoad: 0.25, FlagWriteFrac: 0.4, RegWindow: 5, FanOut: 1.4,
		WorkingSet: 64 << 10, StrideFrac: 0.5,
		Loops: 3, TripCount: 6, BlockLen: 10, Funcs: 2, CallFrac: 0.1, Indirect: true,
	}
}
