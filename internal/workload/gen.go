package workload

import (
	"fmt"
	"math/rand"

	"atr/internal/isa"
	"atr/internal/memmodel"
	"atr/internal/program"
)

// Register conventions used by generated programs. Data registers rotate
// within R0..R(RegWindow-1) and F0..; the upper GPRs are reserved for
// structural roles so that loop trip counts and return addresses stay out of
// the pseudo-random dataflow.
const (
	regCounter = isa.R13 // inner-loop trip counter
	regLink    = isa.R14 // call return address
	regStride  = isa.R15 // streaming induction variable
	regChase   = isa.R12 // pointer-chase chain register
)

// memBase is the base address of the generated program's data region.
const memBase = 0x10_0000

// Generate builds the executable program for the profile. The same profile
// always produces the same program.
func (p Profile) Generate() *program.Program {
	if p.Litmus != "" {
		l, err := memmodel.ProgramFor(p.Litmus)
		if err != nil {
			// Litmus profiles are constructed via LitmusProfiles/ByName,
			// which validate the spec; a bad spec here is a programming
			// error, consistent with Generate's no-error signature.
			panic(fmt.Sprintf("workload: litmus profile %q: %v", p.Name, err))
		}
		return l.Prog
	}
	g := &gen{
		p:  p,
		r:  rand.New(rand.NewSource(int64(p.Seed*0x9e3779b9 + 1))),
		b:  program.NewBuilder(p.Seed, p.Seed^0x5eed),
		wi: 1,
	}
	return g.run()
}

type gen struct {
	p  Profile
	r  *rand.Rand
	b  *program.Builder
	wi int // round-robin destination index

	labels   int
	recent   []isa.Reg // recently produced GPR data values
	recfp    []isa.Reg // recently produced FPR data values
	lastLoad isa.Reg   // most recent load destination (GPR)
	fpi      int       // round-robin FP destination index
}

func (g *gen) newLabel(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

// dataReg returns the next destination register in the rotating window.
func (g *gen) dataReg() isa.Reg {
	w := g.p.RegWindow
	if w < 2 {
		w = 2
	}
	if w > 12 {
		w = 12
	}
	r := isa.Reg(g.wi % w)
	g.wi++
	return r
}

func (g *gen) fpReg() isa.Reg {
	w := g.p.RegWindow
	if w < 2 {
		w = 2
	}
	if w > 16 {
		w = 16
	}
	r := isa.F0 + isa.Reg(g.fpi%w)
	g.fpi++
	return r
}

// src picks a source register. Most picks are uniform over the data window
// (wide, parallel dependence DAGs — the ILP a deep out-of-order window
// exploits); a fraction are biased to the most recent results, forming the
// serial chains that set the critical path. Higher FanOut deepens the
// recent window, raising consumers per value.
func (g *gen) src() isa.Reg {
	if len(g.recent) > 0 && g.r.Float64() < 0.35 {
		k := len(g.recent)
		depth := 2
		if g.p.FanOut > 1.6 {
			depth = 4
		}
		if depth > k {
			depth = k
		}
		return g.recent[k-1-g.r.Intn(depth)]
	}
	w := g.p.RegWindow
	if w < 2 {
		w = 2
	}
	if w > 12 {
		w = 12
	}
	return isa.Reg(g.r.Intn(w))
}

func (g *gen) srcFP() isa.Reg {
	if len(g.recfp) == 0 {
		return isa.F0 + isa.Reg(g.r.Intn(4))
	}
	k := len(g.recfp)
	depth := 3
	if depth > k {
		depth = k
	}
	return g.recfp[k-1-g.r.Intn(depth)]
}

func (g *gen) produced(r isa.Reg) {
	if r.Class() == isa.ClassFPR {
		g.recfp = append(g.recfp, r)
		if len(g.recfp) > 8 {
			g.recfp = g.recfp[1:]
		}
		return
	}
	g.recent = append(g.recent, r)
	if len(g.recent) > 8 {
		g.recent = g.recent[1:]
	}
}

func (g *gen) run() *program.Program {
	b := g.b
	// One-time setup: induction and chase registers.
	b.ALU(regStride, isa.RegInvalid, isa.RegInvalid, 0)
	b.ALU(regChase, isa.RegInvalid, isa.RegInvalid, 0)
	b.Label("top")
	funcNames := make([]string, g.p.Funcs)
	for i := range funcNames {
		funcNames[i] = fmt.Sprintf("fn_%d", i)
	}
	for l := 0; l < g.p.Loops; l++ {
		g.emitLoop(l, funcNames)
	}
	b.Jump("top")
	for _, fn := range funcNames {
		g.emitFunc(fn)
	}
	return b.MustBuild()
}

func (g *gen) emitLoop(idx int, funcs []string) {
	b := g.b
	trip := int64(2 + g.r.Intn(2*g.p.TripCount+1))
	loop := g.newLabel("loop")
	b.ALU(regCounter, isa.RegInvalid, isa.RegInvalid, trip)
	b.Label(loop)
	b.ALU(regStride, regStride, isa.RegInvalid, 8) // advance the stream

	g.emitBody(funcs)

	b.ALU(regCounter, regCounter, isa.RegInvalid, -1)
	b.Cmp(regCounter, isa.RegInvalid, 0)
	b.Branch(program.PredNotZero, loop)
}

// emitBody emits one loop iteration's BlockLen-instruction body following
// the profile's instruction mix.
func (g *gen) emitBody(funcs []string) {
	b := g.b
	p := g.p
	span := p.WorkingSet
	if span < 64 {
		span = 64
	}
	sinceBranch := 0
	for i := 0; i < p.BlockLen; i++ {
		sinceBranch++
		if p.BranchEvery > 0 && sinceBranch >= p.BranchEvery && i+2 < p.BlockLen {
			g.emitSkipBranch(1 + g.r.Intn(2))
			sinceBranch = 0
			continue
		}
		x := g.r.Float64()
		switch {
		case x < p.LoadFrac:
			g.emitLoad(span)
		case x < p.LoadFrac+p.StoreFrac:
			g.emitStore(span)
		case x < p.LoadFrac+p.StoreFrac+p.MulFrac:
			d := g.dataReg()
			b.Mul(d, g.src(), g.src(), int64(g.r.Int63()))
			g.produced(d)
		case x < p.LoadFrac+p.StoreFrac+p.MulFrac+p.DivFrac:
			d := g.dataReg()
			b.Div(d, g.src(), g.src(), int64(g.r.Intn(100)))
			g.produced(d)
		case x < p.LoadFrac+p.StoreFrac+p.MulFrac+p.DivFrac+p.FPFrac:
			g.emitFP()
		case x < p.LoadFrac+p.StoreFrac+p.MulFrac+p.DivFrac+p.FPFrac+p.MoveFrac:
			d := g.dataReg()
			b.Move(d, g.src())
			g.produced(d)
		case g.r.Float64() < p.CallFrac*4 && len(funcs) > 0:
			b.Call(regLink, funcs[g.r.Intn(len(funcs))])
		case p.Indirect && g.r.Float64() < 0.04:
			g.emitSwitch()
		default:
			g.emitALU()
		}
	}
}

func (g *gen) emitALU() {
	d := g.dataReg()
	imm := int64(g.r.Intn(1 << 12))
	if g.r.Float64() < g.p.FlagWriteFrac {
		in := isa.NewInst(isa.OpALU, []isa.Reg{d, isa.Flags}, []isa.Reg{g.src(), g.src()})
		in.Imm = imm
		g.b.Raw(in)
	} else {
		g.b.ALU(d, g.src(), g.src(), imm)
	}
	g.produced(d)
}

func (g *gen) emitLoad(span uint64) {
	d := g.dataReg()
	if g.p.PointerChase && g.r.Float64() < 0.2 {
		// Serialized chain: the next address depends on the loaded
		// value. Chases walk a hot subset of the working set (linked
		// structures have locality even when traversal is irregular).
		chaseSpan := span
		if chaseSpan > 512<<10 {
			chaseSpan = 512 << 10
		}
		g.b.Load(regChase, regChase, memBase, chaseSpan, 0)
		g.b.Move(d, regChase)
		g.produced(d)
		g.lastLoad = d
		return
	}
	if g.p.Class == "fp" && g.r.Float64() < 0.5 {
		f := g.fpReg()
		g.addrLoad(f, span)
		g.produced(f)
		return
	}
	g.addrLoad(d, span)
	g.produced(d)
	g.lastLoad = d
}

func (g *gen) addrLoad(d isa.Reg, span uint64) {
	if g.r.Float64() < g.p.StrideFrac {
		g.b.Load(d, regStride, memBase, span, int64(g.r.Intn(256))*8)
		return
	}
	// Irregular accesses follow a 70/30 hot/cold split: most touches land
	// in a cache-resident hot subset, the rest roam the full working set
	// (classic locality; uniformly random over megabytes would be a
	// pathological worst case no real program exhibits).
	hot := span
	if hot > 256<<10 {
		hot = 256 << 10
	}
	if g.r.Float64() < 0.7 {
		g.b.Load(d, g.src(), memBase, hot, 0)
	} else {
		g.b.Load(d, g.src(), memBase, span, 0)
	}
}

func (g *gen) emitStore(span uint64) {
	val := g.src()
	if g.p.Class == "fp" && g.r.Float64() < 0.5 {
		val = g.srcFP()
	}
	if g.r.Float64() < g.p.StrideFrac {
		g.b.Store(regStride, val, memBase, span, int64(g.r.Intn(256))*8)
		return
	}
	hot := span
	if hot > 256<<10 {
		hot = 256 << 10
	}
	if g.r.Float64() < 0.7 {
		g.b.Store(g.src(), val, memBase, hot, 0)
	} else {
		g.b.Store(g.src(), val, memBase, span, 0)
	}
}

// FP expression temporaries: compilers evaluate trees like a*b + c*d into
// short-lived temporaries that are redefined within a handful of
// instructions — the dominant source of atomic regions in FP code.
const (
	fpTmp0 = isa.F14
	fpTmp1 = isa.F15
)

func (g *gen) emitFP() {
	d := g.fpReg()
	if g.r.Float64() < 0.7 {
		// Expression-tree burst: two temporaries live only inside the
		// burst (no branch or memory op intervenes), then the result
		// lands in the rotating window.
		g.b.FPMul(fpTmp0, g.srcFP(), g.srcFP(), int64(g.r.Int63()))
		g.b.FPAdd(fpTmp1, fpTmp0, g.srcFP(), int64(g.r.Intn(1<<10)))
		g.b.FPAdd(d, fpTmp1, fpTmp0, 0)
		g.produced(d)
		return
	}
	switch g.r.Intn(8) {
	case 0:
		g.b.FPMul(d, g.srcFP(), g.srcFP(), int64(g.r.Int63()))
	case 1:
		g.b.Cvt(d, g.src(), 0) // feed integer values into the FP flow
	case 2:
		if g.p.DivFrac > 0.002 {
			g.b.FPDiv(d, g.srcFP(), g.srcFP(), 1)
			break
		}
		g.b.FPAdd(d, g.srcFP(), g.srcFP(), int64(g.r.Intn(1<<10)))
	default:
		g.b.FPAdd(d, g.srcFP(), g.srcFP(), int64(g.r.Intn(1<<10)))
	}
	g.produced(d)
}

// emitSkipBranch emits a biased data-dependent forward branch over n body
// instructions. The branch tests the most recently produced value — as in
// real integer code, where branches predominantly test freshly loaded or
// freshly computed data — so branch resolution (and with it the precommit
// pointer) is tied to the dataflow critical path even when the prediction
// itself is easy.
func (g *gen) emitSkipBranch(n int) {
	join := g.newLabel("skip")
	// Unsigned compare against a threshold places the taken probability at
	// BranchBias for (approximately) uniform data values.
	bias := g.p.BranchBias
	if bias > 0.999 {
		bias = 0.999
	}
	thr := int64(uint64(bias * float64(1<<63) * 2))
	// A large share of branches test a freshly loaded value directly
	// (null checks, bounds checks, comparison loops): while that load
	// misses, the branch is unresolved and the precommit pointer is
	// pinned — the window in which only ATR can release registers.
	test := g.src()
	if g.lastLoad.Valid() && g.r.Float64() < g.p.BranchOnLoad {
		test = g.lastLoad
	} else if k := len(g.recent); k > 0 {
		test = g.recent[k-1]
	}
	g.b.Cmp(test, isa.RegInvalid, thr)
	g.b.Branch(program.PredCarry, join)
	for i := 0; i < n; i++ {
		g.emitALU()
	}
	g.b.Label(join)
}

// emitSwitch emits a data-driven indirect jump over three cases.
func (g *gen) emitSwitch() {
	c0, c1, c2 := g.newLabel("case"), g.newLabel("case"), g.newLabel("case")
	join := g.newLabel("swjoin")
	g.b.JumpInd(g.src(), c0, c1, c2)
	for _, c := range []string{c0, c1, c2} {
		g.b.Label(c)
		g.emitALU()
		g.b.Jump(join)
	}
	g.b.Label(join)
}

// emitFunc emits one leaf function: a short computation and a return.
func (g *gen) emitFunc(name string) {
	g.b.Label(name)
	n := 3 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		if g.p.Class == "fp" && g.r.Float64() < 0.5 {
			g.emitFP()
		} else {
			g.emitALU()
		}
	}
	g.b.Ret(regLink)
}
