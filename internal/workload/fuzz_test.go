package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"atr/internal/isa"
	"atr/internal/program"
)

// addProfileSeeds seeds a fuzz target with the projections of all 23
// benchmark profiles, so mutation starts from realistic parameter
// neighborhoods instead of the all-zero corner.
func addProfileSeeds(f *testing.F) {
	for _, p := range Profiles() {
		seed, ws, a := FuzzArgs(p)
		f.Add(seed, ws,
			a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8], a[9],
			a[10], a[11], a[12], a[13], a[14], a[15], a[16], a[17], a[18])
	}
}

// FuzzProgramBuild drives the program generator across its whole parameter
// space: for any input the builder must not panic and must emit a
// well-formed executable program — valid opcodes and register operands,
// in-range control-flow targets, non-empty indirect target sets — that the
// generator reproduces bit-identically on a second call and that the
// in-order emulator can execute without leaving the code image.
func FuzzProgramBuild(f *testing.F) {
	addProfileSeeds(f)
	f.Fuzz(func(t *testing.T, seed uint64, ws uint32,
		load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
		branchEvery, regWindow, loops, trip, blockLen, funcs, flags uint16) {

		p := FuzzProfile(seed, ws,
			load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
			branchEvery, regWindow, loops, trip, blockLen, funcs, flags)
		prog := p.Generate()

		if prog.Len() == 0 {
			t.Fatal("generated empty program")
		}
		for pc, in := range prog.Code {
			if in.Op >= isa.NumOps {
				t.Fatalf("pc %d: invalid opcode %d", pc, in.Op)
			}
			for _, r := range in.Dsts {
				if r != isa.RegInvalid && !r.Valid() {
					t.Fatalf("pc %d: invalid destination register %d", pc, r)
				}
			}
			for _, r := range in.Srcs {
				if r != isa.RegInvalid && !r.Valid() {
					t.Fatalf("pc %d: invalid source register %d", pc, r)
				}
			}
			if in.Op.IsControl() && in.Op != isa.OpRet {
				if in.Target > uint64(prog.Len()) {
					t.Fatalf("pc %d: %v target %d outside program of %d instructions",
						pc, in.Op, in.Target, prog.Len())
				}
			}
			if in.Op == isa.OpJumpInd || in.Op == isa.OpCallInd {
				if len(in.Targets) == 0 {
					t.Fatalf("pc %d: %v with empty target set", pc, in.Op)
				}
				for _, tgt := range in.Targets {
					if tgt > uint64(prog.Len()) {
						t.Fatalf("pc %d: indirect target %d outside program", pc, tgt)
					}
				}
			}
		}

		if again := p.Generate(); !reflect.DeepEqual(prog, again) {
			t.Fatal("Generate is not deterministic for this profile")
		}

		for _, rec := range program.NewEmulator(prog).Run(3000) {
			if !prog.ValidPC(rec.PC) {
				t.Fatalf("emulator committed PC %d outside program of %d instructions",
					rec.PC, prog.Len())
			}
		}
	})
}

// TestWriteFuzzSeedCorpus materializes the 23 profile projections as "go
// test fuzz v1" corpus files under testdata/fuzz/FuzzProgramBuild, so CI
// fuzz runs start from the benchmark neighborhoods even with an empty fuzz
// cache. Gated behind ATR_WRITE_FUZZ_CORPUS=1: it is a generator, not a
// test. The other fuzz targets share FuzzProgramBuild's signature, so these
// files are copied verbatim into their corpus directories.
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("ATR_WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set ATR_WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzProgramBuild")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range Profiles() {
		seed, ws, a := FuzzArgs(p)
		body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\nuint32(%d)\n", seed, ws)
		for _, v := range a {
			body += fmt.Sprintf("uint16(%d)\n", v)
		}
		file := filepath.Join(dir, "seed-"+p.Name)
		if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
