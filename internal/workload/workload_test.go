package workload

import (
	"reflect"
	"testing"

	"atr/internal/isa"
	"atr/internal/memmodel"
	"atr/internal/program"
)

func TestProfilesComplete(t *testing.T) {
	ints := IntProfiles()
	fps := FPProfiles()
	if len(ints) != 10 {
		t.Errorf("int profiles = %d, want 10 (Table 2)", len(ints))
	}
	if len(fps) != 13 {
		t.Errorf("fp profiles = %d, want 13 (Table 2)", len(fps))
	}
	seen := make(map[string]bool)
	for _, p := range Profiles() {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.Class != "int" && p.Class != "fp" {
			t.Errorf("%s: bad class %q", p.Name, p.Class)
		}
		if p.RegWindow < 2 || p.RegWindow > 12 {
			t.Errorf("%s: RegWindow %d out of range", p.Name, p.RegWindow)
		}
	}
	for _, name := range []string{"mcf", "omnetpp", "lbm", "namd"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("gcc")
	a := p.Generate()
	b := p.Generate()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Code {
		ai, bi := a.Code[i], b.Code[i]
		if ai.Op != bi.Op || ai.Imm != bi.Imm || ai.Target != bi.Target ||
			ai.Dsts != bi.Dsts || ai.Srcs != bi.Srcs {
			t.Fatalf("instruction %d differs: %v vs %v", i, ai, bi)
		}
	}
}

func TestGeneratedProgramsRun(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := p.Generate()
			if prog.Len() < 20 {
				t.Fatalf("program too small: %d", prog.Len())
			}
			e := program.NewEmulator(prog)
			recs := e.Run(20000)
			if len(recs) != 20000 {
				t.Fatalf("program halted after %d instructions; must loop forever", len(recs))
			}
			// All targets in range.
			for _, r := range recs {
				if !prog.ValidPC(r.NextPC) {
					t.Fatalf("pc %d jumps to invalid %d", r.PC, r.NextPC)
				}
			}
		})
	}
}

func TestGeneratedMixMatchesProfile(t *testing.T) {
	p, _ := ByName("mcf")
	prog := p.Generate()
	e := program.NewEmulator(prog)
	recs := e.Run(50000)
	counts := make(map[isa.Op]int)
	for _, r := range recs {
		counts[r.Op]++
	}
	total := float64(len(recs))
	loadFrac := float64(counts[isa.OpLoad]) / total
	if loadFrac < 0.15 || loadFrac > 0.45 {
		t.Errorf("mcf load fraction = %.2f, want memory-bound (0.15..0.45)", loadFrac)
	}
	brFrac := float64(counts[isa.OpBranch]) / total
	if brFrac < 0.03 || brFrac > 0.35 {
		t.Errorf("branch fraction = %.2f out of plausible range", brFrac)
	}
	if counts[isa.OpRet] == 0 && p.Funcs > 0 && p.CallFrac > 0 {
		t.Error("no returns executed despite call profile")
	}
}

func TestFPProfilesExecuteFPOps(t *testing.T) {
	p, _ := ByName("lbm")
	prog := p.Generate()
	e := program.NewEmulator(prog)
	recs := e.Run(30000)
	fp := 0
	for _, r := range recs {
		if r.Op.IsFP() {
			fp++
		}
	}
	if frac := float64(fp) / float64(len(recs)); frac < 0.2 {
		t.Errorf("lbm FP fraction = %.2f, want >= 0.2", frac)
	}
}

func TestBranchBiasControlsOutcomes(t *testing.T) {
	// Two micro variants with opposite bias must show different taken
	// rates on their skip branches.
	lo := Micro(1)
	lo.BranchBias = 0.1
	hi := Micro(1)
	hi.BranchBias = 0.9
	rate := func(p Profile) float64 {
		prog := p.Generate()
		e := program.NewEmulator(prog)
		taken, total := 0, 0
		for i := 0; i < 40000; i++ {
			r, ok := e.Step()
			if !ok {
				break
			}
			// Skip branches are forward (target > pc); loop
			// back-edges are backward.
			if r.Op == isa.OpBranch && r.NextPC > r.PC+1 || (r.Op == isa.OpBranch && !r.Taken) {
				if r.Op == isa.OpBranch && prog.At(r.PC).Target > r.PC {
					total++
					if r.Taken {
						taken++
					}
				}
			}
		}
		if total == 0 {
			t.Fatal("no forward branches executed")
		}
		return float64(taken) / float64(total)
	}
	rl, rh := rate(lo), rate(hi)
	if rl >= rh {
		t.Errorf("bias control inverted: low=%.2f high=%.2f", rl, rh)
	}
	if rl > 0.4 || rh < 0.6 {
		t.Errorf("bias control weak: low=%.2f high=%.2f", rl, rh)
	}
}

func TestPointerChaseSerializesLoads(t *testing.T) {
	p, _ := ByName("mcf")
	prog := p.Generate()
	// Find a load whose source is the chase register and whose dest is
	// the chase register.
	found := false
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op == isa.OpLoad && in.Srcs[0] == regChase && in.Dsts[0] == regChase {
			found = true
			break
		}
	}
	if !found {
		t.Error("mcf profile generated no pointer-chase loads")
	}
}

func TestWorkingSetRespected(t *testing.T) {
	p := Micro(7)
	p.WorkingSet = 4096
	prog := p.Generate()
	e := program.NewEmulator(prog)
	for i := 0; i < 30000; i++ {
		r, ok := e.Step()
		if !ok {
			break
		}
		if (r.Op == isa.OpLoad || r.Op == isa.OpStore) && (r.EA < memBase || r.EA >= memBase+p.WorkingSet+2048) {
			t.Fatalf("EA %#x outside working set", r.EA)
		}
	}
}

func TestLitmusProfiles(t *testing.T) {
	lps := LitmusProfiles()
	if len(lps) == 0 {
		t.Fatal("no litmus profiles")
	}
	seen := map[string]bool{}
	for _, p := range lps {
		if p.Class != "litmus" || p.Litmus == "" {
			t.Fatalf("%s: malformed litmus profile %+v", p.Name, p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate litmus profile %s", p.Name)
		}
		seen[p.Name] = true
		prog := p.Generate()
		if prog.Len() == 0 {
			t.Fatalf("%s: empty program", p.Name)
		}
		got, ok := ByName(p.Name)
		if !ok || got.Litmus != p.Litmus {
			t.Fatalf("ByName(%s) = %+v, %v", p.Name, got, ok)
		}
	}
	// Every registered shape must appear at least once.
	for _, sh := range memmodel.Shapes() {
		if !seen["litmus-"+sh.Name+"#0"] {
			t.Errorf("shape %s missing from litmus profiles", sh.Name)
		}
	}
}

func TestLitmusByNameDynamic(t *testing.T) {
	// Interleavings beyond the LitmusProfiles defaults resolve dynamically.
	p, ok := ByName("litmus-sb#4")
	if !ok || p.Litmus != "sb#4" {
		t.Fatalf("ByName(litmus-sb#4) = %+v, %v", p, ok)
	}
	p.Generate() // must not panic
	for _, bad := range []string{"litmus-nonesuch", "litmus-sb#999", "litmus-"} {
		if _, ok := ByName(bad); ok {
			t.Errorf("ByName(%q) resolved", bad)
		}
	}
}

func TestLitmusGenerateDeterministic(t *testing.T) {
	p, _ := ByName("litmus-mp#3")
	a, b := p.Generate(), p.Generate()
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic litmus generation")
	}
	for pc := uint64(0); pc < uint64(a.Len()); pc++ {
		if !reflect.DeepEqual(a.At(pc), b.At(pc)) {
			t.Fatalf("pc %d differs between generations", pc)
		}
	}
}
