package workload

import "fmt"

// FuzzProfile maps an arbitrary fuzzer input vector onto a valid Profile.
// It is the bridge between go test's native fuzzing (which mutates flat
// integer tuples) and the generator's parameter space: every possible input
// lands inside the ranges the generator accepts, so any panic downstream is
// a real generator or simulator bug, never an out-of-contract profile.
//
// All arguments are unsigned integers (not floats or bools) so seed corpus
// files in the "go test fuzz v1" format stay trivially hand-writable, and
// every fuzz target in the repo shares this exact signature so corpus
// entries are copyable between targets.
func FuzzProfile(seed uint64, ws uint32,
	load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
	branchEvery, regWindow, loops, trip, blockLen, funcs, flags uint16) Profile {

	// frac maps x onto [0, max] with ~0.1% granularity.
	frac := func(x uint16, max float64) float64 { return float64(x%1000) / 999 * max }

	class := "int"
	if flags&4 != 0 {
		class = "fp"
	}
	return Profile{
		Name:  fmt.Sprintf("fuzz-%016x", seed),
		Class: class,
		Seed:  seed,

		LoadFrac:  frac(load, 0.35),
		StoreFrac: frac(store, 0.20),
		MulFrac:   frac(mul, 0.15),
		DivFrac:   frac(div, 0.05),
		FPFrac:    frac(fp, 0.45),
		MoveFrac:  frac(mov, 0.20),

		BranchEvery:  int(branchEvery % 12), // 0 disables extra branches
		BranchBias:   frac(bias, 1),
		BranchOnLoad: frac(onload, 1),

		FlagWriteFrac: frac(flagw, 0.60),
		RegWindow:     2 + int(regWindow%11), // generator clamps to [2,12]
		FanOut:        1 + frac(fanout, 3),

		WorkingSet:   64 + uint64(ws)%(64<<20),
		StrideFrac:   frac(stride, 1),
		PointerChase: flags&2 != 0,

		Loops:     int(loops % 9),
		TripCount: int(trip % 97),
		BlockLen:  int(blockLen % 57),
		Funcs:     int(funcs % 7),
		CallFrac:  frac(callf, 0.20),
		Indirect:  flags&1 != 0,
	}
}

// FuzzArgs projects a real Profile back into FuzzProfile's input space, for
// seeding fuzz corpora from the 23 benchmark profiles. The projection is
// approximate (fractions are quantized, structural knobs clamped to the
// fuzz ranges); it exists to drop the fuzzer into realistic parameter
// neighborhoods, not to round-trip profiles exactly.
func FuzzArgs(p Profile) (seed uint64, ws uint32, args [19]uint16) {
	unfrac := func(v, max float64) uint16 {
		if v <= 0 {
			return 0
		}
		if v >= max {
			return 999
		}
		return uint16(v/max*999 + 0.5)
	}
	clamp := func(v, hi int) uint16 {
		if v < 0 {
			return 0
		}
		if v > hi {
			return uint16(hi)
		}
		return uint16(v)
	}

	seed = p.Seed
	ws = uint32((p.WorkingSet - 64) % (64 << 20))
	args = [19]uint16{
		unfrac(p.LoadFrac, 0.35),
		unfrac(p.StoreFrac, 0.20),
		unfrac(p.MulFrac, 0.15),
		unfrac(p.DivFrac, 0.05),
		unfrac(p.FPFrac, 0.45),
		unfrac(p.MoveFrac, 0.20),
		unfrac(p.FlagWriteFrac, 0.60),
		unfrac(p.CallFrac, 0.20),
		unfrac(p.StrideFrac, 1),
		unfrac(p.BranchBias, 1),
		unfrac(p.BranchOnLoad, 1),
		unfrac(p.FanOut-1, 3),
		clamp(p.BranchEvery, 11),
		clamp(p.RegWindow-2, 10),
		clamp(p.Loops, 8),
		clamp(p.TripCount, 96),
		clamp(p.BlockLen, 56),
		clamp(p.Funcs, 6),
	}
	var flags uint16
	if p.Indirect {
		flags |= 1
	}
	if p.PointerChase {
		flags |= 2
	}
	if p.Class == "fp" {
		flags |= 4
	}
	args[18] = flags
	return seed, ws, args
}
