package pipeline

import (
	"testing"

	"atr/internal/config"
	"atr/internal/isa"
	"atr/internal/program"
	"atr/internal/workload"
)

func testConfig() config.Config {
	return config.GoldenCove().WithPhysRegs(96)
}

// runAndCompare executes prog on the CPU and checks every committed
// instruction against the in-order emulator. This is the architectural
// safety oracle: an unsafe early release corrupts a live value and shows up
// as a record mismatch.
func runAndCompare(t *testing.T, cfg config.Config, prog *program.Program, n uint64) Result {
	t.Helper()
	emu := program.NewEmulator(prog)
	cpu := New(cfg, prog)
	var mismatches int
	var checked uint64
	cpu.OnCommit = func(got program.Record) {
		want, ok := emu.Step()
		if !ok {
			t.Fatalf("CPU committed %v beyond emulator halt", got)
		}
		if got != want {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("commit %d mismatch:\n got %+v\nwant %+v", checked, got, want)
			}
		}
		checked++
	}
	res := cpu.Run(n)
	if mismatches > 0 {
		t.Fatalf("%d/%d committed records diverged from the oracle", mismatches, checked)
	}
	if checked == 0 {
		t.Fatal("nothing committed")
	}
	if err := cpu.Engine.CheckInvariants(); err != nil {
		t.Fatalf("invariants after run: %v", err)
	}
	return res
}

func TestSimpleLoop(t *testing.T) {
	b := program.NewBuilder(1, 2)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 50)
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 0)
	b.Label("loop")
	b.ALU(isa.R1, isa.R1, isa.R0, 0)
	b.ALU(isa.R0, isa.R0, isa.RegInvalid, -1)
	b.Cmp(isa.R0, isa.RegInvalid, 0)
	b.Branch(program.PredNotZero, "loop")
	prog := b.MustBuild()

	res := runAndCompare(t, testConfig(), prog, 10000)
	if !res.Halted {
		t.Error("program should halt")
	}
	if res.Committed != 2+50*4 {
		t.Errorf("committed %d, want 202", res.Committed)
	}
	if res.IPC <= 0.3 {
		t.Errorf("IPC = %.2f implausibly low for a tight loop", res.IPC)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	b := program.NewBuilder(3, 4)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 8)
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 1234)
	b.Store(isa.R0, isa.R1, 0x1000, 4096, 0)
	b.Load(isa.R2, isa.R0, 0x1000, 4096, 0) // must forward 1234
	b.ALU(isa.R3, isa.R2, isa.RegInvalid, 1)
	prog := b.MustBuild()
	runAndCompare(t, testConfig(), prog, 100)
}

func TestCallRetAndIndirect(t *testing.T) {
	b := program.NewBuilder(5, 6)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 20)
	b.Label("loop")
	b.Call(isa.R14, "fn")
	b.JumpInd(isa.R0, "a", "b")
	b.Label("a")
	b.ALU(isa.R2, isa.R2, isa.RegInvalid, 3)
	b.Jump("cont")
	b.Label("b")
	b.ALU(isa.R2, isa.R2, isa.RegInvalid, 5)
	b.Jump("cont")
	b.Label("cont")
	b.ALU(isa.R0, isa.R0, isa.RegInvalid, -1)
	b.Cmp(isa.R0, isa.RegInvalid, 0)
	b.Branch(program.PredNotZero, "loop")
	b.Jump("end")
	b.Label("fn")
	b.Mul(isa.R3, isa.R3, isa.R0, 7)
	b.Ret(isa.R14)
	b.Label("end")
	b.Nop()
	prog := b.MustBuild()
	runAndCompare(t, testConfig(), prog, 1000)
}

// TestEquivalenceAllSchemes is the headline safety test: under every release
// scheme, every redefine-delay, and both recovery styles, the committed
// stream must exactly match the in-order oracle on a workload with
// mispredictions, calls, indirect jumps, loads, stores and divides.
func TestEquivalenceAllSchemes(t *testing.T) {
	prog := workload.Micro(42).Generate()
	for _, scheme := range config.Schemes() {
		for _, prf := range []int{64, 96} {
			cfg := testConfig().WithScheme(scheme).WithPhysRegs(prf)
			t.Run(scheme.String()+"/"+itoa(prf), func(t *testing.T) {
				res := runAndCompare(t, cfg, prog, 30000)
				if res.Mispredicts == 0 {
					t.Error("workload should mispredict (wrong-path coverage)")
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestEquivalenceRedefineDelay(t *testing.T) {
	prog := workload.Micro(7).Generate()
	for _, delay := range []int{0, 1, 2} {
		cfg := testConfig().WithScheme(config.SchemeATR)
		cfg.RedefineDelay = delay
		t.Run(itoa(delay), func(t *testing.T) {
			runAndCompare(t, cfg, prog, 20000)
		})
	}
}

func TestEquivalenceWalkRecovery(t *testing.T) {
	prog := workload.Micro(9).Generate()
	for _, scheme := range config.Schemes() {
		cfg := testConfig().WithScheme(scheme)
		cfg.WalkRecovery = true
		t.Run(scheme.String(), func(t *testing.T) {
			runAndCompare(t, cfg, prog, 20000)
		})
	}
}

// TestWalkAndCheckpointAgree runs the same program under both recovery
// styles and requires identical cycle-level behaviour.
func TestWalkAndCheckpointAgree(t *testing.T) {
	prog := workload.Micro(11).Generate()
	cfg := testConfig().WithScheme(config.SchemeCombined)
	r1 := New(cfg, prog).Run(20000)
	cfg.WalkRecovery = true
	r2 := New(cfg, prog).Run(20000)
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Errorf("recovery styles diverge: checkpoint %d cycles, walk %d cycles", r1.Cycles, r2.Cycles)
	}
}

// TestFaultsAreTransparent injects synchronous exceptions: with precise
// exception handling, the committed stream must be unchanged.
func TestFaultsAreTransparent(t *testing.T) {
	prog := workload.Micro(13).Generate()
	for _, scheme := range config.Schemes() {
		cfg := testConfig().WithScheme(scheme)
		cfg.FaultRate = 3 // roughly one in three faultable PCs fault once
		t.Run(scheme.String(), func(t *testing.T) {
			res := runAndCompare(t, cfg, prog, 20000)
			if res.Exceptions == 0 {
				t.Error("no exceptions taken; injection broken")
			}
		})
	}
}

// TestInterruptsAreTransparent injects asynchronous interrupts in both
// handling modes; architectural state must be unaffected.
func TestInterruptsAreTransparent(t *testing.T) {
	prog := workload.Micro(17).Generate()
	for _, mode := range []config.InterruptMode{config.InterruptDrain, config.InterruptFlush} {
		for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeATR, config.SchemeCombined} {
			cfg := testConfig().WithScheme(scheme)
			cfg.InterruptMode = mode
			cfg.InterruptInterval = 500
			cfg.InterruptCost = 40
			name := scheme.String() + "/flush"
			if mode == config.InterruptDrain {
				name = scheme.String() + "/drain"
			}
			t.Run(name, func(t *testing.T) {
				res := runAndCompare(t, cfg, prog, 15000)
				if res.Interrupts == 0 {
					t.Error("no interrupts served")
				}
			})
		}
	}
}

func TestEquivalenceOnRealProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("long equivalence sweep")
	}
	for _, name := range []string{"gcc", "mcf", "x264", "lbm", "namd", "povray"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		prog := p.Generate()
		for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeCombined} {
			cfg := testConfig().WithScheme(scheme).WithPhysRegs(64)
			t.Run(name+"/"+scheme.String(), func(t *testing.T) {
				runAndCompare(t, cfg, prog, 15000)
			})
		}
	}
}

func TestSmallRFIsSlower(t *testing.T) {
	prog := workload.Micro(21).Generate()
	small := New(testConfig().WithPhysRegs(48), prog).Run(20000)
	big := New(testConfig().WithPhysRegs(280), prog).Run(20000)
	if small.Cycles <= big.Cycles {
		t.Errorf("48 regs (%d cycles) should be slower than 280 regs (%d cycles)", small.Cycles, big.Cycles)
	}
	if small.RenameStalls == 0 {
		t.Error("expected rename stalls with a tiny register file")
	}
}

func TestATRNotSlowerThanBaselineSmallRF(t *testing.T) {
	// At high register pressure ATR should recover cycles; require it to
	// be at least as fast on an atomic-region-friendly workload.
	p := workload.Micro(23)
	p.BlockLen = 16
	p.FlagWriteFrac = 0.6
	prog := p.Generate()
	base := New(testConfig().WithScheme(config.SchemeBaseline).WithPhysRegs(56), prog).Run(20000)
	atr := New(testConfig().WithScheme(config.SchemeATR).WithPhysRegs(56), prog).Run(20000)
	if atr.Cycles > base.Cycles {
		t.Errorf("ATR (%d cycles) slower than baseline (%d cycles)", atr.Cycles, base.Cycles)
	}
	if atr.Cycles == base.Cycles {
		t.Logf("warning: ATR made no difference (%d cycles)", atr.Cycles)
	}
}

func TestInfiniteRegistersNoStalls(t *testing.T) {
	prog := workload.Micro(29).Generate()
	res := New(testConfig().WithPhysRegs(0), prog).Run(10000)
	if res.RenameStalls != 0 {
		t.Errorf("%d rename stalls with infinite registers", res.RenameStalls)
	}
}

func TestLedgerEventOrdering(t *testing.T) {
	// Fig 3 partial order: Renamed <= {Consumed, Redefined} <= Precommit
	// <= Commit for every completed lifetime. The ledger accumulates only
	// non-negative durations, so a violated order would panic on the
	// unsigned subtraction or show as absurd totals; spot-check via state
	// fractions summing to 1.
	prog := workload.Micro(31).Generate()
	cpu := New(testConfig(), prog)
	cpu.Run(20000)
	inUse, unused, verified := cpu.Engine.Ledger.StateFractions()
	sum := inUse + unused + verified
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("state fractions sum to %v", sum)
	}
	if cpu.Engine.Ledger.Completed() == 0 {
		t.Error("no completed lifetimes recorded")
	}
}

func TestAtomicRatioPlausible(t *testing.T) {
	// The integer micro profile should put a visible fraction of
	// allocations inside atomic regions (the paper reports ~17% for
	// SPECint).
	prog := workload.Micro(37).Generate()
	cpu := New(testConfig().WithScheme(config.SchemeATR), prog)
	cpu.Run(30000)
	_, _, atomic := cpu.Engine.Ledger.RegionFractions()
	if atomic < 0.02 || atomic > 0.8 {
		t.Errorf("atomic ratio = %.3f, implausible", atomic)
	}
	if cpu.Engine.Stats.Get("atr.claims") == 0 {
		t.Error("no claims on an ATR run")
	}
	if cpu.Engine.Stats.Get("release.atr") == 0 {
		t.Error("no early releases on an ATR run")
	}
}

func TestDeterminism(t *testing.T) {
	prog := workload.Micro(41).Generate()
	cfg := testConfig().WithScheme(config.SchemeCombined)
	a := New(cfg, prog).Run(10000)
	b := New(cfg, prog).Run(10000)
	if a != b {
		t.Errorf("same configuration, different results:\n%+v\n%+v", a, b)
	}
}
