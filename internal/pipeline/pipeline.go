package pipeline

import (
	"fmt"

	"atr/internal/bpred"
	"atr/internal/cache"
	"atr/internal/config"
	"atr/internal/core"
	"atr/internal/isa"
	"atr/internal/obs"
	"atr/internal/power"
	"atr/internal/program"
	"atr/internal/stats"
)

// frontendDepth is the fetch-to-rename pipeline depth in cycles (fetch,
// decode, and queue stages); it sets the misprediction redirect penalty
// together with the L1I latency.
const frontendDepth = 4

// exceptionCost is the pipeline penalty charged when a synchronous
// exception (injected fault) is taken.
const exceptionCost = 30

// instBytes is the footprint of one micro-instruction in the I-cache model.
const instBytes = 4

// CPU is one simulated core executing one program.
type CPU struct {
	cfg    config.Config
	prog   *program.Program
	Engine *core.Engine
	Pred   *bpred.Predictor
	Mem    *cache.Hierarchy
	Data   *program.Memory

	// Register file values and readiness, indexed [class][ptag].
	vals  [isa.NumClasses][]uint64
	ready [isa.NumClasses][]bool

	// Frontend state. decodeQ is head-indexed (decodeQ[dqHead:] is the
	// live queue) so popping reuses the backing array instead of
	// reslicing capacity away.
	fetchPC   uint64
	fetchHold uint64 // no fetch before this cycle
	decodeQ   []*uop
	dqHead    int
	seq       uint64

	// Backend state. sq is head-indexed like decodeQ (sq[sqHead:] is the
	// live store queue, fetch order). inflight is used by the scan
	// scheduler only; the event scheduler tracks completions in its wheel.
	rob      *rob
	inflight []*uop // issued, completion pending (scan mode)
	sq       []*uop
	sqHead   int
	rsCount  int
	lqCount  int
	sqCount  int
	prePtr   int // entries from ROB head that have precommitted

	// ev is the event-driven scheduler state; nil selects the scan
	// reference scheduler.
	ev *evsched

	// mut arms one deliberately broken LSQ behavior for mutation testing
	// (mutate.go). Zero (mutNone) outside tests.
	mut lsqMutation

	// squashBuf is the reusable scratch for squashFrom.
	squashBuf []*uop

	// Architectural state.
	archPC    uint64
	committed uint64
	cycle     uint64

	// Incremental-run state (RunFor/Finish): deadlock-watchdog progress
	// tracking and whether the program halted, carried across budget
	// slices so a sliced run behaves exactly like an unsliced one.
	runLastCommit uint64
	runStuck      uint64
	runHalted     bool

	// Exceptions and interrupts.
	faulted          map[uint64]bool // PCs whose one-shot fault already fired
	pendingInterrupt bool
	interruptFlushed bool // flush-mode: suffix discarded, prefix draining

	// OnCommit, when set, receives every architecturally committed
	// instruction (oracle comparison hook).
	OnCommit func(program.Record)

	// Counters. hLSQForwards and hIntrDeferred are pre-resolved handles so
	// the forwarding and interrupt-defer hot paths increment by index.
	Stats         *stats.Counters
	hLSQForwards  stats.Handle
	hIntrDeferred stats.Handle
	mispredicts   uint64
	flushes       uint64
	exceptions    uint64
	interrupts    uint64
	renameStall   uint64

	// Register-file occupancy accounting (for utilization stats).
	occupancySum uint64

	// Activity counters for the power model.
	srcReads  uint64
	aluOps    uint64
	memOps    uint64
	branchOps uint64
	squashed  uint64

	// cpCount tracks outstanding SRT checkpoints (budgeted mode).
	cpCount int

	// obs, when non-nil, receives pipeline events and interval samples.
	// Disabled observation costs the per-cycle and per-commit paths one
	// pointer compare each.
	obs *obs.Observer
}

// Observe attaches observation hooks to the CPU (nil detaches). The
// tracer, if any, is also handed to the release engine.
func (c *CPU) Observe(o *obs.Observer) {
	if !o.Enabled() {
		c.obs = nil
		c.Engine.SetTracer(nil)
		return
	}
	c.obs = o
	c.Engine.SetTracer(o.Tracer)
}

// shouldCheckpoint decides whether this mispredictable instruction gets an
// SRT checkpoint. With no budget configured, every one does; under a budget,
// only low-confidence conditional branches and indirect transfers are worth
// one (§4.2.1), and recovery at a non-checkpointed instruction reconstructs
// the SRT from the nearest older checkpoint plus forward replay.
func (c *CPU) shouldCheckpoint(u *uop) bool {
	if c.cfg.WalkRecovery {
		return false
	}
	if c.cfg.CheckpointBudget <= 0 {
		return true
	}
	if c.cpCount >= c.cfg.CheckpointBudget {
		return false
	}
	if u.inst.Op.IsIndirect() {
		return true
	}
	return !u.pred.Tage.Confident
}

// SchedulerKind selects the backend scheduling implementation. Both
// produce bit-identical simulations; the scan scheduler is the reference
// the event scheduler is validated against.
type SchedulerKind int

const (
	// SchedulerEvent is the event-driven scheduler: register wakeup
	// lists, a completion timing wheel, indexed store-queue search, and
	// uop pooling (see sched.go).
	SchedulerEvent SchedulerKind = iota
	// SchedulerScan is the reference implementation that re-scans the
	// ROB, inflight set, and store queue every cycle (see scan.go).
	SchedulerScan
)

// New builds a CPU for cfg running prog with the event-driven scheduler.
// It panics on an invalid configuration (callers validate via
// cfg.Validate()).
func New(cfg config.Config, prog *program.Program) *CPU {
	return NewWithScheduler(cfg, prog, SchedulerEvent)
}

// NewWithScheduler builds a CPU with an explicit scheduler implementation.
func NewWithScheduler(cfg config.Config, prog *program.Program, kind SchedulerKind) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &CPU{
		cfg:     cfg,
		prog:    prog,
		Engine:  core.NewEngine(cfg),
		Pred:    bpred.New(cfg),
		Mem:     cache.NewHierarchy(cfg),
		Data:    program.NewMemory(prog.MemSeed),
		rob:     newROB(cfg.ROBSize),
		faulted: make(map[uint64]bool),
		Stats:   stats.NewCounters(),
	}
	c.hLSQForwards = c.Stats.Handle("lsq.forwards")
	c.hIntrDeferred = c.Stats.Handle("interrupt.deferred_cycles")
	n := c.Engine.PhysRegsPerClass()
	for cl := 0; cl < int(isa.NumClasses); cl++ {
		c.vals[cl] = make([]uint64, n)
		c.ready[cl] = make([]bool, n)
	}
	init := prog.InitialRegs()
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		a := c.Engine.Lookup(r)
		c.vals[a.Class][a.Tag] = init[r]
		c.ready[a.Class][a.Tag] = true
	}
	if kind == SchedulerEvent {
		// Slab capacity is exact: a live uop is always in the decode
		// queue or the ROB, both bounded (plus slack for the squash
		// walk's transient).
		c.ev = newEvsched(n, cfg.DecodeQueue+cfg.ROBSize+8)
	}
	return c
}

// Result summarizes one simulation run.
type Result struct {
	Cycles           uint64
	Committed        uint64
	IPC              float64
	Mispredicts      uint64
	Flushes          uint64
	Exceptions       uint64
	Interrupts       uint64
	RenameStalls     uint64
	BranchAccuracy   float64
	IndirectAccuracy float64
	L1DHitRate       float64
	AvgRegsLive      float64
	Halted           bool
}

// Run simulates until maxInstr instructions commit or the program halts,
// and returns the run summary. It panics if the machine deadlocks (no
// commit progress for an implausibly long window), which would indicate a
// model bug.
func (c *CPU) Run(maxInstr uint64) Result {
	c.runLastCommit = c.committed
	c.runStuck = 0
	c.runHalted = false
	for !c.RunFor(maxInstr, ^uint64(0)) {
	}
	return c.Finish()
}

// RunFor advances the simulation by at most budget cycles, stopping early
// once maxInstr instructions have committed or the program halts. It
// returns true when the run is finished (target reached or halted) and
// false when only the cycle budget expired — call again to continue. The
// cycle-for-cycle state sequence is identical no matter how the budget
// slices the run, which is what lets the batch executor interleave lanes
// without perturbing a single bit of any lane's result.
func (c *CPU) RunFor(maxInstr, budget uint64) bool {
	for c.committed < maxInstr {
		if c.robEmptyAndHalted() {
			c.runHalted = true
			return true
		}
		if budget == 0 {
			return false
		}
		budget--
		c.step()
		if c.committed == c.runLastCommit {
			c.runStuck++
			if c.runStuck > 1_000_000 {
				panic(fmt.Sprintf("pipeline: no commit progress for 1M cycles at cycle %d (pc=%d hold=%d rob=%d dq=%d inflight=%d pending=%v open=%d free=%d committed=%d)",
					c.cycle, c.fetchPC, c.fetchHold, c.rob.len(), c.dqLen(),
					c.inflightCount(), c.pendingInterrupt, c.Engine.OpenRegions(),
					c.Engine.FreeCount(isa.ClassGPR), c.committed))
			}
		} else {
			c.runStuck = 0
			c.runLastCommit = c.committed
		}
	}
	return true
}

// Finish finalizes the sampler and the release engine and returns the run
// summary. Call exactly once after RunFor reports the run finished; Run
// does both for the common single-shot case.
func (c *CPU) Finish() Result {
	if c.obs != nil && c.obs.Sampler != nil {
		c.obs.Sampler.Finalize(c.snapshot())
	}
	c.Engine.Finalize()
	res := Result{
		Cycles:           c.cycle,
		Committed:        c.committed,
		Mispredicts:      c.mispredicts,
		Flushes:          c.flushes,
		Exceptions:       c.exceptions,
		Interrupts:       c.interrupts,
		RenameStalls:     c.renameStall,
		BranchAccuracy:   c.Pred.CondAccuracy(),
		IndirectAccuracy: c.Pred.IndirectAccuracy(),
		L1DHitRate:       c.Mem.L1D.HitRate(),
		Halted:           c.runHalted,
	}
	if c.cycle > 0 {
		res.IPC = float64(c.committed) / float64(c.cycle)
		res.AvgRegsLive = float64(c.occupancySum) / float64(c.cycle)
	}
	return res
}

func (c *CPU) robEmptyAndHalted() bool {
	return c.rob.len() == 0 && c.dqLen() == 0 && !c.prog.ValidPC(c.fetchPC)
}

// inflightCount returns issued-but-incomplete uops (mode-independent).
func (c *CPU) inflightCount() int {
	if c.ev != nil {
		return c.ev.pending
	}
	return len(c.inflight)
}

// newUop returns a zeroed uop, recycled from the free list in event mode.
func (c *CPU) newUop() *uop {
	if c.ev != nil {
		return c.ev.getUop()
	}
	return new(uop)
}

// ------------------------------------------------- head-indexed queues
//
// decodeQ and sq pop from the front; plain reslicing (q = q[1:]) would
// strand the popped capacity and re-allocate forever in steady state, so
// both queues keep a head index and compact the backing array once the
// dead prefix grows.

func (c *CPU) dqLen() int    { return len(c.decodeQ) - c.dqHead }
func (c *CPU) dqFront() *uop { return c.decodeQ[c.dqHead] }
func (c *CPU) dqPush(u *uop) { c.decodeQ = append(c.decodeQ, u) }

func (c *CPU) dqPopFront() {
	c.decodeQ[c.dqHead] = nil
	c.dqHead++
	if c.dqHead < len(c.decodeQ) && c.dqHead < 64 {
		return
	}
	n := copy(c.decodeQ, c.decodeQ[c.dqHead:])
	clear(c.decodeQ[n:])
	c.decodeQ = c.decodeQ[:n]
	c.dqHead = 0
}

// dqClear empties the decode queue, recycling the never-renamed uops in
// event mode (they are registered nowhere else).
func (c *CPU) dqClear() {
	for i := c.dqHead; i < len(c.decodeQ); i++ {
		if c.ev != nil {
			c.ev.putUop(c.decodeQ[i])
		}
		c.decodeQ[i] = nil
	}
	c.decodeQ = c.decodeQ[:0]
	c.dqHead = 0
}

func (c *CPU) sqLen() int    { return len(c.sq) - c.sqHead }
func (c *CPU) sqFront() *uop { return c.sq[c.sqHead] }

func (c *CPU) sqPopFront() {
	c.sq[c.sqHead] = nil
	c.sqHead++
	if c.sqHead < len(c.sq) && c.sqHead < 64 {
		return
	}
	n := copy(c.sq, c.sq[c.sqHead:])
	clear(c.sq[n:])
	c.sq = c.sq[:n]
	if c.ev != nil {
		c.ev.sqFirst -= c.sqHead // sqFirst >= sqHead always holds
	}
	c.sqHead = 0
}

// step advances the machine by one cycle.
func (c *CPU) step() {
	c.maybeInterrupt()
	if c.ev != nil {
		c.evCompleteStage()
		c.evCaptureStoreData()
	} else {
		c.scanCompleteStage()
		c.scanCaptureStoreData()
	}
	c.precommitStage()
	c.commitStage()
	if c.ev != nil {
		c.evIssueStage()
	} else {
		c.scanIssueStage()
	}
	c.renameStage()
	c.fetchStage()
	c.Engine.Tick(c.cycle)
	c.occupancySum += uint64(c.Engine.PhysRegsPerClass() - c.Engine.FreeCount(isa.ClassGPR))
	c.cycle++
	if c.obs != nil {
		c.sampleTick()
	}
}

// sampleTick records an interval sample when the cycle counter crosses a
// boundary. Kept out of step so the disabled path is a single nil check.
func (c *CPU) sampleTick() {
	if s := c.obs.Sampler; s != nil && s.Due(c.cycle) {
		s.Record(c.snapshot())
	}
}

// snapshot captures the cumulative machine state for the sampler.
func (c *CPU) snapshot() obs.Snapshot {
	st := c.Engine.Stats
	return obs.Snapshot{
		Cycle:          c.cycle,
		Committed:      c.committed,
		Mispredicts:    c.mispredicts,
		Flushes:        c.flushes,
		RenameStalls:   c.renameStall,
		BranchAccuracy: c.Pred.CondAccuracy(),
		ROB:            c.rob.len(),
		RS:             c.rsCount,
		LQ:             c.lqCount,
		SQ:             c.sqCount,
		FreeGPR:        c.Engine.FreeCount(isa.ClassGPR),
		FreeFPR:        c.Engine.FreeCount(isa.ClassFPR),
		ReleaseATR:     st.Get("release.atr"),
		ReleaseER:      st.Get("release.er"),
		ReleaseCommit:  st.Get("release.commit"),
		ReleaseFlush:   st.Get("release.flush"),
	}
}

// traceUop emits u's stage-timestamp record (commit or squash).
func (c *CPU) traceUop(u *uop, squashed bool) {
	t := c.obs.Tracer
	if t == nil {
		return
	}
	ev := obs.UopEvent{
		Seq:      u.seq,
		PC:       u.pc,
		Op:       u.inst.Op.String(),
		Fetch:    u.fetchedAt,
		Rename:   u.renCycle,
		Dispatch: u.renCycle,
		Squashed: squashed,
	}
	if u.issued {
		ev.Issue = u.issueAt
	}
	if u.executed {
		ev.Complete = u.doneAt
	}
	if u.precommitted {
		ev.Precommit = u.preAt
	}
	if !squashed {
		ev.Commit = c.cycle
	}
	t.Uop(ev)
}

// ---------------------------------------------------------------- frontend

func (c *CPU) fetchStage() {
	if c.pendingInterrupt && c.cfg.InterruptMode == config.InterruptDrain {
		return // draining: no new fetch
	}
	if c.interruptFlushed {
		return // flush-mode prefix drain in progress
	}
	if c.cycle < c.fetchHold {
		return
	}
	taken := 0
	for fetched := 0; fetched < c.cfg.FetchWidth; fetched++ {
		if c.dqLen() >= c.cfg.DecodeQueue {
			return
		}
		pc := c.fetchPC
		if !c.prog.ValidPC(pc) {
			return // wrong-path garbage or program end: wait for redirect
		}
		done := c.Mem.AccessInst(pc*instBytes, c.cycle)
		if done > c.cycle+uint64(c.cfg.L1I.Latency) {
			// I-cache miss: stall fetch until the fill arrives (the
			// line is now resident, so the retry hits).
			c.fetchHold = done
			return
		}
		in := c.prog.At(pc)
		u := c.newUop()
		u.seq = c.seq
		u.pc = pc
		u.inst = in
		u.fetchedAt = c.cycle
		u.renameable = c.cycle + frontendDepth
		u.predNext = pc + 1
		c.seq++
		if in.Op.IsControl() {
			c.Pred.PredictInto(in, pc, &u.pred)
			u.hasPred = true
			if u.pred.Taken {
				u.predNext = u.pred.Target
				taken++
			}
		}
		c.dqPush(u)
		c.fetchPC = u.predNext
		if taken >= c.cfg.FetchTargets {
			return // fetch-target budget exhausted this cycle
		}
	}
}

func (c *CPU) renameStage() {
	for n := 0; n < c.cfg.RenameWidth && c.dqLen() > 0; n++ {
		u := c.dqFront()
		if u.renameable > c.cycle || c.rob.full() || c.rsCount >= c.cfg.RSSize {
			return
		}
		if u.isLoad() && c.lqCount >= c.cfg.LoadQueue {
			return
		}
		if u.isStore() && c.sqCount >= c.cfg.StoreQueue {
			return
		}
		if !c.Engine.CanRename() {
			c.renameStall++
			return
		}
		c.Engine.RenameInto(u.inst, c.cycle, &u.ren)
		u.renamed = true
		u.renCycle = c.cycle
		for i := 0; i < isa.MaxDsts; i++ {
			d := u.ren.Dsts[i]
			if d.New.Valid() && !d.Eliminated {
				c.ready[d.New.Class][d.New.Tag] = false
			}
		}
		if u.mispredictable() && c.shouldCheckpoint(u) {
			u.cp = c.Engine.TakeCheckpoint()
			c.cpCount++
		}
		c.rob.push(u)
		c.rsCount++
		switch {
		case u.isLoad():
			c.lqCount++
		case u.isStore():
			c.sqCount++
			c.sq = append(c.sq, u)
		}
		if c.ev != nil {
			c.onRename(u)
		}
		c.dqPopFront()
	}
}

// ----------------------------------------------------------------- backend

func (c *CPU) srcsReady(u *uop) bool {
	for i := 0; i < isa.MaxSrcs; i++ {
		if !u.inst.Srcs[i].Valid() {
			continue
		}
		if u.isStore() && i == 1 {
			continue // store data is captured separately (STD)
		}
		a := u.ren.Srcs[i]
		if !c.ready[a.Class][a.Tag] {
			return false
		}
	}
	return true
}

// forwardFrom returns the youngest older store matching ea, if any, via
// the active scheduler's search structure (or the mutated search when the
// test-only mutation harness is armed; see mutate.go).
func (c *CPU) forwardFrom(u *uop, ea uint64) *uop {
	if c.mut != mutNone {
		return c.mutForwardFrom(u, ea)
	}
	if c.ev != nil {
		return c.ev.fwdLookup(ea, u.seq)
	}
	return c.scanForwardFrom(u, ea)
}

// forwardStall returns the forwarding match whose pending store data forces
// u to stall this cycle, or nil when u may issue. Both schedulers route
// their pre-issue stall decision through here so the data-readiness rule
// (and its mutation) lives in exactly one place.
func (c *CPU) forwardStall(u *uop, ea uint64) *uop {
	s := c.forwardFrom(u, ea)
	if s == nil || s.stDataRdy || c.mut == mutForwardStaleData {
		return nil
	}
	return s
}

// issue schedules u for execution: reads sources (notifying the release
// engine), evaluates the functional semantics, and assigns the completion
// cycle.
func (c *CPU) issue(u *uop) {
	u.issued = true
	u.issueAt = c.cycle
	c.rsCount--

	var srcs [isa.MaxSrcs]uint64
	for i := 0; i < isa.MaxSrcs; i++ {
		if !u.inst.Srcs[i].Valid() {
			continue
		}
		if u.isStore() && i == 1 {
			continue // read at STD capture instead
		}
		a := u.ren.Srcs[i]
		srcs[i] = c.vals[a.Class][a.Tag]
		c.Engine.ConsumerIssued(a, c.cycle)
		c.srcReads++
	}
	switch {
	case u.inst.Op.IsMem():
		c.memOps++
	case u.inst.Op.IsControl():
		c.branchOps++
	default:
		c.aluOps++
	}

	lat := uint64(u.inst.Op.Latency())
	switch {
	case u.isLoad():
		ea := program.EffAddr(u.inst, srcs[0])
		u.ea, u.eaKnown = ea, true
		var loadVal uint64
		if s := c.forwardFrom(u, ea); s != nil {
			loadVal = s.out.StoreVal
			u.doneAt = c.cycle + uint64(c.cfg.L1D.Latency)
			c.Stats.Add(c.hLSQForwards, 1)
		} else {
			loadVal = c.Data.Read(ea)
			u.doneAt = c.Mem.AccessData(ea, false, c.cycle)
		}
		u.out = program.Eval(u.inst, u.pc, srcs[:], func(uint64) uint64 { return loadVal })
	case u.isStore():
		// STA: only the address half executes here; the data half is
		// captured by captureStoreData when its producer completes.
		u.ea = program.EffAddr(u.inst, srcs[0])
		u.eaKnown = true
		u.out = program.Outcome{EA: u.ea, NextPC: u.pc + 1}
		u.doneAt = c.cycle + lat
	default:
		u.out = program.Eval(u.inst, u.pc, srcs[:], nil)
		u.doneAt = c.cycle + lat
	}
	u.actualNext = u.out.NextPC

	// Deterministic one-shot fault injection on faultable ops.
	if c.cfg.FaultRate > 0 && u.inst.Op.CanFault() && !c.faulted[u.pc] {
		if program.Mix(u.pc^0xFA017)%uint64(c.cfg.FaultRate) == 0 {
			u.fault = true
		}
	}
	if c.ev != nil {
		c.onIssue(u)
	} else {
		c.inflight = append(c.inflight, u)
	}
}

func (c *CPU) writeback(u *uop) {
	u.executed = true
	for i := 0; i < isa.MaxDsts; i++ {
		d := u.ren.Dsts[i]
		if !d.New.Valid() || d.Eliminated {
			// An eliminated move's destination aliases its source:
			// the true producer owns the value, readiness, and the
			// write-pending release condition.
			continue
		}
		c.vals[d.New.Class][d.New.Tag] = u.out.DstVals[i]
		c.ready[d.New.Class][d.New.Tag] = true
		c.Engine.ProducerCompleted(d.New, c.cycle)
		if c.ev != nil {
			c.wake(d.New)
		}
	}
}

// recoverFrom flushes everything younger than u and redirects fetch to u's
// actual target.
func (c *CPU) recoverFrom(u *uop) {
	c.mispredicts++
	// Pick the recovery style: u's own checkpoint if it has one, else the
	// nearest older checkpoint plus forward replay (§4.2.1), else the
	// backward walk.
	var replayFrom int = -1
	useWalk := c.cfg.WalkRecovery
	if !useWalk && u.cp == nil {
		replayFrom = c.nearestCheckpoint(u.seq)
		useWalk = replayFrom < 0
	}
	c.squashFrom(u.seq+1, useWalk)
	switch {
	case useWalk:
		// SRT already restored by the walk.
	case u.cp != nil:
		c.Engine.RestoreCheckpoint(u.cp)
	default:
		// Restore the checkpointed instruction's SRT, then re-apply the
		// mappings of every surviving instruction between it and u.
		c.Engine.RestoreCheckpoint(c.rob.at(replayFrom).cp)
		for i := replayFrom + 1; i < c.rob.len(); i++ {
			s := c.rob.at(i)
			for j := 0; j < isa.MaxDsts; j++ {
				c.Engine.ReplayDst(s.ren.Dsts[j])
			}
		}
	}
	// Train and rewind the predictor.
	if u.hasPred {
		c.Pred.Resolve(u.inst, u.pc, &u.pred, u.out.Taken, u.actualNext)
		c.Pred.Recover(u.inst, u.pc, &u.pred, u.out.Taken)
	}
	c.fetchPC = u.actualNext
	c.fetchHold = c.cycle + 1
	c.dqClear()
	c.flushes++
}

// nearestCheckpoint returns the ROB index of the youngest instruction at or
// before seq that holds an SRT checkpoint, or -1.
func (c *CPU) nearestCheckpoint(seq uint64) int {
	for i := c.rob.len() - 1; i >= 0; i-- {
		u := c.rob.at(i)
		if u.seq <= seq && u.cp != nil {
			return i
		}
	}
	return -1
}

// squashFrom removes every ROB entry with seq >= minSeq, walking from the
// tail (youngest first). When useWalk is set the SRT is restored via the
// backward walk (skipping ATR-invalidated previous ptags); otherwise the
// caller restores a checkpoint afterwards. Engine reclamation (double-free
// avoidance) runs either way.
func (c *CPU) squashFrom(minSeq uint64, useWalk bool) {
	squashed := c.squashBuf[:0]
	for c.rob.len() > 0 {
		tail := c.rob.at(c.rob.len() - 1)
		if tail.seq < minSeq {
			break
		}
		u := c.rob.popTail()
		u.squashed = true
		c.squashed++
		if c.obs != nil {
			c.traceUop(u, true)
		}
		if u.cp != nil {
			c.cpCount--
			c.Engine.ReleaseCheckpoint(u.cp)
			u.cp = nil
		}
		squashed = append(squashed, u)
		if useWalk {
			for i := isa.MaxDsts - 1; i >= 0; i-- {
				c.Engine.WalkRestoreDst(u.ren.Dsts[i])
			}
		}
		c.Engine.FlushInstr(&u.ren, c.cycle)
		if !u.issued {
			c.rsCount--
		}
		switch {
		case u.isLoad():
			c.lqCount--
		case u.isStore():
			c.sqCount--
		}
	}
	// Undo the rename-time consumer counts of squashed consumers that
	// never read their sources. This runs after every FlushInstr: a
	// squashed consumer's redefiner is also squashed (it is younger), so
	// its redefine/precommit state has been undone by now — a counter
	// reaching zero here must not trigger a release against state that
	// the same flush is retracting (an interrupt can flush precommitted
	// instructions).
	for _, u := range squashed {
		if u.issued {
			// An issued store may still owe its data read (STD).
			if u.isStore() && !u.stDataRdy && u.inst.Srcs[1].Valid() {
				c.Engine.ConsumerFlushed(u.ren.Srcs[1], c.cycle)
			}
			continue
		}
		for i := 0; i < isa.MaxSrcs; i++ {
			if u.inst.Srcs[i].Valid() {
				c.Engine.ConsumerFlushed(u.ren.Srcs[i], c.cycle)
			}
		}
	}
	// Remove squashed stores from the store queue. Squashed entries are a
	// contiguous suffix (sq is seq-ordered and squashes remove a seq
	// suffix), so surviving entries keep their absolute indices and the
	// event scheduler's sqFirst cursor needs only a clamp.
	n := c.sqHead
	for i := c.sqHead; i < len(c.sq); i++ {
		s := c.sq[i]
		if s.squashed {
			if c.ev != nil && s.eaKnown {
				c.ev.fwdRemove(s)
			}
			continue
		}
		c.sq[n] = s
		n++
	}
	clear(c.sq[n:])
	c.sq = c.sq[:n]
	if c.ev != nil && c.ev.sqFirst > n {
		c.ev.sqFirst = n
	}
	// Drop squashed uops from the decode queue (they were never renamed).
	c.dqClear()
	if c.prePtr > c.rob.len() {
		c.prePtr = c.rob.len()
	}
	// Recycle the squashed uops. Their generation bump lazily invalidates
	// any wait-list, ready-heap, wheel, stall-list, or capture-queue entry
	// still referencing them.
	if c.ev != nil {
		for i, u := range squashed {
			c.ev.putUop(u)
			squashed[i] = nil
		}
	}
	c.squashBuf = squashed[:0]
}

// precommitStage advances the precommit pointer: an entry precommits when
// every older instruction has precommitted and the entry itself can no
// longer flush the pipeline (flushers must have completed fault-free). Like
// retirement, the pointer advances a bounded number of entries per cycle —
// precommit shares the commit logic's walk bandwidth — which keeps it from
// sprinting arbitrarily far ahead after a long stall resolves.
func (c *CPU) precommitStage() {
	for n := 0; c.prePtr < c.rob.len() && n < c.cfg.RetireWidth; n++ {
		u := c.rob.at(c.prePtr)
		if !u.renamed {
			break
		}
		if u.fault {
			break
		}
		// Flushers must resolve before anything younger precommits. In
		// the optional aggressive mode, loads/stores resolve at address
		// translation (issue) rather than data return.
		if u.inst.Op.IsMem() && c.cfg.MemPrecommitAtExec {
			if !u.issued {
				break
			}
		} else if u.inst.Op.IsFlusher() && !u.executed {
			break
		}
		if !u.precommitted {
			u.precommitted = true
			u.preAt = c.cycle
			for i := 0; i < isa.MaxDsts; i++ {
				if u.ren.Dsts[i].New.Valid() {
					c.Engine.AllocPrecommitted(u.ren.Dsts[i])
					c.Engine.RedefinerPrecommitted(u.ren.Dsts[i], c.cycle)
				}
			}
		}
		c.prePtr++
	}
}

func (c *CPU) commitStage() {
	for n := 0; n < c.cfg.RetireWidth && c.rob.len() > 0; n++ {
		u := c.rob.at(0)
		if !u.executed || !u.precommitted || (u.isStore() && !u.stDataRdy) {
			if u.executed && u.fault {
				c.takeException(u)
			}
			return
		}
		c.rob.popHead()
		if c.prePtr > 0 {
			c.prePtr--
		}
		if u.cp != nil {
			c.cpCount--
			c.Engine.ReleaseCheckpoint(u.cp)
			u.cp = nil
		}
		if u.isStore() {
			c.Data.Write(u.out.EA, u.out.StoreVal)
			c.sqCount--
			if c.sqLen() > 0 && c.sqFront() == u {
				if c.ev != nil {
					c.ev.fwdRemove(u)
				}
				c.sqPopFront()
			}
		}
		if u.isLoad() {
			c.lqCount--
		}
		for i := 0; i < isa.MaxDsts; i++ {
			d := u.ren.Dsts[i]
			if !d.New.Valid() {
				continue
			}
			c.Engine.AllocCommitted(d)
			c.Engine.RedefinerCommitted(d, c.cycle)
		}
		// Train the predictor on correctly predicted control flow
		// (mispredictions already trained at recovery).
		if u.hasPred && !u.mispredict {
			c.Pred.Resolve(u.inst, u.pc, &u.pred, u.out.Taken, u.actualNext)
		}
		c.archPC = u.actualNext
		c.committed++
		if c.obs != nil {
			c.traceUop(u, false)
		}
		if c.OnCommit != nil {
			c.OnCommit(program.Record{
				PC: u.pc, Op: u.inst.Op, DstVals: u.out.DstVals,
				EA: u.out.EA, StoreVal: u.out.StoreVal,
				Taken: u.out.Taken, NextPC: u.actualNext,
			})
		}
		if c.ev != nil {
			c.ev.putUop(u)
		}
	}
}

// takeException handles a precise synchronous exception at the ROB head:
// everything younger than the faulting instruction plus the instruction
// itself is flushed, architectural state is exactly the pre-fault state,
// and fetch restarts at the faulting PC after the handler penalty.
func (c *CPU) takeException(f *uop) {
	c.exceptions++
	c.faulted[f.pc] = true
	pc := f.pc                // f is recycled by the squash below
	c.squashFrom(f.seq, true) // includes f itself
	c.fetchPC = pc
	c.fetchHold = c.cycle + exceptionCost
	c.dqClear()
	c.flushes++
}

// Activity summarizes the run's event counts for the power model.
func (c *CPU) Activity() power.Activity {
	return power.Activity{
		Cycles:    c.cycle,
		Committed: c.committed,
		Renamed:   c.Engine.Stats.Get("rename.alloc"),
		SrcReads:  c.srcReads,
		CacheAcc:  c.Mem.L1I.Hits + c.Mem.L1I.Misses + c.Mem.L1D.Hits + c.Mem.L1D.Misses,
		Flushed:   c.squashed,
		BranchOps: c.branchOps,
		ALUOps:    c.aluOps,
		MemOps:    c.memOps,
	}
}

// maybeInterrupt injects asynchronous interrupts per configuration.
func (c *CPU) maybeInterrupt() {
	iv := c.cfg.InterruptInterval
	if iv <= 0 {
		return
	}
	if c.cycle > 0 && c.cycle%uint64(iv) == 0 {
		c.pendingInterrupt = true
	}
	if !c.pendingInterrupt {
		return
	}
	switch c.cfg.InterruptMode {
	case config.InterruptDrain:
		// Fetch is held (see fetchStage); vector once the ROB drains.
		if c.rob.len() == 0 && c.dqLen() == 0 {
			c.serveInterrupt()
		}
	case config.InterruptFlush:
		// Flush the not-yet-precommitted suffix of the ROB — but only
		// once no atomic region straddles the precommit boundary
		// (the §4.1 option (b) counter, at the precommit pointer:
		// precommitted instructions are guaranteed to commit, which
		// both ATR claims and non-speculative early release rely on).
		// The precommitted prefix then drains before vectoring.
		if !c.interruptFlushed {
			if c.Engine.OpenPrecommitRegions() > 0 {
				c.Stats.Add(c.hIntrDeferred, 1)
				return
			}
			if c.prePtr < c.rob.len() {
				c.squashFrom(c.rob.at(c.prePtr).seq, true)
				c.flushes++
			}
			c.dqClear()
			c.interruptFlushed = true
		}
		if c.rob.len() == 0 {
			c.fetchPC = c.archPC
			c.interruptFlushed = false
			c.serveInterrupt()
		}
	}
}

func (c *CPU) serveInterrupt() {
	c.pendingInterrupt = false
	c.interrupts++
	hold := c.cycle + uint64(c.cfg.InterruptCost)
	if hold > c.fetchHold {
		c.fetchHold = hold
	}
}
