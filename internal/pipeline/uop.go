// Package pipeline models the out-of-order superscalar core of Table 1: a
// decoupled predicted-path frontend, rename/dispatch, an age-ordered
// scheduler over diversified functional units, a load/store queue with
// store-to-load forwarding, a reorder buffer with a precommit pointer, and
// commit. It executes real data values, fetches down mispredicted paths, and
// recovers via SRT checkpoints or backward walks, driving the release
// engine in internal/core through its event protocol.
package pipeline

import (
	"atr/internal/bpred"
	"atr/internal/core"
	"atr/internal/isa"
	"atr/internal/program"
)

// uop is one in-flight dynamic micro-operation.
type uop struct {
	seq  uint64 // fetch order, never reused
	pc   uint64
	inst *isa.Inst

	// Frontend.
	fetchedAt  uint64
	renameable uint64 // earliest rename cycle (frontend depth)
	pred       bpred.BranchPrediction
	hasPred    bool
	predNext   uint64 // predicted next PC used by fetch

	// Rename.
	ren      core.RenameOut
	renamed  bool
	renCycle uint64
	cp       *core.Checkpoint // SRT snapshot (mispredictable control only)

	// Scheduling and execution.
	issued   bool
	issueAt  uint64
	doneAt   uint64 // completion cycle once issued
	executed bool   // completion applied (results broadcast)
	out      program.Outcome

	// Memory. Stores split address generation from data: the address
	// issues as soon as its base register is ready (STA), while the data
	// is captured whenever its producer completes (STD). Loads only wait
	// for older stores' addresses, plus the data of a forwarding match.
	ea        uint64
	eaKnown   bool
	stData    uint64
	stDataRdy bool

	// Control resolution.
	actualNext uint64
	mispredict bool

	// Exceptions.
	fault bool

	precommitted bool
	preAt        uint64 // cycle the precommit pointer passed this uop
	squashed     bool

	// Event scheduling (sched.go; all zero in scan mode). gen is bumped
	// each time the uop recycles through the free list, invalidating any
	// schedRef still held by a wait list, ready heap, wheel slot, or
	// stall list.
	gen        uint32
	waitCnt    int8       // not-yet-ready register sources gating issue
	stSrcRdy   bool       // store: the STD source register is ready
	fwdNext    *uop       // store-forwarding hash chain (issued stores)
	stallIssue []schedRef // loads waiting for this store's address issue
	stallData  []schedRef // loads waiting for this store's data capture
}

func (u *uop) isLoad() bool  { return u.inst.Op == isa.OpLoad }
func (u *uop) isStore() bool { return u.inst.Op == isa.OpStore }

// mispredictable reports whether this op needs an SRT checkpoint.
func (u *uop) mispredictable() bool {
	return u.inst.Op.IsCondBranch() || u.inst.Op.IsIndirect()
}

// rob is a ring buffer of in-flight uops in fetch order.
type rob struct {
	buf  []*uop
	head int
	n    int
}

func newROB(size int) *rob { return &rob{buf: make([]*uop, size)} }

func (r *rob) len() int   { return r.n }
func (r *rob) cap() int   { return len(r.buf) }
func (r *rob) full() bool { return r.n == len(r.buf) }

func (r *rob) push(u *uop) {
	if r.full() {
		panic("pipeline: ROB overflow")
	}
	r.buf[(r.head+r.n)%len(r.buf)] = u
	r.n++
}

// at returns the i-th oldest entry (0 = head).
func (r *rob) at(i int) *uop { return r.buf[(r.head+i)%len(r.buf)] }

func (r *rob) popHead() *uop {
	if r.n == 0 {
		panic("pipeline: ROB underflow")
	}
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return u
}

// popTail removes and returns the youngest entry.
func (r *rob) popTail() *uop {
	if r.n == 0 {
		panic("pipeline: ROB underflow")
	}
	i := (r.head + r.n - 1) % len(r.buf)
	u := r.buf[i]
	r.buf[i] = nil
	r.n--
	return u
}
