// Package pipeline models the out-of-order superscalar core of Table 1: a
// decoupled predicted-path frontend, rename/dispatch, an age-ordered
// scheduler over diversified functional units, a load/store queue with
// store-to-load forwarding, a reorder buffer with a precommit pointer, and
// commit. It executes real data values, fetches down mispredicted paths, and
// recovers via SRT checkpoints or backward walks, driving the release
// engine in internal/core through its event protocol.
package pipeline

import (
	"atr/internal/bpred"
	"atr/internal/core"
	"atr/internal/isa"
	"atr/internal/program"
)

// uop is one in-flight dynamic micro-operation.
type uop struct {
	seq  uint64 // fetch order, never reused
	pc   uint64
	inst *isa.Inst

	// Frontend.
	fetchedAt  uint64
	renameable uint64 // earliest rename cycle (frontend depth)
	pred       bpred.BranchPrediction
	hasPred    bool
	predNext   uint64 // predicted next PC used by fetch

	// Rename.
	ren      core.RenameOut
	renamed  bool
	renCycle uint64
	cp       *core.Checkpoint // SRT snapshot (mispredictable control only)

	// Scheduling and execution.
	issued   bool
	issueAt  uint64
	doneAt   uint64 // completion cycle once issued
	executed bool   // completion applied (results broadcast)
	out      program.Outcome

	// Memory. Stores split address generation from data: the address
	// issues as soon as its base register is ready (STA), while the data
	// is captured whenever its producer completes (STD). Loads only wait
	// for older stores' addresses, plus the data of a forwarding match.
	ea        uint64
	eaKnown   bool
	stData    uint64
	stDataRdy bool

	// Control resolution.
	actualNext uint64
	mispredict bool

	// Exceptions.
	fault bool

	precommitted bool
	preAt        uint64 // cycle the precommit pointer passed this uop
	squashed     bool

	// Event scheduling (sched.go; all zero in scan mode, which heap-
	// allocates uops and never recycles them). idx is the uop's slot in
	// the scheduler's slab arena, fixed for the CPU's lifetime; gen is
	// bumped each time the slot recycles through the free list,
	// invalidating any schedRef still held by a wait list, ready heap,
	// wheel slot, or stall list.
	idx        int32
	gen        uint32
	waitCnt    int8       // not-yet-ready register sources gating issue
	stSrcRdy   bool       // store: the STD source register is ready
	fwdNext    int32      // store-forwarding hash chain (slab index, -1 ends)
	stallIssue []schedRef // loads waiting for this store's address issue
	stallData  []schedRef // loads waiting for this store's data capture
}

func (u *uop) isLoad() bool  { return u.inst.Op == isa.OpLoad }
func (u *uop) isStore() bool { return u.inst.Op == isa.OpStore }

// mispredictable reports whether this op needs an SRT checkpoint.
func (u *uop) mispredictable() bool {
	return u.inst.Op.IsCondBranch() || u.inst.Op.IsIndirect()
}

// rob is a ring buffer of in-flight uops in fetch order. Indices wrap by
// conditional subtraction (head and offsets are always < 2×capacity), not
// modulo — the commit and precommit walks index it several times per cycle
// and an integer divide per access shows up in profiles.
type rob struct {
	buf  []*uop
	head int
	n    int
}

func newROB(size int) *rob { return &rob{buf: make([]*uop, size)} }

func (r *rob) len() int   { return r.n }
func (r *rob) cap() int   { return len(r.buf) }
func (r *rob) full() bool { return r.n == len(r.buf) }

func (r *rob) wrap(i int) int {
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

func (r *rob) push(u *uop) {
	if r.full() {
		panic("pipeline: ROB overflow")
	}
	r.buf[r.wrap(r.head+r.n)] = u
	r.n++
}

// at returns the i-th oldest entry (0 = head).
func (r *rob) at(i int) *uop { return r.buf[r.wrap(r.head+i)] }

func (r *rob) popHead() *uop {
	if r.n == 0 {
		panic("pipeline: ROB underflow")
	}
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = r.wrap(r.head + 1)
	r.n--
	return u
}

// popTail removes and returns the youngest entry.
func (r *rob) popTail() *uop {
	if r.n == 0 {
		panic("pipeline: ROB underflow")
	}
	i := r.wrap(r.head + r.n - 1)
	u := r.buf[i]
	r.buf[i] = nil
	r.n--
	return u
}
