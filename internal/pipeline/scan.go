package pipeline

import (
	"sort"

	"atr/internal/isa"
	"atr/internal/program"
)

// The scan-based reference scheduler: the original O(window × cycles)
// implementation, preserved verbatim behind SchedulerScan. It re-walks the
// ROB for issue candidates, filters and sorts the inflight set for
// completions, and sweeps the store queue for STD capture, ordering checks,
// and forwarding every cycle. The event scheduler (sched.go) must remain
// bit-identical to it; TestSchedulerEquivalence compares the two across the
// full profile × scheme × recovery matrix.

func (c *CPU) scanIssueStage() {
	aluLeft := c.cfg.NumALU
	loadLeft := c.cfg.NumLoadPorts
	storeLeft := c.cfg.NumStorePorts
	left := c.cfg.IssueWidth
	for i := 0; i < c.rob.len() && left > 0; i++ {
		u := c.rob.at(i)
		if !u.renamed || u.issued {
			continue
		}
		switch u.inst.Op.FU() {
		case isa.FUALU:
			if aluLeft == 0 {
				continue
			}
		case isa.FULoad:
			if loadLeft == 0 {
				continue
			}
		case isa.FUStore:
			if storeLeft == 0 {
				continue
			}
		}
		if !c.srcsReady(u) {
			continue
		}
		if u.isLoad() && !c.scanLoadMayIssue(u) {
			continue
		}
		if u.isLoad() {
			// The load's address is computable now; a forwarding
			// match whose data is still in flight stalls this load
			// (and only this load).
			a := u.ren.Srcs[0]
			ea := program.EffAddr(u.inst, c.vals[a.Class][a.Tag])
			if c.forwardStall(u, ea) != nil {
				continue
			}
		}
		c.issue(u)
		left--
		switch u.inst.Op.FU() {
		case isa.FUALU:
			aluLeft--
		case isa.FULoad:
			loadLeft--
		case isa.FUStore:
			storeLeft--
		}
	}
}

// scanCaptureStoreData performs the STD half of split stores: pending store
// data whose producer has completed is captured into the store queue entry.
func (c *CPU) scanCaptureStoreData() {
	for _, s := range c.sq[c.sqHead:] {
		if s.stDataRdy || !s.issued || s.squashed {
			continue
		}
		a := s.ren.Srcs[1]
		if !s.inst.Srcs[1].Valid() {
			s.stDataRdy = true
			s.out.StoreVal = 0
			continue
		}
		if !c.ready[a.Class][a.Tag] {
			continue
		}
		s.stData = c.vals[a.Class][a.Tag]
		s.out.StoreVal = s.stData
		s.stDataRdy = true
		c.Engine.ConsumerIssued(a, c.cycle)
		c.srcReads++
	}
}

// scanLoadMayIssue enforces conservative memory ordering: a load issues only
// once every older in-flight store has computed its address (so forwarding
// is exact and no memory-order replay machinery is needed).
func (c *CPU) scanLoadMayIssue(u *uop) bool {
	if c.mut == mutSkipOrderingCheck {
		return true
	}
	for _, s := range c.sq[c.sqHead:] {
		if s.seq >= u.seq {
			break
		}
		if !s.issued {
			return false
		}
	}
	return true
}

// scanForwardFrom returns the youngest older store matching ea, if any.
func (c *CPU) scanForwardFrom(u *uop, ea uint64) *uop {
	var match *uop
	for _, s := range c.sq[c.sqHead:] {
		if s.seq >= u.seq {
			break
		}
		if s.eaKnown && s.ea == ea {
			match = s
		}
	}
	return match
}

// scanCompleteStage applies writebacks for uops finishing this cycle, oldest
// first, and performs misprediction recovery for the oldest mispredicting
// control instruction.
func (c *CPU) scanCompleteStage() {
	var done []*uop
	n := 0
	for _, u := range c.inflight {
		if u.squashed {
			continue // drop squashed entries
		}
		if u.doneAt <= c.cycle {
			done = append(done, u)
		} else {
			c.inflight[n] = u
			n++
		}
	}
	c.inflight = c.inflight[:n]
	sort.Slice(done, func(i, j int) bool { return done[i].seq < done[j].seq })

	for _, u := range done {
		if u.squashed {
			continue // squashed by an older recovery this same cycle
		}
		c.writeback(u)
		if u.inst.Op.IsControl() && u.actualNext != u.predNext {
			u.mispredict = true
			c.recoverFrom(u)
		}
	}
}
