package pipeline

import (
	"math/rand"
	"sync"
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// TestSlabChurnGenerationTags hammers the scheduler slab's free-list
// recycling directly: slots are acquired and released in random order for
// many times the slab capacity, and every outstanding schedRef taken
// before a slot's release must dangle (deref -> nil) forever after, no
// matter how many times the slot is reissued. This is the aliasing
// contract the wait lists, ready heaps, wheel slots, and stall lists all
// lean on instead of pointers.
func TestSlabChurnGenerationTags(t *testing.T) {
	const (
		slabCap = 64
		steps   = 100_000
	)
	rng := rand.New(rand.NewSource(0x51AB))
	s := newEvsched(8, slabCap)

	type liveEnt struct {
		u   *uop
		ref schedRef
	}
	var live []liveEnt
	var stale []schedRef
	reissues := make([]int, slabCap)

	for step := 0; step < steps; step++ {
		if len(live) == 0 || (len(live) < slabCap && rng.Intn(2) == 0) {
			u := s.getUop()
			u.seq = uint64(step)
			reissues[u.idx]++
			live = append(live, liveEnt{u, u.ref()})
		} else {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			s.putUop(e.u)
			stale = append(stale, e.ref)
			if len(stale) > 4*slabCap {
				stale = stale[len(stale)-4*slabCap:]
			}
		}
		// Live refs resolve to their own uop; every retained stale ref
		// must dangle even though its slot is likely live again under a
		// newer generation.
		for _, e := range live {
			if got := s.deref(e.ref); got != e.u {
				t.Fatalf("step %d: live ref {idx %d gen %d} resolved to %p, want %p",
					step, e.ref.idx, e.ref.gen, got, e.u)
			}
			if e.u.seq != e.ref.seq {
				t.Fatalf("step %d: slot %d seq clobbered to %d while live (want %d)",
					step, e.ref.idx, e.u.seq, e.ref.seq)
			}
		}
		for _, r := range stale {
			if u := s.deref(r); u != nil {
				t.Fatalf("step %d: stale ref {idx %d gen %d} resolved to live uop seq %d (slot aliased)",
					step, r.idx, r.gen, u.seq)
			}
		}
	}

	recycled := 0
	for _, n := range reissues {
		if n > 1 {
			recycled++
		}
	}
	if recycled < slabCap/2 {
		t.Fatalf("churn too shallow: only %d/%d slots recycled", recycled, slabCap)
	}
	if got := len(s.freeIdx) + len(live); got != slabCap {
		t.Fatalf("free list + live = %d slots, want %d (slot leaked or duplicated)", got, slabCap)
	}
}

// TestSlabChurnUnderFlushLoad drives whole pipelines through flush-heavy
// workloads — the path that recycles uops in bulk mid-flight — on
// concurrent goroutines, then re-checks determinism: each goroutine's
// result must equal the solo reference for its config. Under -race this
// doubles as proof that slab recycling touches no cross-CPU state, the
// property the lockstep batch executor depends on.
func TestSlabChurnUnderFlushLoad(t *testing.T) {
	prog := workload.Micro(5).Generate()
	const instr = 4000
	cfgs := []config.Config{
		config.GoldenCove().WithPhysRegs(48).WithScheme(config.SchemeATR),
		config.GoldenCove().WithPhysRegs(48).WithScheme(config.SchemeCombined),
		config.GoldenCove().WithPhysRegs(64).WithScheme(config.SchemeNonSpecER),
		config.GoldenCove().WithPhysRegs(96).WithScheme(config.SchemeBaseline),
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = NewWithScheduler(cfg, prog, SchedulerEvent).Run(instr)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := cfgs[w%len(cfgs)]
			cpu := NewWithScheduler(cfg, prog, SchedulerEvent)
			res := cpu.Run(instr)
			if res != want[w%len(cfgs)] {
				t.Errorf("goroutine %d: result diverged from solo reference", w)
			}
			if err := cpu.Engine.CheckInvariants(); err != nil {
				t.Errorf("goroutine %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
}
