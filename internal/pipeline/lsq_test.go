package pipeline

import (
	"testing"

	"atr/internal/config"
	"atr/internal/isa"
	"atr/internal/program"
	"atr/internal/workload"
)

// TestStoreDataSplitAllowsLoadMLP verifies the STA/STD split: a store whose
// data depends on a long-latency load must not serialize younger,
// non-conflicting loads. With split stores, the two misses overlap and the
// run takes roughly one memory round trip; without the split it would take
// two.
func TestStoreDataSplitAllowsLoadMLP(t *testing.T) {
	b := program.NewBuilder(1, 2)
	// load A (miss) -> store [X] = A -> load B (different address, miss)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 0)
	b.Load(isa.R1, isa.R0, 0x100000, 64<<20, 0) // cold miss
	b.Store(isa.R0, isa.R1, 0x200000, 4096, 0)  // data depends on load A
	b.Load(isa.R2, isa.R0, 0x300000, 64<<20, 0) // independent cold miss
	b.ALU(isa.R3, isa.R1, isa.R2, 0)
	prog := b.MustBuild()

	cfg := config.GoldenCove()
	res := runAndCompare(t, cfg, prog, 100)
	// Budget: one cold I-cache miss (~260 cycles) plus ONE overlapped data
	// round trip (~260). Serialized loads would need a third trip (~780).
	if res.Cycles > 650 {
		t.Errorf("run took %d cycles; store data dependence is serializing independent loads", res.Cycles)
	}
}

// TestForwardingWaitsForStoreData: a load matching an in-flight store whose
// data is not yet available must wait and then receive the correct value
// (verified via the oracle).
func TestForwardingWaitsForStoreData(t *testing.T) {
	b := program.NewBuilder(3, 4)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 0)
	b.Load(isa.R1, isa.R0, 0x100000, 64<<20, 0) // slow producer of store data
	b.Store(isa.R0, isa.R1, 0x5000, 4096, 0)    // address ready immediately
	b.Load(isa.R2, isa.R0, 0x5000, 4096, 0)     // must forward the slow value
	b.ALU(isa.R3, isa.R2, isa.RegInvalid, 1)
	prog := b.MustBuild()
	runAndCompare(t, config.GoldenCove(), prog, 100)
}

// TestForwardingYoungestOlderStoreWins: two older stores to the same address
// — the load must see the younger one.
func TestForwardingYoungestOlderStoreWins(t *testing.T) {
	b := program.NewBuilder(5, 6)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 0)
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 111)
	b.ALU(isa.R2, isa.RegInvalid, isa.RegInvalid, 222)
	b.Store(isa.R0, isa.R1, 0x6000, 4096, 0)
	b.Store(isa.R0, isa.R2, 0x6000, 4096, 0)
	b.Load(isa.R3, isa.R0, 0x6000, 4096, 0) // must read 222
	prog := b.MustBuild()
	emu := program.NewEmulator(prog)
	emu.Run(100)
	if emu.Regs[isa.R3] != 222 {
		t.Fatalf("oracle sanity: r3 = %d", emu.Regs[isa.R3])
	}
	runAndCompare(t, config.GoldenCove(), prog, 100)
}

// TestWrongPathStoresNeverReachMemory: a store fetched down a mispredicted
// path must not modify committed memory (checked implicitly by the oracle on
// a mispredict-heavy workload with a high store fraction).
func TestWrongPathStoresNeverReachMemory(t *testing.T) {
	p := workload.Micro(55)
	p.StoreFrac = 0.25
	p.BranchBias = 0.55 // heavy mispredicting
	prog := p.Generate()
	res := runAndCompare(t, testConfig(), prog, 15000)
	if res.Mispredicts < 100 {
		t.Fatalf("setup: only %d mispredicts", res.Mispredicts)
	}
}

// runOnBoth runs prog under both schedulers against the emulator and returns
// the two CPUs for white-box inspection.
func runOnBoth(t *testing.T, cfg config.Config, prog *program.Program, n uint64) [2]*CPU {
	t.Helper()
	var cpus [2]*CPU
	for i, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
		emu := program.NewEmulator(prog)
		cpu := NewWithScheduler(cfg, prog, kind)
		cpu.OnCommit = func(got program.Record) {
			want, _ := emu.Step()
			if got != want {
				t.Fatalf("sched %d: commit mismatch:\n got %+v\nwant %+v", kind, got, want)
			}
		}
		cpu.Run(n)
		if err := cpu.Engine.CheckInvariants(); err != nil {
			t.Fatalf("sched %d: %v", kind, err)
		}
		cpus[i] = cpu
	}
	return cpus
}

// commitBlocker emits two dependent divides that stall in-order commit for
// roughly two divide latencies, keeping subsequent stores queued while
// younger loads execute — the window where forwarding must supply values.
func commitBlocker(b *program.Builder, zero isa.Reg) {
	b.Div(isa.R13, zero, zero, 1)
	b.Div(isa.R13, isa.R13, zero, 1)
}

// TestForwardingPartialOverlapWidths: two adjacent 8-byte words in the same
// 64-byte cache line must never forward to each other — the match is on the
// exact effective address, not the line. The same-address load in the same
// window must still forward.
func TestForwardingPartialOverlapWidths(t *testing.T) {
	b := program.NewBuilder(7, 8)
	b.ALU(isa.R9, isa.RegInvalid, isa.RegInvalid, 0)
	commitBlocker(b, isa.R9)
	b.Div(isa.R1, isa.R9, isa.R9, 7)        // slow store data
	b.Store(isa.R9, isa.R1, 0x7000, 0, 0)   // word 0 of the line, data late
	b.Load(isa.R2, isa.R9, 0x7008, 0, 0)    // word 1: distinct EA, same line
	b.ALU(isa.R3, isa.RegInvalid, isa.RegInvalid, 5)
	b.Store(isa.R9, isa.R3, 0x7008, 0, 0)   // word 1 store
	b.Load(isa.R4, isa.R9, 0x7000, 0, 0)    // word 0: must forward 7
	b.Load(isa.R5, isa.R9, 0x7008, 0, 0)    // word 1: must forward 5
	prog := b.MustBuild()
	for _, cpu := range runOnBoth(t, testConfig(), prog, 100) {
		// Exactly two loads may forward: the word-0 and word-1 exact
		// matches. The cross-word load must go to memory — a third forward
		// would mean the match widened beyond the EA.
		if fw := cpu.Stats.Get("lsq.forwards"); fw != 2 {
			t.Errorf("lsq.forwards = %d, want exactly 2 (no cross-word forwarding)", fw)
		}
	}
}

// TestForwardingSameCycleCapture: a store whose data is ready the moment its
// STA issues (plus the degenerate constant store with no data source) must
// capture immediately and forward to a back-to-back load.
func TestForwardingSameCycleCapture(t *testing.T) {
	b := program.NewBuilder(9, 10)
	b.ALU(isa.R9, isa.RegInvalid, isa.RegInvalid, 0)
	commitBlocker(b, isa.R9)
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 42) // data ready long before STA
	b.Store(isa.R9, isa.R1, 0x8000, 0, 0)
	b.Load(isa.R2, isa.R9, 0x8000, 0, 0) // issues the cycle after capture
	b.Store(isa.R9, isa.RegInvalid, 0x8008, 0, 0) // constant store: no STD source
	b.Load(isa.R3, isa.R9, 0x8008, 0, 0) // must forward the constant zero
	prog := b.MustBuild()
	emu := program.NewEmulator(prog)
	emu.Run(100)
	if emu.Regs[isa.R2] != 42 || emu.Regs[isa.R3] != 0 {
		t.Fatalf("oracle sanity: r2=%d r3=%d", emu.Regs[isa.R2], emu.Regs[isa.R3])
	}
	for _, cpu := range runOnBoth(t, testConfig(), prog, 100) {
		if fw := cpu.Stats.Get("lsq.forwards"); fw < 2 {
			t.Errorf("lsq.forwards = %d, want both loads forwarded", fw)
		}
	}
}

// TestForwardingAcrossSquashBoundary: a wrong-path store enters the store
// queue and the forwarding structures, then a branch resolves and squashes
// it. A correct-path load issued after recovery must forward from the older
// correct-path store, never from the squashed one. The wrong path is reached
// deterministically: the TAGE base predictor predicts a cold branch taken,
// and the branch's flag source is a long-latency divide that resolves (not
// taken) only after the wrong-path store has issued.
func TestForwardingAcrossSquashBoundary(t *testing.T) {
	b := program.NewBuilder(11, 12)
	b.ALU(isa.R9, isa.RegInvalid, isa.RegInvalid, 0)
	commitBlocker(b, isa.R9) // holds the correct-path store in the SQ
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 1)
	b.Store(isa.R9, isa.R1, 0x9000, 0, 0) // correct-path store, data ready early
	b.Div(isa.R5, isa.R9, isa.R9, 0)      // branch flags: 0 => not taken, slow
	b.BranchReg(isa.R5, 0, "wrong")       // cold-predicted taken, actually not
	b.Load(isa.R2, isa.R9, 0x9000, 0, 0)  // correct path: must forward 1
	b.ALU(isa.R4, isa.R2, isa.RegInvalid, 0)
	b.Jump("end")
	b.Label("wrong")
	b.ALU(isa.R3, isa.RegInvalid, isa.RegInvalid, 2)
	b.Store(isa.R9, isa.R3, 0x9000, 0, 0) // squashed store to the same EA
	b.Label("end")
	b.Nop()
	prog := b.MustBuild()
	oracle := program.NewEmulator(prog)
	pathLen := uint64(len(oracle.Run(100))) // wrong-path instructions never commit
	if oracle.Regs[isa.R2] != 1 {
		t.Fatalf("oracle sanity: r2=%d, want 1", oracle.Regs[isa.R2])
	}
	for _, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
		emu := program.NewEmulator(prog)
		cpu := NewWithScheduler(testConfig(), prog, kind)
		cpu.OnCommit = func(got program.Record) {
			want, _ := emu.Step()
			if got != want {
				t.Fatalf("sched %d: commit mismatch:\n got %+v\nwant %+v", kind, got, want)
			}
		}
		// Step manually to witness both same-EA stores (correct-path and
		// wrong-path) simultaneously in the SQ — proof the wrong path was
		// fetched and its store entered the forwarding structures before
		// the squash.
		maxSameEA := 0
		for i := 0; i < 800; i++ {
			cpu.step()
			n := 0
			for _, s := range cpu.sq[cpu.sqHead:] {
				if s.eaKnown && s.ea == 0x9000 {
					n++
				}
			}
			if n > maxSameEA {
				maxSameEA = n
			}
		}
		if err := cpu.Engine.CheckInvariants(); err != nil {
			t.Fatalf("sched %d: %v", kind, err)
		}
		if cpu.committed != pathLen {
			t.Fatalf("sched %d: committed %d of %d", kind, cpu.committed, pathLen)
		}
		if cpu.mispredicts == 0 {
			t.Errorf("sched %d: branch did not mispredict; wrong path never fetched", kind)
		}
		if maxSameEA < 2 {
			t.Errorf("sched %d: wrong-path store never coexisted with the correct store (max %d)", kind, maxSameEA)
		}
		if fw := cpu.Stats.Get("lsq.forwards"); fw == 0 {
			t.Errorf("sched %d: load did not forward; squash boundary not exercised", kind)
		}
	}
}

// TestSQFullStall: with a tiny store queue, rename must stall stores rather
// than overflow, occupancy must reach but never exceed the configured size,
// and the commit stream must stay exact.
func TestSQFullStall(t *testing.T) {
	b := program.NewBuilder(13, 14)
	b.ALU(isa.R9, isa.RegInvalid, isa.RegInvalid, 0)
	b.Div(isa.R1, isa.R9, isa.R9, 3) // slow data shared by all stores
	for i := 0; i < 10; i++ {
		b.Store(isa.R9, isa.R1, 0xA000+uint64(8*i), 0, 0)
	}
	b.Load(isa.R2, isa.R9, 0xA000, 0, 0)
	prog := b.MustBuild()
	cfg := testConfig()
	cfg.StoreQueue = 4
	for _, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
		emu := program.NewEmulator(prog)
		cpu := NewWithScheduler(cfg, prog, kind)
		cpu.OnCommit = func(got program.Record) {
			want, _ := emu.Step()
			if got != want {
				t.Fatalf("sched %d: commit mismatch:\n got %+v\nwant %+v", kind, got, want)
			}
		}
		maxOcc := 0
		for i := 0; i < 2000; i++ {
			cpu.step()
			if cpu.sqCount > maxOcc {
				maxOcc = cpu.sqCount
			}
			if cpu.sqCount > 4 {
				t.Fatalf("sched %d cycle %d: SQ occupancy %d exceeds size 4", kind, cpu.cycle, cpu.sqCount)
			}
		}
		if maxOcc != 4 {
			t.Errorf("sched %d: SQ never filled (max occupancy %d); stall path untested", kind, maxOcc)
		}
		if cpu.committed != uint64(prog.Len()) {
			t.Errorf("sched %d: committed %d of %d", kind, cpu.committed, prog.Len())
		}
	}
}

// TestForwardFromYoungestInFlight white-boxes the forwardFrom ordering
// property on both schedulers: with three same-EA stores simultaneously in
// flight, a probe must match the youngest store older than itself — for
// every possible probe age, not just "younger than all".
func TestForwardFromYoungestInFlight(t *testing.T) {
	b := program.NewBuilder(15, 16)
	b.ALU(isa.R9, isa.RegInvalid, isa.RegInvalid, 0)
	commitBlocker(b, isa.R9)
	b.ALU(isa.R1, isa.RegInvalid, isa.RegInvalid, 1)
	b.Store(isa.R9, isa.R1, 0xB000, 0, 0)
	b.Store(isa.R9, isa.R1, 0xB100, 0, 0) // different EA: must never match
	b.ALU(isa.R2, isa.RegInvalid, isa.RegInvalid, 2)
	b.Store(isa.R9, isa.R2, 0xB000, 0, 0)
	b.ALU(isa.R3, isa.RegInvalid, isa.RegInvalid, 3)
	b.Store(isa.R9, isa.R3, 0xB000, 0, 0)
	prog := b.MustBuild()
	for _, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
		cpu := NewWithScheduler(testConfig(), prog, kind)
		// Step until all three same-EA stores are in flight with known
		// addresses (the cold I-cache miss delays the first fetch by a few
		// hundred cycles; the commit blocker then holds them queued).
		var seqs []uint64
		for i := 0; i < 3000 && len(seqs) < 3; i++ {
			cpu.step()
			seqs = seqs[:0]
			for _, s := range cpu.sq[cpu.sqHead:] {
				if s.eaKnown && s.ea == 0xB000 {
					seqs = append(seqs, s.seq)
				}
			}
		}
		if len(seqs) != 3 {
			t.Fatalf("sched %d: %d same-EA stores in flight, want 3 (blocker window too short?)", kind, len(seqs))
		}
		probes := []struct {
			seq  uint64
			want *uop // filled below
		}{
			{seq: seqs[0]},          // older than all: no match
			{seq: seqs[1]},          // between 1st and 2nd: matches 1st
			{seq: seqs[2]},          // between 2nd and 3rd: matches 2nd
			{seq: seqs[2] + 1<<40},  // younger than all: matches 3rd
		}
		wants := []uint64{0, seqs[0], seqs[1], seqs[2]}
		for i, pr := range probes {
			got := cpu.forwardFrom(&uop{seq: pr.seq}, 0xB000)
			if i == 0 {
				if got != nil {
					t.Errorf("sched %d: probe older than all stores matched seq %d", kind, got.seq)
				}
				continue
			}
			if got == nil || got.seq != wants[i] {
				gotSeq := uint64(0)
				if got != nil {
					gotSeq = got.seq
				}
				t.Errorf("sched %d probe %d: forwardFrom matched seq %d, want %d", kind, i, gotSeq, wants[i])
			}
		}
		if got := cpu.forwardFrom(&uop{seq: seqs[2] + 1<<40}, 0xB008); got != nil {
			t.Errorf("sched %d: unmatched EA forwarded from seq %d", kind, got.seq)
		}
	}
}

func TestROBRing(t *testing.T) {
	r := newROB(4)
	if r.len() != 0 || r.full() || r.cap() != 4 {
		t.Fatal("fresh ROB state wrong")
	}
	us := []*uop{{seq: 0}, {seq: 1}, {seq: 2}, {seq: 3}}
	for _, u := range us {
		r.push(u)
	}
	if !r.full() {
		t.Error("should be full")
	}
	if r.at(0).seq != 0 || r.at(3).seq != 3 {
		t.Error("ordering wrong")
	}
	if got := r.popHead(); got.seq != 0 {
		t.Errorf("popHead = %d", got.seq)
	}
	if got := r.popTail(); got.seq != 3 {
		t.Errorf("popTail = %d", got.seq)
	}
	r.push(&uop{seq: 4}) // wraps
	if r.len() != 3 || r.at(2).seq != 4 || r.at(0).seq != 1 {
		t.Error("wraparound wrong")
	}
}

func TestROBPanics(t *testing.T) {
	r := newROB(1)
	r.push(&uop{})
	func() {
		defer func() { recover() }()
		r.push(&uop{})
		t.Error("push to full ROB should panic")
	}()
	r.popHead()
	func() {
		defer func() { recover() }()
		r.popHead()
		t.Error("pop from empty ROB should panic")
	}()
}

// TestEquivalenceManySeeds is the broad-random safety net: many generated
// programs, combined scheme, moderate budget each.
func TestEquivalenceManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for seed := uint64(100); seed < 112; seed++ {
		p := workload.Micro(seed)
		prog := p.Generate()
		cfg := testConfig().WithScheme(config.SchemeCombined).WithPhysRegs(72)
		t.Run(itoa(int(seed)), func(t *testing.T) {
			runAndCompare(t, cfg, prog, 8000)
		})
	}
}

// TestCounterWidthEquivalence: the consumer-counter width changes only
// performance, never architecture.
func TestCounterWidthEquivalence(t *testing.T) {
	prog := workload.Micro(61).Generate()
	for _, bits := range []int{0, 2, 3, 4} {
		cfg := testConfig().WithScheme(config.SchemeCombined)
		cfg.ConsumerCounterBits = bits
		t.Run(itoa(bits), func(t *testing.T) {
			runAndCompare(t, cfg, prog, 12000)
		})
	}
}

// TestMemPrecommitAblation: the conservative precommit variant is
// architecturally identical and strictly less aggressive for ER.
func TestMemPrecommitAblation(t *testing.T) {
	prog := workload.Micro(67).Generate()
	cfg := testConfig().WithScheme(config.SchemeNonSpecER).WithPhysRegs(64)
	cfg.MemPrecommitAtExec = false
	runAndCompare(t, cfg, prog, 12000)

	cons := New(cfg, prog)
	cons.Run(20000)
	cfgA := cfg
	cfgA.MemPrecommitAtExec = true
	aggr := New(cfgA, prog)
	aggr.Run(20000)
	if cons.Engine.Stats.Get("release.er") > aggr.Engine.Stats.Get("release.er") {
		t.Errorf("conservative precommit released more (%d) than aggressive (%d)",
			cons.Engine.Stats.Get("release.er"), aggr.Engine.Stats.Get("release.er"))
	}
}

// TestSQOrderMaintained: the store queue must always be in fetch order with
// no squashed entries after any run.
func TestSQOrderMaintained(t *testing.T) {
	p := workload.Micro(71)
	p.StoreFrac = 0.3
	prog := p.Generate()
	cpu := New(testConfig(), prog)
	cpu.Run(10000)
	last := uint64(0)
	for _, s := range cpu.sq[cpu.sqHead:] {
		if s.squashed {
			t.Fatal("squashed store left in SQ")
		}
		if s.seq < last {
			t.Fatal("SQ out of order")
		}
		last = s.seq
	}
}

// TestEquivalenceMoveElimination: move elimination changes only which
// physical registers hold values, never the values; the committed stream
// must match the oracle under every scheme.
func TestEquivalenceMoveElimination(t *testing.T) {
	p := workload.Micro(81)
	p.MoveFrac = 0.2 // plenty of moves
	prog := p.Generate()
	for _, scheme := range config.Schemes() {
		cfg := testConfig().WithScheme(scheme).WithPhysRegs(64)
		cfg.MoveElimination = true
		t.Run(scheme.String(), func(t *testing.T) {
			cpu := New(cfg, prog)
			emu := program.NewEmulator(prog)
			mismatches := 0
			cpu.OnCommit = func(got program.Record) {
				want, _ := emu.Step()
				if got != want {
					mismatches++
				}
			}
			cpu.Run(15000)
			if mismatches > 0 {
				t.Fatalf("%d mismatches with move elimination", mismatches)
			}
			if cpu.Engine.Stats.Get("rename.moveelim") == 0 {
				t.Error("no moves eliminated")
			}
			if err := cpu.Engine.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMoveEliminationReducesPressure: eliminating moves lowers allocation
// demand and should never slow the machine down at small register files.
func TestMoveEliminationReducesPressure(t *testing.T) {
	p := workload.Micro(83)
	p.MoveFrac = 0.25
	prog := p.Generate()
	cfg := testConfig().WithScheme(config.SchemeBaseline).WithPhysRegs(56)
	off := New(cfg, prog).Run(15000)
	cfg.MoveElimination = true
	on := New(cfg, prog).Run(15000)
	if on.Cycles > off.Cycles+off.Cycles/50 {
		t.Errorf("move elimination slowed the run: %d vs %d cycles", on.Cycles, off.Cycles)
	}
}

// TestEquivalenceCheckpointBudget: with a small checkpoint budget, recovery
// at non-checkpointed branches uses nearest-checkpoint + forward replay
// (§4.2.1); architectural state must be unaffected, under every scheme.
func TestEquivalenceCheckpointBudget(t *testing.T) {
	prog := workload.Micro(91).Generate()
	for _, budget := range []int{1, 4} {
		for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeCombined} {
			cfg := testConfig().WithScheme(scheme).WithPhysRegs(72)
			cfg.CheckpointBudget = budget
			t.Run(scheme.String()+"/"+itoa(budget), func(t *testing.T) {
				res := runAndCompare(t, cfg, prog, 12000)
				if res.Mispredicts == 0 {
					t.Error("need mispredicts to exercise replay recovery")
				}
			})
		}
	}
}

// TestCheckpointBudgetRespected: the outstanding checkpoint count never
// exceeds the budget.
func TestCheckpointBudgetRespected(t *testing.T) {
	prog := workload.Micro(93).Generate()
	cfg := testConfig().WithScheme(config.SchemeATR)
	cfg.CheckpointBudget = 3
	cpu := New(cfg, prog)
	for i := 0; i < 20000; i++ {
		cpu.step()
		if cpu.cpCount > 3 {
			t.Fatalf("cycle %d: %d outstanding checkpoints, budget 3", cpu.cycle, cpu.cpCount)
		}
		if cpu.cpCount < 0 {
			t.Fatalf("cycle %d: negative checkpoint count", cpu.cycle)
		}
	}
}

// TestInvariantsUnderStress steps a maximally-featured configuration
// (combined scheme + move elimination + checkpoint budget + interrupts +
// faults) and checks the engine's free-list invariants continuously, not
// just at the end of the run.
func TestInvariantsUnderStress(t *testing.T) {
	p := workload.Micro(97)
	p.MoveFrac = 0.15
	prog := p.Generate()
	cfg := testConfig().WithScheme(config.SchemeCombined).WithPhysRegs(64)
	cfg.MoveElimination = true
	cfg.CheckpointBudget = 2
	cfg.InterruptMode = config.InterruptFlush
	cfg.InterruptInterval = 700
	cfg.InterruptCost = 30
	cfg.FaultRate = 5
	cpu := New(cfg, prog)
	emu := program.NewEmulator(prog)
	mismatches := 0
	cpu.OnCommit = func(got program.Record) {
		want, _ := emu.Step()
		if got != want {
			mismatches++
		}
	}
	for i := 0; i < 60000; i++ {
		cpu.step()
		if i%64 == 0 {
			if err := cpu.Engine.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cpu.cycle, err)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d oracle mismatches under stress", mismatches)
	}
	if cpu.committed < 1000 {
		t.Fatalf("no forward progress: %d committed", cpu.committed)
	}
}
