package pipeline

import (
	"fmt"
	"testing"

	"atr/internal/memmodel"
	"atr/internal/program"
)

// runLitmus executes one lowered litmus interleaving on the given scheduler
// and returns the reconstructed outcome. It enforces the full differential
// contract along the way: commit stream == emulator record-for-record, the
// whole program commits, and the Checker sees structurally valid records.
func runLitmus(t *testing.T, cpu *CPU, l *memmodel.Lowered) memmodel.Outcome {
	t.Helper()
	emu := program.NewEmulator(l.Prog)
	ck := l.Checker()
	mismatches := 0
	cpu.OnCommit = func(got program.Record) {
		want, _ := emu.Step()
		if got != want && mismatches == 0 {
			t.Errorf("commit mismatch:\n got %+v\nwant %+v", got, want)
		}
		if got != want {
			mismatches++
		}
		ck.Record(got)
	}
	res := cpu.Run(20000)
	if mismatches > 0 {
		t.Fatalf("%d commit-stream mismatches vs emulator", mismatches)
	}
	if res.Committed != uint64(l.Prog.Len()) {
		t.Fatalf("committed %d of %d instructions", res.Committed, l.Prog.Len())
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("checker: %v", err)
	}
	if err := cpu.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return ck.Outcome()
}

// TestLitmusBattery is the table-driven litmus battery: for every shape,
// every interleaving, and both schedulers, the pipeline outcome must equal
// the interleaving's own SC result (exactness — strictly stronger than mere
// membership in the legal set), every outcome must lie in the oracle's SC
// set, SC ⊆ TSO, and the union over interleavings must reproduce the SC set
// exactly (coverage: the lowering explores every legal behavior).
func TestLitmusBattery(t *testing.T) {
	for _, sh := range memmodel.Shapes() {
		sh := sh
		t.Run(sh.Name, func(t *testing.T) {
			t.Parallel()
			sc := sh.Prog.SCOutcomes()
			tso := sh.Prog.TSOOutcomes()
			if !sc.Subset(tso) {
				t.Fatalf("oracle: SC set not a subset of TSO set")
			}
			for _, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
				union := memmodel.OutcomeSet{}
				cnt := sh.Prog.InterleavingCount()
				for n := 0; n < cnt; n++ {
					l, err := memmodel.ProgramFor(fmt.Sprintf("%s#%d", sh.Name, n))
					if err != nil {
						t.Fatal(err)
					}
					cpu := NewWithScheduler(testConfig(), l.Prog, kind)
					got := runLitmus(t, cpu, l)
					if got != l.Expected {
						t.Fatalf("interleaving %d (sched %d): outcome %v, want %v (%s)",
							n, kind, got, l.Expected, sh.About)
					}
					if !sc.Contains(got) {
						t.Fatalf("interleaving %d: outcome %v outside the SC set (%s)",
							n, got, sh.About)
					}
					union.Add(got)
				}
				if !union.Equal(sc) {
					t.Errorf("sched %d: union over %d interleavings has %d outcomes, SC set has %d — lowering does not cover the model",
						kind, cnt, len(union), len(sc))
				}
			}
		})
	}
}

// TestLitmusForwardingActuallyForwards guards the battery's teeth: the
// blocker-equipped forwarding shapes must exercise store-to-load forwarding,
// not just drain stores to memory before each load. Without this the battery
// could pass with forwarding disabled entirely.
func TestLitmusForwardingActuallyForwards(t *testing.T) {
	for _, name := range []string{"fwd-chain", "fwd-youngest", "fwd-slowdata"} {
		l, err := memmodel.ProgramFor(name)
		if err != nil {
			t.Fatal(err)
		}
		cpu := New(testConfig(), l.Prog)
		runLitmus(t, cpu, l)
		if fw := cpu.Stats.Get("lsq.forwards"); fw == 0 {
			t.Errorf("%s: no store-to-load forwards recorded; shape is not stressing the LSQ", name)
		}
	}
}
