package pipeline

import (
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// TestSchemeArchEquivalence is the full differential battery: every one of
// the 23 benchmark profiles, under every release scheme, must commit an
// instruction stream architecturally identical to the in-order emulator.
// TestEquivalenceAllSchemes covers one micro workload densely; this table
// covers the whole benchmark suite — pointer chasers, FP expression trees,
// indirect-heavy interpreters — where scheme-specific release bugs that a
// single workload shape cannot provoke would surface.
func TestSchemeArchEquivalence(t *testing.T) {
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog := p.Generate()
			for _, scheme := range config.Schemes() {
				scheme := scheme
				t.Run(scheme.String(), func(t *testing.T) {
					runAndCompare(t, testConfig().WithScheme(scheme), prog, 2500)
				})
			}
		})
	}
}

// TestLitmusArchEquivalence extends the battery to the litmus profile
// family: the short memory-ordering probes must also commit emulator-exact
// streams under every release scheme — early register release interacting
// with store-to-load forwarding is exactly the cross-feature surface these
// shapes stress.
func TestLitmusArchEquivalence(t *testing.T) {
	for _, p := range workload.LitmusProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog := p.Generate()
			for _, scheme := range config.Schemes() {
				scheme := scheme
				t.Run(scheme.String(), func(t *testing.T) {
					runAndCompare(t, testConfig().WithScheme(scheme), prog, 2500)
				})
			}
		})
	}
}
