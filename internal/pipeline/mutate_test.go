package pipeline

import (
	"fmt"
	"testing"

	"atr/internal/memmodel"
	"atr/internal/program"
)

// litmusMutants enumerates the armed LSQ defects and, for documentation in
// failure messages, the shape designed as each one's kill vector. Detection
// may come from any shape; the designed vector just explains the harness.
var litmusMutants = []struct {
	mut    lsqMutation
	name   string
	vector string
}{
	{mutForwardIgnoreAge, "forward-ignore-age", "fwd-slowaddr-load"},
	{mutForwardOldest, "forward-oldest", "fwd-youngest"},
	{mutForwardWideMatch, "forward-wide-match", "fwd-overlap"},
	{mutSkipOrderingCheck, "skip-ordering-check", "fwd-slowaddr-store"},
	{mutForwardStaleData, "forward-stale-data", "fwd-slowdata"},
}

// litmusDetects runs the full litmus battery with the given mutation armed
// and reports the first interleaving on which any differential check trips:
// commit-stream divergence from the emulator, a structurally invalid record,
// an incomplete run, a deadlock panic, or a final outcome different from the
// interleaving's SC result.
func litmusDetects(mut lsqMutation, kind SchedulerKind) (killer string, detected bool) {
	for _, sh := range memmodel.Shapes() {
		cnt := sh.Prog.InterleavingCount()
		for n := 0; n < cnt; n++ {
			spec := fmt.Sprintf("%s#%d", sh.Name, n)
			l, err := memmodel.ProgramFor(spec)
			if err != nil {
				panic(err)
			}
			if mutantCaughtOn(l, mut, kind) {
				return spec, true
			}
		}
	}
	return "", false
}

func mutantCaughtOn(l *memmodel.Lowered, mut lsqMutation, kind SchedulerKind) (caught bool) {
	cpu := NewWithScheduler(testConfig(), l.Prog, kind)
	cpu.mut = mut
	emu := program.NewEmulator(l.Prog)
	ck := l.Checker()
	diverged := false
	cpu.OnCommit = func(got program.Record) {
		want, _ := emu.Step()
		if got != want {
			diverged = true
		}
		ck.Record(got)
	}
	// A mutant that wedges the machine (e.g. a stall that never resolves)
	// trips the deadlock panic in Run — that counts as detection too.
	defer func() {
		if recover() != nil {
			caught = true
		}
	}()
	res := cpu.Run(20000)
	return diverged ||
		ck.Err() != nil ||
		res.Committed != uint64(l.Prog.Len()) ||
		ck.Outcome() != l.Expected
}

// TestLitmusKillsAllMutants: every deliberately broken LSQ behavior must be
// caught by at least one litmus interleaving, under both schedulers. Zero
// surviving mutants is an acceptance criterion — a battery that cannot fail
// a broken LSQ verifies nothing.
func TestLitmusKillsAllMutants(t *testing.T) {
	for _, m := range litmusMutants {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			for _, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
				killer, detected := litmusDetects(m.mut, kind)
				if !detected {
					t.Errorf("sched %d: mutant %s SURVIVED the full litmus battery (designed vector %s)",
						kind, m.name, m.vector)
					continue
				}
				t.Logf("sched %d: mutant %s killed by %s", kind, m.name, killer)
			}
		})
	}
}

// TestLitmusNoFalsePositives: the unmutated pipeline must pass the exact
// detection predicate the mutants are judged by, so kills cannot come from
// harness noise.
func TestLitmusNoFalsePositives(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedulerEvent, SchedulerScan} {
		if killer, detected := litmusDetects(mutNone, kind); detected {
			t.Fatalf("sched %d: detection predicate trips on the UNMUTATED pipeline at %s", kind, killer)
		}
	}
}

// TestMutantsChangeBehavior guards against vacuous mutations: each designed
// kill vector must produce a *different* outcome (or a structural failure)
// under its mutant than unmutated — i.e. the mutation is live on its vector,
// not dead code that detection would trivially miss.
func TestMutantsChangeBehavior(t *testing.T) {
	for _, m := range litmusMutants {
		l, err := memmodel.ProgramFor(m.vector)
		if err != nil {
			t.Fatal(err)
		}
		if !mutantCaughtOn(l, m.mut, SchedulerEvent) {
			t.Errorf("mutant %s is not even caught by its designed vector %s — wrong vector or dead mutation",
				m.name, m.vector)
		}
	}
}
