package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/workload"
)

// TestTraceCommitCountMatchesResult is the observability layer's core
// contract: the number of non-squashed uop events in the trace equals the
// reported committed-instruction count, and the JSONL stream decodes
// cleanly.
func TestTraceCommitCountMatchesResult(t *testing.T) {
	p, _ := workload.ByName("gcc")
	prog := p.Generate()
	cfg := config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64)
	cpu := New(cfg, prog)
	var jsonl, o3 bytes.Buffer
	tr := obs.NewTracer(&jsonl, &o3)
	cpu.Observe(&obs.Observer{Tracer: tr})
	res := cpu.Run(8000)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	_, commits, releases := tr.Counts()
	if commits != res.Committed {
		t.Errorf("tracer counted %d commits, result says %d", commits, res.Committed)
	}

	var decodedCommits, decodedSquashes, decodedReleases uint64
	err := obs.ReadTrace(&jsonl,
		func(ev obs.UopEvent) {
			if ev.Squashed {
				decodedSquashes++
				return
			}
			decodedCommits++
			// Stage timestamps of a committed uop are monotonic.
			if !(ev.Fetch <= ev.Rename && ev.Rename <= ev.Issue &&
				ev.Issue < ev.Complete && ev.Complete <= ev.Commit) {
				t.Fatalf("non-monotonic stages: %+v", ev)
			}
			if ev.Precommit == 0 || ev.Precommit > ev.Commit {
				t.Fatalf("bad precommit timestamp: %+v", ev)
			}
		},
		func(ev obs.ReleaseEvent) {
			decodedReleases++
			switch ev.Scheme {
			case "atr", "er", "commit", "flush":
			default:
				t.Fatalf("unknown release scheme %q", ev.Scheme)
			}
			switch ev.Region {
			case "atomic", "non-branch", "non-except", "none":
			default:
				t.Fatalf("unknown release region %q", ev.Region)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if decodedCommits != res.Committed {
		t.Errorf("decoded %d commit events, result says %d", decodedCommits, res.Committed)
	}
	if decodedReleases != releases {
		t.Errorf("decoded %d release events, tracer counted %d", decodedReleases, releases)
	}
	// ATR releases happened (combined scheme, tight register file) and
	// made it into the trace.
	if decodedReleases == 0 {
		t.Error("no release events traced")
	}

	// Every uop contributes exactly 7 O3PipeView lines, and retire count
	// matches the uop count.
	o3lines := strings.Split(strings.TrimSpace(o3.String()), "\n")
	total := decodedCommits + decodedSquashes
	if uint64(len(o3lines)) != 7*total {
		t.Errorf("O3PipeView has %d lines, want %d", len(o3lines), 7*total)
	}
	var retires uint64
	for _, l := range o3lines {
		if !strings.HasPrefix(l, "O3PipeView:") {
			t.Fatalf("malformed O3PipeView line %q", l)
		}
		if strings.HasPrefix(l, "O3PipeView:retire:") {
			retires++
		}
	}
	if retires != total {
		t.Errorf("%d retire lines for %d uops", retires, total)
	}
}

// TestTraceDeterministic: two runs of the same seed produce byte-identical
// traces (the tracer adds no nondeterminism).
func TestTraceDeterministic(t *testing.T) {
	run := func() []byte {
		p, _ := workload.ByName("exchange2")
		cpu := New(config.GoldenCove().WithPhysRegs(64), p.Generate())
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf, nil)
		cpu.Observe(&obs.Observer{Tracer: tr})
		cpu.Run(3000)
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("traces differ across identical runs")
	}
}

// TestSamplerIntervalAccounting checks the sampler contract on a real run:
// one sample per full interval (plus one tail sample when the run does not
// end on a boundary), and interval commit deltas summing to the result's
// committed count.
func TestSamplerIntervalAccounting(t *testing.T) {
	const interval = 200
	p, _ := workload.ByName("mcf")
	cpu := New(config.GoldenCove().WithScheme(config.SchemeATR).WithPhysRegs(64), p.Generate())
	s := obs.NewSampler(interval)
	cpu.Observe(&obs.Observer{Sampler: s})
	res := cpu.Run(5000)

	samples := s.Samples()
	want := res.Cycles / interval
	if res.Cycles%interval != 0 {
		want++ // tail interval
	}
	if uint64(len(samples)) != want {
		t.Errorf("got %d samples for %d cycles at interval %d, want %d",
			len(samples), res.Cycles, interval, want)
	}
	var committed, cycles uint64
	for i, m := range samples {
		committed += m.Committed
		cycles += m.Cycles
		if i > 0 && m.Cycle <= samples[i-1].Cycle {
			t.Fatalf("sample cycles not increasing at %d", i)
		}
		if m.ROB < 0 || m.FreeGPR < 0 {
			t.Fatalf("negative occupancy in sample %d: %+v", i, m)
		}
	}
	if committed != res.Committed {
		t.Errorf("interval commits sum to %d, result says %d", committed, res.Committed)
	}
	if cycles != res.Cycles {
		t.Errorf("interval lengths sum to %d cycles, result says %d", cycles, res.Cycles)
	}
}

// TestObserveDetach: attaching then detaching hooks restores the
// zero-overhead path and stops event delivery.
func TestObserveDetach(t *testing.T) {
	p, _ := workload.ByName("exchange2")
	cpu := New(config.GoldenCove().WithPhysRegs(64), p.Generate())
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, nil)
	cpu.Observe(&obs.Observer{Tracer: tr})
	cpu.Run(500)
	_, before, _ := tr.Counts()
	if before == 0 {
		t.Fatal("tracer saw nothing while attached")
	}
	cpu.Observe(nil)
	cpu.Run(1000)
	if _, after, _ := tr.Counts(); after != before {
		t.Errorf("tracer saw %d commits after detach, had %d", after, before)
	}
}

// TestSamplerResultsMatchUntracedRun: observation must not perturb the
// simulation (same cycles, commits, and release counts with hooks on/off).
func TestSamplerResultsMatchUntracedRun(t *testing.T) {
	run := func(observe bool) Result {
		p, _ := workload.ByName("xz")
		cpu := New(config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(64), p.Generate())
		if observe {
			var buf bytes.Buffer
			cpu.Observe(&obs.Observer{
				Tracer:  obs.NewTracer(&buf, nil),
				Sampler: obs.NewSampler(100),
			})
		}
		return cpu.Run(4000)
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("observation perturbed the run:\n  off: %+v\n  on:  %+v", a, b)
	}
}
