package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/program"
	"atr/internal/workload"
)

// runSched executes prog under cfg with the given scheduler implementation
// and returns the run summary, the full counter dump, and a digest of the
// complete JSONL event trace (uop events and release events).
func runSched(cfg config.Config, prog *program.Program, n uint64, kind SchedulerKind) (Result, string, string) {
	h := sha256.New()
	cpu := NewWithScheduler(cfg, prog, kind)
	cpu.Observe(&obs.Observer{Tracer: obs.NewTracer(h, nil)})
	res := cpu.Run(n)
	return res, cpu.Stats.String(), hex.EncodeToString(h.Sum(nil))
}

// compareSchedulers asserts that the event scheduler is bit-identical to the
// reference scan scheduler for one configuration: same Result, same counter
// set (which includes release.atr/er/commit/flush, atr.claims, rename.alloc,
// and lsq.forwards), and the same event trace byte-for-byte.
func compareSchedulers(t *testing.T, name string, cfg config.Config, prog *program.Program, n uint64) {
	t.Helper()
	evRes, evCtr, evDig := runSched(cfg, prog, n, SchedulerEvent)
	scRes, scCtr, scDig := runSched(cfg, prog, n, SchedulerScan)
	if evRes != scRes {
		t.Errorf("%s: Result diverged\n event: %+v\n scan:  %+v", name, evRes, scRes)
	}
	if evCtr != scCtr {
		t.Errorf("%s: counters diverged\n event: %s\n scan:  %s", name, evCtr, scCtr)
	}
	if evDig != scDig {
		t.Errorf("%s: trace digest diverged (event %s != scan %s)", name, evDig, scDig)
	}
}

// TestSchedulerEquivalence is the seed oracle for the event-driven
// scheduler: every benchmark profile, under every release scheme and both
// recovery styles, must produce bit-identical results, counters, and event
// traces with the event scheduler and the reference scan scheduler.
func TestSchedulerEquivalence(t *testing.T) {
	const instrs = 2000
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog := p.Generate()
			for _, scheme := range config.Schemes() {
				for _, walk := range []bool{false, true} {
					cfg := testConfig().WithScheme(scheme)
					cfg.WalkRecovery = walk
					name := scheme.String() + "/checkpoint"
					if walk {
						name = scheme.String() + "/walk"
					}
					compareSchedulers(t, name, cfg, prog, instrs)
				}
			}
		})
	}
}

// TestSchedulerEquivalenceLitmus extends the bit-identity oracle to the
// litmus profile family: forwarding stalls, squashed wrong-path stores, and
// STD capture ordering must be cycle-identical between the event and scan
// schedulers on the memory-ordering probes, not just statistically similar.
func TestSchedulerEquivalenceLitmus(t *testing.T) {
	for _, p := range workload.LitmusProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog := p.Generate()
			for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeCombined} {
				compareSchedulers(t, scheme.String(), testConfig().WithScheme(scheme), prog, 2500)
			}
		})
	}
}

// TestSchedulerEquivalenceInterrupts extends the oracle to asynchronous
// interrupts: the squash (flush mode) and drain paths must unlink squashed
// and drained uops from wait lists, ready queues, and the completion wheel
// exactly as the scan scheduler observes them.
func TestSchedulerEquivalenceInterrupts(t *testing.T) {
	profiles := []string{"perlbench", "mcf", "bwaves", "povray"}
	for _, pname := range profiles {
		p, ok := workload.ByName(pname)
		if !ok {
			t.Fatalf("unknown profile %q", pname)
		}
		p, pname := p, pname
		t.Run(pname, func(t *testing.T) {
			t.Parallel()
			prog := p.Generate()
			for _, mode := range []config.InterruptMode{config.InterruptDrain, config.InterruptFlush} {
				for _, scheme := range config.Schemes() {
					cfg := testConfig().WithScheme(scheme)
					cfg.InterruptMode = mode
					cfg.InterruptInterval = 500
					cfg.InterruptCost = 40
					name := scheme.String() + "/flush"
					if mode == config.InterruptDrain {
						name = scheme.String() + "/drain"
					}
					compareSchedulers(t, name, cfg, prog, 3000)
				}
			}
		})
	}
}

// TestSteadyStateZeroAlloc verifies the tentpole's allocation goal: once
// warm, stepping the event-driven pipeline allocates nothing — uops, wait
// list entries, checkpoints, and lifetime records all recycle through free
// lists.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p, _ := workload.ByName("gcc")
	prog := p.Generate()
	cpu := New(testConfig(), prog)
	for i := 0; i < 250_000; i++ {
		if cpu.robEmptyAndHalted() {
			t.Fatal("program halted during warmup")
		}
		cpu.step()
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 2_000; i++ {
			cpu.step()
		}
	})
	if avg > 1 { // tolerate a stray map-growth rehash, nothing per-cycle
		t.Errorf("steady-state allocations: %.2f per 2000 cycles, want 0", avg)
	}
}
