package pipeline

import (
	"atr/internal/bpred"
	"atr/internal/cache"
	"atr/internal/isa"
	"atr/internal/program"
)

// This file is the pipeline-facing side of checkpoint/restore for sampled
// simulation: priming a freshly built CPU with an architectural checkpoint
// plus warm predictor/cache state, and reading the cumulative counters a
// sampling driver needs to difference window statistics without calling
// Finish (which finalizes the engine and may only run once).

// InstBytes exposes the I-cache footprint of one micro-instruction so
// external drivers can turn a PC into an instruction-fetch address exactly
// the way fetchStage does.
const InstBytes = instBytes

// Restore primes a freshly constructed CPU (no cycles stepped yet) with an
// architectural checkpoint and, optionally, warm predictor and cache state.
// After Restore the CPU simulates forward from the checkpoint as if it had
// been flushed and redirected there: the initial speculative rename table
// still maps every architectural register to its initial physical register,
// so the register file is written through Engine.Lookup. Calling Restore on
// a CPU that has already stepped is a programmer error and panics.
func (c *CPU) Restore(arch *program.ArchState, bp *bpred.State, hs *cache.HierState) {
	c.restoreArch(arch)
	c.Data = arch.NewMemory()
	if bp != nil {
		c.Pred.Restore(bp)
	}
	if hs != nil {
		c.Mem.Restore(hs)
	}
}

// RestoreLive primes a freshly constructed CPU directly from live warm
// structures — the in-process fast path a sampling driver uses once per
// region, where serializing the predictor and cache snapshots (Restore's
// input) would dominate the per-region cost. The caller still owns c.Data:
// RestoreLive leaves it untouched so the driver can install a cloned memory
// image without an intermediate sorted snapshot.
func (c *CPU) RestoreLive(arch *program.ArchState, pred *bpred.Predictor, hier *cache.Hierarchy) {
	c.restoreArch(arch)
	c.Pred.CopyFrom(pred)
	c.Mem.CopyFrom(hier)
}

func (c *CPU) restoreArch(arch *program.ArchState) {
	if c.cycle != 0 || c.committed != 0 || c.seq != 0 {
		panic("pipeline: Restore on a CPU that has already run")
	}
	c.fetchPC = arch.PC
	c.archPC = arch.PC
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		a := c.Engine.Lookup(r)
		c.vals[a.Class][a.Tag] = arch.Regs[r]
		c.ready[a.Class][a.Tag] = true
	}
}

// WindowStats is a cumulative counter snapshot cheap enough to take at
// window boundaries; a sampling driver differences two snapshots to get the
// exact statistics of the instructions committed between them.
type WindowStats struct {
	Cycles       uint64
	Committed    uint64
	Mispredicts  uint64
	Flushes      uint64
	Exceptions   uint64
	Interrupts   uint64
	RenameStalls uint64
	OccupancySum uint64
	CondLookups  uint64
	CondWrong    uint64
	IndLookups   uint64
	IndWrong     uint64
	L1DHits      uint64
	L1DMisses    uint64
}

// WindowStats snapshots the CPU's cumulative counters without finalizing
// anything.
func (c *CPU) WindowStats() WindowStats {
	w := WindowStats{
		Cycles:       c.cycle,
		Committed:    c.committed,
		Mispredicts:  c.mispredicts,
		Flushes:      c.flushes,
		Exceptions:   c.exceptions,
		Interrupts:   c.interrupts,
		RenameStalls: c.renameStall,
		OccupancySum: c.occupancySum,
		L1DHits:      c.Mem.L1D.Hits,
		L1DMisses:    c.Mem.L1D.Misses,
	}
	w.CondLookups, w.CondWrong = c.Pred.CondCounts()
	w.IndLookups, w.IndWrong = c.Pred.IndCounts()
	return w
}

// Halted reports whether the last RunFor slice ended because the program
// halted.
func (c *CPU) Halted() bool { return c.runHalted }
