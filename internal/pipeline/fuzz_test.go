package pipeline

import (
	"testing"

	"atr/internal/config"
	"atr/internal/memmodel"
	"atr/internal/workload"
)

// FuzzSchemeDifferential is the differential fuzz battery for the release
// schemes: it generates a program from arbitrary profile parameters, picks
// a release scheme and register-file size from the input, and requires the
// out-of-order core to commit the exact record stream of the in-order
// oracle. Any unsafe early release — a register freed while a consumer or
// a squashed-path redefinition still needs it — corrupts a value and fails
// the comparison. The target shares FuzzProgramBuild's signature (the
// scheme rides in the spare bits of flags), so corpus files are
// interchangeable across all three fuzz targets.
func FuzzSchemeDifferential(f *testing.F) {
	for i, p := range workload.Profiles() {
		seed, ws, a := workload.FuzzArgs(p)
		// Spread the seed corpus across schemes and RF sizes.
		a[18] |= uint16(i%8) << 3
		f.Add(seed, ws,
			a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8], a[9],
			a[10], a[11], a[12], a[13], a[14], a[15], a[16], a[17], a[18])
	}
	f.Fuzz(func(t *testing.T, seed uint64, ws uint32,
		load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
		branchEvery, regWindow, loops, trip, blockLen, funcs, flags uint16) {

		p := workload.FuzzProfile(seed, ws,
			load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
			branchEvery, regWindow, loops, trip, blockLen, funcs, flags)
		prog := p.Generate()

		schemes := config.Schemes()
		scheme := schemes[int(flags>>3)%len(schemes)]
		physRegs := 96
		if flags&(1<<5) != 0 {
			physRegs = 64
		}
		cfg := config.GoldenCove().WithPhysRegs(physRegs).WithScheme(scheme)

		runAndCompare(t, cfg, prog, 1200)
	})
}

// FuzzLSQDifferential is the memory-model differential fuzzer: two fuzz
// words decode to a bounded two-thread litmus program (every input is valid
// by construction — see memmodel.DecodeFuzzThread), ileave picks one of its
// interleavings, and flags pick scheduler, scheme, and lowering options. The
// lowered single-core program must commit the emulator's exact record
// stream, reconstruct precisely the chosen interleaving's SC outcome, and
// that outcome must lie in the oracle's SC (hence TSO) legal set. The seed
// corpus covers every litmus shape via the exact inverse encoding.
func FuzzLSQDifferential(f *testing.F) {
	for i, sh := range memmodel.Shapes() {
		var w [2]uint64
		for t, th := range sh.Prog.Threads {
			w[t] = memmodel.EncodeFuzzThread(th)
		}
		blk := uint16(0)
		if sh.Blocker {
			blk = 1 << 2
		}
		f.Add(w[0], w[1], uint64(i), blk|uint16(i%4)<<3)
	}
	f.Fuzz(func(t *testing.T, ops0, ops1, ileave uint64, flags uint16) {
		p := memmodel.DecodeFuzzProgram(ops0, ops1)
		if err := p.Validate(); err != nil {
			t.Skip() // only the two-empty-threads input
		}
		seq := p.Interleaving(int(ileave % uint64(p.InterleavingCount())))
		l, err := memmodel.LowerInterleaving(p, seq, flags&(1<<2) != 0)
		if err != nil {
			t.Fatal(err)
		}
		kind := SchedulerEvent
		if flags&1 != 0 {
			kind = SchedulerScan
		}
		schemes := config.Schemes()
		cfg := testConfig().WithScheme(schemes[int(flags>>3)%len(schemes)])
		if flags&2 != 0 {
			cfg = cfg.WithPhysRegs(64)
		}
		cpu := NewWithScheduler(cfg, l.Prog, kind)
		got := runLitmus(t, cpu, l)
		if got != l.Expected {
			t.Fatalf("outcome %v, want interleaving's SC result %v", got, l.Expected)
		}
		if !p.SCOutcomes().Contains(got) {
			t.Fatalf("outcome %v outside the oracle's SC set", got)
		}
	})
}
