package pipeline

import (
	"testing"

	"atr/internal/config"
	"atr/internal/workload"
)

// FuzzSchemeDifferential is the differential fuzz battery for the release
// schemes: it generates a program from arbitrary profile parameters, picks
// a release scheme and register-file size from the input, and requires the
// out-of-order core to commit the exact record stream of the in-order
// oracle. Any unsafe early release — a register freed while a consumer or
// a squashed-path redefinition still needs it — corrupts a value and fails
// the comparison. The target shares FuzzProgramBuild's signature (the
// scheme rides in the spare bits of flags), so corpus files are
// interchangeable across all three fuzz targets.
func FuzzSchemeDifferential(f *testing.F) {
	for i, p := range workload.Profiles() {
		seed, ws, a := workload.FuzzArgs(p)
		// Spread the seed corpus across schemes and RF sizes.
		a[18] |= uint16(i%8) << 3
		f.Add(seed, ws,
			a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8], a[9],
			a[10], a[11], a[12], a[13], a[14], a[15], a[16], a[17], a[18])
	}
	f.Fuzz(func(t *testing.T, seed uint64, ws uint32,
		load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
		branchEvery, regWindow, loops, trip, blockLen, funcs, flags uint16) {

		p := workload.FuzzProfile(seed, ws,
			load, store, mul, div, fp, mov, flagw, callf, stride, bias, onload, fanout,
			branchEvery, regWindow, loops, trip, blockLen, funcs, flags)
		prog := p.Generate()

		schemes := config.Schemes()
		scheme := schemes[int(flags>>3)%len(schemes)]
		physRegs := 96
		if flags&(1<<5) != 0 {
			physRegs = 64
		}
		cfg := config.GoldenCove().WithPhysRegs(physRegs).WithScheme(scheme)

		runAndCompare(t, cfg, prog, 1200)
	})
}
