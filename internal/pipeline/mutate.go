package pipeline

// LSQ mutation harness. A verifier that cannot fail a broken LSQ proves
// nothing, so the test suite deliberately breaks each LSQ invariant behind
// these unexported, test-only switches and asserts the litmus battery
// catches every mutant (mutate_test.go). The field is never set outside
// tests; with mutNone (the zero value) every code path below is bypassed
// and both schedulers remain bit-identical to their unmutated behavior.
//
// The mutations scan the architectural store queue directly rather than the
// active scheduler's search structures, so a single implementation breaks
// both the scan and event schedulers identically.
type lsqMutation int

const (
	mutNone lsqMutation = iota
	// mutForwardIgnoreAge drops the st.seq < load.seq age filter: the load
	// forwards from the youngest matching store overall, even one younger
	// than itself in program order.
	mutForwardIgnoreAge
	// mutForwardOldest returns the oldest matching older store instead of
	// the youngest — stale data when two same-address stores are in flight.
	mutForwardOldest
	// mutForwardWideMatch matches on the 64-byte cache line instead of the
	// exact effective address — forwards across distinct adjacent words.
	mutForwardWideMatch
	// mutSkipOrderingCheck lets loads issue past older stores whose
	// addresses are still unknown (drops the conservative ordering stall
	// that stands in for memory-order squash/replay).
	mutSkipOrderingCheck
	// mutForwardStaleData drops the wait for STD capture: a forwarding load
	// reads the store-queue entry's data slot before the producer wrote it.
	mutForwardStaleData
)

// mutForwardFrom is the mutated store-queue search used by forwardFrom when
// a mutation is armed. It walks the live SQ window (fetch order, so "last
// match wins" is youngest-match semantics) applying the armed defect.
func (c *CPU) mutForwardFrom(u *uop, ea uint64) *uop {
	var match *uop
	for _, s := range c.sq[c.sqHead:] {
		if c.mut != mutForwardIgnoreAge && s.seq >= u.seq {
			break
		}
		if !s.eaKnown {
			continue
		}
		hit := s.ea == ea
		if c.mut == mutForwardWideMatch {
			hit = s.ea&^63 == ea&^63
		}
		if !hit {
			continue
		}
		if c.mut == mutForwardOldest && match != nil {
			continue
		}
		match = s
	}
	return match
}
