package pipeline

// The event-driven scheduler. The scan reference (scan.go) re-walks the
// ROB, the inflight set, and the store queue every cycle, making simulation
// cost O(window × cycles). This file replaces those walks with O(events)
// structures while producing bit-identical simulations (the equivalence is
// enforced against the scan scheduler by TestSchedulerEquivalence):
//
//   - register wakeup lists: rename enqueues a uop on the wait list of each
//     not-yet-ready source ptag; writeback wakes the list into per-FU,
//     seq-ordered ready heaps, so issueStage pops candidates instead of
//     scanning the ROB;
//   - a completion timing wheel: issued uops are bucketed by doneAt modulo
//     the wheel size (far completions park in an overflow list migrated
//     once per wheel revolution), so completeStage pops one bucket instead
//     of filtering and sorting the whole inflight set;
//   - indexed store-queue search: a first-unissued-store cursor makes the
//     loadMayIssue ordering check O(1), and an EA-hashed intrusive chain
//     over issued stores makes forwardFrom O(1) amortized; STD capture is
//     driven off wakeup events instead of a full SQ sweep;
//   - uop slab: every in-flight uop lives in one contiguous fixed-capacity
//     arena; committed and squashed uops recycle through an index free
//     list, so steady-state simulation performs no per-instruction
//     allocation and cross-structure references are pointer-free slab
//     indices the garbage collector never scans.
//
// Squash safety uses lazy invalidation instead of unlink surgery: every
// cross-structure reference is a schedRef carrying the uop's generation at
// registration time, and recycling a uop bumps its generation, so stale
// entries in wait lists, ready heaps, wheel slots, stall lists, or the
// capture queue are recognized and dropped wherever they next surface.
// Processing order inside every stage is ascending seq (heaps pop the
// global minimum; wheel buckets and capture batches sort before firing), so
// the release engine observes the exact event order of the scan scheduler —
// which matters, because free lists are LIFO and release order decides
// which ptag a later rename draws.

import (
	"slices"

	"atr/internal/core"
	"atr/internal/isa"
	"atr/internal/program"
)

const (
	// wheelSize is the completion-wheel horizon in cycles (power of two).
	// Latencies beyond it (MSHR-deferred DRAM fills) park in the overflow
	// list, which is visited once per wheelSize cycles.
	wheelSize = 1024
	wheelMask = wheelSize - 1

	// fwdBuckets sizes the store-forwarding hash (power of two, a few
	// times the store-queue capacity so chains stay short).
	fwdBuckets = 256
	fwdMask    = fwdBuckets - 1
)

// schedRef is a generation-tagged reference to a slab-resident uop. It is
// pointer-free — a slab index plus the uop's generation at registration —
// so the heaps, wheel slots, and stall lists that hold schedRefs are
// invisible to the garbage collector and their writes pay no write barrier.
// seq is copied at registration so ordering never reads recycled memory.
type schedRef struct {
	seq uint64
	idx int32
	gen uint32
}

func (u *uop) ref() schedRef { return schedRef{seq: u.seq, idx: u.idx, gen: u.gen} }

// deref resolves a reference, returning nil if the uop was recycled since
// the reference was taken.
func (s *evsched) deref(r schedRef) *uop {
	u := &s.slab[r.idx]
	if u.gen != r.gen {
		return nil
	}
	return u
}

// waitEnt is one wakeup-list entry: a uop waiting on a physical register.
type waitEnt struct {
	idx  int32
	gen  uint32
	data bool // store STD source (arms capture) rather than an issue gate
}

// readyHeap is a seq-keyed min-heap of issue candidates for one FU kind.
type readyHeap []schedRef

func (h *readyHeap) push(e schedRef) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].seq <= a[i].seq {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

// peek returns the oldest live entry, discarding stale (recycled) tops.
func (h *readyHeap) peek(s *evsched) (schedRef, bool) {
	for len(*h) > 0 {
		if e := (*h)[0]; s.slab[e.idx].gen == e.gen {
			return e, true
		}
		h.pop()
	}
	return schedRef{}, false
}

func (h *readyHeap) pop() schedRef {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = schedRef{}
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && a[l].seq < a[m].seq {
			m = l
		}
		if r < n && a[r].seq < a[m].seq {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// fuIndex maps an op to its ready-heap: 0 = ALU, 1 = load, 2 = store.
func fuIndex(op isa.Op) int {
	switch op.FU() {
	case isa.FULoad:
		return 1
	case isa.FUStore:
		return 2
	default:
		return 0
	}
}

// evsched holds the event-driven scheduler state of one CPU.
type evsched struct {
	// waiters[class][ptag] is the wakeup list of that physical register.
	waiters [isa.NumClasses][][]waitEnt

	// ready holds issue candidates per FU kind (see fuIndex).
	ready [3]readyHeap

	// wheel buckets pending completions by cycle; overflow holds
	// completions beyond the horizon, migrated every wheelSize cycles.
	wheel    [wheelSize][]schedRef
	overflow []schedRef
	pending  int // scheduled completions not yet fired

	// capQ holds issued stores whose STD data became capturable; capBuf
	// is the reusable sort scratch.
	capQ   []schedRef
	capBuf []schedRef

	// doneBuf is the reusable completion-batch scratch.
	doneBuf []schedRef

	// fwd is a fixed-size open hash over issued stores' effective
	// addresses, chained intrusively through uop.fwdNext slab indices
	// (-1 terminates).
	fwd [fwdBuckets]int32

	// sqFirst indexes c.sq at the oldest unissued store (len(c.sq) when
	// every store has issued): the O(1) loadMayIssue cursor.
	sqFirst int

	// slab is the uop arena: one contiguous, fixed-capacity allocation
	// holding every in-flight uop, with freeIdx the index free list. The
	// slab never grows, so *uop pointers into it stay valid for a uop's
	// whole flight; schedRefs address it by index. Capacity is exact —
	// a uop is always in the decode queue or the ROB — so exhaustion is
	// an accounting bug, not a sizing problem.
	slab    []uop
	freeIdx []int32
}

func newEvsched(npregs, slabCap int) *evsched {
	s := &evsched{
		slab:    make([]uop, slabCap),
		freeIdx: make([]int32, slabCap),
	}
	for i := range s.slab {
		s.slab[i].idx = int32(i)
		s.slab[i].fwdNext = -1
		s.freeIdx[i] = int32(slabCap - 1 - i)
	}
	for i := range s.fwd {
		s.fwd[i] = -1
	}
	for cl := range s.waiters {
		s.waiters[cl] = make([][]waitEnt, npregs)
	}
	// Pre-size the wheel buckets from one backing array so steady state is
	// reached without a growth phase re-allocating each slot a few times.
	const slotCap = 8
	backing := make([]schedRef, wheelSize*slotCap)
	for i := range s.wheel {
		s.wheel[i] = backing[i*slotCap : i*slotCap : (i+1)*slotCap][:0]
	}
	return s
}

// getUop returns a zeroed slab uop. The slab index, the generation, and the
// capacity of the per-uop slices survive the reset.
func (s *evsched) getUop() *uop {
	n := len(s.freeIdx) - 1
	if n < 0 {
		panic("pipeline: uop slab exhausted (in-flight uops exceed decode queue + ROB)")
	}
	i := s.freeIdx[n]
	s.freeIdx = s.freeIdx[:n]
	u := &s.slab[i]
	gen := u.gen
	si, sd := u.stallIssue[:0], u.stallData[:0]
	ras := u.pred.Checkpoint.RAS[:0]
	*u = uop{idx: i, gen: gen, fwdNext: -1, stallIssue: si, stallData: sd}
	u.pred.Checkpoint.RAS = ras
	return u
}

// putUop recycles u; bumping the generation invalidates every schedRef and
// waitEnt still pointing at it.
func (s *evsched) putUop(u *uop) {
	u.gen++
	s.freeIdx = append(s.freeIdx, u.idx)
}

func (s *evsched) addWaiter(a core.Alloc, u *uop, data bool) {
	s.waiters[a.Class][a.Tag] = append(s.waiters[a.Class][a.Tag], waitEnt{idx: u.idx, gen: u.gen, data: data})
}

func (s *evsched) pushReady(u *uop) {
	s.ready[fuIndex(u.inst.Op)].push(u.ref())
}

// onRename registers u's not-yet-ready sources on their wakeup lists and
// pushes immediately-ready uops into the ready heaps. A store's STD source
// (slot 1) arms data capture instead of gating issue, mirroring srcsReady.
func (c *CPU) onRename(u *uop) {
	s := c.ev
	for i := 0; i < isa.MaxSrcs; i++ {
		if !u.inst.Srcs[i].Valid() {
			continue
		}
		a := u.ren.Srcs[i]
		if u.isStore() && i == 1 {
			if c.ready[a.Class][a.Tag] {
				u.stSrcRdy = true
			} else {
				s.addWaiter(a, u, true)
			}
			continue
		}
		if !c.ready[a.Class][a.Tag] {
			u.waitCnt++
			s.addWaiter(a, u, false)
		}
	}
	if u.isStore() && !u.inst.Srcs[1].Valid() {
		u.stSrcRdy = true // no STD source: the stored value is constant 0
	}
	if u.waitCnt == 0 {
		s.pushReady(u)
	}
}

// wake drains the wakeup list of a newly written register. A live waiter's
// source ptag can never have been freed and reallocated (the engine's
// consumer counting keeps a register alive while issue is pending), so a
// generation match is the only staleness that can occur.
func (c *CPU) wake(a core.Alloc) {
	s := c.ev
	list := s.waiters[a.Class][a.Tag]
	if len(list) == 0 {
		return
	}
	for _, w := range list {
		u := &s.slab[w.idx]
		if u.gen != w.gen {
			continue // squashed and recycled since registration
		}
		if w.data {
			u.stSrcRdy = true
			if u.issued && !u.stDataRdy {
				s.capQ = append(s.capQ, u.ref())
			}
			continue
		}
		if u.waitCnt--; u.waitCnt == 0 {
			s.pushReady(u)
		}
	}
	s.waiters[a.Class][a.Tag] = list[:0]
}

// schedule buckets u for completion. A doneAt at or before the current
// cycle fires next cycle, exactly when the scan scheduler would first see
// it (its completion phase for this cycle has already run).
func (s *evsched) schedule(u *uop, cycle uint64) {
	at := u.doneAt
	if at <= cycle {
		at = cycle + 1
	}
	if at-cycle < wheelSize {
		s.wheel[at&wheelMask] = append(s.wheel[at&wheelMask], u.ref())
	} else {
		s.overflow = append(s.overflow, u.ref())
	}
	s.pending++
}

// migrate moves overflow completions that now fall inside the wheel horizon
// into their slots; called once per wheel revolution, always before any of
// the migrated slots can fire.
func (s *evsched) migrate(cycle uint64) {
	n := 0
	for _, e := range s.overflow {
		u := s.deref(e)
		if u == nil {
			s.pending--
			continue
		}
		if d := u.doneAt; d-cycle < wheelSize {
			s.wheel[d&wheelMask] = append(s.wheel[d&wheelMask], e)
		} else {
			s.overflow[n] = e
			n++
		}
	}
	clear(s.overflow[n:])
	s.overflow = s.overflow[:n]
}

// onIssue hooks issue for the event scheduler: schedule the completion, and
// for stores advance the unissued cursor, index the address for forwarding,
// wake loads stalled on this address, and arm data capture (next cycle's
// capture phase, matching the scan scheduler's phase order).
func (c *CPU) onIssue(u *uop) {
	s := c.ev
	s.schedule(u, c.cycle)
	if !u.isStore() {
		return
	}
	s.fwdInsert(u)
	for s.sqFirst < len(c.sq) && c.sq[s.sqFirst].issued {
		s.sqFirst++
	}
	for _, r := range u.stallIssue {
		if w := s.deref(r); w != nil {
			s.pushReady(w)
		}
	}
	u.stallIssue = u.stallIssue[:0]
	if u.stSrcRdy {
		s.capQ = append(s.capQ, u.ref())
	}
}

// ------------------------------------------------- store-forwarding index

func fwdIndex(ea uint64) int { return int(program.Mix(ea) & fwdMask) }

func (s *evsched) fwdInsert(u *uop) {
	i := fwdIndex(u.ea)
	u.fwdNext = s.fwd[i]
	s.fwd[i] = u.idx
}

func (s *evsched) fwdRemove(u *uop) {
	i := fwdIndex(u.ea)
	if s.fwd[i] == u.idx {
		s.fwd[i] = u.fwdNext
		u.fwdNext = -1
		return
	}
	for j := s.fwd[i]; j >= 0; j = s.slab[j].fwdNext {
		if p := &s.slab[j]; p.fwdNext == u.idx {
			p.fwdNext = u.fwdNext
			u.fwdNext = -1
			return
		}
	}
}

// fwdLookup returns the youngest store older than seq whose known address
// matches ea. The chain holds exactly the issued, uncommitted, unsquashed
// stores, so this matches the scan scheduler's forwardFrom.
func (s *evsched) fwdLookup(ea uint64, seq uint64) *uop {
	var match *uop
	for j := s.fwd[fwdIndex(ea)]; j >= 0; j = s.slab[j].fwdNext {
		st := &s.slab[j]
		if st.ea == ea && st.seq < seq && (match == nil || st.seq > match.seq) {
			match = st
		}
	}
	return match
}

// ---------------------------------------------------------- event stages

func cmpSeq(a, b schedRef) int {
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// evCompleteStage fires this cycle's wheel bucket: writebacks oldest first,
// then misprediction recovery, exactly like the scan reference.
func (c *CPU) evCompleteStage() {
	s := c.ev
	if c.cycle&wheelMask == 0 {
		s.migrate(c.cycle)
	}
	slot := c.cycle & wheelMask
	bucket := s.wheel[slot]
	if len(bucket) == 0 {
		return
	}
	buf := s.doneBuf[:0]
	for _, e := range bucket {
		s.pending--
		if s.deref(e) != nil {
			buf = append(buf, e)
		}
	}
	s.wheel[slot] = bucket[:0]
	slices.SortFunc(buf, cmpSeq)
	s.doneBuf = buf
	for _, e := range buf {
		u := s.deref(e)
		if u == nil {
			continue // squashed by an older recovery this same cycle
		}
		c.writeback(u)
		if u.inst.Op.IsControl() && u.actualNext != u.predNext {
			u.mispredict = true
			c.recoverFrom(u)
		}
	}
}

// evCaptureStoreData drains the capture queue: issued stores whose STD
// source became ready (or is constant) latch their data oldest first, then
// wake loads stalled on that data.
func (c *CPU) evCaptureStoreData() {
	s := c.ev
	if len(s.capQ) == 0 {
		return
	}
	buf := append(s.capBuf[:0], s.capQ...)
	s.capQ = s.capQ[:0]
	slices.SortFunc(buf, cmpSeq)
	s.capBuf = buf
	for _, e := range buf {
		u := s.deref(e)
		if u == nil || u.stDataRdy {
			continue
		}
		if !u.inst.Srcs[1].Valid() {
			u.stDataRdy = true
			u.out.StoreVal = 0
		} else {
			a := u.ren.Srcs[1]
			u.stData = c.vals[a.Class][a.Tag]
			u.out.StoreVal = u.stData
			u.stDataRdy = true
			c.Engine.ConsumerIssued(a, c.cycle)
			c.srcReads++
		}
		for _, r := range u.stallData {
			if w := s.deref(r); w != nil {
				s.pushReady(w)
			}
		}
		u.stallData = u.stallData[:0]
	}
}

// evLoadBlocker returns the oldest unissued store older than u (whose issue
// u must wait for), or nil when the ordering check passes.
func (c *CPU) evLoadBlocker(u *uop) *uop {
	if c.mut == mutSkipOrderingCheck {
		return nil
	}
	if i := c.ev.sqFirst; i < len(c.sq) {
		if st := c.sq[i]; st.seq < u.seq {
			return st
		}
	}
	return nil
}

// evIssueStage pops ready uops in global seq order, respecting the issue
// width and per-FU port budgets. Loads failing the memory-ordering check
// park on the blocking store's stallIssue list (re-entering the heaps the
// moment that store issues, possibly later this same pass); loads whose
// forwarding match lacks data park on the match's stallData list. Neither
// consumes issue bandwidth, matching the scan scheduler's skip semantics.
func (c *CPU) evIssueStage() {
	s := c.ev
	aluLeft := c.cfg.NumALU
	loadLeft := c.cfg.NumLoadPorts
	storeLeft := c.cfg.NumStorePorts
	for left := c.cfg.IssueWidth; left > 0; {
		kind := -1
		var bestSeq uint64
		if aluLeft > 0 {
			if e, ok := s.ready[0].peek(s); ok {
				kind, bestSeq = 0, e.seq
			}
		}
		if loadLeft > 0 {
			if e, ok := s.ready[1].peek(s); ok && (kind < 0 || e.seq < bestSeq) {
				kind, bestSeq = 1, e.seq
			}
		}
		if storeLeft > 0 {
			if e, ok := s.ready[2].peek(s); ok && (kind < 0 || e.seq < bestSeq) {
				kind, bestSeq = 2, e.seq
			}
		}
		if kind < 0 {
			return
		}
		u := &s.slab[s.ready[kind].pop().idx]
		if kind == 1 {
			if blk := c.evLoadBlocker(u); blk != nil {
				blk.stallIssue = append(blk.stallIssue, u.ref())
				continue
			}
			a := u.ren.Srcs[0]
			ea := program.EffAddr(u.inst, c.vals[a.Class][a.Tag])
			if m := c.forwardStall(u, ea); m != nil {
				m.stallData = append(m.stallData, u.ref())
				continue
			}
		}
		c.issue(u)
		left--
		switch kind {
		case 0:
			aluLeft--
		case 1:
			loadLeft--
		case 2:
			storeLeft--
		}
	}
}
