package pipeline

import (
	"testing"

	"atr/internal/config"
	"atr/internal/program"
	"atr/internal/workload"
)

// TestOracleDivergenceReporting is the debugging entry point used throughout
// development: it runs a short window under the most aggressive release
// configuration and pinpoints the first committed record (if any) that
// diverges from the in-order oracle, dumping release accounting for
// diagnosis. It doubles as a fast regression smoke test.
func TestOracleDivergenceReporting(t *testing.T) {
	prog := workload.Micro(42).Generate()
	cfg := testConfig().WithScheme(config.SchemeCombined).WithPhysRegs(64)
	cfg.MoveElimination = true
	emu := program.NewEmulator(prog)
	cpu := New(cfg, prog)
	var n int
	cpu.OnCommit = func(got program.Record) {
		want, _ := emu.Step()
		if got != want {
			t.Errorf("first divergence at commit %d:\n got %+v\nwant %+v\ninst: %v\nstats:\n%s",
				n, got, want, prog.At(got.PC), cpu.Engine.Stats.String())
			t.FailNow()
		}
		n++
	}
	cpu.Run(5000)
	if n == 0 {
		t.Fatal("nothing committed")
	}
}
