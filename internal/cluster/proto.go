// Package cluster scales the atrd service from one daemon to a fleet: a
// coordinator shards declared sweep grids across registered worker
// daemons and merges their uploaded records into a manifest
// byte-identical to a single-node run.
//
// The parity argument (DESIGN 3.1i) is by construction, not by testing
// alone: run identity is the sweep engine's SHA-256 run key, workers
// execute units through the same exported sweep.ExecuteUnit the engine
// uses, records are deterministic in (profile, config, instr), and the
// final merge is the same sweep.FinalizeManifest call the engine makes —
// so which node ran a unit, how leases moved, and how many times a
// record was uploaded can never change a byte of the result.
package cluster

import (
	"atr/internal/server"
	"atr/internal/sweep"
)

// Wire types of the coordinator's /cluster/v1 worker API. Workers are
// pull-based: they register, heartbeat, poll for unit leases, and upload
// completed records. Everything a worker needs to execute a shard — the
// job spec and the resolved instruction budget — travels in the
// assignment, so workers are stateless between polls.

type registerRequest struct {
	// Name identifies the worker; re-registering an existing name
	// replaces the previous registration (the daemon restarted), and its
	// outstanding leases become stealable.
	Name string `json:"name"`
	// Addr, optional, is the worker's advertised /metrics address,
	// surfaced in the fleet view for operators.
	Addr       string `json:"addr,omitempty"`
	SimWorkers int    `json:"sim_workers,omitempty"`
}

type registerResponse struct {
	Worker string `json:"worker"`
	// HeartbeatMillis is the interval the worker should beat at; the
	// coordinator evicts a worker silent for its heartbeat timeout.
	HeartbeatMillis int64 `json:"heartbeat_millis"`
	LeaseMillis     int64 `json:"lease_millis"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
}

type pollRequest struct {
	Worker string `json:"worker"`
	// Max bounds the units leased by this poll; <= 0 selects the
	// coordinator's default.
	Max int `json:"max,omitempty"`
}

// Assignment is one job's shard of unit leases granted to a worker. Seqs
// index the deterministic sweep.Grid.Units() expansion of Spec — the
// worker re-resolves the grid locally, which must (and, because
// JobSpec.ResolveGrid is pure, does) reproduce the coordinator's unit
// keys exactly.
type Assignment struct {
	Job  string         `json:"job"`
	Spec server.JobSpec `json:"spec"`
	// Instr is the effective per-run budget with the coordinator's
	// default already applied, so workers need no configuration of their
	// own to agree on run identity.
	Instr uint64 `json:"instr"`
	Seqs  []int  `json:"seqs"`
}

type pollResponse struct {
	Assignments []Assignment `json:"assignments,omitempty"`
}

type uploadRequest struct {
	Worker  string         `json:"worker"`
	Job     string         `json:"job"`
	Records []sweep.Record `json:"records,omitempty"`
	// SpecError reports that the worker could not resolve the job's grid
	// (version skew between daemons); the coordinator fails the job
	// rather than letting it starve.
	SpecError string `json:"spec_error,omitempty"`
}

type uploadResponse struct {
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"`
}

// QuotaView is the coordinator's tenant-quota table (GET/PUT
// /cluster/v1/quotas): the default active-job ceiling and per-tenant
// overrides. Tenants are rate-limit client keys (X-ATR-Client, else the
// remote IP).
type QuotaView struct {
	// DefaultMaxActive caps concurrently active jobs per tenant; 0 means
	// unlimited.
	DefaultMaxActive int `json:"default_max_active"`
	// Tenants maps tenant to its override; an entry of 0 is removed
	// (fall back to the default).
	Tenants map[string]int `json:"tenants,omitempty"`
}

type quotaUpdate struct {
	Tenant    string `json:"tenant"`
	MaxActive int    `json:"max_active"`
}
