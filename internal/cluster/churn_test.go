package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"atr/internal/server"
	"atr/internal/sweep"
)

// TestWorkerEvictionOnHeartbeatTimeout proves membership is
// liveness-driven: a worker that stops beating is evicted by the reaper,
// its later heartbeats are refused with 404 (the re-register signal), and
// the fleet view reflects the departure.
func TestWorkerEvictionOnHeartbeatTimeout(t *testing.T) {
	opts := testOptions(t)
	opts.HeartbeatTimeout = 150 * time.Millisecond
	c, hs := newTestCoordinator(t, opts)

	fake := newFakeWorker(t, hs.URL, "mortal")
	if got := len(c.Fleet().Workers); got != 1 {
		t.Fatalf("fleet size %d after register, want 1", got)
	}
	if resp := fake.heartbeat(t); resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat while live: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(c.Fleet().Workers) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker not evicted after heartbeat timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.cm.workersEvicted.Value(); got != 1 {
		t.Fatalf("workersEvicted = %d, want 1", got)
	}
	if resp := fake.heartbeat(t); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("heartbeat after eviction: status %d, want 404", resp.StatusCode)
	}
}

// TestStealBackAfterWorkerDeath is the deterministic steal-back check: a
// worker leases the whole grid, uploads a prefix, and dies silently (the
// SIGKILL shape — no goodbye, no lease release). Eviction reclaims its
// leases, a late-joining worker steals them, and the merged manifest is
// byte-identical — with the dead worker's uploaded records adopted, never
// re-executed.
func TestStealBackAfterWorkerDeath(t *testing.T) {
	opts := testOptions(t)
	opts.HeartbeatTimeout = 200 * time.Millisecond
	opts.LeaseTimeout = time.Hour // steal-back must come from eviction, not lease expiry
	c, hs := newTestCoordinator(t, opts)

	g := sweep.MicroGrid(500)
	total := len(g.Units())
	st := submitSpec(t, hs.URL, server.JobSpec{Kind: "grid", Grid: "micro", Instr: 500})

	dead := newFakeWorker(t, hs.URL, "doomed")
	var leased int
	for _, a := range dead.poll(t, total) {
		// Upload the first three records of the first assignment, then
		// go silent with the rest of the grid still leased.
		if leased == 0 {
			recs := dead.execute(t, a)
			for i := 0; i < 3 && i < len(recs); i++ {
				dead.upload(t, a.Job, recs[i])
			}
		}
		leased += len(a.Seqs)
	}
	if leased != total {
		t.Fatalf("dead worker leased %d units, want the whole grid (%d)", leased, total)
	}
	uploadedAttempts := jobStatus(t, hs.URL, st.ID).Progress.Done
	if uploadedAttempts != 3 {
		t.Fatalf("done after prefix upload = %d, want 3", uploadedAttempts)
	}

	startWorker(t, hs.URL, "rescuer")
	waitState(t, hs.URL, st.ID, server.StateDone, 60*time.Second)

	if got := c.cm.unitsStolen.Value(); got < uint64(total-3) {
		t.Fatalf("unitsStolen = %d, want >= %d (dead worker's outstanding leases)", got, total-3)
	}
	if got := c.cm.workersEvicted.Value(); got != 1 {
		t.Fatalf("workersEvicted = %d, want 1", got)
	}
	got := fetchManifest(t, hs.URL, st.ID)
	if want := offlineManifest(t, g, 0); !bytes.Equal(got, want) {
		t.Fatal("manifest after steal-back differs from single-node run")
	}
}

// TestDuplicateUploadIdempotence uploads every record twice — the wire
// shape of a retried upload or a steal-back race — and proves the
// coordinator discards duplicates without perturbing counts or bytes.
func TestDuplicateUploadIdempotence(t *testing.T) {
	opts := testOptions(t)
	c, hs := newTestCoordinator(t, opts)

	g := sweep.MicroGrid(500)
	total := len(g.Units())
	st := submitSpec(t, hs.URL, server.JobSpec{Kind: "grid", Grid: "micro", Instr: 500})

	fake := newFakeWorker(t, hs.URL, "echo")
	done := 0
	for _, a := range fake.poll(t, total) {
		for _, rec := range fake.execute(t, a) {
			first := fake.upload(t, a.Job, rec)
			if first.Accepted != 1 || first.Duplicate != 0 {
				t.Fatalf("first upload: %+v, want accepted", first)
			}
			second := fake.upload(t, a.Job, rec)
			if second.Accepted != 0 || second.Duplicate != 1 {
				t.Fatalf("second upload: %+v, want duplicate", second)
			}
			done++
		}
	}
	if done != total {
		t.Fatalf("executed %d units, want %d", done, total)
	}
	if got := c.cm.dupUploads.Value(); got < uint64(total) {
		t.Fatalf("dupUploads = %d, want >= %d", got, total)
	}
	final := waitState(t, hs.URL, st.ID, server.StateDone, 10*time.Second)
	if final.Progress.Done != total {
		t.Fatalf("done = %d, want %d (duplicates must not double-count)", final.Progress.Done, total)
	}
	got := fetchManifest(t, hs.URL, st.ID)
	if want := offlineManifest(t, g, 0); !bytes.Equal(got, want) {
		t.Fatal("manifest after duplicate uploads differs from single-node run")
	}

	// A record whose key matches no unit is counted and dropped, not 500ed.
	bogus := sweep.Record{Key: "00000000000000000000000000000000"}
	resp := fake.upload(t, st.ID, bogus)
	if resp.Accepted != 0 {
		t.Fatalf("bogus record accepted: %+v", resp)
	}
}

// TestQuotaExceeded429 exercises the per-tenant active-job quota layered
// on the token-bucket limiter: the tenant at its ceiling gets 429 +
// Retry-After, other tenants are unaffected, and finishing a job frees
// the slot. Quota overrides persist through PUT /cluster/v1/quotas.
func TestQuotaExceeded429(t *testing.T) {
	opts := testOptions(t)
	c, hs := newTestCoordinator(t, opts)

	put := func(tenant string, max int) QuotaView {
		req, _ := http.NewRequest(http.MethodPut, hs.URL+"/cluster/v1/quotas",
			bytes.NewReader([]byte(`{"tenant":"`+tenant+`","max_active":`+itoa(max)+`}`)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quota put: status %d", resp.StatusCode)
		}
		var v QuotaView
		decodeInto(t, resp, &v)
		return v
	}
	v := put("alice", 1)
	if v.Tenants["alice"] != 1 {
		t.Fatalf("quota view %+v, want alice=1", v)
	}

	submitAs := func(tenant string) *http.Response {
		body := []byte(`{"kind":"grid","grid":"micro","instr":500}`)
		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-ATR-Client", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// No workers are registered, so alice's first job stays active.
	first := submitAs("alice")
	var st server.Status
	decodeInto(t, first, &st)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", first.StatusCode)
	}

	second := submitAs("alice")
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over quota: status %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 carries no Retry-After")
	}
	if got := c.cm.quotaRejected.Value(); got != 1 {
		t.Fatalf("quotaRejected = %d, want 1", got)
	}

	// Another tenant is not constrained by alice's quota.
	bob := submitAs("bob")
	bob.Body.Close()
	if bob.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: status %d, want 202", bob.StatusCode)
	}

	// Cancelling alice's job frees her slot.
	del, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	third := submitAs("alice")
	third.Body.Close()
	if third.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after cancel: status %d, want 202", third.StatusCode)
	}

	// Removing the override restores the (unlimited) default.
	v = put("alice", 0)
	if _, ok := v.Tenants["alice"]; ok {
		t.Fatalf("quota view %+v, want alice override removed", v)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	return string(rune('0' + n))
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}
