package cluster

import (
	"time"

	"atr/internal/obs"
	"atr/internal/telemetry"
)

// coordMetrics is the coordinator's instrument set, exposed at
// GET /metrics in Prometheus text exposition. All cluster-specific
// families carry the atr_cluster_ prefix; the shared result-cache
// families reuse the daemon's names so dashboards work unchanged.
type coordMetrics struct {
	reg *telemetry.Registry

	workersRegistered *telemetry.Counter
	workersEvicted    *telemetry.Counter
	heartbeats        *telemetry.Counter

	unitsDispatched *telemetry.Counter
	unitsUploaded   *telemetry.Counter
	unitsStolen     *telemetry.Counter
	unitsFromCache  *telemetry.Counter
	dupUploads      *telemetry.Counter
	badUploads      *telemetry.Counter

	jobsSubmitted *telemetry.Counter
	jobsDone      *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsCancelled *telemetry.Counter
	jobsRecovered *telemetry.Counter

	rateLimited   *telemetry.Counter
	quotaRejected *telemetry.Counter

	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
}

func newCoordMetrics() *coordMetrics {
	reg := telemetry.NewRegistry()
	return &coordMetrics{
		reg:               reg,
		workersRegistered: reg.Counter("atr_cluster_workers_registered_total", "Worker registrations accepted (including re-registrations)."),
		workersEvicted:    reg.Counter("atr_cluster_workers_evicted_total", "Workers evicted after missing heartbeats."),
		heartbeats:        reg.Counter("atr_cluster_heartbeats_total", "Heartbeats received from registered workers."),
		unitsDispatched:   reg.Counter("atr_cluster_units_dispatched_total", "Unit leases granted to polling workers."),
		unitsUploaded:     reg.Counter("atr_cluster_units_uploaded_total", "Run records accepted from workers."),
		unitsStolen:       reg.Counter("atr_cluster_units_stolen_total", "Leases reclaimed from slow or dead workers for steal-back."),
		unitsFromCache:    reg.Counter("atr_cluster_units_from_cache_total", "Grid units satisfied by the content-addressed result cache."),
		dupUploads:        reg.Counter("atr_cluster_duplicate_uploads_total", "Uploads for units already recorded (idempotently discarded)."),
		badUploads:        reg.Counter("atr_cluster_bad_uploads_total", "Uploaded records whose key matches no unit of the job."),
		jobsSubmitted:     reg.Counter("atr_cluster_jobs_submitted_total", "Cluster jobs accepted by the admission path."),
		jobsDone:          reg.Counter("atr_cluster_jobs_done_total", "Cluster jobs that finished with a merged manifest."),
		jobsFailed:        reg.Counter("atr_cluster_jobs_failed_total", "Cluster jobs that ended in a terminal failure."),
		jobsCancelled:     reg.Counter("atr_cluster_jobs_cancelled_total", "Cluster jobs cancelled by a client."),
		jobsRecovered:     reg.Counter("atr_cluster_jobs_recovered_total", "In-flight jobs recovered from the job store at startup."),
		rateLimited:       reg.Counter("atr_rate_limited_total", "Submissions refused with 429 by the token bucket."),
		quotaRejected:     reg.Counter("atr_cluster_quota_rejected_total", "Submissions refused with 429 by a tenant's active-job quota."),
		cacheHits:         reg.Counter("atr_result_cache_hits_total", "Result cache lookups that hit."),
		cacheMisses:       reg.Counter("atr_result_cache_misses_total", "Result cache lookups that missed."),
	}
}

// registerCollectors adds the scrape-time callbacks reading coordinator
// state under its own lock: fleet size, unit accounting, uptime, build.
func (cm *coordMetrics) registerCollectors(c *Coordinator) {
	b := obs.Build()
	cm.reg.GaugeFunc("atr_build_info", "Build identity (value is always 1).",
		func() float64 { return 1 },
		telemetry.Label{Key: "go_version", Value: b.GoVersion},
		telemetry.Label{Key: "revision", Value: b.Revision})
	cm.reg.GaugeFunc("atr_uptime_seconds", "Seconds since coordinator start.",
		func() float64 { return time.Since(c.startedAt).Seconds() })
	cm.reg.GaugeFunc("atr_cluster_workers", "Workers currently registered and live.",
		func() float64 { return float64(len(c.Fleet().Workers)) })
	cm.reg.GaugeFunc("atr_cluster_jobs_active", "Cluster jobs currently executing.",
		func() float64 { return float64(c.Fleet().JobsActive) })
	cm.reg.GaugeFunc("atr_cluster_units_pending", "Units of active jobs awaiting a lease.",
		func() float64 { return float64(c.Fleet().UnitsPending) })
	cm.reg.GaugeFunc("atr_cluster_units_leased", "Units currently under a live worker lease.",
		func() float64 { return float64(c.Fleet().UnitsLeased) })
	cm.reg.GaugeFunc("atr_result_cache_size", "Records resident in the result cache.",
		func() float64 { _, _, size, _ := c.cache.Stats(); return float64(size) })
	cm.reg.GaugeFunc("atr_result_cache_capacity", "Result cache capacity.",
		func() float64 { _, _, _, capacity := c.cache.Stats(); return float64(capacity) })
	cm.reg.GaugeFunc("atr_rate_clients", "Token buckets currently tracked by the rate limiter.",
		func() float64 { return float64(c.limiter.Clients()) })
}

// workerMetrics is the worker daemon's instrument set, served from its
// own /metrics endpoint when the worker advertises an address.
type workerMetrics struct {
	reg *telemetry.Registry

	registrations *telemetry.Counter
	heartbeats    *telemetry.Counter
	polls         *telemetry.Counter
	pollErrors    *telemetry.Counter
	unitsExecuted *telemetry.Counter
	unitsFailed   *telemetry.Counter
	uploads       *telemetry.Counter
	uploadErrors  *telemetry.Counter
	registered    *telemetry.Gauge
}

func newWorkerMetrics(coordinator, name string) *workerMetrics {
	reg := telemetry.NewRegistry()
	wm := &workerMetrics{
		reg:           reg,
		registrations: reg.Counter("atr_worker_registrations_total", "Registrations sent to the coordinator (including re-registrations)."),
		heartbeats:    reg.Counter("atr_worker_heartbeats_total", "Heartbeats delivered to the coordinator."),
		polls:         reg.Counter("atr_worker_polls_total", "Work polls sent to the coordinator."),
		pollErrors:    reg.Counter("atr_worker_poll_errors_total", "Work polls that failed (coordinator unreachable or refused)."),
		unitsExecuted: reg.Counter("atr_worker_units_executed_total", "Grid units executed to completion on this worker."),
		unitsFailed:   reg.Counter("atr_worker_units_failed_total", "Grid units recorded as failed after exhausting retries."),
		uploads:       reg.Counter("atr_worker_uploads_total", "Run records uploaded to the coordinator."),
		uploadErrors:  reg.Counter("atr_worker_upload_errors_total", "Record uploads abandoned after bounded retries."),
		registered:    reg.Gauge("atr_worker_registered", "1 while the worker believes it is registered."),
	}
	b := obs.Build()
	reg.GaugeFunc("atr_build_info", "Build identity (value is always 1).",
		func() float64 { return 1 },
		telemetry.Label{Key: "go_version", Value: b.GoVersion},
		telemetry.Label{Key: "revision", Value: b.Revision})
	reg.GaugeFunc("atr_worker_info", "Worker identity (value is always 1).",
		func() float64 { return 1 },
		telemetry.Label{Key: "name", Value: name},
		telemetry.Label{Key: "coordinator", Value: coordinator})
	return wm
}
