package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"atr/internal/obs"
	"atr/internal/server"
	"atr/internal/sweep"
)

// Options configures a coordinator.
type Options struct {
	// StateDir is the persistent job store: one directory per job holding
	// spec, journal, and manifest, plus the tenant quota table. Required.
	StateDir string

	// DefaultInstr fills in a zero instruction budget on submitted specs.
	DefaultInstr uint64

	// HeartbeatTimeout evicts a worker silent this long; its leases
	// become stealable. <= 0 selects 10s.
	HeartbeatTimeout time.Duration

	// LeaseTimeout reclaims a unit lease not satisfied by an upload in
	// time — the steal-back path for slow-but-alive workers. <= 0
	// selects 60s.
	LeaseTimeout time.Duration

	// PollMax bounds units granted per worker poll. <= 0 selects 64.
	PollMax int

	// Rate/Burst configure the per-tenant submission token bucket
	// (Rate <= 0 disables limiting), sharing semantics with the
	// single-node daemon.
	Rate  float64
	Burst int

	// MaxActive is the default per-tenant active-job quota; 0 is
	// unlimited. Per-tenant overrides are set via PUT /cluster/v1/quotas
	// and persist in the state dir.
	MaxActive int

	// CacheCap bounds the content-addressed result cache (records).
	CacheCap int

	// Logger receives structured coordinator logs; nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 60 * time.Second
	}
	if o.PollMax <= 0 {
		o.PollMax = 64
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Coordinator shards submitted sweep grids across registered worker
// daemons and merges uploaded records into manifests byte-identical to
// single-node runs. It serves the same /v1/jobs API as the single-node
// daemon — atrctl speaks to either without knowing which — plus the
// /cluster/v1 worker and fleet endpoints.
type Coordinator struct {
	opts      Options
	mux       *http.ServeMux
	cache     *server.RunCache
	limiter   *server.Limiter
	cm        *coordMetrics
	logger    *slog.Logger
	startedAt time.Time

	mu      sync.Mutex
	workers map[string]*workerState
	ring    *ring
	jobs    map[string]*cjob
	order   []string       // job IDs in submission order
	active  map[string]int // tenant -> active job count
	quotas  map[string]int // tenant -> max-active override
	nextID  int
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type workerState struct {
	id           string
	addr         string
	simWorkers   int
	registeredAt time.Time
	lastBeat     time.Time
	leased       int
	done         uint64
	failed       uint64
}

// cjob is one cluster job: the resolved grid, per-unit lease state, and
// accepted records. A job is born running (sharding starts at the next
// worker poll) and ends done, failed, or cancelled.
type cjob struct {
	id          string
	tenant      string
	spec        server.JobSpec
	grid        sweep.Grid
	units       []sweep.Unit
	byKey       map[string]int // run key -> seq
	state       []unitState    // by seq
	recs        []*sweep.Record
	done        int
	failed      int
	fromCache   int // units satisfied without dispatch (cache or recovered journal)
	jstate      string
	jerr        string
	submittedAt string
	journal     *os.File
	changed     chan struct{} // closed and replaced on every update
}

type unitState struct {
	leasedTo  string
	leaseExp  time.Time
	stealable bool // previously leased or owner evicted: any poller may take it
}

// persistedJob is the spec.json the job store keeps per job.
type persistedJob struct {
	ID          string         `json:"id"`
	Tenant      string         `json:"tenant,omitempty"`
	SubmittedAt string         `json:"submitted_at"`
	Spec        server.JobSpec `json:"spec"`
}

// persistedStatus is the status.json marking a terminal, manifest-less
// outcome (failed or cancelled) so recovery does not resurrect the job.
type persistedStatus struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// NewCoordinator creates a coordinator, recovering every in-flight job
// from the state dir: specs re-resolve to identical grids, journaled
// successful records are re-adopted (failures re-execute, exactly like an
// engine resume), and incomplete jobs go back to running for the next
// worker poll. A full-fleet restart therefore loses at most records that
// were executing at the moment of the kill.
func NewCoordinator(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.StateDir == "" {
		return nil, fmt.Errorf("cluster: StateDir is required")
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "cluster-jobs"), 0o755); err != nil {
		return nil, err
	}
	cm := newCoordMetrics()
	c := &Coordinator{
		opts:      opts,
		cache:     server.NewRunCache(opts.CacheCap, cm.cacheHits, cm.cacheMisses),
		limiter:   server.NewLimiter(opts.Rate, opts.Burst),
		cm:        cm,
		logger:    opts.Logger,
		startedAt: time.Now(),
		workers:   make(map[string]*workerState),
		ring:      buildRing(nil),
		jobs:      make(map[string]*cjob),
		active:    make(map[string]int),
		quotas:    make(map[string]int),
		stop:      make(chan struct{}),
	}
	if err := c.loadQuotas(); err != nil {
		return nil, err
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	cm.registerCollectors(c)
	c.routes()
	c.wg.Add(1)
	go c.reaper()
	return c, nil
}

// Close stops the coordinator. Active jobs stay persisted in the job
// store; a restarted coordinator recovers them.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	for _, j := range c.jobs {
		if j.journal != nil {
			j.journal.Close()
			j.journal = nil
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// reaper periodically expires leases and evicts silent workers, so
// steal-back happens even while no worker is polling.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	period := c.opts.HeartbeatTimeout
	if c.opts.LeaseTimeout < period {
		period = c.opts.LeaseTimeout
	}
	period /= 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// --- state dir layout ---

func (c *Coordinator) jobDir(id string) string {
	return filepath.Join(c.opts.StateDir, "cluster-jobs", id)
}

func (c *Coordinator) jobFile(id, name string) string {
	return filepath.Join(c.jobDir(id), name)
}

func (c *Coordinator) quotaFile() string {
	return filepath.Join(c.opts.StateDir, "quotas.json")
}

func (c *Coordinator) loadQuotas() error {
	b, err := os.ReadFile(c.quotaFile())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var v QuotaView
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("cluster: quotas.json: %w", err)
	}
	for tenant, max := range v.Tenants {
		if max > 0 {
			c.quotas[tenant] = max
		}
	}
	return nil
}

// saveQuotasLocked persists the quota table atomically. Caller holds c.mu.
func (c *Coordinator) saveQuotasLocked() error {
	v := QuotaView{DefaultMaxActive: c.opts.MaxActive, Tenants: c.quotas}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.quotaFile() + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.quotaFile())
}

// recover scans the job store. Jobs with a manifest are done; a terminal
// status.json keeps its state; anything else re-resolves its grid,
// re-adopts successful journal records, and resumes running.
func (c *Coordinator) recover() error {
	entries, err := os.ReadDir(filepath.Join(c.opts.StateDir, "cluster-jobs"))
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "c")); err == nil && n >= c.nextID {
			c.nextID = n + 1
		}
		b, err := os.ReadFile(c.jobFile(id, "spec.json"))
		if err != nil {
			c.logger.Warn("recover: skipping job without spec", "job", id, "err", err)
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(b, &pj); err != nil {
			c.logger.Warn("recover: unreadable spec", "job", id, "err", err)
			continue
		}
		g, err := pj.Spec.ResolveGrid(c.opts.DefaultInstr)
		if err != nil {
			c.logger.Warn("recover: spec no longer resolves", "job", id, "err", err)
			continue
		}
		j, err := newCjob(id, pj.Tenant, pj.Spec, g)
		if err != nil {
			c.logger.Warn("recover: grid invalid", "job", id, "err", err)
			continue
		}
		j.submittedAt = pj.SubmittedAt

		if _, err := os.Stat(c.jobFile(id, "manifest.json")); err == nil {
			j.jstate = server.StateDone
			j.done = len(j.units)
			c.adoptLocked(j)
			continue
		}
		if b, err := os.ReadFile(c.jobFile(id, "status.json")); err == nil {
			var st persistedStatus
			if json.Unmarshal(b, &st) == nil && st.State != "" {
				j.jstate = st.State
				j.jerr = st.Error
				c.adoptLocked(j)
				continue
			}
		}

		// In-flight: re-adopt the journal's successful records (failures
		// re-execute, matching engine resume semantics), then rewrite a
		// fresh self-contained journal exactly like a resumed sweep does.
		var adopted []sweep.Record
		if f, err := os.Open(c.jobFile(id, "journal.jsonl")); err == nil {
			if jr, err := sweep.LoadJournal(f); err == nil && jr.Grid == g.Name && jr.Instr == g.Instr {
				for key, rec := range jr.Records {
					if rec.Err != "" {
						continue
					}
					if _, ok := j.byKey[key]; ok {
						adopted = append(adopted, rec)
					}
				}
			}
			f.Close()
		}
		if err := c.openJournal(j); err != nil {
			return err
		}
		sort.Slice(adopted, func(a, b int) bool { return adopted[a].Seq < adopted[b].Seq })
		for _, rec := range adopted {
			c.acceptLocked(j, rec, "", true)
		}
		c.adoptLocked(j)
		if j.jstate == server.StateRunning {
			c.active[j.tenant]++
			c.cm.jobsRecovered.Inc()
			c.satisfyFromCacheLocked(j)
			c.maybeFinishLocked(j)
		}
		c.logger.Info("recovered job", "job", id, "state", j.jstate,
			"resumed", j.fromCache, "total", len(j.units))
	}
	return nil
}

// adoptLocked registers a job in the in-memory maps (submission order is
// ID order, which recovery's sorted scan preserves).
func (c *Coordinator) adoptLocked(j *cjob) {
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
}

func newCjob(id, tenant string, spec server.JobSpec, g sweep.Grid) (*cjob, error) {
	units := g.Units()
	if len(units) == 0 {
		return nil, fmt.Errorf("grid %q is empty", g.Name)
	}
	byKey := make(map[string]int, len(units))
	for _, u := range units {
		if prev, dup := byKey[u.Key]; dup {
			return nil, fmt.Errorf("grid %q runs %d and %d share key %s (duplicate unit)", g.Name, prev, u.Seq, u.Key)
		}
		byKey[u.Key] = u.Seq
	}
	return &cjob{
		id: id, tenant: tenant, spec: spec, grid: g,
		units: units, byKey: byKey,
		state:   make([]unitState, len(units)),
		recs:    make([]*sweep.Record, len(units)),
		jstate:  server.StateRunning,
		changed: make(chan struct{}),
	}, nil
}

// openJournal creates (truncating) the job's journal with its binding
// header. Records accepted from workers append to it, so the journal is
// always a complete account of cluster progress and is loadable by
// sweep.LoadJournal / resumable by the engine like any single-node journal.
func (c *Coordinator) openJournal(j *cjob) error {
	if err := os.MkdirAll(c.jobDir(j.id), 0o755); err != nil {
		return err
	}
	f, err := os.Create(c.jobFile(j.id, "journal.jsonl"))
	if err != nil {
		return err
	}
	if err := sweep.AppendJournalHeader(f, j.grid, len(j.units)); err != nil {
		f.Close()
		return err
	}
	j.journal = f
	return nil
}

// --- membership, leases, dispatch ---

// expireLocked advances cluster time: workers silent past the heartbeat
// timeout are evicted (membership is liveness-driven) and leases past the
// lease timeout are reclaimed. Reclaimed units become stealable — the
// first polling worker takes them regardless of ring ownership.
func (c *Coordinator) expireLocked(now time.Time) {
	evicted := false
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) > c.opts.HeartbeatTimeout {
			delete(c.workers, id)
			evicted = true
			c.cm.workersEvicted.Inc()
			c.logger.Warn("worker evicted", "worker", id,
				"silent", now.Sub(w.lastBeat).Round(time.Millisecond).String())
		}
	}
	if evicted {
		c.ring = buildRing(c.workerIDsLocked())
	}
	for _, id := range c.order {
		j := c.jobs[id]
		if j.jstate != server.StateRunning {
			continue
		}
		for seq := range j.state {
			st := &j.state[seq]
			if st.leasedTo == "" || j.recs[seq] != nil {
				continue
			}
			_, alive := c.workers[st.leasedTo]
			if alive && now.Before(st.leaseExp) {
				continue
			}
			c.reclaimLocked(j, seq)
		}
	}
}

// reclaimLocked returns one leased unit to the stealable pool.
func (c *Coordinator) reclaimLocked(j *cjob, seq int) {
	st := &j.state[seq]
	if w, ok := c.workers[st.leasedTo]; ok {
		w.leased--
	}
	st.leasedTo = ""
	st.stealable = true
	c.cm.unitsStolen.Inc()
}

func (c *Coordinator) workerIDsLocked() []string {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// assignLocked grants up to max unit leases to worker w: first the units
// the consistent-hash ring assigns to w, then stealable units any worker
// may take. Jobs are visited in submission order, so earlier jobs drain
// first.
func (c *Coordinator) assignLocked(w *workerState, max int, now time.Time) []Assignment {
	var out []Assignment
	total := 0
	for _, id := range c.order {
		j := c.jobs[id]
		if j.jstate != server.StateRunning || total >= max {
			continue
		}
		var seqs []int
		for seq := range j.units {
			if total >= max {
				break
			}
			if j.recs[seq] != nil {
				continue
			}
			st := &j.state[seq]
			if st.leasedTo != "" {
				continue // live lease; expiry is the reaper's job
			}
			if !st.stealable && c.ring.owner(j.units[seq].Key) != w.id {
				continue
			}
			st.leasedTo = w.id
			st.leaseExp = now.Add(c.opts.LeaseTimeout)
			st.stealable = false
			w.leased++
			seqs = append(seqs, seq)
			total++
		}
		if len(seqs) > 0 {
			out = append(out, Assignment{Job: j.id, Spec: j.spec, Instr: j.grid.Instr, Seqs: seqs})
			c.cm.unitsDispatched.Add(uint64(len(seqs)))
		}
	}
	return out
}

// satisfyFromCacheLocked finishes every unit of j the content-addressed
// cache already holds — cluster-wide dedup before any dispatch. Identical
// units submitted by any tenant are paid for once per fleet.
func (c *Coordinator) satisfyFromCacheLocked(j *cjob) {
	for _, u := range j.units {
		if j.recs[u.Seq] != nil {
			continue
		}
		if rec, ok := c.cache.Get(u.Key, j.grid.Instr); ok {
			c.acceptLocked(j, rec, "", true)
		}
	}
}

// acceptLocked installs one record for j, normalizing identity fields
// from the unit exactly as an engine resume does, journaling it, and
// feeding the cache. Duplicate records — a steal-back losing the race
// with the original owner's late upload, or a retried upload — are
// discarded idempotently: records are deterministic, so the copies are
// interchangeable and first-write-wins cannot change bytes. Returns false
// for a duplicate.
func (c *Coordinator) acceptLocked(j *cjob, rec sweep.Record, node string, resumed bool) bool {
	seq, ok := j.byKey[rec.Key]
	if !ok {
		c.cm.badUploads.Inc()
		return false
	}
	u := j.units[seq]
	rec.Seq, rec.Bench, rec.Scheme, rec.PhysRegs = u.Seq, u.Profile.Name, u.Config.Scheme.String(), u.Config.PhysRegs
	rec.Sample = u.Sample
	if j.recs[seq] != nil {
		c.cm.dupUploads.Inc()
		return false
	}
	r := rec
	j.recs[seq] = &r
	st := &j.state[seq]
	if w, ok := c.workers[st.leasedTo]; ok {
		w.leased--
	}
	st.leasedTo = ""
	st.stealable = false
	if rec.Err == "" {
		j.done++
	} else {
		j.failed++
	}
	if resumed {
		j.fromCache++
		c.cm.unitsFromCache.Inc()
	}
	if j.journal != nil {
		if err := sweep.AppendJournalRecord(j.journal, rec, -1, node); err != nil {
			c.logger.Error("journal write failed", "job", j.id, "err", err)
		}
	}
	c.cache.Put(rec.Key, j.grid.Instr, rec)
	j.bumpLocked()
	return true
}

// bumpLocked wakes event-stream watchers.
func (j *cjob) bumpLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// maybeFinishLocked merges and persists the manifest once every unit has
// a record. The merge is sweep.FinalizeManifest — the engine's own merge
// path — over records in grid order, then an atomic tmp+rename write, so
// a served manifest is always complete bytes.
func (c *Coordinator) maybeFinishLocked(j *cjob) {
	if j.jstate != server.StateRunning || j.done+j.failed < len(j.units) {
		return
	}
	runs := make([]sweep.Record, len(j.recs))
	for i, r := range j.recs {
		runs[i] = *r
	}
	m, err := sweep.FinalizeManifest(j.grid, runs)
	if err != nil {
		c.failLocked(j, "merge: "+err.Error())
		return
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		c.failLocked(j, "encode: "+err.Error())
		return
	}
	tmp := c.jobFile(j.id, "manifest.json.tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		c.failLocked(j, err.Error())
		return
	}
	if err := os.Rename(tmp, c.jobFile(j.id, "manifest.json")); err != nil {
		c.failLocked(j, err.Error())
		return
	}
	c.finishLocked(j, server.StateDone, "")
	c.cm.jobsDone.Inc()
	c.logger.Info("job done", "job", j.id, "done", j.done, "failed", j.failed)
}

// failLocked marks a job failed and persists the terminal status.
func (c *Coordinator) failLocked(j *cjob, msg string) {
	c.finishLocked(j, server.StateFailed, msg)
	c.cm.jobsFailed.Inc()
	b, _ := json.Marshal(persistedStatus{State: server.StateFailed, Error: msg})
	_ = os.WriteFile(c.jobFile(j.id, "status.json"), append(b, '\n'), 0o644)
	c.logger.Error("job failed", "job", j.id, "err", msg)
}

// finishLocked performs the terminal transition shared by done, failed,
// and cancelled: release leases, close the journal, decrement the
// tenant's active count, wake watchers.
func (c *Coordinator) finishLocked(j *cjob, state, msg string) {
	if j.jstate != server.StateRunning {
		return
	}
	for seq := range j.state {
		if j.state[seq].leasedTo != "" {
			if w, ok := c.workers[j.state[seq].leasedTo]; ok {
				w.leased--
			}
			j.state[seq].leasedTo = ""
		}
	}
	if j.journal != nil {
		j.journal.Close()
		j.journal = nil
	}
	j.jstate = state
	j.jerr = msg
	if c.active[j.tenant] > 0 {
		c.active[j.tenant]--
	}
	j.bumpLocked()
}

// quotaLocked resolves the effective active-job ceiling for a tenant.
func (c *Coordinator) quotaLocked(tenant string) int {
	if max, ok := c.quotas[tenant]; ok {
		return max
	}
	return c.opts.MaxActive
}

// statusLocked renders the job in the single-node API's Status shape, so
// atrctl's watch/wait/status work against a coordinator unchanged.
func (c *Coordinator) statusLocked(j *cjob) server.Status {
	return server.Status{
		ID: j.id, State: j.jstate, Spec: j.spec, Grid: j.grid.Name,
		Total: len(j.units), Error: j.jerr,
		Progress: obs.SweepProgress{
			Done: j.done, Failed: j.failed, Resumed: j.fromCache, Total: len(j.units),
		},
		SubmittedAt: j.submittedAt,
	}
}

// Fleet snapshots the cluster view: registered workers and unit
// accounting across active jobs.
func (c *Coordinator) Fleet() obs.ClusterInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	info := obs.ClusterInfo{Workers: make([]obs.ClusterWorker, 0, len(c.workers))}
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		info.Workers = append(info.Workers, obs.ClusterWorker{
			ID: w.id, Addr: w.addr, SimWorkers: w.simWorkers,
			AliveSeconds:    now.Sub(w.registeredAt).Seconds(),
			LastBeatSeconds: now.Sub(w.lastBeat).Seconds(),
			Leased:          w.leased, Done: w.done, Failed: w.failed,
		})
	}
	for _, id := range c.order {
		j := c.jobs[id]
		if j.jstate != server.StateRunning {
			continue
		}
		info.JobsActive++
		info.UnitsDone += j.done + j.failed
		for seq := range j.state {
			if j.recs[seq] != nil {
				continue
			}
			if j.state[seq].leasedTo != "" {
				info.UnitsLeased++
			} else {
				info.UnitsPending++
			}
		}
	}
	return info
}
