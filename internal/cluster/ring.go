package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is how many virtual nodes each worker contributes to the
// consistent-hash ring. 64 points per worker keeps the assignment spread
// within a few percent of even for small fleets while staying cheap to
// rebuild on membership change.
const ringVnodes = 64

// ring is a consistent-hash ring over worker IDs. Run keys hash onto the
// ring and are owned by the first virtual node clockwise; adding or
// removing one worker only moves the keys adjacent to its points, so a
// membership change re-shards O(1/N) of a grid instead of all of it.
//
// Ownership is an affinity policy, not a correctness property: any worker
// may execute any unit (records are deterministic), and stealable units —
// expired leases, evicted owners — are granted to whichever worker polls
// first. The ring only decides who is offered a unit first.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// buildRing constructs the ring for the given worker IDs. Deterministic in
// the ID set: two coordinators with the same membership agree on ownership.
func buildRing(ids []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*ringVnodes)}
	for _, id := range ids {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// owner returns the worker owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}
