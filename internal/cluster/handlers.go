package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"atr/internal/server"
)

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func (c *Coordinator) routes() {
	c.mux = http.NewServeMux()
	// Client API: the same /v1 surface the single-node daemon serves.
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs", c.handleList)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	c.mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	c.mux.HandleFunc("GET /v1/jobs/{id}/manifest", c.handleManifest)
	// Worker API.
	c.mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	c.mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /cluster/v1/poll", c.handlePoll)
	c.mux.HandleFunc("POST /cluster/v1/results", c.handleResults)
	// Fleet API.
	c.mux.HandleFunc("GET /cluster/v1/workers", c.handleWorkers)
	c.mux.HandleFunc("GET /cluster/v1/quotas", c.handleQuotasGet)
	c.mux.HandleFunc("PUT /cluster/v1/quotas", c.handleQuotasPut)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	return json.NewDecoder(body).Decode(v)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
}

// handleMetrics negotiates like the single-node daemon: Prometheus text
// by default, a JSON fleet snapshot when the client asks for it (atrctl
// metrics does).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, c.Fleet())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = c.cm.reg.WriteText(w)
}

// --- client API ---

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := server.ClientKey(r)
	if ok, retry := c.limiter.Allow(tenant, time.Now()); !ok {
		c.cm.rateLimited.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "rate limit exceeded"})
		return
	}
	var spec server.JobSpec
	if err := decodeBody(w, r, &spec, 1<<20); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	g, err := spec.ResolveGrid(c.opts.DefaultInstr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "coordinator is draining"})
		return
	}
	if max := c.quotaLocked(tenant); max > 0 && c.active[tenant] >= max {
		activeNow := c.active[tenant]
		c.cm.quotaRejected.Inc()
		c.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			apiError{Error: fmt.Sprintf("tenant %q has %d active jobs (quota %d)", tenant, activeNow, max)})
		return
	}
	id := fmt.Sprintf("c%06d", c.nextID)
	j, err := newCjob(id, tenant, spec, g)
	if err != nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	c.nextID++
	j.submittedAt = time.Now().UTC().Format(time.RFC3339Nano)
	if err := c.persistSubmitLocked(j); err != nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "job store: " + err.Error()})
		return
	}
	c.adoptLocked(j)
	c.active[tenant]++
	c.cm.jobsSubmitted.Inc()
	c.satisfyFromCacheLocked(j)
	c.maybeFinishLocked(j)
	st := c.statusLocked(j)
	c.mu.Unlock()
	c.logger.Info("job submitted", "job", id, "tenant", tenant, "grid", g.Name, "total", st.Total)

	if r.URL.Query().Get("watch") != "1" {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	if spec.Ephemeral {
		// The submitting connection owns the job: a disconnect cancels it.
		go func() {
			<-r.Context().Done()
			c.cancel(j)
		}()
	}
	c.streamEvents(w, r, j)
}

// persistSubmitLocked writes the job-store entry and opens the journal.
func (c *Coordinator) persistSubmitLocked(j *cjob) error {
	if err := os.MkdirAll(c.jobDir(j.id), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(persistedJob{
		ID: j.id, Tenant: j.tenant, SubmittedAt: j.submittedAt, Spec: j.spec,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.jobFile(j.id, "spec.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}
	return c.openJournal(j)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]server.Status, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(c.jobs[id]))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) lookup(w http.ResponseWriter, r *http.Request) (*cjob, bool) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job " + r.PathValue("id")})
	}
	return j, ok
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	st := c.statusLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(w, r)
	if !ok {
		return
	}
	c.cancel(j)
	c.mu.Lock()
	st := c.statusLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) cancel(j *cjob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j.jstate != server.StateRunning {
		return
	}
	c.finishLocked(j, server.StateCancelled, "cancelled")
	c.cm.jobsCancelled.Inc()
	b, _ := json.Marshal(persistedStatus{State: server.StateCancelled, Error: "cancelled"})
	_ = os.WriteFile(c.jobFile(j.id, "status.json"), append(b, '\n'), 0o644)
	c.logger.Info("job cancelled", "job", j.id)
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	if j, ok := c.lookup(w, r); ok {
		c.streamEvents(w, r, j)
	}
}

// streamEvents writes the job's event feed in the single-node daemon's
// NDJSON/SSE format until the job reaches a terminal state or the client
// goes away. The coordinator publishes a progress event on every accepted
// record (coalesced under load: watchers wake per change notification and
// read current counts).
func (c *Coordinator) streamEvents(w http.ResponseWriter, r *http.Request, j *cjob) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeEvent := func(ev server.Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	c.mu.Lock()
	st := c.statusLocked(j)
	changed := j.changed
	c.mu.Unlock()
	if !writeEvent(server.Event{Type: "status", Job: j.id, State: st.State, Error: st.Error}) {
		return
	}
	for {
		if terminalState(st.State) {
			writeEvent(server.Event{Type: "status", Job: j.id, State: st.State, Error: st.Error})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
		c.mu.Lock()
		st = c.statusLocked(j)
		changed = j.changed
		c.mu.Unlock()
		p := st.Progress
		if !writeEvent(server.Event{Type: "progress", Job: j.id, Progress: &p}) {
			return
		}
	}
}

func terminalState(state string) bool {
	switch state {
	case server.StateDone, server.StateFailed, server.StateCancelled, server.StateInterrupted:
		return true
	}
	return false
}

// handleManifest serves the merged manifest: the exact bytes written at
// job completion. Comparing this response against an offline atrsweep
// -out file via cmp is the subsystem's acceptance check.
func (c *Coordinator) handleManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	state := j.jstate
	c.mu.Unlock()
	if state != server.StateDone {
		writeJSON(w, http.StatusConflict, apiError{Error: "manifest not available", State: state})
		return
	}
	f, err := os.Open(c.jobFile(j.id, "manifest.json"))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// --- worker API ---

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(w, r, &req, 1<<16); err != nil || req.Name == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad registration"})
		return
	}
	now := time.Now()
	c.mu.Lock()
	if prev, ok := c.workers[req.Name]; ok {
		// A restarted daemon re-registering: its old leases are orphaned,
		// so hand them to the stealable pool immediately.
		for _, id := range c.order {
			j := c.jobs[id]
			if j.jstate != server.StateRunning {
				continue
			}
			for seq := range j.state {
				if j.state[seq].leasedTo == prev.id && j.recs[seq] == nil {
					c.reclaimLocked(j, seq)
				}
			}
		}
		delete(c.workers, prev.id)
	}
	c.workers[req.Name] = &workerState{
		id: req.Name, addr: req.Addr, simWorkers: req.SimWorkers,
		registeredAt: now, lastBeat: now,
	}
	c.ring = buildRing(c.workerIDsLocked())
	c.cm.workersRegistered.Inc()
	c.mu.Unlock()
	c.logger.Info("worker registered", "worker", req.Name, "addr", req.Addr)
	writeJSON(w, http.StatusOK, registerResponse{
		Worker:          req.Name,
		HeartbeatMillis: (c.opts.HeartbeatTimeout / 3).Milliseconds(),
		LeaseMillis:     c.opts.LeaseTimeout.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := decodeBody(w, r, &req, 1<<16); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad heartbeat"})
		return
	}
	c.mu.Lock()
	wk, ok := c.workers[req.Worker]
	if ok {
		wk.lastBeat = time.Now()
		c.cm.heartbeats.Inc()
	}
	c.mu.Unlock()
	if !ok {
		// Evicted (or the coordinator restarted): the worker re-registers.
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown worker " + req.Worker})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req pollRequest
	if err := decodeBody(w, r, &req, 1<<16); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad poll"})
		return
	}
	max := req.Max
	if max <= 0 || max > c.opts.PollMax {
		max = c.opts.PollMax
	}
	now := time.Now()
	c.mu.Lock()
	wk, ok := c.workers[req.Worker]
	if !ok {
		c.mu.Unlock()
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown worker " + req.Worker})
		return
	}
	wk.lastBeat = now
	c.expireLocked(now)
	out := c.assignLocked(wk, max, now)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, pollResponse{Assignments: out})
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var req uploadRequest
	if err := decodeBody(w, r, &req, 64<<20); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad upload"})
		return
	}
	c.mu.Lock()
	if wk, ok := c.workers[req.Worker]; ok {
		wk.lastBeat = time.Now()
	}
	j, ok := c.jobs[req.Job]
	if !ok {
		c.mu.Unlock()
		// Unknown job: tell the worker to drop the records (the job store
		// is authoritative; nothing to resume them into).
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job " + req.Job})
		return
	}
	if req.SpecError != "" && j.jstate == server.StateRunning {
		c.failLocked(j, "worker "+req.Worker+" cannot resolve spec: "+req.SpecError)
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, uploadResponse{})
		return
	}
	resp := uploadResponse{}
	for _, rec := range req.Records {
		if j.jstate != server.StateRunning {
			// Late upload for a finished/cancelled job: keep the dedup
			// value (feed the cache), discard the rest.
			c.cache.Put(rec.Key, j.grid.Instr, rec)
			resp.Duplicate++
			c.cm.dupUploads.Inc()
			continue
		}
		if c.acceptLocked(j, rec, req.Worker, false) {
			resp.Accepted++
			c.cm.unitsUploaded.Inc()
			if wk, ok := c.workers[req.Worker]; ok {
				if rec.Err == "" {
					wk.done++
				} else {
					wk.failed++
				}
			}
		} else {
			resp.Duplicate++
		}
	}
	c.maybeFinishLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// --- fleet API ---

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.expireLocked(time.Now())
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, c.Fleet())
}

func (c *Coordinator) handleQuotasGet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	v := QuotaView{DefaultMaxActive: c.opts.MaxActive, Tenants: make(map[string]int, len(c.quotas))}
	for tenant, max := range c.quotas {
		v.Tenants[tenant] = max
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleQuotasPut(w http.ResponseWriter, r *http.Request) {
	var upd quotaUpdate
	if err := decodeBody(w, r, &upd, 1<<16); err != nil || upd.Tenant == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad quota update (want {tenant, max_active})"})
		return
	}
	if upd.MaxActive < 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "max_active must be >= 0 (0 removes the override)"})
		return
	}
	c.mu.Lock()
	if upd.MaxActive == 0 {
		delete(c.quotas, upd.Tenant)
	} else {
		c.quotas[upd.Tenant] = upd.MaxActive
	}
	err := c.saveQuotasLocked()
	v := QuotaView{DefaultMaxActive: c.opts.MaxActive, Tenants: make(map[string]int, len(c.quotas))}
	for tenant, max := range c.quotas {
		v.Tenants[tenant] = max
	}
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "persist quotas: " + err.Error()})
		return
	}
	c.logger.Info("quota updated", "tenant", upd.Tenant, "max_active", upd.MaxActive)
	writeJSON(w, http.StatusOK, v)
}
