package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"atr/internal/checkpoint"
	"atr/internal/experiments"
	"atr/internal/pipeline"
	"atr/internal/sweep"
)

// WorkerOptions configures a worker daemon.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	// Required.
	Coordinator string

	// Name identifies this worker to the coordinator; it should be
	// stable across restarts so re-registration replaces the old
	// membership entry. Required.
	Name string

	// Addr, optional, is the advertised address of this worker's own
	// /metrics endpoint, surfaced in the fleet view.
	Addr string

	// SimWorkers bounds concurrent unit executions; <= 0 selects
	// GOMAXPROCS.
	SimWorkers int

	// Retries/Backoff are the per-unit retry budget, identical in
	// semantics to the sweep engine's options (sweep.ExecuteUnit runs
	// both).
	Retries int
	Backoff time.Duration

	// PollInterval is the idle sleep between empty polls. <= 0 selects
	// 250ms.
	PollInterval time.Duration

	// PollMax bounds units requested per poll; <= 0 lets the coordinator
	// decide.
	PollMax int

	// Logger receives structured worker logs; nil discards them.
	Logger *slog.Logger
}

// Worker is the execution half of the cluster: it registers with a
// coordinator, heartbeats, polls for unit leases, executes them with the
// sweep engine's own per-unit path over a shared program cache, and
// uploads each record promptly (prompt upload is what makes the
// coordinator's journal a live account of cluster progress). Workers hold
// no durable state: a killed worker loses only in-flight units, which the
// coordinator's lease expiry hands to the rest of the fleet.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	runner *experiments.Runner
	pool   *sweep.Pool
	wm     *workerMetrics
	logger *slog.Logger

	mu         sync.Mutex
	registered bool
	hbInterval time.Duration
}

// NewWorker creates a worker daemon.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.SimWorkers <= 0 {
		opts.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 250 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Worker{
		opts:   opts,
		client: &http.Client{Timeout: 30 * time.Second},
		// The runner is used only for its shared program cache (one
		// immutable image per profile across all assignments); result
		// dedup is the coordinator's job, through the content-addressed
		// cache.
		runner: experiments.NewRunner(0),
		pool:   sweep.NewPool(opts.SimWorkers),
		wm:     newWorkerMetrics(opts.Coordinator, opts.Name),
		logger: opts.Logger,
	}
}

// Handler serves the worker's own observability surface: /healthz and
// /metrics (atr_worker_* families).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, "{\"status\":\"ok\",\"role\":\"worker\",\"name\":%q}\n", w.opts.Name)
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = w.wm.reg.WriteText(rw)
	})
	return mux
}

// Run registers with the coordinator and executes assigned shards until
// ctx is cancelled. Transient coordinator unavailability — restarts,
// evictions — is absorbed by re-registration; Run only returns on ctx
// cancellation.
func (w *Worker) Run(ctx context.Context) error {
	if w.opts.Coordinator == "" || w.opts.Name == "" {
		return fmt.Errorf("cluster: worker needs Coordinator and Name")
	}
	if err := w.registerUntil(ctx); err != nil {
		return err
	}

	hbCtx, cancelHB := context.WithCancel(ctx)
	defer cancelHB()
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer hbDone.Wait()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		assignments, err := w.poll(ctx)
		if err != nil {
			w.wm.pollErrors.Inc()
			if isUnknown(err) {
				w.setRegistered(false)
				if err := w.registerUntil(ctx); err != nil {
					return err
				}
				continue
			}
			w.logger.Debug("poll failed", "err", err)
			if !sleepCtx(ctx, w.opts.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		if len(assignments) == 0 {
			if !sleepCtx(ctx, w.opts.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		for _, a := range assignments {
			w.execute(ctx, a)
		}
	}
}

func (w *Worker) setRegistered(ok bool) {
	w.mu.Lock()
	w.registered = ok
	w.mu.Unlock()
	if ok {
		w.wm.registered.Set(1)
	} else {
		w.wm.registered.Set(0)
	}
}

// registerUntil registers with backoff until success or ctx cancellation.
func (w *Worker) registerUntil(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		if err := w.register(ctx); err == nil {
			return nil
		} else {
			w.logger.Debug("register failed", "err", err)
		}
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	var resp registerResponse
	err := w.post(ctx, "/cluster/v1/register", registerRequest{
		Name: w.opts.Name, Addr: w.opts.Addr, SimWorkers: w.opts.SimWorkers,
	}, &resp)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.hbInterval = time.Duration(resp.HeartbeatMillis) * time.Millisecond
	if w.hbInterval <= 0 {
		w.hbInterval = 3 * time.Second
	}
	w.mu.Unlock()
	w.setRegistered(true)
	w.wm.registrations.Inc()
	w.logger.Info("registered", "coordinator", w.opts.Coordinator, "heartbeat", w.hbInterval.String())
	return nil
}

// heartbeatLoop beats at the coordinator-announced interval for as long
// as the worker runs — including while the main loop is deep in a long
// execution, which is exactly when liveness matters. An unknown-worker
// response (coordinator restarted or evicted us) triggers immediate
// re-registration so outstanding uploads are attributed again.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		interval := w.hbInterval
		w.mu.Unlock()
		if interval <= 0 {
			interval = 3 * time.Second
		}
		if !sleepCtx(ctx, interval) {
			return
		}
		var out map[string]string
		err := w.post(ctx, "/cluster/v1/heartbeat", heartbeatRequest{Worker: w.opts.Name}, &out)
		switch {
		case err == nil:
			w.wm.heartbeats.Inc()
		case isUnknown(err):
			w.setRegistered(false)
			if err := w.register(ctx); err != nil {
				w.logger.Debug("re-register after heartbeat 404 failed", "err", err)
			}
		default:
			w.logger.Debug("heartbeat failed", "err", err)
		}
	}
}

func (w *Worker) poll(ctx context.Context) ([]Assignment, error) {
	w.wm.polls.Inc()
	var resp pollResponse
	if err := w.post(ctx, "/cluster/v1/poll", pollRequest{Worker: w.opts.Name, Max: w.opts.PollMax}, &resp); err != nil {
		return nil, err
	}
	return resp.Assignments, nil
}

// execute runs one assignment's units on the worker pool, uploading each
// record as it completes. Every unit goes through sweep.ExecuteUnit — the
// engine's own retry/panic-isolation path — with the spec's fault
// injection applied by grid position, so a cluster-executed unit fails
// (or succeeds) with byte-identical records to a single-node run.
func (w *Worker) execute(ctx context.Context, a Assignment) {
	g, err := a.Spec.ResolveGrid(a.Instr)
	if err != nil {
		w.logger.Error("cannot resolve assigned spec", "job", a.Job, "err", err)
		w.upload(ctx, uploadRequest{Worker: w.opts.Name, Job: a.Job, SpecError: err.Error()})
		return
	}
	units := g.Units()
	sel := make([]sweep.Unit, 0, len(a.Seqs))
	for _, seq := range a.Seqs {
		if seq < 0 || seq >= len(units) {
			w.upload(ctx, uploadRequest{
				Worker: w.opts.Name, Job: a.Job,
				SpecError: fmt.Sprintf("assigned seq %d outside grid of %d units", seq, len(units)),
			})
			return
		}
		sel = append(sel, units[seq])
	}
	fn := w.runFunc(g.Instr)
	if a.Spec.InjectPanic > 0 {
		fn = sweep.InjectPanicRun(fn, a.Spec.InjectPanic)
	}
	_ = w.pool.ForEach(ctx, len(sel), func(_, i int) {
		u := sel[i]
		rec := sweep.ExecuteUnit(ctx, u, fn, w.opts.Retries, w.opts.Backoff, nil)
		if ctx.Err() != nil && rec.Err != "" {
			// Shutdown mid-retry: drop the incomplete record; the lease
			// expires and another worker re-executes the unit.
			return
		}
		w.wm.unitsExecuted.Inc()
		if rec.Err != "" {
			w.wm.unitsFailed.Inc()
		}
		w.upload(ctx, uploadRequest{Worker: w.opts.Name, Job: a.Job, Records: []sweep.Record{rec}})
	})
}

// runFunc mirrors the serving daemon's RunFunc: identical simulation
// semantics to offline sweep.Sim with program images shared through an
// experiments.Runner.
func (w *Worker) runFunc(instr uint64) sweep.RunFunc {
	return func(ctx context.Context, u sweep.Unit) (pipeline.Result, error) {
		if err := u.Config.Validate(); err != nil {
			return pipeline.Result{}, err
		}
		prog := w.runner.Program(u.Profile)
		if u.Sample != "" {
			plan, err := checkpoint.ParseMode(u.Sample)
			if err != nil {
				return pipeline.Result{}, err
			}
			return checkpoint.Run(u.Config, prog, pipeline.SchedulerEvent, instr, plan).Result, nil
		}
		return pipeline.NewWithScheduler(u.Config, prog, pipeline.SchedulerEvent).Run(instr), nil
	}
}

// upload delivers records with bounded retry. A drop after retries is
// safe — the coordinator's lease expires and the unit re-executes
// elsewhere, producing the identical record — so the worker never blocks
// forever on a dead coordinator. A 404 (job or worker gone) drops
// immediately.
func (w *Worker) upload(ctx context.Context, req uploadRequest) {
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var resp uploadResponse
		err := w.post(ctx, "/cluster/v1/results", req, &resp)
		if err == nil {
			w.wm.uploads.Add(uint64(len(req.Records)))
			return
		}
		if isUnknown(err) || attempt >= 4 || ctx.Err() != nil {
			w.wm.uploadErrors.Inc()
			w.logger.Warn("upload dropped", "job", req.Job, "records", len(req.Records), "err", err)
			return
		}
		if !sleepCtx(ctx, backoff) {
			return
		}
		backoff *= 2
	}
}

// statusError is a non-2xx coordinator response.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return fmt.Sprintf("coordinator: %d: %s", e.code, e.msg) }

func isUnknown(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.code == http.StatusNotFound
}

func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae apiError
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ae)
		return &statusError{code: resp.StatusCode, msg: ae.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or until ctx is done; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
