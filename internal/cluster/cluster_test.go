package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atr/internal/pipeline"
	"atr/internal/server"
	"atr/internal/sweep"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		StateDir:         t.TempDir(),
		DefaultInstr:     2000,
		HeartbeatTimeout: 400 * time.Millisecond,
		LeaseTimeout:     500 * time.Millisecond,
	}
}

func newTestCoordinator(t *testing.T, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	hs := httptest.NewServer(c)
	t.Cleanup(func() { hs.Close(); c.Close() })
	return c, hs
}

// startWorker runs a worker daemon against the coordinator URL and
// returns its kill switch.
func startWorker(t *testing.T, url, name string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(WorkerOptions{
		Coordinator: url, Name: name,
		SimWorkers: 2, PollInterval: 10 * time.Millisecond,
	})
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return cancel
}

// offlineManifest renders the reference bytes: a plain single-node engine
// run of the same grid.
func offlineManifest(t *testing.T, g sweep.Grid, injectPanic int) []byte {
	t.Helper()
	eng := sweep.New(sweep.Options{Workers: 4, InjectPanic: injectPanic})
	m, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("offline execute: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("offline encode: %v", err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, in, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", url, body, err)
		}
	}
	return resp
}

func submitSpec(t *testing.T, base string, spec server.JobSpec) server.Status {
	t.Helper()
	var st server.Status
	resp := postJSON(t, base+"/v1/jobs", spec, &st)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return st
}

func jobStatus(t *testing.T, base, id string) server.Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st
}

func waitState(t *testing.T, base, id, want string, timeout time.Duration) server.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := jobStatus(t, base, id)
		if st.State == want {
			return st
		}
		if terminalState(st.State) {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (progress %+v), want %q", id, st.State, st.Progress, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchManifest(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/manifest")
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestClusterManifestMatchesSingleNode is the subsystem's headline proof:
// a fig10 grid sharded across three worker daemons — one SIGKILLed
// mid-flight, its leases stolen back — merges to the byte-identical
// manifest a single-node engine run produces.
func TestClusterManifestMatchesSingleNode(t *testing.T) {
	opts := testOptions(t)
	_, hs := newTestCoordinator(t, opts)

	startWorker(t, hs.URL, "w1")
	startWorker(t, hs.URL, "w2")
	killW3 := startWorker(t, hs.URL, "w3")

	g := sweep.Fig10Grid(300)
	st := submitSpec(t, hs.URL, server.JobSpec{Kind: "grid", Grid: "fig10", Instr: 300})
	if st.Total != len(g.Units()) {
		t.Fatalf("job total %d, want %d", st.Total, len(g.Units()))
	}

	// Kill one worker mid-grid: wait for real progress first so w3 has
	// executed and holds leases, then cut its context. In-flight uploads
	// die with it; the coordinator evicts it on heartbeat timeout and the
	// survivors steal its units back.
	deadline := time.Now().Add(30 * time.Second)
	for {
		p := jobStatus(t, hs.URL, st.ID).Progress
		if p.Done+p.Failed >= 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", p)
		}
		time.Sleep(5 * time.Millisecond)
	}
	killW3()

	final := waitState(t, hs.URL, st.ID, server.StateDone, 60*time.Second)
	if final.Progress.Done != len(g.Units()) {
		t.Fatalf("done %d, want %d", final.Progress.Done, len(g.Units()))
	}
	got := fetchManifest(t, hs.URL, st.ID)
	want := offlineManifest(t, g, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster manifest differs from single-node run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestClusterInjectPanicParity proves failure records cross the cluster
// unchanged: a poisoned unit executed on a worker daemon is recorded —
// attempts, error text, empty result — exactly as the engine records it,
// so even a failing grid merges byte-identically.
func TestClusterInjectPanicParity(t *testing.T) {
	opts := testOptions(t)
	_, hs := newTestCoordinator(t, opts)
	startWorker(t, hs.URL, "w1")

	g := sweep.MicroGrid(500)
	st := submitSpec(t, hs.URL, server.JobSpec{Kind: "grid", Grid: "micro", Instr: 500, InjectPanic: 5})
	final := waitState(t, hs.URL, st.ID, server.StateDone, 60*time.Second)
	if final.Progress.Failed != 1 {
		t.Fatalf("failed %d, want exactly the poisoned unit", final.Progress.Failed)
	}
	got := fetchManifest(t, hs.URL, st.ID)
	want := offlineManifest(t, g, 5)
	if !bytes.Equal(got, want) {
		t.Fatal("cluster manifest with injected fault differs from single-node run")
	}
	var m *sweep.Manifest
	var err error
	if m, err = sweep.DecodeManifest(bytes.NewReader(got)); err != nil {
		t.Fatalf("served manifest invalid: %v", err)
	}
	if !strings.Contains(m.Runs[4].Err, "injected fault") {
		t.Fatalf("run 5 error = %q, want injected fault", m.Runs[4].Err)
	}
}

// TestCoordinatorRestartRecovers kills the whole control plane mid-grid
// and proves the persistent job store carries it: a new coordinator on
// the same state dir re-adopts journaled records (never re-executing
// them), workers re-register on their own, and the finished manifest is
// byte-identical to a single-node run.
func TestCoordinatorRestartRecovers(t *testing.T) {
	opts := testOptions(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lis.Addr().String()

	coordA, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	srvA := &http.Server{Handler: coordA}
	go srvA.Serve(lis)

	// Submit with no live workers, then hand-execute a prefix of the grid
	// through the wire protocol so the journal holds real cluster records
	// at kill time.
	g := sweep.MicroGrid(500)
	st := submitSpec(t, base, server.JobSpec{Kind: "grid", Grid: "micro", Instr: 500})
	fake := newFakeWorker(t, base, "fake")
	asn := fake.poll(t, 6)
	executed := 0
	for _, a := range asn {
		for _, rec := range fake.execute(t, a) {
			fake.upload(t, a.Job, rec)
			executed++
		}
	}
	if executed == 0 {
		t.Fatal("fake worker leased no units")
	}

	// Full-fleet kill: HTTP server down, coordinator closed.
	srvA.Close()
	coordA.Close()

	coordB, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer coordB.Close()
	if got := coordB.cm.jobsRecovered.Value(); got != 1 {
		t.Fatalf("jobs recovered = %d, want 1", got)
	}

	// Rebind the same address so workers' configured coordinator URL
	// stays valid across the restart.
	var lis2 net.Listener
	for i := 0; i < 100; i++ {
		lis2, err = net.Listen("tcp", lis.Addr().String())
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	srvB := &http.Server{Handler: coordB}
	go srvB.Serve(lis2)
	defer srvB.Close()

	stB := jobStatus(t, base, st.ID)
	if stB.State != server.StateRunning {
		t.Fatalf("recovered job state %q, want running", stB.State)
	}
	if stB.Progress.Resumed != executed || stB.Progress.Done != executed {
		t.Fatalf("recovered progress %+v, want %d resumed and done", stB.Progress, executed)
	}

	startWorker(t, base, "w1")
	startWorker(t, base, "w2")
	waitState(t, base, st.ID, server.StateDone, 60*time.Second)

	got := fetchManifest(t, base, st.ID)
	if want := offlineManifest(t, g, 0); !bytes.Equal(got, want) {
		t.Fatal("post-restart cluster manifest differs from single-node run")
	}
}

// TestRingOwnershipStability checks the consistent-hash properties the
// sharding policy relies on: every worker owns a share of a real grid,
// and removing one worker moves only the keys it owned.
func TestRingOwnershipStability(t *testing.T) {
	ids := []string{"w1", "w2", "w3"}
	r3 := buildRing(ids)
	units := sweep.Fig10Grid(0).Units()
	own := make(map[string]int)
	before := make(map[string]string, len(units))
	for _, u := range units {
		o := r3.owner(u.Key)
		own[o]++
		before[u.Key] = o
	}
	for _, id := range ids {
		if own[id] == 0 {
			t.Fatalf("worker %s owns no units of fig10: %v", id, own)
		}
	}
	r2 := buildRing([]string{"w1", "w3"})
	for _, u := range units {
		o := r2.owner(u.Key)
		if before[u.Key] != "w2" && o != before[u.Key] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", u.Key, before[u.Key], o)
		}
		if o == "w2" {
			t.Fatalf("key %s still owned by removed worker", u.Key)
		}
	}
	if buildRing(nil).owner("anything") != "" {
		t.Fatal("empty ring must own nothing")
	}
}

// --- fake worker: drives the wire protocol by hand for deterministic
// churn tests ---

type fakeWorker struct {
	base string
	name string
}

func newFakeWorker(t *testing.T, base, name string) *fakeWorker {
	t.Helper()
	f := &fakeWorker{base: base, name: name}
	var resp registerResponse
	r := postJSON(t, base+"/cluster/v1/register", registerRequest{Name: name}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fake register: status %d", r.StatusCode)
	}
	return f
}

func (f *fakeWorker) heartbeat(t *testing.T) *http.Response {
	t.Helper()
	return postJSON(t, f.base+"/cluster/v1/heartbeat", heartbeatRequest{Worker: f.name}, nil)
}

func (f *fakeWorker) poll(t *testing.T, max int) []Assignment {
	t.Helper()
	var resp pollResponse
	r := postJSON(t, f.base+"/cluster/v1/poll", pollRequest{Worker: f.name, Max: max}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fake poll: status %d", r.StatusCode)
	}
	return resp.Assignments
}

// execute runs the assignment's units locally through the engine's own
// per-unit path — the same code a real worker calls.
func (f *fakeWorker) execute(t *testing.T, a Assignment) []sweep.Record {
	t.Helper()
	g, err := a.Spec.ResolveGrid(a.Instr)
	if err != nil {
		t.Fatalf("fake resolve: %v", err)
	}
	units := g.Units()
	fn := sweep.SimScheduler(pipeline.SchedulerEvent, g.Instr)
	var recs []sweep.Record
	for _, seq := range a.Seqs {
		recs = append(recs, sweep.ExecuteUnit(context.Background(), units[seq], fn, 0, 0, nil))
	}
	return recs
}

func (f *fakeWorker) upload(t *testing.T, job string, recs ...sweep.Record) uploadResponse {
	t.Helper()
	var resp uploadResponse
	r := postJSON(t, f.base+"/cluster/v1/results", uploadRequest{Worker: f.name, Job: job, Records: recs}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fake upload: status %d", r.StatusCode)
	}
	return resp
}
