// Package server is atrd's serving layer: a long-running HTTP daemon that
// accepts simulation and sweep jobs, executes them on the sweep engine's
// work-stealing pool, and streams progress as NDJSON/SSE.
//
// The correctness contract of the whole subsystem is manifest parity: the
// manifest served for any grid is byte-identical to what offline atrsweep
// produces for the same grid. Everything the daemon adds — the bounded job
// queue, per-client rate limiting, the content-addressed result cache,
// graceful drain and restart resume — is built from mechanisms that the
// sweep engine already proves deterministic (run keys, journals, resume
// merge), so serving infrastructure cannot perturb a byte of a result.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"atr/internal/batch"
	"atr/internal/checkpoint"
	"atr/internal/config"
	"atr/internal/experiments"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/sweep"
	"atr/internal/telemetry"
)

// Options configures a daemon.
type Options struct {
	// StateDir holds per-job specs, journals, and manifests. It is the
	// daemon's durable memory: a restarted daemon resumes every
	// incomplete non-ephemeral job found here.
	StateDir string

	// DefaultInstr is the per-run instruction budget applied to specs
	// that leave Instr zero (0 selects 40000).
	DefaultInstr uint64

	// SimWorkers bounds each job's simulation pool (<= 0 selects
	// GOMAXPROCS); JobWorkers bounds how many jobs execute concurrently
	// (<= 0 selects 2).
	SimWorkers int
	JobWorkers int

	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are refused with 429 + Retry-After
	// (<= 0 selects 64).
	QueueDepth int

	// Rate and Burst shape the per-client submission token bucket
	// (Rate 0 selects 5/sec; negative disables limiting; Burst <= 0
	// selects 10).
	Rate  float64
	Burst int

	// CacheCap bounds the content-addressed run-record cache (<= 0
	// selects 65536 records).
	CacheCap int

	// RunnerCacheCap bounds the shared experiments.Runner program cache
	// (<= 0 selects its default).
	RunnerCacheCap int

	// Retries and Backoff are passed to each job's sweep engine.
	Retries int
	Backoff time.Duration

	// Logger receives the daemon's structured request and job-lifecycle
	// log (slog). nil discards — the daemon never falls back to the
	// process-global logger, so tests stay quiet by default.
	Logger *slog.Logger
}

// Server is the daemon. It implements http.Handler.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	runner  *experiments.Runner // shared across jobs: program cache
	cache   *RunCache
	limiter *Limiter
	tm      *serverMetrics // all counters/gauges/histograms; Metrics() is a view
	logger  *slog.Logger

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	qmu     sync.Mutex
	qcond   *sync.Cond
	pending []*Job
	closed  bool

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	nextID    int
	startedAt time.Time

	// beforeRun, when non-nil, is called by a worker after a job enters
	// the running state and before its engine starts. Tests use it to
	// hold jobs in flight deterministically; read and written under mu
	// (tests that swap it mid-flight use setBeforeRun).
	beforeRun func(*Job)
}

// setBeforeRun swaps the test hook under the same lock runJob reads it.
func (s *Server) setBeforeRun(fn func(*Job)) {
	s.mu.Lock()
	s.beforeRun = fn
	s.mu.Unlock()
}

// persistedJob is the on-disk spec record binding an ID to its submission.
type persistedJob struct {
	ID          string  `json:"id"`
	SubmittedAt string  `json:"submitted_at"`
	Spec        JobSpec `json:"spec"`
}

// statusFile marks a terminal non-done outcome so a restart does not
// resurrect the job. Done jobs are marked by their manifest instead, and
// interrupted jobs deliberately leave no marker — that is what makes them
// resumable.
type statusFile struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// New creates a daemon over a state directory, recovers incomplete jobs
// from it, and starts the job workers.
func New(opts Options) (*Server, error) {
	if opts.DefaultInstr == 0 {
		opts.DefaultInstr = 40_000
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Rate == 0 {
		opts.Rate = 5
	}
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	if opts.Retries == 0 {
		opts.Retries = 1
	}
	if opts.StateDir == "" {
		return nil, errors.New("server: StateDir is required")
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}

	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	tm := newServerMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		runner:     experiments.NewRunner(opts.DefaultInstr),
		cache:      NewRunCache(opts.CacheCap, tm.cacheHits, tm.cacheMisses),
		limiter:    NewLimiter(opts.Rate, opts.Burst),
		tm:         tm,
		logger:     logger,
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*Job),
		nextID:     1,
		startedAt:  time.Now(),
	}
	s.runner.CacheCap = opts.RunnerCacheCap
	tm.registerCollectors(s)
	s.qcond = sync.NewCond(&s.qmu)
	s.routes()

	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < opts.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Shutdown gracefully drains the daemon: no new jobs start, running
// engines are cancelled (their in-flight runs complete and are journaled),
// and incomplete jobs park as interrupted — a later New over the same
// state dir re-queues and resumes them. It returns ctx.Err() if the drain
// outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	s.closed = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.cancelBase()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recover scans the state dir: done jobs are indexed for serving, terminal
// failures/cancellations keep their state, and everything else — including
// jobs interrupted by the previous daemon's shutdown or kill — re-queues
// with its journal as the resume source.
func (s *Server) recover() error {
	dir := filepath.Join(s.opts.StateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("server: scan state: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		b, err := os.ReadFile(filepath.Join(dir, id, "spec.json"))
		if err != nil {
			continue // half-created job dir: nothing recoverable
		}
		var pj persistedJob
		if err := json.Unmarshal(b, &pj); err != nil || pj.ID != id {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		g, err := pj.Spec.ResolveGrid(s.opts.DefaultInstr)
		if err != nil {
			continue // spec no longer resolvable (e.g. renamed profile)
		}
		j := newJob(id, pj.Spec, g.Name, len(g.Units()), pj.SubmittedAt)
		s.jobs[id] = j
		s.order = append(s.order, id)

		switch {
		case fileExists(s.jobFile(id, "manifest.json")):
			j.finish(StateDone, "")
		case fileExists(s.jobFile(id, "status.json")):
			var st statusFile
			if b, err := os.ReadFile(s.jobFile(id, "status.json")); err == nil {
				_ = json.Unmarshal(b, &st)
			}
			if st.State == "" {
				st.State = StateFailed
			}
			j.finish(st.State, st.Error)
		case pj.Spec.Ephemeral:
			// The watcher that owned this job is gone with the old
			// daemon; treat the job as cancelled by disconnect.
			s.writeStatus(j, StateCancelled, "daemon restarted; ephemeral owner gone")
			j.finish(StateCancelled, "daemon restarted; ephemeral owner gone")
		default:
			// Re-queued jobs get the finish hook — recovered terminal
			// jobs above deliberately do not, so counters only reflect
			// this daemon's own work (as before the registry rewire).
			j.onFinish = s.noteFinish
			j.enqueuedAt = time.Now()
			s.tm.jobsRecovered.Inc()
			s.tm.jobsQueued.Inc()
			s.pending = append(s.pending, j)
			s.logger.Info("job recovered", "job", id, "grid", j.GridName, "units", j.Total)
		}
	}
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.opts.StateDir, "jobs", id)
}

func (s *Server) jobFile(id, name string) string {
	return filepath.Join(s.jobDir(id), name)
}

// writeStatus persists a terminal non-done state marker.
func (s *Server) writeStatus(j *Job, state, errMsg string) {
	b, _ := json.Marshal(statusFile{State: state, Error: errMsg})
	_ = os.WriteFile(s.jobFile(j.ID, "status.json"), append(b, '\n'), 0o644)
}

// noteFinish is the Job.onFinish hook: it moves the terminal-state and
// running-gauge accounting onto the telemetry registry. It runs under the
// job's mutex, so it touches only lock-free instruments. Interrupted jobs
// are deliberately not counted — they resume under the next daemon.
func (s *Server) noteFinish(prev, state string) {
	if prev == StateRunning {
		s.tm.jobsRunning.Dec()
	}
	switch state {
	case StateDone:
		s.tm.jobsDone.Inc()
	case StateFailed:
		s.tm.jobsFailed.Inc()
	case StateCancelled:
		s.tm.jobsCancelled.Inc()
	}
}

// submit validates, persists, and queues a job. It is the only admission
// path, and enforces the queue bound.
func (s *Server) submit(spec JobSpec) (*Job, error, int) {
	t0 := time.Now()
	g, err := spec.ResolveGrid(s.opts.DefaultInstr)
	if err != nil {
		return nil, err, http.StatusBadRequest
	}
	units := g.Units()
	if len(units) == 0 {
		return nil, fmt.Errorf("grid %q is empty", g.Name), http.StatusBadRequest
	}

	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return nil, errors.New("daemon is shutting down"), http.StatusServiceUnavailable
	}
	if len(s.pending) >= s.opts.QueueDepth {
		s.qmu.Unlock()
		return nil, fmt.Errorf("job queue is full (%d queued)", s.opts.QueueDepth), http.StatusTooManyRequests
	}
	s.qmu.Unlock()

	s.mu.Lock()
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	now := time.Now().UTC().Format(time.RFC3339Nano)
	j := newJob(id, spec, g.Name, len(units), now)
	j.onFinish = s.noteFinish
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.tm.jobsSubmitted.Inc()

	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		j.finish(StateFailed, err.Error())
		return nil, err, http.StatusInternalServerError
	}
	b, _ := json.MarshalIndent(persistedJob{ID: id, SubmittedAt: now, Spec: spec}, "", "  ")
	if err := os.WriteFile(s.jobFile(id, "spec.json"), append(b, '\n'), 0o644); err != nil {
		j.finish(StateFailed, err.Error())
		return nil, err, http.StatusInternalServerError
	}

	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		j.finish(StateInterrupted, "daemon is shutting down")
		return nil, errors.New("daemon is shutting down"), http.StatusServiceUnavailable
	}
	j.enqueuedAt = time.Now()
	s.pending = append(s.pending, j)
	s.tm.jobsQueued.Inc()
	s.qcond.Signal()
	s.qmu.Unlock()

	s.emitSpan(j, telemetry.Span{Name: "submit", Detail: g.Name}, t0, time.Since(t0))
	s.logger.Info("job submitted", "job", id, "grid", g.Name, "units", len(units))
	return j, nil, 0
}

// emitSpan appends one span line to the job's span log. Tracing is
// best-effort and strictly off the result path: any error is ignored, and
// nothing downstream ever reads spans to make a decision.
func (s *Server) emitSpan(j *Job, sp telemetry.Span, start time.Time, dur time.Duration) {
	f, err := os.OpenFile(s.jobFile(j.ID, "spans.jsonl"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	telemetry.NewSpanLog(f, j.ID).Emit(sp, start, dur)
}

// worker pulls queued jobs and executes them until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

func (s *Server) nextJob() *Job {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if len(s.pending) > 0 {
			j := s.pending[0]
			s.pending = s.pending[1:]
			// The queued gauge tracks queue membership, not job state: a
			// job cancelled while queued still sits in pending until this
			// pop, so decrementing here (and only here) keeps the gauge
			// equal to len(pending) at all times.
			s.tm.jobsQueued.Dec()
			return j
		}
		s.qcond.Wait()
	}
}

// runJob executes one job on a sweep engine: journal to the job dir,
// resume from any prior journal plus the result cache, and on success
// write the deterministic manifest (the exact bytes Manifest.Encode
// produces — the same encoder offline atrsweep uses, which is what makes
// served and offline manifests comparable with cmp).
func (s *Server) runJob(j *Job) {
	g, err := j.Spec.ResolveGrid(s.opts.DefaultInstr)
	if err != nil {
		s.failJob(j, err.Error())
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.setRunning(cancel) {
		return // cancelled while queued
	}
	s.tm.jobsRunning.Inc()
	qwait := time.Since(j.enqueuedAt)
	s.tm.queueWait.Observe(qwait)

	// One span log per execution, shared by the engine's worker callbacks
	// (SpanLog serializes writes; nil degrades every Emit to a no-op).
	var sl *telemetry.SpanLog
	if sf, err := os.OpenFile(s.jobFile(j.ID, "spans.jsonl"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
		defer sf.Close()
		sl = telemetry.NewSpanLog(sf, j.ID)
	}
	sl.Emit(telemetry.Span{Name: "queue-wait"}, j.enqueuedAt, qwait)
	s.logger.Info("job started", "job", j.ID, "grid", j.GridName, "units", j.Total,
		"queue_wait_ms", float64(qwait.Microseconds())/1000)

	s.mu.Lock()
	hook := s.beforeRun
	s.mu.Unlock()
	if hook != nil {
		hook(j)
	}

	resume := s.resumeFor(j, g)

	jf, err := os.OpenFile(s.jobFile(j.ID, "journal.jsonl"), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		s.failJob(j, err.Error())
		return
	}

	eng := sweep.New(sweep.Options{
		Workers:     s.opts.SimWorkers,
		Retries:     s.opts.Retries,
		Backoff:     s.opts.Backoff,
		Journal:     jf,
		Resume:      resume,
		JobID:       j.ID,
		InjectPanic: j.Spec.InjectPanic,
		BatchRun:    s.batchRunFunc(g.Instr),
		OnProgress:  j.publish,
		OnRun: func(u sweep.Unit, worker int, start time.Time, dur time.Duration, errMsg string) {
			s.tm.runDuration.Observe(dur)
			sl.Emit(telemetry.Span{
				Name: "run", RunKey: u.Key, Seq: u.Seq, Worker: worker,
				Bench: u.Profile.Name, Scheme: u.Config.Scheme.String(), Err: errMsg,
			}, start, dur)
		},
	})
	m, execErr := eng.Execute(ctx, g, s.runFunc(g.Instr))
	jf.Close()

	info := eng.Info()
	if pf, err := os.Create(s.jobFile(j.ID, "perf.json")); err == nil {
		_ = obs.NewPerfManifest(info).Encode(pf)
		pf.Close()
	}

	if execErr != nil {
		switch {
		case j.wasCancelled():
			s.writeStatus(j, StateCancelled, "cancelled")
			j.finish(StateCancelled, "cancelled")
			s.logger.Info("job cancelled", "job", j.ID)
		case s.baseCtx.Err() != nil:
			// Shutdown drain: no status marker, so the journal makes the
			// job resumable by the next daemon.
			j.finish(StateInterrupted, "daemon shutdown; journaled runs will resume")
			s.logger.Info("job interrupted", "job", j.ID)
		default:
			s.failJob(j, execErr.Error())
		}
		return
	}

	mergeStart := time.Now()
	var buf strings.Builder
	if err := m.Encode(&buf); err != nil {
		s.failJob(j, err.Error())
		return
	}
	tmp := s.jobFile(j.ID, "manifest.json.tmp")
	if err := os.WriteFile(tmp, []byte(buf.String()), 0o644); err == nil {
		err = os.Rename(tmp, s.jobFile(j.ID, "manifest.json"))
		if err != nil {
			s.failJob(j, err.Error())
			return
		}
	} else {
		s.failJob(j, err.Error())
		return
	}
	sl.Emit(telemetry.Span{Name: "merge", Detail: "manifest.json"}, mergeStart, time.Since(mergeStart))

	for _, rec := range m.Runs {
		s.cache.Put(rec.Key, g.Instr, rec)
	}
	j.finish(StateDone, "")
	s.logger.Info("job done", "job", j.ID,
		"done", info.Done, "failed", info.Failed, "resumed", info.Resumed,
		"wall_s", info.WallSeconds)
}

// failJob marks a terminal failure: persistent status marker, state
// transition (the onFinish hook does the counting), and one log line.
func (s *Server) failJob(j *Job, msg string) {
	s.writeStatus(j, StateFailed, msg)
	j.finish(StateFailed, msg)
	s.logger.Error("job failed", "job", j.ID, "err", msg)
}

// resumeFor builds the job's resume source: the job's own journal from a
// previous daemon life, topped up with content-addressed cache records for
// every remaining unit. The engine treats both identically — resumed runs
// are re-journaled and merge into the manifest exactly as executed runs
// would, which is why cache hits cannot change a served byte.
func (s *Server) resumeFor(j *Job, g sweep.Grid) *sweep.Journal {
	resume := &sweep.Journal{Grid: g.Name, Instr: g.Instr, Records: make(map[string]sweep.Record)}
	if f, err := os.Open(s.jobFile(j.ID, "journal.jsonl")); err == nil {
		if prev, err := sweep.LoadJournal(f); err == nil && prev.Grid == g.Name && prev.Instr == g.Instr {
			for k, rec := range prev.Records {
				resume.Records[k] = rec
			}
		}
		f.Close()
	}
	cached := 0
	for _, u := range g.Units() {
		if _, ok := resume.Records[u.Key]; ok {
			continue
		}
		if rec, ok := s.cache.Get(u.Key, g.Instr); ok {
			resume.Records[u.Key] = rec
			cached++
		}
	}
	if cached > 0 {
		s.tm.runsFromCache.Add(uint64(cached))
	}
	return resume
}

// runFunc is the serving layer's RunFunc: identical simulation semantics
// to offline sweep.Sim, with the program image shared across jobs through
// the daemon's experiments.Runner.
func (s *Server) runFunc(instr uint64) sweep.RunFunc {
	return func(ctx context.Context, u sweep.Unit) (pipeline.Result, error) {
		if err := u.Config.Validate(); err != nil {
			return pipeline.Result{}, err
		}
		prog := s.runner.Program(u.Profile)
		if u.Sample != "" {
			plan, err := checkpoint.ParseMode(u.Sample)
			if err != nil {
				return pipeline.Result{}, err
			}
			res := checkpoint.Run(u.Config, prog, pipeline.SchedulerEvent, instr, plan).Result
			s.tm.runsExecuted.Inc()
			return res, nil
		}
		res := pipeline.NewWithScheduler(u.Config, prog, pipeline.SchedulerEvent).Run(instr)
		s.tm.runsExecuted.Inc()
		return res, nil
	}
}

// batchRunFunc is runFunc's lockstep counterpart: the engine hands it a
// profile-homogeneous group of pending units (that invariant is the
// engine's grouping rule), which execute as batch lanes over the
// daemon's shared program image. Lane results are bit-identical to solo
// runs, so serving batched cannot perturb manifest parity.
func (s *Server) batchRunFunc(instr uint64) sweep.BatchRunFunc {
	return func(ctx context.Context, us []sweep.Unit) ([]pipeline.Result, batch.Perf, error) {
		cfgs := make([]config.Config, len(us))
		for i, u := range us {
			if u.Sample != "" {
				// The engine never groups sampled units; the error routes a
				// scheduling bug to the correct per-unit fallback path.
				return nil, batch.Perf{}, fmt.Errorf("server: sampled unit %s cannot run in a lockstep batch", u.Key)
			}
			if err := u.Config.Validate(); err != nil {
				return nil, batch.Perf{}, err
			}
			cfgs[i] = u.Config
		}
		prog := s.runner.Program(us[0].Profile)
		lanes, perf := batch.Run(prog, cfgs, instr, batch.Options{})
		res := make([]pipeline.Result, len(lanes))
		for i, l := range lanes {
			res[i] = l.Result
		}
		s.tm.runsExecuted.Add(uint64(len(us)))
		s.tm.runsBatched.Add(uint64(len(us)))
		s.tm.batchGroups.Inc()
		return res, perf, nil
	}
}

// Metrics snapshots the daemon's JSON /metrics view. Since the registry
// rewire this is a read-only projection of the same lock-free instruments
// the Prometheus exposition serves — there is exactly one set of counters.
// Reads are relaxed-atomic monitoring snapshots (see DESIGN 3.1e): each
// value is a real past value, but the set is not a consistent cut.
func (s *Server) Metrics() obs.ServerInfo {
	tm := s.tm
	hits, misses, size, capacity := s.cache.Stats()
	memoHits, _, _ := s.runner.CacheStats()
	_, progs := s.runner.ProgramCacheStats()
	return obs.ServerInfo{
		Build:          obs.Build(),
		StartedAt:      s.startedAt.UTC().Format(time.RFC3339Nano),
		UptimeSeconds:  time.Since(s.startedAt).Seconds(),
		JobsSubmitted:  int(tm.jobsSubmitted.Value()),
		JobsQueued:     int(tm.jobsQueued.Value()),
		JobsRunning:    int(tm.jobsRunning.Value()),
		JobsDone:       int(tm.jobsDone.Value()),
		JobsFailed:     int(tm.jobsFailed.Value()),
		JobsCancelled:  int(tm.jobsCancelled.Value()),
		JobsRecovered:  int(tm.jobsRecovered.Value()),
		QueueCap:       s.opts.QueueDepth,
		RateLimited:    int(tm.rateLimited.Value()),
		RunsExecuted:   int(tm.runsExecuted.Value()),
		RunsFromCache:  int(tm.runsFromCache.Value()),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheSize:      size,
		CacheCap:       capacity,
		HTTPRequests:   int(tm.httpAll.Value()),
		LimiterClients: s.limiter.Clients(),
		RunnerMemoHits: int(memoHits),
		RunnerPrograms: progs,
	}
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.instrument("list", s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("status", s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", s.handleEvents))
	s.mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.instrument("manifest", s.handleManifest))
	s.mux.HandleFunc("GET /v1/jobs/{id}/perf", s.instrument("perf", s.handlePerf))
}

// instrument wraps a handler with the per-route latency histogram, the
// status-class counter, and one structured request log line. The wrapped
// writer passes Flush through, so streaming handlers keep working; for
// those the recorded latency covers the whole stream, which is the honest
// number for an endpoint whose job is to stay open.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.tm.httpDur[route]
	byClass := s.tm.httpReq[route]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		dur := time.Since(t0)
		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		hist.Observe(dur)
		byClass[codeClass(code)].Inc()
		s.tm.httpAll.Inc()
		lvl := slog.LevelInfo
		if route == "healthz" || route == "metrics" {
			lvl = slog.LevelDebug // scrape traffic: visible only at -log-level debug
		}
		s.logger.Log(r.Context(), lvl, "request",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"status", code, "dur_ms", float64(dur.Microseconds())/1000,
			"client", ClientKey(r))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	closed := s.closed
	s.qmu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics negotiates between the two views of the one instrument
// set: Prometheus text exposition by default (what a scraper expects from
// GET /metrics), the legacy JSON ServerInfo when the client asks for
// application/json (atrctl does).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, s.Metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.tm.reg.WriteText(w)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, retry := s.limiter.Allow(ClientKey(r), time.Now()); !ok {
		s.tm.rateLimited.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "rate limit exceeded"})
		return
	}
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	j, err, code := s.submit(spec)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}

	if r.URL.Query().Get("watch") != "1" {
		writeJSON(w, http.StatusAccepted, j.Status())
		return
	}
	// The submitting connection watches the job. Ephemeral jobs live and
	// die with it: a disconnect cancels the job context.
	if spec.Ephemeral {
		go func() {
			select {
			case <-r.Context().Done():
				j.requestCancel()
			case <-j.Done():
			}
		}()
	}
	s.streamEvents(w, r, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		s.streamEvents(w, r, j)
	}
}

// streamEvents writes the job's live event feed until the job finishes or
// the client goes away. NDJSON by default; SSE when the client asks for
// text/event-stream.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeEvent := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	events, unsub := j.subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Terminal: the broadcast may have been dropped for a
				// slow reader, so always close with a status snapshot.
				st := j.Status()
				writeEvent(Event{Type: "status", Job: j.ID, State: st.State, Error: st.Error})
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleManifest serves the deterministic result manifest: the exact bytes
// written at job completion. Comparing this response with an offline
// atrsweep -out file via cmp is the subsystem's acceptance check.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if st := j.State(); st != StateDone {
		writeJSON(w, http.StatusConflict, apiError{Error: "manifest not available", State: st})
		return
	}
	t0 := time.Now()
	s.serveFile(w, s.jobFile(j.ID, "manifest.json"))
	s.emitSpan(j, telemetry.Span{Name: "serve", Detail: "manifest.json"}, t0, time.Since(t0))
}

func (s *Server) handlePerf(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	path := s.jobFile(j.ID, "perf.json")
	if !fileExists(path) {
		writeJSON(w, http.StatusConflict, apiError{Error: "perf telemetry not available", State: j.State()})
		return
	}
	s.serveFile(w, path)
}

func (s *Server) serveFile(w http.ResponseWriter, path string) {
	f, err := os.Open(path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}
