// Package server is atrd's serving layer: a long-running HTTP daemon that
// accepts simulation and sweep jobs, executes them on the sweep engine's
// work-stealing pool, and streams progress as NDJSON/SSE.
//
// The correctness contract of the whole subsystem is manifest parity: the
// manifest served for any grid is byte-identical to what offline atrsweep
// produces for the same grid. Everything the daemon adds — the bounded job
// queue, per-client rate limiting, the content-addressed result cache,
// graceful drain and restart resume — is built from mechanisms that the
// sweep engine already proves deterministic (run keys, journals, resume
// merge), so serving infrastructure cannot perturb a byte of a result.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"atr/internal/experiments"
	"atr/internal/obs"
	"atr/internal/pipeline"
	"atr/internal/sweep"
)

// Options configures a daemon.
type Options struct {
	// StateDir holds per-job specs, journals, and manifests. It is the
	// daemon's durable memory: a restarted daemon resumes every
	// incomplete non-ephemeral job found here.
	StateDir string

	// DefaultInstr is the per-run instruction budget applied to specs
	// that leave Instr zero (0 selects 40000).
	DefaultInstr uint64

	// SimWorkers bounds each job's simulation pool (<= 0 selects
	// GOMAXPROCS); JobWorkers bounds how many jobs execute concurrently
	// (<= 0 selects 2).
	SimWorkers int
	JobWorkers int

	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are refused with 429 + Retry-After
	// (<= 0 selects 64).
	QueueDepth int

	// Rate and Burst shape the per-client submission token bucket
	// (Rate 0 selects 5/sec; negative disables limiting; Burst <= 0
	// selects 10).
	Rate  float64
	Burst int

	// CacheCap bounds the content-addressed run-record cache (<= 0
	// selects 65536 records).
	CacheCap int

	// RunnerCacheCap bounds the shared experiments.Runner program cache
	// (<= 0 selects its default).
	RunnerCacheCap int

	// Retries and Backoff are passed to each job's sweep engine.
	Retries int
	Backoff time.Duration
}

// Server is the daemon. It implements http.Handler.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	runner  *experiments.Runner // shared across jobs: program cache
	cache   *runCache
	limiter *limiter

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	qmu     sync.Mutex
	qcond   *sync.Cond
	pending []*Job
	closed  bool

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string
	nextID      int
	startedAt   time.Time
	submitted   int
	doneCount   int
	failedCount int
	cancelCount int
	recovered   int
	rateLimited int
	runsExec    int
	runsCached  int

	// beforeRun, when non-nil, is called by a worker after a job enters
	// the running state and before its engine starts. Tests use it to
	// hold jobs in flight deterministically.
	beforeRun func(*Job)
}

// persistedJob is the on-disk spec record binding an ID to its submission.
type persistedJob struct {
	ID          string  `json:"id"`
	SubmittedAt string  `json:"submitted_at"`
	Spec        JobSpec `json:"spec"`
}

// statusFile marks a terminal non-done outcome so a restart does not
// resurrect the job. Done jobs are marked by their manifest instead, and
// interrupted jobs deliberately leave no marker — that is what makes them
// resumable.
type statusFile struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// New creates a daemon over a state directory, recovers incomplete jobs
// from it, and starts the job workers.
func New(opts Options) (*Server, error) {
	if opts.DefaultInstr == 0 {
		opts.DefaultInstr = 40_000
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Rate == 0 {
		opts.Rate = 5
	}
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	if opts.Retries == 0 {
		opts.Retries = 1
	}
	if opts.StateDir == "" {
		return nil, errors.New("server: StateDir is required")
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		runner:     experiments.NewRunner(opts.DefaultInstr),
		cache:      newRunCache(opts.CacheCap),
		limiter:    newLimiter(opts.Rate, opts.Burst),
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*Job),
		nextID:     1,
		startedAt:  time.Now(),
	}
	s.runner.CacheCap = opts.RunnerCacheCap
	s.qcond = sync.NewCond(&s.qmu)
	s.routes()

	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < opts.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Shutdown gracefully drains the daemon: no new jobs start, running
// engines are cancelled (their in-flight runs complete and are journaled),
// and incomplete jobs park as interrupted — a later New over the same
// state dir re-queues and resumes them. It returns ctx.Err() if the drain
// outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	s.closed = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.cancelBase()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recover scans the state dir: done jobs are indexed for serving, terminal
// failures/cancellations keep their state, and everything else — including
// jobs interrupted by the previous daemon's shutdown or kill — re-queues
// with its journal as the resume source.
func (s *Server) recover() error {
	dir := filepath.Join(s.opts.StateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("server: scan state: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		b, err := os.ReadFile(filepath.Join(dir, id, "spec.json"))
		if err != nil {
			continue // half-created job dir: nothing recoverable
		}
		var pj persistedJob
		if err := json.Unmarshal(b, &pj); err != nil || pj.ID != id {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		g, err := pj.Spec.grid(s.opts.DefaultInstr)
		if err != nil {
			continue // spec no longer resolvable (e.g. renamed profile)
		}
		j := newJob(id, pj.Spec, g.Name, len(g.Units()), pj.SubmittedAt)
		s.jobs[id] = j
		s.order = append(s.order, id)

		switch {
		case fileExists(s.jobFile(id, "manifest.json")):
			j.finish(StateDone, "")
		case fileExists(s.jobFile(id, "status.json")):
			var st statusFile
			if b, err := os.ReadFile(s.jobFile(id, "status.json")); err == nil {
				_ = json.Unmarshal(b, &st)
			}
			if st.State == "" {
				st.State = StateFailed
			}
			j.finish(st.State, st.Error)
		case pj.Spec.Ephemeral:
			// The watcher that owned this job is gone with the old
			// daemon; treat the job as cancelled by disconnect.
			s.writeStatus(j, StateCancelled, "daemon restarted; ephemeral owner gone")
			j.finish(StateCancelled, "daemon restarted; ephemeral owner gone")
		default:
			s.recovered++
			s.pending = append(s.pending, j)
		}
	}
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.opts.StateDir, "jobs", id)
}

func (s *Server) jobFile(id, name string) string {
	return filepath.Join(s.jobDir(id), name)
}

// writeStatus persists a terminal non-done state marker.
func (s *Server) writeStatus(j *Job, state, errMsg string) {
	b, _ := json.Marshal(statusFile{State: state, Error: errMsg})
	_ = os.WriteFile(s.jobFile(j.ID, "status.json"), append(b, '\n'), 0o644)
}

// submit validates, persists, and queues a job. It is the only admission
// path, and enforces the queue bound.
func (s *Server) submit(spec JobSpec) (*Job, error, int) {
	g, err := spec.grid(s.opts.DefaultInstr)
	if err != nil {
		return nil, err, http.StatusBadRequest
	}
	units := g.Units()
	if len(units) == 0 {
		return nil, fmt.Errorf("grid %q is empty", g.Name), http.StatusBadRequest
	}

	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return nil, errors.New("daemon is shutting down"), http.StatusServiceUnavailable
	}
	if len(s.pending) >= s.opts.QueueDepth {
		s.qmu.Unlock()
		return nil, fmt.Errorf("job queue is full (%d queued)", s.opts.QueueDepth), http.StatusTooManyRequests
	}
	s.qmu.Unlock()

	s.mu.Lock()
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	now := time.Now().UTC().Format(time.RFC3339Nano)
	j := newJob(id, spec, g.Name, len(units), now)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.submitted++
	s.mu.Unlock()

	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		j.finish(StateFailed, err.Error())
		return nil, err, http.StatusInternalServerError
	}
	b, _ := json.MarshalIndent(persistedJob{ID: id, SubmittedAt: now, Spec: spec}, "", "  ")
	if err := os.WriteFile(s.jobFile(id, "spec.json"), append(b, '\n'), 0o644); err != nil {
		j.finish(StateFailed, err.Error())
		return nil, err, http.StatusInternalServerError
	}

	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		j.finish(StateInterrupted, "daemon is shutting down")
		return nil, errors.New("daemon is shutting down"), http.StatusServiceUnavailable
	}
	s.pending = append(s.pending, j)
	s.qcond.Signal()
	s.qmu.Unlock()
	return j, nil, 0
}

// worker pulls queued jobs and executes them until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

func (s *Server) nextJob() *Job {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if len(s.pending) > 0 {
			j := s.pending[0]
			s.pending = s.pending[1:]
			return j
		}
		s.qcond.Wait()
	}
}

// runJob executes one job on a sweep engine: journal to the job dir,
// resume from any prior journal plus the result cache, and on success
// write the deterministic manifest (the exact bytes Manifest.Encode
// produces — the same encoder offline atrsweep uses, which is what makes
// served and offline manifests comparable with cmp).
func (s *Server) runJob(j *Job) {
	g, err := j.Spec.grid(s.opts.DefaultInstr)
	if err != nil {
		s.writeStatus(j, StateFailed, err.Error())
		s.countFinish(j, StateFailed)
		j.finish(StateFailed, err.Error())
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.setRunning(cancel) {
		return // cancelled while queued
	}
	if hook := s.beforeRun; hook != nil {
		hook(j)
	}

	resume := s.resumeFor(j, g)

	jf, err := os.OpenFile(s.jobFile(j.ID, "journal.jsonl"), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		s.writeStatus(j, StateFailed, err.Error())
		s.countFinish(j, StateFailed)
		j.finish(StateFailed, err.Error())
		return
	}

	eng := sweep.New(sweep.Options{
		Workers:    s.opts.SimWorkers,
		Retries:    s.opts.Retries,
		Backoff:    s.opts.Backoff,
		Journal:    jf,
		Resume:     resume,
		JobID:      j.ID,
		OnProgress: j.publish,
	})
	m, execErr := eng.Execute(ctx, g, s.runFunc(g.Instr))
	jf.Close()

	info := eng.Info()
	if pf, err := os.Create(s.jobFile(j.ID, "perf.json")); err == nil {
		_ = obs.NewPerfManifest(info).Encode(pf)
		pf.Close()
	}

	if execErr != nil {
		switch {
		case j.wasCancelled():
			s.writeStatus(j, StateCancelled, "cancelled")
			s.countFinish(j, StateCancelled)
			j.finish(StateCancelled, "cancelled")
		case s.baseCtx.Err() != nil:
			// Shutdown drain: no status marker, so the journal makes the
			// job resumable by the next daemon.
			j.finish(StateInterrupted, "daemon shutdown; journaled runs will resume")
		default:
			s.writeStatus(j, StateFailed, execErr.Error())
			s.countFinish(j, StateFailed)
			j.finish(StateFailed, execErr.Error())
		}
		return
	}

	var buf strings.Builder
	if err := m.Encode(&buf); err != nil {
		s.writeStatus(j, StateFailed, err.Error())
		s.countFinish(j, StateFailed)
		j.finish(StateFailed, err.Error())
		return
	}
	tmp := s.jobFile(j.ID, "manifest.json.tmp")
	if err := os.WriteFile(tmp, []byte(buf.String()), 0o644); err == nil {
		err = os.Rename(tmp, s.jobFile(j.ID, "manifest.json"))
		if err != nil {
			s.writeStatus(j, StateFailed, err.Error())
			s.countFinish(j, StateFailed)
			j.finish(StateFailed, err.Error())
			return
		}
	} else {
		s.writeStatus(j, StateFailed, err.Error())
		s.countFinish(j, StateFailed)
		j.finish(StateFailed, err.Error())
		return
	}

	for _, rec := range m.Runs {
		s.cache.put(rec.Key, g.Instr, rec)
	}
	s.countFinish(j, StateDone)
	j.finish(StateDone, "")
}

// countFinish updates the terminal-state counters.
func (s *Server) countFinish(j *Job, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch state {
	case StateDone:
		s.doneCount++
	case StateFailed:
		s.failedCount++
	case StateCancelled:
		s.cancelCount++
	}
}

// resumeFor builds the job's resume source: the job's own journal from a
// previous daemon life, topped up with content-addressed cache records for
// every remaining unit. The engine treats both identically — resumed runs
// are re-journaled and merge into the manifest exactly as executed runs
// would, which is why cache hits cannot change a served byte.
func (s *Server) resumeFor(j *Job, g sweep.Grid) *sweep.Journal {
	resume := &sweep.Journal{Grid: g.Name, Instr: g.Instr, Records: make(map[string]sweep.Record)}
	if f, err := os.Open(s.jobFile(j.ID, "journal.jsonl")); err == nil {
		if prev, err := sweep.LoadJournal(f); err == nil && prev.Grid == g.Name && prev.Instr == g.Instr {
			for k, rec := range prev.Records {
				resume.Records[k] = rec
			}
		}
		f.Close()
	}
	cached := 0
	for _, u := range g.Units() {
		if _, ok := resume.Records[u.Key]; ok {
			continue
		}
		if rec, ok := s.cache.get(u.Key, g.Instr); ok {
			resume.Records[u.Key] = rec
			cached++
		}
	}
	if cached > 0 {
		s.mu.Lock()
		s.runsCached += cached
		s.mu.Unlock()
	}
	return resume
}

// runFunc is the serving layer's RunFunc: identical simulation semantics
// to offline sweep.Sim, with the program image shared across jobs through
// the daemon's experiments.Runner.
func (s *Server) runFunc(instr uint64) sweep.RunFunc {
	return func(ctx context.Context, u sweep.Unit) (pipeline.Result, error) {
		if err := u.Config.Validate(); err != nil {
			return pipeline.Result{}, err
		}
		prog := s.runner.Program(u.Profile)
		res := pipeline.NewWithScheduler(u.Config, prog, pipeline.SchedulerEvent).Run(instr)
		s.mu.Lock()
		s.runsExec++
		s.mu.Unlock()
		return res, nil
	}
}

// Metrics snapshots the daemon's /metrics view.
func (s *Server) Metrics() obs.ServerInfo {
	hits, misses, size, capacity := s.cache.stats()
	s.qmu.Lock()
	queued := len(s.pending)
	s.qmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, j := range s.jobs {
		if j.State() == StateRunning {
			running++
		}
	}
	return obs.ServerInfo{
		Build:         obs.Build(),
		StartedAt:     s.startedAt.UTC().Format(time.RFC3339Nano),
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
		JobsSubmitted: s.submitted,
		JobsQueued:    queued,
		JobsRunning:   running,
		JobsDone:      s.doneCount,
		JobsFailed:    s.failedCount,
		JobsCancelled: s.cancelCount,
		JobsRecovered: s.recovered,
		QueueCap:      s.opts.QueueDepth,
		RateLimited:   s.rateLimited,
		RunsExecuted:  s.runsExec,
		RunsFromCache: s.runsCached,
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheSize:     size,
		CacheCap:      capacity,
	}
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/jobs/{id}/perf", s.handlePerf)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	closed := s.closed
	s.qmu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, retry := s.limiter.allow(clientKey(r), time.Now()); !ok {
		s.mu.Lock()
		s.rateLimited++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "rate limit exceeded"})
		return
	}
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	j, err, code := s.submit(spec)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}

	if r.URL.Query().Get("watch") != "1" {
		writeJSON(w, http.StatusAccepted, j.Status())
		return
	}
	// The submitting connection watches the job. Ephemeral jobs live and
	// die with it: a disconnect cancels the job context.
	if spec.Ephemeral {
		go func() {
			select {
			case <-r.Context().Done():
				j.requestCancel()
			case <-j.Done():
			}
		}()
	}
	s.streamEvents(w, r, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		s.streamEvents(w, r, j)
	}
}

// streamEvents writes the job's live event feed until the job finishes or
// the client goes away. NDJSON by default; SSE when the client asks for
// text/event-stream.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeEvent := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	events, unsub := j.subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Terminal: the broadcast may have been dropped for a
				// slow reader, so always close with a status snapshot.
				st := j.Status()
				writeEvent(Event{Type: "status", Job: j.ID, State: st.State, Error: st.Error})
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleManifest serves the deterministic result manifest: the exact bytes
// written at job completion. Comparing this response with an offline
// atrsweep -out file via cmp is the subsystem's acceptance check.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if st := j.State(); st != StateDone {
		writeJSON(w, http.StatusConflict, apiError{Error: "manifest not available", State: st})
		return
	}
	s.serveFile(w, s.jobFile(j.ID, "manifest.json"))
}

func (s *Server) handlePerf(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	path := s.jobFile(j.ID, "perf.json")
	if !fileExists(path) {
		writeJSON(w, http.StatusConflict, apiError{Error: "perf telemetry not available", State: j.State()})
		return
	}
	s.serveFile(w, path)
}

func (s *Server) serveFile(w http.ResponseWriter, path string) {
	f, err := os.Open(path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}
