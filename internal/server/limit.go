package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter for job submissions.
// Each client (X-ATR-Client header, else the remote IP) gets a bucket
// refilled at rate tokens/sec up to burst; a submission costs one token.
// When a bucket is dry the limiter reports how long until the next token,
// which the handler surfaces as Retry-After on a 429.
type limiter struct {
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// clientKey identifies the caller for rate-limiting purposes.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-ATR-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// allow consumes one token from key's bucket. When refused it returns the
// wait until a token is available, rounded up to whole seconds for the
// Retry-After header.
func (l *limiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[key]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
		l.pruneLocked(now)
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	ceil := wait.Truncate(time.Second)
	if ceil < wait {
		ceil += time.Second
	}
	if ceil <= 0 {
		ceil = time.Second
	}
	return false, ceil
}

// clients reports how many token buckets the limiter currently tracks.
// It is a monitoring read (the atr_rate_clients gauge), not a
// synchronization point.
func (l *limiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// pruneLocked drops buckets that have been idle long enough to be full
// again (they carry no information), bounding the map against client churn.
func (l *limiter) pruneLocked(now time.Time) {
	if len(l.buckets) < 4096 {
		return
	}
	for k, b := range l.buckets {
		if now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}
