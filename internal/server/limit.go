package server

import (
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// limiterShards is the lock-striping factor of Limiter. Client keys are
// short strings (header values or IPs); fnv-1a spreads them well enough
// that hot clients on different shards never contend.
const limiterShards = 16

// limiterPrune is the per-shard bucket count beyond which idle buckets are
// pruned (4096 total across the striped map, matching the pre-striping
// limiter's bound).
const limiterPrune = 4096 / limiterShards

// Limiter is a per-client token-bucket rate limiter for job submissions.
// Each client (X-ATR-Client header, else the remote IP) gets a bucket
// refilled at rate tokens/sec up to burst; a submission costs one token.
// When a bucket is dry the limiter reports how long until the next token,
// which the handler surfaces as Retry-After on a 429.
//
// The bucket map is N-way lock-striped so concurrent submissions from
// different clients contend only when their keys hash to the same shard.
// Exported so the cluster coordinator layers per-tenant quotas on the same
// admission mechanism the single-node daemon uses.
type Limiter struct {
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	shards [limiterShards]limiterShard
}

type limiterShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter creates a limiter refilling rate tokens/sec up to burst per
// client. rate <= 0 disables limiting.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	l := &Limiter{rate: rate, burst: float64(burst)}
	for i := range l.shards {
		l.shards[i].buckets = make(map[string]*bucket)
	}
	return l
}

// ClientKey identifies the caller for rate-limiting and quota purposes:
// the X-ATR-Client header when present, else the remote IP. Exported so
// the cluster coordinator attributes tenants exactly as the single-node
// daemon attributes rate-limit clients.
func ClientKey(r *http.Request) string {
	if c := r.Header.Get("X-ATR-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (l *Limiter) shard(key string) *limiterShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &l.shards[h.Sum32()&(limiterShards-1)]
}

// Allow consumes one token from key's bucket. When refused it returns the
// wait until a token is available, rounded up to whole seconds for the
// Retry-After header.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, found := s.buckets[key]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		s.buckets[key] = b
		l.pruneLocked(s, now)
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	ceil := wait.Truncate(time.Second)
	if ceil < wait {
		ceil += time.Second
	}
	if ceil <= 0 {
		ceil = time.Second
	}
	return false, ceil
}

// Clients reports how many token buckets the limiter currently tracks.
// It is a monitoring read (the atr_rate_clients gauge), not a
// synchronization point.
func (l *Limiter) Clients() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.buckets)
		s.mu.Unlock()
	}
	return n
}

// pruneLocked drops buckets in s that have been idle long enough to be
// full again (they carry no information), bounding the map against client
// churn. Caller holds s.mu.
func (l *Limiter) pruneLocked(s *limiterShard, now time.Time) {
	if len(s.buckets) < limiterPrune {
		return
	}
	for k, b := range s.buckets {
		if now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(s.buckets, k)
		}
	}
}
