package server

import (
	"net/http"
	"time"

	"atr/internal/obs"
	"atr/internal/telemetry"
)

// httpRoutes is every mux pattern's telemetry label, fixed at startup so
// the per-request record path is a map lookup done once at registration
// time, never per request.
var httpRoutes = []string{
	"healthz", "metrics", "submit", "list", "status", "cancel",
	"events", "manifest", "perf",
}

// httpCodeClasses buckets response codes for the request counter.
var httpCodeClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// serverMetrics is the daemon's instrument set: every counter the old
// mutex-guarded ServerInfo ints tracked, now as lock-free registry
// instruments, plus the latency histograms and collectors PR 6 adds.
// obs.ServerInfo is a point-in-time view over these (Server.Metrics);
// GET /metrics exposes the same registry as Prometheus text.
type serverMetrics struct {
	reg *telemetry.Registry

	jobsSubmitted *telemetry.Counter
	jobsDone      *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsCancelled *telemetry.Counter
	jobsRecovered *telemetry.Counter
	jobsQueued    *telemetry.Gauge
	jobsRunning   *telemetry.Gauge

	rateLimited *telemetry.Counter

	runsExecuted  *telemetry.Counter
	runsFromCache *telemetry.Counter
	runsBatched   *telemetry.Counter
	batchGroups   *telemetry.Counter
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter

	queueWait   *telemetry.LatencyHistogram
	runDuration *telemetry.LatencyHistogram

	httpDur map[string]*telemetry.LatencyHistogram   // by route
	httpReq map[string]map[string]*telemetry.Counter // route -> code class
	httpAll telemetry.Counter                        // JSON-view total, not registered
}

// newServerMetrics registers the static instruments. Collectors that read
// other subsystems (cache size, limiter clients, runner caches) are added
// by registerCollectors once those subsystems exist.
func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	tm := &serverMetrics{
		reg:           reg,
		jobsSubmitted: reg.Counter("atr_jobs_submitted_total", "Jobs accepted by the admission path."),
		jobsDone:      reg.Counter("atr_jobs_done_total", "Jobs that finished with a manifest."),
		jobsFailed:    reg.Counter("atr_jobs_failed_total", "Jobs that ended in a terminal failure."),
		jobsCancelled: reg.Counter("atr_jobs_cancelled_total", "Jobs cancelled by a client or disconnect."),
		jobsRecovered: reg.Counter("atr_jobs_recovered_total", "Jobs re-queued from the state dir at startup."),
		jobsQueued:    reg.Gauge("atr_jobs_queued", "Jobs waiting for a job worker."),
		jobsRunning:   reg.Gauge("atr_jobs_running", "Jobs executing on a sweep engine."),
		rateLimited:   reg.Counter("atr_rate_limited_total", "Submissions refused with 429 by the token bucket."),
		runsExecuted:  reg.Counter("atr_runs_executed_total", "Simulations actually executed (per attempt)."),
		runsFromCache: reg.Counter("atr_runs_from_cache_total", "Grid units satisfied by the content-addressed result cache."),
		runsBatched:   reg.Counter("atr_runs_batched_total", "Simulations executed as lanes of a lockstep batch group."),
		batchGroups:   reg.Counter("atr_batch_groups_total", "Lockstep batch groups executed (runs_batched/batch_groups = lane occupancy)."),
		cacheHits:     reg.Counter("atr_result_cache_hits_total", "Result cache lookups that hit."),
		cacheMisses:   reg.Counter("atr_result_cache_misses_total", "Result cache lookups that missed."),
		queueWait:     reg.Histogram("atr_queue_wait_seconds", "Time from job admission to execution start.", nil),
		runDuration:   reg.Histogram("atr_run_duration_seconds", "Wall-clock duration of one executed grid unit (including retries).", nil),
		httpDur:       make(map[string]*telemetry.LatencyHistogram, len(httpRoutes)),
		httpReq:       make(map[string]map[string]*telemetry.Counter, len(httpRoutes)),
	}
	for _, route := range httpRoutes {
		tm.httpDur[route] = reg.Histogram("atr_http_request_duration_seconds",
			"HTTP handler latency (streaming handlers measure the full stream).", nil,
			telemetry.Label{Key: "route", Value: route})
		byClass := make(map[string]*telemetry.Counter, len(httpCodeClasses))
		for _, class := range httpCodeClasses {
			byClass[class] = reg.Counter("atr_http_requests_total", "HTTP requests by route and status class.",
				telemetry.Label{Key: "route", Value: route}, telemetry.Label{Key: "code", Value: class})
		}
		tm.httpReq[route] = byClass
	}
	return tm
}

// registerCollectors adds the exposition-time callbacks that read values
// already guarded by their owner's synchronization: sizes of the result and
// runner caches, the limiter's tracked-client count, uptime, and build
// identity. They run only during a scrape, never on a record path.
func (tm *serverMetrics) registerCollectors(s *Server) {
	b := obs.Build()
	tm.reg.GaugeFunc("atr_build_info", "Build identity (value is always 1).",
		func() float64 { return 1 },
		telemetry.Label{Key: "go_version", Value: b.GoVersion},
		telemetry.Label{Key: "revision", Value: b.Revision})
	tm.reg.GaugeFunc("atr_uptime_seconds", "Seconds since daemon start.",
		func() float64 { return time.Since(s.startedAt).Seconds() })
	tm.reg.GaugeFunc("atr_queue_capacity", "Bounded job queue capacity.",
		func() float64 { return float64(s.opts.QueueDepth) })
	tm.reg.GaugeFunc("atr_rate_clients", "Token buckets currently tracked by the rate limiter.",
		func() float64 { return float64(s.limiter.Clients()) })
	tm.reg.GaugeFunc("atr_result_cache_size", "Records resident in the result cache.",
		func() float64 { _, _, size, _ := s.cache.Stats(); return float64(size) })
	tm.reg.GaugeFunc("atr_result_cache_capacity", "Result cache capacity.",
		func() float64 { _, _, _, capacity := s.cache.Stats(); return float64(capacity) })
	tm.reg.CounterFunc("atr_runner_memo_hits_total", "Runner memo-cache hits.",
		func() uint64 { h, _, _ := s.runner.CacheStats(); return h })
	tm.reg.CounterFunc("atr_runner_memo_evictions_total", "Runner memo-cache evictions.",
		func() uint64 { _, e, _ := s.runner.CacheStats(); return e })
	tm.reg.GaugeFunc("atr_runner_memo_size", "Runner memo-cache resident results.",
		func() float64 { _, _, n := s.runner.CacheStats(); return float64(n) })
	tm.reg.CounterFunc("atr_runner_program_hits_total", "Shared program-cache hits.",
		func() uint64 { h, _ := s.runner.ProgramCacheStats(); return h })
	tm.reg.GaugeFunc("atr_runner_programs_cached", "Program images resident in the shared cache.",
		func() float64 { _, n := s.runner.ProgramCacheStats(); return float64(n) })
}

// statusWriter captures the response code for telemetry while passing
// Flush through — the streaming handlers (NDJSON/SSE) depend on it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func codeClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}
