package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"atr/internal/checkpoint"
	"atr/internal/config"
	"atr/internal/obs"
	"atr/internal/sweep"
	"atr/internal/workload"
)

// JobSpec is what a client submits: a single run, a named grid preset, or
// an arbitrary declared grid. Specs are persisted verbatim in the state
// dir, so a restarted daemon can rebuild the exact grid and resume it.
type JobSpec struct {
	// Kind is "run" (one simulation) or "grid" (a declared sweep).
	Kind string `json:"kind"`

	// Instr is the per-run instruction budget; 0 selects the daemon's
	// default.
	Instr uint64 `json:"instr,omitempty"`

	// Grid names a preset (fig10, full, micro) for Kind "grid". Empty
	// with Kind "grid" declares a custom grid from the fields below.
	Grid string `json:"grid,omitempty"`

	// Custom-grid declaration (Kind "grid", Grid empty): the cross
	// product of profiles × register-file sizes × schemes, exactly as
	// sweep.Grid expands it.
	Name     string   `json:"name,omitempty"` // custom grid label (default "custom")
	Profiles []string `json:"profiles,omitempty"`
	PhysRegs []int    `json:"phys_regs,omitempty"`
	Schemes  []string `json:"schemes,omitempty"`

	// Single-run declaration (Kind "run").
	Bench  string `json:"bench,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	Regs   int    `json:"regs,omitempty"` // 0 selects the base config's size

	// Sample selects sampled execution for Kind "run": a checkpoint plan
	// in -sample-mode syntax ("systematic:<period>/<window>/<warmup>"),
	// or empty for exact simulation.
	Sample string `json:"sample,omitempty"`

	// SampleModes is the sampled-execution axis for Kind "grid": each
	// entry is a sampling plan or "exact". Empty runs the whole grid
	// exact.
	SampleModes []string `json:"sample_modes,omitempty"`

	// Ephemeral ties the job to the submitting connection: if the client
	// that submitted with ?watch=1 disconnects mid-stream, the job is
	// cancelled (its journal stays resumable). Ephemeral jobs are not
	// resurrected after a daemon restart.
	Ephemeral bool `json:"ephemeral,omitempty"`

	// InjectPanic, when positive, poisons the grid's k-th run (1-based,
	// grid order) exactly as atrsweep's -inject-panic flag does: every
	// attempt of that run panics inside the worker and is recorded as a
	// failure. It is a fault-injection hook for exercising the daemon's
	// isolation (one poisoned run cannot kill a job, and the telemetry
	// gauges must still return to zero). Failed records are never cached,
	// so a poisoned run cannot poison later jobs.
	InjectPanic int `json:"inject_panic,omitempty"`
}

// Grid resolves the spec into the sweep grid it declares. defaultInstr
// fills in a zero budget. The resolution is pure, so a persisted spec
// rebuilds the identical grid (same name, same unit keys) after a restart
// — and a cluster worker handed the same spec resolves the identical
// grid the coordinator sharded, which is what makes coordinator-side
// journaling by run key sound.
func (s JobSpec) ResolveGrid(defaultInstr uint64) (sweep.Grid, error) {
	instr := s.Instr
	if instr == 0 {
		instr = defaultInstr
	}
	switch s.Kind {
	case "run":
		p, ok := workload.ByName(s.Bench)
		if !ok {
			return sweep.Grid{}, fmt.Errorf("unknown bench %q", s.Bench)
		}
		base := config.GoldenCove()
		g := sweep.Grid{
			Name:     "run",
			Instr:    instr,
			Base:     base,
			Profiles: []workload.Profile{p},
		}
		if s.Scheme != "" {
			sc, err := config.ParseScheme(s.Scheme)
			if err != nil {
				return sweep.Grid{}, err
			}
			g.Schemes = []config.ReleaseScheme{sc}
		}
		if s.Regs != 0 {
			g.PhysRegs = []int{s.Regs}
		}
		if s.Sample != "" {
			if _, err := checkpoint.ParseMode(s.Sample); err != nil {
				return sweep.Grid{}, err
			}
			g.SampleModes = []string{s.Sample}
		}
		return g, nil
	case "grid":
		modes, err := parseSampleModes(s.SampleModes)
		if err != nil {
			return sweep.Grid{}, err
		}
		if s.Grid != "" {
			g, err := sweep.GridByName(s.Grid, instr)
			if err != nil {
				return sweep.Grid{}, err
			}
			g.SampleModes = modes
			return g, nil
		}
		if len(s.Profiles) == 0 {
			return sweep.Grid{}, fmt.Errorf("custom grid declares no profiles")
		}
		g := sweep.Grid{
			Name:  s.Name,
			Instr: instr,
			Base:  config.GoldenCove(),
		}
		if g.Name == "" {
			g.Name = "custom"
		}
		for _, name := range s.Profiles {
			p, ok := workload.ByName(name)
			if !ok {
				return sweep.Grid{}, fmt.Errorf("unknown profile %q", name)
			}
			g.Profiles = append(g.Profiles, p)
		}
		g.PhysRegs = s.PhysRegs
		for _, name := range s.Schemes {
			sc, err := config.ParseScheme(name)
			if err != nil {
				return sweep.Grid{}, err
			}
			g.Schemes = append(g.Schemes, sc)
		}
		g.SampleModes = modes
		return g, nil
	}
	return sweep.Grid{}, fmt.Errorf("unknown job kind %q (want run or grid)", s.Kind)
}

// parseSampleModes validates a spec's sample_modes axis and maps the
// "exact" spelling to the empty string sweep.Grid uses internally.
func parseSampleModes(specs []string) ([]string, error) {
	var modes []string
	for _, m := range specs {
		if m == "exact" || m == "" {
			modes = append(modes, "")
			continue
		}
		if _, err := checkpoint.ParseMode(m); err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// Job states. queued → running → one of the terminal states; interrupted
// is the shutdown parking state a restarted daemon re-queues from.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// terminal reports whether a state is final for this daemon process.
func terminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Event is one line of a job's NDJSON/SSE stream.
type Event struct {
	Type     string             `json:"type"` // "status" or "progress"
	Job      string             `json:"job"`
	State    string             `json:"state,omitempty"`
	Error    string             `json:"error,omitempty"`
	Progress *obs.SweepProgress `json:"progress,omitempty"`
}

// Status is the job view returned by the HTTP API.
type Status struct {
	ID          string            `json:"id"`
	State       string            `json:"state"`
	Spec        JobSpec           `json:"spec"`
	Grid        string            `json:"grid"`
	Total       int               `json:"total"`
	Error       string            `json:"error,omitempty"`
	Progress    obs.SweepProgress `json:"progress"`
	SubmittedAt string            `json:"submitted_at,omitempty"`
}

// Job is one submitted unit of work.
type Job struct {
	ID          string
	Spec        JobSpec
	GridName    string
	Total       int
	SubmittedAt string

	// enqueuedAt is when the job entered the pending queue; the server
	// reads it after setRunning to observe queue wait. Written once before
	// the job is visible to workers, so no lock is needed.
	enqueuedAt time.Time

	// onFinish, when non-nil, is called once inside the terminal state
	// transition with the previous and final states. It runs under j.mu,
	// so it must stay lock-light — the server installs a callback that
	// only touches lock-free telemetry instruments.
	onFinish func(prev, state string)

	mu        sync.Mutex
	state     string
	err       string
	progress  obs.SweepProgress
	cancelled bool // client-requested (vs shutdown) cancellation
	cancel    context.CancelFunc
	subs      map[chan Event]struct{}
	done      chan struct{}
}

func newJob(id string, spec JobSpec, gridName string, total int, submittedAt string) *Job {
	return &Job{
		ID: id, Spec: spec, GridName: gridName, Total: total,
		SubmittedAt: submittedAt,
		state:       StateQueued,
		subs:        make(map[chan Event]struct{}),
		done:        make(chan struct{}),
	}
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, State: j.state, Spec: j.Spec, Grid: j.GridName,
		Total: j.Total, Error: j.err, Progress: j.progress,
		SubmittedAt: j.SubmittedAt,
	}
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// subscribe registers an event channel and returns it primed with a status
// snapshot, plus an unsubscribe func. Events are dropped, never blocked on,
// if the subscriber falls more than a buffer behind — except the terminal
// status, which is delivered via the snapshot-on-subscribe + Done pattern.
func (j *Job) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	j.mu.Lock()
	ch <- Event{Type: "status", Job: j.ID, State: j.state, Error: j.err}
	if terminal(j.state) {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// publish fans a progress tick out to subscribers (engine-serialized).
func (j *Job) publish(p obs.SweepProgress) {
	j.mu.Lock()
	j.progress = p
	ev := Event{Type: "progress", Job: j.ID, Progress: &p}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow watcher: drop the tick, the final status still arrives
		}
	}
	j.mu.Unlock()
}

// setRunning transitions queued → running, installing the cancel func.
// It returns false if the job is no longer runnable (cancelled while
// queued).
func (j *Job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.broadcastLocked(Event{Type: "status", Job: j.ID, State: j.state})
	return true
}

// finish moves the job to a terminal state and wakes everything waiting.
func (j *Job) finish(state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, errMsg)
}

func (j *Job) finishLocked(state, errMsg string) {
	if terminal(j.state) {
		return
	}
	prev := j.state
	j.state = state
	if j.onFinish != nil {
		j.onFinish(prev, state)
	}
	j.err = errMsg
	j.broadcastLocked(Event{Type: "status", Job: j.ID, State: state, Error: errMsg})
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
	close(j.done)
}

func (j *Job) broadcastLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// requestCancel flags the job as client-cancelled and, if running, cancels
// its context. A queued job is finished immediately (the worker's
// setRunning then refuses it); a running one reaches the terminal state
// when its engine returns. The queued-vs-running decision happens under
// the same lock setRunning takes, so exactly one path applies.
func (j *Job) requestCancel() {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.cancelled = true
	if j.state == StateQueued {
		j.finishLocked(StateCancelled, "cancelled before start")
		j.mu.Unlock()
		return
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// wasCancelled reports whether a client asked for cancellation.
func (j *Job) wasCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}
