package server

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"atr/internal/sweep"
)

// BenchmarkServerContention hammers the server's two striped hot
// structures — the content-addressed result cache and the rate-limiter
// bucket map — from all available CPUs, the access pattern a coordinator
// sees when N workers upload and M clients submit simultaneously. It
// gates the lock-striping satellite: with a single mutex these paths
// serialize, with 16-way striping they scale near-linearly until shards
// collide.
func BenchmarkServerContention(b *testing.B) {
	const keys = 4096

	b.Run("cache-hit", func(b *testing.B) {
		c := NewRunCache(2*keys, nil, nil)
		ks := make([]string, keys)
		for i := range ks {
			ks[i] = fmt.Sprintf("%032x", i)
			c.Put(ks[i], 1000, sweep.Record{Key: ks[i], Seq: i})
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := c.Get(ks[i%keys], 1000); !ok {
					b.Fatal("lost cache entry")
				}
				i++
			}
		})
	})

	b.Run("cache-mixed", func(b *testing.B) {
		c := NewRunCache(keys, nil, nil)
		ks := make([]string, keys)
		for i := range ks {
			ks[i] = fmt.Sprintf("%032x", i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := ks[i%keys]
				if i%8 == 0 {
					c.Put(k, 1000, sweep.Record{Key: k})
				} else {
					c.Get(k, 1000)
				}
				i++
			}
		})
	})

	b.Run("limiter", func(b *testing.B) {
		l := NewLimiter(1e9, 1<<30) // never refuses: measures bucket-map contention only
		clients := make([]string, 256)
		for i := range clients {
			clients[i] = fmt.Sprintf("client-%d", i)
		}
		now := time.Now()
		var seq atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			me := clients[int(seq.Add(1))%len(clients)]
			i := 0
			for pb.Next() {
				if ok, _ := l.Allow(me, now.Add(time.Duration(i))); !ok {
					b.Fatal("limiter refused with unbounded burst")
				}
				i++
			}
		})
	})
}
