package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"atr/internal/obs"
	"atr/internal/telemetry"
)

// scrapeText fetches the Prometheus exposition from /metrics and runs it
// through the in-repo parser and linter, so every test scrape is also a
// conformance check.
func scrapeText(t *testing.T, base string) map[string]telemetry.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape: Content-Type = %q, want text/plain exposition", ct)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	if err := telemetry.Lint(fams); err != nil {
		t.Fatalf("lint exposition: %v", err)
	}
	byName := make(map[string]telemetry.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

func famValue(t *testing.T, fams map[string]telemetry.Family, name string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("exposition has no family %s", name)
	}
	total := 0.0
	for _, s := range f.Samples {
		total += s.Value
	}
	return total
}

// TestMetricsContentNegotiation pins the /metrics dual contract: Prometheus
// text by default, the legacy JSON ServerInfo when the client accepts JSON
// (that is what atrctl sends, and what CI's cache-hit grep depends on).
func TestMetricsContentNegotiation(t *testing.T) {
	s, hs := newTestServer(t, testOptions(t))

	fams := scrapeText(t, hs.URL)
	for _, want := range []string{
		"atr_jobs_submitted_total", "atr_jobs_queued", "atr_jobs_running",
		"atr_rate_limited_total", "atr_runs_executed_total",
		"atr_result_cache_hits_total", "atr_http_requests_total",
		"atr_http_request_duration_seconds", "atr_queue_wait_seconds",
		"atr_run_duration_seconds", "atr_build_info", "atr_uptime_seconds",
		"atr_rate_clients", "atr_runner_programs_cached",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("exposition missing family %s", want)
		}
	}

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("json metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept: application/json got Content-Type %q", ct)
	}
	var info obs.ServerInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode ServerInfo: %v", err)
	}
	if info.QueueCap != s.opts.QueueDepth {
		t.Errorf("ServerInfo.QueueCap = %d, want %d", info.QueueCap, s.opts.QueueDepth)
	}
}

// TestExpositionCountersMonotonic runs a job between two scrapes and checks
// the counters that must move, move monotonically, and that the JSON view
// agrees with the Prometheus view (one instrument set, two renderings).
func TestExpositionCountersMonotonic(t *testing.T) {
	s, hs := newTestServer(t, testOptions(t))
	before := scrapeText(t, hs.URL)

	id := submitJob(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Instr: 800})
	waitJob(t, s, id, StateDone)

	after := scrapeText(t, hs.URL)
	for _, name := range []string{
		"atr_jobs_submitted_total", "atr_jobs_done_total", "atr_runs_executed_total",
		"atr_http_requests_total",
	} {
		b, a := famValue(t, before, name), famValue(t, after, name)
		if a <= b {
			t.Errorf("%s did not increase across a job: %v -> %v", name, b, a)
		}
	}
	if got := famValue(t, after, "atr_runs_executed_total"); got != 1 {
		t.Errorf("atr_runs_executed_total = %v, want 1", got)
	}
	if got := famValue(t, after, "atr_jobs_done_total"); float64(s.Metrics().JobsDone) != got {
		t.Errorf("JSON JobsDone %d disagrees with exposition %v", s.Metrics().JobsDone, got)
	}

	// The run-duration histogram observed exactly the executed run.
	bounds, cum, _, count, err := telemetry.MergedHistogram(after["atr_run_duration_seconds"])
	if err != nil {
		t.Fatalf("MergedHistogram: %v", err)
	}
	if count != 1 {
		t.Errorf("atr_run_duration_seconds count = %d, want 1", count)
	}
	if q := telemetry.Quantile(bounds, cum, 0.5); q <= 0 {
		t.Errorf("run duration p50 = %v, want > 0", q)
	}
}

// gaugesZero asserts the queue-depth and running gauges both read zero —
// the drift invariant every terminal path must restore.
func gaugesZero(t *testing.T, s *Server, when string) {
	t.Helper()
	m := s.Metrics()
	if m.JobsQueued != 0 || m.JobsRunning != 0 {
		t.Errorf("%s: jobs_queued=%d jobs_running=%d, want 0/0", when, m.JobsQueued, m.JobsRunning)
	}
}

// TestGaugeDriftCancel drives both cancellation paths — cancelled while
// queued and cancelled while running — and checks the gauges return to
// zero and the cancel counter reflects both.
func TestGaugeDriftCancel(t *testing.T) {
	opts := testOptions(t)
	opts.JobWorkers = 1
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	hold := make(chan struct{})
	started := make(chan *Job, 1)
	s.beforeRun = func(j *Job) {
		started <- j
		<-hold
	}
	hs := newHTTPServer(t, s)

	// First job occupies the single worker; second waits in the queue.
	running := submitJob(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Instr: 800})
	<-started
	queued := submitJob(t, hs.URL, JobSpec{Kind: "run", Bench: "mcf", Instr: 800})

	if m := s.Metrics(); m.JobsRunning != 1 || m.JobsQueued != 1 {
		t.Fatalf("mid-flight: running=%d queued=%d, want 1/1", m.JobsRunning, m.JobsQueued)
	}

	cancelJob(t, hs.URL, queued)  // cancelled while queued
	cancelJob(t, hs.URL, running) // cancelled while running
	close(hold)

	waitJob(t, s, running, StateCancelled)
	waitJob(t, s, queued, StateCancelled)
	waitGaugesZero(t, s)
	if got := s.Metrics().JobsCancelled; got != 2 {
		t.Errorf("JobsCancelled = %d, want 2", got)
	}
}

// TestGaugeDriftInjectedPanic submits a job whose only run panics on every
// attempt. The engine converts the panics to a recorded failure, the job
// still completes, and — the point here — the gauges return to zero.
func TestGaugeDriftInjectedPanic(t *testing.T) {
	s, hs := newTestServer(t, testOptions(t))
	id := submitJob(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Instr: 800, InjectPanic: 1})
	waitJob(t, s, id, StateDone)
	waitGaugesZero(t, s)

	j, _ := s.Job(id)
	if p := j.Status().Progress; p.Failed != 1 {
		t.Errorf("injected panic: Failed = %d, want 1", p.Failed)
	}
	m := s.Metrics()
	if m.JobsDone != 1 || m.JobsFailed != 0 {
		t.Errorf("done=%d failed=%d, want job done (run-level failure only)", m.JobsDone, m.JobsFailed)
	}
}

// TestGaugeDriftDrainRestart interrupts a running job by draining the
// daemon, then restarts over the same state dir: the first daemon's gauges
// must return to zero at the drain, and the second daemon's must return to
// zero after the recovered job resumes and finishes.
func TestGaugeDriftDrainRestart(t *testing.T) {
	opts := testOptions(t)
	s1, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hold := make(chan struct{})
	released := false
	s1.beforeRun = func(*Job) { <-hold }
	hs1 := newHTTPServer(t, s1)
	defer func() {
		if !released {
			close(hold)
		}
	}()

	id := submitJob(t, hs1.URL, JobSpec{Kind: "grid", Grid: "micro", Instr: 800})
	waitState(t, s1, id, StateRunning)
	if got := s1.Metrics().JobsRunning; got != 1 {
		t.Fatalf("running gauge = %d, want 1", got)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s1.Shutdown(ctx)
	}()
	close(hold)
	released = true
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitState(t, s1, id, StateInterrupted)
	gaugesZero(t, s1, "after drain")

	s2, hs2 := newTestServer(t, opts)
	if got := s2.Metrics().JobsRecovered; got != 1 {
		t.Fatalf("JobsRecovered = %d, want 1", got)
	}
	waitJob(t, s2, id, StateDone)
	waitGaugesZero(t, s2)
	_ = hs2
}

// TestRetryAfterHeaderValue pins the 429 Retry-After arithmetic: at 0.25
// tokens/sec with burst 1, a drained bucket needs 4 seconds per token, and
// the header must say exactly that (whole seconds, rounded up).
func TestRetryAfterHeaderValue(t *testing.T) {
	opts := testOptions(t)
	opts.Rate = 0.25
	opts.Burst = 1
	s, hs := newTestServer(t, opts)

	id, code, _ := trySubmit(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Instr: 800}, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}

	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs",
		strings.NewReader(`{"kind":"run","bench":"gcc"}`))
	req.Header.Set("X-ATR-Client", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Errorf("Retry-After = %q, want \"4\" (1 token / 0.25 per sec)", got)
	}
	if got := s.Metrics().RateLimited; got != 1 {
		t.Errorf("RateLimited = %d, want 1", got)
	}
	waitJob(t, s, id, StateDone)
}

// TestLimiterPruneShrinksClients exercises the idle-bucket prune directly:
// the tracked-client gauge grows under client churn and idle buckets are
// dropped shard by shard once they have refilled to full, so a second wave
// of clients replaces the first instead of accumulating on top of it.
func TestLimiterPruneShrinksClients(t *testing.T) {
	l := NewLimiter(1, 5)
	now := time.Now()
	const wave = 16 * limiterPrune * 2 // every shard comfortably past its prune threshold
	for i := 0; i < wave; i++ {
		l.Allow(fmt.Sprintf("client-%d", i), now)
	}
	if got := l.Clients(); got != wave {
		t.Fatalf("clients after churn = %d, want %d", got, wave)
	}
	// 10 idle seconds at rate 1 refills past burst 5: every first-wave
	// bucket carries no information, and the second wave's insertions push
	// each shard past its prune threshold, dropping them all.
	for i := 0; i < wave; i++ {
		l.Allow(fmt.Sprintf("late-client-%d", i), now.Add(10*time.Second))
	}
	if got := l.Clients(); got != wave {
		t.Errorf("clients after prune = %d, want %d (idle buckets dropped)", got, wave)
	}
}

// TestSpanLogLifecycle checks the span trace a completed job leaves in its
// state dir: submit, queue-wait, one run span per executed unit (carrying
// the journal's run key), and merge — plus a serve span after the manifest
// is fetched. Span run keys must match the sweep journal's keys, which is
// the correlation contract.
func TestSpanLogLifecycle(t *testing.T) {
	s, hs := newTestServer(t, testOptions(t))
	id := submitJob(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Instr: 800})
	waitJob(t, s, id, StateDone)
	_ = fetchManifest(t, hs.URL, id)

	f, err := os.Open(s.jobFile(id, "spans.jsonl"))
	if err != nil {
		t.Fatalf("open span log: %v", err)
	}
	defer f.Close()
	spans, dropped, err := telemetry.ReadSpans(f)
	if err != nil || dropped != 0 {
		t.Fatalf("ReadSpans: err=%v dropped=%d", err, dropped)
	}

	count := map[string]int{}
	for _, sp := range spans {
		count[sp.Name]++
		if sp.Job != id {
			t.Errorf("span %s carries job %q, want %q", sp.Name, sp.Job, id)
		}
		if sp.DurNS < 0 {
			t.Errorf("span %s has negative duration", sp.Name)
		}
		if sp.Name == "run" {
			if sp.RunKey == "" || sp.Bench != "gcc" {
				t.Errorf("run span missing correlation fields: key=%q bench=%q", sp.RunKey, sp.Bench)
			}
		}
	}
	for _, want := range []string{"submit", "queue-wait", "merge", "serve"} {
		if count[want] != 1 {
			t.Errorf("span %s count = %d, want 1", want, count[want])
		}
	}
	if count["run"] != 1 {
		t.Errorf("run span count = %d, want 1", count["run"])
	}
}

// --- helpers ---------------------------------------------------------------

// newHTTPServer wraps an already-constructed Server (one whose beforeRun
// hook the test installed first) in an httptest server with cleanup.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return hs
}

func cancelJob(t *testing.T, base, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel %s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
	}
}

// waitState polls until the job reaches state (non-terminal states cannot
// use Done()).
func waitState(t *testing.T, s *Server, id, state string) {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == state {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", id, state, j.State())
}

// waitGaugesZero polls briefly before asserting: the finish hook runs
// inside the state transition, but the worker decrements the queue gauge
// on pop, which can land a beat after Done() is observable.
func waitGaugesZero(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m := s.Metrics()
		if m.JobsQueued == 0 && m.JobsRunning == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	gaugesZero(t, s, "after settle")
}
