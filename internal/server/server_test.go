package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"atr/internal/obs"
	"atr/internal/sweep"
)

// testOptions returns daemon options tuned for tests: small pools, rate
// limiting off (individual tests opt back in).
func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		StateDir:     t.TempDir(),
		DefaultInstr: 1000,
		SimWorkers:   2,
		JobWorkers:   2,
		QueueDepth:   16,
		Rate:         -1,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs
}

// offlineManifest renders the reference bytes for g exactly as atrsweep
// -out would: an engine run plus Manifest.Encode.
func offlineManifest(t *testing.T, g sweep.Grid) []byte {
	t.Helper()
	eng := sweep.New(sweep.Options{Workers: 4})
	m, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("offline sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("encode offline manifest: %v", err)
	}
	return buf.Bytes()
}

// submitJob posts a spec and returns the accepted job ID.
func submitJob(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	id, code, body := trySubmit(t, base, spec, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", code, body)
	}
	return id
}

func trySubmit(t *testing.T, base string, spec JobSpec, clientID string) (id string, code int, body string) {
	t.Helper()
	b, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-ATR-Client", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st Status
	_ = json.Unmarshal(raw, &st)
	return st.ID, resp.StatusCode, string(raw)
}

// waitJob blocks until the job is terminal, failing on timeout.
func waitJob(t *testing.T, s *Server, id string, want string) {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", id, j.State())
	}
	if got := j.State(); got != want {
		st := j.Status()
		t.Fatalf("job %s state = %s (err %q), want %s", id, got, st.Error, want)
	}
}

func fetchManifest(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/manifest")
	if err != nil {
		t.Fatalf("fetch manifest: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: status %d, body %s", resp.StatusCode, b)
	}
	return b
}

// TestServedManifestMatchesOffline is the subsystem's correctness
// contract: the bytes served for a grid equal the bytes offline atrsweep
// produces for the same grid.
func TestServedManifestMatchesOffline(t *testing.T) {
	s, hs := newTestServer(t, testOptions(t))
	spec := JobSpec{Kind: "grid", Grid: "micro", Instr: 1200}
	id := submitJob(t, hs.URL, spec)
	waitJob(t, s, id, StateDone)

	served := fetchManifest(t, hs.URL, id)
	offline := offlineManifest(t, sweep.MicroGrid(1200))
	if !bytes.Equal(served, offline) {
		t.Fatalf("served manifest (%d bytes) differs from offline (%d bytes)", len(served), len(offline))
	}

	// The perf artifact carries provenance that must stay out of the
	// result manifest.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/perf")
	if err != nil {
		t.Fatalf("fetch perf: %v", err)
	}
	defer resp.Body.Close()
	pm, err := obs.DecodePerfManifest(resp.Body)
	if err != nil {
		t.Fatalf("decode perf manifest: %v", err)
	}
	if pm.Sweep.JobID != id {
		t.Errorf("perf JobID = %q, want %q", pm.Sweep.JobID, id)
	}
	if pm.Sweep.Host == "" || pm.Sweep.StartedAt == "" || pm.Sweep.FinishedAt == "" {
		t.Errorf("perf provenance incomplete: %+v", pm.Sweep)
	}
	if bytes.Contains(served, []byte(pm.Sweep.StartedAt)) {
		t.Errorf("wall-clock provenance leaked into the deterministic manifest")
	}
}

// TestSingleRunJob exercises the Kind "run" path end to end.
func TestSingleRunJob(t *testing.T) {
	s, hs := newTestServer(t, testOptions(t))
	id := submitJob(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Scheme: "atomic", Regs: 96, Instr: 1500})
	waitJob(t, s, id, StateDone)
	m, err := sweep.DecodeManifest(bytes.NewReader(fetchManifest(t, hs.URL, id)))
	if err != nil {
		t.Fatalf("decode served manifest: %v", err)
	}
	if len(m.Runs) != 1 || m.Runs[0].Bench != "gcc" || m.Runs[0].Scheme != "atomic" || m.Runs[0].PhysRegs != 96 {
		t.Fatalf("unexpected run: %+v", m.Runs[0])
	}
	if m.Runs[0].Result.Committed == 0 {
		t.Fatalf("run committed nothing")
	}
}

// TestKillRestartResumeParity is the acceptance bar for graceful shutdown:
// a daemon stopped mid-grid leaves a journal; a new daemon over the same
// state dir resumes the job and serves a manifest byte-identical to an
// uninterrupted offline sweep of the same grid.
func TestKillRestartResumeParity(t *testing.T) {
	opts := testOptions(t)
	s1, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(s1)

	const instr = 400
	spec := JobSpec{Kind: "grid", Grid: "fig10", Instr: instr}
	id := submitJob(t, hs1.URL, spec)

	// Let the grid get genuinely mid-flight, then drain the daemon.
	j, _ := s1.Job(id)
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := j.Status()
		if st.Progress.Done >= 10 {
			break
		}
		if terminal(st.State) {
			t.Fatalf("job finished before shutdown could interrupt it; state %s", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := j.State(); st != StateInterrupted {
		t.Fatalf("job state after shutdown = %s, want %s", st, StateInterrupted)
	}

	// The journal on disk is a valid, partial account of the sweep.
	jf, err := os.Open(filepath.Join(opts.StateDir, "jobs", id, "journal.jsonl"))
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	journal, err := sweep.LoadJournal(jf)
	jf.Close()
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	if len(journal.Records) == 0 || len(journal.Records) >= journal.Total {
		t.Fatalf("journal has %d/%d records, want a strict mid-grid prefix", len(journal.Records), journal.Total)
	}

	// Restart: same state dir, fresh daemon. The job must re-queue,
	// resume from the journal, and finish.
	s2, hs2 := newTestServer(t, opts)
	if got := s2.Metrics().JobsRecovered; got != 1 {
		t.Fatalf("JobsRecovered = %d, want 1", got)
	}
	waitJob(t, s2, id, StateDone)

	served := fetchManifest(t, hs2.URL, id)
	offline := offlineManifest(t, sweep.Fig10Grid(instr))
	if !bytes.Equal(served, offline) {
		t.Fatalf("resumed manifest differs from offline (served %d bytes, offline %d)", len(served), len(offline))
	}

	// And the resume actually reused the journaled prefix.
	resp, err := http.Get(hs2.URL + "/v1/jobs/" + id + "/perf")
	if err != nil {
		t.Fatalf("fetch perf: %v", err)
	}
	defer resp.Body.Close()
	pm, err := obs.DecodePerfManifest(resp.Body)
	if err != nil {
		t.Fatalf("decode perf: %v", err)
	}
	if pm.Sweep.Resumed < len(journal.Records) {
		t.Errorf("resumed %d runs, want >= %d (the journaled prefix)", pm.Sweep.Resumed, len(journal.Records))
	}
}

// TestConcurrentJobsIsolationAndCache is the serving-scale acceptance
// check: >= 8 jobs held in flight simultaneously (mixed single-run and
// grid), each producing its correct isolated manifest; duplicate
// submissions served from the content-addressed cache without
// re-simulating; clean graceful shutdown at the end (via the test
// cleanup).
func TestConcurrentJobsIsolationAndCache(t *testing.T) {
	opts := testOptions(t)
	opts.JobWorkers = 8
	opts.QueueDepth = 32
	s, hs := newTestServer(t, opts)

	// Barrier: all 8 jobs must be running at once before any proceeds.
	const fleet = 8
	var mu sync.Mutex
	running := 0
	release := make(chan struct{})
	allIn := make(chan struct{})
	s.beforeRun = func(*Job) {
		mu.Lock()
		running++
		if running == fleet {
			close(allIn)
		}
		mu.Unlock()
		<-release
	}

	benches := []string{"gcc", "mcf", "leela", "xz"}
	var ids []string
	var specs []JobSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, JobSpec{Kind: "run", Bench: benches[i], Scheme: "combined", Instr: 1100})
	}
	for i := 0; i < 4; i++ {
		// Distinct budgets keep the four grids cache-disjoint.
		specs = append(specs, JobSpec{Kind: "grid", Grid: "micro", Instr: uint64(700 + 100*i)})
	}
	for _, spec := range specs {
		ids = append(ids, submitJob(t, hs.URL, spec))
	}

	select {
	case <-allIn:
	case <-time.After(60 * time.Second):
		mu.Lock()
		n := running
		mu.Unlock()
		t.Fatalf("only %d/%d jobs in flight simultaneously", n, fleet)
	}
	close(release)
	s.beforeRun = nil
	for _, id := range ids {
		waitJob(t, s, id, StateDone)
	}

	// Per-job isolation: every manifest matches its own offline
	// reference, bytes and all.
	for i, id := range ids {
		g, err := specs[i].ResolveGrid(opts.DefaultInstr)
		if err != nil {
			t.Fatalf("grid: %v", err)
		}
		if !bytes.Equal(fetchManifest(t, hs.URL, id), offlineManifest(t, g)) {
			t.Errorf("job %s (spec %d) manifest differs from offline reference", id, i)
		}
	}

	// Duplicate submission: every unit is already cached, so the job
	// completes without executing a single new simulation.
	before := s.Metrics()
	dup := submitJob(t, hs.URL, specs[4])
	waitJob(t, s, dup, StateDone)
	after := s.Metrics()
	if after.RunsExecuted != before.RunsExecuted {
		t.Errorf("duplicate submission executed %d new runs, want 0", after.RunsExecuted-before.RunsExecuted)
	}
	g4, _ := specs[4].ResolveGrid(opts.DefaultInstr)
	wantUnits := len(g4.Units())
	if got := after.RunsFromCache - before.RunsFromCache; got != wantUnits {
		t.Errorf("duplicate served %d runs from cache, want %d", got, wantUnits)
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("cache hits did not increase on duplicate submission")
	}
	if !bytes.Equal(fetchManifest(t, hs.URL, dup), fetchManifest(t, hs.URL, ids[4])) {
		t.Errorf("cache-served manifest differs from the executed one")
	}
}

// TestClientDisconnectCancelsEphemeralJob pins the cancellation path: an
// ephemeral job's watcher disconnecting mid-stream cancels the job
// context, in-flight runs stop promptly, and the journal left behind
// resumes to the uninterrupted manifest.
func TestClientDisconnectCancelsEphemeralJob(t *testing.T) {
	opts := testOptions(t)
	s, hs := newTestServer(t, opts)

	spec := JobSpec{
		Kind:      "grid",
		Instr:     1500,
		Name:      "disconnect",
		Profiles:  []string{"perlbench", "gcc", "mcf", "omnetpp", "xalancbmk", "x264", "deepsjeng", "leela"},
		PhysRegs:  []int{64, 96, 128},
		Schemes:   []string{"baseline", "nonspec-er", "atomic", "combined"},
		Ephemeral: true,
	}
	b, _ := json.Marshal(spec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/jobs?watch=1", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("watch submit: status %d body %s", resp.StatusCode, body)
	}

	// Read the stream until a few runs have completed, then vanish.
	var id string
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		if ev.Job != "" {
			id = ev.Job
		}
		if ev.Type == "status" && terminal(ev.State) {
			t.Fatalf("job reached %s before the disconnect", ev.State)
		}
		if ev.Type == "progress" && ev.Progress.Done >= 3 {
			break
		}
	}
	cancel() // client disconnect

	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job still %s 30s after client disconnect", j.State())
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("job state = %s, want %s", st, StateCancelled)
	}

	// The journal is a resumable partial account: an offline engine
	// resuming from it reproduces the uninterrupted manifest.
	jf, err := os.Open(filepath.Join(opts.StateDir, "jobs", id, "journal.jsonl"))
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	journal, err := sweep.LoadJournal(jf)
	jf.Close()
	if err != nil {
		t.Fatalf("journal of cancelled job unreadable: %v", err)
	}
	if len(journal.Records) < 3 {
		t.Fatalf("journal has %d records, want >= 3", len(journal.Records))
	}
	g, err := spec.ResolveGrid(opts.DefaultInstr)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	eng := sweep.New(sweep.Options{Workers: 4, Resume: journal})
	m, err := eng.Execute(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("resume cancelled journal: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), offlineManifest(t, g)) {
		t.Errorf("journal-resumed manifest differs from uninterrupted offline run")
	}
	if eng.Info().Resumed < len(journal.Records) {
		t.Errorf("resume re-executed journaled runs: resumed %d < %d", eng.Info().Resumed, len(journal.Records))
	}
}

// TestQueueBackpressure pins the bounded-queue contract: with one worker
// held and the queue full, the next submission is refused with 429 and a
// Retry-After header, and succeeds once capacity frees up.
func TestQueueBackpressure(t *testing.T) {
	opts := testOptions(t)
	opts.JobWorkers = 1
	opts.QueueDepth = 1
	s, hs := newTestServer(t, opts)

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.beforeRun = func(*Job) {
		started <- struct{}{}
		<-release
	}

	first := submitJob(t, hs.URL, JobSpec{Kind: "grid", Grid: "micro", Instr: 600})
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("first job never started")
	}
	second := submitJob(t, hs.URL, JobSpec{Kind: "grid", Grid: "micro", Instr: 700}) // fills the queue

	b, _ := json.Marshal(JobSpec{Kind: "grid", Grid: "micro", Instr: 800})
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit: status %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if !strings.Contains(string(body), "queue is full") {
		t.Errorf("unexpected 429 body: %s", body)
	}

	close(release)
	s.setBeforeRun(nil)
	waitJob(t, s, first, StateDone)
	waitJob(t, s, second, StateDone)
	third := submitJob(t, hs.URL, JobSpec{Kind: "grid", Grid: "micro", Instr: 800})
	waitJob(t, s, third, StateDone)
	if got := s.Metrics().JobsDone; got != 3 {
		t.Errorf("JobsDone = %d, want 3", got)
	}
}

// TestRateLimit429 pins per-client token-bucket limiting: a client past
// its burst gets 429 + Retry-After while a different client is unaffected.
func TestRateLimit429(t *testing.T) {
	opts := testOptions(t)
	opts.Rate = 0.5
	opts.Burst = 1
	s, hs := newTestServer(t, opts)

	id, code, _ := trySubmit(t, hs.URL, JobSpec{Kind: "run", Bench: "gcc", Instr: 800}, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	_, code, body := trySubmit(t, hs.URL, JobSpec{Kind: "run", Bench: "mcf", Instr: 800}, "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d body %s, want 429", code, body)
	}
	id2, code, _ := trySubmit(t, hs.URL, JobSpec{Kind: "run", Bench: "mcf", Instr: 800}, "bob")
	if code != http.StatusAccepted {
		t.Fatalf("other client: status %d, want 202", code)
	}
	if got := s.Metrics().RateLimited; got != 1 {
		t.Errorf("RateLimited = %d, want 1", got)
	}
	waitJob(t, s, id, StateDone)
	waitJob(t, s, id2, StateDone)
}

// TestBadSpecRejected covers admission validation.
func TestBadSpecRejected(t *testing.T) {
	_, hs := newTestServer(t, testOptions(t))
	cases := []JobSpec{
		{Kind: "grid", Grid: "nope"},
		{Kind: "run", Bench: "not-a-bench"},
		{Kind: "run", Bench: "gcc", Scheme: "not-a-scheme"},
		{Kind: "grid"}, // custom grid with no profiles
		{Kind: "???"},
	}
	for i, spec := range cases {
		if _, code, _ := trySubmit(t, hs.URL, spec, ""); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestLimiterRetryAfter unit-tests the bucket arithmetic.
func TestLimiterRetryAfter(t *testing.T) {
	l := NewLimiter(2, 1) // 2 tokens/sec, burst 1
	now := time.Unix(1000, 0)
	ok, _ := l.Allow("c", now)
	if !ok {
		t.Fatal("first request refused")
	}
	ok, retry := l.Allow("c", now)
	if ok {
		t.Fatal("second request allowed with empty bucket")
	}
	if retry != time.Second {
		t.Fatalf("retry = %v, want 1s (0.5s rounded up)", retry)
	}
	ok, _ = l.Allow("c", now.Add(600*time.Millisecond))
	if !ok {
		t.Fatal("request refused after refill")
	}
	if ok, _ := l.Allow("other", now); !ok {
		t.Fatal("independent client refused")
	}
}

// TestSpecGridDeterminism pins that spec→grid resolution is pure: the
// restart path depends on a persisted spec rebuilding identical unit keys.
func TestSpecGridDeterminism(t *testing.T) {
	spec := JobSpec{Kind: "grid", Grid: "fig10", Instr: 777}
	g1, err := spec.ResolveGrid(1000)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := spec.ResolveGrid(2000) // explicit Instr wins over the default
	u1, u2 := g1.Units(), g2.Units()
	if len(u1) == 0 || len(u1) != len(u2) {
		t.Fatalf("unit counts differ: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i].Key != u2[i].Key {
			t.Fatalf("unit %d key differs across resolutions", i)
		}
	}
	if g1.Instr != 777 || g2.Instr != 777 {
		t.Fatalf("explicit instr not honoured: %d/%d", g1.Instr, g2.Instr)
	}
	if _, err := fmt.Sscanf("j000042", "j%d", new(int)); err != nil {
		t.Fatalf("id format: %v", err)
	}
}
