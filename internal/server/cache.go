package server

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"atr/internal/sweep"
	"atr/internal/telemetry"
)

// cacheShards is the lock-striping factor of RunCache. Run keys are
// SHA-256 prefixes, so any power-of-two masking spreads them evenly.
const cacheShards = 16

// RunCache is the content-addressed result cache: completed run records
// keyed by the sweep engine's SHA-256 run key plus the instruction budget
// (the one run parameter the key does not cover). Identical runs submitted
// by any client — inside any grid, on any node — are served from here
// without re-simulating; because records are deterministic in (profile,
// config, instr), a cached record is byte-for-byte the record a fresh
// simulation would produce, so cache hits cannot perturb manifest identity.
//
// The cache is N-way lock-striped: each shard owns an independent mutex,
// LRU list, and capacity slice, so concurrent lookups from different jobs
// (or, on a coordinator, different workers' uploads) contend only when
// they hash to the same shard. Hit/miss counters are the lock-free
// telemetry instruments, recorded outside any shard lock. Exported so the
// cluster coordinator reuses the exact dedup semantics of the single-node
// daemon.
type RunCache struct {
	shards [cacheShards]cacheShard
	cap    int

	// hits/misses are registry instruments owned by the caller's telemetry
	// registry; the cache records into them so lookups show up in /metrics
	// without a second set of counters to keep in sync.
	hits   *telemetry.Counter
	misses *telemetry.Counter
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of string cache keys; front = most recent
	byKey map[string]*cacheEntry
}

type cacheEntry struct {
	rec  sweep.Record
	elem *list.Element
}

// NewRunCache creates a cache holding up to capacity records (<= 0 selects
// 65536). hits/misses may be nil; private counters are used then.
func NewRunCache(capacity int, hits, misses *telemetry.Counter) *RunCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if hits == nil {
		hits = new(telemetry.Counter)
	}
	if misses == nil {
		misses = new(telemetry.Counter)
	}
	c := &RunCache{cap: capacity, hits: hits, misses: misses}
	per := (capacity + cacheShards - 1) / cacheShards
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, lru: list.New(), byKey: make(map[string]*cacheEntry)}
	}
	return c
}

func cacheKey(runKey string, instr uint64) string {
	return fmt.Sprintf("%s@%d", runKey, instr)
}

func (c *RunCache) shard(k string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(k))
	return &c.shards[h.Sum32()&(cacheShards-1)]
}

// Get returns the cached record for (runKey, instr), if any.
func (c *RunCache) Get(runKey string, instr uint64) (sweep.Record, bool) {
	k := cacheKey(runKey, instr)
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.byKey[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Inc()
		return sweep.Record{}, false
	}
	s.lru.MoveToFront(e.elem)
	rec := e.rec
	s.mu.Unlock()
	c.hits.Inc()
	return rec, true
}

// Put stores a successful record. Failed records are never cached: a retry
// of the same unit must actually re-execute.
func (c *RunCache) Put(runKey string, instr uint64, rec sweep.Record) {
	if rec.Err != "" {
		return
	}
	k := cacheKey(runKey, instr)
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byKey[k]; ok {
		e.rec = rec
		s.lru.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{rec: rec}
	e.elem = s.lru.PushFront(k)
	s.byKey[k] = e
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		delete(s.byKey, back.Value.(string))
		s.lru.Remove(back)
	}
}

// Stats snapshots cache effectiveness counters. Size sums the shards;
// capacity is the configured total.
func (c *RunCache) Stats() (hits, misses, size, capacity int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		size += s.lru.Len()
		s.mu.Unlock()
	}
	return int(c.hits.Value()), int(c.misses.Value()), size, c.cap
}
