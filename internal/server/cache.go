package server

import (
	"container/list"
	"fmt"
	"sync"

	"atr/internal/sweep"
	"atr/internal/telemetry"
)

// runCache is the daemon's content-addressed result cache: completed run
// records keyed by the sweep engine's SHA-256 run key plus the instruction
// budget (the one run parameter the key does not cover). Identical runs
// submitted by any client — inside any grid — are served from here without
// re-simulating; because records are deterministic in (profile, config,
// instr), a cached record is byte-for-byte the record a fresh simulation
// would produce, so cache hits cannot perturb manifest identity.
type runCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of string cache keys; front = most recent
	byKey map[string]*cacheEntry

	// hits/misses are registry instruments owned by the server's telemetry
	// registry; the cache records into them so lookups show up in /metrics
	// without a second set of counters to keep in sync.
	hits   *telemetry.Counter
	misses *telemetry.Counter
}

type cacheEntry struct {
	rec  sweep.Record
	elem *list.Element
}

func newRunCache(capacity int, hits, misses *telemetry.Counter) *runCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if hits == nil {
		hits = new(telemetry.Counter)
	}
	if misses == nil {
		misses = new(telemetry.Counter)
	}
	return &runCache{cap: capacity, lru: list.New(), byKey: make(map[string]*cacheEntry), hits: hits, misses: misses}
}

func cacheKey(runKey string, instr uint64) string {
	return fmt.Sprintf("%s@%d", runKey, instr)
}

// get returns the cached record for (runKey, instr), if any.
func (c *runCache) get(runKey string, instr uint64) (sweep.Record, bool) {
	k := cacheKey(runKey, instr)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[k]
	if !ok {
		c.misses.Inc()
		return sweep.Record{}, false
	}
	c.hits.Inc()
	c.lru.MoveToFront(e.elem)
	return e.rec, true
}

// put stores a successful record. Failed records are never cached: a retry
// of the same unit must actually re-execute.
func (c *runCache) put(runKey string, instr uint64, rec sweep.Record) {
	if rec.Err != "" {
		return
	}
	k := cacheKey(runKey, instr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[k]; ok {
		e.rec = rec
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{rec: rec}
	e.elem = c.lru.PushFront(k)
	c.byKey[k] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.byKey, back.Value.(string))
		c.lru.Remove(back)
	}
}

// stats snapshots cache effectiveness counters.
func (c *runCache) stats() (hits, misses, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.hits.Value()), int(c.misses.Value()), c.lru.Len(), c.cap
}
