// Regions walks through the paper's Figure 8 example at the renaming-engine
// level: a pending branch is followed by an atomic commit region (producer,
// two consumers, redefiner), and ATR releases the producer's physical
// register while the branch is still unresolved — the release the
// non-speculative scheme must delay until precommit.
package main

import (
	"fmt"

	"atr/internal/config"
	"atr/internal/core"
	"atr/internal/isa"
)

func main() {
	cfg := config.GoldenCove().WithScheme(config.SchemeATR).WithPhysRegs(64)
	e := core.NewEngine(cfg)

	step := func(cycle uint64, label string, in isa.Inst) core.RenameOut {
		out := e.Rename(&in, cycle)
		fmt.Printf("cycle %2d  %-28s", cycle, label)
		for i := 0; i < out.NumDsts; i++ {
			d := out.Dsts[i]
			fmt.Printf("  %v->%v (prev %v", d.Reg, d.New, d.Prev)
			if !d.PrevValid {
				fmt.Printf(", CLAIMED by ATR")
			}
			fmt.Printf(")")
		}
		fmt.Println()
		return out
	}
	free := func(tag string) {
		fmt.Printf("          free list: %d GPR entries   [%s]\n", e.FreeCount(isa.ClassGPR), tag)
	}

	fmt.Println("Figure 8: out-of-order release inside an atomic region")
	fmt.Println("I1 jne  (unresolved long-latency branch)")
	fmt.Println("I2 add r1 <- r2,r3 | I3 sub r2 <- r1,r4 | I4 mul r3 <- r1,r5 | I5 mul r1 <- r4,r5")
	fmt.Println()

	// I1: the branch. It poisons everything currently in the SRT, so only
	// registers allocated *after* it can form atomic regions.
	br := isa.NewInst(isa.OpBranch, nil, []isa.Reg{isa.Flags})
	step(1, "I1 jne (stays unresolved)", br)

	i2 := isa.NewInst(isa.OpALU, []isa.Reg{isa.R1}, []isa.Reg{isa.R2, isa.R3})
	out2 := step(2, "I2 add r1 <- r2,r3", i2)
	p1 := out2.Dsts[0].New
	e.ProducerCompleted(p1, 3)

	i3 := isa.NewInst(isa.OpALU, []isa.Reg{isa.R2}, []isa.Reg{isa.R1, isa.R4})
	out3 := step(3, "I3 sub r2 <- r1,r4", i3)

	i4 := isa.NewInst(isa.OpALU, []isa.Reg{isa.R3}, []isa.Reg{isa.R1, isa.R5})
	out4 := step(4, "I4 mul r3 <- r1,r5", i4)

	free("before redefinition")
	i5 := isa.NewInst(isa.OpALU, []isa.Reg{isa.R1}, []isa.Reg{isa.R4, isa.R5})
	step(5, "I5 mul r1 <- r4,r5 (redefines)", i5)
	fmt.Println("          -> I5 claimed I2's register; waiting for consumers")
	free("redefined, consumers pending")

	// The consumers issue (read their operands) while I1 is STILL
	// unresolved; the moment the last one reads, ATR frees p1.
	e.ConsumerIssued(out3.Srcs[0], 6)
	fmt.Println("cycle  6  I3 issues (reads r1)")
	e.ConsumerIssued(out4.Srcs[0], 7)
	fmt.Println("cycle  7  I4 issues (reads r1)")
	free("after last consumer issued")
	fmt.Printf("\nATR releases: %d  (the branch I1 has still not resolved)\n",
		e.Stats.Get("release.atr"))
	fmt.Println("If I1 mispredicts, I2..I5 flush as a unit and the flush walk")
	fmt.Println("skips the already-released register (double-free avoidance).")

	if err := e.CheckInvariants(); err != nil {
		panic(err)
	}
}
