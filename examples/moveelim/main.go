// Moveelim demonstrates the paper's §6 composition of ATR with register-move
// elimination: moves stop allocating physical registers (they alias their
// source under a reference count), ATR recycles atomic-region registers
// early, and the two compose — each release drops one reference, the
// register frees at zero.
package main

import (
	"fmt"

	"atr/internal/config"
	"atr/internal/isa"
	"atr/internal/pipeline"
	"atr/internal/program"
)

func main() {
	// A register-hungry loop: each iteration issues a long-latency load,
	// then churns through temporaries — half of them plain moves — that
	// are independent of the load. The baseline holds every temporary
	// until in-order commit crawls past the miss; move elimination stops
	// allocating for the moves, and ATR recycles the rest early.
	b := program.NewBuilder(1, 2)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 3000) // counter
	b.Mul(isa.R1, isa.R0, isa.R0, 7)
	b.Label("loop")
	b.Mul(isa.R1, isa.R1, isa.RegInvalid, 13)
	b.Load(isa.R2, isa.R1, 0x10000, 16<<20, 0) // long-latency miss
	for k := 0; k < 3; k++ {
		b.ALU(isa.R3, isa.R8, isa.R9, 1)
		b.Move(isa.R4, isa.R3) // interpreter-style value shuffling
		b.ALU(isa.R5, isa.R4, isa.R3, 2)
		b.Move(isa.R6, isa.R5)
		b.ALU(isa.R3, isa.R6, isa.R4, 3)
		b.Move(isa.R4, isa.R3)
	}
	b.ALU(isa.R7, isa.R6, isa.R2, 0) // fold in the loaded value
	b.Store(isa.R1, isa.R7, 0x10000, 16<<20, 8)
	b.ALU(isa.R0, isa.R0, isa.RegInvalid, -1)
	b.Cmp(isa.R0, isa.RegInvalid, 0)
	b.Branch(program.PredNotZero, "loop")
	prog := b.MustBuild()
	const regs, n = 48, 40_000

	type variant struct {
		name string
		mut  func(*config.Config)
	}
	variants := []variant{
		{"baseline", func(c *config.Config) {}},
		{"move-elim", func(c *config.Config) { c.MoveElimination = true }},
		{"atr", func(c *config.Config) { c.Scheme = config.SchemeATR }},
		{"atr+move-elim", func(c *config.Config) {
			c.Scheme = config.SchemeATR
			c.MoveElimination = true
		}},
	}

	fmt.Printf("workload: %d static instructions/iteration, 1/4 moves, %d physical registers/class\n\n", prog.Len(), regs)
	fmt.Printf("%-15s %10s %8s %12s %12s %12s\n",
		"variant", "cycles", "IPC", "eliminated", "atr-release", "speedup")
	var base float64
	for _, v := range variants {
		cfg := config.GoldenCove().WithPhysRegs(regs)
		v.mut(&cfg)
		cpu := pipeline.New(cfg, prog)
		res := cpu.Run(n)
		if v.name == "baseline" {
			base = float64(res.Cycles)
		}
		fmt.Printf("%-15s %10d %8.3f %12d %12d %+11.2f%%\n",
			v.name, res.Cycles, res.IPC,
			cpu.Engine.Stats.Get("rename.moveelim"),
			cpu.Engine.Stats.Get("release.atr"),
			100*(base/float64(res.Cycles)-1))
		if err := cpu.Engine.CheckInvariants(); err != nil {
			panic(err)
		}
	}
	fmt.Println("\neach eliminated move is an allocation that never happened; each ATR")
	fmt.Println("release is an allocation returned early. Note the interference visible")
	fmt.Println("on this move-chained kernel: sharing couples the consumer counters of")
	fmt.Println("aliased mappings, so claims wait for consumers of *all* names of a")
	fmt.Println("register and ATR alone can beat the combination here. Across the full")
	fmt.Println("benchmark suite the composition is net-positive (run:")
	fmt.Println("  go run ./cmd/atrsweep -fig ablations).")
}
