// Rfsweep sweeps the physical register file size for one benchmark and
// prints IPC under every release scheme — a per-benchmark slice of the
// paper's Figures 1, 10 and 11.
package main

import (
	"flag"
	"fmt"
	"os"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/workload"
)

func main() {
	bench := flag.String("bench", "x264", "benchmark profile name")
	n := flag.Uint64("n", 40_000, "instructions per run")
	flag.Parse()

	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "rfsweep: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prog := p.Generate()

	sizes := []int{64, 96, 128, 160, 192, 224, 256, 280}
	fmt.Printf("benchmark %s: IPC by register file size and scheme\n\n", p.Name)
	fmt.Printf("%6s  %9s %10s %9s %9s  %12s\n",
		"regs", "baseline", "nonspec-er", "atomic", "combined", "atomic gain")
	for _, size := range sizes {
		ipcs := map[config.ReleaseScheme]float64{}
		for _, s := range config.Schemes() {
			cfg := config.GoldenCove().WithScheme(s).WithPhysRegs(size)
			ipcs[s] = pipeline.New(cfg, prog).Run(*n).IPC
		}
		fmt.Printf("%6d  %9.3f %10.3f %9.3f %9.3f  %+11.2f%%\n",
			size,
			ipcs[config.SchemeBaseline], ipcs[config.SchemeNonSpecER],
			ipcs[config.SchemeATR], ipcs[config.SchemeCombined],
			100*(ipcs[config.SchemeATR]/ipcs[config.SchemeBaseline]-1))
	}
}
