// Interrupts demonstrates the §4.1 interrupt-handling extension: with ATR,
// an interrupt that wants to flush the pipeline must wait until no atomic
// commit region straddles the flush boundary (the open-region counter), or
// fall back to draining the ROB. Both modes preserve architectural state,
// which the example verifies against the in-order emulator.
package main

import (
	"fmt"

	"atr/internal/config"
	"atr/internal/pipeline"
	"atr/internal/program"
	"atr/internal/workload"
)

func main() {
	p := workload.Micro(123)
	prog := p.Generate()
	const n = 20_000

	fmt.Println("interrupt handling under the combined release scheme")
	fmt.Printf("%-8s %10s %10s %12s %10s\n", "mode", "cycles", "IPC", "interrupts", "verified")

	for _, mode := range []config.InterruptMode{config.InterruptDrain, config.InterruptFlush} {
		cfg := config.GoldenCove().WithScheme(config.SchemeCombined).WithPhysRegs(96)
		cfg.InterruptMode = mode
		cfg.InterruptInterval = 1000
		cfg.InterruptCost = 50

		// Verify architectural equivalence while running.
		emu := program.NewEmulator(prog)
		cpu := pipeline.New(cfg, prog)
		mismatches := 0
		cpu.OnCommit = func(got program.Record) {
			want, _ := emu.Step()
			if got != want {
				mismatches++
			}
		}
		res := cpu.Run(n)
		name := "drain"
		if mode == config.InterruptFlush {
			name = "flush"
		}
		ok := "state intact"
		if mismatches > 0 {
			ok = fmt.Sprintf("%d MISMATCHES", mismatches)
		}
		fmt.Printf("%-8s %10d %10.3f %12d %10s\n", name, res.Cycles, res.IPC, res.Interrupts, ok)
	}
	fmt.Println("\nthe flush mode discards only the not-yet-precommitted ROB suffix and")
	fmt.Println("defers while the precommit-boundary open-region counter is non-zero;")
	fmt.Println("the drain mode needs no ATR-specific support at all (§4.1).")
}
