// Quickstart: build a small program with the program.Builder, run it on the
// cycle-level core under the conventional baseline and under ATR, and
// compare. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"

	"atr/internal/config"
	"atr/internal/isa"
	"atr/internal/pipeline"
	"atr/internal/program"
)

func main() {
	// A loop whose loads miss deep into memory while an independent
	// computation churns through temporaries r3..r6. Those temporaries
	// are redefined with no branch or memory op in between — atomic
	// commit regions — but their redefiners sit behind the unresolved
	// miss, so only ATR can recycle their registers; the baseline waits
	// for the in-order commit to crawl past the load. The recycled
	// registers let rename reach the next iteration's load, buying
	// memory-level parallelism.
	b := program.NewBuilder(1, 2)
	b.ALU(isa.R0, isa.RegInvalid, isa.RegInvalid, 2000) // loop counter
	b.Mul(isa.R1, isa.R0, isa.R0, 7)                    // pseudo-random index
	b.Label("loop")
	b.Mul(isa.R1, isa.R1, isa.RegInvalid, 13)
	b.Load(isa.R2, isa.R1, 0x10000, 16<<20, 0) // long-latency miss
	for k := 0; k < 3; k++ {
		// Three rounds of temporaries fed only by loop invariants
		// (r8/r9): they execute and are fully consumed while the load
		// is still outstanding.
		b.ALU(isa.R3, isa.R8, isa.R9, 1)
		b.ALU(isa.R4, isa.R3, isa.R8, 2)
		b.ALU(isa.R5, isa.R4, isa.R3, 3)
		b.ALU(isa.R6, isa.R5, isa.R4, 4)
	}
	b.ALU(isa.R7, isa.R6, isa.R2, 0) // fold in the loaded value
	b.Store(isa.R1, isa.R7, 0x10000, 16<<20, 8)
	b.ALU(isa.R0, isa.R0, isa.RegInvalid, -1)
	b.Cmp(isa.R0, isa.RegInvalid, 0)
	b.Branch(program.PredNotZero, "loop")
	prog := b.MustBuild()

	fmt.Printf("program: %d static instructions\n\n", prog.Len())
	fmt.Printf("%-10s %10s %8s %12s %14s\n", "scheme", "cycles", "IPC", "atr-releases", "rename-stalls")
	var baseline uint64
	for _, scheme := range []config.ReleaseScheme{config.SchemeBaseline, config.SchemeATR} {
		cfg := config.GoldenCove().WithScheme(scheme).WithPhysRegs(48)
		cpu := pipeline.New(cfg, prog)
		res := cpu.Run(50_000)
		if scheme == config.SchemeBaseline {
			baseline = res.Cycles
		}
		fmt.Printf("%-10v %10d %8.3f %12d %14d\n", scheme, res.Cycles, res.IPC,
			cpu.Engine.Stats.Get("release.atr"), res.RenameStalls)
	}
	cfg := config.GoldenCove().WithScheme(config.SchemeATR).WithPhysRegs(48)
	res := pipeline.New(cfg, prog).Run(50_000)
	fmt.Printf("\nATR speedup at 48 registers: %.2f%%\n",
		100*(float64(baseline)/float64(res.Cycles)-1))
}
