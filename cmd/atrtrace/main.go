// Command atrtrace records and inspects committed-instruction traces (the
// analog of Scarab's trace-based frontend tooling).
//
// Usage:
//
//	atrtrace record -bench omnetpp -n 100000 -o omnetpp.atrt
//	atrtrace info -i omnetpp.atrt [-json]
//	atrtrace regions -bench omnetpp -i omnetpp.atrt [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"atr/internal/isa"
	"atr/internal/program"
	"atr/internal/trace"
	"atr/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	bench := fs.String("bench", "omnetpp", "benchmark profile")
	n := fs.Int("n", 100_000, "instructions")
	out := fs.String("o", "", "output trace file")
	in := fs.String("i", "", "input trace file")
	asJSON := fs.Bool("json", false, "print machine-readable JSON instead of text")
	fs.Parse(os.Args[2:])

	switch cmd {
	case "record":
		record(*bench, *n, *out)
	case "info":
		info(*in, *asJSON)
	case "regions":
		regions(*bench, *in, *n, *asJSON)
	default:
		usage()
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		die(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: atrtrace record|info|regions [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "atrtrace:", err)
	os.Exit(1)
}

func mustProfile(name string) workload.Profile {
	p, ok := workload.ByName(name)
	if !ok {
		die(fmt.Errorf("unknown benchmark %q", name))
	}
	return p
}

func record(bench string, n int, out string) {
	if out == "" {
		die(fmt.Errorf("record needs -o"))
	}
	p := mustProfile(bench)
	prog := p.Generate()
	f, err := os.Create(out)
	if err != nil {
		die(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		die(err)
	}
	emu := program.NewEmulator(prog)
	for i := 0; i < n; i++ {
		rec, ok := emu.Step()
		if !ok {
			break
		}
		if err := w.Write(trace.FromProgram(rec)); err != nil {
			die(err)
		}
	}
	if err := w.Flush(); err != nil {
		die(err)
	}
	fmt.Printf("wrote %d records to %s\n", w.Count(), out)
}

func info(in string, asJSON bool) {
	if in == "" {
		die(fmt.Errorf("info needs -i"))
	}
	f, err := os.Open(in)
	if err != nil {
		die(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		die(err)
	}
	var total, branches, taken, loads, stores uint64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			die(err)
		}
		total++
		switch {
		case rec.Op == isa.OpLoad:
			loads++
		case rec.Op == isa.OpStore:
			stores++
		case rec.Op.IsControl():
			branches++
			if rec.Taken {
				taken++
			}
		}
	}
	if asJSON {
		emitJSON(map[string]uint64{
			"records": total, "loads": loads, "stores": stores,
			"control": branches, "taken": taken,
		})
		return
	}
	fmt.Printf("records   %d\n", total)
	fmt.Printf("loads     %d (%.1f%%)\n", loads, pct(loads, total))
	fmt.Printf("stores    %d (%.1f%%)\n", stores, pct(stores, total))
	fmt.Printf("control   %d (%.1f%%), %.1f%% taken\n", branches, pct(branches, total), pct(taken, branches))
}

func regions(bench, in string, n int, asJSON bool) {
	p := mustProfile(bench)
	prog := p.Generate()
	a := trace.NewAnalyzer(prog, isa.ClassGPR)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			die(err)
		}
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				die(err)
			}
			a.Step(rec)
		}
	} else {
		emu := program.NewEmulator(prog)
		for i := 0; i < n; i++ {
			rec, ok := emu.Step()
			if !ok {
				break
			}
			a.Step(trace.FromProgram(rec))
		}
	}
	res := a.Result()
	if asJSON {
		emitJSON(map[string]any{
			"allocations": res.Allocations,
			"non_branch":  res.NonBranch,
			"non_except":  res.NonExcept,
			"atomic":      res.Atomic,
			"consumers":   res.Consumers.Mean(),
		})
		return
	}
	fmt.Printf("allocations %d\n", res.Allocations)
	fmt.Printf("non-branch  %.1f%%\n", 100*res.NonBranch)
	fmt.Printf("non-except  %.1f%%\n", 100*res.NonExcept)
	fmt.Printf("atomic      %.1f%%\n", 100*res.Atomic)
	fmt.Printf("consumers per atomic region: mean %.2f\n", res.Consumers.Mean())
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
