// Command atrsweep regenerates the paper's evaluation figures.
//
// Usage:
//
//	atrsweep [-n instructions] [-fig 1|4|6|10|11|12|13|14|15|logic|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"atr/internal/experiments"
)

func main() {
	n := flag.Uint64("n", 40000, "instructions per simulation")
	fig := flag.String("fig", "all", "figure to regenerate (1,4,6,10,11,12,13,14,15,logic,ablations,all)")
	flag.Parse()

	r := experiments.NewRunner(*n)
	w := os.Stdout
	start := time.Now()
	switch *fig {
	case "1":
		experiments.Fig1(r, w)
	case "4":
		experiments.Fig4(r, w)
	case "6":
		experiments.Fig6(r, w)
	case "10":
		experiments.Fig10(r, w)
	case "11":
		experiments.Fig11(r, w)
	case "12":
		experiments.Fig12(r, w)
	case "13":
		experiments.Fig13(r, w)
	case "14":
		experiments.Fig14(r, w)
	case "15":
		experiments.Fig15(r, w)
	case "logic":
		experiments.Logic(w)
	case "ablations":
		experiments.Ablations(r, w)
	case "all":
		experiments.All(r, w)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start))
}
