// Command atrsweep regenerates the paper's evaluation figures and executes
// declared sweep grids on the sharded fault-tolerant sweep engine.
//
// Figure mode (the default):
//
//	atrsweep [-n instructions] [-fig 1|4|6|10|11|12|13|14|15|logic|all]
//	         [-workers N] [-json results.json] [-sample N]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Grid mode, selected by -grid:
//
//	atrsweep -grid fig10|full|micro [-n instructions] [-workers N] [-batch K]
//	         [-sample-mode exact,systematic:P/W/U,...]
//	         [-out manifest.json] [-journal sweep.jsonl] [-resume sweep.jsonl]
//	         [-retries N] [-backoff d] [-timeout d] [-perf perf.json]
//	         [-inject-panic k]
//
// -batch caps how many profile-homogeneous pending units execute as
// lockstep lanes over one shared program image (omit for the engine's
// default width; 1 disables batching). Batching is a pure scheduling
// decision — the manifest bytes are identical either way — and its
// telemetry (groups, lanes, setup/exec split) lands in the -perf file.
// An explicit -batch below 1 is a usage error (exit 2).
//
// -sample-mode adds a sampled-execution axis to the grid: a comma-separated
// list where each entry is either "exact" (full-detail simulation) or a
// checkpoint plan "systematic:<period>/<window>/<warmup>". Every grid unit
// is run once per listed mode; sampled units carry extrapolated estimates
// and are excluded from lockstep batching. -sample-mode without -grid, or
// with a malformed plan, is a usage error (exit 2).
//
// Grid mode writes a deterministic result manifest: the same grid produces
// byte-identical -out files regardless of worker count or resume splits.
// The -journal file records every completed run as JSONL; a killed sweep
// restarted with -resume re-executes only the missing runs. Scheduling
// telemetry (wall clock, retries, per-shard throughput) varies run to run
// and goes to -perf, never into the manifest. Exit status: 0 all runs
// succeeded, 3 the sweep completed with recorded failures, 1 on
// cancellation or operational error, 2 on invalid flags (-workers < 1,
// -retries < 0, or -resume without -journal).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"atr/internal/checkpoint"
	"atr/internal/experiments"
	"atr/internal/obs"
	"atr/internal/sweep"
)

// sweepManifest is the machine-readable record of one figure-mode run.
type sweepManifest struct {
	Schema  string         `json:"schema"`
	Version int            `json:"version"`
	Build   obs.BuildInfo  `json:"build"`
	Instr   uint64         `json:"instr"`
	Figures map[string]any `json:"figures"`
	// Perf aggregates host-side throughput over the sweep's unique
	// simulations (memoized reruns count once): cycles_per_sec is the
	// headline number tracked across optimization passes.
	Perf obs.PerfInfo `json:"perf"`
	Runs int          `json:"runs"`
}

const (
	sweepSchema  = "atr-sweep-manifest"
	sweepVersion = 1
)

func main() {
	n := flag.Uint64("n", 40000, "instructions per simulation")
	fig := flag.String("fig", "all", "figure to regenerate (1,4,6,10,11,12,13,14,15,logic,ablations,all)")
	jsonPath := flag.String("json", "", "write figure results to this file as a sweep manifest")
	sample := flag.Uint64("sample", 0, "attach an interval sampler with this period to every run (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
	workers := flag.Int("workers", 0, "worker pool width (0 selects GOMAXPROCS)")

	grid := flag.String("grid", "", "run a sweep grid instead of figures (fig10, full, micro)")
	out := flag.String("out", "", "grid mode: write the deterministic result manifest here (default stdout)")
	journalPath := flag.String("journal", "", "grid mode: append a JSONL journal of completed runs to this file")
	resumePath := flag.String("resume", "", "grid mode: resume from this journal, re-executing only missing runs")
	retries := flag.Int("retries", 1, "grid mode: retries per failing run before recording the failure")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "grid mode: first-retry backoff (doubles per retry)")
	timeout := flag.Duration("timeout", 0, "grid mode: abort the sweep after this long (0 disables)")
	perfPath := flag.String("perf", "", "grid mode: write scheduling telemetry (wall clock, shards) to this file")
	injectPanic := flag.Int("inject-panic", 0, "grid mode: poison the k-th grid run (1-based) so every attempt panics")
	batchK := flag.Int("batch", 0, "grid mode: lockstep lanes per profile-homogeneous batch (0 auto-selects, 1 disables)")
	sampleModes := flag.String("sample-mode", "", "grid mode: comma-separated sampled-execution axis (exact and/or systematic:<period>/<window>/<warmup> plans)")
	flag.Parse()

	usageErr := func(msg string) {
		fmt.Fprintln(os.Stderr, "atrsweep:", msg)
		os.Exit(2)
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" && *workers < 1 {
			usageErr(fmt.Sprintf("-workers must be >= 1 (got %d); omit the flag to use GOMAXPROCS", *workers))
		}
		if f.Name == "batch" && *batchK < 1 {
			usageErr(fmt.Sprintf("-batch must be >= 1 (got %d); omit the flag for the default lane width", *batchK))
		}
	})
	if *retries < 0 {
		usageErr(fmt.Sprintf("-retries must be >= 0 (got %d)", *retries))
	}
	if *resumePath != "" && *journalPath == "" {
		usageErr("-resume requires -journal: without one, runs completed after the resume point are lost on the next interruption")
	}
	if *sampleModes != "" && *grid == "" {
		usageErr("-sample-mode is a grid axis and requires -grid (figure mode always runs exact)")
	}
	var modes []string
	if *sampleModes != "" {
		for _, m := range strings.Split(*sampleModes, ",") {
			m = strings.TrimSpace(m)
			if m == "exact" || m == "" {
				modes = append(modes, "")
				continue
			}
			if _, err := checkpoint.ParseMode(m); err != nil {
				usageErr(err.Error())
			}
			modes = append(modes, m)
		}
	}

	if *grid != "" {
		os.Exit(runGrid(*grid, *n, *workers, *batchK, modes, *out, *journalPath, *resumePath,
			*retries, *backoff, *timeout, *perfPath, *injectPanic))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep: cpuprofile:", err)
			os.Exit(1)
		}
	}

	r := experiments.NewRunner(*n)
	r.SampleInterval = *sample
	r.Workers = *workers
	w := os.Stdout
	figures := make(map[string]any)
	start := time.Now()
	switch *fig {
	case "1":
		figures["fig1"] = experiments.Fig1(r, w)
	case "4":
		figures["fig4"] = experiments.Fig4(r, w)
	case "6":
		figures["fig6"] = experiments.Fig6(r, w)
	case "10":
		figures["fig10"] = experiments.Fig10(r, w)
	case "11":
		figures["fig11"] = experiments.Fig11(r, w)
	case "12":
		figures["fig12"] = experiments.Fig12(r, w)
	case "13":
		figures["fig13"] = experiments.Fig13(r, w)
	case "14":
		figures["fig14"] = experiments.Fig14(r, w)
	case "15":
		figures["fig15"] = experiments.Fig15(r, w)
	case "logic":
		figures["logic"] = experiments.Logic(w)
	case "ablations":
		experiments.Ablations(r, w)
	case "all":
		figures["fig1"] = experiments.Fig1(r, w)
		figures["fig4"] = experiments.Fig4(r, w)
		figures["fig6"] = experiments.Fig6(r, w)
		figures["fig10"] = experiments.Fig10(r, w)
		figures["fig11"] = experiments.Fig11(r, w)
		figures["fig12"] = experiments.Fig12(r, w)
		figures["fig13"] = experiments.Fig13(r, w)
		figures["fig14"] = experiments.Fig14(r, w)
		figures["fig15"] = experiments.Fig15(r, w)
		figures["logic"] = experiments.Logic(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep: memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}
	runs, instr, cycles := r.Totals()
	fmt.Fprintf(os.Stderr, "elapsed: %v (%d runs, %.0f cycles/s, %.0f instr/s)\n",
		elapsed, runs,
		float64(cycles)/elapsed.Seconds(), float64(instr)/elapsed.Seconds())

	if *jsonPath != "" {
		m := sweepManifest{
			Schema:  sweepSchema,
			Version: sweepVersion,
			Build:   obs.Build(),
			Instr:   *n,
			Figures: figures,
			Runs:    runs,
			Perf: obs.PerfInfo{
				WallSeconds:  elapsed.Seconds(),
				InstrPerSec:  float64(instr) / elapsed.Seconds(),
				CyclesPerSec: float64(cycles) / elapsed.Seconds(),
			},
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
	}
}

// runGrid executes one sweep grid on the engine and returns the process
// exit code.
func runGrid(name string, instr uint64, workers, batchK int, sampleModes []string,
	out, journalPath, resumePath string,
	retries int, backoff, timeout time.Duration, perfPath string, injectPanic int) int {

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "atrsweep:", err)
		return 1
	}

	g, err := sweep.GridByName(name, instr)
	if err != nil {
		return fail(err)
	}
	g.SampleModes = sampleModes

	opts := sweep.Options{
		Workers:     workers,
		Batch:       batchK,
		Retries:     retries,
		Backoff:     backoff,
		InjectPanic: injectPanic,
	}

	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			return fail(err)
		}
		j, jerr := sweep.LoadJournal(f)
		f.Close()
		if jerr != nil {
			return fail(fmt.Errorf("resume %s: %w", resumePath, jerr))
		}
		if j.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "atrsweep: resume: dropped %d unreadable journal line(s)\n", j.Dropped)
		}
		opts.Resume = j
	}
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		opts.Journal = f
	}

	opts.OnProgress = func(p obs.SweepProgress) {
		status := "ok"
		if p.Err != "" {
			status = "FAIL " + p.Err
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s (worker %d): %s\n",
			p.Done+p.Failed, p.Total, p.Bench, p.Scheme, p.Worker, status)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	eng := sweep.New(opts)
	m, err := eng.Execute(ctx, g, nil)
	info := eng.Info()
	printSweepSummary(info)

	if perfPath != "" {
		f, ferr := os.Create(perfPath)
		if ferr != nil {
			return fail(ferr)
		}
		if eerr := obs.NewPerfManifest(info).Encode(f); eerr != nil {
			f.Close()
			return fail(eerr)
		}
		f.Close()
	}

	if err != nil {
		return fail(fmt.Errorf("sweep aborted: %w (journal holds completed runs; restart with -resume)", err))
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, ferr := os.Create(out)
		if ferr != nil {
			return fail(ferr)
		}
		defer f.Close()
		w = f
	}
	if err := m.Encode(w); err != nil {
		return fail(err)
	}

	if m.Totals.Failed > 0 {
		fmt.Fprintf(os.Stderr, "atrsweep: %d of %d runs failed\n", m.Totals.Failed, len(m.Runs))
		return 3
	}
	return 0
}

func printSweepSummary(info obs.SweepInfo) {
	fmt.Fprintf(os.Stderr,
		"sweep: %d/%d done, %d failed, %d retried, %d resumed, %d journal flushes, %.2fs wall, %.0f cycles/s\n",
		info.Done, info.Total, info.Failed, info.Retried, info.Resumed,
		info.JournalFlushes, info.WallSeconds, info.CyclesPerSec)
	if info.Batches > 0 {
		fmt.Fprintf(os.Stderr, "  batches: %d groups covering %d runs (lane cap %d), %.2fs setup, %.2fs exec\n",
			info.Batches, info.BatchedRuns, info.Batch, info.SetupSeconds, info.ExecSeconds)
	}
	for _, s := range info.Shards {
		if s.Runs == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  shard %d: %d runs (%d failed), %.2fs busy, %.0f cycles/s\n",
			s.Worker, s.Runs, s.Failed, s.BusySeconds, s.CyclesPerSec)
	}
}
