// Command atrsweep regenerates the paper's evaluation figures.
//
// Usage:
//
//	atrsweep [-n instructions] [-fig 1|4|6|10|11|12|13|14|15|logic|all]
//	         [-json results.json] [-sample N]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -json the typed results of every figure run are serialized to a
// versioned sweep manifest, so sweeps become diffable artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"atr/internal/experiments"
	"atr/internal/obs"
)

// sweepManifest is the machine-readable record of one atrsweep invocation.
type sweepManifest struct {
	Schema  string         `json:"schema"`
	Version int            `json:"version"`
	Build   obs.BuildInfo  `json:"build"`
	Instr   uint64         `json:"instr"`
	Figures map[string]any `json:"figures"`
	// Perf aggregates host-side throughput over the sweep's unique
	// simulations (memoized reruns count once): cycles_per_sec is the
	// headline number tracked across optimization passes.
	Perf obs.PerfInfo `json:"perf"`
	Runs int          `json:"runs"`
}

const (
	sweepSchema  = "atr-sweep-manifest"
	sweepVersion = 1
)

func main() {
	n := flag.Uint64("n", 40000, "instructions per simulation")
	fig := flag.String("fig", "all", "figure to regenerate (1,4,6,10,11,12,13,14,15,logic,ablations,all)")
	jsonPath := flag.String("json", "", "write figure results to this file as a sweep manifest")
	sample := flag.Uint64("sample", 0, "attach an interval sampler with this period to every run (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep: cpuprofile:", err)
			os.Exit(1)
		}
	}

	r := experiments.NewRunner(*n)
	r.SampleInterval = *sample
	w := os.Stdout
	figures := make(map[string]any)
	start := time.Now()
	switch *fig {
	case "1":
		figures["fig1"] = experiments.Fig1(r, w)
	case "4":
		figures["fig4"] = experiments.Fig4(r, w)
	case "6":
		figures["fig6"] = experiments.Fig6(r, w)
	case "10":
		figures["fig10"] = experiments.Fig10(r, w)
	case "11":
		figures["fig11"] = experiments.Fig11(r, w)
	case "12":
		figures["fig12"] = experiments.Fig12(r, w)
	case "13":
		figures["fig13"] = experiments.Fig13(r, w)
	case "14":
		figures["fig14"] = experiments.Fig14(r, w)
	case "15":
		figures["fig15"] = experiments.Fig15(r, w)
	case "logic":
		figures["logic"] = experiments.Logic(w)
	case "ablations":
		experiments.Ablations(r, w)
	case "all":
		figures["fig1"] = experiments.Fig1(r, w)
		figures["fig4"] = experiments.Fig4(r, w)
		figures["fig6"] = experiments.Fig6(r, w)
		figures["fig10"] = experiments.Fig10(r, w)
		figures["fig11"] = experiments.Fig11(r, w)
		figures["fig12"] = experiments.Fig12(r, w)
		figures["fig13"] = experiments.Fig13(r, w)
		figures["fig14"] = experiments.Fig14(r, w)
		figures["fig15"] = experiments.Fig15(r, w)
		figures["logic"] = experiments.Logic(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep: memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}
	runs, instr, cycles := r.Totals()
	fmt.Fprintf(os.Stderr, "elapsed: %v (%d runs, %.0f cycles/s, %.0f instr/s)\n",
		elapsed, runs,
		float64(cycles)/elapsed.Seconds(), float64(instr)/elapsed.Seconds())

	if *jsonPath != "" {
		m := sweepManifest{
			Schema:  sweepSchema,
			Version: sweepVersion,
			Build:   obs.Build(),
			Instr:   *n,
			Figures: figures,
			Runs:    runs,
			Perf: obs.PerfInfo{
				WallSeconds:  elapsed.Seconds(),
				InstrPerSec:  float64(instr) / elapsed.Seconds(),
				CyclesPerSec: float64(cycles) / elapsed.Seconds(),
			},
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, "atrsweep:", err)
			os.Exit(1)
		}
	}
}
